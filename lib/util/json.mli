(** Minimal JSON: enough to emit the bench harness's machine-readable
    results and to re-parse them for CI validation. No external
    dependencies; numbers are either OCaml ints or floats. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed with two-space indentation, RFC 8259 string escaping,
    and floats rendered with enough digits to round-trip. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a byte offset and a
    reason. Numbers without [.], [e] or [E] parse as [Int]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_float : t -> float option
(** Numeric value of an [Int] or [Float]. *)
