type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else begin
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let to_string v =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_finite f then Buffer.add_string buf (float_repr f)
        else Buffer.add_string buf "null"  (* JSON has no NaN/inf *)
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            go (indent + 2) item)
          items;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            escape buf k;
            Buffer.add_string buf ": ";
            go (indent + 2) item)
          fields;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Fail of int * string

(* Encode a Unicode scalar value as UTF-8 bytes. *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              let hex4 () =
                if !pos + 4 > n then fail "truncated \\u escape";
                let v = ref 0 in
                for i = !pos to !pos + 3 do
                  let d =
                    match s.[i] with
                    | '0' .. '9' as c -> Char.code c - Char.code '0'
                    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                    | _ -> fail "bad \\u escape"
                  in
                  v := (!v lsl 4) lor d
                done;
                pos := !pos + 4;
                !v
              in
              let code = hex4 () in
              let code =
                if code >= 0xD800 && code <= 0xDBFF then
                  (* High surrogate: must pair with a following \uDC00-
                     \uDFFF to form a supplementary-plane scalar. *)
                  if !pos + 6 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo >= 0xDC00 && lo <= 0xDFFF then
                      0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
                    else fail "unpaired high surrogate in \\u escape"
                  end
                  else fail "unpaired high surrogate in \\u escape"
                else if code >= 0xDC00 && code <= 0xDFFF then
                  fail "unpaired low surrogate in \\u escape"
                else code
              in
              add_utf8 buf code;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let has c = String.contains text c in
    if has '.' || has 'e' || has 'E' then begin
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    end
    else begin
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number"
    end
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (fields [])
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
