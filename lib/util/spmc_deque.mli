(** A lock-free single-producer multi-consumer work-stealing deque
    (Chase–Lev).

    One distinguished {e owner} domain pushes and pops at the bottom of
    the deque (LIFO, cheap, no interlocked operations on the fast path);
    any number of {e thief} domains steal from the top (FIFO, one
    compare-and-set per successful steal). The buffer is a growable
    circular array, so [push] never fails and never blocks.

    The sequential specification — the model the qcheck suite checks the
    implementation against — is a plain list: [push] appends at the back,
    [pop] removes from the back, [steal] removes from the front. Under
    concurrency every pushed element is returned by exactly one [pop] or
    [steal] (no lost or duplicated tasks); [steal] may spuriously return
    [None] when racing another thief, so thieves retry.

    Ownership is by convention, not enforcement: callers must ensure only
    one domain ever calls [push]/[pop] on a given deque. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] is an empty deque. [dummy] fills vacated slots so
    popped elements are not retained by the buffer; it is never returned.
    [capacity] (default 16, rounded up to a power of two) is only the
    initial buffer size — the deque grows on demand. *)

val push : 'a t -> 'a -> unit
(** Owner only. Append at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only. Remove the most recently pushed remaining element, or
    [None] if the deque is empty. *)

val steal : 'a t -> 'a option
(** Any domain. Remove the oldest remaining element. [None] means empty
    {e or} lost a race with a concurrent thief (callers treat both as
    "look elsewhere, maybe retry"). *)

val length : 'a t -> int
(** Snapshot of the current size. Racy by nature — only useful as a
    telemetry gauge or an emptiness heuristic, never for synchronisation. *)
