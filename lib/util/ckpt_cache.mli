(** A bounded, domain-safe LRU checkpoint store.

    The replay-elision layer (DPOR, exploration, inference) keys
    checkpoints — VM states, analysis snapshots, scheduler prefixes — by
    execution-tree prefix and fetches the deepest cached ancestor instead
    of replaying from the root. This store is the shared substrate: a hash
    table threaded with an LRU list, capped by the {e sum of estimated
    entry weights} in bytes. Persistent values share structure, so the sum
    over-approximates real retention — the cap is a guaranteed ceiling on
    what the cache can pin, which is the property the exploration layer
    needs (dropping an entry costs a replay, never correctness).

    All operations are mutex-protected: one store may be hit concurrently
    by every shard of a parallel exploration. Counters ({!stats}) are
    cumulative since {!create}; consumers flush deltas into [Coop_obs]
    (this library deliberately has no telemetry dependency). *)

type 'v t
(** A store holding values of type ['v]. *)

type stats = {
  hits : int;  (** [find] calls that returned an entry. *)
  misses : int;  (** [find] calls that found nothing. *)
  evictions : int;  (** Entries dropped to respect the cap. *)
  bytes : int;  (** Current estimated retained bytes. *)
  peak_bytes : int;  (** High-water mark of [bytes]. *)
  entries : int;  (** Current entry count. *)
}

val create : ?cap_bytes:int -> weight:('v -> int) -> unit -> 'v t
(** [create ~weight ()] builds an empty store. [weight v] estimates the
    retained size of [v] in bytes (clamped to at least 1); [cap_bytes]
    (default 64 MiB) bounds the weight sum. Raises [Invalid_argument] on a
    non-positive cap. *)

val find : 'v t -> string -> 'v option
(** [find t key] returns the cached value and marks it most recently
    used. Counted as a hit or miss. *)

val add : 'v t -> string -> 'v -> unit
(** [add t key v] inserts (or replaces) the entry and evicts least
    recently used entries until the weight sum fits the cap again. A
    value heavier than the whole cap is evicted immediately — the store
    never retains more than [cap_bytes]. *)

val stats : _ t -> stats
(** Cumulative counters and current occupancy. *)

val cap_bytes : _ t -> int
(** The configured budget. *)
