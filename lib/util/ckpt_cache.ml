(* Bounded LRU checkpoint store.

   Entries form a doubly-linked list threaded through a hash table; the
   list head is the most recently used entry and eviction pops the tail.
   The budget is the sum of caller-estimated entry weights, so with
   persistent values that share structure it is an upper bound on real
   retention, never an undercount of the cap. All operations take the
   internal mutex — exploration shards and portfolio tasks hit one store
   from several domains. *)

type 'v node = {
  n_key : string;
  n_value : 'v;
  n_weight : int;
  mutable prev : 'v node option;
  mutable next : 'v node option;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  bytes : int;
  peak_bytes : int;
  entries : int;
}

type 'v t = {
  cap_bytes : int;
  weight : 'v -> int;
  table : (string, 'v node) Hashtbl.t;
  mutex : Mutex.t;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  mutable bytes : int;
  mutable peak_bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(cap_bytes = 64 * 1024 * 1024) ~weight () =
  if cap_bytes <= 0 then invalid_arg "Ckpt_cache.create: cap_bytes must be positive";
  {
    cap_bytes;
    weight;
    table = Hashtbl.create 256;
    mutex = Mutex.create ();
    head = None;
    tail = None;
    bytes = 0;
    peak_bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let cap_bytes t = t.cap_bytes

(* List surgery; callers hold the mutex. *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let drop_tail t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.n_key;
      t.bytes <- t.bytes - n.n_weight;
      t.evictions <- t.evictions + 1

let find t key =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some n ->
        t.hits <- t.hits + 1;
        unlink t n;
        push_front t n;
        Some n.n_value
    | None ->
        t.misses <- t.misses + 1;
        None
  in
  Mutex.unlock t.mutex;
  r

let add t key value =
  let w = max 1 (t.weight value) in
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.table key with
  | Some old ->
      unlink t old;
      Hashtbl.remove t.table key;
      t.bytes <- t.bytes - old.n_weight
  | None -> ());
  let n = { n_key = key; n_value = value; n_weight = w; prev = None; next = None } in
  Hashtbl.replace t.table key n;
  push_front t n;
  t.bytes <- t.bytes + w;
  if t.bytes > t.peak_bytes then t.peak_bytes <- t.bytes;
  while t.bytes > t.cap_bytes && t.tail <> None do
    drop_tail t
  done;
  Mutex.unlock t.mutex

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      bytes = t.bytes;
      peak_bytes = t.peak_bytes;
      entries = Hashtbl.length t.table;
    }
  in
  Mutex.unlock t.mutex;
  s
