(* A work-stealing pool of worker domains over per-domain Chase–Lev
   deques (Spmc_deque).

   Every domain attached to a pool — the creating domain (slot 0) and
   each spawned worker (slots 1..jobs-1) — owns one deque. [spawn] from
   an attached domain pushes onto its own deque (cheap, lock-free);
   [spawn] from a foreign domain lands in a small mutex-protected
   injector queue. Idle domains look for work in a fixed order: own
   deque (LIFO pop), injector, then random-victim stealing across the
   other deques with exponential backoff between sweeps; only when a
   full backoff episode finds nothing do they sleep on a condition
   variable. Producers broadcast only when the atomic idler count is
   non-zero, and sleepers re-check for work (and for promise
   resolution) after registering under the lock, so wakeups are never
   lost.

   Deadlock-freedom under nesting keeps the old pool's rule: a domain
   awaiting a promise never blocks while there is runnable work — it
   pops, drains the injector, or steals, and only sleeps when every
   outstanding task is already executing on some other domain. Those
   executions finish by induction (their own nested spawns obey the same
   rule), and each completion broadcasts, so the sleep is always woken. *)

type task = unit -> unit

type monitor = {
  on_submit : queued:int -> unit;
  wrap_task : (unit -> unit) -> unit -> unit;
  on_steal : thief:int -> victim:int -> latency_s:float -> unit;
  on_deque_depth : slot:int -> depth:int -> unit;
}

type t = {
  jobs : int;
  deques : task Spmc_deque.t array;  (* slot 0 = creator, 1.. = workers *)
  injector : task Queue.t;           (* submissions from foreign domains *)
  inj_mutex : Mutex.t;
  inj_size : int Atomic.t;           (* mirror of [Queue.length injector] *)
  pool_monitor : monitor option Atomic.t;
  lock : Mutex.t;                    (* guards sleeping and [live] *)
  wake : Condition.t;                (* new work or a task completed *)
  idlers : int Atomic.t;             (* domains blocked on [wake] *)
  mutable live : bool;               (* written under [lock] *)
  mutable workers : unit Domain.t list;
}

(* ------------------------------------------------------------------ *)
(* Monitors: per-pool, with a deprecated process-wide fallback.        *)
(* ------------------------------------------------------------------ *)

let global_monitor : monitor option Atomic.t = Atomic.make None
let set_global_monitor m = Atomic.set global_monitor m
let set_monitor pool m = Atomic.set pool.pool_monitor m

let effective_monitor pool =
  match Atomic.get pool.pool_monitor with
  | Some _ as m -> m
  | None -> Atomic.get global_monitor

(* ------------------------------------------------------------------ *)
(* Worker identity: which deque (if any) does this domain own?         *)
(* ------------------------------------------------------------------ *)

(* Per-domain association from pool (by physical identity) to owned
   slot. A domain can own slots in several pools (the main domain is
   slot 0 of every pool it creates); entries are tiny and pools are few,
   so the list is never pruned. *)
let slots_key : (t * int) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let register_slot pool slot =
  let r = Domain.DLS.get slots_key in
  r := (pool, slot) :: !r

let my_slot pool =
  let rec find = function
    | [] -> None
    | (p, s) :: rest -> if p == pool then Some s else find rest
  in
  find !(Domain.DLS.get slots_key)

(* ------------------------------------------------------------------ *)
(* Scheduling primitives.                                              *)
(* ------------------------------------------------------------------ *)

let nop () = ()
let now () = Unix.gettimeofday ()

(* Per-call-site xorshift; seeded from the domain id so victims differ
   across domains without shared state. *)
let fresh_rng () =
  ref ((((Domain.self () :> int) + 1) * 0x9E3779B1) lor 1)

let rng_next r =
  let x = !r in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  r := x;
  x land max_int

let wake_all pool =
  if Atomic.get pool.idlers > 0 then begin
    Mutex.lock pool.lock;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.lock
  end

let enqueue pool task =
  (match my_slot pool with
  | Some s ->
      let dq = pool.deques.(s) in
      Spmc_deque.push dq task;
      (match effective_monitor pool with
      | None -> ()
      | Some m ->
          let depth = Spmc_deque.length dq in
          m.on_submit ~queued:depth;
          m.on_deque_depth ~slot:s ~depth)
  | None ->
      Mutex.lock pool.inj_mutex;
      Queue.push task pool.injector;
      let n = Queue.length pool.injector in
      Atomic.set pool.inj_size n;
      Mutex.unlock pool.inj_mutex;
      (match effective_monitor pool with
      | None -> ()
      | Some m -> m.on_submit ~queued:n));
  wake_all pool

let try_injector pool =
  if Atomic.get pool.inj_size = 0 then None
  else begin
    Mutex.lock pool.inj_mutex;
    let r =
      if Queue.is_empty pool.injector then None
      else begin
        let t = Queue.pop pool.injector in
        Atomic.set pool.inj_size (Queue.length pool.injector);
        Some t
      end
    in
    Mutex.unlock pool.inj_mutex;
    r
  end

(* One randomized sweep over the other deques. [t0] is when this search
   episode started (0. when unmonitored): a successful steal reports
   [now - t0] as its latency — time from running out of local work to
   acquiring remote work. *)
let try_steal pool ~self rng ~t0 =
  let n = Array.length pool.deques in
  let start = rng_next rng mod n in
  let rec sweep i =
    if i >= n then None
    else begin
      let v = (start + i) mod n in
      if self = Some v then sweep (i + 1)
      else
        match Spmc_deque.steal pool.deques.(v) with
        | Some task ->
            (match effective_monitor pool with
            | None -> ()
            | Some m ->
                let thief = match self with Some s -> s | None -> -1 in
                m.on_steal ~thief ~victim:v
                  ~latency_s:(if t0 > 0. then now () -. t0 else 0.);
                m.on_deque_depth ~slot:v
                  ~depth:(Spmc_deque.length pool.deques.(v)));
            Some task
        | None -> sweep (i + 1)
    end
  in
  if n <= 1 && self <> None then None else sweep 0

let find_task pool ~self rng ~t0 =
  let own =
    match self with
    | Some s -> Spmc_deque.pop pool.deques.(s)
    | None -> None
  in
  match own with
  | Some _ as t -> t
  | None -> (
      match try_injector pool with
      | Some _ as t -> t
      | None -> try_steal pool ~self rng ~t0)

let run_task pool task =
  match effective_monitor pool with
  | None -> task ()
  | Some m -> m.wrap_task task ()

let work_available pool =
  Atomic.get pool.inj_size > 0
  || Array.exists (fun d -> Spmc_deque.length d > 0) pool.deques

let relax n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

let max_backoff = 6

(* ------------------------------------------------------------------ *)
(* Workers.                                                            *)
(* ------------------------------------------------------------------ *)

let monitored_now pool =
  match effective_monitor pool with None -> 0. | Some _ -> now ()

let rec worker_loop pool slot rng =
  let t0 = monitored_now pool in
  let rec search backoff =
    match find_task pool ~self:(Some slot) rng ~t0 with
    | Some task ->
        run_task pool task;
        worker_loop pool slot rng
    | None ->
        if backoff <= max_backoff then begin
          relax (1 lsl backoff);
          search (backoff + 1)
        end
        else begin
          (* Backoff exhausted: sleep, or exit if the pool is done. *)
          Mutex.lock pool.lock;
          Atomic.incr pool.idlers;
          let quit =
            if work_available pool then false
            else if not pool.live then true
            else begin
              Condition.wait pool.wake pool.lock;
              false
            end
          in
          Atomic.decr pool.idlers;
          Mutex.unlock pool.lock;
          if not quit then worker_loop pool slot rng
        end
  in
  search 0

(* ------------------------------------------------------------------ *)
(* Tasks and promises.                                                 *)
(* ------------------------------------------------------------------ *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a promise = 'a state Atomic.t

let spawn pool f =
  let p = Atomic.make Pending in
  enqueue pool (fun () ->
      (match f () with
      | v -> Atomic.set p (Done v)
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Atomic.set p (Failed (e, bt)));
      (* Completion may unblock an awaiter. *)
      wake_all pool);
  p

let await_result pool p =
  let self = my_slot pool in
  let rng = fresh_rng () in
  let rec loop () =
    match Atomic.get p with
    | Done v -> Ok v
    | Failed (e, bt) -> Error (e, bt)
    | Pending -> (
        let t0 = monitored_now pool in
        match find_task pool ~self rng ~t0 with
        | Some task ->
            run_task pool task;
            loop ()
        | None ->
            (* Nothing runnable: our promise's task (or something it
               transitively awaits) is executing elsewhere. Sleep until a
               completion or a fresh spawn broadcasts. *)
            Mutex.lock pool.lock;
            Atomic.incr pool.idlers;
            (match Atomic.get p with
            | Pending when not (work_available pool) ->
                Condition.wait pool.wake pool.lock
            | _ -> ());
            Atomic.decr pool.idlers;
            Mutex.unlock pool.lock;
            loop ())
  in
  loop ()

let await pool p =
  match await_result pool p with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

(* ------------------------------------------------------------------ *)
(* Pool lifecycle.                                                     *)
(* ------------------------------------------------------------------ *)

let create ?monitor ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      deques =
        Array.init jobs (fun _ -> Spmc_deque.create ~dummy:nop ());
      injector = Queue.create ();
      inj_mutex = Mutex.create ();
      inj_size = Atomic.make 0;
      pool_monitor = Atomic.make monitor;
      lock = Mutex.create ();
      wake = Condition.create ();
      idlers = Atomic.make 0;
      live = true;
      workers = [];
    }
  in
  register_slot pool 0;
  pool.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            let slot = i + 1 in
            register_slot pool slot;
            worker_loop pool slot (fresh_rng ())));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.lock;
  let workers = pool.workers in
  pool.live <- false;
  pool.workers <- [];
  Condition.broadcast pool.wake;
  Mutex.unlock pool.lock;
  List.iter Domain.join workers

(* ------------------------------------------------------------------ *)
(* parallel_map, reimplemented on spawn/await.                         *)
(* ------------------------------------------------------------------ *)

let parallel_map pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when pool.jobs = 1 && pool.workers = [] -> List.map f xs
  | xs ->
      let promises = List.map (fun x -> spawn pool (fun () -> f x)) xs in
      (* Settle the whole batch first (awaiting in input order; helping
         runs the rest), then re-raise the first failure in input order
         — a deterministic strengthening of the old completion-order
         contract. *)
      let settled = List.map (await_result pool) promises in
      List.map
        (function
          | Ok v -> v
          | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
        settled

(* ------------------------------------------------------------------ *)
(* The shared process-wide pool.                                       *)
(* ------------------------------------------------------------------ *)

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Some n
  | _ -> None

let default_override = ref None

let default_jobs () =
  match !default_override with
  | Some n -> n
  | None -> (
      match Sys.getenv_opt "COOP_JOBS" with
      | Some s -> (
          match parse_jobs s with
          | Some n -> n
          | None -> Domain.recommended_domain_count ())
      | None -> Domain.recommended_domain_count ())

let shared_pool = ref None

let shared () =
  match !shared_pool with
  | Some pool -> pool
  | None ->
      let pool = create ~jobs:(default_jobs ()) () in
      shared_pool := Some pool;
      pool

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  default_override := Some n;
  match !shared_pool with
  | Some pool when jobs pool <> n ->
      shared_pool := None;
      shutdown pool
  | _ -> ()

let map f xs = parallel_map (shared ()) f xs
