(* A fixed pool of worker domains around a mutex+condition task deque.

   Deadlock-freedom under nesting relies on one rule: a domain submitting a
   batch never blocks while the deque is non-empty — it pops and runs tasks
   itself ("helping") and only sleeps when every task of its own batch is
   already executing on some other domain. Those executions finish by
   induction (their own nested batches obey the same rule), so the sleep is
   always woken. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  pending : (unit -> unit) Queue.t;
  nonempty : Condition.t;  (* signalled on push and on shutdown *)
  mutable live : bool;
  mutable workers : unit Domain.t list;
}

type monitor = {
  on_submit : queued:int -> unit;
  wrap_task : (unit -> unit) -> unit -> unit;
}

let monitor : monitor option ref = ref None

let set_monitor m = monitor := m

let run_task task =
  match !monitor with None -> task () | Some m -> m.wrap_task task ()

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.pending && pool.live do
    Condition.wait pool.nonempty pool.mutex
  done;
  if Queue.is_empty pool.pending then Mutex.unlock pool.mutex (* shutdown *)
  else begin
    let task = Queue.pop pool.pending in
    Mutex.unlock pool.mutex;
    run_task task;
    worker_loop pool
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    { jobs; mutex = Mutex.create (); pending = Queue.create ();
      nonempty = Condition.create (); live = true; workers = [] }
  in
  pool.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.live <- false;
  pool.workers <- [];
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

(* One batch of [n] tasks: results slotted by index, first failure kept
   with its backtrace, completion tracked by a dedicated mutex+condition so
   helpers can sleep without holding the deque lock. *)
let parallel_map (type b) pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when pool.jobs = 1 && pool.workers = [] -> List.map f xs
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let results : b option array = Array.make n None in
      let failure = ref None in
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      let remaining = ref n in
      let task i () =
        (match f input.(i) with
        | v -> results.(i) <- Some v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock done_mutex;
            if !failure = None then failure := Some (e, bt);
            Mutex.unlock done_mutex);
        Mutex.lock done_mutex;
        decr remaining;
        if !remaining = 0 then Condition.broadcast done_cond;
        Mutex.unlock done_mutex
      in
      Mutex.lock pool.mutex;
      for i = 0 to n - 1 do
        Queue.push (task i) pool.pending
      done;
      let queued = Queue.length pool.pending in
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.mutex;
      (match !monitor with
      | Some m -> m.on_submit ~queued
      | None -> ());
      (* Help until our batch has settled. Popped tasks may belong to other
         batches (nested calls); running them here is harmless and keeps the
         no-sleep-while-work-exists invariant. *)
      let rec help () =
        Mutex.lock done_mutex;
        let finished = !remaining = 0 in
        Mutex.unlock done_mutex;
        if not finished then begin
          Mutex.lock pool.mutex;
          let next =
            if Queue.is_empty pool.pending then None
            else Some (Queue.pop pool.pending)
          in
          Mutex.unlock pool.mutex;
          match next with
          | Some task ->
              run_task task;
              help ()
          | None ->
              (* Everything left of this batch is running on other domains:
                 wait for the last decrement. *)
              Mutex.lock done_mutex;
              while !remaining > 0 do
                Condition.wait done_cond done_mutex
              done;
              Mutex.unlock done_mutex
        end
      in
      help ();
      (match !failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list
        (Array.map
           (function
             | Some v -> v
             | None -> assert false (* no failure => every slot filled *))
           results)

(* ------------------------------------------------------------------ *)
(* The shared process-wide pool.                                       *)
(* ------------------------------------------------------------------ *)

let default_override = ref None

let default_jobs () =
  match !default_override with
  | Some n -> n
  | None -> (
      match Sys.getenv_opt "COOP_JOBS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 1 -> n
          | _ -> Domain.recommended_domain_count ())
      | None -> Domain.recommended_domain_count ())

let shared_pool = ref None

let shared () =
  match !shared_pool with
  | Some pool -> pool
  | None ->
      let pool = create ~jobs:(default_jobs ()) in
      shared_pool := Some pool;
      pool

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  default_override := Some n;
  match !shared_pool with
  | Some pool when jobs pool <> n ->
      shared_pool := None;
      shutdown pool
  | _ -> ()

let map f xs = parallel_map (shared ()) f xs
