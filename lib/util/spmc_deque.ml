(* Chase–Lev work-stealing deque on OCaml 5 atomics.

   Layout: [top] and [bottom] are monotonically growing logical indices
   into a circular buffer of size 2^k; the deque holds the slots in
   [top, bottom). The owner moves [bottom] (push increments, pop
   decrements), thieves advance [top] by compare-and-set. All three
   control words are sequentially consistent atomics, which is the
   textbook-correct (if conservative) memory ordering for this
   algorithm; the buffer cells themselves are plain mutable slots.

   Why stale reads are safe:
   - A thief reads [top], then [bottom], then the buffer pointer, then
     the cell. Because the owner publishes a cell (and any grown buffer)
     *before* the [bottom] store that makes it visible, a thief that
     observed that [bottom] also observes the cell contents and the new
     buffer. The final CAS on [top] fails if any other thief (or the
     owner, racing for the last element) already consumed the slot, so a
     cell is never returned twice.
   - Growth copies the logical range [top, bottom) into a doubled
     buffer. A thief still holding the old buffer pointer can only
     succeed its CAS for an index it read consistently before the swap;
     indices recycled in the old buffer are protected by that CAS.

   The owner's pop of the *last* element races thieves for it and
   arbitrates with the same CAS on [top]. *)

type 'a t = {
  dummy : 'a;
  top : int Atomic.t;     (* next index to steal *)
  bottom : int Atomic.t;  (* next index to push *)
  buf : 'a array Atomic.t;
}

let round_pow2 n =
  let rec go k = if k >= n then k else go (k * 2) in
  go 8

let create ?(capacity = 16) ~dummy () =
  {
    dummy;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.make (round_pow2 (max capacity 2)) dummy);
  }

let mask buf = Array.length buf - 1

(* Double the buffer, copying the live logical range. Owner only, so
   [bottom] is stable; [top] may advance concurrently, which at worst
   copies a few already-stolen slots that no one will read again. *)
let grow d ~top ~bottom old =
  let fresh = Array.make (2 * Array.length old) d.dummy in
  for i = top to bottom - 1 do
    fresh.(i land mask fresh) <- old.(i land mask old)
  done;
  Atomic.set d.buf fresh;
  fresh

let push d v =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  let buf = Atomic.get d.buf in
  let buf =
    if b - t >= Array.length buf then grow d ~top:t ~bottom:b buf else buf
  in
  buf.(b land mask buf) <- v;
  Atomic.set d.bottom (b + 1)

let pop d =
  let b = Atomic.get d.bottom - 1 in
  let buf = Atomic.get d.buf in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* Already empty: undo the speculative decrement. *)
    Atomic.set d.bottom t;
    None
  end
  else begin
    let v = buf.(b land mask buf) in
    if b > t then begin
      buf.(b land mask buf) <- d.dummy;
      Some v
    end
    else begin
      (* Last element: race thieves for it via [top]. *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then begin
        buf.(b land mask buf) <- d.dummy;
        Some v
      end
      else None
    end
  end

let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then None
  else begin
    let buf = Atomic.get d.buf in
    let v = buf.(t land mask buf) in
    if Atomic.compare_and_set d.top t (t + 1) then Some v else None
  end

let length d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if b > t then b - t else 0
