(** A shared domain work pool.

    A fixed set of worker domains pulls thunks off a mutex+condition
    protected deque. Every independent-run layer of the system (the
    inference portfolio, the explorers' shard frontiers, the bench
    harness's per-workload rows) fans out through {!parallel_map}, which
    preserves input order and re-raises worker exceptions — so a parallel
    run is observably identical to the sequential one, just faster.

    Submitters {e help}: while a batch is outstanding, the submitting
    domain also executes queued tasks. This makes nested [parallel_map]
    calls (a parallel bench row whose [Infer.infer] fans out its own
    portfolio) deadlock-free by construction — a waiter never sleeps while
    there is runnable work, and a batch whose tasks are all in flight on
    other domains completes by induction on nesting depth.

    A pool of [jobs = 1] spawns no domains and degrades [parallel_map] to
    [List.map]: the sequential path stays the default and is exercised by
    exactly the same code the callers always run. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs >= 1]; the
    submitting domain is the remaining worker). *)

val jobs : t -> int
(** Parallelism of the pool (including the submitting domain). *)

val shutdown : t -> unit
(** Stop and join the workers. Outstanding tasks are drained first.
    Idempotent. *)

(** Telemetry hooks. The pool itself depends on nothing, so observability
    is injected: [Coop_obs.enable] installs a monitor that exports queue
    depth, per-task latency and per-worker busy time; with no monitor
    installed (the default) the dispatch path is untouched. *)
type monitor = {
  on_submit : queued:int -> unit;
      (** Called once per batch submission with the deque length just
          after the batch was pushed. *)
  wrap_task : (unit -> unit) -> unit -> unit;
      (** Wraps every task execution (worker or helping submitter); the
          monitor owns the timing. Must call the task exactly once. *)
}

val set_monitor : monitor option -> unit
(** Install or remove the process-wide monitor (affects all pools). *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map pool f xs] is [List.map f xs], computed concurrently.
    Results are returned in input order. If any application raises, the
    first (in completion order) exception is re-raised in the caller with
    its backtrace, after all tasks of the batch have settled. Safe to call
    from inside a pool task (nesting). *)

val default_jobs : unit -> int
(** Size for the shared pool when nothing explicit is given: the
    [COOP_JOBS] environment variable if it parses to a positive integer,
    else {!Domain.recommended_domain_count}. *)

val set_default_jobs : int -> unit
(** Override the shared pool size (the CLI's [--jobs] lands here). If the
    shared pool already exists at a different size it is shut down and
    recreated lazily. *)

val shared : unit -> t
(** The process-wide pool, created on first use at {!default_jobs} (or the
    {!set_default_jobs} override). *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] is [parallel_map (shared ()) f xs]. *)
