(** A work-stealing domain pool.

    Each pool owns one {!Spmc_deque} per attached domain: the creating
    domain (slot 0) plus [jobs - 1] spawned workers. {!spawn} from an
    attached domain pushes onto that domain's own deque with no
    interlocked operations; idle domains pop their own deque first, then
    drain a small injector queue (submissions from foreign domains),
    then steal from random victims with exponential backoff, and only
    sleep when a whole backoff episode finds nothing. Irregular task
    trees — one DPOR root owning 100x the subtree of another — therefore
    re-balance dynamically instead of leaving domains idle behind a
    static shard boundary.

    Every independent-run layer of the system (the inference portfolio,
    the explorers' frontier shards, DPOR's root subtrees, the bench
    harness's per-workload rows) fans out through {!spawn}/{!await} or
    {!parallel_map}. Determinism is the callers' contract: results are
    collected keyed by task identity and merged in a deterministic
    order, so a parallel run is observably identical to the sequential
    one, just faster.

    Awaiters {e help}: while a promise is outstanding, the awaiting
    domain executes queued tasks (its own deque, the injector, steals).
    This makes nested {!spawn}/{!await} — a pool task spawning and
    awaiting subtasks on the same pool — deadlock-free by construction:
    a waiter never sleeps while there is runnable work, and a promise
    whose task is in flight on another domain completes by induction on
    nesting depth, broadcasting on completion.

    A pool of [jobs = 1] spawns no domains; {!parallel_map} degrades to
    [List.map] and {!await} runs queued tasks inline on the calling
    domain. *)

type t

(** Telemetry hooks. The pool only depends on the stdlib clock, so
    observability is injected: [Coop_obs.enable] installs a monitor that
    exports queue depth, per-task latency, per-worker busy time, steal
    counts, steal latency and per-deque depth; with no monitor installed
    (the default) the dispatch path takes no timestamps. *)
type monitor = {
  on_submit : queued:int -> unit;
      (** Called once per {!spawn} with the owning deque's (or the
          injector's) length just after the push. *)
  wrap_task : (unit -> unit) -> unit -> unit;
      (** Wraps every task execution (worker or helping awaiter); the
          monitor owns the timing. Must call the task exactly once. *)
  on_steal : thief:int -> victim:int -> latency_s:float -> unit;
      (** Called after each successful steal. [thief]/[victim] are deque
          slots ([-1] for a foreign helping domain); [latency_s] is the
          time from running out of local work to acquiring the stolen
          task. *)
  on_deque_depth : slot:int -> depth:int -> unit;
      (** Called with a deque's depth right after it changed size on the
          submission or steal path (a racy snapshot — a gauge, not an
          invariant). *)
}

val create : ?monitor:monitor -> jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs >= 1]; the
    creating domain owns slot 0 and participates when it awaits).
    [monitor] installs a per-pool monitor from the start. *)

val jobs : t -> int
(** Parallelism of the pool (including the creating domain). *)

val shutdown : t -> unit
(** Stop and join the workers. Outstanding tasks are drained first.
    Idempotent. *)

val set_monitor : t -> monitor option -> unit
(** Install or remove this pool's monitor. Takes precedence over the
    deprecated global monitor. *)

val set_global_monitor : monitor option -> unit
  [@@ocaml.deprecated
    "use per-pool monitors: Pool.create ?monitor or Pool.set_monitor"]
(** Install or remove the process-wide fallback monitor, consulted by
    pools with no per-pool monitor. Deprecated shim for
    [Coop_obs.enable]; new code should scope monitors to a pool. *)

type 'a promise
(** The result of a {!spawn}ed task: pending, a value, or an exception
    with its backtrace. *)

val spawn : t -> (unit -> 'a) -> 'a promise
(** Submit [f] as a task. Safe from any domain, including from inside a
    task running on the same pool (nested spawning is how the dynamic
    fan-out layers feed the scheduler). *)

val await : t -> 'a promise -> 'a
(** Block until the promise settles, helping with queued work while
    waiting. Returns the task's value or re-raises its exception with
    the original backtrace. Safe to call from inside a pool task. *)

val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map pool f xs] is [List.map f xs], computed concurrently
    ({!spawn} per element, {!await} in input order). Results are
    returned in input order. If any application raises, the first (in
    input order) exception is re-raised in the caller with its
    backtrace, after all tasks of the batch have settled. Safe to call
    from inside a pool task (nesting). *)

val parse_jobs : string -> int option
(** Parse a parallelism argument: a positive integer, or [None] for
    anything else ([0], negatives, garbage). CLIs share this so
    [--jobs] and [COOP_JOBS] reject bad values identically. *)

val default_jobs : unit -> int
(** Size for the shared pool when nothing explicit is given: the
    [COOP_JOBS] environment variable if it parses to a positive integer,
    else {!Domain.recommended_domain_count}. (CLIs validate [COOP_JOBS]
    up front with {!parse_jobs} and exit 2 on garbage; the library
    itself stays tolerant.) *)

val set_default_jobs : int -> unit
(** Override the shared pool size (the CLI's [--jobs] lands here). If
    the shared pool already exists at a different size it is shut down
    and recreated lazily. *)

val shared : unit -> t
(** The process-wide pool, created on first use at {!default_jobs} (or
    the {!set_default_jobs} override). *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] is [parallel_map (shared ()) f xs]. *)
