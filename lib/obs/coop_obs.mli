(** In-process telemetry for the whole analysis stack.

    A zero-dependency (stdlib + unix clock) instrumentation library:
    monotonic-intent spans with parent nesting, named counters, gauges,
    duration-accumulating timers, and log-scale (power-of-two)
    latency/size histograms. Everything is {e pay-for-what-you-use}:

    - Disabled (the default), every recording entry point is a single
      branch on a [bool ref] and allocates {e nothing} — no per-domain
      state, no registry entry, no closure. The guard test asserts
      {!domains_registered} stays [0] across a disabled run.
    - Enabled, each domain records into its own buffer (created lazily on
      first use, via domain-local storage) and the buffers are merged into
      one {!snapshot} on demand — so [Coop_util.Pool] workers record
      without taking any shared lock on the hot path.

    Enabling also installs a process-wide {!Coop_util.Pool} monitor (via
    the deprecated global shim — pools with a per-pool monitor keep
    their own) so every pool exports queue depth, per-task latency,
    per-worker busy time, and the work-stealing seam: a [pool/steals]
    counter, a [pool/steal_latency_us] histogram, per-deque depth gauges
    ([pool/deque_depth/d<slot>]) with timestamped {!sample} series
    behind them, and a derived [pool/steals_per_task] gauge in the
    snapshot. Disabling removes the monitor.

    {!snapshot} is a best-effort merge: call it at quiescence (after the
    runs being profiled have completed) for exact totals. *)

(** {1 Switch} *)

val enabled : unit -> bool
(** Whether telemetry is being recorded. *)

val enable : unit -> unit
(** Turn recording on (idempotent; the span epoch is set on the first
    call after a {!reset}). Installs the pool monitor. *)

val disable : unit -> unit
(** Turn recording off and uninstall the pool monitor. Recorded data
    survives until {!reset}. *)

val reset : unit -> unit
(** Drop all recorded data and every per-domain buffer. *)

val now_s : unit -> float
(** The clock used for all measurements, in seconds. Monotonic-intent:
    [Unix.gettimeofday], the only in-distribution clock. *)

(** {1 Recording} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] as a named span. Spans nest: a span opened
    inside another records the enclosing depth, and Chrome-trace viewers
    reconstruct the hierarchy from the containment of [(start, dur)]
    intervals on the same domain. Exceptions propagate; the span is
    closed either way. *)

val count : string -> int -> unit
(** [count name n] adds [n] to the named counter. *)

val gauge : string -> float -> unit
(** [gauge name v] sets the named gauge; the merged snapshot keeps the
    most recently written value across all domains. *)

val observe : string -> float -> unit
(** [observe name v] records one sample into the named log-scale
    histogram (see {!Hist}). *)

val timer_add : string -> float -> int -> unit
(** [timer_add name seconds calls] folds an already-measured duration
    into the named timer. This is the hot-path alternative to {!span}
    for per-event instrumentation: accumulate locally, flush once (what
    [Coop_trace.Analysis.instrument] does at finalize). *)

val sample : string -> float -> unit
(** [sample name v] appends a timestamped point to the named series on
    the recording domain. Series merge by concatenation (sorted by
    timestamp) rather than by aggregation, and render as [ph:"C"]
    counter lanes in {!chrome_trace} — the pool monitor uses them for
    cumulative steal counts and per-deque depth over time. *)

val flow_begin : string -> id:int -> unit
(** [flow_begin name ~id] records the start of a cross-domain flow — a
    causal edge from the recording domain to wherever the matching
    {!flow_end} fires. The provenance layer uses flows for fact
    propagation: a flow starts where a race/shared-lock fact is
    published and ends where an engine learns it. [id] correlates the
    two ends (the fact's packed id); one begin may have several ends
    (sharded runs broadcast facts to every owner). *)

val flow_end : string -> id:int -> unit
(** The receiving end of a flow; see {!flow_begin}. *)

val domains_registered : unit -> int
(** Number of per-domain buffers currently registered — [0] while
    disabled (the no-allocation guard). *)

(** {1 Histograms} *)

module Hist : sig
  val min_exp : int
  (** Smallest bucket exponent; samples [<= 2.^min_exp] (and non-positive
      ones) land in this bucket. *)

  val max_exp : int
  (** Largest bucket exponent; larger samples are clamped into it. *)

  val bucket_exp : float -> int
  (** [bucket_exp v] is the exponent [e] of the bucket holding [v]:
      the smallest [e] with [v <= 2. ** e] (i.e. bucket [e] covers
      [(2.^(e-1), 2.^e]]), clamped to [[min_exp, max_exp]]. *)

  type t = {
    counts : (int * int) list;  (** [(exponent, count)], non-empty buckets
                                    in increasing exponent order. *)
    count : int;  (** Total samples. *)
    sum : float;  (** Sum of samples. *)
    min : float;  (** Smallest sample. *)
    max : float;  (** Largest sample. *)
  }
end

(** {1 Snapshots} *)

type span_record = {
  span_name : string;
  domain : int;  (** Id of the recording domain. *)
  start_us : float;  (** Microseconds since the recording epoch. *)
  dur_us : float;
  depth : int;  (** Number of enclosing open spans on the same domain. *)
}

type timer = {
  time_s : float;  (** Accumulated seconds, all domains. *)
  calls : int;
  by_domain : (int * float) list;  (** Seconds per recording domain —
                                       per-worker utilization. *)
}

type sample_record = {
  s_domain : int;  (** Id of the recording domain. *)
  ts_us : float;  (** Microseconds since the recording epoch. *)
  value : float;
}

type flow_phase = Flow_begin | Flow_end

type flow_record = {
  fl_name : string;
  fl_id : int;  (** Correlates begin and end(s) of one flow. *)
  fl_domain : int;  (** Id of the recording domain. *)
  fl_ts_us : float;  (** Microseconds since the recording epoch. *)
  fl_phase : flow_phase;
}

type snapshot = {
  spans : span_record list;  (** Sorted by start time. *)
  counters : (string * int) list;  (** Sorted by name, summed over domains. *)
  gauges : (string * float) list;
      (** Sorted by name, last write wins. Includes the derived
          [pool/steals_per_task] when at least one steal was recorded. *)
  timers : (string * timer) list;  (** Sorted by name. *)
  hists : (string * Hist.t) list;  (** Sorted by name, merged over domains. *)
  samples : (string * sample_record list) list;
      (** Sorted by name; each series concatenated over domains and
          sorted by timestamp. *)
  flows : flow_record list;  (** Sorted by timestamp. *)
}

val snapshot : unit -> snapshot
(** Merge every per-domain buffer into one consistent view. *)

(** {1 Reporting} *)

type attribution_row = {
  checker : string;  (** Checker name ([checker/] prefix stripped), or
                         ["(dispatch/other)"] for the residual. *)
  seconds : float;
  events : int;  (** Instrumented step calls; [0] for the residual row. *)
  share : float;  (** Fraction of the total analysis sink time. *)
}

val attribution : snapshot -> attribution_row list * float
(** Per-checker attribution, largest share first, from the [checker/*]
    timers measured against the [analysis/*] phase totals (falling back
    to the checkers' own sum when no phase timer was recorded). The
    residual row makes the shares sum to 1, so the table accounts for
    100% of the measured analysis time. Returns [([], 0.)] when nothing
    was instrumented. *)

val profile_table : snapshot -> string
(** The attribution rendered as a [Coop_util.Table] (time, share, events,
    ns/event per checker), or a one-line notice when nothing was
    instrumented. *)

val render_summary : snapshot -> string
(** {!profile_table} followed by counters, gauges, timers (with
    per-domain busy breakdown) and histogram digests — the [--profile]
    output. *)

val to_json : snapshot -> Coop_util.Json.t
(** The stable machine-readable schema ([{"schema": "coop-obs/v1", ...}])
    validated by [bench/main.exe json-verify]. *)

val chrome_trace : snapshot -> Coop_util.Json.t
(** The snapshot's spans as a Chrome [trace_event] JSON array (one
    pseudo-process, one thread per domain, [ph:"X"] complete events with
    [ts]/[dur] in microseconds), plus one [ph:"C"] counter lane per
    sample series (cumulative steals, per-deque depth) so scheduler
    behaviour graphs alongside the span timeline, plus flow events
    ([ph:"s"]/[ph:"f"], matched by [id]) drawing fact-propagation
    arrows between domain lanes. Loadable in [chrome://tracing] and
    Perfetto. *)
