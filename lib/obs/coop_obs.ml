(* Per-domain telemetry buffers behind one global switch.

   The hot path is engineered backwards from the disabled case: every
   recording function first reads a plain [bool ref] and returns — no
   domain-local lookup, no allocation — so uninstrumented runs pay one
   predictable branch. Enabled, a domain lazily creates its buffer
   (registered once, under the registry mutex) and then records entirely
   lock-free on its own data; merging only happens in [snapshot].

   [reset] bumps a generation counter instead of chasing down the
   domain-local references other domains hold: a stale buffer fails the
   generation check on its owner's next recording and is replaced (and,
   being unregistered, is never read again). *)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let now_s = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Hist = struct
  let min_exp = -30
  let max_exp = 40

  let bucket_exp v =
    if v = Float.infinity then max_exp
    else if not (Float.is_finite v) || v <= 0. then min_exp
    else begin
      (* frexp gives v = m * 2^e with m in [0.5, 1): an exact power of two
         has m = 0.5, anything else rounds its exponent up — precisely
         ceil(log2 v) without log-rounding artifacts. *)
      let m, e = Float.frexp v in
      let e = if m = 0.5 then e - 1 else e in
      if e < min_exp then min_exp else if e > max_exp then max_exp else e
    end

  type t = {
    counts : (int * int) list;
    count : int;
    sum : float;
    min : float;
    max : float;
  }
end

let n_buckets = Hist.max_exp - Hist.min_exp + 1

type hist_state = {
  buckets : int array;  (* indexed by exponent - min_exp *)
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

(* ------------------------------------------------------------------ *)
(* Per-domain buffers and the central registry                         *)
(* ------------------------------------------------------------------ *)

type span_record = {
  span_name : string;
  domain : int;
  start_us : float;
  dur_us : float;
  depth : int;
}

type open_span = { os_name : string; os_t0 : float }

type sample_record = { s_domain : int; ts_us : float; value : float }

type flow_phase = Flow_begin | Flow_end

type flow_record = {
  fl_name : string;
  fl_id : int;
  fl_domain : int;
  fl_ts_us : float;
  fl_phase : flow_phase;
}

type domain_state = {
  dom : int;
  mutable stack : open_span list;  (* innermost first *)
  mutable done_spans : span_record list;  (* reversed *)
  d_counters : (string, int ref) Hashtbl.t;
  d_gauges : (string, (int * float) ref) Hashtbl.t;  (* (write seq, value) *)
  d_timers : (string, float ref * int ref) Hashtbl.t;
  d_hists : (string, hist_state) Hashtbl.t;
  d_samples : (string, sample_record list ref) Hashtbl.t;  (* reversed *)
  mutable d_flows : flow_record list;  (* reversed *)
}

let on = ref false
let epoch_us = ref 0.
let generation = Atomic.make 0
let gauge_seq = Atomic.make 0
let registry_mutex = Mutex.create ()
let registry : domain_state list ref = ref []

type slot = Empty | St of int * domain_state

let dls_key : slot ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref Empty)

let state () =
  let slot = Domain.DLS.get dls_key in
  let gen = Atomic.get generation in
  match !slot with
  | St (g, st) when g = gen -> st
  | _ ->
      let st =
        {
          dom = (Domain.self () :> int);
          stack = [];
          done_spans = [];
          d_counters = Hashtbl.create 16;
          d_gauges = Hashtbl.create 16;
          d_timers = Hashtbl.create 16;
          d_hists = Hashtbl.create 16;
          d_samples = Hashtbl.create 16;
          d_flows = [];
        }
      in
      Mutex.lock registry_mutex;
      registry := st :: !registry;
      Mutex.unlock registry_mutex;
      slot := St (gen, st);
      st

let domains_registered () =
  Mutex.lock registry_mutex;
  let n = List.length !registry in
  Mutex.unlock registry_mutex;
  n

(* ------------------------------------------------------------------ *)
(* Switch                                                              *)
(* ------------------------------------------------------------------ *)

let enabled () = !on

let reset () =
  Mutex.lock registry_mutex;
  Atomic.incr generation;
  registry := [];
  epoch_us := 0.;
  Mutex.unlock registry_mutex

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)
(* ------------------------------------------------------------------ *)

let span name f =
  if not !on then f ()
  else begin
    let st = state () in
    let depth = List.length st.stack in
    let t0 = now_s () in
    st.stack <- { os_name = name; os_t0 = t0 } :: st.stack;
    let finish () =
      let t1 = now_s () in
      match st.stack with
      | s :: rest ->
          st.stack <- rest;
          st.done_spans <-
            {
              span_name = name;
              domain = st.dom;
              start_us = (1e6 *. s.os_t0) -. !epoch_us;
              dur_us = 1e6 *. (t1 -. s.os_t0);
              depth;
            }
            :: st.done_spans
      | [] -> ()  (* a reset raced the span; drop it *)
    in
    Fun.protect ~finally:finish f
  end

let count name n =
  if !on then begin
    let st = state () in
    match Hashtbl.find_opt st.d_counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add st.d_counters name (ref n)
  end

let gauge name v =
  if !on then begin
    let st = state () in
    let seq = Atomic.fetch_and_add gauge_seq 1 in
    match Hashtbl.find_opt st.d_gauges name with
    | Some r -> r := (seq, v)
    | None -> Hashtbl.add st.d_gauges name (ref (seq, v))
  end

let observe name v =
  if !on then begin
    let st = state () in
    let h =
      match Hashtbl.find_opt st.d_hists name with
      | Some h -> h
      | None ->
          let h =
            { buckets = Array.make n_buckets 0; hcount = 0; hsum = 0.;
              hmin = infinity; hmax = neg_infinity }
          in
          Hashtbl.add st.d_hists name h;
          h
    in
    let i = Hist.bucket_exp v - Hist.min_exp in
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.hcount <- h.hcount + 1;
    h.hsum <- h.hsum +. v;
    if v < h.hmin then h.hmin <- v;
    if v > h.hmax then h.hmax <- v
  end

let timer_add name seconds calls =
  if !on then begin
    let st = state () in
    match Hashtbl.find_opt st.d_timers name with
    | Some (s, c) ->
        s := !s +. seconds;
        c := !c + calls
    | None -> Hashtbl.add st.d_timers name (ref seconds, ref calls)
  end

let sample name v =
  if !on then begin
    let st = state () in
    let r =
      match Hashtbl.find_opt st.d_samples name with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.add st.d_samples name r;
          r
    in
    r :=
      { s_domain = st.dom; ts_us = (1e6 *. now_s ()) -. !epoch_us; value = v }
      :: !r
  end

let flow_event name ~id phase =
  if !on then begin
    let st = state () in
    st.d_flows <-
      { fl_name = name; fl_id = id; fl_domain = st.dom;
        fl_ts_us = (1e6 *. now_s ()) -. !epoch_us; fl_phase = phase }
      :: st.d_flows
  end

let flow_begin name ~id = flow_event name ~id Flow_begin
let flow_end name ~id = flow_event name ~id Flow_end

(* ------------------------------------------------------------------ *)
(* The pool monitor                                                    *)
(* ------------------------------------------------------------------ *)

(* Queue depth on every spawn, per-task latency and per-worker busy time
   on every executed task, plus the work-stealing seam: steal counts and
   latency, and per-deque depth both as gauges and as timestamped
   samples (the chrome-trace counter lanes). *)
let pool_monitor =
  {
    Coop_util.Pool.on_submit =
      (fun ~queued -> observe "pool/queue_depth" (float_of_int queued));
    wrap_task =
      (fun task () ->
        let t0 = now_s () in
        let finish () =
          let dt = now_s () -. t0 in
          timer_add "pool/worker_busy" dt 1;
          observe "pool/task_us" (1e6 *. dt)
        in
        Fun.protect ~finally:finish task);
    on_steal =
      (fun ~thief:_ ~victim:_ ~latency_s ->
        count "pool/steals" 1;
        observe "pool/steal_latency_us" (1e6 *. latency_s);
        if !on then begin
          (* Cumulative per-domain steal count as a counter lane. *)
          let st = state () in
          let n =
            match Hashtbl.find_opt st.d_counters "pool/steals" with
            | Some r -> !r
            | None -> 0
          in
          sample "pool/steals" (float_of_int n)
        end);
    on_deque_depth =
      (fun ~slot ~depth ->
        let name = "pool/deque_depth/d" ^ string_of_int slot in
        let v = float_of_int depth in
        gauge name v;
        sample name v);
  }

[@@@warning "-3"]  (* Pool.set_global_monitor: the documented shim for
                      process-wide enable/disable. *)

let enable () =
  if not !on then begin
    if !epoch_us = 0. then epoch_us := 1e6 *. now_s ();
    on := true;
    Coop_util.Pool.set_global_monitor (Some pool_monitor)
  end

let disable () =
  if !on then begin
    on := false;
    Coop_util.Pool.set_global_monitor None
  end

[@@@warning "+3"]

(* ------------------------------------------------------------------ *)
(* Snapshot (merge)                                                    *)
(* ------------------------------------------------------------------ *)

type timer = { time_s : float; calls : int; by_domain : (int * float) list }

type snapshot = {
  spans : span_record list;
  counters : (string * int) list;
  gauges : (string * float) list;
  timers : (string * timer) list;
  hists : (string * Hist.t) list;
  samples : (string * sample_record list) list;
  flows : flow_record list;
}

let snapshot () =
  Mutex.lock registry_mutex;
  let states = !registry in
  Mutex.unlock registry_mutex;
  let spans =
    List.concat_map (fun st -> st.done_spans) states
    |> List.sort (fun a b ->
           match compare a.start_us b.start_us with
           | 0 -> compare a.depth b.depth
           | c -> c)
  in
  let counters = Hashtbl.create 16 in
  let gauges = Hashtbl.create 16 in
  let timers = Hashtbl.create 16 in
  let hists = Hashtbl.create 16 in
  let samples = Hashtbl.create 16 in
  List.iter
    (fun st ->
      Hashtbl.iter
        (fun name r ->
          match Hashtbl.find_opt counters name with
          | Some acc -> acc := !acc + !r
          | None -> Hashtbl.add counters name (ref !r))
        st.d_counters;
      Hashtbl.iter
        (fun name r ->
          let seq, v = !r in
          match Hashtbl.find_opt gauges name with
          | Some acc -> if seq > fst !acc then acc := (seq, v)
          | None -> Hashtbl.add gauges name (ref (seq, v)))
        st.d_gauges;
      Hashtbl.iter
        (fun name (s, c) ->
          let entry =
            match Hashtbl.find_opt timers name with
            | Some e -> e
            | None ->
                let e = (ref 0., ref 0, ref []) in
                Hashtbl.add timers name e;
                e
          in
          let sum, calls, by_dom = entry in
          sum := !sum +. !s;
          calls := !calls + !c;
          by_dom := (st.dom, !s) :: !by_dom)
        st.d_timers;
      Hashtbl.iter
        (fun name h ->
          let acc =
            match Hashtbl.find_opt hists name with
            | Some a -> a
            | None ->
                let a =
                  { buckets = Array.make n_buckets 0; hcount = 0; hsum = 0.;
                    hmin = infinity; hmax = neg_infinity }
                in
                Hashtbl.add hists name a;
                a
          in
          Array.iteri (fun i n -> acc.buckets.(i) <- acc.buckets.(i) + n)
            h.buckets;
          acc.hcount <- acc.hcount + h.hcount;
          acc.hsum <- acc.hsum +. h.hsum;
          if h.hmin < acc.hmin then acc.hmin <- h.hmin;
          if h.hmax > acc.hmax then acc.hmax <- h.hmax)
        st.d_hists;
      Hashtbl.iter
        (fun name r ->
          let acc =
            match Hashtbl.find_opt samples name with
            | Some a -> a
            | None ->
                let a = ref [] in
                Hashtbl.add samples name a;
                a
          in
          acc := List.rev_append !r !acc)
        st.d_samples)
    states;
  let sorted_bindings tbl f =
    Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let counters_l = sorted_bindings counters (fun r -> !r) in
  let hists_l =
    sorted_bindings hists (fun h ->
        let counts = ref [] in
        for i = n_buckets - 1 downto 0 do
          if h.buckets.(i) > 0 then
            counts := (i + Hist.min_exp, h.buckets.(i)) :: !counts
        done;
        { Hist.counts = !counts; count = h.hcount; sum = h.hsum;
          min = h.hmin; max = h.hmax })
  in
  let gauges_l = sorted_bindings gauges (fun r -> snd !r) in
  (* Derived: how much re-balancing the scheduler did per executed task.
     Present exactly when at least one steal was recorded. *)
  let gauges_l =
    match
      (List.assoc_opt "pool/steals" counters_l,
       List.assoc_opt "pool/task_us" hists_l)
    with
    | Some steals, Some h when h.Hist.count > 0 ->
        (("pool/steals_per_task",
          float_of_int steals /. float_of_int h.Hist.count)
         :: gauges_l)
        |> List.sort (fun (a, _) (b, _) -> compare a b)
    | _ -> gauges_l
  in
  {
    spans;
    counters = counters_l;
    gauges = gauges_l;
    timers =
      sorted_bindings timers (fun (s, c, by_dom) ->
          {
            time_s = !s;
            calls = !c;
            by_domain =
              List.sort (fun (a, _) (b, _) -> compare a b) !by_dom;
          });
    hists = hists_l;
    samples =
      sorted_bindings samples (fun r ->
          List.sort (fun a b -> compare a.ts_us b.ts_us) !r);
    flows =
      List.concat_map (fun st -> st.d_flows) states
      |> List.sort (fun a b ->
             match compare a.fl_ts_us b.fl_ts_us with
             | 0 -> compare a.fl_id b.fl_id
             | c -> c);
  }

(* ------------------------------------------------------------------ *)
(* Attribution                                                         *)
(* ------------------------------------------------------------------ *)

type attribution_row = {
  checker : string;
  seconds : float;
  events : int;
  share : float;
}

let prefixed prefix name =
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    Some (String.sub name pl (String.length name - pl))
  else None

let attribution snap =
  let checkers =
    List.filter_map
      (fun (name, t) ->
        Option.map (fun short -> (short, t)) (prefixed "checker/" name))
      snap.timers
  in
  let phase_total =
    List.fold_left
      (fun acc (name, t) ->
        if prefixed "analysis/" name <> None then acc +. t.time_s else acc)
      0. snap.timers
  in
  let accounted =
    List.fold_left (fun acc (_, t) -> acc +. t.time_s) 0. checkers
  in
  (* The phase timers wrap the whole fused chain, so they include the
     dispatch and the per-checker clock reads; when absent (a checker
     profiled outside the pipeline), the checkers' own sum is the total. *)
  let total = if phase_total > 0. then phase_total else accounted in
  if total <= 0. then ([], 0.)
  else begin
    let rows =
      List.map
        (fun (name, t) ->
          { checker = name; seconds = t.time_s; events = t.calls;
            share = t.time_s /. total })
        checkers
      |> List.sort (fun a b -> compare b.seconds a.seconds)
    in
    let residual = total -. accounted in
    let rows =
      if phase_total > 0. then
        rows
        @ [ { checker = "(dispatch/other)"; seconds = Float.max 0. residual;
              events = 0; share = Float.max 0. residual /. total } ]
      else rows
    in
    (rows, total)
  end

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let profile_table snap =
  match attribution snap with
  | [], _ -> "profile: no instrumented analysis time recorded\n"
  | rows, total ->
      let t =
        Coop_util.Table.create
          ~headers:
            [ ("checker", Coop_util.Table.Left);
              ("time (ms)", Coop_util.Table.Right);
              ("share", Coop_util.Table.Right);
              ("events", Coop_util.Table.Right);
              ("ns/event", Coop_util.Table.Right) ]
      in
      List.iter
        (fun r ->
          Coop_util.Table.add_row t
            [ r.checker;
              Printf.sprintf "%.2f" (1000. *. r.seconds);
              Printf.sprintf "%.1f%%" (100. *. r.share);
              (if r.events > 0 then string_of_int r.events else "-");
              (if r.events > 0 then
                 Printf.sprintf "%.0f"
                   (1e9 *. r.seconds /. float_of_int r.events)
               else "-") ])
        rows;
      Printf.sprintf
        "Profile: per-checker attribution (analysis sink time %.2f ms)\n%s"
        (1000. *. total)
        (Coop_util.Table.render t)

let render_summary snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (profile_table snap);
  let section title f = function
    | [] -> ()
    | items ->
        Buffer.add_string buf (Printf.sprintf "\n%s:\n" title);
        List.iter (fun item -> Buffer.add_string buf (f item)) items
  in
  section "counters"
    (fun (name, n) -> Printf.sprintf "  %-28s %d\n" name n)
    snap.counters;
  section "gauges"
    (fun (name, v) -> Printf.sprintf "  %-28s %g\n" name v)
    snap.gauges;
  section "timers"
    (fun (name, t) ->
      let by_dom =
        match t.by_domain with
        | [] | [ _ ] -> ""
        | ds ->
            " ["
            ^ String.concat ", "
                (List.map
                   (fun (d, s) -> Printf.sprintf "d%d: %.1fms" d (1000. *. s))
                   ds)
            ^ "]"
      in
      Printf.sprintf "  %-28s %.2f ms / %d call(s)%s\n" name
        (1000. *. t.time_s) t.calls by_dom)
    snap.timers;
  section "histograms"
    (fun (name, h) ->
      Printf.sprintf "  %-28s n=%d avg=%.1f min=%g max=%g\n" name
        h.Hist.count
        (h.Hist.sum /. float_of_int (max 1 h.Hist.count))
        h.Hist.min h.Hist.max)
    snap.hists;
  section "sample series"
    (fun (name, samples) ->
      let last =
        match List.rev samples with [] -> 0. | s :: _ -> s.value
      in
      Printf.sprintf "  %-28s n=%d last=%g\n" name (List.length samples)
        last)
    snap.samples;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let to_json snap =
  let open Coop_util.Json in
  Obj
    [
      ("schema", String "coop-obs/v1");
      ("counters",
       Obj (List.map (fun (n, v) -> (n, Int v)) snap.counters));
      ("gauges", Obj (List.map (fun (n, v) -> (n, Float v)) snap.gauges));
      ("timers",
       Obj
         (List.map
            (fun (n, t) ->
              ( n,
                Obj
                  [ ("s", Float t.time_s); ("calls", Int t.calls);
                    ("by_domain",
                     Obj
                       (List.map
                          (fun (d, s) -> (string_of_int d, Float s))
                          t.by_domain)) ] ))
            snap.timers));
      ("histograms",
       Obj
         (List.map
            (fun (n, h) ->
              ( n,
                Obj
                  [ ("count", Int h.Hist.count); ("sum", Float h.Hist.sum);
                    ("min", Float h.Hist.min); ("max", Float h.Hist.max);
                    ("buckets",
                     List
                       (List.map
                          (fun (e, c) ->
                            Obj
                              [ ("le", Float (2. ** float_of_int e));
                                ("count", Int c) ])
                          h.Hist.counts)) ] ))
            snap.hists));
      ("spans",
       List
         (List.map
            (fun s ->
              Obj
                [ ("name", String s.span_name); ("domain", Int s.domain);
                  ("start_us", Float s.start_us); ("dur_us", Float s.dur_us);
                  ("depth", Int s.depth) ])
            snap.spans));
      ("samples",
       Obj
         (List.map
            (fun (n, samples) ->
              ( n,
                List
                  (List.map
                     (fun s ->
                       Obj
                         [ ("domain", Int s.s_domain);
                           ("ts_us", Float s.ts_us);
                           ("value", Float s.value) ])
                     samples) ))
            snap.samples));
      ("flows",
       List
         (List.map
            (fun f ->
              Obj
                [ ("name", String f.fl_name); ("id", Int f.fl_id);
                  ("domain", Int f.fl_domain); ("ts_us", Float f.fl_ts_us);
                  ("phase",
                   String
                     (match f.fl_phase with
                     | Flow_begin -> "begin"
                     | Flow_end -> "end")) ])
            snap.flows));
    ]

let chrome_trace snap =
  let open Coop_util.Json in
  let tids =
    List.sort_uniq compare
      (List.map (fun s -> s.domain) snap.spans
      @ List.map (fun f -> f.fl_domain) snap.flows)
  in
  let meta =
    Obj
      [ ("name", String "process_name"); ("ph", String "M"); ("pid", Int 1);
        ("tid", Int 0); ("args", Obj [ ("name", String "coopcheck") ]) ]
    :: List.map
         (fun tid ->
           Obj
             [ ("name", String "thread_name"); ("ph", String "M");
               ("pid", Int 1); ("tid", Int tid);
               ("args",
                Obj [ ("name", String (Printf.sprintf "domain %d" tid)) ]) ])
         tids
  in
  let events =
    List.map
      (fun s ->
        Obj
          [ ("name", String s.span_name); ("cat", String "analysis");
            ("ph", String "X"); ("pid", Int 1); ("tid", Int s.domain);
            ("ts", Int (int_of_float s.start_us));
            ("dur", Int (max 1 (int_of_float s.dur_us))) ])
      snap.spans
  in
  (* Timestamped sample series (steal counts, per-deque depth) become
     counter lanes: one [ph:"C"] track per (name, recording domain). *)
  let counter_lanes =
    List.concat_map
      (fun (name, samples) ->
        List.map
          (fun s ->
            Obj
              [ ("name", String name); ("cat", String "scheduler");
                ("ph", String "C"); ("pid", Int 1);
                ("tid", Int s.s_domain); ("ts", Int (int_of_float s.ts_us));
                ("args", Obj [ ("value", Float s.value) ]) ])
          samples)
      snap.samples
  in
  (* Fact-propagation edges: a flow starts where knowledge is published
     and finishes where it is learned, drawing an arrow between the two
     domain lanes. [bp:"e"] binds the finish to the enclosing slice. *)
  let flow_events =
    List.map
      (fun f ->
        let base =
          [ ("name", String f.fl_name); ("cat", String "flow");
            ("ph",
             String (match f.fl_phase with Flow_begin -> "s" | Flow_end -> "f"));
            ("id", Int f.fl_id); ("pid", Int 1); ("tid", Int f.fl_domain);
            ("ts", Int (int_of_float f.fl_ts_us)) ]
        in
        Obj
          (match f.fl_phase with
          | Flow_begin -> base
          | Flow_end -> base @ [ ("bp", String "e") ]))
      snap.flows
  in
  List (meta @ events @ counter_lanes @ flow_events)
