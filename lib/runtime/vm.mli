(** The CoopLang virtual machine.

    The VM interprets {!Coop_lang.Bytecode} one instruction at a time under
    an external scheduler: [step] executes exactly one instruction of one
    thread and reports the events it produced. State is persistent
    (functional maps), so the schedule explorer can snapshot and branch
    cheaply.

    Blocking: [Acquire] on a lock held by another thread and [Join] on a
    live thread do not advance; the thread parks in a blocked status and the
    instruction re-executes when the scheduler runs the thread again. The
    {!runnable} function already filters out threads whose blocking
    condition still holds, so a scheduler that only picks from [runnable]
    never spins. Locks are reentrant, as in the paper's Java setting. *)

open Coop_trace
open Coop_lang

type status =
  | Runnable  (** Can execute its next instruction (modulo lock/join waits). *)
  | Blocked_on_lock of int  (** Parked on a lock handle. *)
  | Blocked_on_join of int  (** Parked waiting for a thread to finish. *)
  | Waiting of int
      (** Parked on a monitor's condition after [wait]; released the lock. *)
  | Reacquiring of int
      (** Notified; the next step reacquires the monitor (blocking until
          it is free) at the saved reentrancy depth. *)
  | Finished  (** Ran to completion. *)
  | Faulted of string  (** Died on a runtime fault (assert, div by zero...). *)

type thread
(** One thread: a stack of frames plus a status. *)

type state
(** A whole machine configuration. Persistent. *)

val init : Bytecode.program -> state
(** The initial configuration: globals/arrays initialized, a single thread 0
    about to enter [main]. *)

val program : state -> Bytecode.program
(** The program this state executes. *)

val thread_status : state -> int -> status
(** Status of a thread id. Raises [Not_found] for unknown tids. *)

val thread_ids : state -> int list
(** All thread ids ever created, ascending. *)

val runnable : state -> int list
(** Threads that can make progress now: [Runnable] threads plus blocked
    threads whose lock became available / join target finished. Ascending
    order. *)

val all_quiescent : state -> bool
(** No thread can ever run again (all finished or faulted). *)

val deadlocked : state -> bool
(** [runnable] is empty but some thread is still blocked. *)

val step : ?yields:Loc.Set.t -> state -> int -> sink:Trace.Sink.t -> state
(** [step ?yields st tid ~sink] executes one instruction of [tid], feeding
    the produced events to [sink]. If [tid]'s next instruction sits at a
    location in [yields], a [Yield] event is emitted before it executes (the
    mechanism used by inferred yields — no recompilation needed). Raises
    [Invalid_argument] if [tid] cannot run. *)

val peek_instr : state -> int -> (Bytecode.instr * Loc.t) option
(** The instruction a thread would execute next and its location, or [None]
    for threads without a frame (finished/faulted). Used by the explorer to
    classify upcoming instructions without stepping. *)

val last_step_yielded : state -> bool
(** Whether the most recent [step] emitted a [Yield] event (consulted by the
    cooperative scheduler). *)

val global_value : state -> int -> int
(** Current value of a global slot. *)

val output : state -> int list
(** [print] outputs so far, in emission order. *)

val failures : state -> (int * string) list
(** [(tid, message)] for each faulted thread, in fault order. *)

val steps_taken : state -> int
(** Total instructions executed so far. *)

val approx_words : state -> int
(** Rough retained size of the configuration in machine words, excluding
    the per-run shared program and event caches. Used to budget the
    checkpoint cache; structural sharing between derived states is not
    deducted, so summing it over cached states over-counts — the cache's
    byte cap is therefore a conservative bound. *)

val key : state -> string
(** A canonical serialization of the configuration, equal for semantically
    identical states — used for memoization during schedule exploration. *)
