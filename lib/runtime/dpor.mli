(** Stateless dynamic partial-order reduction (Flanagan-Godefroid 2005).

    An alternative to {!Explore}'s stateful DFS: executions are replayed
    from the initial state and backtrack points are added lazily, only where
    a step is {e dependent} on an earlier step of another thread
    (conflicting access, same-lock operation, fork/join of that thread).
    Independent steps are never reordered, so the number of explored
    executions tracks the number of Mazurkiewicz traces instead of the
    number of interleavings.

    Transitions are taken at {!Explore.Visible_only} granularity: one
    visible operation (plus its invisible prefix) per step. A scheduling
    attempt that parks on a lock counts as a transition dependent on that
    lock, which keeps blocking sound.

    The implementation uses the textbook sound backtrack rule: when step
    [s_n] of thread [p] is dependent with an earlier step [s_i], add [p] to
    [backtrack(i)] if [p] was enabled there, otherwise add every thread
    enabled at [i]. No sleep sets — some redundant executions are explored,
    but the behaviour set is exact, which the test suite checks against
    {!Explore}.

    Being stateless (no memoization), DPOR only terminates on programs all
    of whose executions terminate; programs with yield-based spin loops have
    unfair infinite executions and will exhaust [max_depth] (reported as
    incomplete). The stateful {!Explore} handles those instead — the two
    explorers are complementary, which is why both exist. *)

open Coop_trace

type result = {
  behaviors : Behavior.Set.t;  (** All behaviours of maximal executions. *)
  executions : int;  (** Maximal executions explored. *)
  steps : int;  (** Total transitions taken (including replays). *)
  complete : bool;  (** False when a budget was exhausted. *)
}

val run :
  ?pool:Coop_util.Pool.t ->
  ?yields:Loc.Set.t ->
  ?max_executions:int ->
  ?max_depth:int ->
  ?max_segment:int ->
  Coop_lang.Bytecode.program ->
  result
(** [run prog] explores the program's preemptive behaviours.
    [max_executions] (default 50_000) bounds explored executions,
    [max_depth] (default 10_000) bounds transitions per execution,
    [max_segment] (default 100_000) bounds each transition's invisible
    prefix.

    With a [pool] of more than one domain and at least two threads
    runnable initially, the root choice is sharded {e dynamically}: the
    first shard is the root choice the sequential run would take, and
    every further root backtrack point a shard discovers is spawned as a
    fresh pool task the moment it is requested (exactly once each). The
    spawned set is the least fixpoint of those requests — a superset of
    the lazy sequential root backtrack set, hence sound, and independent
    of pool size or scheduling, so results merge deterministically in
    root-tid order. On complete explorations the merged [behaviors] set
    is identical to the sequential run's (property-tested);
    [executions]/[steps] may be larger because root-level sleep sets do
    not prune across shards, and each shard gets the full
    [max_executions] budget. Without [pool] (or with one of size 1) the
    sequential path runs — the default. *)
