(** Dynamic partial-order reduction (Flanagan-Godefroid 2005) with
    sleep sets and checkpointed replay elision.

    An alternative to {!Explore}'s stateful DFS: backtrack points are
    added lazily, only where a step is {e dependent} on an earlier step
    of another thread (conflicting access, same-lock operation,
    fork/join of that thread). Independent steps are never reordered, so
    the number of explored executions tracks the number of Mazurkiewicz
    traces instead of the number of interleavings. Textbook {b sleep
    sets} prune on top of that: a transition fully explored in a sibling
    subtree sleeps until a dependent step wakes it, and a state whose
    every enabled transition is asleep is not explored at all — classic
    DPOR + sleep sets, behaviour-preserving (property-tested against the
    sleep-set-free run and against {!Explore}).

    Transitions are taken at {!Explore.Visible_only} granularity: one
    visible operation (plus its invisible prefix) per step. A scheduling
    attempt that parks on a lock counts as a transition dependent on that
    lock, which keeps blocking sound.

    Historically this explorer was {e stateless}: every backtracked
    execution re-ran from the initial state, so an exploration of [n]
    executions of depth [d] cost O(n·d) transitions even though
    consecutive executions share long prefixes. By default it now keeps
    a bounded LRU {b checkpoint store} ({!Coop_util.Ckpt_cache}) of VM
    states keyed by execution-tree prefix: a backtracked execution
    resumes from the deepest cached ancestor of its divergence point and
    only the divergent suffix is executed fresh. The VM's persistent
    state makes checkpoints O(1) to take; the cap bounds what they can
    pin, and an evicted checkpoint merely costs a (deterministic) replay
    of the gap from its nearest cached ancestor. Checkpoints are parked
    only at every fourth stack depth: taking one pays a state-size walk
    for the store's weight accounting, so parking every level would tax
    each novel transition, while an unparked backtrack replays at most
    three transitions from the nearest parked ancestor. [~no_cache:true]
    restores the stateless behaviour and is kept as the differential
    oracle — both modes produce identical behaviour sets, executions and
    novel steps; they differ only in how prefix states are re-derived.

    Termination is unchanged: the explorer memoizes prefixes, not
    states, so programs with yield-based spin loops still have unfair
    infinite executions and exhaust [max_depth] (reported as
    incomplete). The stateful {!Explore} handles those instead — the two
    explorers remain complementary. *)

open Coop_trace

type result = {
  behaviors : Behavior.Set.t;  (** All behaviours of maximal executions. *)
  executions : int;  (** Maximal executions explored. *)
  steps : int;
      (** Total transitions taken; always
          [novel_steps + replayed_steps]. *)
  novel_steps : int;
      (** Transitions executed on the exploration frontier — fresh work
          the reduction itself demands. Identical with the cache on or
          off. *)
  replayed_steps : int;
      (** Transitions re-executed only to re-derive a prefix state
          (from the root when stateless, from the deepest cached
          ancestor otherwise). The replay-elision win is this number
          shrinking. *)
  cache_hits : int;  (** Checkpoint-store hits ([0] when stateless). *)
  complete : bool;  (** False when a budget was exhausted. *)
}

val default_cache : unit -> Vm.state Coop_util.Ckpt_cache.t
(** A fresh checkpoint store with the default 64 MiB cap and a
    [Vm.approx_words]-based weight — what {!run} creates when no [ckpt]
    is passed. Create one explicitly to share it across runs or to read
    {!Coop_util.Ckpt_cache.stats} afterwards. *)

val run :
  ?pool:Coop_util.Pool.t ->
  ?yields:Loc.Set.t ->
  ?max_executions:int ->
  ?max_depth:int ->
  ?max_segment:int ->
  ?no_cache:bool ->
  ?sleep_sets:bool ->
  ?ckpt:Vm.state Coop_util.Ckpt_cache.t ->
  Coop_lang.Bytecode.program ->
  result
(** [run prog] explores the program's preemptive behaviours.
    [max_executions] (default 50_000) bounds explored executions,
    [max_depth] (default 10_000) bounds transitions per execution,
    [max_segment] (default 100_000) bounds each transition's invisible
    prefix.

    [no_cache] (default [false]) disables the checkpoint store: every
    backtracked execution replays from the initial state — the
    stateless differential oracle. [ckpt] supplies the store to use
    (shared stores are mutex-protected and keys carry a per-run nonce,
    so concurrent runs may share one); without it a fresh store with the
    default 64 MiB cap and a [Vm.approx_words]-based weight is created
    per call. Cumulative counter deltas are flushed to [Coop_obs]
    ([ckpt/hits], [ckpt/misses], [ckpt/evictions], [ckpt/bytes],
    [ckpt/peak_bytes]) when telemetry is on.

    [sleep_sets] (default [true]) toggles sleep-set pruning;
    [~sleep_sets:false] is the plain-DPOR oracle — same behaviour set,
    more executions (property-tested).

    With a [pool] of more than one domain and at least two threads
    runnable initially, the root choice is sharded {e dynamically}: the
    first shard is the root choice the sequential run would take, and
    every further root backtrack point a shard discovers is spawned as a
    fresh pool task the moment it is requested (exactly once each). The
    spawned set is the least fixpoint of those requests — a superset of
    the lazy sequential root backtrack set, hence sound, and independent
    of pool size or scheduling, so results merge deterministically in
    root-tid order. Shards share one checkpoint store. On complete
    explorations the merged [behaviors] set is identical to the
    sequential run's (property-tested); [executions]/[steps] may be
    larger because root-level sleep sets do not prune across shards, and
    each shard gets the full [max_executions] budget. Without [pool] (or
    with one of size 1) the sequential path runs — the default. *)
