(** Exhaustive schedule exploration (a small stateless model checker).

    Used to validate the reduction theorem empirically (Figure 1): for a
    cooperable program, the set of behaviours reachable under arbitrary
    preemption equals the set reachable under cooperative scheduling.

    Exploration is a depth-first search over machine states with
    memoization on {!Vm.key}. Preemptive mode branches at every *visible*
    instruction (shared access, lock operation, spawn/join, print, yield) —
    thread-local instructions commute with everything and are executed
    eagerly, a sound reduction for behaviour-set equality. Cooperative mode
    branches only at yield points, blocking operations and thread
    termination. *)

open Coop_trace

type mode =
  | Preemptive  (** Context switches allowed at every visible instruction. *)
  | Cooperative  (** Context switches only at yields / blocking / exit. *)

type granularity =
  | Every_instruction
      (** Branch at every single instruction — the naive baseline, for the
          ablation that measures what the visible-only reduction saves. *)
  | Visible_only
      (** Branch only at visible instructions (default). Sound for
          behaviour-set equality because invisible instructions commute
          with every concurrent operation — property-tested against
          [Every_instruction]. *)

type result = {
  behaviors : Behavior.Set.t;  (** All behaviours found. *)
  complete : bool;
      (** True when the whole state space fit in the budgets, i.e. the
          behaviour set is exact. *)
  states : int;  (** Distinct states visited. *)
  deadlocks : int;  (** Terminal states that were deadlocks. *)
  novel_steps : int;
      (** Segments executed on the exploration frontier proper. *)
  replayed_steps : int;
      (** Segments re-executed only to re-derive an evicted frontier
          checkpoint (parallel runs; [0] sequentially). *)
  cache_hits : int;  (** Checkpoint-store hits ([0] sequentially). *)
}

val run :
  ?pool:Coop_util.Pool.t ->
  ?yields:Loc.Set.t ->
  ?max_states:int ->
  ?max_segment:int ->
  ?granularity:granularity ->
  ?no_cache:bool ->
  ?ckpt:Vm.state Coop_util.Ckpt_cache.t ->
  mode ->
  Coop_lang.Bytecode.program ->
  result
(** [run ?yields ?max_states ?max_segment mode prog] explores [prog].
    [max_states] (default 200_000) bounds distinct visited states;
    [max_segment] (default 100_000) bounds the invisible-instruction prefix
    executed per scheduling decision (guards against yield-free infinite
    loops).

    With a [pool] of more than one domain, the top-level branch frontier is
    expanded breadth-first until it is wide enough and the subtrees are
    explored in parallel, each with its own memo table and the full
    [max_states] budget. Frontier start states are parked in a
    checkpoint store ({!Coop_util.Ckpt_cache}) keyed by the node's tid
    path instead of being captured by the task closures, so a wide
    frontier pins at most the store's byte cap: a task whose checkpoint
    was evicted re-derives its start state by deterministically
    replaying that path (counted in [replayed_steps]). [ckpt] supplies
    the store (default: a fresh one, 64 MiB cap); [no_cache] (default
    [false]) restores capture-by-closure — the differential oracle with
    byte-identical results. Counter deltas flush to [Coop_obs]
    ([ckpt/*]) when telemetry is on.

    On complete explorations [behaviors], [complete]
    and [deadlocks] are identical to the sequential run (deadlocked
    terminals are deduplicated by state key across shards;
    property-tested); [states] may be larger because memoization is lost
    across shards. Without [pool] (or with one of size 1) the sequential
    path runs — the default. *)

val behaviors_equal : result -> result -> bool
(** Whether two complete explorations produced the same behaviour set. *)
