open Coop_trace
open Coop_lang
module Imap = Map.Make (Int)

type status =
  | Runnable
  | Blocked_on_lock of int
  | Blocked_on_join of int
  | Waiting of int
  | Reacquiring of int
  | Finished
  | Faulted of string

type frame = {
  func : int;
  pc : int;
  locals : int Imap.t;
  stack : int list;
}

type thread = {
  frames : frame list;
  status : status;
  entered : bool;  (* Enter event for the root frame already emitted *)
  pending_yield : bool;  (* injected yield at current pc already emitted *)
  wait_depth : int;  (* reentrancy depth to restore after a wait *)
}

(* Event payloads the program can ever emit, precomputed once per program
   so the interpreter's hot loop allocates no [Loc.t] and no operation
   variant for the common events. Built in [init], immutable afterwards —
   derived states share one [caches] record, which also makes it safe to
   share across domains (exploration shards states over a pool). Fork,
   Join and Out payloads stay dynamic: their arguments are run-time values
   and the events are rare. *)
type caches = {
  locs : Loc.t array array;  (* func -> pc -> location *)
  enter_ops : Event.op array;  (* func -> Enter *)
  exit_ops : Event.op array;  (* func -> Exit *)
  acquire_ops : Event.op array;  (* handle -> Acquire *)
  release_ops : Event.op array;  (* handle -> Release *)
  read_global_ops : Event.op array;  (* slot -> Read (Global _) *)
  write_global_ops : Event.op array;  (* slot -> Write (Global _) *)
  read_cell_ops : Event.op array array;  (* aid -> idx -> Read (Cell _) *)
  write_cell_ops : Event.op array array;
}

type state = {
  prog : Bytecode.program;
  caches : caches;
  globals : int Imap.t;
  arrays : int Imap.t Imap.t;  (* array id -> index -> value *)
  locks : (int * int) Imap.t;  (* handle -> (owner, depth) *)
  conditions : int list Imap.t;  (* handle -> waiting tids, FIFO *)
  threads : thread Imap.t;
  next_tid : int;
  output_rev : int list;
  failures_rev : (int * string) list;
  steps : int;
  last_yielded : bool;
}

exception Fault of string

let build_caches (prog : Bytecode.program) =
  let n_funcs = Array.length prog.funcs in
  {
    locs =
      Array.init n_funcs (fun func ->
          Array.init
            (Array.length prog.funcs.(func).Bytecode.code)
            (fun pc -> Bytecode.loc prog ~func ~pc));
    enter_ops = Array.init n_funcs (fun f -> Event.Enter f);
    exit_ops = Array.init n_funcs (fun f -> Event.Exit f);
    acquire_ops = Array.init prog.n_locks (fun h -> Event.Acquire h);
    release_ops = Array.init prog.n_locks (fun h -> Event.Release h);
    read_global_ops =
      Array.init prog.n_globals (fun g -> Event.Read (Event.Global g));
    write_global_ops =
      Array.init prog.n_globals (fun g -> Event.Write (Event.Global g));
    read_cell_ops =
      Array.mapi
        (fun aid size -> Array.init size (fun i -> Event.Read (Event.Cell (aid, i))))
        prog.array_sizes;
    write_cell_ops =
      Array.mapi
        (fun aid size ->
          Array.init size (fun i -> Event.Write (Event.Cell (aid, i))))
        prog.array_sizes;
  }

let init prog =
  let globals =
    Array.to_seqi prog.Bytecode.global_init
    |> Seq.fold_left (fun m (i, v) -> Imap.add i v m) Imap.empty
  in
  let main_frame =
    { func = prog.Bytecode.main; pc = 0; locals = Imap.empty; stack = [] }
  in
  let t0 =
    { frames = [ main_frame ]; status = Runnable; entered = false;
      pending_yield = false; wait_depth = 0 }
  in
  {
    prog;
    caches = build_caches prog;
    globals;
    arrays = Imap.empty;
    locks = Imap.empty;
    conditions = Imap.empty;
    threads = Imap.singleton 0 t0;
    next_tid = 1;
    output_rev = [];
    failures_rev = [];
    steps = 0;
    last_yielded = false;
  }

let program st = st.prog

let thread_status st tid =
  match Imap.find_opt tid st.threads with
  | Some t -> t.status
  | None -> raise Not_found

let thread_ids st = Imap.bindings st.threads |> List.map fst

let lock_free_for st tid handle =
  match Imap.find_opt handle st.locks with
  | None -> true
  | Some (owner, _) -> owner = tid

let join_target_done st target =
  match Imap.find_opt target st.threads with
  | None -> false
  | Some t -> ( match t.status with Finished | Faulted _ -> true | _ -> false)

let can_run st tid (t : thread) =
  match t.status with
  | Runnable -> true
  | Blocked_on_lock h | Reacquiring h -> lock_free_for st tid h
  | Blocked_on_join u -> join_target_done st u
  | Waiting _ -> false
  | Finished | Faulted _ -> false

let runnable st =
  Imap.fold (fun tid t acc -> if can_run st tid t then tid :: acc else acc)
    st.threads []
  |> List.rev

let all_quiescent st =
  Imap.for_all
    (fun _ t ->
      match t.status with Finished | Faulted _ -> true | _ -> false)
    st.threads

let deadlocked st = runnable st = [] && not (all_quiescent st)

let global_value st slot =
  match Imap.find_opt slot st.globals with Some v -> v | None -> 0

let output st = List.rev st.output_rev

let failures st = List.rev st.failures_rev

let steps_taken st = st.steps

let last_step_yielded st = st.last_yielded

(* Rough retained size in words, for checkpoint-cache budgeting. Map
   nodes are priced at ~5 words per binding; structural sharing between
   derived states is invisible here, so per-state figures over-count and
   a byte cap computed from them is conservative. The program and the
   event caches are shared by every state of a run and excluded. *)
let approx_words st =
  let node = 5 in
  let frame_words (f : frame) =
    6 + (node * Imap.cardinal f.locals) + (3 * List.length f.stack)
  in
  let thread_words (t : thread) =
    8 + List.fold_left (fun acc f -> acc + frame_words f) 0 t.frames
  in
  (node * Imap.cardinal st.globals)
  + Imap.fold
      (fun _ m acc -> acc + node + (node * Imap.cardinal m))
      st.arrays 0
  + ((node + 3) * Imap.cardinal st.locks)
  + Imap.fold
      (fun _ ws acc -> acc + node + (3 * List.length ws))
      st.conditions 0
  + Imap.fold (fun _ t acc -> acc + node + thread_words t) st.threads 0
  + (3 * List.length st.output_rev)
  + (6 * List.length st.failures_rev)
  + 16

let peek_instr st tid =
  match Imap.find_opt tid st.threads with
  | None -> None
  | Some t -> (
      match t.frames with
      | [] -> None
      | frame :: _ ->
          let f = st.prog.Bytecode.funcs.(frame.func) in
          if frame.pc < 0 || frame.pc >= Array.length f.code then None
          else
            Some
              ( f.code.(frame.pc),
                Bytecode.loc st.prog ~func:frame.func ~pc:frame.pc ))

(* --- Arithmetic -------------------------------------------------------- *)

let apply_binop op a b =
  let bool_ v = if v then 1 else 0 in
  match op with
  | Ast.Add -> a + b
  | Ast.Sub -> a - b
  | Ast.Mul -> a * b
  | Ast.Div -> if b = 0 then raise (Fault "division by zero") else a / b
  | Ast.Mod -> if b = 0 then raise (Fault "modulo by zero") else a mod b
  | Ast.Lt -> bool_ (a < b)
  | Ast.Le -> bool_ (a <= b)
  | Ast.Gt -> bool_ (a > b)
  | Ast.Ge -> bool_ (a >= b)
  | Ast.Eq -> bool_ (a = b)
  | Ast.Ne -> bool_ (a <> b)
  | Ast.And -> bool_ (a <> 0 && b <> 0)
  | Ast.Or -> bool_ (a <> 0 || b <> 0)

let apply_unop op a =
  match op with Ast.Neg -> -a | Ast.Not -> if a = 0 then 1 else 0

(* --- Stepping ---------------------------------------------------------- *)

let pop = function
  | v :: rest -> (v, rest)
  | [] -> raise (Fault "operand stack underflow")

let pop2 = function
  | b :: a :: rest -> (a, b, rest)
  | _ -> raise (Fault "operand stack underflow")

let set_thread st tid t = { st with threads = Imap.add tid t st.threads }

let check_array st aid idx =
  let n = Array.length st.prog.Bytecode.array_sizes in
  if aid < 0 || aid >= n then raise (Fault "invalid array id");
  let size = st.prog.Bytecode.array_sizes.(aid) in
  if idx < 0 || idx >= size then
    raise
      (Fault
         (Printf.sprintf "array index %d out of bounds for %s[%d]" idx
            st.prog.Bytecode.array_names.(aid) size))

let array_get st aid idx =
  match Imap.find_opt aid st.arrays with
  | None -> 0
  | Some m -> ( match Imap.find_opt idx m with Some v -> v | None -> 0)

let array_set st aid idx v =
  let m = match Imap.find_opt aid st.arrays with Some m -> m | None -> Imap.empty in
  { st with arrays = Imap.add aid (Imap.add idx v m) st.arrays }

let check_lock st handle =
  if handle < 0 || handle >= st.prog.Bytecode.n_locks then
    raise (Fault (Printf.sprintf "invalid lock handle %d" handle))

(* Per-domain scratch event, reused for every emission: sinks receive the
   same record with fields rewritten (the [Trace.Sink] contract — a sink
   that retains events must [Event.copy]). Domain-local because
   exploration steps disjoint states from several domains at once. *)
let scratch_key =
  Domain.DLS.new_key (fun () ->
      Event.make ~tid:(-1) ~op:Event.Yield ~loc:Loc.none)

let emit_to sink (scratch : Event.t) tid loc op =
  scratch.Event.tid <- tid;
  scratch.Event.op <- op;
  scratch.Event.loc <- loc;
  sink scratch
  [@@inline]

(* Execute one instruction of [tid]. Precondition: the thread can run. *)
let step ?(yields = Loc.Set.empty) st tid ~sink =
  let t =
    match Imap.find_opt tid st.threads with
    | Some t -> t
    | None -> invalid_arg "Vm.step: unknown thread"
  in
  if not (can_run st tid t) then invalid_arg "Vm.step: thread cannot run";
  let frame, outer_frames =
    match t.frames with
    | f :: rest -> (f, rest)
    | [] -> invalid_arg "Vm.step: thread has no frame"
  in
  let code = st.prog.Bytecode.funcs.(frame.func).code in
  let caches = st.caches in
  let loc =
    let table = caches.locs.(frame.func) in
    if frame.pc >= 0 && frame.pc < Array.length table then table.(frame.pc)
    else Bytecode.loc st.prog ~func:frame.func ~pc:frame.pc
  in
  let st = { st with steps = st.steps + 1; last_yielded = false } in
  let scratch = Domain.DLS.get scratch_key in
  (* Root-frame Enter event, once per thread. *)
  let st, t =
    if t.entered then (st, t)
    else begin
      emit_to sink scratch tid loc caches.enter_ops.(frame.func);
      (st, { t with entered = true })
    end
  in
  (* A woken waiter's next step reacquires its monitor at the saved
     reentrancy depth; no instruction executes this step. *)
  match t.status with
  | Reacquiring handle ->
      emit_to sink scratch tid loc caches.acquire_ops.(handle);
      let st =
        { st with locks = Imap.add handle (tid, max 1 t.wait_depth) st.locks }
      in
      set_thread st tid { t with status = Runnable; wait_depth = 0 }
  | _ ->
  (* Injected yield: its own scheduling point, before the instruction. *)
  if Loc.Set.mem loc yields && not t.pending_yield then begin
    emit_to sink scratch tid loc Event.Yield;
    let t = { t with pending_yield = true; status = Runnable } in
    { (set_thread st tid t) with last_yielded = true }
  end
  else begin
    let t = { t with pending_yield = false } in
    let advance ?(d = 1) frame = { frame with pc = frame.pc + d } in
    let finish_with st t = set_thread st tid t in
    try
      match code.(frame.pc) with
      | Bytecode.Const n ->
          let frame = advance { frame with stack = n :: frame.stack } in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Load_global g ->
          emit_to sink scratch tid loc
            (if g >= 0 && g < Array.length caches.read_global_ops then
               caches.read_global_ops.(g)
             else Event.Read (Event.Global g));
          let v = global_value st g in
          let frame = advance { frame with stack = v :: frame.stack } in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Store_global g ->
          let v, stack = pop frame.stack in
          emit_to sink scratch tid loc
            (if g >= 0 && g < Array.length caches.write_global_ops then
               caches.write_global_ops.(g)
             else Event.Write (Event.Global g));
          let st = { st with globals = Imap.add g v st.globals } in
          let frame = advance { frame with stack } in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Load_local l ->
          let v = match Imap.find_opt l frame.locals with Some v -> v | None -> 0 in
          let frame = advance { frame with stack = v :: frame.stack } in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Store_local l ->
          let v, stack = pop frame.stack in
          let frame = advance { frame with stack; locals = Imap.add l v frame.locals } in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Load_elem aid ->
          let idx, stack = pop frame.stack in
          check_array st aid idx;
          emit_to sink scratch tid loc caches.read_cell_ops.(aid).(idx);
          let v = array_get st aid idx in
          let frame = advance { frame with stack = v :: stack } in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Store_elem aid ->
          let idx, v, stack = pop2 frame.stack in
          check_array st aid idx;
          emit_to sink scratch tid loc caches.write_cell_ops.(aid).(idx);
          let st = array_set st aid idx v in
          let frame = advance { frame with stack } in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Array_len aid ->
          if aid < 0 || aid >= Array.length st.prog.Bytecode.array_sizes then
            raise (Fault "invalid array id");
          let v = st.prog.Bytecode.array_sizes.(aid) in
          let frame = advance { frame with stack = v :: frame.stack } in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Binop op ->
          let a, b, stack = pop2 frame.stack in
          let v = apply_binop op a b in
          let frame = advance { frame with stack = v :: stack } in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Unop op ->
          let a, stack = pop frame.stack in
          let v = apply_unop op a in
          let frame = advance { frame with stack = v :: stack } in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Jump target ->
          let frame = { frame with pc = target } in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Jump_if_zero target ->
          let v, stack = pop frame.stack in
          let frame =
            if v = 0 then { frame with pc = target; stack }
            else advance { frame with stack }
          in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Acquire -> (
          let handle =
            match frame.stack with
            | h :: _ -> h
            | [] -> raise (Fault "operand stack underflow")
          in
          check_lock st handle;
          match Imap.find_opt handle st.locks with
          | Some (owner, depth) when owner = tid ->
              (* Reentrant acquire: no event. *)
              let st = { st with locks = Imap.add handle (tid, depth + 1) st.locks } in
              let _, stack = pop frame.stack in
              let frame = advance { frame with stack } in
              finish_with st { t with frames = frame :: outer_frames; status = Runnable }
          | Some _ ->
              (* Held by someone else: park without consuming the handle. *)
              finish_with st { t with status = Blocked_on_lock handle }
          | None ->
              emit_to sink scratch tid loc caches.acquire_ops.(handle);
              let st = { st with locks = Imap.add handle (tid, 1) st.locks } in
              let _, stack = pop frame.stack in
              let frame = advance { frame with stack } in
              finish_with st { t with frames = frame :: outer_frames; status = Runnable })
      | Bytecode.Release -> (
          let handle, stack = pop frame.stack in
          check_lock st handle;
          match Imap.find_opt handle st.locks with
          | Some (owner, depth) when owner = tid ->
              let st =
                if depth = 1 then begin
                  emit_to sink scratch tid loc caches.release_ops.(handle);
                  { st with locks = Imap.remove handle st.locks }
                end
                else { st with locks = Imap.add handle (tid, depth - 1) st.locks }
              in
              let frame = advance { frame with stack } in
              finish_with st { t with frames = frame :: outer_frames; status = Runnable }
          | _ ->
              raise
                (Fault
                   (Printf.sprintf "release of lock %s not held"
                      st.prog.Bytecode.lock_names.(handle))))
      | Bytecode.Wait -> (
          let handle, stack = pop frame.stack in
          check_lock st handle;
          match Imap.find_opt handle st.locks with
          | Some (owner, depth) when owner = tid ->
              (* Release the monitor fully and park on its condition. The
                 event encoding is Release;Yield now and Acquire at resume,
                 which makes wait a scheduling point for the cooperative
                 semantics and gives the analyses the right happens-before
                 edges with no new event kinds. *)
              emit_to sink scratch tid loc caches.release_ops.(handle);
              emit_to sink scratch tid loc Event.Yield;
              let queue =
                match Imap.find_opt handle st.conditions with
                | Some q -> q
                | None -> []
              in
              let st =
                { st with
                  locks = Imap.remove handle st.locks;
                  conditions = Imap.add handle (queue @ [ tid ]) st.conditions }
              in
              let frame = advance { frame with stack } in
              let st =
                finish_with st
                  { t with frames = frame :: outer_frames;
                    status = Waiting handle; wait_depth = depth }
              in
              { st with last_yielded = true }
          | _ ->
              raise
                (Fault
                   (Printf.sprintf "wait on lock %s not held"
                      st.prog.Bytecode.lock_names.(handle))))
      | Bytecode.Notify all -> (
          let handle, stack = pop frame.stack in
          check_lock st handle;
          match Imap.find_opt handle st.locks with
          | Some (owner, _) when owner = tid ->
              let waiters =
                match Imap.find_opt handle st.conditions with
                | Some q -> q
                | None -> []
              in
              let woken, remaining =
                if all then (waiters, [])
                else begin
                  match waiters with
                  | [] -> ([], [])
                  | w :: rest -> ([ w ], rest)
                end
              in
              let st =
                { st with conditions = Imap.add handle remaining st.conditions }
              in
              let st =
                List.fold_left
                  (fun st w ->
                    match Imap.find_opt w st.threads with
                    | Some wt -> set_thread st w { wt with status = Reacquiring handle }
                    | None -> st)
                  st woken
              in
              let frame = advance { frame with stack } in
              finish_with st { t with frames = frame :: outer_frames; status = Runnable }
          | _ ->
              raise
                (Fault
                   (Printf.sprintf "notify on lock %s not held"
                      st.prog.Bytecode.lock_names.(handle))))
      | Bytecode.Yield_instr ->
          emit_to sink scratch tid loc Event.Yield;
          let frame = advance frame in
          let st = finish_with st { t with frames = frame :: outer_frames; status = Runnable } in
          { st with last_yielded = true }
      | Bytecode.Atomic_begin ->
          emit_to sink scratch tid loc Event.Atomic_begin;
          let frame = advance frame in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Atomic_end ->
          emit_to sink scratch tid loc Event.Atomic_end;
          let frame = advance frame in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Spawn (fi, nargs) ->
          let rec take n stack acc =
            if n = 0 then (acc, stack)
            else
              match stack with
              | v :: rest -> take (n - 1) rest (v :: acc)
              | [] -> raise (Fault "operand stack underflow")
          in
          let args, stack = take nargs frame.stack [] in
          let child = st.next_tid in
          emit_to sink scratch tid loc (Event.Fork child);
          let locals =
            List.fold_left
              (fun (i, m) v -> (i + 1, Imap.add i v m))
              (0, Imap.empty) args
            |> snd
          in
          let child_frame = { func = fi; pc = 0; locals; stack = [] } in
          let child_thread =
            { frames = [ child_frame ]; status = Runnable; entered = false;
              pending_yield = false; wait_depth = 0 }
          in
          let st =
            { st with
              threads = Imap.add child child_thread st.threads;
              next_tid = child + 1 }
          in
          let frame = advance { frame with stack = child :: stack } in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Join -> (
          let target =
            match frame.stack with
            | v :: _ -> v
            | [] -> raise (Fault "operand stack underflow")
          in
          match Imap.find_opt target st.threads with
          | None -> raise (Fault (Printf.sprintf "join on unknown thread %d" target))
          | Some u -> (
              match u.status with
              | Finished | Faulted _ ->
                  emit_to sink scratch tid loc (Event.Join target);
                  let _, stack = pop frame.stack in
                  let frame = advance { frame with stack } in
                  finish_with st { t with frames = frame :: outer_frames; status = Runnable }
              | _ -> finish_with st { t with status = Blocked_on_join target }))
      | Bytecode.Call (fi, nargs) ->
          let rec take n stack acc =
            if n = 0 then (acc, stack)
            else
              match stack with
              | v :: rest -> take (n - 1) rest (v :: acc)
              | [] -> raise (Fault "operand stack underflow")
          in
          let args, stack = take nargs frame.stack [] in
          emit_to sink scratch tid loc caches.enter_ops.(fi);
          let locals =
            List.fold_left
              (fun (i, m) v -> (i + 1, Imap.add i v m))
              (0, Imap.empty) args
            |> snd
          in
          let callee = { func = fi; pc = 0; locals; stack = [] } in
          let caller = advance { frame with stack } in
          finish_with st
            { t with frames = callee :: caller :: outer_frames; status = Runnable }
      | Bytecode.Ret -> (
          let v, _ = pop frame.stack in
          emit_to sink scratch tid loc caches.exit_ops.(frame.func);
          match outer_frames with
          | [] -> finish_with st { t with frames = []; status = Finished }
          | caller :: rest ->
              let caller = { caller with stack = v :: caller.stack } in
              finish_with st { t with frames = caller :: rest; status = Runnable })
      | Bytecode.Print ->
          let v, stack = pop frame.stack in
          emit_to sink scratch tid loc (Event.Out v);
          let st = { st with output_rev = v :: st.output_rev } in
          let frame = advance { frame with stack } in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Assert ->
          let v, stack = pop frame.stack in
          if v = 0 then
            raise (Fault (Printf.sprintf "assertion failed at line %d" loc.Loc.line))
          else begin
            let frame = advance { frame with stack } in
            finish_with st { t with frames = frame :: outer_frames; status = Runnable }
          end
      | Bytecode.Pop ->
          let _, stack = pop frame.stack in
          let frame = advance { frame with stack } in
          finish_with st { t with frames = frame :: outer_frames; status = Runnable }
      | Bytecode.Halt -> finish_with st { t with status = Finished }
    with Fault msg ->
      let st = { st with failures_rev = (tid, msg) :: st.failures_rev } in
      set_thread st tid { t with status = Faulted msg }
  end

(* --- Canonical serialization for memoization --------------------------- *)

let key st =
  let buf = Buffer.create 256 in
  let add_int n =
    Buffer.add_string buf (string_of_int n);
    Buffer.add_char buf ','
  in
  Buffer.add_char buf 'G';
  Imap.iter (fun k v -> add_int k; add_int v) st.globals;
  Buffer.add_char buf 'A';
  Imap.iter
    (fun a m ->
      add_int a;
      Imap.iter (fun i v -> add_int i; add_int v) m;
      Buffer.add_char buf ';')
    st.arrays;
  Buffer.add_char buf 'L';
  Imap.iter (fun h (o, d) -> add_int h; add_int o; add_int d) st.locks;
  Buffer.add_char buf 'C';
  Imap.iter
    (fun h q ->
      add_int h;
      List.iter add_int q;
      Buffer.add_char buf ';')
    st.conditions;
  Buffer.add_char buf 'T';
  Imap.iter
    (fun tid t ->
      add_int tid;
      (match t.status with
      | Runnable -> Buffer.add_char buf 'r'
      | Blocked_on_lock h -> Buffer.add_char buf 'l'; add_int h
      | Blocked_on_join u -> Buffer.add_char buf 'j'; add_int u
      | Waiting h -> Buffer.add_char buf 'w'; add_int h
      | Reacquiring h -> Buffer.add_char buf 'q'; add_int h
      | Finished -> Buffer.add_char buf 'f'
      | Faulted _ -> Buffer.add_char buf 'x');
      Buffer.add_char buf (if t.entered then 'e' else '.');
      Buffer.add_char buf (if t.pending_yield then 'y' else '.');
      add_int t.wait_depth;
      List.iter
        (fun f ->
          add_int f.func;
          add_int f.pc;
          Buffer.add_char buf 's';
          List.iter add_int f.stack;
          Buffer.add_char buf 'v';
          Imap.iter (fun k v -> add_int k; add_int v) f.locals;
          Buffer.add_char buf '|')
        t.frames;
      Buffer.add_char buf '!')
    st.threads;
  Buffer.add_char buf 'N';
  add_int st.next_tid;
  Buffer.add_char buf 'O';
  List.iter add_int st.output_rev;
  Buffer.add_char buf 'F';
  List.iter (fun (tid, _) -> add_int tid) st.failures_rev;
  Buffer.contents buf
