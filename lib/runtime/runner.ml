open Coop_trace

type termination =
  | Completed
  | Deadlock
  | Step_limit

type outcome = {
  final : Vm.state;
  termination : termination;
  steps : int;
}

let run_raw ~yields ~max_steps ~sched ~sink prog =
  let rec loop st last steps =
    if steps >= max_steps then
      { final = st; termination = Step_limit; steps }
    else begin
      match Vm.runnable st with
      | [] ->
          let termination = if Vm.all_quiescent st then Completed else Deadlock in
          { final = st; termination; steps }
      | runnable ->
          let ctx =
            { Sched.state = st; runnable; last;
              last_yielded = Vm.last_step_yielded st }
          in
          let tid = sched.Sched.pick ctx in
          let st = Vm.step ~yields st tid ~sink in
          loop st (Some tid) (steps + 1)
    end
  in
  loop (Vm.init prog) None 0

let run ?(yields = Loc.Set.empty) ?(max_steps = 10_000_000) ~sched ~sink prog =
  if not (Coop_obs.enabled ()) then run_raw ~yields ~max_steps ~sched ~sink prog
  else
    (* Telemetry path: one span per VM run, plus step and event-dispatch
       counters accumulated locally and flushed once — the checked-per-run
       branch above is the uninstrumented hot path's entire cost. *)
    Coop_obs.span ("vm/run:" ^ sched.Sched.name) (fun () ->
        let events = ref 0 in
        let counting e = incr events; sink e in
        let outcome = run_raw ~yields ~max_steps ~sched ~sink:counting prog in
        Coop_obs.count "vm/steps" outcome.steps;
        Coop_obs.count "vm/events" !events;
        outcome)

let record ?yields ?max_steps ~sched prog =
  let trace = Trace.create () in
  let outcome =
    run ?yields ?max_steps ~sched ~sink:(Trace.Sink.recording trace) prog
  in
  (outcome, trace)

let analyze ?yields ?max_steps ~sched analysis prog =
  let outcome =
    run ?yields ?max_steps ~sched ~sink:(Analysis.sink analysis) prog
  in
  (outcome, Analysis.finalize analysis)

let source ?yields ?max_steps ~sched prog : Source.t =
 fun sink -> ignore (run ?yields ?max_steps ~sched:(sched ()) ~sink prog)

let behavior_of outcome = Behavior.of_state outcome.final

let pp_termination ppf = function
  | Completed -> Format.pp_print_string ppf "completed"
  | Deadlock -> Format.pp_print_string ppf "deadlock"
  | Step_limit -> Format.pp_print_string ppf "step-limit"
