open Coop_trace
open Coop_lang
module Iset = Set.Make (Int)

type result = {
  behaviors : Behavior.Set.t;
  executions : int;
  steps : int;  (* always novel_steps + replayed_steps *)
  novel_steps : int;
  replayed_steps : int;
  cache_hits : int;
  complete : bool;
}

(* The object a transition touches, for the dependency relation. *)
type obj =
  | Ovar of Event.var
  | Olock of int
  | Othread of int  (* fork/join of, or park-on-join for, this thread *)
  | Oout  (* print: globally ordered because output order is observable *)
  | Onone

type step_info = {
  tid : int;
  obj : obj;
  is_write : bool;
}

let dependent a b =
  if a.tid = b.tid then false  (* program order needs no backtracking *)
  else begin
    match (a.obj, b.obj) with
    | Ovar v, Ovar w ->
        Event.equal_var v w && (a.is_write || b.is_write)
    | Olock l, Olock m -> l = m
    | Oout, Oout -> true
    | Othread t, _ -> t = b.tid
    | _, Othread t -> t = a.tid
    | _ -> false
  end

let is_visible = function
  | Bytecode.Load_global _ | Bytecode.Store_global _ | Bytecode.Load_elem _
  | Bytecode.Store_elem _ | Bytecode.Acquire | Bytecode.Release
  | Bytecode.Wait | Bytecode.Notify _ | Bytecode.Yield_instr
  | Bytecode.Spawn _ | Bytecode.Join | Bytecode.Print ->
      true
  | _ -> false

(* Execute one transition of [tid]: the invisible prefix, then one visible
   instruction (or a park). Returns the new state and the step summary, or
   [None] when the invisible-prefix budget runs out. The visible operation
   is recovered from the event the step emits. *)
let exec_transition ~yields ~max_segment st tid =
  let captured = ref Onone in
  let wrote = ref false in
  let sink (e : Event.t) =
    match e.op with
    | Event.Read v -> captured := Ovar v
    | Event.Write v ->
        captured := Ovar v;
        wrote := true
    | Event.Acquire l | Event.Release l -> captured := Olock l
    | Event.Fork t | Event.Join t -> captured := Othread t
    | Event.Out _ -> captured := Oout
    | Event.Yield -> ()  (* leaves a Wait's Release capture in place *)
    | Event.Enter _ | Event.Exit _ | Event.Atomic_begin | Event.Atomic_end ->
        ()
  in
  let rec go st fuel =
    if fuel = 0 then None
    else if
      match Vm.thread_status st tid with Vm.Reacquiring _ -> true | _ -> false
    then begin
      (* Monitor reacquire: a visible lock transition of its own. *)
      let st' = Vm.step ~yields st tid ~sink in
      Some (st', { tid; obj = !captured; is_write = false })
    end
    else begin
      match Vm.peek_instr st tid with
      | None -> Some (st, { tid; obj = Onone; is_write = false })
      | Some (instr, loc) ->
          let injected = Loc.Set.mem loc yields in
          if is_visible instr || injected then begin
            let st' = Vm.step ~yields st tid ~sink in
            let obj =
              match Vm.thread_status st' tid with
              | Vm.Blocked_on_lock h | Vm.Waiting h | Vm.Reacquiring h ->
                  Olock h  (* parked or waiting: depends on the monitor *)
              | Vm.Blocked_on_join u -> Othread u
              | _ -> !captured
            in
            Some (st', { tid; obj; is_write = !wrote })
          end
          else begin
            let st' = Vm.step ~yields st tid ~sink in
            match Vm.thread_status st' tid with
            | Vm.Finished | Vm.Faulted _ ->
                Some (st', { tid; obj = Onone; is_write = false })
            | _ -> go st' (fuel - 1)
          end
    end
  in
  go st max_segment

(* Frames no longer pin a [Vm.state]: a frame holds only the choice
   bookkeeping plus its execution-tree prefix [key] ("<nonce>.t.t...",
   one segment per taken tid). The state before the choice is fetched
   from the shared checkpoint store and, on a miss, re-derived by
   replaying the recorded path from the deepest cached ancestor — so
   peak memory is the cache cap, not stack-depth states, and backtracked
   executions skip re-running their shared prefix. *)
type frame = {
  key : string;  (* checkpoint key of the state before this choice *)
  enabled : Iset.t;
  mutable backtrack : Iset.t;
  mutable tried : Iset.t;
  mutable taken : step_info option;  (* the step executed from this frame *)
  mutable sleep : (int * step_info) list;
      (* threads whose next transition was fully explored in a sibling
         subtree; skipped here, woken by dependent steps (sleep sets) *)
}

(* Distinguishes checkpoint keys of concurrent/successive runs sharing
   one store; replay only ever hits keys written by the same run. *)
let run_nonce = Atomic.make 0

(* Checkpoint spacing: only every [ckpt_spacing]-th stack depth is parked
   in the store (the root always is). Parking every level would pay the
   store's weight estimate — an O(state) walk — on every novel step,
   eating most of what elision saves; with spacing, a backtracked choice
   at an unparked depth replays at most [ckpt_spacing - 1] transitions
   from its nearest parked ancestor. Must be a power of two. *)
let ckpt_spacing = 4

let parked_depth i = i land (ckpt_spacing - 1) = 0

(* One DPOR exploration. [root_only = Some p] restricts the root frame to
   the single first choice [p]: its siblings are pre-marked tried, so a
   shard explores exactly the subtree rooted at first step [p]. Lazy
   backtrack additions at the root — the persistent-set requests DPOR
   discovers while exploring that subtree — are reported through
   [root_notify] instead of being mutated into the (already restricted)
   root frame: [run] turns each newly requested root choice into a fresh
   pool task, so shards are spawned on demand rather than pre-sharded
   over every enabled tid. The spawned set is a deterministic fixpoint (a
   superset of the sequential root persistent set, hence sound); the
   shards lose the root-level sleep sets, so they may re-explore
   executions a sequential run would have pruned (counted in
   [executions]/[steps]), but the behaviour set is exact either way. *)
let run_seq ?root_only ?root_notify ?cache ?(sleep_sets = true)
    ?(yields = Loc.Set.empty) ?(max_executions = 50_000)
    ?(max_depth = 10_000) ?(max_segment = 100_000) prog =
  let behaviors = ref Behavior.Set.empty in
  let executions = ref 0 in
  let novel = ref 0 in
  let replayed = ref 0 in
  let cache_hits = ref 0 in
  let complete = ref true in
  let record st =
    incr executions;
    behaviors := Behavior.Set.add (Behavior.of_state st) !behaviors
  in
  (* The execution stack; index 0 is the initial state. *)
  let stack : frame array ref = ref [||] in
  let depth = ref 0 in
  let push frame =
    if !depth >= Array.length !stack then begin
      let bigger =
        Array.make (max 64 (2 * Array.length !stack)) frame
      in
      Array.blit !stack 0 bigger 0 (Array.length !stack);
      stack := bigger
    end;
    !stack.(!depth) <- frame;
    incr depth
  in
  let make_frame ?(sleep = []) ~key st =
    let enabled = Iset.of_list (Vm.runnable st) in
    let awake =
      Iset.filter (fun p -> not (List.mem_assoc p sleep)) enabled
    in
    let backtrack =
      (* Textbook sleep sets: a frame whose every enabled transition is
         asleep is sleep-blocked — each continuation was fully covered in
         an earlier sibling subtree, so exploring any of them here would
         only re-derive known behaviours. Leave the backtrack set empty
         and the frame records nothing. *)
      match Iset.min_elt_opt awake with
      | Some p -> Iset.singleton p
      | None -> Iset.empty
    in
    { key; enabled; backtrack; tried = Iset.empty; taken = None; sleep }
  in
  (* State before the choice at depth [i]: cached checkpoint if present,
     else re-derived by replaying the recorded step of the parent frame
     onto the parent's state (recursively, from the deepest cached
     ancestor). Replay is deterministic — same yields, same fuel — so a
     transition that succeeded when first executed succeeds again. *)
  let rec state_at i =
    let fr = !stack.(i) in
    let rederive () =
      if i = 0 then Vm.init prog
      else begin
        let parent = state_at (i - 1) in
        let info =
          match !stack.(i - 1).taken with
          | Some info -> info
          | None -> assert false  (* ancestors always have a taken step *)
        in
        match exec_transition ~yields ~max_segment parent info.tid with
        | Some (st, _) ->
            incr replayed;
            st
        | None -> assert false  (* succeeded when first executed *)
      end
    in
    match cache with
    | None -> rederive ()
    | Some c when parked_depth i -> (
        match Coop_util.Ckpt_cache.find c fr.key with
        | Some st ->
            incr cache_hits;
            st
        | None ->
            let st = rederive () in
            Coop_util.Ckpt_cache.add c fr.key st;
            st)
    | Some _ -> rederive ()
  in
  (* After taking step [info] at depth d (from frame d), add backtrack
     points at the last earlier frame whose taken step is dependent. *)
  let add_backtracks info upto =
    let rec find i =
      if i < 0 then ()
      else begin
        match !stack.(i).taken with
        | Some prior when dependent prior info ->
            let fr = !stack.(i) in
            let additions =
              if Iset.mem info.tid fr.enabled then Iset.singleton info.tid
              else fr.enabled
            in
            (match (i, root_notify) with
            | 0, Some notify -> notify additions
            | _ -> fr.backtrack <- Iset.union fr.backtrack additions)
        | _ -> find (i - 1)
      end
    in
    find upto
  in
  (* [explore st_here] explores from the frame just pushed, whose
     pre-choice state [st_here] the caller still holds — the first choice
     costs no lookup; later (backtracked) choices re-fetch the frame's
     state through [state_at]. *)
  let rec explore st_here =
    if !executions >= max_executions then complete := false
    else begin
      let fr = !stack.(!depth - 1) in
      if Iset.is_empty fr.enabled then record st_here
      else if !depth > max_depth then complete := false
      else begin
        let fresh = ref (Some st_here) in
        let frame_state () =
          match !fresh with
          | Some st ->
              fresh := None;
              st
          | None -> state_at (!depth - 1)
        in
        let continue_ = ref true in
        while !continue_ do
          match Iset.min_elt_opt (Iset.diff fr.backtrack fr.tried) with
          | None -> continue_ := false
          | Some p when List.mem_assoc p fr.sleep ->
              (* Asleep: this transition's subtree was covered in a sibling
                 and nothing dependent has happened since. *)
              fr.tried <- Iset.add p fr.tried
          | Some p -> (
              fr.tried <- Iset.add p fr.tried;
              match
                exec_transition ~yields ~max_segment (frame_state ()) p
              with
              | None -> complete := false
              | Some (st', info) ->
                  incr novel;
                  fr.taken <- Some info;
                  add_backtracks info (!depth - 2);
                  let child_sleep =
                    if not sleep_sets then []
                    else
                      List.filter
                        (fun (_, i) -> not (dependent i info))
                        fr.sleep
                  in
                  let child_key = fr.key ^ "." ^ string_of_int p in
                  (* The child frame lands at stack index [!depth]. *)
                  (match cache with
                  | Some c when parked_depth !depth ->
                      Coop_util.Ckpt_cache.add c child_key st'
                  | _ -> ());
                  push (make_frame ~sleep:child_sleep ~key:child_key st');
                  explore st';
                  decr depth;
                  if sleep_sets then fr.sleep <- (p, info) :: fr.sleep;
                  if !executions >= max_executions then begin
                    (* Budget exhausted mid-frame: the remaining backtrack
                       choices stay unexplored. *)
                    if not (Iset.is_empty (Iset.diff fr.backtrack fr.tried))
                    then complete := false;
                    continue_ := false
                  end)
        done
      end
    end
  in
  let root_key =
    "dpor" ^ string_of_int (Atomic.fetch_and_add run_nonce 1)
  in
  let st0 = Vm.init prog in
  (match cache with
  | Some c -> Coop_util.Ckpt_cache.add c root_key st0
  | None -> ());
  let root = make_frame ~key:root_key st0 in
  (match root_only with
  | Some p ->
      root.backtrack <- Iset.singleton p;
      root.tried <- Iset.remove p root.enabled
  | None -> ());
  push root;
  explore st0;
  {
    behaviors = !behaviors;
    executions = !executions;
    steps = !novel + !replayed;
    novel_steps = !novel;
    replayed_steps = !replayed;
    cache_hits = !cache_hits;
    complete = !complete;
  }

(* Flush the store's counter deltas attributable to one [run] into the
   telemetry registers (the store itself has no Coop_obs dependency and
   may be shared across runs, hence deltas). *)
let flush_obs c (before : Coop_util.Ckpt_cache.stats) =
  if Coop_obs.enabled () then begin
    let open Coop_util.Ckpt_cache in
    let s = stats c in
    Coop_obs.count "ckpt/hits" (s.hits - before.hits);
    Coop_obs.count "ckpt/misses" (s.misses - before.misses);
    Coop_obs.count "ckpt/evictions" (s.evictions - before.evictions);
    Coop_obs.gauge "ckpt/bytes" (float_of_int s.bytes);
    Coop_obs.gauge "ckpt/peak_bytes" (float_of_int s.peak_bytes)
  end

let default_cache () =
  Coop_util.Ckpt_cache.create
    ~weight:(fun st -> 8 * Vm.approx_words st)
    ()

let run ?pool ?yields ?max_executions ?max_depth ?max_segment
    ?(no_cache = false) ?(sleep_sets = true) ?ckpt prog =
  let cache =
    if no_cache then None
    else Some (match ckpt with Some c -> c | None -> default_cache ())
  in
  let before = Option.map Coop_util.Ckpt_cache.stats cache in
  let finish r =
    (match (cache, before) with
    | Some c, Some b -> flush_obs c b
    | _ -> ());
    r
  in
  let jobs = match pool with Some p -> Coop_util.Pool.jobs p | None -> 1 in
  let roots = Vm.runnable (Vm.init prog) in
  if jobs <= 1 || List.length roots <= 1 then
    finish
      (run_seq ?cache ~sleep_sets ?yields ?max_executions ?max_depth
         ?max_segment prog)
  else begin
    let pool = Option.get pool in
    (* Dynamic root sharding: start from the root choice the sequential
       run would take first, and spawn a task for every further root
       choice the shards' persistent-set requests discover, exactly
       once each. The set so spawned is the least fixpoint of those
       (deterministic) requests, so it does not depend on pool size or
       on which domain ran which shard — the determinism suites rely on
       this. Tasks spawn from inside tasks, which is what the
       work-stealing pool is for. *)
    let mutex = Mutex.create () in
    let spawned = ref Iset.empty in
    let promises : (int * result Coop_util.Pool.promise) list ref =
      ref []
    in
    let rec launch p =
      if not (Iset.mem p !spawned) then begin
        spawned := Iset.add p !spawned;
        let promise =
          Coop_util.Pool.spawn pool (fun () ->
              (* Shards share the one store: checkpoint keys carry a
                 per-run nonce, and the store is mutex-protected. *)
              run_seq ~root_only:p ~root_notify ?cache ~sleep_sets ?yields
                ?max_executions ?max_depth ?max_segment prog)
        in
        promises := (p, promise) :: !promises
      end
    and root_notify tids =
      Mutex.lock mutex;
      Iset.iter launch tids;
      Mutex.unlock mutex
    in
    root_notify (Iset.singleton (List.fold_left min (List.hd roots) roots));
    (* Await until no shard has requested anything new: results are
       keyed by root tid and merged in tid order below, so the fold is
       deterministic whatever order the shards finished in. *)
    let collected = ref [] in
    let awaited = ref Iset.empty in
    let rec drain () =
      let todo =
        Mutex.lock mutex;
        let l =
          List.filter (fun (t, _) -> not (Iset.mem t !awaited)) !promises
        in
        Mutex.unlock mutex;
        l
      in
      if todo <> [] then begin
        List.iter
          (fun (t, promise) ->
            awaited := Iset.add t !awaited;
            collected := (t, Coop_util.Pool.await pool promise) :: !collected)
          todo;
        drain ()
      end
    in
    drain ();
    let shards =
      List.sort (fun (a, _) (b, _) -> compare a b) !collected
      |> List.map snd
    in
    finish
      (List.fold_left
         (fun acc r ->
           {
             behaviors = Behavior.Set.union acc.behaviors r.behaviors;
             executions = acc.executions + r.executions;
             steps = acc.steps + r.steps;
             novel_steps = acc.novel_steps + r.novel_steps;
             replayed_steps = acc.replayed_steps + r.replayed_steps;
             cache_hits = acc.cache_hits + r.cache_hits;
             complete = acc.complete && r.complete;
           })
         { behaviors = Behavior.Set.empty; executions = 0; steps = 0;
           novel_steps = 0; replayed_steps = 0; cache_hits = 0;
           complete = true }
         shards)
  end
