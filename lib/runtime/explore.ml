open Coop_trace
open Coop_lang
module Key_set = Set.Make (String)

type mode =
  | Preemptive
  | Cooperative

type granularity =
  | Every_instruction
  | Visible_only

type result = {
  behaviors : Behavior.Set.t;
  complete : bool;
  states : int;
  deadlocks : int;
  novel_steps : int;
  replayed_steps : int;
  cache_hits : int;
}

(* Per-run base for frontier checkpoint keys shared through one store. *)
let run_nonce = Atomic.make 0

let is_visible = function
  | Bytecode.Load_global _ | Bytecode.Store_global _ | Bytecode.Load_elem _
  | Bytecode.Store_elem _ | Bytecode.Acquire | Bytecode.Release
  | Bytecode.Wait | Bytecode.Notify _ | Bytecode.Yield_instr
  | Bytecode.Spawn _ | Bytecode.Join | Bytecode.Print ->
      true
  | Bytecode.Const _ | Bytecode.Load_local _ | Bytecode.Store_local _
  | Bytecode.Array_len _ | Bytecode.Binop _ | Bytecode.Unop _ | Bytecode.Jump _
  | Bytecode.Jump_if_zero _ | Bytecode.Atomic_begin | Bytecode.Atomic_end
  | Bytecode.Call _ | Bytecode.Ret | Bytecode.Assert | Bytecode.Pop
  | Bytecode.Halt ->
      false

(* The next instruction of [tid], when it has a frame. *)
let next_instr st tid =
  match Vm.thread_status st tid with
  | Vm.Finished | Vm.Faulted _ -> None
  | _ -> Vm.peek_instr st tid

(* One scheduling decision in preemptive mode: execute [tid]'s invisible
   prefix eagerly, then one visible instruction (or park). Returns [None]
   when the segment budget is exhausted. *)
let macro_step ~yields ~max_segment st tid =
  let sink = Trace.Sink.ignore in
  let rec go st fuel =
    if fuel = 0 then None
    else if
      match Vm.thread_status st tid with Vm.Reacquiring _ -> true | _ -> false
    then
      (* A monitor reacquire is itself a visible transition. *)
      Some (Vm.step ~yields st tid ~sink)
    else begin
      match next_instr st tid with
      | None -> Some st
      | Some (instr, loc) ->
          let injected = Loc.Set.mem loc yields in
          if is_visible instr || injected then begin
            (* Execute the visible instruction (or its injected yield) and
               stop; if the thread parks instead, the state still changed. *)
            let st' = Vm.step ~yields st tid ~sink in
            Some st'
          end
          else begin
            let st' = Vm.step ~yields st tid ~sink in
            match Vm.thread_status st' tid with
            | Vm.Finished | Vm.Faulted _ -> Some st'
            | _ -> go st' (fuel - 1)
          end
    end
  in
  go st max_segment

(* One scheduling decision in cooperative mode: run [tid] until it yields,
   blocks, faults or finishes. *)
let coop_segment ~yields ~max_segment st tid =
  let sink = Trace.Sink.ignore in
  let rec go st fuel =
    if fuel = 0 then None
    else begin
      let st' = Vm.step ~yields st tid ~sink in
      if Vm.last_step_yielded st' then Some st'
      else begin
        match Vm.thread_status st' tid with
        | Vm.Finished | Vm.Faulted _ -> Some st'
        | Vm.Blocked_on_lock _ | Vm.Blocked_on_join _ | Vm.Waiting _
        | Vm.Reacquiring _ ->
            Some st'
        | Vm.Runnable -> go st' (fuel - 1)
      end
    end
  in
  go st max_segment

(* One scheduling decision at instruction granularity: a single step. *)
let single_step ~yields st tid =
  Some (Vm.step ~yields st tid ~sink:Trace.Sink.ignore)

let segment_of ~yields ~max_segment mode granularity =
  match (mode, granularity) with
  | Preemptive, Visible_only -> macro_step ~yields ~max_segment
  | Preemptive, Every_instruction -> single_step ~yields
  | Cooperative, _ -> coop_segment ~yields ~max_segment

(* Partial exploration results, mergeable across shards. Terminal deadlock
   states are tracked as a key set (not a counter) so that the same state
   reached from two shards is still counted once in the merge — this keeps
   the [deadlocks] field identical to the sequential run's. *)
type partial = {
  p_behaviors : Behavior.Set.t;
  p_dead : Key_set.t;
  p_states : int;
  p_complete : bool;
  p_novel : int;  (* segments executed on the exploration frontier *)
  p_replayed : int;  (* segments re-executed to re-derive a start state *)
  p_hits : int;  (* checkpoint-store hits *)
}

let merge_partial a b =
  {
    p_behaviors = Behavior.Set.union a.p_behaviors b.p_behaviors;
    p_dead = Key_set.union a.p_dead b.p_dead;
    p_states = a.p_states + b.p_states;
    p_complete = a.p_complete && b.p_complete;
    p_novel = a.p_novel + b.p_novel;
    p_replayed = a.p_replayed + b.p_replayed;
    p_hits = a.p_hits + b.p_hits;
  }

(* The memoized DFS, from an arbitrary start state. *)
let explore_from ~segment ~max_states st0 =
  let seen = Hashtbl.create 1024 in
  let behaviors = ref Behavior.Set.empty in
  let dead = ref Key_set.empty in
  let complete = ref true in
  let states = ref 0 in
  let novel = ref 0 in
  let rec visit st =
    if !states >= max_states then complete := false
    else begin
      let k = Vm.key st in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        incr states;
        match Vm.runnable st with
        | [] ->
            if Vm.deadlocked st then dead := Key_set.add k !dead;
            behaviors := Behavior.Set.add (Behavior.of_state st) !behaviors
        | runnable ->
            List.iter
              (fun tid ->
                match segment st tid with
                | Some st' ->
                    incr novel;
                    visit st'
                | None -> complete := false)
              runnable
      end
    end
  in
  visit st0;
  {
    p_behaviors = !behaviors;
    p_dead = !dead;
    p_states = !states;
    p_complete = !complete;
    p_novel = !novel;
    p_replayed = 0;
    p_hits = 0;
  }

(* Breadth-first expansion of the top-level branch frontier until it is
   wide enough to keep every worker busy. Terminal states met on the way
   are recorded; interior states are deduplicated by {!Vm.key}. Each
   frontier node carries the tid path that derived it from the initial
   state (first decision first) — its checkpoint key, and the recipe for
   re-deriving the state if the checkpoint gets evicted. Returns the
   frontier plus the partial result of the expansion itself. *)
let expand_frontier ~segment ~target st0 =
  let seen = Hashtbl.create 256 in
  let behaviors = ref Behavior.Set.empty in
  let dead = ref Key_set.empty in
  let states = ref 0 in
  let novel = ref 0 in
  let complete = ref true in
  Hashtbl.add seen (Vm.key st0) ();
  let frontier = ref [ (st0, []) ] in
  let levels = ref 0 in
  let continue_ = ref true in
  while !continue_ && List.length !frontier < target && !levels < 8 do
    incr levels;
    let next = ref [] in
    let grew = ref false in
    List.iter
      (fun (st, path) ->
        incr states;
        match Vm.runnable st with
        | [] ->
            let k = Vm.key st in
            if Vm.deadlocked st then dead := Key_set.add k !dead;
            behaviors := Behavior.Set.add (Behavior.of_state st) !behaviors
        | runnable ->
            List.iter
              (fun tid ->
                match segment st tid with
                | None -> complete := false
                | Some st' ->
                    incr novel;
                    let k = Vm.key st' in
                    if not (Hashtbl.mem seen k) then begin
                      Hashtbl.add seen k ();
                      grew := true;
                      next := (st', tid :: path) :: !next
                    end)
              runnable)
      !frontier;
    frontier := List.rev !next;
    if not !grew then continue_ := false
  done;
  ( List.map (fun (st, path) -> (st, List.rev path)) !frontier,
    {
      p_behaviors = !behaviors;
      p_dead = !dead;
      p_states = !states;
      p_complete = !complete;
      p_novel = !novel;
      p_replayed = 0;
      p_hits = 0;
    } )

let result_of_partial p =
  {
    behaviors = p.p_behaviors;
    complete = p.p_complete;
    states = p.p_states;
    deadlocks = Key_set.cardinal p.p_dead;
    novel_steps = p.p_novel;
    replayed_steps = p.p_replayed;
    cache_hits = p.p_hits;
  }

let flush_obs c (before : Coop_util.Ckpt_cache.stats) =
  if Coop_obs.enabled () then begin
    let open Coop_util.Ckpt_cache in
    let s = stats c in
    Coop_obs.count "ckpt/hits" (s.hits - before.hits);
    Coop_obs.count "ckpt/misses" (s.misses - before.misses);
    Coop_obs.count "ckpt/evictions" (s.evictions - before.evictions);
    Coop_obs.gauge "ckpt/bytes" (float_of_int s.bytes);
    Coop_obs.gauge "ckpt/peak_bytes" (float_of_int s.peak_bytes)
  end

let run ?pool ?(yields = Loc.Set.empty) ?(max_states = 200_000)
    ?(max_segment = 100_000) ?(granularity = Visible_only)
    ?(no_cache = false) ?ckpt mode prog =
  let segment = segment_of ~yields ~max_segment mode granularity in
  let jobs = match pool with Some p -> Coop_util.Pool.jobs p | None -> 1 in
  let init = Vm.init prog in
  if jobs <= 1 then result_of_partial (explore_from ~segment ~max_states init)
  else begin
    let pool = Option.get pool in
    let frontier, expansion =
      expand_frontier ~segment ~target:(4 * jobs) init
    in
    (* Every frontier node becomes its own pool task, so a node owning a
       disproportionate subtree re-balances onto idle domains via work
       stealing instead of serializing its static shard. Each task
       explores with its own memo table and the full state budget;
       cross-shard duplicates cost extra visits but never change the
       behaviour set. Awaiting in frontier order keeps the merge
       deterministic.

       Frontier states are parked in the checkpoint store rather than
       captured by the task closures: a task re-fetches its start state
       when it actually runs, and on a miss (evicted under the byte cap)
       re-derives it by replaying the node's recorded tid path from the
       initial state — so a wide frontier pins at most [cap_bytes], not
       [frontier] states. [~no_cache:true] restores capture-by-closure,
       the differential oracle. *)
    let cache =
      if no_cache then None
      else
        Some
          (match ckpt with
          | Some c -> c
          | None ->
              Coop_util.Ckpt_cache.create
                ~weight:(fun st -> 8 * Vm.approx_words st)
                ())
    in
    let before = Option.map Coop_util.Ckpt_cache.stats cache in
    let promises =
      match cache with
      | None ->
          List.map
            (fun (st, _) ->
              Coop_util.Pool.spawn pool (fun () ->
                  explore_from ~segment ~max_states st))
            frontier
      | Some c ->
          let base =
            "explore" ^ string_of_int (Atomic.fetch_and_add run_nonce 1) ^ ":"
          in
          List.map
            (fun (st, path) ->
              let key =
                base ^ String.concat "." (List.map string_of_int path)
              in
              Coop_util.Ckpt_cache.add c key st;
              Coop_util.Pool.spawn pool (fun () ->
                  let hits = ref 0 in
                  let replayed = ref 0 in
                  let st =
                    match Coop_util.Ckpt_cache.find c key with
                    | Some st ->
                        incr hits;
                        st
                    | None ->
                        (* Deterministic replay of the recorded path. *)
                        List.fold_left
                          (fun st tid ->
                            match segment st tid with
                            | Some st' ->
                                incr replayed;
                                st'
                            | None -> assert false  (* succeeded in expand *))
                          init path
                  in
                  let p = explore_from ~segment ~max_states st in
                  { p with
                    p_replayed = p.p_replayed + !replayed;
                    p_hits = p.p_hits + !hits }))
            frontier
    in
    let shards = List.map (Coop_util.Pool.await pool) promises in
    (match (cache, before) with
    | Some c, Some b -> flush_obs c b
    | _ -> ());
    result_of_partial (List.fold_left merge_partial expansion shards)
  end

let behaviors_equal a b =
  a.complete && b.complete && Behavior.Set.equal a.behaviors b.behaviors
