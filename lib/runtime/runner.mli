(** Driving a program to completion under a scheduler.

    This is the "RoadRunner" of the reproduction: it executes the program,
    streams every event to the given sink (race detector, cooperability
    automaton, a recording trace, or nothing at all for baseline timing),
    and reports how the run ended. *)

open Coop_trace

(** How a run terminated. *)
type termination =
  | Completed  (** Every thread finished or faulted. *)
  | Deadlock  (** Some thread is blocked forever. *)
  | Step_limit  (** The step budget ran out. *)

type outcome = {
  final : Vm.state;  (** The last machine state. *)
  termination : termination;
  steps : int;  (** Instructions executed. *)
}

val run :
  ?yields:Loc.Set.t ->
  ?max_steps:int ->
  sched:Sched.t ->
  sink:Trace.Sink.t ->
  Coop_lang.Bytecode.program ->
  outcome
(** [run ?yields ?max_steps ~sched ~sink prog] executes [prog] from its
    initial state. [yields] injects extra yield points (see {!Vm.step}).
    [max_steps] defaults to 10 million. *)

val record :
  ?yields:Loc.Set.t ->
  ?max_steps:int ->
  sched:Sched.t ->
  Coop_lang.Bytecode.program ->
  outcome * Trace.t
(** Like {!run} with a recording sink; returns the trace. *)

val analyze :
  ?yields:Loc.Set.t ->
  ?max_steps:int ->
  sched:Sched.t ->
  'r Analysis.t ->
  Coop_lang.Bytecode.program ->
  outcome * 'r
(** No-materialization mode: execute once, feeding every event straight
    from the VM into the analysis — no trace is recorded — and finalize.
    The single-pass analogue of {!record}+offline checking. *)

val source :
  ?yields:Loc.Set.t ->
  ?max_steps:int ->
  sched:(unit -> Sched.t) ->
  Coop_lang.Bytecode.program ->
  Source.t
(** The program-as-a-stream: each invocation of the source re-executes the
    program and streams its events. [sched] must build a fresh,
    identically seeded scheduler per call — the VM is deterministic given
    the schedule, so every replay then yields the identical event
    sequence, which is what multi-phase analyses (e.g.
    [Cooperability.check_source]) require. *)

val behavior_of : outcome -> Behavior.t
(** The observable behaviour of an outcome. *)

val pp_termination : Format.formatter -> termination -> unit
(** "completed", "deadlock" or "step-limit". *)
