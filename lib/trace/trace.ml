type t = {
  mutable events : Event.t array;
  mutable len : int;
}

let dummy = Event.make ~tid:(-1) ~op:Event.Yield ~loc:Loc.none

let create () = { events = Array.make 64 dummy; len = 0 }

let add t e =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- e;
  t.len <- t.len + 1

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: index out of bounds";
  t.events.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.events.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.events.(i)
  done;
  !acc

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.events.(i) :: acc) in
  go (t.len - 1) []

let of_list es =
  let t = create () in
  List.iter (add t) es;
  t

let threads t =
  let module S = Set.Make (Int) in
  let s = fold (fun s (e : Event.t) -> S.add e.tid s) S.empty t in
  S.elements s

let count p t = fold (fun n e -> if p e then n + 1 else n) 0 t

let pp ppf t =
  iter (fun e -> Format.fprintf ppf "%a@." Event.pp e) t

module Sink = struct
  type trace = t

  type t = Event.t -> unit

  let ignore : t = fun _ -> ()

  let tee : t list -> t = function
    | [] -> ignore
    | [ s ] -> s
    | sinks -> fun e -> List.iter (fun s -> s e) sinks

  (* Producers may reuse one scratch record per emission (see
     [Event.copy]); a sink that retains events must copy them. *)
  let recording trace : t = fun e -> add trace (Event.copy e)
end
