exception Parse_error = Wire.Parse_error
exception Encode_error = Wire.Encode_error

type format = Text | Binary

let format_to_string = function Text -> "text" | Binary -> "binary"

let format_of_string = function
  | "text" -> Some Text
  | "binary" -> Some Binary
  | _ -> None

(* Every parse failure names its line so the CLI can report a position
   without re-deriving it; the line number also travels separately in
   the exception for callers that want it structured. *)
let fail lineno msg =
  raise (Parse_error (Printf.sprintf "%s (line %d)" msg lineno, lineno))

let var_to_string = function
  | Event.Global g -> Printf.sprintf "g%d" g
  | Event.Cell (a, i) -> Printf.sprintf "a%d.%d" a i

let op_to_string = function
  | Event.Read v -> "rd " ^ var_to_string v
  | Event.Write v -> "wr " ^ var_to_string v
  | Event.Acquire l -> Printf.sprintf "acq %d" l
  | Event.Release l -> Printf.sprintf "rel %d" l
  | Event.Fork t -> Printf.sprintf "fork %d" t
  | Event.Join t -> Printf.sprintf "join %d" t
  | Event.Yield -> "yield"
  | Event.Enter f -> Printf.sprintf "enter %d" f
  | Event.Exit f -> Printf.sprintf "exit %d" f
  | Event.Atomic_begin -> "abegin"
  | Event.Atomic_end -> "aend"
  | Event.Out n -> Printf.sprintf "out %d" n

let event_to_string (e : Event.t) =
  Printf.sprintf "%d %s @ %d %d %d" e.tid (op_to_string e.op) e.loc.Loc.func
    e.loc.Loc.pc e.loc.Loc.line

(* The line grammar is whitespace-split tokens with '@' delimiting the
   location, so a display name containing either would be sliced apart
   on re-parse — silent corruption. Rejecting at encode time keeps
   every text file re-readable; the binary format has no such limit. *)
let text_name_ok name =
  name <> ""
  && String.for_all
       (fun c -> not (c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '@'))
       name

let check_text_name kind id name =
  if not (text_name_ok name) then
    raise
      (Encode_error
         (Printf.sprintf
            "text format cannot encode %s %d display name %S: names with \
             whitespace or '@' only round-trip in binary — keep the binary \
             format, or see 'coopcheck convert'"
            (Symtab.kind_to_string kind) id name))

let pragma_line kind id name =
  check_text_name kind id name;
  Printf.sprintf "#%s %d %s" (Symtab.kind_to_string kind) id name

let to_string ?syms trace =
  let buf = Buffer.create (Trace.length trace * 24) in
  (match syms with
  | Some t ->
      Symtab.iter t (fun kind id name ->
          Buffer.add_string buf (pragma_line kind id name);
          Buffer.add_char buf '\n')
  | None -> ());
  Trace.iter
    (fun e ->
      Buffer.add_string buf (event_to_string e);
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf

let parse_var lineno s =
  let bad () = fail lineno ("bad variable " ^ s) in
  if String.length s < 2 then bad ();
  match s.[0] with
  | 'g' -> (
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some g -> Event.Global g
      | None -> bad ())
  | 'a' -> (
      match String.index_opt s '.' with
      | Some dot -> (
          let a = String.sub s 1 (dot - 1) in
          let i = String.sub s (dot + 1) (String.length s - dot - 1) in
          match (int_of_string_opt a, int_of_string_opt i) with
          | Some a, Some i -> Event.Cell (a, i)
          | _ -> bad ())
      | None -> bad ())
  | _ -> bad ()

let parse_int lineno s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail lineno ("bad integer " ^ s)

(* ["#kind id name"] binds a display name (see {!Symtab}); any other
   '#' line is a comment. Files written before pragmas existed contain
   no '#' lines, so the grammar extension is backward compatible. *)
let parse_pragma ?syms lineno line =
  let body = String.sub line 1 (String.length line - 1) in
  match String.split_on_char ' ' body |> List.filter (fun w -> w <> "") with
  | [ kind; id; name ] -> (
      match Symtab.kind_of_string kind with
      | None -> ()
      | Some k -> (
          let id =
            match int_of_string_opt id with
            | Some id when id >= 0 -> id
            | _ -> fail lineno ("bad symbol id in pragma: " ^ line)
          in
          match syms with Some t -> Symtab.set t k id name | None -> ()))
  | _ -> ()

let parse_line lineno line =
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  let op_and_loc tid rest =
    let op, loc_words =
      match rest with
      | "rd" :: v :: tl -> (Event.Read (parse_var lineno v), tl)
      | "wr" :: v :: tl -> (Event.Write (parse_var lineno v), tl)
      | "acq" :: l :: tl -> (Event.Acquire (parse_int lineno l), tl)
      | "rel" :: l :: tl -> (Event.Release (parse_int lineno l), tl)
      | "fork" :: t :: tl -> (Event.Fork (parse_int lineno t), tl)
      | "join" :: t :: tl -> (Event.Join (parse_int lineno t), tl)
      | "yield" :: tl -> (Event.Yield, tl)
      | "enter" :: f :: tl -> (Event.Enter (parse_int lineno f), tl)
      | "exit" :: f :: tl -> (Event.Exit (parse_int lineno f), tl)
      | "abegin" :: tl -> (Event.Atomic_begin, tl)
      | "aend" :: tl -> (Event.Atomic_end, tl)
      | "out" :: n :: tl -> (Event.Out (parse_int lineno n), tl)
      | _ -> fail lineno ("bad operation in: " ^ line)
    in
    match loc_words with
    | [ "@"; func; pc; ln ] ->
        Event.make ~tid ~op
          ~loc:
            (Loc.make ~func:(parse_int lineno func) ~pc:(parse_int lineno pc)
               ~line:(parse_int lineno ln))
    | _ -> fail lineno ("bad location in: " ^ line)
  in
  match words with
  | tid :: rest -> op_and_loc (parse_int lineno tid) rest
  | [] -> fail lineno "empty line"

let handle_line ?syms lineno line f =
  let line = String.trim line in
  if line <> "" then
    if line.[0] = '#' then parse_pragma ?syms lineno line
    else f (parse_line lineno line)

let iter_string ?syms s f =
  let lines = String.split_on_char '\n' s in
  List.iteri (fun i line -> handle_line ?syms (i + 1) line f) lines

let of_string ?syms s =
  let trace = Trace.create () in
  iter_string ?syms s (Trace.add trace);
  trace

(* [prefix] is whatever a format sniffer already pulled off the channel
   (at most a handful of bytes, but possibly spanning newlines): its
   complete lines are parsed here, its trailing fragment is glued onto
   the first line read from the channel. *)
let iter_channel_from ?syms ~prefix ic f =
  let lineno = ref 0 in
  let handle line =
    incr lineno;
    handle_line ?syms !lineno line f
  in
  let frag = ref "" in
  (let rec go = function
     | [] -> ()
     | [ last ] -> frag := last
     | l :: tl ->
         handle l;
         go tl
   in
   go (String.split_on_char '\n' prefix));
  (try
     while true do
       let rest = input_line ic in
       let line = !frag ^ rest in
       frag := "";
       handle line
     done
   with End_of_file -> ());
  if !frag <> "" then handle !frag

let iter_channel ?syms ic f = iter_channel_from ?syms ~prefix:"" ic f

let iter_file ?syms path f =
  let ic = open_in_bin path in
  match iter_channel ?syms ic f with
  | () -> close_in ic
  | exception e ->
      close_in_noerr ic;
      raise e

let save ?(format = Text) ?syms path trace =
  match format with
  | Binary -> Codec.save ?syms path trace
  | Text ->
      let oc = open_out_bin path in
      (match output_string oc (to_string ?syms trace) with
      | () -> close_out oc
      | exception e ->
          close_out_noerr oc;
          raise e)

let with_file_sink ?(format = Text) ?syms path k =
  let oc = open_out_bin path in
  match
    match format with
    | Binary -> Codec.with_sink ?syms oc k
    | Text ->
        (match syms with
        | Some t ->
            Symtab.iter t (fun kind id name ->
                output_string oc (pragma_line kind id name);
                output_char oc '\n')
        | None -> ());
        k (fun e ->
            output_string oc (event_to_string e);
            output_char oc '\n')
  with
  | r ->
      close_out oc;
      r
  | exception e ->
      close_out_noerr oc;
      raise e

let of_string_any ?syms s =
  let n = String.length s in
  let m = String.length Codec.magic in
  if n >= m && String.sub s 0 m = Codec.magic then
    (Binary, Codec.of_string ?syms s)
  else if n > 0 && n < m && String.sub Codec.magic 0 n = s then
    Wire.parse_error
      (Printf.sprintf "truncated header: not a complete %s stream (byte %d)"
         Codec.format_name n)
      n
  else (Text, of_string ?syms s)

let load ?syms path =
  let ic = open_in_bin path in
  match
    let n = in_channel_length ic in
    snd (of_string_any ?syms (really_input_string ic n))
  with
  | t ->
      close_in ic;
      t
  | exception e ->
      close_in_noerr ic;
      raise e
