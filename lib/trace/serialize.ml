exception Parse_error of string * int

let var_to_string = function
  | Event.Global g -> Printf.sprintf "g%d" g
  | Event.Cell (a, i) -> Printf.sprintf "a%d.%d" a i

let op_to_string = function
  | Event.Read v -> "rd " ^ var_to_string v
  | Event.Write v -> "wr " ^ var_to_string v
  | Event.Acquire l -> Printf.sprintf "acq %d" l
  | Event.Release l -> Printf.sprintf "rel %d" l
  | Event.Fork t -> Printf.sprintf "fork %d" t
  | Event.Join t -> Printf.sprintf "join %d" t
  | Event.Yield -> "yield"
  | Event.Enter f -> Printf.sprintf "enter %d" f
  | Event.Exit f -> Printf.sprintf "exit %d" f
  | Event.Atomic_begin -> "abegin"
  | Event.Atomic_end -> "aend"
  | Event.Out n -> Printf.sprintf "out %d" n

let event_to_string (e : Event.t) =
  Printf.sprintf "%d %s @ %d %d %d" e.tid (op_to_string e.op) e.loc.Loc.func
    e.loc.Loc.pc e.loc.Loc.line

let to_string trace =
  let buf = Buffer.create (Trace.length trace * 24) in
  Trace.iter
    (fun e ->
      Buffer.add_string buf (event_to_string e);
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf

let parse_var lineno s =
  let fail () = raise (Parse_error ("bad variable " ^ s, lineno)) in
  if String.length s < 2 then fail ();
  match s.[0] with
  | 'g' -> (
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some g -> Event.Global g
      | None -> fail ())
  | 'a' -> (
      match String.index_opt s '.' with
      | Some dot -> (
          let a = String.sub s 1 (dot - 1) in
          let i = String.sub s (dot + 1) (String.length s - dot - 1) in
          match (int_of_string_opt a, int_of_string_opt i) with
          | Some a, Some i -> Event.Cell (a, i)
          | _ -> fail ())
      | None -> fail ())
  | _ -> fail ()

let parse_int lineno s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> raise (Parse_error ("bad integer " ^ s, lineno))

let parse_line lineno line =
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  let op_and_loc tid rest =
    let op, loc_words =
      match rest with
      | "rd" :: v :: tl -> (Event.Read (parse_var lineno v), tl)
      | "wr" :: v :: tl -> (Event.Write (parse_var lineno v), tl)
      | "acq" :: l :: tl -> (Event.Acquire (parse_int lineno l), tl)
      | "rel" :: l :: tl -> (Event.Release (parse_int lineno l), tl)
      | "fork" :: t :: tl -> (Event.Fork (parse_int lineno t), tl)
      | "join" :: t :: tl -> (Event.Join (parse_int lineno t), tl)
      | "yield" :: tl -> (Event.Yield, tl)
      | "enter" :: f :: tl -> (Event.Enter (parse_int lineno f), tl)
      | "exit" :: f :: tl -> (Event.Exit (parse_int lineno f), tl)
      | "abegin" :: tl -> (Event.Atomic_begin, tl)
      | "aend" :: tl -> (Event.Atomic_end, tl)
      | "out" :: n :: tl -> (Event.Out (parse_int lineno n), tl)
      | _ -> raise (Parse_error ("bad operation in: " ^ line, lineno))
    in
    match loc_words with
    | [ "@"; func; pc; ln ] ->
        Event.make ~tid ~op
          ~loc:
            (Loc.make ~func:(parse_int lineno func) ~pc:(parse_int lineno pc)
               ~line:(parse_int lineno ln))
    | _ -> raise (Parse_error ("bad location in: " ^ line, lineno))
  in
  match words with
  | tid :: rest -> op_and_loc (parse_int lineno tid) rest
  | [] -> raise (Parse_error ("empty line", lineno))

let iter_string s f =
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" then f (parse_line (i + 1) line))
    lines

let of_string s =
  let trace = Trace.create () in
  iter_string s (Trace.add trace);
  trace

let iter_channel ic f =
  let lineno = ref 0 in
  try
    while true do
      let line = String.trim (input_line ic) in
      incr lineno;
      if line <> "" then f (parse_line !lineno line)
    done
  with End_of_file -> ()

let iter_file path f =
  let ic = open_in path in
  match iter_channel ic f with
  | () -> close_in ic
  | exception e ->
      close_in_noerr ic;
      raise e

let save path trace =
  let oc = open_out_bin path in
  output_string oc (to_string trace);
  close_out oc

let with_file_sink path k =
  let oc = open_out_bin path in
  let sink e =
    output_string oc (event_to_string e);
    output_char oc '\n'
  in
  match k sink with
  | r ->
      close_out oc;
      r
  | exception e ->
      close_out_noerr oc;
      raise e

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
