exception Parse_error of string * int
exception Encode_error of string

let parse_error msg pos = raise (Parse_error (msg, pos))

(* LEB128 over OCaml's 63-bit int. Encoding loops on logical shifts, so
   negative bit patterns (produced by zigzag of large-magnitude values)
   terminate after at most ceil(63/7) = 9 bytes. *)

let add_uvarint buf n =
  if n < 0 then invalid_arg "Wire.add_uvarint: negative";
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* Zigzag: interleave negatives so small magnitudes encode small. The
   left shift may drop the top bit of [min_int]; the logical-shift
   inverse below undoes exactly that, so the mapping is a bijection on
   the whole 63-bit range. *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (- (z land 1))

let add_svarint buf n =
  (* The zigzagged value is re-interpreted as an unsigned bit pattern:
     encode via logical shifts without the sign check. *)
  let n = ref (zigzag n) in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let max_varint_bytes = 9

(* The decode hot path: every event record reads at least two of these.
   The loop is a top-level function over immediate ints — a local [rec]
   closing over [s]/[pos] would cost a closure allocation per call in
   classic ocamlopt — and the single-byte case (dense ids, small tids:
   the overwhelming majority) returns before entering it. The caller's
   [pos] ref is the only mutable state, written once on exit. *)
let rec uvarint_loop s len pos base p acc shift =
  if p >= len then
    parse_error
      (Printf.sprintf "truncated varint (byte %d)" (base + len))
      (base + len);
  if shift >= 7 * max_varint_bytes then
    parse_error
      (Printf.sprintf "over-long varint (byte %d)" (base + p))
      (base + p);
  let b = Char.code (String.unsafe_get s p) in
  let acc = acc lor ((b land 0x7f) lsl shift) in
  if b land 0x80 = 0 then begin
    pos := p + 1;
    acc
  end
  else uvarint_loop s len pos base (p + 1) acc (shift + 7)

let read_uvarint s ~pos ~base =
  let len = String.length s in
  let p = !pos in
  if p < len then begin
    let b = Char.code (String.unsafe_get s p) in
    if b < 0x80 then begin
      pos := p + 1;
      b
    end
    else uvarint_loop s len pos base (p + 1) (b land 0x7f) 7
  end
  else uvarint_loop s len pos base p 0 0

let read_svarint s ~pos ~base = unzigzag (read_uvarint s ~pos ~base)

let input_uvarint ic ~offset =
  let rec go acc shift =
    if shift >= 7 * max_varint_bytes then
      parse_error
        (Printf.sprintf "over-long varint (byte %d)" !offset)
        !offset;
    let b =
      (* End_of_file on the first byte passes through untouched: the
         caller decides whether a clean EOF is legal there. Mid-varint
         it can only mean truncation. *)
      if shift = 0 then input_byte ic
      else begin
        match input_byte ic with
        | b -> b
        | exception End_of_file ->
            parse_error
              (Printf.sprintf "stream truncated mid-varint (byte %d)" !offset)
              !offset
      end
    in
    incr offset;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go acc (shift + 7)
  in
  go 0 0
