type t = Trace.Sink.t -> unit

let of_trace trace : t = fun sink -> Trace.iter sink trace

let of_list events : t = fun sink -> List.iter sink events

let of_file path : t = fun sink -> Serialize.iter_file path sink

let of_channel ic : t =
  let consumed = ref false in
  fun sink ->
    if !consumed then
      invalid_arg "Source.of_channel: a channel source cannot be replayed";
    consumed := true;
    Serialize.iter_channel ic sink

let replay source sink = source sink

let run source analysis =
  source (Analysis.sink analysis);
  Analysis.finalize analysis

let count source = run source (Analysis.count ())

let record source =
  let trace = Trace.create () in
  source (Trace.Sink.recording trace);
  trace
