type t = Trace.Sink.t -> unit

let of_trace trace : t = fun sink -> Trace.iter sink trace

let of_list events : t = fun sink -> List.iter sink events

(* ---- format auto-detection -------------------------------------------- *)

(* Read up to |magic| bytes; a short read means the stream itself is
   shorter than a binary header, which only a text (or empty) trace can
   be. *)
let read_head ic =
  let n = String.length Codec.magic in
  let buf = Bytes.create n in
  let rec go off =
    if off = n then n
    else
      match input ic buf off (n - off) with 0 -> off | k -> go (off + k)
  in
  Bytes.sub_string buf 0 (go 0)

let is_strict_magic_prefix head =
  let n = String.length head in
  n > 0
  && n < String.length Codec.magic
  && String.sub Codec.magic 0 n = head

(* The first magic byte is non-ASCII, so no text trace can collide with
   a binary header; a non-empty strict prefix of the magic can only be
   a binary stream cut off mid-header, which deserves a truncation
   error rather than a baffling text-parse one. *)
let dispatch ?syms head ic sink =
  if head = Codec.magic then
    Codec.iter_channel_body ?syms ~offset:(String.length Codec.magic) ic sink
  else if is_strict_magic_prefix head then
    Wire.parse_error
      (Printf.sprintf "truncated header: not a complete %s stream (byte %d)"
         Codec.format_name (String.length head))
      (String.length head)
  else Serialize.iter_channel_from ?syms ~prefix:head ic sink

let format_of_file path =
  let ic = open_in_bin path in
  let head =
    match read_head ic with
    | head ->
        close_in_noerr ic;
        head
    | exception e ->
        close_in_noerr ic;
        raise e
  in
  if head = Codec.magic then Serialize.Binary
  else if is_strict_magic_prefix head then
    Wire.parse_error
      (Printf.sprintf "truncated header: not a complete %s stream (byte %d)"
         Codec.format_name (String.length head))
      (String.length head)
  else Serialize.Text

(* ---- decode timing ---------------------------------------------------- *)

(* Attribute to "trace/decode" the time a streaming pass spends between
   sink callbacks — reading and parsing, whichever format — excluding
   the sink's own (analysis) time, so --profile shows the parse share
   honestly for text vs binary. Free when observability is off. *)
let with_decode_timer f sink =
  if not (Coop_obs.enabled ()) then f sink
  else begin
    let acc = ref 0.0 in
    let calls = ref 0 in
    let last = ref (Coop_obs.now_s ()) in
    let sink' e =
      acc := !acc +. (Coop_obs.now_s () -. !last);
      incr calls;
      sink e;
      last := Coop_obs.now_s ()
    in
    let flush () = Coop_obs.timer_add "trace/decode" !acc !calls in
    match f sink' with
    | () -> flush ()
    | exception e ->
        flush ();
        raise e
  end

(* ---- sources ---------------------------------------------------------- *)

let of_file ?syms path : t =
 fun sink ->
  (* Re-open and re-sniff per replay: the source stays replayable no
     matter which format the file holds. *)
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      with_decode_timer (fun sink -> dispatch ?syms (read_head ic) ic sink) sink)

let of_channel ?syms ic : t =
  let consumed = ref false in
  fun sink ->
    if !consumed then
      invalid_arg "Source.of_channel: a channel source cannot be replayed";
    consumed := true;
    with_decode_timer (fun sink -> dispatch ?syms (read_head ic) ic sink) sink

let replay source sink = source sink

let run source analysis =
  source (Analysis.sink analysis);
  Analysis.finalize analysis

let count source = run source (Analysis.count ())

let record source =
  let trace = Trace.create () in
  source (Trace.Sink.recording trace);
  trace
