type 'r t = {
  step : Event.t -> unit;
  finalize : unit -> 'r;
}

let make ~step ~finalize = { step; finalize }

let step a e = a.step e

let finalize a = a.finalize ()

let sink a : Trace.Sink.t = a.step

let map f a = { a with finalize = (fun () -> f (a.finalize ())) }

let chain a b =
  {
    step = (fun e -> a.step e; b.step e);
    finalize = (fun () -> (a.finalize (), b.finalize ()));
  }

let all analyses =
  {
    step = (fun e -> List.iter (fun a -> a.step e) analyses);
    finalize = (fun () -> List.map (fun a -> a.finalize ()) analyses);
  }

let feedback up down =
  let handlers = ref [] in
  let publish fact = List.iter (fun h -> h fact) !handlers in
  let subscribe h = handlers := !handlers @ [ h ] in
  let a = up ~publish in
  let b = down ~subscribe in
  chain a b

let const r = { step = (fun _ -> ()); finalize = (fun () -> r) }

let count () =
  let n = ref 0 in
  { step = (fun _ -> incr n); finalize = (fun () -> !n) }

let fold f init =
  let acc = ref init in
  { step = (fun e -> acc := f !acc e); finalize = (fun () -> !acc) }

let instrumented ~name ~step_of =
  let elapsed = ref 0. in
  let events = ref 0 in
  fun (a : _ t) ->
    let step = step_of a elapsed events in
    let finalize () =
      let t0 = Coop_obs.now_s () in
      let r = a.finalize () in
      elapsed := !elapsed +. (Coop_obs.now_s () -. t0);
      Coop_obs.timer_add name !elapsed !events;
      (* Reset so a re-used analysis (two sources through one instance)
         does not double-flush what it already reported. *)
      elapsed := 0.;
      events := 0;
      r
    in
    { step; finalize }

let instrument ?mark ~name a =
  if not (Coop_obs.enabled ()) then a
  else
    instrumented ~name
      ~step_of:(fun a elapsed events ->
        match mark with
        | None ->
            fun e ->
              let t0 = Coop_obs.now_s () in
              a.step e;
              elapsed := !elapsed +. (Coop_obs.now_s () -. t0);
              incr events
        | Some m ->
            (* Shared-clock mode: one read per step, delta from the mark
               the phase driver (or the previous checker) left behind. *)
            fun e ->
              a.step e;
              let t = Coop_obs.now_s () in
              elapsed := !elapsed +. (t -. !m);
              m := t;
              incr events)
      a

let instrument_phase ~name ~mark a =
  if not (Coop_obs.enabled ()) then a
  else
    instrumented ~name
      ~step_of:(fun a elapsed events ->
        fun e ->
          let t0 = Coop_obs.now_s () in
          mark := t0;
          a.step e;
          elapsed := !elapsed +. (Coop_obs.now_s () -. t0);
          incr events)
      a

let run a trace =
  Trace.iter a.step trace;
  a.finalize ()
