type 'r t = {
  step : Event.t -> unit;
  finalize : unit -> 'r;
}

let make ~step ~finalize = { step; finalize }

let step a e = a.step e

let finalize a = a.finalize ()

let sink a : Trace.Sink.t = a.step

let map f a = { a with finalize = (fun () -> f (a.finalize ())) }

let chain a b =
  {
    step = (fun e -> a.step e; b.step e);
    finalize = (fun () -> (a.finalize (), b.finalize ()));
  }

let all analyses =
  {
    step = (fun e -> List.iter (fun a -> a.step e) analyses);
    finalize = (fun () -> List.map (fun a -> a.finalize ()) analyses);
  }

let const r = { step = (fun _ -> ()); finalize = (fun () -> r) }

let count () =
  let n = ref 0 in
  { step = (fun _ -> incr n); finalize = (fun () -> !n) }

let fold f init =
  let acc = ref init in
  { step = (fun e -> acc := f !acc e); finalize = (fun () -> !acc) }

let run a trace =
  Trace.iter a.step trace;
  a.finalize ()
