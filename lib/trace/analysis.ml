(* A snapshot is an ordered list of per-component packets. Packets carry
   their state as a closure over a typed value; [resume] transplants the
   value into a (possibly different) instance of the same component
   through that component's module-level [Key] — the cell smuggles the
   typed value across the untyped packet boundary, so no Obj magic and
   no per-component existential wrappers. *)
type packet = {
  pk_name : string;
  pk_inject : unit -> unit;  (* writes the value into its key's cell *)
}

type snapshot = packet list

module Key = struct
  type 'a t = {
    name : string;
    mutable cell : 'a option;
    m : Mutex.t;  (* cells are module-global; resumes may race across domains *)
  }

  let create name = { name; cell = None; m = Mutex.create () }
end

type 'r t = {
  step : Event.t -> unit;
  finalize : unit -> 'r;
  save : (unit -> packet list) option;
  load : (packet list -> packet list) option;
      (* consumes this component's leading packets, returns the rest *)
}

let make ~step ~finalize = { step; finalize; save = None; load = None }

let snapshottable (type s) ~(key : s Key.t) ~(save : unit -> s)
    ~(load : s -> unit) a =
  let save_pk () =
    (* Capture now: [save] must deep-copy, so later mutation of the live
       analysis (or of any instance the packet is loaded into) cannot
       leak back into the snapshot. *)
    let v = save () in
    [ { pk_name = key.Key.name; pk_inject = (fun () -> key.Key.cell <- Some v) } ]
  in
  let load_pk = function
    | [] ->
        invalid_arg
          ("Analysis.resume: missing snapshot component " ^ key.Key.name)
    | p :: rest ->
        if not (String.equal p.pk_name key.Key.name) then
          invalid_arg
            (Printf.sprintf
               "Analysis.resume: snapshot component %S where %S expected"
               p.pk_name key.Key.name);
        Mutex.lock key.Key.m;
        Fun.protect
          ~finally:(fun () ->
            key.Key.cell <- None;
            Mutex.unlock key.Key.m)
          (fun () ->
            key.Key.cell <- None;
            p.pk_inject ();
            match key.Key.cell with
            | Some v -> load v
            | None ->
                invalid_arg
                  ("Analysis.resume: key mismatch for component "
                 ^ key.Key.name));
        rest
  in
  { a with save = Some save_pk; load = Some load_pk }

let snapshot a = match a.save with Some s -> Some (s ()) | None -> None

let resume a s =
  match a.load with
  | None -> invalid_arg "Analysis.resume: analysis is not snapshottable"
  | Some ld -> (
      match ld s with
      | [] -> ()
      | _ -> invalid_arg "Analysis.resume: surplus snapshot components")

let step a e = a.step e

let finalize a = a.finalize ()

let sink a : Trace.Sink.t = a.step

let map f a = { a with finalize = (fun () -> f (a.finalize ())) }

let both_save a b =
  match (a.save, b.save) with
  | Some sa, Some sb -> Some (fun () -> sa () @ sb ())
  | _ -> None

let both_load a b =
  match (a.load, b.load) with
  | Some la, Some lb -> Some (fun pkts -> lb (la pkts))
  | _ -> None

let chain a b =
  {
    step = (fun e -> a.step e; b.step e);
    finalize = (fun () -> (a.finalize (), b.finalize ()));
    save = both_save a b;
    load = both_load a b;
  }

let all analyses =
  let opt_fold f =
    List.fold_left
      (fun acc a -> match acc with None -> None | Some acc -> f acc a)
      (Some [])
      analyses
    |> Option.map List.rev
  in
  {
    step = (fun e -> List.iter (fun a -> a.step e) analyses);
    finalize = (fun () -> List.map (fun a -> a.finalize ()) analyses);
    save =
      (match opt_fold (fun acc a ->
               Option.map (fun s -> s :: acc) a.save)
       with
      | Some saves -> Some (fun () -> List.concat_map (fun s -> s ()) saves)
      | None -> None);
    load =
      (match opt_fold (fun acc a ->
               Option.map (fun l -> l :: acc) a.load)
       with
      | Some loads ->
          Some (fun pkts -> List.fold_left (fun pkts l -> l pkts) pkts loads)
      | None -> None);
  }

let feedback up down =
  let handlers = ref [] in
  let publish fact = List.iter (fun h -> h fact) !handlers in
  let subscribe h = handlers := !handlers @ [ h ] in
  let a = up ~publish in
  let b = down ~subscribe in
  chain a b

let const r =
  {
    step = (fun _ -> ());
    finalize = (fun () -> r);
    save = Some (fun () -> []);
    load = Some (fun pkts -> pkts);
  }

let count_key : int Key.t = Key.create "count"

let count () =
  let n = ref 0 in
  snapshottable ~key:count_key
    ~save:(fun () -> !n)
    ~load:(fun v -> n := v)
    (make ~step:(fun _ -> incr n) ~finalize:(fun () -> !n))

let fold f init =
  let acc = ref init in
  make ~step:(fun e -> acc := f !acc e) ~finalize:(fun () -> !acc)

let instrumented ~name ~step_of =
  let elapsed = ref 0. in
  let events = ref 0 in
  fun (a : _ t) ->
    let step = step_of a elapsed events in
    let finalize () =
      let t0 = Coop_obs.now_s () in
      let r = a.finalize () in
      elapsed := !elapsed +. (Coop_obs.now_s () -. t0);
      Coop_obs.timer_add name !elapsed !events;
      (* Reset so a re-used analysis (two sources through one instance)
         does not double-flush what it already reported. *)
      elapsed := 0.;
      events := 0;
      r
    in
    (* Telemetry registers are not analysis state: a resumed instance
       reports only the time it spent itself, so save/load pass through. *)
    { a with step; finalize }

let instrument ?mark ~name a =
  if not (Coop_obs.enabled ()) then a
  else
    instrumented ~name
      ~step_of:(fun a elapsed events ->
        match mark with
        | None ->
            fun e ->
              let t0 = Coop_obs.now_s () in
              a.step e;
              elapsed := !elapsed +. (Coop_obs.now_s () -. t0);
              incr events
        | Some m ->
            (* Shared-clock mode: one read per step, delta from the mark
               the phase driver (or the previous checker) left behind. *)
            fun e ->
              a.step e;
              let t = Coop_obs.now_s () in
              elapsed := !elapsed +. (t -. !m);
              m := t;
              incr events)
      a

let instrument_phase ~name ~mark a =
  if not (Coop_obs.enabled ()) then a
  else
    instrumented ~name
      ~step_of:(fun a elapsed events ->
        fun e ->
          let t0 = Coop_obs.now_s () in
          mark := t0;
          a.step e;
          elapsed := !elapsed +. (Coop_obs.now_s () -. t0);
          incr events)
      a

let run a trace =
  Trace.iter a.step trace;
  a.finalize ()
