exception Parse_error = Wire.Parse_error

let format_name = "coop-trace/v1"

(* PNG-style magic: a non-ASCII lead byte (no text trace can collide),
   CRLF + ^Z + LF to catch line-ending translation and accidental
   text-mode reads early. *)
let magic = "\x89CPT\r\n\x1a\n"
let magic_len = String.length magic
let version = 1

(* Record tags. *)
let tag_def_global = 0x01
let tag_def_cell = 0x02
let tag_def_lock = 0x03
let tag_def_tid = 0x04
let tag_name = 0x05
let tag_event = 0x10 (* + op code, 0x10..0x1b *)

(* Location-elision bits, OR-ed into event tags. Threads run long
   same-location stretches (per-thread bit) but lockstep workloads also
   repeat one location ACROSS threads (stream bit); carrying both costs
   nothing and lets the encoder elide the location fields in either
   case. *)
let same_loc_bit = 0x40 (* same loc as this thread's previous event *)
let stream_loc_bit = 0x20 (* same loc as the stream's previous event *)
let loc_bits = same_loc_bit lor stream_loc_bit

let op_code : Event.op -> int = function
  | Event.Read _ -> 0
  | Event.Write _ -> 1
  | Event.Acquire _ -> 2
  | Event.Release _ -> 3
  | Event.Fork _ -> 4
  | Event.Join _ -> 5
  | Event.Yield -> 6
  | Event.Enter _ -> 7
  | Event.Exit _ -> 8
  | Event.Atomic_begin -> 9
  | Event.Atomic_end -> 10
  | Event.Out _ -> 11

let n_op_codes = 12

let kind_byte = function
  | Symtab.Func -> 0
  | Symtab.Lock -> 1
  | Symtab.Global -> 2
  | Symtab.Array -> 3

let kind_of_byte = function
  | 0 -> Some Symtab.Func
  | 1 -> Some Symtab.Lock
  | 2 -> Some Symtab.Global
  | 3 -> Some Symtab.Array
  | _ -> None

let errf off fmt = Printf.ksprintf (fun m -> Wire.parse_error m off) fmt

let bad_operand id rec_off =
  errf rec_off "undefined operand id %d (byte %d)" id rec_off

(* ---------------------------------------------------------------------- *)
(* Encoder                                                                 *)
(* ---------------------------------------------------------------------- *)

let grown a n fill =
  let bigger = Array.make (max n (2 * Array.length a)) fill in
  Array.blit a 0 bigger 0 (Array.length a);
  bigger

(* Flushing only ever happens between records, so chunks always contain
   whole records — the framing invariant decoders rely on. *)
let chunk_target = 1 lsl 15

type encoder = {
  buf : Buffer.t;  (* payload of the chunk being built *)
  lenbuf : Buffer.t;  (* scratch for length prefixes *)
  write : string -> unit;
  itn : Interner.t;  (* dense ids, assigned in stream order *)
  mutable def_vars : int;  (* ids already written as def records *)
  mutable def_locks : int;
  mutable def_tids : int;
  mutable prev_loc : Loc.t;  (* the stream's previous event, any thread *)
  mutable prev_locs : Loc.t array;  (* per dense thread id *)
}

let flush_chunk enc =
  if Buffer.length enc.buf > 0 then begin
    Buffer.clear enc.lenbuf;
    Wire.add_uvarint enc.lenbuf (Buffer.length enc.buf);
    enc.write (Buffer.contents enc.lenbuf);
    enc.write (Buffer.contents enc.buf);
    Buffer.clear enc.buf
  end

(* The end-of-stream marker is a zero-length chunk: exactly one 0x00
   byte, the self-delimiting full stop that lets a pipe reader hand the
   channel back at a known position and a truncation check distinguish
   "complete" from "cut off at a chunk boundary". *)
let finish enc =
  flush_chunk enc;
  enc.write "\x00"

let add_name_record buf kind id name =
  Buffer.add_char buf (Char.chr tag_name);
  Buffer.add_char buf (Char.chr (kind_byte kind));
  Wire.add_uvarint buf id;
  Wire.add_uvarint buf (String.length name);
  Buffer.add_string buf name

let create_encoder ?syms write =
  write magic;
  let vbuf = Buffer.create 4 in
  Wire.add_uvarint vbuf version;
  write (Buffer.contents vbuf);
  let enc =
    {
      buf = Buffer.create (2 * chunk_target);
      lenbuf = Buffer.create 8;
      write;
      itn = Interner.create ();
      def_vars = 0;
      def_locks = 0;
      def_tids = 0;
      prev_loc = Loc.none;
      prev_locs = Array.make 16 Loc.none;
    }
  in
  (* Name records ride in the first chunk, before any event, so a
     symbol's display name is known by the time anything references
     it. Arbitrary bytes round-trip: names are length-prefixed. *)
  (match syms with
  | Some t -> Symtab.iter t (fun kind id name -> add_name_record enc.buf kind id name)
  | None -> ());
  enc

(* Emit def records for every dense id the interner assigned that the
   stream has not yet declared. At most one id per category is new per
   event, but the loop keeps encoder and interner in sync regardless. *)
let flush_defs enc =
  let b = enc.buf in
  let n = Interner.n_vars enc.itn in
  while enc.def_vars < n do
    (match Interner.var_of_id enc.itn enc.def_vars with
    | Event.Global g ->
        Buffer.add_char b (Char.chr tag_def_global);
        Wire.add_svarint b g
    | Event.Cell (a, i) ->
        Buffer.add_char b (Char.chr tag_def_cell);
        Wire.add_svarint b a;
        Wire.add_svarint b i);
    enc.def_vars <- enc.def_vars + 1
  done;
  let n = Interner.n_locks enc.itn in
  while enc.def_locks < n do
    Buffer.add_char b (Char.chr tag_def_lock);
    Wire.add_svarint b (Interner.lock_of_id enc.itn enc.def_locks);
    enc.def_locks <- enc.def_locks + 1
  done;
  let n = Interner.n_tids enc.itn in
  while enc.def_tids < n do
    Buffer.add_char b (Char.chr tag_def_tid);
    Wire.add_svarint b (Interner.tid_of_id enc.itn enc.def_tids);
    enc.def_tids <- enc.def_tids + 1
  done

let encode_event enc (e : Event.t) =
  let tid_id = Interner.tid_id enc.itn e.Event.tid in
  (* Intern the operand (assigning a dense id on first sight), then
     declare any new ids before the event that references them. *)
  let operand =
    match e.Event.op with
    | Event.Read v | Event.Write v -> Interner.var_id enc.itn v
    | Event.Acquire l | Event.Release l -> Interner.lock_id enc.itn l
    | Event.Fork u | Event.Join u -> Interner.tid_id enc.itn u
    | Event.Yield | Event.Enter _ | Event.Exit _ | Event.Atomic_begin
    | Event.Atomic_end | Event.Out _ ->
        -1
  in
  flush_defs enc;
  let b = enc.buf in
  let loc = e.Event.loc in
  if tid_id >= Array.length enc.prev_locs then
    enc.prev_locs <- grown enc.prev_locs (tid_id + 1) Loc.none;
  let bits =
    if Loc.equal loc enc.prev_locs.(tid_id) then same_loc_bit
    else if Loc.equal loc enc.prev_loc then stream_loc_bit
    else 0
  in
  let tag = tag_event lor op_code e.Event.op lor bits in
  Buffer.add_char b (Char.chr tag);
  Wire.add_uvarint b tid_id;
  (match e.Event.op with
  | Event.Read _ | Event.Write _ | Event.Acquire _ | Event.Release _
  | Event.Fork _ | Event.Join _ ->
      Wire.add_uvarint b operand
  | Event.Enter f | Event.Exit f -> Wire.add_svarint b f
  | Event.Out n -> Wire.add_svarint b n
  | Event.Yield | Event.Atomic_begin | Event.Atomic_end -> ());
  if bits = 0 then begin
    Wire.add_svarint b loc.Loc.func;
    Wire.add_svarint b loc.Loc.pc;
    Wire.add_svarint b loc.Loc.line
  end;
  if bits <> same_loc_bit then enc.prev_locs.(tid_id) <- loc;
  enc.prev_loc <- loc;
  if Buffer.length b >= chunk_target then flush_chunk enc

let with_sink ?syms oc k =
  let enc = create_encoder ?syms (output_string oc) in
  let r = k (fun e -> encode_event enc e) in
  finish enc;
  r

let to_string ?syms trace =
  let out = Buffer.create (Trace.length trace * 8) in
  let enc = create_encoder ?syms (Buffer.add_string out) in
  Trace.iter (encode_event enc) trace;
  finish enc;
  Buffer.contents out

let save ?syms path trace =
  let oc = open_out_bin path in
  match
    let enc = create_encoder ?syms (output_string oc) in
    Trace.iter (encode_event enc) trace;
    finish enc
  with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      raise e

(* ---------------------------------------------------------------------- *)
(* Decoder                                                                 *)
(* ---------------------------------------------------------------------- *)

(* The decode hot path is allocation-free: one scratch event is rewritten
   per event (the [Event.copy] contract producers and sinks already
   share with the VM), [op] values are built once per dense id at def
   time and reused, and locations are cached by content so loops re-use
   the same [Loc.t]. *)

let dummy_op = Event.Yield

let loc_tab_size = 1024

type decoder = {
  mutable vars : Event.var array;
  mutable read_ops : Event.op array;
  mutable write_ops : Event.op array;
  mutable nv : int;
  mutable acq_ops : Event.op array;
  mutable rel_ops : Event.op array;
  mutable nl : int;
  mutable tids : int array;
  mutable fork_ops : Event.op array;
  mutable join_ops : Event.op array;
  mutable prev_locs : Loc.t array;  (* per dense tid, mirrors the encoder *)
  mutable nt : int;
  enter_ops : (int, Event.op) Hashtbl.t;
  exit_ops : (int, Event.op) Hashtbl.t;
  loc_tab : Loc.t array;  (* direct-mapped, power-of-two sized *)
  scratch : Event.t;
  mutable prev_loc : Loc.t;  (* last EXPLICITLY decoded loc (cache seed) *)
  mutable last_loc : Loc.t;  (* the stream's previous event, any thread *)
}

let create_decoder () =
  {
    vars = Array.make 512 (Event.Global min_int);
    read_ops = Array.make 512 dummy_op;
    write_ops = Array.make 512 dummy_op;
    nv = 0;
    acq_ops = Array.make 16 dummy_op;
    rel_ops = Array.make 16 dummy_op;
    nl = 0;
    tids = Array.make 16 0;
    fork_ops = Array.make 16 dummy_op;
    join_ops = Array.make 16 dummy_op;
    prev_locs = Array.make 16 Loc.none;
    nt = 0;
    enter_ops = Hashtbl.create 64;
    exit_ops = Hashtbl.create 64;
    loc_tab = Array.make loc_tab_size Loc.none;
    scratch = Event.make ~tid:0 ~op:dummy_op ~loc:Loc.none;
    prev_loc = Loc.none;
    last_loc = Loc.none;
  }

(* Var [op] values are built lazily on first use, not at def time: a
   def-heavy stream (one def per few events — sparse array sweeps) pays
   for the ops it touches, and a variable only ever read never gets a
   [Write] built at all. [dummy_op] marks an empty slot; a real
   [Read]/[Write] is a block, so the physical comparison cannot
   confuse the two. *)
let def_var dec v =
  if dec.nv = Array.length dec.vars then begin
    dec.vars <- grown dec.vars (dec.nv + 1) v;
    dec.read_ops <- grown dec.read_ops (dec.nv + 1) dummy_op;
    dec.write_ops <- grown dec.write_ops (dec.nv + 1) dummy_op
  end;
  (* Dense ids are never reused, so the op slots past [nv] still hold
     the [dummy_op] they were created (or grown) with — only the var
     itself needs writing. Def-heavy streams run this once per record. *)
  dec.vars.(dec.nv) <- v;
  dec.nv <- dec.nv + 1

let def_lock dec l =
  if dec.nl = Array.length dec.acq_ops then begin
    dec.acq_ops <- grown dec.acq_ops (dec.nl + 1) dummy_op;
    dec.rel_ops <- grown dec.rel_ops (dec.nl + 1) dummy_op
  end;
  dec.acq_ops.(dec.nl) <- Event.Acquire l;
  dec.rel_ops.(dec.nl) <- Event.Release l;
  dec.nl <- dec.nl + 1

let def_tid dec t =
  if dec.nt = Array.length dec.tids then begin
    dec.tids <- grown dec.tids (dec.nt + 1) 0;
    dec.fork_ops <- grown dec.fork_ops (dec.nt + 1) dummy_op;
    dec.join_ops <- grown dec.join_ops (dec.nt + 1) dummy_op;
    dec.prev_locs <- grown dec.prev_locs (dec.nt + 1) Loc.none
  end;
  dec.prev_locs.(dec.nt) <- Loc.none;
  dec.tids.(dec.nt) <- t;
  dec.fork_ops.(dec.nt) <- Event.Fork t;
  dec.join_ops.(dec.nt) <- Event.Join t;
  dec.nt <- dec.nt + 1

(* Content-addressed location cache: a direct-mapped table, not a
   Hashtbl — this sits on the hot path of every event whose thread
   changed location, and a masked array load plus three int compares
   beats a hash call and a bucket walk. Slots are verified
   field-by-field on hit; a collision just evicts (correctness never
   depends on the cache, it only makes loops re-use one [Loc.t]). *)
let loc_of dec func pc line =
  let prev = dec.prev_loc in
  if prev.Loc.func = func && prev.Loc.pc = pc && prev.Loc.line = line then prev
  else begin
    let key = ((func * 8388617) + pc) * 8388617 + line in
    let idx = key land (loc_tab_size - 1) in
    let l = Array.unsafe_get dec.loc_tab idx in
    if l.Loc.func = func && l.Loc.pc = pc && l.Loc.line = line then l
    else begin
      let l = Loc.make ~func ~pc ~line in
      Array.unsafe_set dec.loc_tab idx l;
      l
    end
  end

let enter_op dec f =
  match Hashtbl.find dec.enter_ops f with
  | op -> op
  | exception Not_found ->
      let op = Event.Enter f in
      Hashtbl.add dec.enter_ops f op;
      op

let exit_op dec f =
  match Hashtbl.find dec.exit_ops f with
  | op -> op
  | exception Not_found ->
      let op = Event.Exit f in
      Hashtbl.add dec.exit_ops f op;
      op

(* Decode the records in [s.[!pos .. stop-1]]; [base] is the absolute
   stream offset of [s.[0]] (0 when [s] is the whole stream). *)
let decode_records dec ?syms s ~pos ~stop ~base f =
  (* Inlined 1- and 2-byte varint fast paths: [Wire.read_uvarint] is a
     cross-module call ocamlopt will not inline, and nearly every field
     here (dense ids, tids, loc deltas) fits in one or two bytes. The
     closures are built once per chunk, not per record, and the slow
     path falls back to [Wire] for bounds errors and longer values. *)
  let uv () =
    let p = !pos in
    if p < stop then begin
      let b = Char.code (String.unsafe_get s p) in
      if b < 0x80 then begin
        pos := p + 1;
        b
      end
      else if p + 1 < stop then begin
        let b1 = Char.code (String.unsafe_get s (p + 1)) in
        if b1 < 0x80 then begin
          pos := p + 2;
          b land 0x7f lor (b1 lsl 7)
        end
        else Wire.read_uvarint s ~pos ~base
      end
      else Wire.read_uvarint s ~pos ~base
    end
    else Wire.read_uvarint s ~pos ~base
  in
  let sv () = Wire.unzigzag (uv ()) in
  while !pos < stop do
    let rec_off = base + !pos in
    let tag = Char.code (String.unsafe_get s !pos) in
    incr pos;
    if tag >= tag_event then begin
      let code = (tag land lnot loc_bits) - tag_event in
      if code < 0 || code >= n_op_codes then
        errf rec_off "unknown record tag 0x%02x (byte %d)" tag rec_off;
      let tid_id = uv () in
      if tid_id < 0 || tid_id >= dec.nt then
        errf rec_off "undefined thread id %d (byte %d)" tid_id rec_off;
      let scratch = dec.scratch in
      scratch.Event.tid <- Array.unsafe_get dec.tids tid_id;
      let op =
        match code with
        | 0 ->
            let id = uv () in
            if id < 0 || id >= dec.nv then bad_operand id rec_off;
            let op = Array.unsafe_get dec.read_ops id in
            if op != dummy_op then op
            else begin
              let op = Event.Read (Array.unsafe_get dec.vars id) in
              Array.unsafe_set dec.read_ops id op;
              op
            end
        | 1 ->
            let id = uv () in
            if id < 0 || id >= dec.nv then bad_operand id rec_off;
            let op = Array.unsafe_get dec.write_ops id in
            if op != dummy_op then op
            else begin
              let op = Event.Write (Array.unsafe_get dec.vars id) in
              Array.unsafe_set dec.write_ops id op;
              op
            end
        | 2 ->
            let id = uv () in
            if id < 0 || id >= dec.nl then bad_operand id rec_off;
            Array.unsafe_get dec.acq_ops id
        | 3 ->
            let id = uv () in
            if id < 0 || id >= dec.nl then bad_operand id rec_off;
            Array.unsafe_get dec.rel_ops id
        | 4 ->
            let id = uv () in
            if id < 0 || id >= dec.nt then bad_operand id rec_off;
            Array.unsafe_get dec.fork_ops id
        | 5 ->
            let id = uv () in
            if id < 0 || id >= dec.nt then bad_operand id rec_off;
            Array.unsafe_get dec.join_ops id
        | 6 -> Event.Yield
        | 7 -> enter_op dec (sv ())
        | 8 -> exit_op dec (sv ())
        | 9 -> Event.Atomic_begin
        | 10 -> Event.Atomic_end
        | _ -> Event.Out (sv ())
      in
      scratch.Event.op <- op;
      let loc =
        if tag land same_loc_bit <> 0 then Array.unsafe_get dec.prev_locs tid_id
        else begin
          let l =
            if tag land stream_loc_bit <> 0 then dec.last_loc
            else begin
              let func = sv () in
              let pc = sv () in
              let line = sv () in
              let l = loc_of dec func pc line in
              dec.prev_loc <- l;
              l
            end
          in
          Array.unsafe_set dec.prev_locs tid_id l;
          l
        end
      in
      dec.last_loc <- loc;
      scratch.Event.loc <- loc;
      f scratch
    end
    else if tag = tag_def_global then def_var dec (Event.Global (sv ()))
    else if tag = tag_def_cell then begin
      let a = sv () in
      let i = sv () in
      def_var dec (Event.Cell (a, i))
    end
    else if tag = tag_def_lock then def_lock dec (sv ())
    else if tag = tag_def_tid then def_tid dec (sv ())
    else if tag = tag_name then begin
      if !pos >= stop then errf rec_off "truncated name record (byte %d)" rec_off;
      let kb = Char.code s.[!pos] in
      incr pos;
      let id = uv () in
      let n = uv () in
      if n < 0 || !pos + n > stop then
        errf rec_off "truncated name record (byte %d)" rec_off;
      let name = String.sub s !pos n in
      pos := !pos + n;
      match kind_of_byte kb with
      | None -> errf rec_off "bad symbol kind %d (byte %d)" kb rec_off
      | Some kind -> (
          match syms with Some t -> Symtab.set t kind id name | None -> ())
    end
    else errf rec_off "unknown record tag 0x%02x (byte %d)" tag rec_off
  done;
  if !pos > stop then
    errf (base + stop) "record overruns its chunk (byte %d)" (base + stop)

let max_chunk = 1 lsl 26

let check_version v ~off =
  if v <> version then
    errf off "unsupported %s version %d, this reader speaks %d (byte %d)"
      format_name v version off

(* ---- whole-string decoding ---- *)

let iter_string ?syms s f =
  let len = String.length s in
  if len < magic_len || String.sub s 0 magic_len <> magic then
    Wire.parse_error
      (Printf.sprintf "bad magic: not a %s stream (byte 0)" format_name)
      0;
  let pos = ref magic_len in
  let dec = create_decoder () in
  check_version (Wire.read_uvarint s ~pos ~base:0) ~off:magic_len;
  let finished = ref false in
  while not !finished do
    if !pos >= len then
      errf len "truncated stream: missing end-of-stream chunk (byte %d)" len;
    let chunk_off = !pos in
    let n = Wire.read_uvarint s ~pos ~base:0 in
    if n = 0 then finished := true
    else begin
      if n > max_chunk then
        errf chunk_off "oversized chunk of %d bytes (byte %d)" n chunk_off;
      let stop = !pos + n in
      if stop > len then
        errf chunk_off "truncated chunk: wanted %d bytes, stream ends (byte %d)"
          n chunk_off;
      decode_records dec ?syms s ~pos ~stop ~base:0 f;
      pos := stop
    end
  done

let of_string ?syms s =
  let trace = Trace.create () in
  iter_string ?syms s (Trace.Sink.recording trace);
  trace

(* ---- channel decoding ---- *)

let iter_channel_body ?syms ~offset ic f =
  let off = ref offset in
  let voff = !off in
  check_version (Wire.input_uvarint ic ~offset:off) ~off:voff;
  let dec = create_decoder () in
  (* One chunk buffer, grown to the largest chunk seen and reused; the
     string view is refreshed only between chunks. *)
  let scratch = ref (Bytes.create chunk_target) in
  let finished = ref false in
  while not !finished do
    let chunk_off = !off in
    let n =
      match Wire.input_uvarint ic ~offset:off with
      | n -> n
      | exception End_of_file ->
          errf chunk_off
            "truncated stream: missing end-of-stream chunk (byte %d)" chunk_off
    in
    if n = 0 then finished := true
    else begin
      if n > max_chunk then
        errf chunk_off "oversized chunk of %d bytes (byte %d)" n chunk_off;
      if Bytes.length !scratch < n then scratch := Bytes.create n;
      (match really_input ic !scratch 0 n with
      | () -> ()
      | exception End_of_file ->
          errf chunk_off "truncated chunk: wanted %d bytes, stream ends (byte %d)"
            n chunk_off);
      let base = !off in
      off := !off + n;
      let s = Bytes.unsafe_to_string !scratch in
      decode_records dec ?syms s ~pos:(ref 0) ~stop:n ~base f
    end
  done

let iter_channel ?syms ic f =
  let head =
    match really_input_string ic magic_len with
    | s -> s
    | exception End_of_file ->
        Wire.parse_error
          (Printf.sprintf "truncated header: not a %s stream (byte 0)"
             format_name)
          0
  in
  if head <> magic then
    Wire.parse_error
      (Printf.sprintf "bad magic: not a %s stream (byte 0)" format_name)
      0;
  iter_channel_body ?syms ~offset:magic_len ic f

let iter_file ?syms path f =
  let ic = open_in_bin path in
  match iter_channel ?syms ic f with
  | () -> close_in ic
  | exception e ->
      close_in_noerr ic;
      raise e

let load ?syms path =
  let trace = Trace.create () in
  iter_file ?syms path (Trace.Sink.recording trace);
  trace
