(** [coop-trace/v1]: the length-prefixed binary trace encoding.

    The wire format the production surface (sockets, pipes, disk at
    scale) speaks, replacing the line-oriented text format where
    throughput matters — parsing text is a measurable share of the
    streaming-analysis profile. Layout:

    {v
    magic (8 bytes)  89 43 50 54 0d 0a 1a 0a   ("\x89CPT\r\n\x1a\n")
    version          uvarint (= 1)
    chunk*           uvarint payload-length, then that many bytes
    end-of-stream    a zero-length chunk (one 0x00 byte)
    v}

    Each chunk payload is a sequence of whole records (records never
    span chunks), each a tag byte plus varint fields:

    {v
    0x01 def-var    g                 next dense var id := Global g
    0x02 def-var    a i               next dense var id := Cell (a,i)
    0x03 def-lock   handle            next dense lock id
    0x04 def-thread tid               next dense thread id
    0x05 name       kind id len bytes symbol display name (Symtab)
    0x10..0x1b      event             see below
    v}

    Events reference their thread and operand through {e dense ids}
    assigned by the shared {!Interner} discipline: the encoder interns
    as it writes and emits a def record the first time an id appears
    (ids are defined in increasing order, so def records need not carry
    the id), making every stream self-describing — a decoder needs no
    side table, and a reader joining a file at the top needs no
    trailer. An event record is

    {v
    tag  uvarint(thread-id)  [operand]  [svarint func, pc, line]
    v}

    where the operand is a dense var id (rd/wr), dense lock id
    (acq/rel), dense thread id (fork/join), or raw svarint
    (enter/exit/out). Two tag bits elide the location fields: [0x40]
    means "same location as {e this thread's} previous event" and
    [0x20] means "same location as the {e stream's} previous event"
    (any thread; checked only when [0x40] does not apply). The first
    survives thread interleavings — each thread runs long same-location
    stretches — and the second catches lockstep workloads where many
    threads repeat one location. When either bit is set the three
    location fields are omitted.

    The length-prefixed chunks make the stream self-delimiting: a
    decoder on a pipe or socket consumes exactly the encoded bytes
    (stopping at the end-of-stream chunk without reading ahead), and
    truncation anywhere — header, chunk length, mid-chunk — raises
    {!Parse_error} with the byte offset rather than yielding a silent
    prefix.

    Decoding is allocation-free on the hot path, reusing the VM's
    scratch-event discipline: callbacks receive one mutable
    {!Event.t} whose fields are rewritten per event (a consumer that
    retains events must {!Event.copy}), operand [op] values and
    locations are cached per dense id, and chunk buffers are reused.

    Versioning policy: the magic never changes; [version] bumps on any
    incompatible layout change and decoders reject versions they do not
    know. New {e record tags} may be added within a version only if
    streams remain readable by skipping unknown tags is NOT assumed —
    i.e. adding a tag requires a version bump; the self-describing
    symbol discipline is the extension point instead. *)

exception Parse_error of string * int
(** Alias of {!Wire.Parse_error}: [(message, byte offset)]. *)

val format_name : string
(** ["coop-trace/v1"]. *)

val magic : string
(** The 8-byte header prefix; no text trace can start with it (the
    first byte is non-ASCII), which is what format auto-detection keys
    on. *)

val version : int

(** {1 Encoding} *)

val with_sink : ?syms:Symtab.t -> out_channel -> (Trace.Sink.t -> 'a) -> 'a
(** [with_sink oc k] writes the header (and [syms]' name records, if
    given) to [oc], passes [k] a sink that encodes each event, and on
    return (or raise) flushes the final chunk and the end-of-stream
    marker. The channel is not closed. Events are encoded as they
    arrive — a live run streams to disk without materializing. *)

val to_string : ?syms:Symtab.t -> Trace.t -> string
(** Encode a whole trace. *)

val save : ?syms:Symtab.t -> string -> Trace.t -> unit
(** [save path t] writes [to_string t] to [path]. *)

(** {1 Decoding} *)

val iter_string : ?syms:Symtab.t -> string -> (Event.t -> unit) -> unit
(** [iter_string s f] decodes [s] and calls [f] on each event in order.
    [f] receives a {e scratch} event (copy to retain). Name records
    populate [syms] when given. Raises {!Parse_error}. *)

val of_string : ?syms:Symtab.t -> string -> Trace.t
(** Decode into a fresh trace (events are copied). Raises
    {!Parse_error}. *)

val iter_channel : ?syms:Symtab.t -> in_channel -> (Event.t -> unit) -> unit
(** Stream-decode from a channel, stopping after the end-of-stream
    chunk without reading past it — safe on pipes carrying further
    data. Constant memory. Raises {!Parse_error} (with absolute byte
    offsets) on corruption or truncation, including EOF before the
    end-of-stream marker. *)

val iter_channel_body :
  ?syms:Symtab.t -> offset:int -> in_channel -> (Event.t -> unit) -> unit
(** Like {!iter_channel} when the caller has already consumed (and
    checked) the magic — the format auto-detection path. [offset] is
    the number of bytes already consumed, for error positions. *)

val iter_file : ?syms:Symtab.t -> string -> (Event.t -> unit) -> unit
(** Stream-decode a file. Raises [Sys_error] and {!Parse_error}. *)

val load : ?syms:Symtab.t -> string -> Trace.t
(** Read and decode a whole file. *)
