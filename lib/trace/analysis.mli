(** Online (streaming) trace analyses.

    An analysis consumes the event stream one event at a time through
    {!step} and produces a typed result on {!finalize} — the shape of every
    dynamic checker in this repository (race detection, mover/transaction
    automata, atomicity, deadlock prediction, metrics). Analyses hold
    O(threads·vars) internal state and never materialize the trace, so they
    can be fed directly from the VM sink ({!sink}) or from a serialized
    trace streamed off disk.

    Composition is fused: {!chain} and {!all} dispatch each event exactly
    once and pass it through every component in order, RoadRunner-style, so
    a later analysis in the chain may read state an earlier one just
    updated. *)

type 'r t
(** An online analysis producing a result of type ['r]. *)

val make : step:(Event.t -> unit) -> finalize:(unit -> 'r) -> 'r t
(** Build an analysis from its two operations. [step] is the hot path; it
    must be safe to call [finalize] at any point (end of stream). *)

val step : _ t -> Event.t -> unit
(** Feed one event. *)

val finalize : 'r t -> 'r
(** Extract the result after the last event. *)

val sink : _ t -> Trace.Sink.t
(** The analysis as an event sink — attach it to a live run. This is the
    no-allocation identity on the step function, not a wrapper. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** Post-process the result; the step path is untouched. *)

val chain : 'a t -> 'b t -> ('a * 'b) t
(** Fused sequential composition: one event dispatch, flowing through the
    first analysis then the second. The second may consult (mutable) state
    the first maintains — the chaining discipline of event-stream tool
    stacks. *)

val all : 'r t list -> 'r list t
(** Fused homogeneous fan-out: every analysis sees every event, one
    dispatch per event. *)

val const : 'r -> 'r t
(** Ignores the stream and yields a constant (unit for pure side-effect
    sinks, placeholders in heterogeneous chains). *)

val count : unit -> int t
(** Counts events. *)

val fold : ('a -> Event.t -> 'a) -> 'a -> 'a t
(** A left fold over the stream as an analysis. *)

val run : 'r t -> Trace.t -> 'r
(** Offline driver: replay a recorded trace through the analysis. The thin
    wrapper that keeps the [check : Trace.t -> result] entry points
    alive. *)
