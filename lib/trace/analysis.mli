(** Online (streaming) trace analyses.

    An analysis consumes the event stream one event at a time through
    {!step} and produces a typed result on {!finalize} — the shape of every
    dynamic checker in this repository (race detection, mover/transaction
    automata, atomicity, deadlock prediction, metrics). Analyses hold
    O(threads·vars) internal state and never materialize the trace, so they
    can be fed directly from the VM sink ({!sink}) or from a serialized
    trace streamed off disk.

    Composition is fused: {!chain} and {!all} dispatch each event exactly
    once and pass it through every component in order, RoadRunner-style, so
    a later analysis in the chain may read state an earlier one just
    updated. *)

type 'r t
(** An online analysis producing a result of type ['r]. *)

type snapshot
(** A deep copy of a snapshottable analysis's internal state, taken
    between two events. Snapshots are ordered lists of per-component
    packets; {!resume} matches them component-wise against the target's
    composition, so a snapshot can only be resumed into an analysis with
    the {e same shape} (the same chain of the same checkers) — typically
    a fresh instance built by the same constructor call. *)

module Key : sig
  type 'a t
  (** The identity of one snapshottable component {e kind}. Create the
      key once, at the defining module's toplevel, so every instance of
      that checker shares it — that sharing is what lets a packet saved
      from one instance load into another without untyped casts. *)

  val create : string -> 'a t
  (** [create name] mints a key. [name] labels the component in
      mismatch errors; it also participates in shape checking, so use
      one fixed name per checker kind. *)
end

val make : step:(Event.t -> unit) -> finalize:(unit -> 'r) -> 'r t
(** Build an analysis from its two operations. [step] is the hot path; it
    must be safe to call [finalize] at any point (end of stream). The
    result is not snapshottable; see {!snapshottable}. *)

val snapshottable :
  key:'s Key.t -> save:(unit -> 's) -> load:('s -> unit) -> 'r t -> 'r t
(** [snapshottable ~key ~save ~load a] declares [a] checkpointable.

    The deep-copy contract: [save ()] must return a value sharing {e no
    mutable structure} with the live analysis, and [load s] must install
    a state sharing no mutable structure with [s] (copy again on load),
    so one snapshot can be loaded into many instances and every instance
    diverges independently afterwards. Under that contract, an instance
    that loads a snapshot taken after streaming a prefix is
    observationally identical to one that streamed the full prefix —
    the law the replay-elision layer relies on (property-tested). *)

val snapshot : _ t -> snapshot option
(** Capture the analysis's state between two events; [None] when any
    component lacks {!snapshottable} support. *)

val resume : _ t -> snapshot -> unit
(** Install a snapshot into an analysis of the same shape, replacing its
    state as if it had streamed the snapshot's prefix. Raises
    [Invalid_argument] when the shapes disagree (missing, surplus or
    differently-keyed components). Domain-safe: concurrent resumes of
    the same component kind serialize on the key. *)

val step : _ t -> Event.t -> unit
(** Feed one event. *)

val finalize : 'r t -> 'r
(** Extract the result after the last event. *)

val sink : _ t -> Trace.Sink.t
(** The analysis as an event sink — attach it to a live run. This is the
    no-allocation identity on the step function, not a wrapper. *)

val map : ('a -> 'b) -> 'a t -> 'b t
(** Post-process the result; the step path is untouched. *)

val chain : 'a t -> 'b t -> ('a * 'b) t
(** Fused sequential composition: one event dispatch, flowing through the
    first analysis then the second. The second may consult (mutable) state
    the first maintains — the chaining discipline of event-stream tool
    stacks. *)

val all : 'r t list -> 'r list t
(** Fused homogeneous fan-out: every analysis sees every event, one
    dispatch per event. *)

val feedback :
  (publish:('f -> unit) -> 'a t) ->
  (subscribe:(('f -> unit) -> unit) -> 'b t) ->
  ('a * 'b) t
(** Fused composition with an incremental fact channel between the two
    sides. [feedback up down] builds the upstream analysis with a
    [publish] function and the downstream one with a [subscribe]
    registration; both then run fused, exactly like {!chain}. A fact
    published by the upstream {e during its step for event [e]} is
    delivered synchronously to every subscribed handler — i.e. {e before}
    the downstream analysis steps on [e] — which is what lets a
    downstream checker refine earlier optimistic classifications the
    moment an upstream detector learns something (the single-pass
    engine's [racy]/[shared] facts). Handlers run in subscription
    order; facts published at finalize time are delivered too (the
    upstream finalizes first). *)

val const : 'r -> 'r t
(** Ignores the stream and yields a constant (unit for pure side-effect
    sinks, placeholders in heterogeneous chains). *)

val count : unit -> int t
(** Counts events. Snapshottable (as is {!const}), so counters survive
    prefix-resume in fused chains. *)

val fold : ('a -> Event.t -> 'a) -> 'a -> 'a t
(** A left fold over the stream as an analysis. *)

val instrument : ?mark:float ref -> name:string -> 'r t -> 'r t
(** [instrument ~name a] attributes the time spent inside [a]'s step and
    finalize to the [Coop_obs] timer [name], and counts its step calls.
    With telemetry disabled this returns [a] itself — the uninstrumented
    hot path is unchanged, not merely cheap. Enabled, the elapsed time is
    accumulated in a closure-local register and flushed to the registry
    once, at finalize, so the per-event cost is two clock reads.

    [mark] is the shared-clock optimisation for checkers fused in a
    chain driven by {!instrument_phase}: the step reads the clock once
    {e after} running, attributes [now - !mark] and advances [mark] — so
    [k] fused checkers cost [k + 2] clock reads per event instead of
    [2k + 2]. Only valid when an enclosing {!instrument_phase} with the
    same [mark] runs first on every event; each checker's time then also
    absorbs the (negligible) chain dispatch just before it. *)

val instrument_phase : name:string -> mark:float ref -> 'r t -> 'r t
(** [instrument_phase ~name ~mark a] is {!instrument} for the whole fused
    chain of one pipeline phase: before dispatching an event it stores
    the clock in [mark] (seeding the inner [?mark] checkers), and
    attributes the full dispatch time to [name] — the denominator of the
    per-checker attribution table. *)

val run : 'r t -> Trace.t -> 'r
(** Offline driver: replay a recorded trace through the analysis. The thin
    wrapper that keeps the [check : Trace.t -> result] entry points
    alive. *)
