(** Line-oriented trace serialization, and the format-selection layer.

    Recorded traces can be saved to disk and re-analyzed later (or diffed
    across runs) without re-executing the program — the workflow RoadRunner
    users rely on. The text format is one event per line:

    {v
    <tid> <op> [args] @ <func> <pc> <line>
    v}

    e.g. ["1 wr g4 @ 0 17 12"] or ["0 acq 2 @ 1 3 9"]. Lines starting
    with ['#'] are pragmas: ["#kind id name"] binds a display name (see
    {!Symtab}; [kind] is [func|lock|global|array]), anything else after
    ['#'] is a comment. The format is stable, human-greppable, and
    round-trips exactly ([of_string (to_string t)] equals [t] event for
    event).

    Where throughput or exact name round-tripping matters, the same
    traces serialize to the {!Codec} binary format instead: {!save} and
    {!with_file_sink} take a {!format}, and {!load} (like
    [Source.of_file]) auto-detects which of the two a file contains by
    its magic bytes. The text entry points ({!of_string},
    {!iter_channel}, …) parse text only. *)

exception Parse_error of string * int
(** [(message, position)] on malformed input — an alias of
    {!Wire.Parse_error}, shared with {!Codec}. For text input the
    position is a 1-based line number and the message ends in
    ["(line N)"]; for binary input it is a byte offset and the message
    ends in ["(byte N)"] — either way the message is self-describing. *)

exception Encode_error of string
(** Alias of {!Wire.Encode_error}: raised when a value cannot be
    represented in the requested format — today, a {!Symtab} display
    name containing whitespace or ['@'], which the text line grammar
    would corrupt. The binary format encodes any name. *)

(** Which wire format to write. Readers never need this: every decode
    entry point that touches a file or channel auto-detects by magic. *)
type format = Text | Binary

val format_to_string : format -> string
(** ["text" | "binary"]. *)

val format_of_string : string -> format option
(** Inverse of {!format_to_string} (CLI argument parsing). *)

val to_string : ?syms:Symtab.t -> Trace.t -> string
(** Serialize a whole trace as text, [syms]' bindings first as pragma
    lines. Raises {!Encode_error} on a name the text grammar cannot
    carry. *)

val of_string : ?syms:Symtab.t -> string -> Trace.t
(** Parse a serialized text trace; name pragmas populate [syms] when
    given. Raises {!Parse_error}. *)

val iter_string : ?syms:Symtab.t -> string -> (Event.t -> unit) -> unit
(** [iter_string s f] parses [s] and calls [f] on each event in order,
    without building a trace. Raises {!Parse_error}. *)

val iter_channel : ?syms:Symtab.t -> in_channel -> (Event.t -> unit) -> unit
(** [iter_channel ic f] reads serialized events from [ic] until
    end-of-file, calling [f] on each — constant memory, works on a
    non-seekable channel (a pipe, stdin). The channel is {e not}
    closed. Raises {!Parse_error}. *)

val iter_channel_from :
  ?syms:Symtab.t -> prefix:string -> in_channel -> (Event.t -> unit) -> unit
(** Like {!iter_channel} when a format sniffer already consumed
    [prefix] bytes off the channel: they are re-interpreted as the
    start of the text, embedded newlines and a trailing partial line
    included. [iter_channel] is [iter_channel_from ~prefix:""]. *)

val iter_file : ?syms:Symtab.t -> string -> (Event.t -> unit) -> unit
(** [iter_file path f] streams the text trace file at [path] one line
    at a time, calling [f] on each event — constant memory regardless
    of file size. Raises [Sys_error] and {!Parse_error}. *)

val save : ?format:format -> ?syms:Symtab.t -> string -> Trace.t -> unit
(** [save path t] writes [t] to [path] in the chosen format (default
    [Text]). Raises {!Encode_error} as {!to_string}. *)

val with_file_sink :
  ?format:format -> ?syms:Symtab.t -> string -> (Trace.Sink.t -> 'a) -> 'a
(** [with_file_sink path k] opens [path] for writing and passes [k] a
    sink that serializes each event straight to the file (default
    [Text]), so a live run can be saved without ever materializing the
    trace. [syms]' bindings are written up front. The channel is closed
    when [k] returns (or raises). *)

val of_string_any : ?syms:Symtab.t -> string -> format * Trace.t
(** Decode a string in {e either} format, auto-detected by magic bytes,
    reporting which it was. Raises {!Parse_error} (including on a
    truncated binary header). *)

val load : ?syms:Symtab.t -> string -> Trace.t
(** [load path] reads a trace file in {e either} format, auto-detected
    by magic bytes. Raises [Sys_error] and {!Parse_error}. *)
