(** Line-oriented trace serialization.

    Recorded traces can be saved to disk and re-analyzed later (or diffed
    across runs) without re-executing the program — the workflow RoadRunner
    users rely on. The format is one event per line:

    {v
    <tid> <op> [args] @ <func> <pc> <line>
    v}

    e.g. ["1 wr g4 @ 0 17 12"] or ["0 acq 2 @ 1 3 9"]. The format is stable,
    human-greppable, and round-trips exactly ([of_string (to_string t)]
    equals [t] event for event). *)

exception Parse_error of string * int
(** [(message, line_number)] on malformed input. *)

val to_string : Trace.t -> string
(** Serialize a whole trace. *)

val of_string : string -> Trace.t
(** Parse a serialized trace. Raises {!Parse_error}. *)

val iter_string : string -> (Event.t -> unit) -> unit
(** [iter_string s f] parses [s] and calls [f] on each event in order,
    without building a trace. Raises {!Parse_error}. *)

val iter_channel : in_channel -> (Event.t -> unit) -> unit
(** [iter_channel ic f] reads serialized events from [ic] until
    end-of-file, calling [f] on each — constant memory, and the only
    entry point that works on a non-seekable channel (a pipe, stdin).
    The channel is {e not} closed. Raises {!Parse_error}. *)

val iter_file : string -> (Event.t -> unit) -> unit
(** [iter_file path f] streams the trace file at [path] one line at a
    time, calling [f] on each event — constant memory regardless of file
    size. Raises [Sys_error] and {!Parse_error}. *)

val save : string -> Trace.t -> unit
(** [save path t] writes [to_string t] to [path]. *)

val with_file_sink : string -> (Trace.Sink.t -> 'a) -> 'a
(** [with_file_sink path k] opens [path] for writing and passes [k] a sink
    that serializes each event straight to the file, so a live run can be
    saved without ever materializing the trace. The channel is closed when
    [k] returns (or raises). *)

val load : string -> Trace.t
(** [load path] reads and parses a trace file. Raises [Sys_error] and
    {!Parse_error}. *)
