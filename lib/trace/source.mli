(** Replayable event streams.

    A source pushes the same totally ordered event sequence into a sink
    each time it is invoked, without the caller ever holding the events in
    memory: a recorded trace, a serialized trace streamed off disk, or a
    deterministic re-execution of the program itself (see
    [Runner.source]). Multi-phase analyses (the racy set is only complete
    at the end of the stream) re-stream from the source instead of
    buffering events, which is what keeps the fused pipeline at
    O(threads·vars) memory.

    File and channel sources are {e format-agnostic}: the first bytes are
    sniffed and dispatched to the {!Codec} binary decoder (magic match)
    or the {!Serialize} text parser (anything else — the magic's first
    byte is non-ASCII, so the two cannot collide). Both decode paths
    charge their time to the ["trace/decode"] timer when observability
    is on, so [--profile] shows what share of a run is parsing.

    Replays must be deterministic: every invocation must produce the
    identical event sequence, or phase results cannot be combined. The
    one deliberate exception is {!of_channel}: a live pipe cannot be
    replayed at all, which is exactly why the single-pass engine exists —
    it is the only consumer that needs each event once. *)

type t = Trace.Sink.t -> unit
(** [source sink] streams every event into [sink], in program order.
    Events delivered by file/channel sources may be {e scratch} events
    (see {!Event.copy}); sinks that retain them must copy. *)

val of_trace : Trace.t -> t
(** Stream a recorded trace (no copy). *)

val of_list : Event.t list -> t
(** Stream a list of events. *)

val of_file : ?syms:Symtab.t -> string -> t
(** Stream a trace file in either format, auto-detected per replay (the
    file is re-opened and re-sniffed each invocation, so mixed-format
    workflows just work and the source stays replayable; it is never
    loaded whole). Display names found in the file populate [syms].
    Raises [Sys_error] and {!Serialize.Parse_error}. *)

val of_channel : ?syms:Symtab.t -> in_channel -> t
(** Stream a serialized trace from an open channel — stdin, a pipe, a
    socket — in either format, auto-detected. A binary stream is
    consumed exactly to its end-of-stream marker (nothing read past
    it). Unlike every other constructor this source is {b not
    replayable}: the underlying bytes are gone once read, so a second
    invocation raises [Invalid_argument] instead of silently producing
    an empty (and thus wrong) replay. Only single-pass consumers (the
    online cooperability engine) can analyze it; the two-pass pipeline
    needs {!of_file} or {!of_trace}. Raises [Sys_error] and
    {!Serialize.Parse_error} while streaming. The channel is not
    closed. *)

val format_of_file : string -> Serialize.format
(** Which format a trace file holds, by its magic bytes (reads at most
    8 bytes). Raises [Sys_error]; raises {!Serialize.Parse_error} on a
    file that is a truncated binary header. *)

val replay : t -> Trace.Sink.t -> unit
(** [replay source sink] is [source sink]; the explicit name for call
    sites that re-stream in a later phase. *)

val run : t -> 'r Analysis.t -> 'r
(** One streaming pass: feed every event to the analysis and finalize. *)

val count : t -> int
(** Number of events in one replay. *)

val record : t -> Trace.t
(** Materialize a source into a trace (tests and offline tooling only —
    the streaming pipeline never calls this). *)
