(** Shared wire-format plumbing for the trace codecs.

    Both trace encodings — the line-oriented text format ({!Serialize})
    and the length-prefixed binary format ({!Codec}) — report malformed
    input through the one exception defined here, so every consumer
    (the CLI, the pipeline, tests) can catch trace corruption uniformly
    without caring which decoder hit it. The integer payload is the
    {e position} of the failure: a 1-based line number for the text
    format, an absolute byte offset for the binary one; the message
    always spells out which it is (["... (line 12)"], ["... (byte
    8201)"]), so the position is self-describing even through a bare
    [Printexc] backtrace.

    The varint helpers are the binary format's integer layer: LEB128
    base-128 with the high bit as continuation, and zigzag mapping for
    signed fields (small-magnitude negatives stay small). They work on
    OCaml's native 63-bit [int] and round-trip every value, including
    [min_int]/[max_int]. *)

exception Parse_error of string * int
(** [(message, position)] on malformed trace input. [position] is a line
    number (text format) or a byte offset (binary format); the message
    states which. Re-exported as [Serialize.Parse_error] and
    [Codec.Parse_error]. *)

exception Encode_error of string
(** Raised when a trace cannot be faithfully written in the requested
    format — e.g. a symbol name the text format would silently corrupt.
    The message names the escape hatch (the binary format /
    [coopcheck convert]). *)

val parse_error : string -> int -> 'a
(** [parse_error msg pos] raises {!Parse_error}. *)

(** {1 Varints} *)

val add_uvarint : Buffer.t -> int -> unit
(** Append a non-negative int as LEB128 (7 bits per byte, high bit =
    more). Raises [Invalid_argument] on negatives — those take
    {!add_svarint}. *)

val add_svarint : Buffer.t -> int -> unit
(** Append any int, zigzag-mapped ([0, -1, 1, -2, ...] → [0, 1, 2, 3,
    ...]) then LEB128-encoded, so small negatives cost one byte. *)

val read_uvarint : string -> pos:int ref -> base:int -> int
(** [read_uvarint s ~pos ~base] decodes the LEB128 int at [!pos],
    advancing [pos]. [base] is the absolute stream offset of [s.[0]],
    used only in {!Parse_error} positions. Raises {!Parse_error} on
    overrun or an over-long (> 63-bit) encoding. *)

val read_svarint : string -> pos:int ref -> base:int -> int
(** {!read_uvarint} followed by the inverse zigzag mapping. *)

val unzigzag : int -> int
(** The inverse zigzag mapping on its own, for decoders that inline the
    byte-fetch fast path and only need the final remap. *)

val input_uvarint : in_channel -> offset:int ref -> int
(** Read a LEB128 int straight off a channel, advancing [offset] by the
    bytes consumed. Raises [End_of_file] if the channel ends {e before
    the first byte}, and {!Parse_error} if it ends mid-varint (a
    truncated stream) or the encoding is over-long. *)
