(* Dense-id assignment with array fast paths.

   The forward maps exploit that VM-produced names are themselves small
   and dense: global slots, lock handles, thread ids and array ids all
   count up from 0, and cell indices are bounded by the declared array
   sizes. Each map is a direct-indexed [int array] (-1 = unassigned)
   grown on demand; names too large for a sane direct table (possible
   only in hand-written trace files) fall back to a hash table. *)

let direct_cap = 1 lsl 20

type t = {
  (* forward: name -> dense id *)
  mutable globals : int array;  (* global slot -> id *)
  mutable cells : int array array;  (* array id -> cell index -> id *)
  mutable locks : int array;  (* lock handle -> id *)
  mutable tids : int array;  (* thread id -> id *)
  odd_vars : (Event.var, int) Hashtbl.t;  (* out-of-range fallback *)
  odd_locks : (int, int) Hashtbl.t;
  odd_tids : (int, int) Hashtbl.t;
  (* reverse: dense id -> name *)
  mutable var_names : Event.var array;
  mutable n_vars : int;
  mutable lock_names : int array;
  mutable n_locks : int;
  mutable tid_names : int array;
  mutable n_tids : int;
  (* ids for the last noted event *)
  mutable cur_tid : int;
  mutable cur_operand : int;
}

let no_var = Event.Global min_int

let create () =
  {
    globals = Array.make 16 (-1);
    cells = [||];
    locks = Array.make 8 (-1);
    tids = Array.make 8 (-1);
    odd_vars = Hashtbl.create 4;
    odd_locks = Hashtbl.create 4;
    odd_tids = Hashtbl.create 4;
    var_names = Array.make 16 no_var;
    n_vars = 0;
    lock_names = Array.make 8 (-1);
    n_locks = 0;
    tid_names = Array.make 8 (-1);
    n_tids = 0;
    cur_tid = -1;
    cur_operand = -1;
  }

let grown a n ~fill =
  let bigger = Array.make (max n (2 * Array.length a)) fill in
  Array.blit a 0 bigger 0 (Array.length a);
  bigger

let push_var t v =
  let id = t.n_vars in
  if id = Array.length t.var_names then
    t.var_names <- grown t.var_names (id + 1) ~fill:no_var;
  t.var_names.(id) <- v;
  t.n_vars <- id + 1;
  id

let push_int names n x =
  let names =
    if n = Array.length names then grown names (n + 1) ~fill:(-1) else names
  in
  names.(n) <- x;
  names

let var_id t (v : Event.var) =
  match v with
  | Event.Global g when g >= 0 && g < direct_cap ->
      if g >= Array.length t.globals then
        t.globals <- grown t.globals (g + 1) ~fill:(-1);
      let id = t.globals.(g) in
      if id >= 0 then id
      else begin
        let id = push_var t v in
        t.globals.(g) <- id;
        id
      end
  | Event.Cell (a, i) when a >= 0 && a < 4096 && i >= 0 && i < direct_cap ->
      if a >= Array.length t.cells then begin
        let bigger = Array.make (max (a + 1) (2 * Array.length t.cells)) [||] in
        Array.blit t.cells 0 bigger 0 (Array.length t.cells);
        t.cells <- bigger
      end;
      if i >= Array.length t.cells.(a) then
        t.cells.(a) <-
          (let old = t.cells.(a) in
           grown (if Array.length old = 0 then Array.make 8 (-1) else old)
             (i + 1) ~fill:(-1));
      let id = t.cells.(a).(i) in
      if id >= 0 then id
      else begin
        let id = push_var t v in
        t.cells.(a).(i) <- id;
        id
      end
  | _ -> (
      match Hashtbl.find_opt t.odd_vars v with
      | Some id -> id
      | None ->
          let id = push_var t v in
          Hashtbl.add t.odd_vars v id;
          id)

let lock_id t l =
  if l >= 0 && l < direct_cap then begin
    if l >= Array.length t.locks then t.locks <- grown t.locks (l + 1) ~fill:(-1);
    let id = t.locks.(l) in
    if id >= 0 then id
    else begin
      let id = t.n_locks in
      t.lock_names <- push_int t.lock_names id l;
      t.n_locks <- id + 1;
      t.locks.(l) <- id;
      id
    end
  end
  else begin
    match Hashtbl.find_opt t.odd_locks l with
    | Some id -> id
    | None ->
        let id = t.n_locks in
        t.lock_names <- push_int t.lock_names id l;
        t.n_locks <- id + 1;
        Hashtbl.add t.odd_locks l id;
        id
  end

let find_lock t l =
  if l >= 0 && l < direct_cap then
    if l < Array.length t.locks then t.locks.(l) else -1
  else begin
    match Hashtbl.find_opt t.odd_locks l with Some id -> id | None -> -1
  end

let tid_id t u =
  if u >= 0 && u < direct_cap then begin
    if u >= Array.length t.tids then t.tids <- grown t.tids (u + 1) ~fill:(-1);
    let id = t.tids.(u) in
    if id >= 0 then id
    else begin
      let id = t.n_tids in
      t.tid_names <- push_int t.tid_names id u;
      t.n_tids <- id + 1;
      t.tids.(u) <- id;
      id
    end
  end
  else begin
    match Hashtbl.find_opt t.odd_tids u with
    | Some id -> id
    | None ->
        let id = t.n_tids in
        t.tid_names <- push_int t.tid_names id u;
        t.n_tids <- id + 1;
        Hashtbl.add t.odd_tids u id;
        id
  end

let note t (e : Event.t) =
  t.cur_tid <- tid_id t e.tid;
  t.cur_operand <-
    (match e.op with
    | Event.Read v | Event.Write v -> var_id t v
    | Event.Acquire l | Event.Release l -> lock_id t l
    | Event.Fork u | Event.Join u -> tid_id t u
    | Event.Yield | Event.Enter _ | Event.Exit _ | Event.Atomic_begin
    | Event.Atomic_end | Event.Out _ ->
        -1)

let cur_tid t = t.cur_tid
let cur_operand t = t.cur_operand

let set_cur t ~tid ~operand =
  t.cur_tid <- tid;
  t.cur_operand <- operand

(* Modular ownership: ids route to [id mod shard]. Stability under growth
   is the point — an id assigned after a router snapshotted the interner
   still lands on the same shard, because the map depends only on the id
   itself, never on how many ids exist. *)
let owner _t id ~shard =
  if shard <= 1 then 0
  else if id < 0 then invalid_arg "Interner.owner: negative id"
  else id mod shard

let bind_tid t name ~id =
  if id < 0 then invalid_arg "Interner.bind_tid";
  if id < t.n_tids && t.tid_names.(id) = name then ()
  else begin
    if id >= Array.length t.tid_names then
      t.tid_names <- grown t.tid_names (id + 1) ~fill:(-1);
    t.tid_names.(id) <- name;
    if id >= t.n_tids then t.n_tids <- id + 1;
    if name >= 0 && name < direct_cap then begin
      if name >= Array.length t.tids then
        t.tids <- grown t.tids (name + 1) ~fill:(-1);
      t.tids.(name) <- id
    end
    else Hashtbl.replace t.odd_tids name id
  end

(* Snapshots copy every table, forward and reverse. Ids are assigned in
   first-touch order, so restoring the tables makes a resumed consumer
   assign exactly the ids a full-stream run would have — and truncates
   away any ids a previously-run different suffix may have minted, which
   is what keeps id-indexed checker arrays from reading stale slots. *)
type snapshot = {
  s_globals : int array;
  s_cells : int array array;
  s_locks : int array;
  s_tids : int array;
  s_odd_vars : (Event.var * int) list;
  s_odd_locks : (int * int) list;
  s_odd_tids : (int * int) list;
  s_var_names : Event.var array;
  s_n_vars : int;
  s_lock_names : int array;
  s_n_locks : int;
  s_tid_names : int array;
  s_n_tids : int;
  s_cur_tid : int;
  s_cur_operand : int;
}

let snapshot t =
  let bindings h = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] in
  {
    s_globals = Array.copy t.globals;
    s_cells = Array.map Array.copy t.cells;
    s_locks = Array.copy t.locks;
    s_tids = Array.copy t.tids;
    s_odd_vars = bindings t.odd_vars;
    s_odd_locks = bindings t.odd_locks;
    s_odd_tids = bindings t.odd_tids;
    s_var_names = Array.copy t.var_names;
    s_n_vars = t.n_vars;
    s_lock_names = Array.copy t.lock_names;
    s_n_locks = t.n_locks;
    s_tid_names = Array.copy t.tid_names;
    s_n_tids = t.n_tids;
    s_cur_tid = t.cur_tid;
    s_cur_operand = t.cur_operand;
  }

let restore t s =
  let refill h l =
    Hashtbl.reset h;
    List.iter (fun (k, v) -> Hashtbl.replace h k v) l
  in
  t.globals <- Array.copy s.s_globals;
  t.cells <- Array.map Array.copy s.s_cells;
  t.locks <- Array.copy s.s_locks;
  t.tids <- Array.copy s.s_tids;
  refill t.odd_vars s.s_odd_vars;
  refill t.odd_locks s.s_odd_locks;
  refill t.odd_tids s.s_odd_tids;
  t.var_names <- Array.copy s.s_var_names;
  t.n_vars <- s.s_n_vars;
  t.lock_names <- Array.copy s.s_lock_names;
  t.n_locks <- s.s_n_locks;
  t.tid_names <- Array.copy s.s_tid_names;
  t.n_tids <- s.s_n_tids;
  t.cur_tid <- s.s_cur_tid;
  t.cur_operand <- s.s_cur_operand

let snap_key : snapshot Analysis.Key.t = Analysis.Key.create "interner"

let analysis t =
  Analysis.snapshottable ~key:snap_key
    ~save:(fun () -> snapshot t)
    ~load:(restore t)
    (Analysis.make ~step:(note t) ~finalize:(fun () -> ()))

let var_of_id t id =
  if id < 0 || id >= t.n_vars then invalid_arg "Interner.var_of_id";
  t.var_names.(id)

let lock_of_id t id =
  if id < 0 || id >= t.n_locks then invalid_arg "Interner.lock_of_id";
  t.lock_names.(id)

let tid_of_id t id =
  if id < 0 || id >= t.n_tids then invalid_arg "Interner.tid_of_id";
  t.tid_names.(id)

let n_vars t = t.n_vars
let n_locks t = t.n_locks
let n_tids t = t.n_tids
