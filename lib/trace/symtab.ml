type kind = Func | Lock | Global | Array

(* One int-keyed table per kind; ids are small and dense in practice
   (they come from compiled programs), but a hashtable keeps hand-written
   traces with sparse ids cheap too. *)
type t = {
  funcs : (int, string) Hashtbl.t;
  locks : (int, string) Hashtbl.t;
  globals : (int, string) Hashtbl.t;
  arrays : (int, string) Hashtbl.t;
}

let create () =
  {
    funcs = Hashtbl.create 8;
    locks = Hashtbl.create 8;
    globals = Hashtbl.create 8;
    arrays = Hashtbl.create 8;
  }

let table t = function
  | Func -> t.funcs
  | Lock -> t.locks
  | Global -> t.globals
  | Array -> t.arrays

let set t kind id name =
  if id < 0 then invalid_arg "Symtab.set: negative id";
  Hashtbl.replace (table t kind) id name

let find t kind id = Hashtbl.find_opt (table t kind) id

let is_empty t =
  Hashtbl.length t.funcs = 0
  && Hashtbl.length t.locks = 0
  && Hashtbl.length t.globals = 0
  && Hashtbl.length t.arrays = 0

let kinds = [ Func; Lock; Global; Array ]

let iter t f =
  List.iter
    (fun kind ->
      let tbl = table t kind in
      Hashtbl.fold (fun id name acc -> (id, name) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.iter (fun (id, name) -> f kind id name))
    kinds

let equal a b =
  List.for_all
    (fun kind ->
      let ta = table a kind and tb = table b kind in
      Hashtbl.length ta = Hashtbl.length tb
      && Hashtbl.fold
           (fun id name ok -> ok && Hashtbl.find_opt tb id = Some name)
           ta true)
    kinds

let kind_to_string = function
  | Func -> "func"
  | Lock -> "lock"
  | Global -> "global"
  | Array -> "array"

let kind_of_string = function
  | "func" -> Some Func
  | "lock" -> Some Lock
  | "global" -> Some Global
  | "array" -> Some Array
  | _ -> None
