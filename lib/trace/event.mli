(** Events observed by the dynamic analyses.

    A run of the VM produces a totally ordered sequence of events; the
    cooperability checker, the race detector and the atomicity baseline all
    consume this stream. The vocabulary follows the paper: shared-memory
    accesses, lock operations, thread fork/join, explicit yields, and
    function enter/exit (used to measure yield-free functions and to delimit
    Atomizer transactions). *)

type tid = int
(** Thread identifiers; the initial thread is [0]. *)

type var =
  | Global of int  (** A scalar global, by resolver slot. *)
  | Cell of int * int  (** An array cell: array id and element index. *)

(** One dynamic operation. *)
type op =
  | Read of var  (** Shared read. *)
  | Write of var  (** Shared write. *)
  | Acquire of int  (** Lock acquire, by lock handle. *)
  | Release of int  (** Lock release. *)
  | Fork of tid  (** Creation of the given child thread. *)
  | Join of tid  (** Join on the given thread, after it terminated. *)
  | Yield  (** An explicit (or inferred) cooperative yield point. *)
  | Enter of int  (** Function entry, by function index. *)
  | Exit of int  (** Function exit. *)
  | Atomic_begin  (** Start of an [atomic] block (baseline only). *)
  | Atomic_end  (** End of an [atomic] block. *)
  | Out of int  (** Observable output of a [print] statement. *)

type t = {
  mutable tid : tid;  (** Executing thread. *)
  mutable op : op;  (** The operation. *)
  mutable loc : Loc.t;  (** Where it happened. *)
}
(** Fields are mutable to support scratch-event reuse by producers; see
    {!copy} for the resulting ownership contract. *)

val make : tid:tid -> op:op -> loc:Loc.t -> t
(** Build an event. *)

val copy : t -> t
(** A defensive copy. Scratch-event contract: an event passed to a sink or
    an [Analysis] step is owned by the producer and only valid for the
    duration of the call — the VM reuses one scratch record for every
    event it emits. Consumers that retain the event itself (rather than
    its immutable [op] / [loc] / [tid] field values) must [copy] it;
    recording sinks do this automatically. *)

val compare_var : var -> var -> int
(** Total order on variables. *)

val equal_var : var -> var -> bool
(** Structural equality on variables. *)

val is_access : op -> bool
(** [true] exactly for [Read]/[Write]. *)

val accessed_var : op -> var option
(** The variable touched by a [Read]/[Write], if any. *)

val pp_var : Format.formatter -> var -> unit
(** Renders as ["g4"] or ["a2[17]"]. *)

val pp_op : Format.formatter -> op -> unit
(** Human-readable operation. *)

val pp : Format.formatter -> t -> unit
(** Renders as ["t1 rd(g4) @f0:pc3(line 7)"]. *)

module Var_set : Set.S with type elt = var
(** Sets of variables (e.g. the racy set). *)

module Var_map : Map.S with type key = var
(** Maps keyed by variable. *)
