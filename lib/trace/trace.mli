(** Growable event traces.

    The runner appends events as the VM executes; analyses either consume the
    stream online (through {!Sink}) or iterate over a recorded trace
    offline. *)

type t
(** A recorded trace. *)

val create : unit -> t
(** An empty trace. *)

val add : t -> Event.t -> unit
(** Append one event. Amortized O(1). *)

val length : t -> int
(** Number of recorded events. *)

val get : t -> int -> Event.t
(** [get t i] is the [i]-th event (0-based). Raises [Invalid_argument] when
    out of bounds. *)

val iter : (Event.t -> unit) -> t -> unit
(** Iterate over events in program order. *)

val iteri : (int -> Event.t -> unit) -> t -> unit
(** Like {!iter} with the event index. *)

val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a
(** Left fold in program order. *)

val to_list : t -> Event.t list
(** All events in program order. *)

val of_list : Event.t list -> t
(** Build a trace from a list (used in unit tests). *)

val threads : t -> Event.tid list
(** The distinct thread ids appearing in the trace, ascending. *)

val count : (Event.t -> bool) -> t -> int
(** Number of events matching a predicate. *)

val pp : Format.formatter -> t -> unit
(** One event per line. *)

(** Online consumers of the event stream. *)
module Sink : sig
  type trace = t

  type t = Event.t -> unit
  (** A sink receives each event as it is produced. *)

  val ignore : t
  (** Discards everything (used to measure uninstrumented runs). *)

  val tee : t list -> t
  (** Fans each event out to several sinks in order. [tee [s]] is [s]
      itself and [tee []] is {!ignore} — no per-event closure or list walk
      on the degenerate cases, which sit on the VM's hot path. *)

  val recording : trace -> t
  (** Appends a defensive {!Event.copy} of every event to the given trace
      (producers may reuse one scratch record per emission). *)
end
