(** Display names for the entities a trace mentions.

    Events carry only numbers — function indices, lock handles, global
    slots, array ids — because that is what the analyses index by. The
    names the programmer wrote ([main], [bank.accounts], [grid]) live in
    the compiled program, so a trace file on its own cannot print them
    back. A symbol table carries that mapping alongside the events:
    both serializers can embed one ([Serialize] as [#kind id name]
    pragma lines, [Codec] as length-prefixed name records) and both
    decoders can recover it, making a saved trace self-describing.

    Names are advisory: analyses never consult them, so a trace without
    a table (every file written before this layer existed) analyzes
    identically. The text format constrains which names it can write —
    see {!Serialize.to_string} — while the binary format round-trips
    arbitrary bytes. *)

type kind =
  | Func  (** Function index, as in [Event.Enter]/[Exit] and [Loc.func]. *)
  | Lock  (** Lock handle, as in [Event.Acquire]/[Release]. *)
  | Global  (** Global slot, as in [Event.Global]. *)
  | Array  (** Array id, as in [Event.Cell]. *)

type t

val create : unit -> t
(** An empty table. *)

val set : t -> kind -> int -> string -> unit
(** [set t kind id name] binds [id]'s display name. Negative ids are
    rejected ([Invalid_argument]); re-binding overwrites. *)

val find : t -> kind -> int -> string option
(** The bound name, if any. *)

val is_empty : t -> bool
(** No bindings at all (such a table serializes to nothing). *)

val iter : t -> (kind -> int -> string -> unit) -> unit
(** Visit every binding, kinds in declaration order, ids ascending —
    the canonical serialization order, so equal tables serialize to
    identical bytes. *)

val equal : t -> t -> bool
(** Same bindings. *)

val kind_to_string : kind -> string
(** ["func" | "lock" | "global" | "array"] — the text-format pragma
    keyword. *)

val kind_of_string : string -> kind option
