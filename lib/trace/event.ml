type tid = int

type var =
  | Global of int
  | Cell of int * int

type op =
  | Read of var
  | Write of var
  | Acquire of int
  | Release of int
  | Fork of tid
  | Join of tid
  | Yield
  | Enter of int
  | Exit of int
  | Atomic_begin
  | Atomic_end
  | Out of int

(* Fields are mutable so event producers (the VM) can reuse one scratch
   record per emission instead of allocating per event; see the "scratch
   events" contract in [Event.copy]'s doc. Ordinary construction via
   [make] is unaffected. *)
type t = { mutable tid : tid; mutable op : op; mutable loc : Loc.t }

let make ~tid ~op ~loc = { tid; op; loc }

let copy e = { tid = e.tid; op = e.op; loc = e.loc }

let compare_var a b =
  match (a, b) with
  | Global x, Global y -> Int.compare x y
  | Global _, Cell _ -> -1
  | Cell _, Global _ -> 1
  | Cell (x1, y1), Cell (x2, y2) ->
      let c = Int.compare x1 x2 in
      if c <> 0 then c else Int.compare y1 y2

let equal_var a b = compare_var a b = 0

let is_access = function Read _ | Write _ -> true | _ -> false

let accessed_var = function Read v | Write v -> Some v | _ -> None

let pp_var ppf = function
  | Global g -> Format.fprintf ppf "g%d" g
  | Cell (a, i) -> Format.fprintf ppf "a%d[%d]" a i

let pp_op ppf = function
  | Read v -> Format.fprintf ppf "rd(%a)" pp_var v
  | Write v -> Format.fprintf ppf "wr(%a)" pp_var v
  | Acquire l -> Format.fprintf ppf "acq(l%d)" l
  | Release l -> Format.fprintf ppf "rel(l%d)" l
  | Fork t -> Format.fprintf ppf "fork(t%d)" t
  | Join t -> Format.fprintf ppf "join(t%d)" t
  | Yield -> Format.pp_print_string ppf "yield"
  | Enter f -> Format.fprintf ppf "enter(f%d)" f
  | Exit f -> Format.fprintf ppf "exit(f%d)" f
  | Atomic_begin -> Format.pp_print_string ppf "atomic_begin"
  | Atomic_end -> Format.pp_print_string ppf "atomic_end"
  | Out n -> Format.fprintf ppf "out(%d)" n

let pp ppf t = Format.fprintf ppf "t%d %a @%a" t.tid pp_op t.op Loc.pp t.loc

module Var_ord = struct
  type t = var

  let compare = compare_var
end

module Var_set = Set.Make (Var_ord)
module Var_map = Map.Make (Var_ord)
