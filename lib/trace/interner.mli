(** Per-run interning of event operands to dense integer ids.

    The dynamic analyses key per-variable, per-lock and per-thread state.
    Keying hash tables on the [Event.var] variant (or on raw handles)
    costs a polymorphic hash plus bucket chase per checker per event; a
    fused chain of [k] checkers pays it [k] times. An [Interner] assigns
    each distinct variable, lock and thread a dense id — 0, 1, 2, … in
    first-appearance order — so checkers index flat arrays instead, and
    it does the assignment once per event for the whole chain.

    Usage: the chain builder creates one interner per run, places
    {!analysis} (the "note" stage) at the head of the fused chain, and
    hands the same interner to every checker built with [~interner].
    During a checker's step, {!cur_tid} / {!cur_operand} hold the dense
    ids for the event being dispatched. A checker built without
    [~interner] owns a private interner and notes events itself.

    Ids are only meaningful relative to their interner and only dense
    per run; reverse lookups ({!var_of_id} etc.) recover the original
    names for reports. Common case (VM-produced events) lookups are
    plain array loads; odd inputs (huge handles from hand-written trace
    files) fall back to a hash table. *)

type t

val create : unit -> t
(** A fresh interner with no assignments. *)

(** {2 Streaming annotation} *)

val note : t -> Event.t -> unit
(** Intern the operands of one event: afterwards {!cur_tid} is the dense
    id of [e.tid] and {!cur_operand} the dense id of the operand — the
    variable of a [Read]/[Write], the lock of an [Acquire]/[Release], the
    thread of a [Fork]/[Join] — or [-1] for operand-less operations. *)

val cur_tid : t -> int
(** Dense id of the executing thread of the last noted event. *)

val cur_operand : t -> int
(** Dense id of the operand of the last noted event, [-1] if none. *)

val analysis : t -> unit Analysis.t
(** The note stage: an analysis whose step is [note]. Place it at the
    head of a fused chain so every [~interner] checker downstream reads
    {!cur_tid} / {!cur_operand} instead of re-hashing. Snapshottable:
    its packet is {!snapshot} of the interner, restored with
    {!restore}. *)

(** {2 Checkpointing} *)

type snapshot
(** A deep copy of every assignment table. *)

val snapshot : t -> snapshot
(** Capture the interner. The copy shares no mutable structure with
    [t]; one snapshot may be restored into many interners. *)

val restore : t -> snapshot -> unit
(** Overwrite [t] with the snapshot's assignments. Because ids are
    assigned in first-touch order, a restored interner hands a resumed
    event stream exactly the ids a full-stream run would have — and
    forgets ids minted after the snapshot, so id-indexed consumer state
    restored alongside it can never be read through stale ids. *)

(** {2 Router-fed mode (sharded chains)}

    A sharded analysis interns every event once, on the router's
    interner, and ships the dense ids with each routed message. The
    per-shard checkers still read {!cur_tid} / {!cur_operand}, but from a
    per-shard {e shim} interner that never assigns ids itself: the shard
    driver stores the router's ids into it with {!set_cur} and records
    name bindings verbatim with {!bind_tid}, so reverse lookups
    ({!tid_of_id}) work for every id the shard has been shown. *)

val set_cur : t -> tid:int -> operand:int -> unit
(** Overwrite the current dense ids directly, as {!note} would have.
    The ids must come from the interner that actually assigned them
    (the router's); the shim merely replays them. *)

val owner : t -> int -> shard:int -> int
(** [owner t id ~shard] maps a dense id to its owning shard out of
    [shard] shards: [id mod shard] ([0] when [shard <= 1]). Purely
    modular, so it is stable under interner growth: ids assigned after
    any snapshot still route to the same shard mid-trace — the property
    the sharded router depends on and the test suite pins. Raises
    [Invalid_argument] on a negative id. *)

val bind_tid : t -> int -> id:int -> unit
(** [bind_tid t name ~id] records that dense id [id] denotes thread
    [name], exactly as if this interner had assigned it. Idempotent and
    O(1) when the binding is already present; afterwards {!tid_of_id}
    [id] returns [name]. Used by shard drivers, whose messages carry
    [(name, id)] pairs assigned by the router. *)

(** {2 Direct lookups} *)

val var_id : t -> Event.var -> int
(** Dense id for a variable, assigning one on first sight. *)

val lock_id : t -> int -> int
(** Dense id for a lock handle, assigning one on first sight. *)

val tid_id : t -> int -> int
(** Dense id for a thread id, assigning one on first sight. *)

val find_lock : t -> int -> int
(** Dense id for a lock handle, or [-1] when the lock was never seen —
    never assigns. *)

val var_of_id : t -> int -> Event.var
(** The variable a dense id was assigned to. Raises [Invalid_argument]
    on an id this interner never produced. *)

val lock_of_id : t -> int -> int
(** The lock handle behind a dense id. *)

val tid_of_id : t -> int -> int
(** The thread id behind a dense id. *)

val n_vars : t -> int
(** Number of distinct variables interned so far. *)

val n_locks : t -> int
(** Number of distinct locks interned so far. *)

val n_tids : t -> int
(** Number of distinct threads interned so far. *)
