open Coop_trace

(* Per-variable access metadata. Reads start as an epoch and are promoted to
   a full vector clock when concurrent reads are observed, exactly as in the
   FastTrack paper.

   All internal state is keyed by the dense ids of a per-run [Interner]:
   thread clocks, lock clocks and variable slots live in flat arrays grown
   on demand, vector-clock components are indexed by dense thread id, and
   epochs pack dense tids. Original names resurface only on the cold
   paths — reports and fact callbacks. *)
type read_state =
  | Repoch of Epoch.t
  | Rvc of Vclock.t

type var_state = {
  mutable w : Epoch.t;
  mutable r : read_state;
}

type facts = {
  on_racy_var : Event.var -> int -> unit;
  on_shared_lock : int -> int -> unit;
}

let no_facts = { on_racy_var = (fun _ _ -> ()); on_shared_lock = (fun _ _ -> ()) }

(* Witness side tables, maintained only with [~witness:true]: where (and
   at which global position) the last write and the live reads of a
   variable happened, so a firing race can name its {e first} access.
   [readers] is only consulted in the promoted [Rvc] state. *)
type wside = {
  mutable lw_seq : int;  (* last write: global position, 0 = none *)
  mutable lw_loc : Loc.t;
  mutable lr_seq : int;  (* single live reader (Repoch state) *)
  mutable lr_loc : Loc.t;
  readers : (int, int * Loc.t) Hashtbl.t;  (* dense tid -> seq, loc *)
}

(* Never-mutated sentinels for unoccupied array slots. [dummy_clock] has
   zero capacity, so reading it as the all-zeros clock is sound as long as
   nothing writes through it. *)
let dummy_clock = Vclock.create ()

let dummy_var = { w = Epoch.bottom; r = Repoch Epoch.bottom }

let dummy_wside =
  { lw_seq = 0; lw_loc = Loc.none; lr_seq = 0; lr_loc = Loc.none;
    readers = Hashtbl.create 1 }

type t = {
  itn : Interner.t;
  own_interner : bool;  (* [handle] notes events itself *)
  witness : bool;  (* capture access-pair evidence per report *)
  mutable seq : int;  (* 1-based global position of the current event *)
  mutable ext_seq : bool;  (* seq injected via [set_seq], not counted *)
  mutable clocks : Vclock.t array;  (* dense tid -> thread clock *)
  mutable locks : Vclock.t array;  (* dense lock id -> release clock *)
  mutable vars : var_state array;  (* dense var id -> access metadata *)
  mutable wsides : wside array;  (* dense var id -> witness side table *)
  mutable reports : Report.t list;  (* reversed *)
  facts : facts;
  mutable racy_fired : Bytes.t;  (* dense var id -> fact already fired *)
  (* Lock-ownership scan for the shared-lock fact: the owning dense tid
     while only one thread has touched the lock, [shared_lock] once it is
     shared, [no_owner] before the first touch. Mirrors
     [Cooperability.local_locks_analysis] (acquires AND releases count)
     so the published facts converge to the two-pass predicate. *)
  mutable lock_owner : int array;
}

let no_owner = -1

let shared_lock = -2

let create ?(facts = no_facts) ?interner ?(witness = false) () =
  let own_interner = interner = None in
  let itn = match interner with Some itn -> itn | None -> Interner.create () in
  { itn; own_interner; witness;
    seq = 0; ext_seq = false;
    clocks = Array.make 8 dummy_clock;
    locks = Array.make 8 dummy_clock;
    vars = Array.make 64 dummy_var;
    wsides = (if witness then Array.make 64 dummy_wside else [||]);
    reports = []; facts;
    racy_fired = Bytes.make 64 '\000';
    lock_owner = Array.make 8 no_owner }

let set_seq t s =
  t.ext_seq <- true;
  t.seq <- s

let grown_slots a n ~fill =
  let bigger = Array.make (max n (2 * Array.length a)) fill in
  Array.blit a 0 bigger 0 (Array.length a);
  bigger

(* A thread's clock starts with its own (dense-id) component at 1. *)
let clock_of t tid =
  if tid >= Array.length t.clocks then
    t.clocks <- grown_slots t.clocks (tid + 1) ~fill:dummy_clock;
  let c = t.clocks.(tid) in
  if c != dummy_clock then c
  else begin
    let c = Vclock.create ~capacity:(tid + 1) () in
    Vclock.set c tid 1;
    t.clocks.(tid) <- c;
    c
  end

let var_state t vid =
  if vid >= Array.length t.vars then
    t.vars <- grown_slots t.vars (vid + 1) ~fill:dummy_var;
  let s = t.vars.(vid) in
  if s != dummy_var then s
  else begin
    let s = { w = Epoch.bottom; r = Repoch Epoch.bottom } in
    t.vars.(vid) <- s;
    s
  end

let report t vid r =
  t.reports <- r :: t.reports;
  (* Incremental fact channel: announce a variable the first time any
     race is reported on it. The racy set only ever grows, so one firing
     per variable is enough for downstream consumers. *)
  if vid >= Bytes.length t.racy_fired then begin
    let bigger = Bytes.make (max (vid + 1) (2 * Bytes.length t.racy_fired)) '\000' in
    Bytes.blit t.racy_fired 0 bigger 0 (Bytes.length t.racy_fired);
    t.racy_fired <- bigger
  end;
  if Bytes.get t.racy_fired vid = '\000' then begin
    Bytes.set t.racy_fired vid '\001';
    t.facts.on_racy_var r.Report.var vid
  end

let touch_lock t tid lid l =
  if lid >= Array.length t.lock_owner then
    t.lock_owner <- grown_slots t.lock_owner (lid + 1) ~fill:no_owner;
  let owner = t.lock_owner.(lid) in
  if owner = no_owner then t.lock_owner.(lid) <- tid
  else if owner >= 0 && owner <> tid then begin
    t.lock_owner.(lid) <- shared_lock;
    t.facts.on_shared_lock l lid
  end

(* Dense tid back to the caller's thread id, for reports only. *)
let orig_tid t tid = Interner.tid_of_id t.itn tid

let wside_of t vid =
  if vid >= Array.length t.wsides then
    t.wsides <- grown_slots t.wsides (vid + 1) ~fill:dummy_wside;
  let ws = t.wsides.(vid) in
  if ws != dummy_wside then ws
  else begin
    let ws =
      { lw_seq = 0; lw_loc = Loc.none; lr_seq = 0; lr_loc = Loc.none;
        readers = Hashtbl.create 4 }
    in
    t.wsides.(vid) <- ws;
    ws
  end

(* Evidence that the access recorded in [first] (first thread [ftid] at
   its local clock [first_clock]) does not happen-before the current
   event: the current thread's clock [c] carries only [second_sees] of
   that thread, strictly less. Trace order rules out the other
   direction, so the pair is concurrent — machine-checkable against the
   HB oracle via the recorded global positions. *)
let race_witness t c (e : Event.t) ~ftid ~first_seq ~first_loc ~first_clock =
  Some
    (Coop_provenance.Witness.Race
       {
         r_first =
           { a_tid = orig_tid t ftid; a_seq = first_seq; a_loc = first_loc };
         r_second = { a_tid = e.tid; a_seq = t.seq; a_loc = e.loc };
         r_first_clock = first_clock;
         r_second_sees = Vclock.get c ftid;
       })

let write_witness t vid c e =
  if not t.witness then None
  else
    let ws = wside_of t vid in
    let s = t.vars.(vid) in
    race_witness t c e ~ftid:(Epoch.tid s.w) ~first_seq:ws.lw_seq
      ~first_loc:ws.lw_loc ~first_clock:(Epoch.clock s.w)

let read_epoch_witness t vid c e e0 =
  if not t.witness then None
  else
    let ws = wside_of t vid in
    race_witness t c e ~ftid:(Epoch.tid e0) ~first_seq:ws.lr_seq
      ~first_loc:ws.lr_loc ~first_clock:(Epoch.clock e0)

let read_vc_witness t vid c e offender =
  if not t.witness then None
  else
    match offender with
    | None -> None
    | Some (u, n) -> (
        match Hashtbl.find_opt (wside_of t vid).readers u with
        | None -> None
        | Some (seq, loc) ->
            race_witness t c e ~ftid:u ~first_seq:seq ~first_loc:loc
              ~first_clock:n)

let on_read t tid vid v (e : Event.t) =
  let c = clock_of t tid in
  let s = var_state t vid in
  let mine = Epoch.of_thread tid c in
  let same_epoch =
    match s.r with Repoch e -> Epoch.equal e mine | Rvc _ -> false
  in
  if same_epoch then []
  else begin
    let races =
      if Epoch.leq s.w c then []
      else
        [ { Report.var = v; kind = Report.Write_read;
            first_tid = orig_tid t (Epoch.tid s.w); second_tid = e.tid;
            second_loc = e.loc; witness = write_witness t vid c e } ]
    in
    (match s.r with
    | Repoch e0 ->
        if Epoch.leq e0 c then begin
          s.r <- Repoch mine;
          if t.witness then begin
            let ws = wside_of t vid in
            ws.lr_seq <- t.seq;
            ws.lr_loc <- e.loc
          end
        end
        else begin
          (* Concurrent reads: promote to a read vector. *)
          let rc = Vclock.create ~capacity:(max tid (Epoch.tid e0) + 1) () in
          Vclock.set rc (Epoch.tid e0) (Epoch.clock e0);
          Vclock.set rc tid (Vclock.get c tid);
          s.r <- Rvc rc;
          if t.witness then begin
            (* The displaced single reader moves into the per-reader
               table alongside the new one. *)
            let ws = wside_of t vid in
            Hashtbl.replace ws.readers (Epoch.tid e0) (ws.lr_seq, ws.lr_loc);
            Hashtbl.replace ws.readers tid (t.seq, e.loc)
          end
        end
    | Rvc rc ->
        Vclock.set rc tid (Vclock.get c tid);
        if t.witness then
          Hashtbl.replace (wside_of t vid).readers tid (t.seq, e.loc));
    List.iter (report t vid) races;
    races
  end

let on_write t tid vid v (e : Event.t) =
  let c = clock_of t tid in
  let s = var_state t vid in
  let mine = Epoch.of_thread tid c in
  if Epoch.equal s.w mine then []
  else begin
    let races = ref [] in
    if not (Epoch.leq s.w c) then
      races :=
        { Report.var = v; kind = Report.Write_write;
          first_tid = orig_tid t (Epoch.tid s.w); second_tid = e.tid;
          second_loc = e.loc; witness = write_witness t vid c e }
        :: !races;
    (match s.r with
    | Repoch e0 ->
        if not (Epoch.leq e0 c) then
          races :=
            { Report.var = v; kind = Report.Read_write;
              first_tid = orig_tid t (Epoch.tid e0); second_tid = e.tid;
              second_loc = e.loc; witness = read_epoch_witness t vid c e e0 }
            :: !races
    | Rvc rc ->
        if not (Vclock.leq rc c) then begin
          (* Find one concurrent reader for the report. *)
          let offender =
            List.find_opt (fun (u, n) -> n > Vclock.get c u) (Vclock.to_list rc)
          in
          let first_tid =
            match offender with Some (u, _) -> orig_tid t u | None -> -1
          in
          races :=
            { Report.var = v; kind = Report.Read_write; first_tid;
              second_tid = e.tid; second_loc = e.loc;
              witness = read_vc_witness t vid c e offender }
            :: !races
        end);
    s.w <- mine;
    s.r <- Repoch Epoch.bottom;
    if t.witness then begin
      let ws = wside_of t vid in
      ws.lw_seq <- t.seq;
      ws.lw_loc <- e.loc;
      ws.lr_seq <- 0;
      ws.lr_loc <- Loc.none;
      Hashtbl.reset ws.readers
    end;
    let races = List.rev !races in
    List.iter (report t vid) races;
    races
  end

let lock_slot t lid =
  if lid >= Array.length t.locks then
    t.locks <- grown_slots t.locks (lid + 1) ~fill:dummy_clock;
  t.locks.(lid)

let on_acquire t tid lid l =
  touch_lock t tid lid l;
  let lc = lock_slot t lid in
  if lc != dummy_clock then Vclock.join_into ~into:(clock_of t tid) lc
  else ignore (clock_of t tid);
  []

let on_release t tid lid l =
  touch_lock t tid lid l;
  let c = clock_of t tid in
  let lc = lock_slot t lid in
  if lc == dummy_clock then t.locks.(lid) <- Vclock.copy c
  else Vclock.copy_into ~into:lc c;
  Vclock.tick_in_place c tid;
  []

let on_fork t tid child =
  let c = clock_of t tid in
  let cc = clock_of t child in
  Vclock.join_into ~into:cc c;
  Vclock.tick_in_place c tid;
  []

let on_join t tid child =
  let c = clock_of t tid in
  let cc = clock_of t child in
  Vclock.join_into ~into:c cc;
  Vclock.tick_in_place cc child;
  []

let handle t (e : Event.t) =
  if not t.ext_seq then t.seq <- t.seq + 1;
  if t.own_interner then Interner.note t.itn e;
  let tid = Interner.cur_tid t.itn in
  let x = Interner.cur_operand t.itn in
  match e.op with
  | Event.Read v -> on_read t tid x v e
  | Event.Write v -> on_write t tid x v e
  | Event.Acquire l -> on_acquire t tid x l
  | Event.Release l -> on_release t tid x l
  | Event.Fork _ -> on_fork t tid x
  | Event.Join _ -> on_join t tid x
  | Event.Yield | Event.Enter _ | Event.Exit _ | Event.Atomic_begin
  | Event.Atomic_end | Event.Out _ ->
      []

let races t = List.rev t.reports

let racy_vars t = Report.racy_vars t.reports

let sink t : Trace.Sink.t = fun e -> ignore (handle t e)

(* Checkpointing. A snapshot deep-copies every mutable table — flat
   Vclock arrays, per-variable epoch records, witness side tables — and
   includes the interner so a standalone (own-interner) detector restores
   its id assignments too. The unoccupied-slot sentinels are module
   values, so physical-equality probes keep working across copies. *)
type snapshot = {
  s_itn : Interner.snapshot;
  s_witness : bool;
  s_seq : int;
  s_ext_seq : bool;
  s_clocks : Vclock.t array;
  s_locks : Vclock.t array;
  s_vars : var_state array;
  s_wsides : wside array;
  s_reports : Report.t list;
  s_racy_fired : Bytes.t;
  s_lock_owner : int array;
}

let copy_clock c = if c == dummy_clock then c else Vclock.copy c

let copy_var s =
  if s == dummy_var then s
  else
    { w = s.w; r = (match s.r with Repoch e -> Repoch e | Rvc vc -> Rvc (Vclock.copy vc)) }

let copy_wside ws =
  if ws == dummy_wside then ws
  else
    { lw_seq = ws.lw_seq; lw_loc = ws.lw_loc; lr_seq = ws.lr_seq;
      lr_loc = ws.lr_loc; readers = Hashtbl.copy ws.readers }

let snapshot t =
  {
    s_itn = Interner.snapshot t.itn;
    s_witness = t.witness;
    s_seq = t.seq;
    s_ext_seq = t.ext_seq;
    s_clocks = Array.map copy_clock t.clocks;
    s_locks = Array.map copy_clock t.locks;
    s_vars = Array.map copy_var t.vars;
    s_wsides = Array.map copy_wside t.wsides;
    s_reports = t.reports;
    s_racy_fired = Bytes.copy t.racy_fired;
    s_lock_owner = Array.copy t.lock_owner;
  }

let restore t s =
  if t.witness <> s.s_witness then
    invalid_arg "Fasttrack.restore: witness mode mismatch";
  Interner.restore t.itn s.s_itn;
  t.seq <- s.s_seq;
  t.ext_seq <- s.s_ext_seq;
  (* Copy again on restore: the snapshot stays loadable into further
     instances after this one mutates. *)
  t.clocks <- Array.map copy_clock s.s_clocks;
  t.locks <- Array.map copy_clock s.s_locks;
  t.vars <- Array.map copy_var s.s_vars;
  t.wsides <- Array.map copy_wside s.s_wsides;
  t.reports <- s.s_reports;
  t.racy_fired <- Bytes.copy s.s_racy_fired;
  t.lock_owner <- Array.copy s.s_lock_owner

let snap_key : snapshot Analysis.Key.t = Analysis.Key.create "fasttrack"

let analysis ?facts ?interner ?witness () =
  let t = create ?facts ?interner ?witness () in
  Analysis.snapshottable ~key:snap_key
    ~save:(fun () -> snapshot t)
    ~load:(restore t)
    (Analysis.make ~step:(sink t) ~finalize:(fun () -> races t))

let run trace = Analysis.run (analysis ()) trace

let racy_vars_of_trace trace =
  Report.racy_vars (Analysis.run (analysis ()) trace)
