open Coop_trace

(* Per-variable access metadata. Reads start as an epoch and are promoted to
   a full vector clock when concurrent reads are observed, exactly as in the
   FastTrack paper.

   All internal state is keyed by the dense ids of a per-run [Interner]:
   thread clocks, lock clocks and variable slots live in flat arrays grown
   on demand, vector-clock components are indexed by dense thread id, and
   epochs pack dense tids. Original names resurface only on the cold
   paths — reports and fact callbacks. *)
type read_state =
  | Repoch of Epoch.t
  | Rvc of Vclock.t

type var_state = {
  mutable w : Epoch.t;
  mutable r : read_state;
}

type facts = {
  on_racy_var : Event.var -> int -> unit;
  on_shared_lock : int -> int -> unit;
}

let no_facts = { on_racy_var = (fun _ _ -> ()); on_shared_lock = (fun _ _ -> ()) }

(* Never-mutated sentinels for unoccupied array slots. [dummy_clock] has
   zero capacity, so reading it as the all-zeros clock is sound as long as
   nothing writes through it. *)
let dummy_clock = Vclock.create ()

let dummy_var = { w = Epoch.bottom; r = Repoch Epoch.bottom }

type t = {
  itn : Interner.t;
  own_interner : bool;  (* [handle] notes events itself *)
  mutable clocks : Vclock.t array;  (* dense tid -> thread clock *)
  mutable locks : Vclock.t array;  (* dense lock id -> release clock *)
  mutable vars : var_state array;  (* dense var id -> access metadata *)
  mutable reports : Report.t list;  (* reversed *)
  facts : facts;
  mutable racy_fired : Bytes.t;  (* dense var id -> fact already fired *)
  (* Lock-ownership scan for the shared-lock fact: the owning dense tid
     while only one thread has touched the lock, [shared_lock] once it is
     shared, [no_owner] before the first touch. Mirrors
     [Cooperability.local_locks_analysis] (acquires AND releases count)
     so the published facts converge to the two-pass predicate. *)
  mutable lock_owner : int array;
}

let no_owner = -1

let shared_lock = -2

let create ?(facts = no_facts) ?interner () =
  let own_interner = interner = None in
  let itn = match interner with Some itn -> itn | None -> Interner.create () in
  { itn; own_interner;
    clocks = Array.make 8 dummy_clock;
    locks = Array.make 8 dummy_clock;
    vars = Array.make 64 dummy_var;
    reports = []; facts;
    racy_fired = Bytes.make 64 '\000';
    lock_owner = Array.make 8 no_owner }

let grown_slots a n ~fill =
  let bigger = Array.make (max n (2 * Array.length a)) fill in
  Array.blit a 0 bigger 0 (Array.length a);
  bigger

(* A thread's clock starts with its own (dense-id) component at 1. *)
let clock_of t tid =
  if tid >= Array.length t.clocks then
    t.clocks <- grown_slots t.clocks (tid + 1) ~fill:dummy_clock;
  let c = t.clocks.(tid) in
  if c != dummy_clock then c
  else begin
    let c = Vclock.create ~capacity:(tid + 1) () in
    Vclock.set c tid 1;
    t.clocks.(tid) <- c;
    c
  end

let var_state t vid =
  if vid >= Array.length t.vars then
    t.vars <- grown_slots t.vars (vid + 1) ~fill:dummy_var;
  let s = t.vars.(vid) in
  if s != dummy_var then s
  else begin
    let s = { w = Epoch.bottom; r = Repoch Epoch.bottom } in
    t.vars.(vid) <- s;
    s
  end

let report t vid r =
  t.reports <- r :: t.reports;
  (* Incremental fact channel: announce a variable the first time any
     race is reported on it. The racy set only ever grows, so one firing
     per variable is enough for downstream consumers. *)
  if vid >= Bytes.length t.racy_fired then begin
    let bigger = Bytes.make (max (vid + 1) (2 * Bytes.length t.racy_fired)) '\000' in
    Bytes.blit t.racy_fired 0 bigger 0 (Bytes.length t.racy_fired);
    t.racy_fired <- bigger
  end;
  if Bytes.get t.racy_fired vid = '\000' then begin
    Bytes.set t.racy_fired vid '\001';
    t.facts.on_racy_var r.Report.var vid
  end

let touch_lock t tid lid l =
  if lid >= Array.length t.lock_owner then
    t.lock_owner <- grown_slots t.lock_owner (lid + 1) ~fill:no_owner;
  let owner = t.lock_owner.(lid) in
  if owner = no_owner then t.lock_owner.(lid) <- tid
  else if owner >= 0 && owner <> tid then begin
    t.lock_owner.(lid) <- shared_lock;
    t.facts.on_shared_lock l lid
  end

(* Dense tid back to the caller's thread id, for reports only. *)
let orig_tid t tid = Interner.tid_of_id t.itn tid

let on_read t tid vid v (e : Event.t) =
  let c = clock_of t tid in
  let s = var_state t vid in
  let mine = Epoch.of_thread tid c in
  let same_epoch =
    match s.r with Repoch e -> Epoch.equal e mine | Rvc _ -> false
  in
  if same_epoch then []
  else begin
    let races =
      if Epoch.leq s.w c then []
      else
        [ { Report.var = v; kind = Report.Write_read;
            first_tid = orig_tid t (Epoch.tid s.w); second_tid = e.tid;
            second_loc = e.loc } ]
    in
    (match s.r with
    | Repoch e0 ->
        if Epoch.leq e0 c then s.r <- Repoch mine
        else begin
          (* Concurrent reads: promote to a read vector. *)
          let rc = Vclock.create ~capacity:(max tid (Epoch.tid e0) + 1) () in
          Vclock.set rc (Epoch.tid e0) (Epoch.clock e0);
          Vclock.set rc tid (Vclock.get c tid);
          s.r <- Rvc rc
        end
    | Rvc rc -> Vclock.set rc tid (Vclock.get c tid));
    List.iter (report t vid) races;
    races
  end

let on_write t tid vid v (e : Event.t) =
  let c = clock_of t tid in
  let s = var_state t vid in
  let mine = Epoch.of_thread tid c in
  if Epoch.equal s.w mine then []
  else begin
    let races = ref [] in
    if not (Epoch.leq s.w c) then
      races :=
        { Report.var = v; kind = Report.Write_write;
          first_tid = orig_tid t (Epoch.tid s.w); second_tid = e.tid;
          second_loc = e.loc }
        :: !races;
    (match s.r with
    | Repoch e0 ->
        if not (Epoch.leq e0 c) then
          races :=
            { Report.var = v; kind = Report.Read_write;
              first_tid = orig_tid t (Epoch.tid e0); second_tid = e.tid;
              second_loc = e.loc }
            :: !races
    | Rvc rc ->
        if not (Vclock.leq rc c) then begin
          (* Find one concurrent reader for the report. *)
          let offender =
            List.find_opt (fun (u, n) -> n > Vclock.get c u) (Vclock.to_list rc)
          in
          let first_tid =
            match offender with Some (u, _) -> orig_tid t u | None -> -1
          in
          races :=
            { Report.var = v; kind = Report.Read_write; first_tid;
              second_tid = e.tid; second_loc = e.loc }
            :: !races
        end);
    s.w <- mine;
    s.r <- Repoch Epoch.bottom;
    let races = List.rev !races in
    List.iter (report t vid) races;
    races
  end

let lock_slot t lid =
  if lid >= Array.length t.locks then
    t.locks <- grown_slots t.locks (lid + 1) ~fill:dummy_clock;
  t.locks.(lid)

let on_acquire t tid lid l =
  touch_lock t tid lid l;
  let lc = lock_slot t lid in
  if lc != dummy_clock then Vclock.join_into ~into:(clock_of t tid) lc
  else ignore (clock_of t tid);
  []

let on_release t tid lid l =
  touch_lock t tid lid l;
  let c = clock_of t tid in
  let lc = lock_slot t lid in
  if lc == dummy_clock then t.locks.(lid) <- Vclock.copy c
  else Vclock.copy_into ~into:lc c;
  Vclock.tick_in_place c tid;
  []

let on_fork t tid child =
  let c = clock_of t tid in
  let cc = clock_of t child in
  Vclock.join_into ~into:cc c;
  Vclock.tick_in_place c tid;
  []

let on_join t tid child =
  let c = clock_of t tid in
  let cc = clock_of t child in
  Vclock.join_into ~into:c cc;
  Vclock.tick_in_place cc child;
  []

let handle t (e : Event.t) =
  if t.own_interner then Interner.note t.itn e;
  let tid = Interner.cur_tid t.itn in
  let x = Interner.cur_operand t.itn in
  match e.op with
  | Event.Read v -> on_read t tid x v e
  | Event.Write v -> on_write t tid x v e
  | Event.Acquire l -> on_acquire t tid x l
  | Event.Release l -> on_release t tid x l
  | Event.Fork _ -> on_fork t tid x
  | Event.Join _ -> on_join t tid x
  | Event.Yield | Event.Enter _ | Event.Exit _ | Event.Atomic_begin
  | Event.Atomic_end | Event.Out _ ->
      []

let races t = List.rev t.reports

let racy_vars t = Report.racy_vars t.reports

let sink t : Trace.Sink.t = fun e -> ignore (handle t e)

let analysis ?facts ?interner () =
  let t = create ?facts ?interner () in
  Analysis.make ~step:(sink t) ~finalize:(fun () -> races t)

let run trace = Analysis.run (analysis ()) trace

let racy_vars_of_trace trace =
  Report.racy_vars (Analysis.run (analysis ()) trace)
