open Coop_trace

(* Per-variable access metadata. Reads start as an epoch and are promoted to
   a full vector clock when concurrent reads are observed, exactly as in the
   FastTrack paper. *)
type read_state =
  | Repoch of Epoch.t
  | Rvc of Vclock.t

type var_state = {
  mutable w : Epoch.t;
  mutable r : read_state;
}

type facts = {
  on_racy_var : Event.var -> unit;
  on_shared_lock : int -> unit;
}

let no_facts = { on_racy_var = ignore; on_shared_lock = ignore }

type t = {
  mutable clocks : Vclock.t array;  (* indexed by tid, grown on demand *)
  locks : (int, Vclock.t) Hashtbl.t;
  vars : (Event.var, var_state) Hashtbl.t;
  mutable reports : Report.t list;  (* reversed *)
  facts : facts;
  racy_fired : (Event.var, unit) Hashtbl.t;
  (* Lock-ownership scan for the shared-lock fact: [Some tid] while only
     one thread has touched the lock, [None] once it is shared. Mirrors
     [Cooperability.local_locks_analysis] (acquires AND releases count)
     so the published facts converge to the two-pass predicate. *)
  lock_owner : (int, int option) Hashtbl.t;
}

let create ?(facts = no_facts) () =
  { clocks = Array.make 8 Vclock.empty; locks = Hashtbl.create 16;
    vars = Hashtbl.create 64; reports = []; facts;
    racy_fired = Hashtbl.create 16; lock_owner = Hashtbl.create 8 }

let ensure_tid t tid =
  let n = Array.length t.clocks in
  if tid >= n then begin
    let bigger = Array.make (max (tid + 1) (2 * n)) Vclock.empty in
    Array.blit t.clocks 0 bigger 0 n;
    t.clocks <- bigger
  end;
  (* A thread's clock starts with its own component at 1. *)
  if Vclock.get t.clocks.(tid) tid = 0 then
    t.clocks.(tid) <- Vclock.set t.clocks.(tid) tid 1

let clock_of t tid =
  ensure_tid t tid;
  t.clocks.(tid)

let var_state t v =
  match Hashtbl.find_opt t.vars v with
  | Some s -> s
  | None ->
      let s = { w = Epoch.bottom; r = Repoch Epoch.bottom } in
      Hashtbl.add t.vars v s;
      s

let lock_clock t l =
  match Hashtbl.find_opt t.locks l with Some c -> c | None -> Vclock.empty

let report t r =
  t.reports <- r :: t.reports;
  (* Incremental fact channel: announce a variable the first time any
     race is reported on it. The racy set only ever grows, so one firing
     per variable is enough for downstream consumers. *)
  let v = r.Report.var in
  if not (Hashtbl.mem t.racy_fired v) then begin
    Hashtbl.add t.racy_fired v ();
    t.facts.on_racy_var v
  end

let touch_lock t tid l =
  match Hashtbl.find_opt t.lock_owner l with
  | None -> Hashtbl.add t.lock_owner l (Some tid)
  | Some (Some owner) when owner <> tid ->
      Hashtbl.replace t.lock_owner l None;
      t.facts.on_shared_lock l
  | Some _ -> ()

let read_leq rs c =
  match rs with Repoch e -> Epoch.leq e c | Rvc rc -> Vclock.leq rc c

let on_read t tid loc v =
  let c = clock_of t tid in
  let s = var_state t v in
  let mine = Epoch.of_thread tid c in
  let same_epoch =
    match s.r with Repoch e -> Epoch.equal e mine | Rvc _ -> false
  in
  if same_epoch then []
  else begin
    let races =
      if Epoch.leq s.w c then []
      else
        [ { Report.var = v; kind = Report.Write_read;
            first_tid = Epoch.tid s.w; second_tid = tid; second_loc = loc } ]
    in
    (match s.r with
    | Repoch e ->
        if Epoch.leq e c then s.r <- Repoch mine
        else begin
          (* Concurrent reads: promote to a read vector. *)
          let rc = Vclock.set Vclock.empty (Epoch.tid e) (Epoch.clock e) in
          s.r <- Rvc (Vclock.set rc tid (Vclock.get c tid))
        end
    | Rvc rc -> s.r <- Rvc (Vclock.set rc tid (Vclock.get c tid)));
    List.iter (report t) races;
    races
  end

let on_write t tid loc v =
  let c = clock_of t tid in
  let s = var_state t v in
  let mine = Epoch.of_thread tid c in
  if Epoch.equal s.w mine then []
  else begin
    let races = ref [] in
    if not (Epoch.leq s.w c) then
      races :=
        { Report.var = v; kind = Report.Write_write;
          first_tid = Epoch.tid s.w; second_tid = tid; second_loc = loc }
        :: !races;
    (match s.r with
    | Repoch e ->
        if not (Epoch.leq e c) then
          races :=
            { Report.var = v; kind = Report.Read_write;
              first_tid = Epoch.tid e; second_tid = tid; second_loc = loc }
            :: !races
    | Rvc rc ->
        if not (Vclock.leq rc c) then begin
          (* Find one concurrent reader for the report. *)
          let offender =
            List.find_opt (fun (u, n) -> n > Vclock.get c u) (Vclock.to_list rc)
          in
          let first_tid = match offender with Some (u, _) -> u | None -> -1 in
          races :=
            { Report.var = v; kind = Report.Read_write; first_tid;
              second_tid = tid; second_loc = loc }
            :: !races
        end);
    s.w <- mine;
    s.r <- Repoch Epoch.bottom;
    let races = List.rev !races in
    List.iter (report t) races;
    races
  end

let on_acquire t tid l =
  ensure_tid t tid;
  touch_lock t tid l;
  t.clocks.(tid) <- Vclock.join t.clocks.(tid) (lock_clock t l);
  []

let on_release t tid l =
  ensure_tid t tid;
  touch_lock t tid l;
  Hashtbl.replace t.locks l t.clocks.(tid);
  t.clocks.(tid) <- Vclock.tick t.clocks.(tid) tid;
  []

let on_fork t tid child =
  ensure_tid t tid;
  ensure_tid t child;
  t.clocks.(child) <- Vclock.join t.clocks.(child) t.clocks.(tid);
  t.clocks.(tid) <- Vclock.tick t.clocks.(tid) tid;
  []

let on_join t tid child =
  ensure_tid t tid;
  ensure_tid t child;
  t.clocks.(tid) <- Vclock.join t.clocks.(tid) t.clocks.(child);
  t.clocks.(child) <- Vclock.tick t.clocks.(child) child;
  []

let handle t (e : Event.t) =
  match e.op with
  | Event.Read v -> on_read t e.tid e.loc v
  | Event.Write v -> on_write t e.tid e.loc v
  | Event.Acquire l -> on_acquire t e.tid l
  | Event.Release l -> on_release t e.tid l
  | Event.Fork u -> on_fork t e.tid u
  | Event.Join u -> on_join t e.tid u
  | Event.Yield | Event.Enter _ | Event.Exit _ | Event.Atomic_begin
  | Event.Atomic_end | Event.Out _ ->
      []

let races t = List.rev t.reports

let racy_vars t = Report.racy_vars t.reports

let sink t : Trace.Sink.t = fun e -> ignore (handle t e)

let analysis ?facts () =
  let t = create ?facts () in
  Analysis.make ~step:(sink t) ~finalize:(fun () -> races t)

let run trace = Analysis.run (analysis ()) trace

let racy_vars_of_trace trace =
  Report.racy_vars (Analysis.run (analysis ()) trace)

(* Silence an unused-value warning for the exported helper. *)
let _ = read_leq
