(** A naive O(n²) happens-before race detector.

    Used exclusively as a test oracle for {!Fasttrack}: it computes a full
    vector clock for every event and compares all conflicting access pairs
    directly. Property tests check that both detectors agree on the set of
    racy variables for arbitrary feasible traces. *)

open Coop_trace

val event_clocks : Trace.t -> Vclock.Persistent.t array
(** [event_clocks tr] is the vector clock of each event's thread at the
    moment the event executed (same synchronization model as FastTrack:
    locks, fork, join). Clocks use the persistent reference
    implementation — snapshots are shared, and the oracle exercises the
    code path the flat representation is differentially tested against.
    Components are keyed by original thread ids. *)

val happens_before : Trace.t -> int -> int -> bool
(** [happens_before tr i j] for [i < j] decides whether event [i]
    happens-before event [j] (program order and synchronization order,
    transitively). *)

val racy_vars : Trace.t -> Event.Var_set.t
(** Variables with at least one pair of concurrent conflicting accesses. *)

val race_pairs : Trace.t -> (int * int) list
(** All index pairs [(i, j)], [i < j], of concurrent conflicting accesses to
    the same variable. Quadratic; use on small traces only. *)
