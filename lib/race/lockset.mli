(** Eraser-style lockset race detection.

    The classic alternative substrate to happens-before detection: every
    shared variable must be consistently protected by at least one lock.
    Locksets are coarser than happens-before — fork/join and other
    non-lock ordering look like races — so this detector over-approximates
    the racy set. It exists here as the ablation baseline for the question
    "how much does the cooperability checker's precision depend on the race
    detector underneath?" (see the ablation benches).

    The per-variable state machine follows the Eraser paper — [Virgin],
    [Exclusive], [Shared], [Shared_modified] — with two deliberate
    strengthenings over the textbook algorithm: the candidate lockset is
    refined during the [Exclusive] phase too (so the first thread's
    unprotected accesses are not forgotten when the variable becomes
    shared), and a shared variable that was ever written warns even when
    the later accesses are reads. Both close unsoundness holes of the
    original initialization optimization; with them the lockset racy set is
    a strict superset of FastTrack's on feasible traces, which is
    property-tested. *)

open Coop_trace

(** The Eraser state of one variable. *)
type var_state =
  | Virgin  (** Never accessed. *)
  | Exclusive of int  (** Accessed by a single thread so far. *)
  | Shared  (** Read by several threads; candidate set tracked lazily. *)
  | Shared_modified  (** Written by several threads; set must stay non-empty. *)

type t
(** Mutable detector state. *)

val create : ?interner:Interner.t -> ?witness:bool -> unit -> t
(** Fresh detector. Per-thread and per-variable state lives in flat
    arrays indexed by an {!Interner}'s dense ids; with [~interner] the
    detector shares a chain's interner and assumes events are noted
    upstream ({!Interner.analysis}), without it it notes events itself.
    With [~witness:true] (default [false]) every warning carries a
    {!Coop_provenance.Witness.Locks}: the candidate set before the fatal
    access and the lock set held at it — the two divergent sets whose
    intersection emptied the candidates. *)

val handle : t -> Event.t -> Report.t list
(** Advance by one event; returns the races this event exposes (at most one
    per variable — Eraser warns once per variable). Each call advances
    the global position counter used by witness evidence, unless
    {!set_seq} took over. *)

val set_seq : t -> int -> unit
(** Override the global position of the next {!handle} call (and disable
    the internal counter), as in {!Fasttrack.set_seq}: the sharded
    router injects true global positions so per-shard witnesses match
    the sequential detector's. *)

val state_of : t -> Event.var -> var_state
(** Current state-machine state of a variable ([Virgin] if never seen). *)

val candidate_locks : t -> Event.var -> int list option
(** The candidate lockset of a variable, ascending; [None] before the
    variable leaves [Virgin]/[Exclusive]. *)

val racy_vars : t -> Event.Var_set.t
(** Variables warned about so far. *)

type snapshot
(** A deep copy of the detector — held sets, per-variable Eraser
    records, warnings and the interner. *)

val snapshot : t -> snapshot
(** Capture the detector between two events; shares no mutable
    structure with [t]. *)

val restore : t -> snapshot -> unit
(** Overwrite [t] (including its interner) with the snapshot, copying
    again so the snapshot stays reusable. Resumed output equals the
    full-stream run's (property-tested). *)

val analysis :
  ?interner:Interner.t -> ?witness:bool -> unit -> Report.t list Analysis.t
(** A fresh detector as a single-pass online analysis. [interner] and
    [witness] as in {!create}. Snapshottable via {!Analysis.snapshot} /
    {!Analysis.resume}. *)

val run : Trace.t -> Report.t list
(** Run a fresh detector over a recorded trace (offline wrapper over
    {!analysis}). *)

val racy_vars_of_trace : Trace.t -> Event.Var_set.t
(** Convenience wrapper over {!run}. *)
