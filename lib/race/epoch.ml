type t = int
(* Packed representation: bottom is 0; otherwise (clock lsl 20) lor (tid+1).
   20 bits of thread id is far beyond anything the VM creates. *)

let tid_bits = 20

let tid_mask = (1 lsl tid_bits) - 1

let max_clock = max_int lsr tid_bits

let bottom = 0

let make ~tid ~clock =
  if tid < 0 || tid > tid_mask - 1 then invalid_arg "Epoch.make: tid out of range";
  (* [clock lsl tid_bits] silently wraps into the sign bit once [clock]
     exceeds the bits left above the tid field; packed epochs would then
     compare nonsensically, so refuse loudly instead. *)
  if clock < 0 || clock > max_clock then
    invalid_arg "Epoch.make: clock out of range";
  (clock lsl tid_bits) lor (tid + 1)

let is_bottom e = e = 0

let tid e =
  if is_bottom e then invalid_arg "Epoch.tid: bottom";
  (e land tid_mask) - 1

let clock e =
  if is_bottom e then invalid_arg "Epoch.clock: bottom";
  e lsr tid_bits

let of_thread t c = make ~tid:t ~clock:(Vclock.get c t)

let leq e c = if is_bottom e then true else clock e <= Vclock.get c (tid e)

let equal = Int.equal

let pp ppf e =
  if is_bottom e then Format.pp_print_string ppf "_|_"
  else Format.fprintf ppf "%d@%d" (clock e) (tid e)
