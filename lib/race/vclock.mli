(** Vector clocks.

    A vector clock maps thread ids to logical times. The primary
    representation is a mutable flat [int array] indexed by (dense) thread
    id with implicit trailing zeros — the race-detector hot path ticks,
    joins and copies clocks millions of times per run, and the flat layout
    makes every one of those an O(threads) array walk with zero allocation
    (ticks are O(1)). Thread ids index directly, so callers are expected to
    feed dense ids (see {!Coop_trace.Interner}).

    The previous persistent-map representation survives as {!Persistent}:
    an immutable reference oracle for differential tests and for analyses
    that want free snapshots (e.g. [Naive_hb]). *)

type t
(** A mutable flat vector clock. Missing (out-of-capacity) entries read
    as 0, so clocks over different thread populations compare naturally. *)

val create : ?capacity:int -> unit -> t
(** A fresh all-zeros clock. [capacity] pre-sizes the backing array. *)

val get : t -> int -> int
(** [get c t] is thread [t]'s component (0 when absent). *)

val set : t -> int -> int -> unit
(** [set c t n] replaces thread [t]'s component with [n], in place,
    growing the backing array on demand. *)

val tick_in_place : t -> int -> unit
(** [tick_in_place c t] increments thread [t]'s component, in place. *)

val join_into : into:t -> t -> unit
(** [join_into ~into src] sets [into] to the pointwise maximum of [into]
    and [src], in place. *)

val copy : t -> t
(** A fresh clock equal to the argument; further mutation of either does
    not affect the other. *)

val copy_into : into:t -> t -> unit
(** [copy_into ~into src] overwrites [into] with [src]'s components
    (clearing any components [src] lacks), reusing [into]'s storage. *)

val clear : t -> unit
(** Reset every component to 0, keeping the storage. *)

val leq : t -> t -> bool
(** [leq a b] iff [a] is pointwise <= [b]; this is the happens-before
    order between the times the clocks represent. *)

val equal : t -> t -> bool
(** Pointwise equality (ignoring trailing zeros / capacity). *)

val compare : t -> t -> int
(** An arbitrary total order consistent with {!equal}, for use in maps. *)

val of_list : (int * int) list -> t
(** Build from [(tid, time)] pairs; later pairs win. *)

val to_list : t -> (int * int) list
(** Non-zero bindings, ascending by thread id. *)

val pp : Format.formatter -> t -> unit
(** Renders as ["<0:3, 2:1>"]. *)

(** The persistent-map reference implementation (the representation this
    module had before the flat-array rewrite). Every operation returns a
    new clock; snapshots are free. Kept as the differential-testing oracle
    and for offline analyses that store one clock per event. *)
module Persistent : sig
  type t

  val empty : t
  val get : t -> int -> int
  val set : t -> int -> int -> t
  val tick : t -> int -> t
  val join : t -> t -> t
  val leq : t -> t -> bool
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val of_list : (int * int) list -> t
  val to_list : t -> (int * int) list
  val pp : Format.formatter -> t -> unit
end

val to_persistent : t -> Persistent.t
(** The persistent clock with the same components. *)

val of_persistent : Persistent.t -> t
(** A fresh flat clock with the same components. *)
