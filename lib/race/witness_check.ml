open Coop_trace
module P = Vclock.Persistent
module W = Coop_provenance.Witness

type oracle = P.t array

let oracle = Naive_hb.event_clocks

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* Check that a witnessed access names a real trace position holding the
   claimed event: right thread, right location, an access to the racy
   variable of the claimed kind. Returns the event for clock checks. *)
let check_access trace var (a : W.access) ~want_write ~role =
  let n = Trace.length trace in
  let i = a.W.a_seq - 1 in
  if i < 0 || i >= n then
    err "%s access position %d out of range (trace has %d events)" role
      a.W.a_seq n
  else
    let e = Trace.get trace i in
    if e.Event.tid <> a.W.a_tid then
      err "%s access at position %d: thread t%d recorded but trace has t%d"
        role a.W.a_seq a.W.a_tid e.Event.tid
    else if not (Loc.equal e.Event.loc a.W.a_loc) then
      err "%s access at position %d: location %s recorded but trace has %s"
        role a.W.a_seq (Loc.to_string a.W.a_loc) (Loc.to_string e.Event.loc)
    else
      let ok =
        match (e.Event.op, want_write) with
        | Event.Write v, Some true -> Event.equal_var v var
        | Event.Read v, Some false -> Event.equal_var v var
        | (Event.Write v | Event.Read v), None -> Event.equal_var v var
        | _ -> false
      in
      if ok then Ok e
      else
        err "%s access at position %d is not a %s of the racy variable" role
          a.W.a_seq
          (match want_write with
          | Some true -> "write"
          | Some false -> "read"
          | None -> "access")

(* A race witness must point at two conflicting accesses the oracle deems
   unordered, and its recorded clock components must match the oracle's. *)
let check_race ~clocks trace (r : Report.t) (w : W.race) =
  let first_write, second_write =
    match r.Report.kind with
    | Report.Write_write -> (true, true)
    | Report.Read_write -> (false, true)
    | Report.Write_read -> (true, false)
  in
  let* ef =
    check_access trace r.Report.var w.W.r_first ~want_write:(Some first_write)
      ~role:"first"
  in
  let* _es =
    check_access trace r.Report.var w.W.r_second
      ~want_write:(Some second_write) ~role:"second"
  in
  if w.W.r_first.W.a_seq >= w.W.r_second.W.a_seq then
    err "witness accesses out of trace order (%d >= %d)" w.W.r_first.W.a_seq
      w.W.r_second.W.a_seq
  else
    let ftid = ef.Event.tid in
    let first_clock = P.get clocks.(w.W.r_first.W.a_seq - 1) ftid in
    let second_sees = P.get clocks.(w.W.r_second.W.a_seq - 1) ftid in
    if first_clock <> w.W.r_first_clock then
      err "first access clock mismatch: witness says t%d@%d, oracle says %d"
        ftid w.W.r_first_clock first_clock
    else if second_sees <> w.W.r_second_sees then
      err "second access view mismatch: witness says it sees t%d@%d, oracle \
           says %d"
        ftid w.W.r_second_sees second_sees
    else if first_clock <= second_sees then
      err "accesses are ordered: second access sees t%d@%d >= first's clock %d"
        ftid second_sees first_clock
    else Ok ()

(* A lockset witness is structural: the fatal access is real, and the
   candidate set it met is disjoint from the locks it held (the divergence
   that emptied the candidates). *)
let check_locks trace (r : Report.t) (w : W.lockset) =
  let want_write =
    match r.Report.kind with
    | Report.Write_write -> Some true
    (* Eraser's Write_read warning fires on a read of an already-written
       shared variable; the fatal access itself is the read. *)
    | Report.Write_read -> Some false
    | Report.Read_write -> None
  in
  let* _e =
    check_access trace r.Report.var w.W.l_access ~want_write ~role:"fatal"
  in
  match List.find_opt (fun l -> List.mem l w.W.l_prior) w.W.l_held with
  | Some l ->
      err "lock sets not divergent: lock %d is in both the prior candidates \
           and the held set"
        l
  | None -> Ok ()

let check_report ~clocks trace (r : Report.t) =
  match r.Report.witness with
  | None -> err "report on %a carries no witness" Event.pp_var r.Report.var
  | Some (W.Race w) -> check_race ~clocks trace r w
  | Some (W.Locks w) -> check_locks trace r w

let check_all trace reports =
  let clocks = oracle trace in
  List.fold_left
    (fun acc r ->
      let* n = acc in
      let* () = check_report ~clocks trace r in
      Ok (n + 1))
    (Ok 0) reports
