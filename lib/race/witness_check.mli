(** Machine-checking race witnesses against the happens-before oracle.

    A {!Coop_provenance.Witness.Race} names two trace positions and two
    clock components; this module replays the witnessed slice through
    the {!Naive_hb} vector-clock oracle and confirms that the claimed
    evidence is real: the positions hold the claimed accesses, the
    recorded clock components match the oracle's, and the comparison
    proves the pair unordered. A {!Coop_provenance.Witness.Locks}
    witness is checked structurally (the positions hold the access, the
    two lock sets are disjoint) — Eraser deliberately over-approximates
    happens-before, so no clock claim is made.

    This is the "self-check mode" of [coopcheck explain] and the
    backbone of the witness differential test suite: a verdict whose
    witness fails here is a detector bug, not a prose disagreement. *)

open Coop_trace

type oracle = Vclock.Persistent.t array
(** Per-event thread clocks, as computed by {!Naive_hb.event_clocks}. *)

val oracle : Trace.t -> oracle
(** [Naive_hb.event_clocks], re-exported so callers checking many
    witnesses against one trace pay for the replay once. *)

val check_report :
  clocks:oracle -> Trace.t -> Report.t -> (unit, string) result
(** Check one report's witness against the trace it was produced from.
    [Error] carries a human-readable reason: no witness attached, a
    position out of range or holding the wrong event, a clock component
    that disagrees with the oracle, or an ordered pair. *)

val check_all : Trace.t -> Report.t list -> (int, string) result
(** Check every report (computing the oracle once); [Ok n] is the number
    of witnesses verified, [Error] the first failure. *)
