open Coop_trace

(* The oracle deliberately uses the persistent reference implementation of
   vector clocks: pass 1 snapshots a clock per event, and persistence makes
   those snapshots free. Components are keyed by original thread ids. *)
module P = Vclock.Persistent

(* Pass 1: replay the synchronization state machine, recording each event's
   thread clock at execution time. Thread and lock clock tables are flat
   arrays indexed by a private interner's dense ids. *)
let event_clocks trace =
  let itn = Interner.create () in
  let clocks = ref (Array.make 8 P.empty) in
  let inited = ref (Array.make 8 false) in
  let locks = ref (Array.make 8 P.empty) in
  let grown a n ~fill =
    let bigger = Array.make (max n (2 * Array.length a)) fill in
    Array.blit a 0 bigger 0 (Array.length a);
    bigger
  in
  (* dense tid -> clock; a thread starts with its own component at 1 *)
  let clock_of i tid =
    if i >= Array.length !clocks then begin
      clocks := grown !clocks (i + 1) ~fill:P.empty;
      inited := grown !inited (i + 1) ~fill:false
    end;
    if not !inited.(i) then begin
      !clocks.(i) <- P.set P.empty tid 1;
      !inited.(i) <- true
    end;
    !clocks.(i)
  in
  let set_clock i c = !clocks.(i) <- c in
  let lock_clock i =
    if i >= Array.length !locks then locks := grown !locks (i + 1) ~fill:P.empty;
    !locks.(i)
  in
  let out = Array.make (Trace.length trace) P.empty in
  Trace.iteri
    (fun i (e : Event.t) ->
      Interner.note itn e;
      let ti = Interner.cur_tid itn in
      let c = clock_of ti e.tid in
      out.(i) <- c;
      match e.op with
      | Event.Acquire _ ->
          let li = Interner.cur_operand itn in
          let c = P.join c (lock_clock li) in
          set_clock ti c;
          out.(i) <- c
      | Event.Release _ ->
          let li = Interner.cur_operand itn in
          ignore (lock_clock li);
          !locks.(li) <- c;
          set_clock ti (P.tick c e.tid)
      | Event.Fork u ->
          let ui = Interner.cur_operand itn in
          let cu = clock_of ui u in
          set_clock ui (P.join cu c);
          set_clock ti (P.tick c e.tid)
      | Event.Join u ->
          let ui = Interner.cur_operand itn in
          let cu = clock_of ui u in
          set_clock ti (P.join c cu)
      | Event.Read _ | Event.Write _ | Event.Yield | Event.Enter _
      | Event.Exit _ | Event.Atomic_begin | Event.Atomic_end | Event.Out _ ->
          ())
    trace;
  out

let happens_before trace i j =
  if i >= j then invalid_arg "Naive_hb.happens_before: need i < j";
  let ei = Trace.get trace i and ej = Trace.get trace j in
  if ei.Event.tid = ej.Event.tid then true
  else begin
    let clocks = event_clocks trace in
    (* Event i happens-before j iff thread i's component at time of i is
       visible in j's clock. *)
    P.get clocks.(i) ei.Event.tid <= P.get clocks.(j) ei.Event.tid
  end

let accesses trace =
  let acc = ref [] in
  Trace.iteri
    (fun i (e : Event.t) ->
      match e.op with
      | Event.Read v -> acc := (i, e.tid, v, false) :: !acc
      | Event.Write v -> acc := (i, e.tid, v, true) :: !acc
      | _ -> ())
    trace;
  List.rev !acc

let race_pairs trace =
  let clocks = event_clocks trace in
  let accs = Array.of_list (accesses trace) in
  let hb i ti j = P.get clocks.(i) ti <= P.get clocks.(j) ti in
  let pairs = ref [] in
  let n = Array.length accs in
  for a = 0 to n - 1 do
    let i, ti, vi, wi = accs.(a) in
    for b = a + 1 to n - 1 do
      let j, tj, vj, wj = accs.(b) in
      if ti <> tj && Event.equal_var vi vj && (wi || wj) && not (hb i ti j)
      then pairs := (i, j) :: !pairs
    done
  done;
  List.rev !pairs

let racy_vars trace =
  List.fold_left
    (fun s (i, _) ->
      match (Trace.get trace i).Event.op with
      | Event.Read v | Event.Write v -> Event.Var_set.add v s
      | _ -> s)
    Event.Var_set.empty (race_pairs trace)
