(** Epochs: the scalar clock representation at the heart of FastTrack.

    An epoch [c@t] records that thread [t] performed an access at its local
    time [c]. FastTrack's insight is that the last write (and usually the
    last read) of a variable is totally ordered with respect to everything
    that matters, so a full vector clock can be replaced by one epoch. *)

type t
(** An epoch, or the distinguished bottom element. *)

val bottom : t
(** The minimal epoch; [leq bottom c] holds for every clock [c]. *)

val make : tid:int -> clock:int -> t
(** [make ~tid ~clock] is the epoch [clock@tid]. Raises [Invalid_argument]
    when [tid] does not fit the tid field or [clock] exceeds {!max_clock}
    (the packed representation would overflow). *)

val max_clock : int
(** The largest clock value an epoch can carry. *)

val tid : t -> int
(** The thread of a non-bottom epoch. Raises [Invalid_argument] on
    {!bottom}. *)

val clock : t -> int
(** The local time of a non-bottom epoch. Raises [Invalid_argument] on
    {!bottom}. *)

val is_bottom : t -> bool
(** Whether this is {!bottom}. *)

val of_thread : int -> Vclock.t -> t
(** [of_thread t c] is thread [t]'s current epoch under clock [c]. *)

val leq : t -> Vclock.t -> bool
(** [leq e c] iff the access recorded by [e] happens-before the time [c];
    the O(1) comparison FastTrack relies on. *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** Renders as ["7@2"] or ["_|_"]. *)
