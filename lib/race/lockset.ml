open Coop_trace

module Iset = Set.Make (Int)

type var_state =
  | Virgin
  | Exclusive of int  (* dense tid of the owner *)
  | Shared
  | Shared_modified

type var_info = {
  mutable state : var_state;
  mutable candidates : Iset.t;  (* original lock handles *)
  mutable have_candidates : bool;
      (* false until the first access initializes the set; an explicit flag
         avoids conflating "all locks" with "no locks". *)
  mutable written : bool;  (* any write so far, by any thread *)
  mutable warned : bool;
}

(* Shared placeholder for unoccupied slots; never mutated. *)
let dummy_info =
  { state = Virgin; candidates = Iset.empty; have_candidates = false;
    written = false; warned = false }

type t = {
  itn : Interner.t;
  own_interner : bool;
  witness : bool;  (* capture divergent-lock-set evidence per warning *)
  mutable seq : int;  (* 1-based global position of the current event *)
  mutable ext_seq : bool;  (* seq injected via [set_seq], not counted *)
  mutable held : Iset.t array;  (* dense tid -> locks currently held *)
  mutable vars : var_info array;  (* dense var id -> info *)
  mutable reports : Report.t list;  (* reversed *)
}

let create ?interner ?(witness = false) () =
  let own_interner = interner = None in
  let itn = match interner with Some itn -> itn | None -> Interner.create () in
  { itn; own_interner; witness;
    seq = 0; ext_seq = false;
    held = Array.make 8 Iset.empty;
    vars = Array.make 64 dummy_info;
    reports = [] }

let set_seq t s =
  t.ext_seq <- true;
  t.seq <- s

let grown_slots a n ~fill =
  let bigger = Array.make (max n (2 * Array.length a)) fill in
  Array.blit a 0 bigger 0 (Array.length a);
  bigger

let held_by t tid =
  if tid < Array.length t.held then t.held.(tid) else Iset.empty

let set_held t tid s =
  if tid >= Array.length t.held then
    t.held <- grown_slots t.held (tid + 1) ~fill:Iset.empty;
  t.held.(tid) <- s

let info_of t vid =
  if vid >= Array.length t.vars then
    t.vars <- grown_slots t.vars (vid + 1) ~fill:dummy_info;
  let i = t.vars.(vid) in
  if i != dummy_info then i
  else begin
    let i =
      { state = Virgin; candidates = Iset.empty; have_candidates = false;
        written = false; warned = false }
    in
    t.vars.(vid) <- i;
    i
  end

let warn t i tid v kind w =
  if i.warned then []
  else begin
    i.warned <- true;
    let r =
      { Report.var = v; kind; first_tid = -1; second_tid = tid;
        second_loc = Loc.none; witness = w }
    in
    t.reports <- r :: t.reports;
    [ r ]
  end

(* Refine the candidate set with the lockset of the current access. Unlike
   textbook Eraser we refine during the Exclusive phase too, so the first
   thread's (possibly lock-free) accesses are not forgotten when the
   variable becomes shared — this keeps the detector a strict
   over-approximation of happens-before racy-ness (property-tested against
   FastTrack). *)
let refine i locks =
  if i.have_candidates then i.candidates <- Iset.inter i.candidates locks
  else begin
    i.have_candidates <- true;
    i.candidates <- locks
  end

let access t tid vid v ~orig_tid ~loc ~is_write =
  let i = info_of t vid in
  let locks = held_by t tid in
  (* Snapshot the candidate set before this access refines it: the
     warning's evidence is the divergence (prior ∩ held = ∅). *)
  let prior = if t.witness then i.candidates else Iset.empty in
  refine i locks;
  if is_write then i.written <- true;
  match i.state with
  | Virgin ->
      i.state <- Exclusive tid;
      []
  | Exclusive owner when owner = tid -> []
  | Exclusive _ | Shared | Shared_modified ->
      i.state <-
        (if is_write || i.state = Shared_modified then Shared_modified
         else Shared);
      if i.written && Iset.is_empty i.candidates then begin
        let w =
          if t.witness then
            Some
              (Coop_provenance.Witness.Locks
                 {
                   l_access = { a_tid = orig_tid; a_seq = t.seq; a_loc = loc };
                   l_prior = Iset.elements prior;
                   l_held = Iset.elements locks;
                 })
          else None
        in
        warn t i orig_tid v
          (if is_write then Report.Write_write else Report.Write_read)
          w
      end
      else []

let handle t (e : Event.t) =
  if not t.ext_seq then t.seq <- t.seq + 1;
  if t.own_interner then Interner.note t.itn e;
  let tid = Interner.cur_tid t.itn in
  match e.op with
  | Event.Read v ->
      access t tid (Interner.cur_operand t.itn) v ~orig_tid:e.tid ~loc:e.loc
        ~is_write:false
  | Event.Write v ->
      access t tid (Interner.cur_operand t.itn) v ~orig_tid:e.tid ~loc:e.loc
        ~is_write:true
  | Event.Acquire l ->
      set_held t tid (Iset.add l (held_by t tid));
      []
  | Event.Release l ->
      set_held t tid (Iset.remove l (held_by t tid));
      []
  | Event.Fork _ | Event.Join _ | Event.Yield | Event.Enter _ | Event.Exit _
  | Event.Atomic_begin | Event.Atomic_end | Event.Out _ ->
      []

let state_of t v =
  let vid = Interner.var_id t.itn v in
  if vid >= Array.length t.vars then Virgin
  else
    match t.vars.(vid).state with
    | Exclusive owner -> Exclusive (Interner.tid_of_id t.itn owner)
    | s -> s

let candidate_locks t v =
  let vid = Interner.var_id t.itn v in
  if vid >= Array.length t.vars then None
  else
    let i = t.vars.(vid) in
    match i.state with
    | Virgin | Exclusive _ -> None
    | Shared | Shared_modified -> Some (Iset.elements i.candidates)

let racy_vars t = Report.racy_vars t.reports

(* Checkpointing: held sets are immutable (array copy suffices), var
   records are copied field-wise; the interner rides along so standalone
   detectors restore their id assignments. *)
type snapshot = {
  s_itn : Interner.snapshot;
  s_seq : int;
  s_ext_seq : bool;
  s_held : Iset.t array;
  s_vars : var_info array;
  s_reports : Report.t list;
}

let copy_info i =
  if i == dummy_info then i
  else
    { state = i.state; candidates = i.candidates;
      have_candidates = i.have_candidates; written = i.written;
      warned = i.warned }

let snapshot t =
  {
    s_itn = Interner.snapshot t.itn;
    s_seq = t.seq;
    s_ext_seq = t.ext_seq;
    s_held = Array.copy t.held;
    s_vars = Array.map copy_info t.vars;
    s_reports = t.reports;
  }

let restore t s =
  Interner.restore t.itn s.s_itn;
  t.seq <- s.s_seq;
  t.ext_seq <- s.s_ext_seq;
  t.held <- Array.copy s.s_held;
  t.vars <- Array.map copy_info s.s_vars;
  t.reports <- s.s_reports

let snap_key : snapshot Analysis.Key.t = Analysis.Key.create "lockset"

let analysis ?interner ?witness () =
  let t = create ?interner ?witness () in
  Analysis.snapshottable ~key:snap_key
    ~save:(fun () -> snapshot t)
    ~load:(restore t)
    (Analysis.make
       ~step:(fun e -> ignore (handle t e))
       ~finalize:(fun () -> List.rev t.reports))

let run trace = Analysis.run (analysis ()) trace

let racy_vars_of_trace trace =
  Report.racy_vars (Analysis.run (analysis ()) trace)
