open Coop_trace

module Iset = Set.Make (Int)

type var_state =
  | Virgin
  | Exclusive of int
  | Shared
  | Shared_modified

type var_info = {
  mutable state : var_state;
  mutable candidates : Iset.t;
  mutable have_candidates : bool;
      (* false until the first access initializes the set; an explicit flag
         avoids conflating "all locks" with "no locks". *)
  mutable written : bool;  (* any write so far, by any thread *)
  mutable warned : bool;
}

type t = {
  held : (int, Iset.t) Hashtbl.t;  (* tid -> locks currently held *)
  vars : (Event.var, var_info) Hashtbl.t;
  mutable reports : Report.t list;  (* reversed *)
}

let create () =
  { held = Hashtbl.create 8; vars = Hashtbl.create 64; reports = [] }

let held_by t tid =
  match Hashtbl.find_opt t.held tid with Some s -> s | None -> Iset.empty

let info_of t v =
  match Hashtbl.find_opt t.vars v with
  | Some i -> i
  | None ->
      let i =
        { state = Virgin; candidates = Iset.empty; have_candidates = false;
          written = false; warned = false }
      in
      Hashtbl.add t.vars v i;
      i

let warn t tid v kind =
  let i = info_of t v in
  if i.warned then []
  else begin
    i.warned <- true;
    let r =
      { Report.var = v; kind; first_tid = -1; second_tid = tid;
        second_loc = Loc.none }
    in
    t.reports <- r :: t.reports;
    [ r ]
  end

(* Refine the candidate set with the lockset of the current access. Unlike
   textbook Eraser we refine during the Exclusive phase too, so the first
   thread's (possibly lock-free) accesses are not forgotten when the
   variable becomes shared — this keeps the detector a strict
   over-approximation of happens-before racy-ness (property-tested against
   FastTrack). *)
let refine i locks =
  if i.have_candidates then i.candidates <- Iset.inter i.candidates locks
  else begin
    i.have_candidates <- true;
    i.candidates <- locks
  end

let access t tid loc v ~is_write =
  ignore loc;
  let i = info_of t v in
  let locks = held_by t tid in
  refine i locks;
  if is_write then i.written <- true;
  match i.state with
  | Virgin ->
      i.state <- Exclusive tid;
      []
  | Exclusive owner when owner = tid -> []
  | Exclusive _ | Shared | Shared_modified ->
      i.state <-
        (if is_write || i.state = Shared_modified then Shared_modified
         else Shared);
      if i.written && Iset.is_empty i.candidates then
        warn t tid v
          (if is_write then Report.Write_write else Report.Write_read)
      else []

let handle t (e : Event.t) =
  match e.op with
  | Event.Read v -> access t e.tid e.loc v ~is_write:false
  | Event.Write v -> access t e.tid e.loc v ~is_write:true
  | Event.Acquire l ->
      Hashtbl.replace t.held e.tid (Iset.add l (held_by t e.tid));
      []
  | Event.Release l ->
      Hashtbl.replace t.held e.tid (Iset.remove l (held_by t e.tid));
      []
  | Event.Fork _ | Event.Join _ | Event.Yield | Event.Enter _ | Event.Exit _
  | Event.Atomic_begin | Event.Atomic_end | Event.Out _ ->
      []

let state_of t v =
  match Hashtbl.find_opt t.vars v with Some i -> i.state | None -> Virgin

let candidate_locks t v =
  match Hashtbl.find_opt t.vars v with
  | Some i -> (
      match i.state with
      | Virgin | Exclusive _ -> None
      | Shared | Shared_modified -> Some (Iset.elements i.candidates))
  | None -> None

let racy_vars t = Report.racy_vars t.reports

let analysis () =
  let t = create () in
  Analysis.make
    ~step:(fun e -> ignore (handle t e))
    ~finalize:(fun () -> List.rev t.reports)

let run trace = Analysis.run (analysis ()) trace

let racy_vars_of_trace trace =
  Report.racy_vars (Analysis.run (analysis ()) trace)
