open Coop_trace

type kind =
  | Write_write
  | Read_write
  | Write_read

type t = {
  var : Event.var;
  kind : kind;
  first_tid : int;
  second_tid : int;
  second_loc : Loc.t;
  witness : Coop_provenance.Witness.t option;
}

let pp_kind ppf = function
  | Write_write -> Format.pp_print_string ppf "write-write"
  | Read_write -> Format.pp_print_string ppf "read-write"
  | Write_read -> Format.pp_print_string ppf "write-read"

let pp ppf r =
  Format.fprintf ppf "%a race on %a between t%d and t%d at %a" pp_kind r.kind
    Event.pp_var r.var r.first_tid r.second_tid Loc.pp r.second_loc

let racy_vars rs =
  List.fold_left (fun s r -> Event.Var_set.add r.var s) Event.Var_set.empty rs
