(** FastTrack-style happens-before race detection.

    This is the substrate of the cooperability analysis: the mover
    classification needs to know which accesses race. The implementation
    follows the classic FastTrack design — one vector clock per thread and
    per lock, and per-variable adaptive read metadata (a single epoch in the
    common thread-local case, a full read vector when reads are genuinely
    shared). The detector continues past races ("continue-after-race"), so a
    single run yields the complete set of racy variables.

    All per-thread, per-lock and per-variable state is kept in flat arrays
    indexed by the dense ids of an {!Interner} (vector-clock components and
    epochs use dense thread ids too); reports translate back to original
    names. Pass [~interner] to share one interner — and its per-event
    {!Interner.note} — across a fused chain headed by
    {!Interner.analysis}; without it the detector notes events itself. *)

open Coop_trace

type t
(** Mutable detector state. *)

type facts = {
  on_racy_var : Event.var -> int -> unit;
      (** Fired the first time any race is reported on the variable —
          synchronously, during the [handle] call for the exposing
          access, before that call returns. Arguments: the variable and
          its dense id in the detector's interner. *)
  on_shared_lock : int -> int -> unit;
      (** Fired the first time a second distinct thread touches the lock
          (acquire or release — the same events the thread-locality scan
          counts), i.e. the moment the lock stops being thread-local.
          Arguments: the lock handle and its dense id. *)
}
(** Incremental knowledge channel for single-pass consumers. The
    two facts a mover classifier needs — "this variable races" and
    "this lock is shared" — are monotone: once published they never
    retract, and each fires at most once per variable/lock. *)

val no_facts : facts
(** Callbacks that ignore every fact (the default). *)

val create : ?facts:facts -> ?interner:Interner.t -> ?witness:bool -> unit -> t
(** Fresh state: every thread clock starts at [<t:1>]. [facts] callbacks
    fire as knowledge is discovered; default {!no_facts}. With
    [~interner], {!handle} assumes each event has already been noted on
    that interner (chain use); without it the detector owns a private
    interner and notes events itself. With [~witness:true] (default
    [false]) every report carries a {!Coop_provenance.Witness.Race}: the
    detector additionally tracks, per variable, where the last write and
    the live reads happened (global position + location), at the cost of
    a side-table update per access. *)

val handle : t -> Event.t -> Report.t list
(** [handle t e] advances the detector by one event and returns the races
    that [e] exposes (empty for non-access events and race-free accesses).
    Each call advances the detector's global position counter (witness
    evidence is keyed by it), unless {!set_seq} took over. *)

val set_seq : t -> int -> unit
(** Override the global position of the next {!handle} call — and every
    later one, disabling the internal counter for good. The sharded
    router injects the true global position here, because an owner shard
    only sees a sub-stream: with injection, witnesses are byte-identical
    to the sequential detector's. *)

type snapshot
(** A deep copy of the detector — clocks, lock clocks, per-variable
    epochs/read vectors, witness side tables, fired-fact bytes, lock
    ownership and the interner. *)

val snapshot : t -> snapshot
(** Capture the detector between two events. Shares no mutable structure
    with [t]; reports (immutable) are shared. *)

val restore : t -> snapshot -> unit
(** Overwrite [t] (including its interner) with the snapshot, copying
    again so the snapshot stays reusable. A restored detector is
    observationally identical — reports, witnesses, published facts —
    to one that streamed the snapshot's prefix itself; its [facts]
    callbacks are its own (construction-time) channel. Raises
    [Invalid_argument] when the witness modes disagree. *)

val races : t -> Report.t list
(** All races reported so far, in detection order. *)

val racy_vars : t -> Event.Var_set.t
(** Variables involved in at least one reported race so far. *)

val sink : t -> Trace.Sink.t
(** An event sink that feeds the detector (reports accumulate in [t]). *)

val analysis :
  ?facts:facts -> ?interner:Interner.t -> ?witness:bool -> unit ->
  Report.t list Analysis.t
(** A fresh detector as a single-pass online analysis: O(threads·vars)
    state, finalizes to the races in detection order. [facts], [interner]
    and [witness] as in {!create}. Snapshottable via
    {!Analysis.snapshot} / {!Analysis.resume} ({!snapshot} /
    {!restore} under a shared key). *)

val run : Trace.t -> Report.t list
(** Run a fresh detector over a recorded trace (offline wrapper over
    {!analysis}). *)

val racy_vars_of_trace : Trace.t -> Event.Var_set.t
(** Convenience: the racy variables of a recorded trace. *)
