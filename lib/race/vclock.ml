(* Flat mutable representation: component [t] lives at [a.(t)], and every
   index at or beyond [Array.length a] reads as 0. Operations mutate in
   place and grow the backing array on demand, so the detector hot path
   (tick / join / copy, millions of times per run) never touches the GC
   except when a clock genuinely grows. *)

type t = { mutable a : int array }

let create ?(capacity = 0) () = { a = Array.make capacity 0 }

let get c t = if t < Array.length c.a then c.a.(t) else 0

let ensure c n =
  let len = Array.length c.a in
  if n > len then begin
    let bigger = Array.make (max n (2 * len)) 0 in
    Array.blit c.a 0 bigger 0 len;
    c.a <- bigger
  end

(* Whole-clock operations size the destination to exactly the source's
   backing length. Over-growing here (as [ensure] does for amortized
   index growth) would let two clocks that copy/join into each other
   ping-pong their capacities upward without bound. *)
let ensure_exact c n =
  let len = Array.length c.a in
  if n > len then begin
    let bigger = Array.make n 0 in
    Array.blit c.a 0 bigger 0 len;
    c.a <- bigger
  end

let set c t n =
  if t < 0 then invalid_arg "Vclock.set: negative thread id";
  if n = 0 then begin
    if t < Array.length c.a then c.a.(t) <- 0
  end
  else begin
    ensure c (t + 1);
    c.a.(t) <- n
  end

let tick_in_place c t =
  if t < 0 then invalid_arg "Vclock.tick_in_place: negative thread id";
  ensure c (t + 1);
  c.a.(t) <- c.a.(t) + 1

let join_into ~into src =
  let n = Array.length src.a in
  ensure_exact into n;
  let dst = into.a and sa = src.a in
  for i = 0 to n - 1 do
    let v = Array.unsafe_get sa i in
    if v > Array.unsafe_get dst i then Array.unsafe_set dst i v
  done

let copy c = { a = Array.copy c.a }

let copy_into ~into src =
  let n = Array.length src.a in
  ensure_exact into n;
  Array.blit src.a 0 into.a 0 n;
  Array.fill into.a n (Array.length into.a - n) 0

let clear c = Array.fill c.a 0 (Array.length c.a) 0

let leq a b =
  let la = Array.length a.a and lb = Array.length b.a in
  let n = min la lb in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    if Array.unsafe_get a.a !i > Array.unsafe_get b.a !i then ok := false;
    incr i
  done;
  (* Components of [a] beyond [b]'s capacity compare against 0. *)
  while !ok && !i < la do
    if Array.unsafe_get a.a !i > 0 then ok := false;
    incr i
  done;
  !ok

let equal a b =
  let la = Array.length a.a and lb = Array.length b.a in
  let n = max la lb in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    if get a !i <> get b !i then ok := false;
    incr i
  done;
  !ok

let compare a b =
  let n = max (Array.length a.a) (Array.length b.a) in
  let rec go i =
    if i >= n then 0
    else begin
      let c = Int.compare (get a i) (get b i) in
      if c <> 0 then c else go (i + 1)
    end
  in
  go 0

let of_list l =
  let c = create () in
  List.iter (fun (t, n) -> set c t n) l;
  c

let to_list c =
  let acc = ref [] in
  for i = Array.length c.a - 1 downto 0 do
    if c.a.(i) <> 0 then acc := (i, c.a.(i)) :: !acc
  done;
  !acc

let pp ppf c =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (t, n) -> Format.fprintf ppf "%d:%d" t n))
    (to_list c)

module Persistent = struct
  module M = Map.Make (Int)

  (* Invariant: no explicit zero entries are stored, so structural map
     equality coincides with clock equality. *)
  type t = int M.t

  let empty = M.empty
  let get c t = match M.find_opt t c with Some n -> n | None -> 0
  let set c t n = if n = 0 then M.remove t c else M.add t n c
  let tick c t = M.add t (get c t + 1) c
  let join a b = M.union (fun _ x y -> Some (max x y)) a b
  let leq a b = M.for_all (fun t n -> n <= get b t) a
  let equal = M.equal Int.equal
  let compare = M.compare Int.compare
  let of_list l = List.fold_left (fun c (t, n) -> set c t n) empty l
  let to_list c = M.bindings c

  let pp ppf c =
    Format.fprintf ppf "<%a>"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (t, n) -> Format.fprintf ppf "%d:%d" t n))
      (to_list c)
end

let to_persistent c = Persistent.of_list (to_list c)

let of_persistent p = of_list (Persistent.to_list p)
