(** Race reports produced by the detectors. *)

type kind =
  | Write_write  (** Two concurrent writes. *)
  | Read_write  (** A read concurrent with a later write. *)
  | Write_read  (** A write concurrent with a later read. *)

type t = {
  var : Coop_trace.Event.var;  (** The variable raced on. *)
  kind : kind;  (** The flavour of the conflict. *)
  first_tid : int;  (** Thread of the earlier access. *)
  second_tid : int;  (** Thread of the later access. *)
  second_loc : Coop_trace.Loc.t;  (** Location of the access that exposed the race. *)
  witness : Coop_provenance.Witness.t option;
      (** Causal evidence, when the detector ran with [~witness:true]:
          the unordered access pair (FastTrack) or the divergent lock
          sets (Eraser). [None] otherwise — capture is opt-in so the
          default hot path pays nothing. *)
}

val pp : Format.formatter -> t -> unit
(** Human-readable one-liner. *)

val racy_vars : t list -> Coop_trace.Event.Var_set.t
(** The set of variables mentioned by any report. *)
