open Coop_runtime

type verdict = {
  preemptive : Explore.result;
  cooperative : Explore.result;
  equal : bool;
  preemptive_subset : bool;
}

let compare ?pool ?yields ?max_states ?max_segment ?no_cache ?ckpt prog =
  (* The two explorations are themselves independent; with a pool each
     mode is spawned as its own task (which then spawns per-frontier
     subtasks inside it — nested spawning on one pool), and awaited in a
     fixed order for a deterministic verdict. *)
  let both =
    match pool with
    | Some p when Coop_util.Pool.jobs p > 1 ->
        let promises =
          List.map
            (fun mode ->
              Coop_util.Pool.spawn p (fun () ->
                  Explore.run ~pool:p ?yields ?max_states ?max_segment
                    ?no_cache ?ckpt mode prog))
            [ Explore.Preemptive; Explore.Cooperative ]
        in
        List.map (Coop_util.Pool.await p) promises
    | _ ->
        List.map
          (fun mode ->
            Explore.run ?yields ?max_states ?max_segment ?no_cache ?ckpt mode
              prog)
          [ Explore.Preemptive; Explore.Cooperative ]
  in
  match both with
  | [ preemptive; cooperative ] ->
      let complete =
        preemptive.Explore.complete && cooperative.Explore.complete
      in
      {
        preemptive;
        cooperative;
        equal =
          complete
          && Behavior.Set.equal preemptive.Explore.behaviors
               cooperative.Explore.behaviors;
        preemptive_subset =
          complete
          && Behavior.Set.subset preemptive.Explore.behaviors
               cooperative.Explore.behaviors;
      }
  | _ -> assert false

let pp ppf v =
  Format.fprintf ppf
    "preemptive: %d behaviors/%d states%s, cooperative: %d behaviors/%d \
     states%s, equal=%b, pre⊆coop=%b"
    (Behavior.Set.cardinal v.preemptive.Explore.behaviors)
    v.preemptive.Explore.states
    (if v.preemptive.Explore.complete then "" else " (incomplete)")
    (Behavior.Set.cardinal v.cooperative.Explore.behaviors)
    v.cooperative.Explore.states
    (if v.cooperative.Explore.complete then "" else " (incomplete)")
    v.equal v.preemptive_subset
