open Coop_runtime

type verdict = {
  preemptive : Explore.result;
  cooperative : Explore.result;
  equal : bool;
  preemptive_subset : bool;
}

let compare ?pool ?yields ?max_states prog =
  (* The two explorations are themselves independent; with a pool they run
     concurrently, and each also shards its own frontier inside it. *)
  let both =
    match pool with
    | Some p when Coop_util.Pool.jobs p > 1 ->
        Coop_util.Pool.parallel_map p
          (fun mode -> Explore.run ~pool:p ?yields ?max_states mode prog)
          [ Explore.Preemptive; Explore.Cooperative ]
    | _ ->
        List.map
          (fun mode -> Explore.run ?yields ?max_states mode prog)
          [ Explore.Preemptive; Explore.Cooperative ]
  in
  match both with
  | [ preemptive; cooperative ] ->
      let complete =
        preemptive.Explore.complete && cooperative.Explore.complete
      in
      {
        preemptive;
        cooperative;
        equal =
          complete
          && Behavior.Set.equal preemptive.Explore.behaviors
               cooperative.Explore.behaviors;
        preemptive_subset =
          complete
          && Behavior.Set.subset preemptive.Explore.behaviors
               cooperative.Explore.behaviors;
      }
  | _ -> assert false

let pp ppf v =
  Format.fprintf ppf
    "preemptive: %d behaviors/%d states%s, cooperative: %d behaviors/%d \
     states%s, equal=%b, pre⊆coop=%b"
    (Behavior.Set.cardinal v.preemptive.Explore.behaviors)
    v.preemptive.Explore.states
    (if v.preemptive.Explore.complete then "" else " (incomplete)")
    (Behavior.Set.cardinal v.cooperative.Explore.behaviors)
    v.cooperative.Explore.states
    (if v.cooperative.Explore.complete then "" else " (incomplete)")
    v.equal v.preemptive_subset
