open Coop_trace
module Pool = Coop_util.Pool

(* Role bits of one routed message. A single message can carry several:
   an access whose variable and thread share an owner is one message with
   both the detector and the engine role. *)
let r_ft = 1 (* FastTrack (+ lockset): owned access, or broadcast sync *)

let r_engine = 2 (* per-thread transaction engines at the thread's owner *)

let r_aux = 4 (* shard 0: deadlock sync events, client aux stream *)

(* Batch size trades queue traffic against latency; backlog bound trades
   memory against router stalls (a stall drains inline, it never blocks). *)
let batch_events = 2048

let max_backlog = 8

type batch = {
  seqs : int array;
  tids : int array;  (* original thread ids, for reports *)
  dtids : int array;  (* dense thread ids *)
  oids : int array;  (* dense operand ids, -1 when none *)
  roles : int array;
  ops : Event.op array;
  locs : Loc.t array;
  mutable len : int;
}

let new_batch () =
  {
    seqs = Array.make batch_events 0;
    tids = Array.make batch_events 0;
    dtids = Array.make batch_events 0;
    oids = Array.make batch_events 0;
    roles = Array.make batch_events 0;
    ops = Array.make batch_events Event.Yield;
    locs = Array.make batch_events Loc.none;
    len = 0;
  }

(* The fact board: an append-only log of every racy-variable /
   shared-lock fact any shard has published. Appends take the mutex;
   readers snapshot (array, count) under it and then read the immutable
   prefix lock-free. Shards poll at batch boundaries — facts are rare
   (at most one per variable/lock), so this is far off the hot path. *)
type board = {
  bmu : Mutex.t;
  mutable bslots : Online.fact array;
  bcount : int Atomic.t;
}

let board_create () =
  { bmu = Mutex.create (); bslots = [||]; bcount = Atomic.make 0 }

let board_publish b f =
  Mutex.lock b.bmu;
  let n = Atomic.get b.bcount in
  if n = Array.length b.bslots then begin
    let bigger = Array.make (max 16 (2 * n)) f in
    Array.blit b.bslots 0 bigger 0 n;
    b.bslots <- bigger
  end;
  b.bslots.(n) <- f;
  Atomic.set b.bcount (n + 1);
  Mutex.unlock b.bmu

type client = {
  cl_engine_step : seq:int -> Event.t -> unit;
  cl_aux_step : seq:int -> Event.t -> unit;
  cl_fact : Online.fact -> unit;
  cl_finish : unit -> unit;
}

let null_client =
  {
    cl_engine_step = (fun ~seq:_ _ -> ());
    cl_aux_step = (fun ~seq:_ _ -> ());
    cl_fact = (fun _ -> ());
    cl_finish = (fun () -> ());
  }

let combine_clients a b =
  {
    cl_engine_step =
      (fun ~seq e ->
        a.cl_engine_step ~seq e;
        b.cl_engine_step ~seq e);
    cl_aux_step =
      (fun ~seq e ->
        a.cl_aux_step ~seq e;
        b.cl_aux_step ~seq e);
    cl_fact =
      (fun f ->
        a.cl_fact f;
        b.cl_fact f);
    cl_finish =
      (fun () ->
        a.cl_finish ();
        b.cl_finish ());
  }

type shard = {
  sid : int;
  shim : Interner.t;  (* router-fed: ids stored, names bound verbatim *)
  ft : Coop_race.Fasttrack.t;
  ls : Coop_race.Lockset.t option;
  dl : Deadlock.result Analysis.t option;  (* shard 0, when requested *)
  mutable engine : unit Online.t option;  (* cooperability automaton engine *)
  mutable current : unit Online.txn option array;  (* dense tid -> open *)
  mutable auto_viols : Online.viol list;
  mutable client : client;
  scratch : Event.t;  (* one reused record fed to every checker *)
  mutable races : (int * Coop_race.Report.t) list;  (* (seq, r), reversed *)
  mutable ls_races : (int * Coop_race.Report.t) list;
  mutable fact_cursor : int;  (* board entries already applied here *)
  mutable events_seen : int;
  (* The batch queue. Only the router pushes; at most one drainer at a
     time pops, guarded by [busy] — which is only ever set by code that
     is running, so spinning on it always makes progress. *)
  qmu : Mutex.t;
  q : batch Queue.t;
  backlog : int Atomic.t;
  busy : bool Atomic.t;
  wake : bool Atomic.t;  (* a drain task has been spawned, not yet run *)
  mutable open_batch : batch;  (* router side, being filled *)
  lane : string;  (* obs queue-depth lane name *)
}

type outcome = {
  races : Coop_race.Report.t list;
  racy : Event.Var_set.t;
  violations : Automaton.violation list;
  lockset_races : Coop_race.Report.t list option;
  deadlock : Deadlock.result option;
  events : int;
  messages : int;
  broadcasts : int;
}

let default_shards () =
  match Sys.getenv_opt "COOP_SHARDS" with
  | Some s -> ( match Pool.parse_jobs s with Some k -> k | None -> 1)
  | None -> 1

(* --- Shard-side processing ------------------------------------------- *)

let apply_fact sh f =
  (match sh.engine with Some eng -> Online.on_fact eng f | None -> ());
  sh.client.cl_fact f

let poll_facts board sh =
  if Atomic.get board.bcount > sh.fact_cursor then begin
    Mutex.lock board.bmu;
    let n = Atomic.get board.bcount in
    let slots = board.bslots in
    Mutex.unlock board.bmu;
    for i = sh.fact_cursor to n - 1 do
      apply_fact sh slots.(i)
    done;
    sh.fact_cursor <- n
  end

let ensure_current sh dtid =
  if dtid >= Array.length sh.current then begin
    let bigger =
      Array.make (max (dtid + 1) (2 * Array.length sh.current)) None
    in
    Array.blit sh.current 0 bigger 0 (Array.length sh.current);
    sh.current <- bigger
  end

(* The yield-to-yield transaction driver of [Automaton.online_analysis],
   with the global sequence supplied by the message instead of a local
   counter — merged violations sort by it. *)
let engine_step sh eng ~seq ~dtid (e : Event.t) =
  match e.op with
  | Event.Yield -> (
      if dtid < Array.length sh.current then
        match sh.current.(dtid) with
        | Some txn ->
            Online.close eng txn;
            sh.current.(dtid) <- None
        | None -> ())
  | _ ->
      ensure_current sh dtid;
      let txn =
        match sh.current.(dtid) with
        | Some txn -> txn
        | None ->
            let txn = Online.open_txn eng ~tid:e.tid ~data:() in
            sh.current.(dtid) <- Some txn;
            txn
      in
      Online.step eng txn ~seq e

let process_batch sh b =
  let scratch = sh.scratch in
  for i = 0 to b.len - 1 do
    let roles = b.roles.(i) in
    let dtid = b.dtids.(i) in
    scratch.Event.tid <- b.tids.(i);
    scratch.Event.op <- b.ops.(i);
    scratch.Event.loc <- b.locs.(i);
    Interner.bind_tid sh.shim b.tids.(i) ~id:dtid;
    Interner.set_cur sh.shim ~tid:dtid ~operand:b.oids.(i);
    if roles land r_ft <> 0 then begin
      (* Inject the true global position: an owner shard only sees a
         sub-stream, and witness evidence must be byte-identical to the
         sequential detector's. *)
      Coop_race.Fasttrack.set_seq sh.ft b.seqs.(i);
      (match sh.ls with
      | Some ls -> Coop_race.Lockset.set_seq ls b.seqs.(i)
      | None -> ());
      (match Coop_race.Fasttrack.handle sh.ft scratch with
      | [] -> ()
      | rs ->
          let s = b.seqs.(i) in
          List.iter (fun r -> sh.races <- (s, r) :: sh.races) rs);
      match sh.ls with
      | Some ls -> (
          match Coop_race.Lockset.handle ls scratch with
          | [] -> ()
          | rs ->
              let s = b.seqs.(i) in
              List.iter (fun r -> sh.ls_races <- (s, r) :: sh.ls_races) rs)
      | None -> ()
    end;
    if roles land r_engine <> 0 then begin
      (match sh.engine with
      | Some eng -> engine_step sh eng ~seq:b.seqs.(i) ~dtid scratch
      | None -> ());
      sh.client.cl_engine_step ~seq:b.seqs.(i) scratch
    end;
    if roles land r_aux <> 0 then
      match b.ops.(i) with
      | Event.Acquire _ | Event.Release _ -> (
          match sh.dl with Some a -> Analysis.step a scratch | None -> ())
      | _ -> sh.client.cl_aux_step ~seq:b.seqs.(i) scratch
  done;
  sh.events_seen <- sh.events_seen + b.len

let pop sh =
  Mutex.lock sh.qmu;
  let r = if Queue.is_empty sh.q then None else Some (Queue.pop sh.q) in
  Mutex.unlock sh.qmu;
  (match r with Some _ -> Atomic.decr sh.backlog | None -> ());
  r

let queue_empty sh =
  Mutex.lock sh.qmu;
  let e = Queue.is_empty sh.q in
  Mutex.unlock sh.qmu;
  e

(* Drain everything currently queued. Caller holds [busy]. *)
let drain_loop board sh =
  poll_facts board sh;
  let rec go () =
    match pop sh with
    | Some b ->
        process_batch sh b;
        poll_facts board sh;
        go ()
    | None -> ()
  in
  go ()

(* The pool-task body. [busy] is taken *inside* the task, never at spawn
   time, so a task that is queued but not yet running can never make the
   router's inline drain spin on a flag nobody is advancing. *)
let rec drain_task board sh =
  Atomic.set sh.wake false;
  if Atomic.compare_and_set sh.busy false true then begin
    drain_loop board sh;
    Atomic.set sh.busy false;
    (* Wake-up race: batches pushed after the queue looked empty. *)
    if not (queue_empty sh) then drain_task board sh
  end

(* --- Router ----------------------------------------------------------- *)

let make_shard ~board ~lockset ~deadlock ~automaton ~witness ~client ~shards
    sid =
  let shim = Interner.create () in
  let publish f =
    (* The sending end of the fact-propagation flow; each shard that
       learns the fact records a matching end (K-way fan-out). *)
    Coop_obs.flow_begin (Online.flow_name f) ~id:(Online.pack f);
    board_publish board f
  in
  (* Every shard replays all broadcast lock events through its own
     detector (clock bookkeeping), so the lock-ownership scan fires on
     every shard: only the lock's owner publishes, keeping each fact
     single-shot globally. Racy-variable facts need no filter — accesses
     only ever reach their owner. *)
  let facts =
    {
      Coop_race.Fasttrack.on_racy_var = (fun _v id -> publish (Online.Racy id));
      on_shared_lock =
        (fun _l id ->
          if Interner.owner shim id ~shard:shards = sid then
            publish (Online.Shared id));
    }
  in
  let ft = Coop_race.Fasttrack.create ~facts ~interner:shim ~witness () in
  let sh =
    {
      sid;
      shim;
      ft;
      ls =
        (if lockset then
           Some (Coop_race.Lockset.create ~interner:shim ~witness ())
         else None);
      dl = (if deadlock && sid = 0 then Some (Deadlock.analysis ()) else None);
      engine = None;
      current = Array.make 8 None;
      auto_viols = [];
      client = null_client;
      scratch = Event.make ~tid:0 ~op:Event.Yield ~loc:Loc.none;
      races = [];
      ls_races = [];
      fact_cursor = 0;
      events_seen = 0;
      qmu = Mutex.create ();
      q = Queue.create ();
      backlog = Atomic.make 0;
      busy = Atomic.make false;
      wake = Atomic.make false;
      open_batch = new_batch ();
      lane = Printf.sprintf "sharded/queue_depth/s%d" sid;
    }
  in
  if automaton then
    sh.engine <-
      Some
        (Online.create ~interner:shim
           ~on_retire:(fun txn ->
             sh.auto_viols <-
               List.rev_append (Online.violations txn) sh.auto_viols)
           ());
  sh.client <- client ~shard:sid ~interner:shim;
  sh

let run ?pool ?(automaton = true) ?(lockset = false) ?(deadlock = false)
    ?(aux_access = false) ?(witness = false)
    ?(client = fun ~shard:_ ~interner:_ -> null_client) ~shards source =
  if shards < 1 then invalid_arg "Sharded.run: shards must be >= 1";
  let k = shards in
  let pool = match pool with Some p -> p | None -> Pool.shared () in
  let obs = Coop_obs.enabled () in
  let board = board_create () in
  let shs =
    Array.init k
      (make_shard ~board ~lockset ~deadlock ~automaton ~witness ~client
         ~shards:k)
  in
  let itn = Interner.create () in
  let promises = ref [] in
  let seq = ref 0 in
  let messages = ref 0 in
  let broadcasts = ref 0 in
  let maybe_spawn sh =
    if
      (not (Atomic.get sh.busy)) && Atomic.compare_and_set sh.wake false true
    then promises := Pool.spawn pool (fun () -> drain_task board sh) :: !promises
  in
  (* Over the bound: drain inline if no drainer is active, else wait for
     the active one (it is running right now, so this terminates). *)
  let relieve sh =
    while Atomic.get sh.backlog >= max_backlog do
      if Atomic.compare_and_set sh.busy false true then begin
        let target = max_backlog / 2 in
        let rec go () =
          if Atomic.get sh.backlog > target then
            match pop sh with
            | Some b ->
                process_batch sh b;
                go ()
            | None -> ()
        in
        go ();
        poll_facts board sh;
        Atomic.set sh.busy false
      end
      else Domain.cpu_relax ()
    done
  in
  let flush sh =
    let b = sh.open_batch in
    if b.len > 0 then begin
      sh.open_batch <- new_batch ();
      Mutex.lock sh.qmu;
      Queue.push b sh.q;
      Mutex.unlock sh.qmu;
      let depth = 1 + Atomic.fetch_and_add sh.backlog 1 in
      if obs then Coop_obs.sample sh.lane (float_of_int depth);
      maybe_spawn sh;
      if depth >= max_backlog then relieve sh
    end
  in
  let emit sh ~tid ~dtid ~oid ~role ~op ~loc =
    let b = sh.open_batch in
    let i = b.len in
    b.seqs.(i) <- !seq;
    b.tids.(i) <- tid;
    b.dtids.(i) <- dtid;
    b.oids.(i) <- oid;
    b.roles.(i) <- role;
    b.ops.(i) <- op;
    b.locs.(i) <- loc;
    b.len <- i + 1;
    incr messages;
    if b.len = batch_events then flush sh
  in
  let masks = Array.make k 0 in
  let route (e : Event.t) =
    incr seq;
    Interner.note itn e;
    let dtid = Interner.cur_tid itn in
    let oid = Interner.cur_operand itn in
    Array.fill masks 0 k 0;
    (match e.op with
    | Event.Read _ | Event.Write _ ->
        masks.(Interner.owner itn oid ~shard:k) <- r_ft;
        let ts = Interner.owner itn dtid ~shard:k in
        masks.(ts) <- masks.(ts) lor r_engine;
        if aux_access then masks.(0) <- masks.(0) lor r_aux
    | Event.Acquire _ | Event.Release _ ->
        for s = 0 to k - 1 do
          masks.(s) <- r_ft
        done;
        broadcasts := !broadcasts + (k - 1);
        let ts = Interner.owner itn dtid ~shard:k in
        masks.(ts) <- masks.(ts) lor r_engine;
        if deadlock then masks.(0) <- masks.(0) lor r_aux
    | Event.Fork _ | Event.Join _ ->
        for s = 0 to k - 1 do
          masks.(s) <- r_ft
        done;
        broadcasts := !broadcasts + (k - 1);
        let ts = Interner.owner itn dtid ~shard:k in
        masks.(ts) <- masks.(ts) lor r_engine
    | Event.Yield -> masks.(Interner.owner itn dtid ~shard:k) <- r_engine
    | Event.Enter _ | Event.Exit _ ->
        masks.(Interner.owner itn dtid ~shard:k) <- r_engine;
        if aux_access then masks.(0) <- masks.(0) lor r_aux
    | Event.Atomic_begin | Event.Atomic_end ->
        masks.(Interner.owner itn dtid ~shard:k) <- r_engine
    | Event.Out _ -> ());
    for s = 0 to k - 1 do
      if masks.(s) <> 0 then
        emit shs.(s) ~tid:e.tid ~dtid ~oid ~role:masks.(s) ~op:e.op ~loc:e.loc
    done
  in
  (* One streaming pass: the router is the sink. *)
  source (route : Trace.Sink.t);
  (* Join: flush partial batches, let the pool finish in-flight drains
     (awaiting helps), then take each shard's drain flag and finish its
     queue inline. After every queue is empty the fact board is final;
     one more poll per shard delivers the cross-shard stragglers. *)
  Array.iter flush shs;
  List.iter (Pool.await pool) !promises;
  Array.iter
    (fun sh ->
      while not (Atomic.compare_and_set sh.busy false true) do
        Domain.cpu_relax ()
      done;
      (* Keep [busy]: the merge below is the sole owner from here on. *)
      drain_loop board sh)
    shs;
  Array.iter (fun sh -> poll_facts board sh) shs;
  (* Merge. *)
  let merge () =
    Array.iter
      (fun sh ->
        (match sh.engine with
        | Some eng ->
            Array.iter
              (function Some txn -> Online.close eng txn | None -> ())
              sh.current;
            sh.current <- [||];
            Online.finalize eng
        | None -> ());
        sh.client.cl_finish ())
      shs;
    let merge_tagged per_shard =
      Array.to_list per_shard
      |> List.concat_map List.rev
      |> List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map snd
    in
    let races = merge_tagged (Array.map (fun (sh : shard) -> sh.races) shs) in
    let lockset_races =
      if lockset then
        Some (merge_tagged (Array.map (fun (sh : shard) -> sh.ls_races) shs))
      else None
    in
    let violations =
      Array.to_list shs
      |> List.concat_map (fun sh -> sh.auto_viols)
      |> List.sort (fun (a : Online.viol) (b : Online.viol) ->
             Int.compare a.vseq b.vseq)
      |> List.map (fun (v : Online.viol) ->
             {
               Automaton.tid = v.vtid;
               loc = v.vloc;
               op = v.vop;
               mover = v.vmover;
               cause = v.vcause;
             })
    in
    let deadlock =
      match shs.(0).dl with Some a -> Some (Analysis.finalize a) | None -> None
    in
    {
      races;
      racy = Coop_race.Report.racy_vars races;
      violations;
      lockset_races;
      deadlock;
      events = !seq;
      messages = !messages;
      broadcasts = !broadcasts;
    }
  in
  let out =
    if obs then Coop_obs.span "sharded/merge" merge else merge ()
  in
  if obs then begin
    Coop_obs.count "sharded/events" !seq;
    Coop_obs.count "sharded/messages" !messages;
    Coop_obs.count "sharded/broadcast" !broadcasts;
    if !messages > 0 then
      Coop_obs.gauge "sharded/broadcast_ratio"
        (float_of_int !broadcasts /. float_of_int !messages);
    Array.iter
      (fun sh ->
        Coop_obs.count
          (Printf.sprintf "sharded/events/s%d" sh.sid)
          sh.events_seen)
      shs
  end;
  out
