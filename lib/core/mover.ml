open Coop_trace

type t =
  | Right
  | Left
  | Both
  | Non

let classify_pred ?(local_locks = fun _ -> false) ~racy (op : Event.op) =
  match op with
  | Event.Read v | Event.Write v -> if racy v then Some Non else Some Both
  | Event.Acquire l -> if local_locks l then Some Both else Some Right
  | Event.Release l -> if local_locks l then Some Both else Some Left
  | Event.Fork _ -> Some Right
  | Event.Join _ -> Some Left
  | Event.Out _ -> Some Both
  | Event.Yield | Event.Enter _ | Event.Exit _ | Event.Atomic_begin
  | Event.Atomic_end ->
      None

let classify ?local_locks ~racy op =
  classify_pred ?local_locks ~racy:(fun v -> Event.Var_set.mem v racy) op

let to_string = function
  | Right -> "right-mover"
  | Left -> "left-mover"
  | Both -> "both-mover"
  | Non -> "non-mover"

let pp ppf t = Format.pp_print_string ppf (to_string t)
