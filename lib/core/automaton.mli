(** The per-thread transaction automaton.

    Between two yields, a thread's operations must form a reducible
    transaction: a prefix of right/both movers, at most one non mover (the
    commit point), then a suffix of left/both movers —
    [(R|B)* (N | L) (L|B)*] in regular-expression form. The automaton tracks
    each thread's phase:

    - {b Pre} (pre-commit): still accumulating right/both movers;
    - {b Post} (post-commit): a non mover or left mover has occurred; only
      left/both movers may follow until the next yield.

    A right or non mover in the Post phase is a {b cooperability violation}:
    the preemptive execution at this point cannot be reduced to a
    cooperative one, and a yield annotation is needed before the offending
    operation. After reporting, the automaton resets to Pre — exactly as if
    the missing yield had been present — so one run reports every missing
    yield location. *)

open Coop_trace

type phase =
  | Pre  (** Accumulating right movers. *)
  | Post  (** After the commit point. *)

type violation = {
  tid : int;  (** Offending thread. *)
  loc : Loc.t;  (** Location needing a yield before it. *)
  op : Event.op;  (** The offending operation. *)
  mover : Mover.t;  (** Its mover class ([Right] or [Non]). *)
  cause : Online.cause option;
      (** The commit point this violation is blamed on — the (N|L) op
          that put the thread in Post. Identical across the two-pass,
          online and sharded paths (the differential suite pins it). *)
}

type t
(** Mutable automaton state for all threads. *)

val create : unit -> t
(** All threads start in [Pre]. *)

val phase : t -> int -> phase
(** Current phase of a thread (Pre if never seen). *)

val step :
  ?local_locks:(int -> bool) ->
  t ->
  racy:Event.Var_set.t ->
  Event.t ->
  violation option
(** Advance by one event. Returns the violation this event causes, if any.
    [Yield] resets the thread to [Pre]. [local_locks] is forwarded to
    {!Mover.classify}. *)

val violations : t -> violation list
(** All violations so far, in order. *)

val analysis :
  ?local_locks:(int -> bool) ->
  racy:Event.Var_set.t ->
  unit ->
  violation list Analysis.t
(** A fresh automaton as a single-pass online analysis. The racy set and
    [local_locks] must be final knowledge (from a completed race/lock
    pass), which is why the fused pipeline runs this in its second
    streaming phase. *)

val online_analysis :
  ?mark:float ref ->
  interner:Interner.t ->
  subscribe:Online.subscribe ->
  unit ->
  violation list Analysis.t
(** The single-pass counterpart of {!analysis}: no prior racy set —
    knowledge streams in through [subscribe] (see {!Online}) while the
    events flow, and the {!Online} engine repairs affected transactions
    when a fact arrives late. Finalizes to exactly the violations
    {!analysis} would report under the final racy set and lock
    knowledge, in trace order. [interner] must be the chain's shared
    interner — the same one the publishing race detector uses — and
    every event must be noted on it upstream ({!Interner.analysis}).
    [mark] as in {!Online.create}. Snapshottable via
    {!Analysis.snapshot} / {!Analysis.resume}: the packet deep-copies
    the engine, the open-transaction slots, the accumulator {e and} the
    shared interner, so resuming restores the whole fused stack's id
    space consistently. *)

val pp_violation : Format.formatter -> violation -> unit
(** Human-readable description, e.g.
    ["t2 needs a yield before wr(g0) at f1:pc7(line 12) (non-mover in post-commit)"]. *)
