open Coop_trace

type phase =
  | Pre
  | Post

type violation = {
  tid : int;
  loc : Loc.t;
  op : Event.op;
  mover : Mover.t;
  cause : Online.cause option;
}

(* Per-thread phase plus the commit point of the current Post phase,
   mirroring the engine's per-transaction fields (cm_seq = 0 = none) so
   both paths blame violations on the same op. *)
type tstate = {
  mutable ph : phase;
  mutable cm_seq : int;
  mutable cm_loc : Loc.t;
  mutable cm_op : Event.op;
  mutable cm_mover : Mover.t;
}

type t = {
  threads : (int, tstate) Hashtbl.t;
  mutable seq : int;  (* 1-based global position; counts every step call *)
  mutable violations : violation list;  (* reversed *)
}

let create () = { threads = Hashtbl.create 8; seq = 0; violations = [] }

let tstate t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some st -> st
  | None ->
      let st =
        { ph = Pre; cm_seq = 0; cm_loc = Loc.none; cm_op = Event.Yield;
          cm_mover = Mover.Both }
      in
      Hashtbl.add t.threads tid st;
      st

let phase t tid =
  match Hashtbl.find_opt t.threads tid with Some st -> st.ph | None -> Pre

let step ?local_locks t ~racy (e : Event.t) =
  t.seq <- t.seq + 1;
  match e.op with
  | Event.Yield ->
      let st = tstate t e.tid in
      st.ph <- Pre;
      st.cm_seq <- 0;
      None
  | op -> (
      match Mover.classify ?local_locks ~racy op with
      | None -> None
      | Some m -> (
          let st = tstate t e.tid in
          match (st.ph, m) with
          | Pre, (Mover.Right | Mover.Both) -> None
          | Pre, ((Mover.Non | Mover.Left) as m) ->
              (* The commit point of this transaction. *)
              st.ph <- Post;
              st.cm_seq <- t.seq;
              st.cm_loc <- e.loc;
              st.cm_op <- op;
              st.cm_mover <- m;
              None
          | Post, (Mover.Left | Mover.Both) -> None
          | Post, ((Mover.Right | Mover.Non) as m) ->
              (* Irreducible: a yield is missing right before this
                 operation. Reset as if it had been there. *)
              let cause =
                if st.cm_seq > 0 then
                  Some
                    { Online.cseq = st.cm_seq; cloc = st.cm_loc;
                      cop = st.cm_op; cmover = st.cm_mover }
                else None
              in
              let v = { tid = e.tid; loc = e.loc; op; mover = m; cause } in
              t.violations <- v :: t.violations;
              (match m with
              | Mover.Right ->
                  st.ph <- Pre;
                  st.cm_seq <- 0
              | Mover.Non -> st.ph <- Post
              | _ -> assert false);
              Some v))

let violations t = List.rev t.violations

let analysis ?local_locks ~racy () =
  let t = create () in
  Analysis.make
    ~step:(fun e -> ignore (step ?local_locks t ~racy e))
    ~finalize:(fun () -> violations t)

(* Checkpoint of the online driver: the engine (live transactions keyed
   by uid), the retired-violation accumulator, the open-transaction slot
   per dense tid (as uids) and the position counter. The interner rides
   along so the whole fused stack restores consistently even when this
   component is resumed first. *)
type online_snapshot = {
  os_itn : Interner.snapshot;
  os_eng : unit Online.snapshot;
  os_acc : Online.viol list;
  os_cur : int array;  (* dense tid -> open txn uid, -1 = none *)
  os_seq : int;
}

let online_key : online_snapshot Analysis.Key.t =
  Analysis.Key.create "automaton-online"

(* Single-pass variant: each thread's yield-to-yield segment becomes one
   engine transaction, classified optimistically and repaired when facts
   arrive. Per-transaction machines starting in Pre are equivalent to the
   one whole-thread machine above because Yield resets it to Pre. *)
let online_analysis ?mark ~interner ~subscribe () =
  let acc : Online.viol list ref = ref [] in
  let engine =
    Online.create ?mark ~interner
      ~on_retire:(fun txn -> acc := List.rev_append (Online.violations txn) !acc)
      ()
  in
  subscribe (Online.on_fact engine);
  (* dense tid -> open transaction; None between a yield and the next op *)
  let current : unit Online.txn option array ref = ref (Array.make 8 None) in
  let slot tid =
    if tid >= Array.length !current then begin
      let bigger = Array.make (max (tid + 1) (2 * Array.length !current)) None in
      Array.blit !current 0 bigger 0 (Array.length !current);
      current := bigger
    end;
    !current.(tid)
  in
  let seq = ref 0 in
  let step (e : Event.t) =
    incr seq;
    let tid = Interner.cur_tid interner in
    match e.op with
    | Event.Yield -> (
        match slot tid with
        | Some txn ->
            Online.close engine txn;
            !current.(tid) <- None
        | None -> ())
    | _ ->
        let txn =
          match slot tid with
          | Some txn -> txn
          | None ->
              let txn = Online.open_txn engine ~tid:e.tid ~data:() in
              !current.(tid) <- Some txn;
              txn
        in
        Online.step engine txn ~seq:!seq e
  in
  let finalize () =
    Array.iter
      (function Some txn -> Online.close engine txn | None -> ())
      !current;
    current := [||];
    Online.finalize engine;
    List.sort
      (fun (a : Online.viol) (b : Online.viol) -> compare a.vseq b.vseq)
      !acc
    |> List.map (fun (v : Online.viol) ->
           { tid = v.vtid; loc = v.vloc; op = v.vop; mover = v.vmover;
             cause = v.vcause })
  in
  let save () =
    let roots =
      Array.to_list !current |> List.filter_map (fun slot -> slot)
    in
    {
      os_itn = Interner.snapshot interner;
      os_eng = Online.snapshot ~roots engine;
      os_acc = !acc;
      os_cur =
        Array.map
          (function Some txn -> Online.txn_uid txn | None -> -1)
          !current;
      os_seq = !seq;
    }
  in
  let load s =
    Interner.restore interner s.os_itn;
    let tbl = Online.restore engine s.os_eng in
    acc := s.os_acc;
    seq := s.os_seq;
    current :=
      Array.map
        (fun uid -> if uid < 0 then None else Hashtbl.find_opt tbl uid)
        s.os_cur
  in
  Analysis.snapshottable ~key:online_key ~save ~load
    (Analysis.make ~step ~finalize)

let pp_violation ppf v =
  Format.fprintf ppf "t%d needs a yield before %a at %a (%a in post-commit)"
    v.tid Event.pp_op v.op Loc.pp v.loc Mover.pp v.mover
