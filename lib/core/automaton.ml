open Coop_trace

type phase =
  | Pre
  | Post

type violation = {
  tid : int;
  loc : Loc.t;
  op : Event.op;
  mover : Mover.t;
}

type t = {
  phases : (int, phase) Hashtbl.t;
  mutable violations : violation list;  (* reversed *)
}

let create () = { phases = Hashtbl.create 8; violations = [] }

let phase t tid =
  match Hashtbl.find_opt t.phases tid with Some p -> p | None -> Pre

let set t tid p = Hashtbl.replace t.phases tid p

let step ?local_locks t ~racy (e : Event.t) =
  match e.op with
  | Event.Yield ->
      set t e.tid Pre;
      None
  | op -> (
      match Mover.classify ?local_locks ~racy op with
      | None -> None
      | Some m -> (
          match (phase t e.tid, m) with
          | Pre, (Mover.Right | Mover.Both) -> None
          | Pre, (Mover.Non | Mover.Left) ->
              (* The commit point of this transaction. *)
              set t e.tid Post;
              None
          | Post, (Mover.Left | Mover.Both) -> None
          | Post, ((Mover.Right | Mover.Non) as m) ->
              (* Irreducible: a yield is missing right before this
                 operation. Reset as if it had been there. *)
              let v = { tid = e.tid; loc = e.loc; op; mover = m } in
              t.violations <- v :: t.violations;
              (match m with
              | Mover.Right -> set t e.tid Pre
              | Mover.Non -> set t e.tid Post
              | _ -> assert false);
              Some v))

let violations t = List.rev t.violations

let analysis ?local_locks ~racy () =
  let t = create () in
  Analysis.make
    ~step:(fun e -> ignore (step ?local_locks t ~racy e))
    ~finalize:(fun () -> violations t)

let pp_violation ppf v =
  Format.fprintf ppf "t%d needs a yield before %a at %a (%a in post-commit)"
    v.tid Event.pp_op v.op Loc.pp v.loc Mover.pp v.mover
