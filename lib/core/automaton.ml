open Coop_trace

type phase =
  | Pre
  | Post

type violation = {
  tid : int;
  loc : Loc.t;
  op : Event.op;
  mover : Mover.t;
}

type t = {
  phases : (int, phase) Hashtbl.t;
  mutable violations : violation list;  (* reversed *)
}

let create () = { phases = Hashtbl.create 8; violations = [] }

let phase t tid =
  match Hashtbl.find_opt t.phases tid with Some p -> p | None -> Pre

let set t tid p = Hashtbl.replace t.phases tid p

let step ?local_locks t ~racy (e : Event.t) =
  match e.op with
  | Event.Yield ->
      set t e.tid Pre;
      None
  | op -> (
      match Mover.classify ?local_locks ~racy op with
      | None -> None
      | Some m -> (
          match (phase t e.tid, m) with
          | Pre, (Mover.Right | Mover.Both) -> None
          | Pre, (Mover.Non | Mover.Left) ->
              (* The commit point of this transaction. *)
              set t e.tid Post;
              None
          | Post, (Mover.Left | Mover.Both) -> None
          | Post, ((Mover.Right | Mover.Non) as m) ->
              (* Irreducible: a yield is missing right before this
                 operation. Reset as if it had been there. *)
              let v = { tid = e.tid; loc = e.loc; op; mover = m } in
              t.violations <- v :: t.violations;
              (match m with
              | Mover.Right -> set t e.tid Pre
              | Mover.Non -> set t e.tid Post
              | _ -> assert false);
              Some v))

let violations t = List.rev t.violations

let analysis ?local_locks ~racy () =
  let t = create () in
  Analysis.make
    ~step:(fun e -> ignore (step ?local_locks t ~racy e))
    ~finalize:(fun () -> violations t)

(* Single-pass variant: each thread's yield-to-yield segment becomes one
   engine transaction, classified optimistically and repaired when facts
   arrive. Per-transaction machines starting in Pre are equivalent to the
   one whole-thread machine above because Yield resets it to Pre. *)
let online_analysis ?mark ~interner ~subscribe () =
  let acc : Online.viol list ref = ref [] in
  let engine =
    Online.create ?mark ~interner
      ~on_retire:(fun txn -> acc := List.rev_append (Online.violations txn) !acc)
      ()
  in
  subscribe (Online.on_fact engine);
  (* dense tid -> open transaction; None between a yield and the next op *)
  let current : unit Online.txn option array ref = ref (Array.make 8 None) in
  let slot tid =
    if tid >= Array.length !current then begin
      let bigger = Array.make (max (tid + 1) (2 * Array.length !current)) None in
      Array.blit !current 0 bigger 0 (Array.length !current);
      current := bigger
    end;
    !current.(tid)
  in
  let seq = ref 0 in
  let step (e : Event.t) =
    incr seq;
    let tid = Interner.cur_tid interner in
    match e.op with
    | Event.Yield -> (
        match slot tid with
        | Some txn ->
            Online.close engine txn;
            !current.(tid) <- None
        | None -> ())
    | _ ->
        let txn =
          match slot tid with
          | Some txn -> txn
          | None ->
              let txn = Online.open_txn engine ~tid:e.tid ~data:() in
              !current.(tid) <- Some txn;
              txn
        in
        Online.step engine txn ~seq:!seq e
  in
  let finalize () =
    Array.iter
      (function Some txn -> Online.close engine txn | None -> ())
      !current;
    current := [||];
    Online.finalize engine;
    List.sort
      (fun (a : Online.viol) (b : Online.viol) -> compare a.vseq b.vseq)
      !acc
    |> List.map (fun (v : Online.viol) ->
           { tid = v.vtid; loc = v.vloc; op = v.vop; mover = v.vmover })
  in
  Analysis.make ~step ~finalize

let pp_violation ppf v =
  Format.fprintf ppf "t%d needs a yield before %a at %a (%a in post-commit)"
    v.tid Event.pp_op v.op Loc.pp v.loc Mover.pp v.mover
