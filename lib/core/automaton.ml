open Coop_trace

type phase =
  | Pre
  | Post

type violation = {
  tid : int;
  loc : Loc.t;
  op : Event.op;
  mover : Mover.t;
}

type t = {
  phases : (int, phase) Hashtbl.t;
  mutable violations : violation list;  (* reversed *)
}

let create () = { phases = Hashtbl.create 8; violations = [] }

let phase t tid =
  match Hashtbl.find_opt t.phases tid with Some p -> p | None -> Pre

let set t tid p = Hashtbl.replace t.phases tid p

let step ?local_locks t ~racy (e : Event.t) =
  match e.op with
  | Event.Yield ->
      set t e.tid Pre;
      None
  | op -> (
      match Mover.classify ?local_locks ~racy op with
      | None -> None
      | Some m -> (
          match (phase t e.tid, m) with
          | Pre, (Mover.Right | Mover.Both) -> None
          | Pre, (Mover.Non | Mover.Left) ->
              (* The commit point of this transaction. *)
              set t e.tid Post;
              None
          | Post, (Mover.Left | Mover.Both) -> None
          | Post, ((Mover.Right | Mover.Non) as m) ->
              (* Irreducible: a yield is missing right before this
                 operation. Reset as if it had been there. *)
              let v = { tid = e.tid; loc = e.loc; op; mover = m } in
              t.violations <- v :: t.violations;
              (match m with
              | Mover.Right -> set t e.tid Pre
              | Mover.Non -> set t e.tid Post
              | _ -> assert false);
              Some v))

let violations t = List.rev t.violations

let analysis ?local_locks ~racy () =
  let t = create () in
  Analysis.make
    ~step:(fun e -> ignore (step ?local_locks t ~racy e))
    ~finalize:(fun () -> violations t)

(* Single-pass variant: each thread's yield-to-yield segment becomes one
   engine transaction, classified optimistically and repaired when facts
   arrive. Per-transaction machines starting in Pre are equivalent to the
   one whole-thread machine above because Yield resets it to Pre. *)
let online_analysis ?mark ~subscribe () =
  let acc : Online.viol list ref = ref [] in
  let engine =
    Online.create ?mark
      ~on_retire:(fun txn -> acc := List.rev_append (Online.violations txn) !acc)
      ()
  in
  subscribe (Online.on_fact engine);
  let current : (int, unit Online.txn) Hashtbl.t = Hashtbl.create 8 in
  let seq = ref 0 in
  let step (e : Event.t) =
    incr seq;
    match e.op with
    | Event.Yield -> (
        match Hashtbl.find_opt current e.tid with
        | Some txn ->
            Online.close engine txn;
            Hashtbl.remove current e.tid
        | None -> ())
    | _ ->
        let txn =
          match Hashtbl.find_opt current e.tid with
          | Some txn -> txn
          | None ->
              let txn = Online.open_txn engine ~tid:e.tid ~data:() in
              Hashtbl.add current e.tid txn;
              txn
        in
        Online.step engine txn ~seq:!seq e
  in
  let finalize () =
    Hashtbl.iter (fun _ txn -> Online.close engine txn) current;
    Hashtbl.reset current;
    Online.finalize engine;
    List.sort
      (fun (a : Online.viol) (b : Online.viol) -> compare a.vseq b.vseq)
      !acc
    |> List.map (fun (v : Online.viol) ->
           { tid = v.vtid; loc = v.vloc; op = v.vop; mover = v.vmover })
  in
  Analysis.make ~step ~finalize

let pp_violation ppf v =
  Format.fprintf ppf "t%d needs a yield before %a at %a (%a in post-commit)"
    v.tid Event.pp_op v.op Loc.pp v.loc Mover.pp v.mover
