open Coop_trace

type result = {
  violations : Automaton.violation list;
  races : Coop_race.Report.t list;
  racy : Event.Var_set.t;
  events : int;
}

(* A lock is thread-local when at most one thread ever acquires it. The
   ownership table is a flat array over dense lock ids: [unseen] before
   the first touch, [shared] once two threads have touched the lock, the
   owning dense tid otherwise. *)
let unseen = -1

let shared = -2

let local_locks_analysis ?interner () =
  let own_interner = interner = None in
  let itn = match interner with Some itn -> itn | None -> Interner.create () in
  let owners = ref (Array.make 8 unseen) in
  Analysis.make
    ~step:(fun (e : Event.t) ->
      if own_interner then Interner.note itn e;
      match e.op with
      | Event.Acquire _ | Event.Release _ ->
          let l = Interner.cur_operand itn in
          if l >= Array.length !owners then begin
            let bigger =
              Array.make (max (l + 1) (2 * Array.length !owners)) unseen
            in
            Array.blit !owners 0 bigger 0 (Array.length !owners);
            owners := bigger
          end;
          let o = !owners.(l) in
          if o = unseen then !owners.(l) <- Interner.cur_tid itn
          else if o >= 0 && o <> Interner.cur_tid itn then !owners.(l) <- shared
      | _ -> ())
    ~finalize:(fun () l ->
      let id = Interner.find_lock itn l in
      id >= 0 && id < Array.length !owners && !owners.(id) >= 0)

let local_locks_of trace = Analysis.run (local_locks_analysis ()) trace

let check_with_racy ?local_locks ~racy trace =
  Analysis.run (Automaton.analysis ?local_locks ~racy ()) trace

(* The two-pass reference oracle: phase 1 fuses the race detector with
   the thread-local-lock scan (one dispatch per event); phase 2
   re-streams the source through the transaction automaton with the
   now-final racy set. Nothing is materialized, so memory stays
   O(threads·vars) — but the source is executed twice, which doubles the
   dynamic-analysis cost per inferred schedule and rules out
   non-replayable sources (pipes). *)
let check_two_pass ?(witness = false) source =
  let mark = ref 0. in
  let instr name a =
    Analysis.instrument ~mark ~name:("checker/" ^ name) a
  in
  (* One interner serves the fused phase-1 chain: the note stage interns
     each event's operands once, and both checkers index by the ids. *)
  let itn = Interner.create () in
  let phase1 =
    Analysis.instrument_phase ~name:"analysis/phase1" ~mark
      (Analysis.chain
         (instr "intern" (Interner.analysis itn))
         (Analysis.chain
            (instr "fasttrack"
               (Coop_race.Fasttrack.analysis ~interner:itn ~witness ()))
            (Analysis.chain
               (instr "local_locks" (local_locks_analysis ~interner:itn ()))
               (Analysis.count ()))))
  in
  let (), (races, (local_locks, events)) = Source.run source phase1 in
  let racy = Coop_race.Report.racy_vars races in
  let violations =
    Source.run source
      (Analysis.instrument_phase ~name:"analysis/phase2" ~mark
         (instr "automaton" (Automaton.analysis ~local_locks ~racy ())))
  in
  { violations; races; racy; events }

(* The single-pass engine: the race detector publishes racy-variable and
   shared-lock facts into the automaton as they are discovered, and the
   automaton classifies optimistically, repairing the affected
   transactions on late facts (see [Online]). One streaming pass total —
   the source is consumed exactly once, so pipes work and inference pays
   one execution per schedule. *)
let online_chain ?(witness = false) ~mark () =
  let instr name a =
    Analysis.instrument ~mark ~name:("checker/" ^ name) a
  in
  (* The shared interner of the fused chain: the head stage notes each
     event once; detector and engine read the dense ids, and the fact
     channel speaks in those ids. *)
  let itn = Interner.create () in
  Analysis.instrument_phase ~name:"analysis/online" ~mark
    (Analysis.chain
       (instr "intern" (Interner.analysis itn))
       (Analysis.feedback
          (fun ~publish ->
            Analysis.chain
              (instr "fasttrack"
                 (Coop_race.Fasttrack.analysis ~interner:itn ~witness
                    ~facts:(Online.facts publish) ()))
              (Analysis.count ()))
          (fun ~subscribe ->
            instr "automaton"
              (Automaton.online_analysis ~mark ~interner:itn ~subscribe ()))))

let result_of ((), ((races, events), violations)) =
  { violations; races; racy = Coop_race.Report.racy_vars races; events }

(* Every component of the online chain — interner, detector, event
   counter, engine-backed automaton — is snapshottable, so the mapped
   analysis is too; replay elision leans on that to park a shared
   prefix once and resume it per schedule. *)
let online_analysis ?witness () =
  Analysis.map result_of (online_chain ?witness ~mark:(ref 0.) ())

let check_sharded ?witness ~shards source =
  let o = Sharded.run ?witness ~shards source in
  {
    violations = o.Sharded.violations;
    races = o.Sharded.races;
    racy = o.Sharded.racy;
    events = o.Sharded.events;
  }

let check_source ?(two_pass = false) ?shards ?witness source =
  let shards =
    match shards with Some k -> k | None -> Sharded.default_shards ()
  in
  if two_pass then check_two_pass ?witness source
  else if shards > 1 then check_sharded ?witness ~shards source
  else result_of (Source.run source (online_chain ?witness ~mark:(ref 0.) ()))

let check ?two_pass ?shards ?witness trace =
  check_source ?two_pass ?shards ?witness (Source.of_trace trace)

let violation_locs vs =
  List.fold_left
    (fun s (v : Automaton.violation) -> Loc.Set.add v.Automaton.loc s)
    Loc.Set.empty vs

let cooperable r = r.violations = []

let online () =
  let a = online_chain ~mark:(ref 0.) () in
  (Analysis.sink a, fun () -> result_of (Analysis.finalize a))
