open Coop_trace

type result = {
  violations : Automaton.violation list;
  races : Coop_race.Report.t list;
  racy : Event.Var_set.t;
  events : int;
}

(* A lock is thread-local when at most one thread ever acquires it. *)
let local_locks_analysis () =
  let owners = Hashtbl.create 8 in
  Analysis.make
    ~step:(fun (e : Event.t) ->
      match e.op with
      | Event.Acquire l | Event.Release l -> (
          match Hashtbl.find_opt owners l with
          | None -> Hashtbl.add owners l (Some e.tid)
          | Some (Some t) when t = e.tid -> ()
          | Some (Some _) -> Hashtbl.replace owners l None
          | Some None -> ())
      | _ -> ())
    ~finalize:(fun () l ->
      match Hashtbl.find_opt owners l with Some (Some _) -> true | _ -> false)

let local_locks_of trace = Analysis.run (local_locks_analysis ()) trace

let check_with_racy ?local_locks ~racy trace =
  Analysis.run (Automaton.analysis ?local_locks ~racy ()) trace

(* The two-pass reference oracle: phase 1 fuses the race detector with
   the thread-local-lock scan (one dispatch per event); phase 2
   re-streams the source through the transaction automaton with the
   now-final racy set. Nothing is materialized, so memory stays
   O(threads·vars) — but the source is executed twice, which doubles the
   dynamic-analysis cost per inferred schedule and rules out
   non-replayable sources (pipes). *)
let check_two_pass source =
  let mark = ref 0. in
  let instr name a =
    Analysis.instrument ~mark ~name:("checker/" ^ name) a
  in
  let phase1 =
    Analysis.instrument_phase ~name:"analysis/phase1" ~mark
      (Analysis.chain
         (instr "fasttrack" (Coop_race.Fasttrack.analysis ()))
         (Analysis.chain
            (instr "local_locks" (local_locks_analysis ()))
            (Analysis.count ())))
  in
  let races, (local_locks, events) = Source.run source phase1 in
  let racy = Coop_race.Report.racy_vars races in
  let violations =
    Source.run source
      (Analysis.instrument_phase ~name:"analysis/phase2" ~mark
         (instr "automaton" (Automaton.analysis ~local_locks ~racy ())))
  in
  { violations; races; racy; events }

(* The single-pass engine: the race detector publishes racy-variable and
   shared-lock facts into the automaton as they are discovered, and the
   automaton classifies optimistically, repairing the affected
   transactions on late facts (see [Online]). One streaming pass total —
   the source is consumed exactly once, so pipes work and inference pays
   one execution per schedule. *)
let online_chain ~mark () =
  let instr name a =
    Analysis.instrument ~mark ~name:("checker/" ^ name) a
  in
  Analysis.instrument_phase ~name:"analysis/online" ~mark
    (Analysis.feedback
       (fun ~publish ->
         Analysis.chain
           (instr "fasttrack"
              (Coop_race.Fasttrack.analysis ~facts:(Online.facts publish) ()))
           (Analysis.count ()))
       (fun ~subscribe ->
         instr "automaton" (Automaton.online_analysis ~mark ~subscribe ())))

let result_of ((races, events), violations) =
  { violations; races; racy = Coop_race.Report.racy_vars races; events }

let check_source ?(two_pass = false) source =
  if two_pass then check_two_pass source
  else result_of (Source.run source (online_chain ~mark:(ref 0.) ()))

let check ?two_pass trace = check_source ?two_pass (Source.of_trace trace)

let violation_locs vs =
  List.fold_left
    (fun s (v : Automaton.violation) -> Loc.Set.add v.Automaton.loc s)
    Loc.Set.empty vs

let cooperable r = r.violations = []

let online () =
  let a = online_chain ~mark:(ref 0.) () in
  (Analysis.sink a, fun () -> result_of (Analysis.finalize a))
