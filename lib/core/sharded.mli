(** Ownership-sharded single-trace analysis.

    One trace, K engines: a router interns each event once and partitions
    the stream by {e ownership} of the interned operand — variable and
    lock ids route to shard [id mod K] ({!Interner.owner}), thread ids
    likewise for the per-thread transaction engines. Each shard runs its
    own FastTrack detector and {!Online} engine over flat arrays indexed
    by the global dense-id space, of which it only ever touches its own
    congruence class — disjoint ranges, no sharing, no locks on the
    per-event path.

    {b Clock-sync broadcast.} Synchronization events (acquire, release,
    fork, join) update thread clocks, which every shard reads when it
    checks an access it owns. They are therefore broadcast: every shard
    applies the same deterministic clock updates to its private copies of
    all thread and lock clocks, so at each point of its sub-stream a
    shard's clocks agree exactly with the sequential detector's. Accesses
    — the bulk of a trace — are routed only to their owner, which is
    where the speedup comes from. Lock-ownership facts are published by
    the lock's owner shard alone, so each fact still fires exactly once.

    {b Fact gossip and merge.} Racy-variable and shared-lock facts are
    published to a shared board; shards poll it at batch boundaries and
    feed cross-shard facts into their engines (which repair parked
    transactions, exactly as for late facts in the sequential engine).
    The final result does not depend on delivery timing — only on every
    fact being delivered before an engine finalizes, which the join
    guarantees — so the merge reproduces the sequential fused engine's
    output: races in trace order (per-report global sequence tags),
    violations sorted by global position, the same racy set.

    {b Scheduling.} Shards drain bounded batch queues as
    {!Coop_util.Pool} tasks, so sharded analysis composes with
    schedule-level parallelism. The router never blocks: when a queue is
    over its bound and no drainer is active it takes the shard's drain
    flag and processes batches inline — on a single-domain pool the whole
    analysis degrades to sequential draining with routing overhead, and
    no configuration can deadlock (the drain flag is only ever held by
    running code).

    K = 1 is deliberately {e not} special-cased into the sequential
    engine here: callers ({!Cooperability.check_source},
    [Coop_pipeline.run]) treat [shards = 1] as "today's engine", which
    remains the differential oracle for this module. *)

open Coop_trace

(** {1 Per-shard clients}

    Checkers that live outside [coop_core] (the Atomizer baseline, the
    conflict-graph analysis) plug into the shard drain loop through a
    client record, one per shard. Both step callbacks receive a {e
    scratch} event — valid only during the call — after the shard's shim
    interner has been set ({!Interner.set_cur}), so [~interner] checkers
    work unchanged. *)

type client = {
  cl_engine_step : seq:int -> Event.t -> unit;
      (** Called for every event owned by this shard's threads (the
          per-thread engine sub-stream: accesses, lock ops, fork/join,
          yield, enter/exit, atomic begin/end of threads with
          [dtid mod K = shard]). [seq] is the event's global position. *)
  cl_aux_step : seq:int -> Event.t -> unit;
      (** Shard 0 only, when the run was built with [~aux_access:true]:
          every access and enter/exit event of the whole trace, in global
          order — the stream a globally-ordered auxiliary analysis (the
          conflict graph) needs. *)
  cl_fact : Online.fact -> unit;
      (** A racy-variable / shared-lock fact (local discovery or
          cross-shard gossip). May be delivered more than once; engines
          already dedupe. *)
  cl_finish : unit -> unit;
      (** Called at merge time, on the joining domain, after all events
          and facts are in. Store the shard's contribution somewhere the
          caller can merge. *)
}

val null_client : client
(** Ignores everything. *)

val combine_clients : client -> client -> client
(** Both clients see every callback, first argument first. *)

(** {1 Running} *)

type outcome = {
  races : Coop_race.Report.t list;  (** Merged, in global trace order. *)
  racy : Event.Var_set.t;
  violations : Automaton.violation list;
      (** Merged and sorted by global position; [[]] when the run was
          built with [~automaton:false]. *)
  lockset_races : Coop_race.Report.t list option;
      (** Merged Eraser warnings, when [~lockset:true]. *)
  deadlock : Deadlock.result option;  (** When [~deadlock:true]. *)
  events : int;  (** Stream length, counted at the router. *)
  messages : int;
      (** Routed messages, counted at the router: one per (event, shard)
          delivery, so [messages >= events] and the excess is replication
          traffic. *)
  broadcasts : int;
      (** Extra copies created by clock-sync broadcast (sync events go to
          all K shards: K-1 extras each). [broadcasts / messages] is the
          replication ratio the scaling bench reports per row. *)
}

val default_shards : unit -> int
(** The [COOP_SHARDS] environment variable if it parses to a positive
    integer, else [1] (the sequential engine). CLIs validate the
    variable up front with {!Coop_util.Pool.parse_jobs} and exit 2 on
    garbage, mirroring [COOP_JOBS]; the library itself stays tolerant. *)

val run :
  ?pool:Coop_util.Pool.t ->
  ?automaton:bool ->
  ?lockset:bool ->
  ?deadlock:bool ->
  ?aux_access:bool ->
  ?witness:bool ->
  ?client:(shard:int -> interner:Interner.t -> client) ->
  shards:int ->
  Source.t ->
  outcome
(** Drive the source through the router once and merge the per-shard
    results. [pool] defaults to {!Coop_util.Pool.shared}[ ()];
    [automaton] (default [true]) runs the cooperability transaction
    engine on each shard; [lockset] / [deadlock] (default [false]) add
    the Eraser baseline (per-shard) and the lock-order scan (shard 0);
    [aux_access] (default [false]) routes all accesses and enter/exit
    events to shard 0 for the clients' [cl_aux_step]; [witness] (default
    [false]) makes every race report carry provenance — the router
    injects true global positions into each shard's detectors
    ({!Coop_race.Fasttrack.set_seq}), so witnesses are byte-identical to
    the sequential detector's (the differential suite pins this).
    [client] builds one {!client} per shard around the shard's shim
    [interner]. Raises [Invalid_argument] when [shards < 1]. *)
