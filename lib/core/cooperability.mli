(** The cooperability checker: the paper's primary contribution.

    A recorded (or streamed) trace is checked in two passes:

    + a FastTrack race-detection pass computes the set of racy variables —
      the accesses that are non movers;
    + the per-thread transaction automaton replays the trace, checking that
      every inter-yield segment matches the reducible pattern
      [(R|B)* (N|L) (L|B)*].

    A trace with no violations witnesses that this execution is reducible:
    it is behaviourally equivalent to a cooperative execution of the same
    program. Violations name the exact locations where yields are
    missing. *)

open Coop_trace

type result = {
  violations : Automaton.violation list;  (** In program order. *)
  races : Coop_race.Report.t list;  (** From the race pass. *)
  racy : Event.Var_set.t;  (** Racy variables (non-mover accesses). *)
  events : int;  (** Trace length. *)
}

val check : Trace.t -> result
(** Full two-pass check of a recorded trace. Locks only ever acquired by a
    single thread in the trace are classified as both-movers (the
    thread-local-lock refinement). Thin wrapper over {!check_source}. *)

val check_source : Source.t -> result
(** The streaming core: phase 1 streams the source once through the fused
    race detector + thread-local-lock scan; phase 2 re-streams it through
    the transaction automaton with the final racy set. The trace is never
    materialized — memory is O(threads·vars) — so the source may be a
    serialized trace on disk or a deterministic re-execution of the
    program ([Runner.source]). Produces exactly the same result as
    {!check} on the recorded equivalent (property-tested). *)

val local_locks_of : Trace.t -> int -> bool
(** [local_locks_of tr] is the predicate of locks acquired by at most one
    thread over the whole trace. *)

val local_locks_analysis : unit -> (int -> bool) Analysis.t
(** The thread-local-lock scan as an online analysis; finalizes to the
    predicate {!local_locks_of} would compute. *)

val check_with_racy :
  ?local_locks:(int -> bool) ->
  racy:Event.Var_set.t ->
  Trace.t ->
  Automaton.violation list
(** Automaton pass only, with a given racy set (used when the racy set is
    already known, e.g. across inference rounds). [local_locks] defaults to
    treating every lock as shared. *)

val violation_locs : Automaton.violation list -> Loc.Set.t
(** Distinct locations named by violations — the candidate yield points. *)

val cooperable : result -> bool
(** No violations. *)

val online : unit -> Trace.Sink.t * (unit -> result)
(** A buffering online variant: a sink to attach to a single live run and
    a function to finish the analysis. Events are buffered internally
    (O(trace) memory) because the racy set is only complete at the end of
    the run. Prefer {!check_source} with a replayable source — it is the
    same two-phase structure without the buffer. *)
