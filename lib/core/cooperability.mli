(** The cooperability checker: the paper's primary contribution.

    A recorded (or streamed) trace is checked by combining a FastTrack
    race-detection pass — racy accesses are the non movers — with the
    per-thread transaction automaton, which checks that every inter-yield
    segment matches the reducible pattern [(R|B)* (N|L) (L|B)*].

    By default the two are fused into a {b single streaming pass}: the
    race detector publishes racy-variable and shared-lock facts the
    moment they are discovered, and the automaton classifies movers
    optimistically, repairing the affected transactions when a fact
    arrives late (see {!Online}). The historical {b two-pass} mode —
    learn the final racy set first, re-stream through the automaton
    second — is kept behind a flag as the reference oracle; the
    differential test suite pins the two modes to identical results.

    A trace with no violations witnesses that this execution is reducible:
    it is behaviourally equivalent to a cooperative execution of the same
    program. Violations name the exact locations where yields are
    missing. *)

open Coop_trace

type result = {
  violations : Automaton.violation list;  (** In program order. *)
  races : Coop_race.Report.t list;  (** From the race pass. *)
  racy : Event.Var_set.t;  (** Racy variables (non-mover accesses). *)
  events : int;  (** Trace length. *)
}

val check : ?two_pass:bool -> ?shards:int -> ?witness:bool -> Trace.t -> result
(** Full check of a recorded trace. Locks only ever touched by a single
    thread in the trace are classified as both-movers (the
    thread-local-lock refinement). Thin wrapper over {!check_source}. *)

val check_source :
  ?two_pass:bool -> ?shards:int -> ?witness:bool -> Source.t -> result
(** The streaming core. By default ([two_pass = false]) one fused pass:
    race detector, event counter and fact-fed transaction automaton
    chained over a single replay, so the source is consumed exactly once
    — it may be a serialized trace on disk, a deterministic re-execution
    of the program ([Runner.source]), or a {e non-replayable} pipe
    ([Source.of_channel]). With [~two_pass:true], the reference oracle:
    phase 1 streams the fused race detector + thread-local-lock scan,
    phase 2 re-streams the source through the automaton with the final
    racy set (requires a replayable source). Both modes avoid
    materializing the trace and produce identical results
    (property-tested); single-pass memory additionally holds the digests
    of transactions with unresolved optimistic assumptions.

    [shards] (default: {!Sharded.default_shards}, i.e. [COOP_SHARDS] or
    [1]) runs the fused single-pass engine ownership-sharded across that
    many {!Sharded} sub-engines; [1] is exactly today's sequential
    engine, which stays the differential oracle. Ignored in two-pass
    mode.

    [witness] (default [false]) makes every race report carry a
    {!Coop_race.Report.witness} — the two conflicting accesses and the
    clock evidence proving them unordered (see {!Coop_provenance}) —
    in all three modes, with identical witnesses across them (the
    differential suite pins it). Violations always carry their commit
    {!Online.cause}; the flag only gates the race detector's per-access
    side tables. *)

val local_locks_of : Trace.t -> int -> bool
(** [local_locks_of tr] is the predicate of locks acquired by at most one
    thread over the whole trace. *)

val local_locks_analysis : ?interner:Interner.t -> unit -> (int -> bool) Analysis.t
(** The thread-local-lock scan as an online analysis; finalizes to the
    predicate {!local_locks_of} would compute. Ownership lives in a flat
    array over dense lock ids; with [~interner] the scan shares a fused
    chain's interner (events must be noted upstream), without it it
    notes events itself. *)

val check_with_racy :
  ?local_locks:(int -> bool) ->
  racy:Event.Var_set.t ->
  Trace.t ->
  Automaton.violation list
(** Automaton pass only, with a given racy set (used when the racy set is
    already known, e.g. across inference rounds). [local_locks] defaults to
    treating every lock as shared. *)

val violation_locs : Automaton.violation list -> Loc.Set.t
(** Distinct locations named by violations — the candidate yield points. *)

val cooperable : result -> bool
(** No violations. *)

val online_analysis : ?witness:bool -> unit -> result Analysis.t
(** The fused single-pass chain (interner, race detector, event counter,
    fact-fed automaton) as one analysis finalizing to a {!result}.
    Unlike {!online} it exposes the {!Analysis.t} itself, and every
    component is snapshottable — {!Analysis.snapshot} on one instance
    and {!Analysis.resume} on a fresh one restores the exact mid-stream
    state (id space, clocks, open transactions, counters), which is what
    lets inference analyze a shared schedule prefix once and fork the
    checker per schedule. [witness] as in {!check_source}. *)

val online : unit -> Trace.Sink.t * (unit -> result)
(** A truly online variant of the single-pass engine: a sink to attach to
    a single live run and a function to finish the analysis. Each event
    is analyzed as it happens and then dropped — nothing is buffered, so
    a run too long to record can still be checked. Memory is the
    engine's: O(threads·vars) plus live/parked transaction digests. *)
