(** Goodlock-style deadlock prediction from a single trace.

    The reduction theorem assumes deadlock-freedom: acquire is only a right
    mover if the program cannot deadlock. This analysis closes that gap. It
    builds the lock-order graph — an edge [a -> b] whenever some thread
    acquires [b] while holding [a] — and reports cycles involving two or
    more threads as potential deadlocks, even when the observed run happened
    to complete. Together with the cooperability checker it restores the
    theorem's precondition: cooperable + lock-order-acyclic programs really
    do have cooperative-equivalent behaviour. *)

open Coop_trace

type edge = {
  from_lock : int;  (** The lock already held. *)
  to_lock : int;  (** The lock being acquired. *)
  tid : int;  (** A thread that exhibited the edge. *)
  loc : Loc.t;  (** Where the inner acquire happened. *)
}

type result = {
  edges : edge list;  (** Distinct lock-order edges, in first-seen order. *)
  cycles : int list list;
      (** Lock cycles involving edges from at least two distinct threads;
          each cycle lists the locks on it. Empty means no potential
          deadlock. *)
}

val analysis : unit -> result Analysis.t
(** The lock-order scan as a single-pass online analysis — edges accrue in
    O(threads·locks) state; cycles are enumerated at finalize. *)

val analyze : Trace.t -> result
(** Build the lock-order graph of a trace and enumerate its simple cycles
    (deduplicated up to rotation). Offline wrapper over {!analysis}. *)

val deadlock_free : result -> bool
(** No multi-thread cycles. *)

val pp_cycle : Format.formatter -> int list -> unit
(** Renders as ["l0 -> l1 -> l0"]. *)
