(** Lipton mover classification.

    The reduction argument assigns each dynamic operation a commutativity
    class with respect to concurrent operations of other threads:

    - a {b right mover} commutes later in time past any subsequent operation
      of another thread (lock acquires: nothing another thread does while we
      hold the lock can conflict before our next operation);
    - a {b left mover} commutes earlier (lock releases);
    - a {b both mover} commutes either way (race-free accesses — any
      conflicting access is ordered by happens-before);
    - a {b non mover} commutes neither way (racy accesses).

    Thread fork is a right mover and join a left mover, mirroring
    acquire/release. *)

open Coop_trace

type t =
  | Right
  | Left
  | Both
  | Non

val classify :
  ?local_locks:(int -> bool) -> racy:Event.Var_set.t -> Event.op -> t option
(** [classify ~racy op] is the mover class of [op] given the set of racy
    variables, or [None] for operations irrelevant to reduction (yields,
    function enter/exit, atomic markers, output). [Out] is classified [Both]
    — output is externally observable but not a shared-memory conflict.

    [local_locks] (default: none) identifies locks only ever touched by a
    single thread; their acquires and releases commute with everything and
    are classified [Both] — the standard thread-local-lock refinement of
    dynamic reduction checkers. *)

val classify_pred :
  ?local_locks:(int -> bool) -> racy:(Event.var -> bool) -> Event.op -> t option
(** {!classify} with the racy set abstracted to a predicate, so callers
    whose knowledge is still growing (the single-pass engine) can classify
    against their current belief without materializing a set. *)

val pp : Format.formatter -> t -> unit
(** "right-mover", "left-mover", "both-mover" or "non-mover". *)

val to_string : t -> string
(** Same as {!pp}, as a string. *)
