(** Empirical validation of the reduction theorem (Figure 1 material).

    The theorem: if a program (with its yield annotations) is cooperable,
    every preemptive execution is behaviourally equivalent to some
    cooperative execution. We validate it by exhaustively enumerating both
    behaviour sets for small programs and comparing them. *)

open Coop_trace
open Coop_runtime

type verdict = {
  preemptive : Explore.result;  (** Exploration under preemption. *)
  cooperative : Explore.result;  (** Exploration under cooperation. *)
  equal : bool;  (** Behaviour sets coincide (both complete). *)
  preemptive_subset : bool;
      (** Every preemptive behaviour is also cooperative — the direction
          the reduction theorem guarantees. *)
}

val compare :
  ?pool:Coop_util.Pool.t ->
  ?yields:Loc.Set.t ->
  ?max_states:int ->
  ?max_segment:int ->
  ?no_cache:bool ->
  ?ckpt:Coop_runtime.Vm.state Coop_util.Ckpt_cache.t ->
  Coop_lang.Bytecode.program ->
  verdict
(** [compare ?yields prog] explores both semantics with the same injected
    yield set. With a [pool] the two explorations run concurrently and
    each shards its frontier across the pool (see {!Explore.run}); the
    verdict is unchanged. [max_segment], [no_cache] and [ckpt] are passed
    through to both {!Explore.run} calls — a shared [ckpt] store lets the
    caller read frontier-checkpoint statistics afterwards. *)

val pp : Format.formatter -> verdict -> unit
(** One-line summary with behaviour counts and state counts. *)
