(** The single-pass cooperability engine.

    The two-pass checker streams the trace once to learn the racy
    variables and shared locks, then re-streams it through the
    transaction automaton with that final knowledge. This module removes
    the second pass: the race detector {e publishes} each piece of
    knowledge the moment it is discovered ({!Coop_race.Fasttrack.facts}),
    and the mover machinery downstream classifies {e optimistically} —
    every access is assumed race-free and every lock thread-local until a
    fact says otherwise.

    Optimism can be wrong, and cooperability violations are {b not
    monotone} in knowledge: learning that a variable races can create,
    move, {e and delete} violations (a late non-mover that used to be
    flagged may instead commit quietly once an earlier op becomes the
    reset point). So each open transaction keeps a compact {e digest} —
    (position, location, operation, operand id) of its phase-relevant
    ops in parallel arrays — and a late fact {e replays} only the
    transactions whose optimistic assumptions it invalidates, never the
    trace. Closed transactions with unresolved assumptions stay parked
    until the assumption resolves or the stream ends; those whose ops
    were all classified with final knowledge retire immediately.

    Knowledge, the fact-to-transaction index and the digests all key on
    the dense ids of the run's shared {!Interner} — the engine, the
    publishing detector and the transaction driver must use the {e same}
    interner, and every event must be noted on it (via
    {!Interner.analysis} at the head of the chain) before it reaches
    {!step}.

    Memory is O(threads·vars) for the detector plus the digests of live
    and parked transactions. Yield-disciplined programs close and retire
    transactions promptly; the adversarial worst case (one giant
    transaction touching fresh race-free variables forever) degrades
    toward O(trace) — the price of exact equivalence with the two-pass
    oracle, which the differential suite pins down. *)

open Coop_trace

(** {1 The fact channel} *)

type fact =
  | Racy of int  (** The variable (by dense id) is involved in some race. *)
  | Shared of int  (** The lock (by dense id) is shared by two threads. *)

type publish = fact -> unit
type subscribe = (fact -> unit) -> unit

val pack : fact -> int
(** Stable injective packing of facts into non-negative ints ([id*2] for
    [Racy], [id*2+1] for [Shared]) — the engine's index key, also used
    as the flow correlation id in telemetry. *)

val flow_name : fact -> string
(** The telemetry flow-event name of a fact's propagation edge
    ([fact/racy] / [fact/shared]); see {!Coop_obs.flow_begin}. *)

val facts : publish -> Coop_race.Fasttrack.facts
(** Adapt a publisher into the race detector's callback record, for
    wiring through {!Analysis.feedback}. The detector must share the
    engine's interner for the published ids to mean the same thing.
    When telemetry is on, each publication opens a
    {!Coop_obs.flow_begin} ([fact/racy] or [fact/shared], id = the
    packed fact) whose matching end fires where an engine learns the
    fact — the fact-propagation arrows of the chrome trace. *)

(** {1 The engine}

    One engine instance serves any notion of "transaction" — the
    automaton's yield-to-yield segments, the atomizer's function
    activations and atomic blocks — via the ['a] payload and the caller
    driving {!open_txn}/{!step}/{!close}. *)

type cause = {
  cseq : int;  (** Global position of the commit-point event. *)
  cloc : Loc.t;
  cop : Event.op;
  cmover : Mover.t;  (** Its mover class — [Non] or [Left]. *)
}
(** The commit point a violation is blamed on: the (N|L) op that moved
    the transaction's phase machine out of Pre. Everything after it must
    be a left or both mover; the violating op is the first one that is
    not. Causes are recomputed on every replay, so a retired
    transaction's causes reflect final knowledge — which late fact
    flipped a classification is visible as the flow events, while the
    cause names the op the final machine actually committed on. *)

type viol = {
  vseq : int;  (** Global position of the offending event. *)
  vtid : int;
  vloc : Loc.t;
  vop : Event.op;
  vmover : Mover.t;
  vcause : cause option;
      (** The commit point in force when the violation fired. Always
          [Some] for violations the machine produces (Post implies a
          commit happened); an option for defensive construction. *)
}
(** A violation of the (R|B)* (N|L) (L|B)* shape, as [Automaton.step]
    would have reported it under final knowledge. *)

type 'a txn
(** An open or parked transaction with caller payload ['a]. *)

type 'a t
(** Engine state: current knowledge plus the fact-to-transaction index. *)

val create :
  ?mark:float ref -> interner:Interner.t -> on_retire:('a txn -> unit) ->
  unit -> 'a t
(** [on_retire] fires exactly once per transaction, when its results are
    final — at {!close} if no optimistic assumption is outstanding,
    otherwise when the last one resolves, at latest during {!finalize}.
    [interner] is the run's shared interner (see the module preamble).
    [mark] is the shared clock mark of the enclosing instrumented chain;
    repair time advances it so it is billed to [checker/repair] and not
    to the checker whose step triggered the fact. *)

val on_fact : 'a t -> fact -> unit
(** Learn a fact: replay exactly the transactions that assumed its
    negation, then drop the fact's index bucket (facts are final). Meant
    to be passed to a [subscribe]. *)

val open_txn : 'a t -> tid:int -> data:'a -> 'a txn
(** Start a transaction in the pre-commit phase. [tid] is the original
    (uninterned) thread id, reported back verbatim in violations. *)

val step : 'a t -> 'a txn -> seq:int -> Event.t -> unit
(** Classify the event under current knowledge and advance the
    transaction's phase machine; phase-irrelevant events are ignored.
    The event must be the latest one noted on the engine's interner.
    [seq] is the event's global position — violation order and repair
    both depend on it being strictly increasing along the trace. *)

val close : 'a t -> 'a txn -> unit
(** The transaction's events are over (its yield / function exit /
    atomic end). Retires immediately when no assumption is pending. *)

val finalize : 'a t -> unit
(** End of stream: retire every parked transaction (their surviving
    optimistic assumptions are now known correct) and flush the
    [checker/repair] timer. Callers must {!close} still-open
    transactions first. *)

val violations : 'a txn -> viol list
(** In event order. Final once the transaction has retired. *)

val data : 'a txn -> 'a
val txn_uid : 'a txn -> int
(** Creation order: uid [a] < uid [b] iff [a] was opened first. *)

(** {1 Checkpointing} *)

type 'a snapshot
(** A deep copy of the engine — knowledge bytes, every live (open or
    parked) transaction's digest and pending set, the fact index and the
    registration stamps. Payloads ([data]) and violation records are
    immutable and shared. *)

val snapshot : roots:'a txn list -> 'a t -> 'a snapshot
(** [snapshot ~roots t] captures the engine between two events. [roots]
    must list the caller's currently open transactions: an open
    transaction with no pending assumption is reachable only from its
    driver, so the engine cannot find it alone. Shares no mutable
    structure with [t]. *)

val restore : 'a t -> 'a snapshot -> (int, 'a txn) Hashtbl.t
(** Overwrite [t]'s state with the snapshot (copying again, so the
    snapshot stays reusable and two engines restored from it never share
    a transaction). [t] keeps its own construction-time [on_retire],
    interner and mark. Returns the uid-to-transaction table of the
    private copies so the driver can re-point its open-transaction
    slots. *)
