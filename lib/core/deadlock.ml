open Coop_trace

type edge = {
  from_lock : int;
  to_lock : int;
  tid : int;
  loc : Loc.t;
}

type result = {
  edges : edge list;
  cycles : int list list;
}

module Pair = struct
  type t = int * int

  let compare = compare
end

module Pair_map = Map.Make (Pair)

(* Collect lock-order edges: for each acquire, one edge from every lock the
   thread already holds. Reentrant acquires do not appear in the event
   stream, so self-edges cannot arise. State is O(threads·locks). *)
let edges_analysis () =
  let held : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let seen = ref Pair_map.empty in
  let edges = ref [] in
  Analysis.make
    ~step:(fun (e : Event.t) ->
      match e.op with
      | Event.Acquire l ->
          let hs = match Hashtbl.find_opt held e.tid with Some h -> h | None -> [] in
          List.iter
            (fun h ->
              if not (Pair_map.mem (h, l) !seen) then begin
                seen := Pair_map.add (h, l) () !seen;
                edges :=
                  { from_lock = h; to_lock = l; tid = e.tid; loc = e.loc }
                  :: !edges
              end)
            hs;
          Hashtbl.replace held e.tid (l :: hs)
      | Event.Release l ->
          let hs = match Hashtbl.find_opt held e.tid with Some h -> h | None -> [] in
          Hashtbl.replace held e.tid (List.filter (fun x -> x <> l) hs)
      | _ -> ())
    ~finalize:(fun () -> List.rev !edges)

(* Enumerate simple cycles over the edge set; a cycle is a potential
   deadlock only if its edges come from >= 2 threads (one thread acquiring
   in a cycle with itself is just nesting). Cycles are canonicalized by
   rotating the smallest lock first. *)
let cycles_of edges =
  let succs : (int, (int * int) list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let cur = match Hashtbl.find_opt succs e.from_lock with Some l -> l | None -> [] in
      Hashtbl.replace succs e.from_lock ((e.to_lock, e.tid) :: cur))
    edges;
  let canon cycle =
    (* rotate so the smallest element leads *)
    let m = List.fold_left min (List.hd cycle) cycle in
    let rec rot = function
      | x :: rest when x = m -> x :: rest
      | x :: rest -> rot (rest @ [ x ])
      | [] -> []
    in
    rot cycle
  in
  let found = ref [] in
  let add_cycle locks tids =
    let module Is = Set.Make (Int) in
    if Is.cardinal (Is.of_list tids) >= 2 then begin
      let c = canon locks in
      if not (List.mem c !found) then found := c :: !found
    end
  in
  let rec dfs start path tids lock =
    match Hashtbl.find_opt succs lock with
    | None -> ()
    | Some nexts ->
        List.iter
          (fun (next, tid) ->
            if next = start then add_cycle (List.rev (lock :: path)) (tid :: tids)
            else if not (List.mem next path) && next > start then
              (* only explore locks > start to canonicalize start as min *)
              dfs start (lock :: path) (tid :: tids) next)
          nexts
  in
  let starts =
    List.sort_uniq Int.compare (List.map (fun e -> e.from_lock) edges)
  in
  List.iter (fun s -> dfs s [] [] s) starts;
  List.rev !found

let analysis () =
  Analysis.map
    (fun edges -> { edges; cycles = cycles_of edges })
    (edges_analysis ())

let analyze trace = Analysis.run (analysis ()) trace

let deadlock_free r = r.cycles = []

let pp_cycle ppf cycle =
  match cycle with
  | [] -> ()
  | first :: _ ->
      List.iter (fun l -> Format.fprintf ppf "l%d -> " l) cycle;
      Format.fprintf ppf "l%d" first
