(** Annotation-burden metrics (Table 2 material).

    Quantifies how many yields a program needs and how much of the code is
    yield-free — the paper's measure of how cheap cooperative reasoning is
    compared to whole-program preemptive reasoning. *)

open Coop_trace

type t = {
  static_yields : int;  (** [yield;] statements in the source. *)
  inferred_yields : int;  (** Locations added by inference. *)
  total_yields : int;  (** Sum of the above. *)
  code_size : int;  (** Bytecode instructions. *)
  functions : int;  (** Function count. *)
  yield_free_functions : int;
      (** Functions containing no static or inferred yield. *)
  pct_yield_free : float;  (** 100 * yield_free / functions. *)
  events : int;  (** Events in the measured trace. *)
  yield_events : int;  (** Dynamic yield events in the trace. *)
  yields_per_kevent : float;  (** Dynamic yield density per 1000 events. *)
}

val analysis :
  Coop_lang.Bytecode.program -> inferred:Loc.Set.t -> unit -> t Analysis.t
(** Single-pass online variant: the dynamic event/yield densities are
    counted as the stream flows by (O(1) state); the static counts are
    folded in at finalize. Feed it straight from the VM sink to measure a
    run without recording it. Snapshottable via {!Analysis.snapshot} /
    {!Analysis.resume} (the two counters are the whole state). *)

val compute :
  Coop_lang.Bytecode.program -> inferred:Loc.Set.t -> trace:Trace.t -> t
(** Static counts come from the program and the inferred set; dynamic
    density from the trace. Offline wrapper over {!analysis}. *)

val pp : Format.formatter -> t -> unit
(** Multi-line summary. *)
