open Coop_trace
open Coop_runtime

type result = {
  yields : Loc.Set.t;
  rounds : int;
  initial_violations : int;
  final_check_violations : int;
  events_analyzed : int;
}

let default_portfolio () =
  [
    Sched.random ~seed:11 ();
    Sched.random ~seed:23 ();
    Sched.random ~seed:47 ();
    Sched.random ~seed:101 ();
    Sched.random ~seed:991 ();
    Sched.round_robin ~quantum:1 ();
    Sched.round_robin ~quantum:3 ();
    Sched.round_robin ~quantum:17 ();
    Sched.pct ~seed:7 ~depth:3 ~change_span:5_000 ();
    Sched.pct ~seed:77 ~depth:5 ~change_span:5_000 ();
  ]

(* One portfolio pass: run every scheduler with the current yields and
   collect all violations. Each run is streamed straight into the fused
   checker — no trace is recorded; the checker's second phase replays the
   program under a fresh, identically seeded scheduler instance. *)
let portfolio_pass ~portfolio ~max_steps ~yields prog =
  let violations = ref [] in
  let events = ref 0 in
  let n = List.length (portfolio ()) in
  for i = 0 to n - 1 do
    let fresh () = List.nth (portfolio ()) i in
    let source = Runner.source ~yields ?max_steps ~sched:fresh prog in
    let r = Cooperability.check_source source in
    events := !events + r.Cooperability.events;
    violations := List.rev_append r.Cooperability.violations !violations
  done;
  (List.rev !violations, !events)

let infer ?(max_rounds = 20) ?(portfolio = default_portfolio) ?max_steps
    ?(base_yields = Loc.Set.empty) prog =
  let events_total = ref 0 in
  let rec loop yields round initial =
    let violations, events = portfolio_pass ~portfolio ~max_steps ~yields prog in
    events_total := !events_total + events;
    let initial =
      match initial with None -> Some (List.length violations) | some -> some
    in
    let new_locs =
      Loc.Set.diff (Cooperability.violation_locs violations) yields
    in
    if Loc.Set.is_empty new_locs || round >= max_rounds then begin
      let final_check_violations = List.length violations in
      {
        yields = Loc.Set.diff yields base_yields;
        rounds = round;
        initial_violations = (match initial with Some n -> n | None -> 0);
        final_check_violations;
        events_analyzed = !events_total;
      }
    end
    else loop (Loc.Set.union yields new_locs) (round + 1) initial
  in
  loop base_yields 1 None
