open Coop_trace
open Coop_runtime

type yield_witness = {
  yw_loc : Loc.t;
  yw_round : int;
  yw_sched : string;
  yw_viol : Automaton.violation;
}

type result = {
  yields : Loc.Set.t;
  rounds : int;
  initial_violations : int;
  final_check_violations : int;
  events_analyzed : int;
  prefix_events : int;
  elided_events : int;
  cache_hits : int;
  witnesses : yield_witness list;
}

(* The shared pre-divergence prefix of one round: as long as exactly one
   thread is runnable the schedule cannot matter, so every portfolio
   member executes the same step sequence and feeds the checker the same
   events. The prefix is executed and analyzed once; each schedule then
   fast-forwards a fresh scheduler over the recorded picks (restoring
   its internal RNG/quantum/priority state), resumes a fresh checker
   from the analysis snapshot and runs only the divergent tail. *)
type prefix = {
  ck_state : Vm.state;  (* state at the divergence point *)
  ck_last : int option;  (* last tid picked in the prefix *)
  ck_steps : int;  (* VM steps executed in the prefix *)
  ck_events : int;  (* events the prefix fed the checker *)
  ck_tids : int array;  (* the forced pick at each prefix step *)
  ck_flags : bool array;  (* last_yielded visible at each pick *)
  ck_snap : Analysis.snapshot;  (* checker state at the divergence point *)
}

let prefix_weight p =
  (* The VM state plus the recorded picks; the analysis snapshot's
     footprint scales with the same state, folded into the factor. *)
  8 * ((2 * Vm.approx_words p.ck_state) + (2 * Array.length p.ck_tids) + 256)

let prefix_cache () = Coop_util.Ckpt_cache.create ~weight:prefix_weight ()

(* Distinguishes keys of infer calls sharing one store (the key proper
   only encodes yields and the step budget, not the program). *)
let infer_nonce = Atomic.make 0

let yields_key yields =
  Loc.Set.elements yields
  |> List.map (fun l -> Format.asprintf "%a" Loc.pp l)
  |> String.concat ","

let compute_prefix ~yields ~max_steps prog =
  let proto = Cooperability.online_analysis () in
  let events = ref 0 in
  let sink e =
    incr events;
    Analysis.step proto e
  in
  let tids = ref [] in
  let flags = ref [] in
  let rec go st last steps =
    if steps >= max_steps then (st, last, steps)
    else begin
      match Vm.runnable st with
      | [ tid ] ->
          flags := Vm.last_step_yielded st :: !flags;
          tids := tid :: !tids;
          let st = Vm.step ~yields st tid ~sink in
          go st (Some tid) (steps + 1)
      | _ -> (st, last, steps)
    end
  in
  let st, last, steps = go (Vm.init prog) None 0 in
  Coop_obs.count "vm/steps" steps;
  Coop_obs.count "vm/events" !events;
  let snap =
    match Analysis.snapshot proto with
    | Some s -> s
    | None -> assert false  (* the online chain is snapshottable *)
  in
  {
    ck_state = st;
    ck_last = last;
    ck_steps = steps;
    ck_events = !events;
    ck_tids = Array.of_list (List.rev !tids);
    ck_flags = Array.of_list (List.rev !flags);
    ck_snap = snap;
  }

(* Replay the recorded prefix contexts through a fresh scheduler so its
   internal state (RNG draws, quantum counters, PCT priorities) ends up
   exactly as if it had scheduled the prefix itself. Sound because the
   prefix's runnable set was a singleton at every pick — the recorded
   context is the context the scheduler would have seen — and because no
   built-in scheduler reads [ctx.state] (custom portfolio schedulers
   that do must run with [~no_cache:true]). *)
let fast_forward pre (sched : Sched.t) =
  Array.iteri
    (fun i tid ->
      let ctx =
        {
          Sched.state = pre.ck_state;
          runnable = [ tid ];
          last = (if i = 0 then None else Some pre.ck_tids.(i - 1));
          last_yielded = pre.ck_flags.(i);
        }
      in
      ignore (sched.Sched.pick ctx))
    pre.ck_tids

(* The continuation of [Runner.run_raw] from the divergence point:
   identical loop, started from the prefix's state, last pick and step
   count, so prefix + tail reproduces the full run step for step. The
   [vm/run:*] span and step/event counters mirror [Runner.run]'s, so the
   "one VM execution per schedule" telemetry accounting still holds —
   the tail is this schedule's (partial) execution. *)
let run_tail ~yields ~max_steps ~sched ~sink pre =
  let raw sink =
    let rec loop st last steps =
      if steps >= max_steps then steps
      else begin
        match Vm.runnable st with
        | [] -> steps
        | runnable ->
            let ctx =
              { Sched.state = st; runnable; last;
                last_yielded = Vm.last_step_yielded st }
            in
            let tid = sched.Sched.pick ctx in
            loop (Vm.step ~yields st tid ~sink) (Some tid) (steps + 1)
      end
    in
    loop pre.ck_state pre.ck_last pre.ck_steps
  in
  if not (Coop_obs.enabled ()) then ignore (raw sink)
  else
    Coop_obs.span ("vm/run:" ^ sched.Sched.name) (fun () ->
        let events = ref 0 in
        let steps =
          raw (fun e ->
              incr events;
              sink e)
        in
        Coop_obs.count "vm/steps" (steps - pre.ck_steps);
        Coop_obs.count "vm/events" !events)

(* Each entry is a factory minting a fresh, identically seeded scheduler
   instance per call. The single-pass checker consumes one execution, but
   the two-pass oracle replays the program once per phase — factories
   keep both modes (and the span-name peek below) deterministic. *)
let default_portfolio =
  [
    (fun () -> Sched.random ~seed:11 ());
    (fun () -> Sched.random ~seed:23 ());
    (fun () -> Sched.random ~seed:47 ());
    (fun () -> Sched.random ~seed:101 ());
    (fun () -> Sched.random ~seed:991 ());
    (fun () -> Sched.round_robin ~quantum:1 ());
    (fun () -> Sched.round_robin ~quantum:3 ());
    (fun () -> Sched.round_robin ~quantum:17 ());
    (fun () -> Sched.pct ~seed:7 ~depth:3 ~change_span:5_000 ());
    (fun () -> Sched.pct ~seed:77 ~depth:5 ~change_span:5_000 ());
  ]

(* One portfolio pass: run every scheduler with the current yields and
   collect all violations. Each run is streamed straight into the fused
   single-pass checker — no trace is recorded and the program executes
   exactly once per schedule (the two-pass oracle, kept for differential
   testing, re-executes it for its automaton phase). The runs are
   independent (fresh VM + fresh scheduler each), so they fan out across
   the pool; the merge below preserves run order, making the result
   bit-identical to the sequential pass. *)
let portfolio_pass ?two_pass ?cache ?(ckpt_base = "infer:") ~pool ~portfolio
    ~max_steps ~yields prog =
  let factories = Array.of_list portfolio in
  let one i =
    (* A span per schedule, recorded on whichever pool domain ran it — the
       Chrome trace shows the portfolio's actual parallel shape. The
       schedule name also labels the run's violations, so an inferred
       yield's witness names the schedule that forced it. *)
    let name = (factories.(i) ()).Sched.name in
    Coop_obs.span ("infer/schedule:" ^ name)
      (fun () ->
        let source =
          Runner.source ~yields ?max_steps ~sched:factories.(i) prog
        in
        let r = Cooperability.check_source ?two_pass source in
        (name, r.Cooperability.violations, r.Cooperability.events))
  in
  match cache with
  | None ->
      (* Stateless path: every schedule executes and analyzes the whole
         run, including the shared prefix — the differential oracle.
         Each schedule is submitted as its own task (not a pre-sharded
         batch), so a slow schedule re-balances across domains; awaiting
         in index order keeps the merge deterministic. *)
      let promises =
        List.init (Array.length factories) (fun i ->
            Coop_util.Pool.spawn pool (fun () -> one i))
      in
      (List.map (Coop_util.Pool.await pool) promises, 0, 0)
  | Some c ->
      let steps_cap = Option.value max_steps ~default:10_000_000 in
      let key =
        ckpt_base ^ yields_key yields ^ ":steps=" ^ string_of_int steps_cap
      in
      let pre =
        match Coop_util.Ckpt_cache.find c key with
        | Some p -> p
        | None ->
            let p =
              Coop_obs.span "infer/prefix" (fun () ->
                  compute_prefix ~yields ~max_steps:steps_cap prog)
            in
            Coop_util.Ckpt_cache.add c key p;
            p
      in
      let one_cached i =
        (* Each task re-fetches the prefix from the store (counting the
           hit that stands for an elided prefix re-execution), falling
           back to the value the round computed if it was evicted. *)
        let pre =
          match Coop_util.Ckpt_cache.find c key with
          | Some p -> p
          | None -> pre
        in
        let sched = factories.(i) () in
        let name = sched.Sched.name in
        Coop_obs.span ("infer/schedule:" ^ name)
          (fun () ->
            fast_forward pre sched;
            let a = Cooperability.online_analysis () in
            Analysis.resume a pre.ck_snap;
            run_tail ~yields ~max_steps:steps_cap ~sched
              ~sink:(Analysis.sink a) pre;
            let r = Analysis.finalize a in
            (name, r.Cooperability.violations, r.Cooperability.events))
      in
      let promises =
        List.init (Array.length factories) (fun i ->
            Coop_util.Pool.spawn pool (fun () -> one_cached i))
      in
      let runs = List.map (Coop_util.Pool.await pool) promises in
      (* The prefix's events were analyzed once instead of once per
         schedule: every schedule after the first got them for free. *)
      (runs, pre.ck_events, (Array.length factories - 1) * pre.ck_events)

let infer ?pool ?(max_rounds = 20) ?(portfolio = default_portfolio) ?max_steps
    ?(base_yields = Loc.Set.empty) ?two_pass ?(no_cache = false) ?ckpt prog =
  let pool =
    match pool with Some p -> p | None -> Coop_util.Pool.shared ()
  in
  (* Replay elision needs the single-pass checker (the two-pass oracle
     re-streams its source, which a resumed prefix cannot provide). *)
  let cache =
    if no_cache || two_pass = Some true then None
    else Some (match ckpt with Some c -> c | None -> prefix_cache ())
  in
  let before = Option.map Coop_util.Ckpt_cache.stats cache in
  let ckpt_base =
    "infer" ^ string_of_int (Atomic.fetch_and_add infer_nonce 1) ^ ":"
  in
  let events_total = ref 0 in
  let prefix_total = ref 0 in
  let elided_total = ref 0 in
  let rec loop yields round initial witnesses =
    let runs, prefix_events, elided_events =
      Coop_obs.span
        (Printf.sprintf "infer/round%d" round)
        (fun () ->
          portfolio_pass ?two_pass ?cache ~ckpt_base ~pool ~portfolio
            ~max_steps ~yields prog)
    in
    prefix_total := !prefix_total + prefix_events;
    elided_total := !elided_total + elided_events;
    Coop_obs.count "infer/rounds" 1;
    let violations = List.concat_map (fun (_, vs, _) -> vs) runs in
    let events = List.fold_left (fun acc (_, _, e) -> acc + e) 0 runs in
    events_total := !events_total + events;
    let initial =
      match initial with None -> Some (List.length violations) | some -> some
    in
    let new_locs =
      Loc.Set.diff (Cooperability.violation_locs violations) yields
    in
    (* Per new location, the first violation that named it — in run order,
       then trace order, so the witness chain is deterministic across
       pool sizes (the merge preserves run order). *)
    let round_witnesses =
      if Loc.Set.is_empty new_locs then []
      else begin
        let seen = ref Loc.Set.empty in
        List.concat_map
          (fun (sched, vs, _) ->
            List.filter_map
              (fun (v : Automaton.violation) ->
                if
                  Loc.Set.mem v.Automaton.loc new_locs
                  && not (Loc.Set.mem v.Automaton.loc !seen)
                then begin
                  seen := Loc.Set.add v.Automaton.loc !seen;
                  Some
                    { yw_loc = v.Automaton.loc; yw_round = round;
                      yw_sched = sched; yw_viol = v }
                end
                else None)
              vs)
          runs
      end
    in
    let witnesses = witnesses @ round_witnesses in
    if Loc.Set.is_empty new_locs || round >= max_rounds then begin
      let final_check_violations = List.length violations in
      Coop_obs.gauge "infer/yields"
        (float_of_int (Loc.Set.cardinal (Loc.Set.diff yields base_yields)));
      let cache_hits =
        match (cache, before) with
        | Some c, Some b ->
            let open Coop_util.Ckpt_cache in
            let s = stats c in
            if Coop_obs.enabled () then begin
              Coop_obs.count "ckpt/hits" (s.hits - b.hits);
              Coop_obs.count "ckpt/misses" (s.misses - b.misses);
              Coop_obs.count "ckpt/evictions" (s.evictions - b.evictions);
              Coop_obs.gauge "ckpt/bytes" (float_of_int s.bytes);
              Coop_obs.gauge "ckpt/peak_bytes" (float_of_int s.peak_bytes)
            end;
            s.hits - b.hits
        | _ -> 0
      in
      {
        yields = Loc.Set.diff yields base_yields;
        rounds = round;
        initial_violations = (match initial with Some n -> n | None -> 0);
        final_check_violations;
        events_analyzed = !events_total;
        prefix_events = !prefix_total;
        elided_events = !elided_total;
        cache_hits;
        witnesses;
      }
    end
    else loop (Loc.Set.union yields new_locs) (round + 1) initial witnesses
  in
  loop base_yields 1 None []
