open Coop_trace
open Coop_runtime

type yield_witness = {
  yw_loc : Loc.t;
  yw_round : int;
  yw_sched : string;
  yw_viol : Automaton.violation;
}

type result = {
  yields : Loc.Set.t;
  rounds : int;
  initial_violations : int;
  final_check_violations : int;
  events_analyzed : int;
  witnesses : yield_witness list;
}

(* Each entry is a factory minting a fresh, identically seeded scheduler
   instance per call. The single-pass checker consumes one execution, but
   the two-pass oracle replays the program once per phase — factories
   keep both modes (and the span-name peek below) deterministic. *)
let default_portfolio =
  [
    (fun () -> Sched.random ~seed:11 ());
    (fun () -> Sched.random ~seed:23 ());
    (fun () -> Sched.random ~seed:47 ());
    (fun () -> Sched.random ~seed:101 ());
    (fun () -> Sched.random ~seed:991 ());
    (fun () -> Sched.round_robin ~quantum:1 ());
    (fun () -> Sched.round_robin ~quantum:3 ());
    (fun () -> Sched.round_robin ~quantum:17 ());
    (fun () -> Sched.pct ~seed:7 ~depth:3 ~change_span:5_000 ());
    (fun () -> Sched.pct ~seed:77 ~depth:5 ~change_span:5_000 ());
  ]

(* One portfolio pass: run every scheduler with the current yields and
   collect all violations. Each run is streamed straight into the fused
   single-pass checker — no trace is recorded and the program executes
   exactly once per schedule (the two-pass oracle, kept for differential
   testing, re-executes it for its automaton phase). The runs are
   independent (fresh VM + fresh scheduler each), so they fan out across
   the pool; the merge below preserves run order, making the result
   bit-identical to the sequential pass. *)
let portfolio_pass ?two_pass ~pool ~portfolio ~max_steps ~yields prog =
  let factories = Array.of_list portfolio in
  let one i =
    (* A span per schedule, recorded on whichever pool domain ran it — the
       Chrome trace shows the portfolio's actual parallel shape. The
       schedule name also labels the run's violations, so an inferred
       yield's witness names the schedule that forced it. *)
    let name = (factories.(i) ()).Sched.name in
    Coop_obs.span ("infer/schedule:" ^ name)
      (fun () ->
        let source =
          Runner.source ~yields ?max_steps ~sched:factories.(i) prog
        in
        let r = Cooperability.check_source ?two_pass source in
        (name, r.Cooperability.violations, r.Cooperability.events))
  in
  (* Each schedule is submitted as its own task (not a pre-sharded
     batch), so a slow schedule re-balances across domains; awaiting in
     index order keeps the merge deterministic. *)
  let promises =
    List.init (Array.length factories) (fun i ->
        Coop_util.Pool.spawn pool (fun () -> one i))
  in
  List.map (Coop_util.Pool.await pool) promises

let infer ?pool ?(max_rounds = 20) ?(portfolio = default_portfolio) ?max_steps
    ?(base_yields = Loc.Set.empty) ?two_pass prog =
  let pool =
    match pool with Some p -> p | None -> Coop_util.Pool.shared ()
  in
  let events_total = ref 0 in
  let rec loop yields round initial witnesses =
    let runs =
      Coop_obs.span
        (Printf.sprintf "infer/round%d" round)
        (fun () ->
          portfolio_pass ?two_pass ~pool ~portfolio ~max_steps ~yields prog)
    in
    Coop_obs.count "infer/rounds" 1;
    let violations = List.concat_map (fun (_, vs, _) -> vs) runs in
    let events = List.fold_left (fun acc (_, _, e) -> acc + e) 0 runs in
    events_total := !events_total + events;
    let initial =
      match initial with None -> Some (List.length violations) | some -> some
    in
    let new_locs =
      Loc.Set.diff (Cooperability.violation_locs violations) yields
    in
    (* Per new location, the first violation that named it — in run order,
       then trace order, so the witness chain is deterministic across
       pool sizes (the merge preserves run order). *)
    let round_witnesses =
      if Loc.Set.is_empty new_locs then []
      else begin
        let seen = ref Loc.Set.empty in
        List.concat_map
          (fun (sched, vs, _) ->
            List.filter_map
              (fun (v : Automaton.violation) ->
                if
                  Loc.Set.mem v.Automaton.loc new_locs
                  && not (Loc.Set.mem v.Automaton.loc !seen)
                then begin
                  seen := Loc.Set.add v.Automaton.loc !seen;
                  Some
                    { yw_loc = v.Automaton.loc; yw_round = round;
                      yw_sched = sched; yw_viol = v }
                end
                else None)
              vs)
          runs
      end
    in
    let witnesses = witnesses @ round_witnesses in
    if Loc.Set.is_empty new_locs || round >= max_rounds then begin
      let final_check_violations = List.length violations in
      Coop_obs.gauge "infer/yields"
        (float_of_int (Loc.Set.cardinal (Loc.Set.diff yields base_yields)));
      {
        yields = Loc.Set.diff yields base_yields;
        rounds = round;
        initial_violations = (match initial with Some n -> n | None -> 0);
        final_check_violations;
        events_analyzed = !events_total;
        witnesses;
      }
    end
    else loop (Loc.Set.union yields new_locs) (round + 1) initial witnesses
  in
  loop base_yields 1 None []
