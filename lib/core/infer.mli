(** Yield inference: measuring the annotation burden.

    The paper's headline result is that cooperability needs very few yield
    annotations. We measure this by inferring them: run the program under a
    portfolio of adversarial schedules, insert a (virtual) yield at every
    violation location, and repeat until no schedule in the portfolio
    produces a new violation. Yields are injected into the VM by location,
    so no recompilation is needed.

    The inferred set is a fixpoint for the schedules explored; like any
    dynamic analysis (including the paper's) it under-approximates rare
    schedules, which is why the portfolio mixes random seeds with extreme
    round-robin quanta.

    Every run is analysed online through [Cooperability.check_source] — the
    fixpoint loop never materializes a trace, so memory stays flat however
    many rounds and schedulers it takes. With the single-pass engine each
    schedule is {e executed exactly once} per round; the two-pass oracle
    (available via [?two_pass] for differential testing) re-executes every
    schedule for its automaton phase, doubling the dynamic cost — the
    paper's "slowdown dominated by the race detector" regime. *)

open Coop_trace
open Coop_runtime

type yield_witness = {
  yw_loc : Loc.t;  (** The inferred yield location. *)
  yw_round : int;  (** The round that first forced it (1-based). *)
  yw_sched : string;  (** Name of the schedule whose run violated there. *)
  yw_viol : Automaton.violation;
      (** The first violation naming the location, in run order then
          trace order — carries the commit {!Online.cause}, so the
          witness chain reads: this schedule committed at the cause and
          then hit this op, hence the yield. *)
}
(** Why an inferred yield exists. Deterministic across pool sizes: the
    portfolio merge preserves run order, so "first violation" is
    well-defined (property-tested alongside the inference result). *)

type result = {
  yields : Loc.Set.t;  (** Inferred yield locations. *)
  rounds : int;  (** Inference iterations until fixpoint. *)
  initial_violations : int;
      (** Violations observed on the first round (no inferred yields yet) —
          the "warnings" count a checker without inference would report. *)
  final_check_violations : int;
      (** Violations on a fresh portfolio after fixpoint; 0 when the
          inferred set is stable. *)
  events_analyzed : int;  (** Total events across all analysed runs. *)
  prefix_events : int;
      (** Events in the shared pre-divergence prefixes, analyzed once
          per round instead of once per schedule ([0] when replay
          elision is off). *)
  elided_events : int;
      (** Events spared re-execution and re-analysis by prefix sharing:
          [(portfolio size - 1) * prefix_events] summed over rounds
          ([0] when replay elision is off). *)
  cache_hits : int;
      (** Checkpoint-store hits — prefix re-executions elided ([0] when
          replay elision is off). *)
  witnesses : yield_witness list;
      (** One per inferred yield, in inference order (round, then first
          occurrence). *)
}

type prefix
(** A cached pre-divergence round prefix: the VM state, the recorded
    forced scheduler picks and the checker's analysis snapshot at the
    point where more than one thread first becomes runnable. *)

val prefix_cache : unit -> prefix Coop_util.Ckpt_cache.t
(** A fresh bounded store for round prefixes (64 MiB default cap),
    suitable for passing to {!infer} as [?ckpt] — e.g. to read
    {!Coop_util.Ckpt_cache.stats} afterwards. *)

val default_portfolio : (unit -> Sched.t) list
(** Five random seeds, round-robin with quanta 1, 3 and 17, and two PCT
    schedulers (depths 3 and 5). Each entry is a factory minting a fresh,
    identically seeded scheduler instance per call, so any checker mode
    can replay the schedule with independent instances. *)

val infer :
  ?pool:Coop_util.Pool.t ->
  ?max_rounds:int ->
  ?portfolio:(unit -> Sched.t) list ->
  ?max_steps:int ->
  ?base_yields:Loc.Set.t ->
  ?two_pass:bool ->
  ?no_cache:bool ->
  ?ckpt:prefix Coop_util.Ckpt_cache.t ->
  Coop_lang.Bytecode.program ->
  result
(** [infer prog] runs the inference loop (at most [max_rounds], default 20).
    [base_yields] seeds the yield set (default empty). Every portfolio run
    builds its own VM and scheduler, so each fixpoint round fans the
    portfolio out across [pool] (default: the shared pool, sized by
    [COOP_JOBS] or the machine); the violation merge preserves run order,
    so the result is bit-identical to a sequential pass — property-tested
    for pool sizes 1, 2 and 4.

    {b Replay elision} (default on): within a round, every schedule
    executes the same steps until a second thread becomes runnable — so
    the shared prefix is executed and analyzed once, checkpointed
    ([ckpt]; a fresh {!prefix_cache} per call by default), and each
    schedule fast-forwards a fresh scheduler over the recorded picks,
    resumes a fresh checker from the prefix's analysis snapshot and runs
    only the divergent tail. Yields, violations, witnesses and
    [events_analyzed] are identical to the stateless pass
    (property-tested); only [prefix_events]/[elided_events]/[cache_hits]
    differ from zero. [~no_cache:true] forces the stateless pass — the
    differential oracle. The cached path always analyzes through the
    sequential single-pass engine: [two_pass] forces it off (the oracle
    re-streams its source, which a resumed prefix cannot provide), and
    [COOP_SHARDS] is ignored for cached rounds (sharded and sequential
    engines are result-identical, property-tested separately). Custom
    [portfolio] schedulers must not read [Sched.context.state] to be
    fast-forwardable; all built-ins qualify — use [~no_cache:true]
    otherwise. Store counter deltas flush to [Coop_obs] ([ckpt/*]) when
    telemetry is on. *)
