open Coop_trace
open Coop_lang

type t = {
  static_yields : int;
  inferred_yields : int;
  total_yields : int;
  code_size : int;
  functions : int;
  yield_free_functions : int;
  pct_yield_free : float;
  events : int;
  yield_events : int;
  yields_per_kevent : float;
}

let static_yield_locs prog =
  let locs = ref Loc.Set.empty in
  Array.iteri
    (fun fi (f : Bytecode.func) ->
      Array.iteri
        (fun pc instr ->
          match instr with
          | Bytecode.Yield_instr ->
              locs := Loc.Set.add (Bytecode.loc prog ~func:fi ~pc) !locs
          | _ -> ())
        f.code)
    prog.Bytecode.funcs;
  !locs

let of_counts prog ~inferred ~events ~yield_events =
  let static = static_yield_locs prog in
  let all = Loc.Set.union static inferred in
  let functions = Array.length prog.Bytecode.funcs in
  let has_yield fi = Loc.Set.exists (fun l -> l.Loc.func = fi) all in
  let yield_free =
    let n = ref 0 in
    for fi = 0 to functions - 1 do
      if not (has_yield fi) then incr n
    done;
    !n
  in
  {
    static_yields = Loc.Set.cardinal static;
    inferred_yields = Loc.Set.cardinal (Loc.Set.diff inferred static);
    total_yields = Loc.Set.cardinal all;
    code_size = Bytecode.code_size prog;
    functions;
    yield_free_functions = yield_free;
    pct_yield_free =
      (if functions = 0 then 100.
       else 100. *. float_of_int yield_free /. float_of_int functions);
    events;
    yield_events;
    yields_per_kevent =
      (if events = 0 then 0.
       else 1000. *. float_of_int yield_events /. float_of_int events);
  }

let snap_key : (int * int) Analysis.Key.t = Analysis.Key.create "metrics"

let analysis prog ~inferred () =
  let events = ref 0 in
  let yield_events = ref 0 in
  Analysis.snapshottable ~key:snap_key
    ~save:(fun () -> (!events, !yield_events))
    ~load:(fun (e, y) ->
      events := e;
      yield_events := y)
    (Analysis.make
       ~step:(fun (e : Event.t) ->
         incr events;
         if e.op = Event.Yield then incr yield_events)
       ~finalize:(fun () ->
         of_counts prog ~inferred ~events:!events ~yield_events:!yield_events))

let compute prog ~inferred ~trace = Analysis.run (analysis prog ~inferred ()) trace

let pp ppf m =
  Format.fprintf ppf
    "@[<v>yields: %d static + %d inferred = %d@,\
     functions: %d (%d yield-free, %.1f%%)@,\
     code: %d instructions@,\
     dynamic: %d yield events in %d events (%.2f/kevent)@]"
    m.static_yields m.inferred_yields m.total_yields m.functions
    m.yield_free_functions m.pct_yield_free m.code_size m.yield_events
    m.events m.yields_per_kevent
