open Coop_trace

(* Facts name variables and locks by the dense ids of the run's shared
   [Interner] — the same interner the publishing race detector and every
   engine client must use, so ids agree across the feedback loop. *)
type fact =
  | Racy of int
  | Shared of int

type publish = fact -> unit
type subscribe = (fact -> unit) -> unit

(* Facts packed into one non-negative int for pending lists and the
   fact-to-transaction index: id*2 for Racy, id*2+1 for Shared. *)
let pack = function Racy id -> 2 * id | Shared id -> (2 * id) + 1

let flow_name = function Racy _ -> "fact/racy" | Shared _ -> "fact/shared"

let facts publish =
  {
    Coop_race.Fasttrack.on_racy_var =
      (fun _v id ->
        let f = Racy id in
        Coop_obs.flow_begin (flow_name f) ~id:(pack f);
        publish f);
    on_shared_lock =
      (fun _l id ->
        let f = Shared id in
        Coop_obs.flow_begin (flow_name f) ~id:(pack f);
        publish f);
  }

(* What the engine currently believes. Facts are monotone — a variable
   never stops being racy, a lock never becomes thread-local again — so
   belief only grows and each classification can only be refined in one
   direction (Both -> Non for accesses, Both -> Right/Left for lock ops).
   Membership is one byte per dense id, grown on demand. *)
module Knowledge = struct
  type t = {
    mutable racy : Bytes.t;  (* dense var id -> known racy *)
    mutable shared : Bytes.t;  (* dense lock id -> known shared *)
  }

  let create () = { racy = Bytes.make 64 '\000'; shared = Bytes.make 16 '\000' }

  let mem b id = id < Bytes.length b && Bytes.get b id = '\001'

  let grown b n =
    let bigger = Bytes.make (max n (2 * Bytes.length b)) '\000' in
    Bytes.blit b 0 bigger 0 (Bytes.length b);
    bigger

  let learn k = function
    | Racy id ->
        if mem k.racy id then false
        else begin
          if id >= Bytes.length k.racy then k.racy <- grown k.racy (id + 1);
          Bytes.set k.racy id '\001';
          true
        end
    | Shared id ->
        if mem k.shared id then false
        else begin
          if id >= Bytes.length k.shared then
            k.shared <- grown k.shared (id + 1);
          Bytes.set k.shared id '\001';
          true
        end

  let racy k id = mem k.racy id
  let shared k id = mem k.shared id

  (* The mover of [op] (whose interned operand is [id]) under current
     belief — [Mover.classify_pred] with the predicates inlined as byte
     probes. [None] for ops the phase machine never looks at. *)
  let classify k (op : Event.op) id =
    match op with
    | Event.Read _ | Event.Write _ ->
        Some (if racy k id then Mover.Non else Mover.Both)
    | Event.Acquire _ -> Some (if shared k id then Mover.Right else Mover.Both)
    | Event.Release _ -> Some (if shared k id then Mover.Left else Mover.Both)
    | Event.Fork _ -> Some Mover.Right
    | Event.Join _ -> Some Mover.Left
    | Event.Out _ -> Some Mover.Both
    | Event.Yield | Event.Enter _ | Event.Exit _ | Event.Atomic_begin
    | Event.Atomic_end ->
        None
end

type phase =
  | Pre
  | Post

type cause = {
  cseq : int;
  cloc : Loc.t;
  cop : Event.op;
  cmover : Mover.t;
}

type viol = {
  vseq : int;
  vtid : int;
  vloc : Loc.t;
  vop : Event.op;
  vmover : Mover.t;
  vcause : cause option;
}

(* The digest keeps only what a replay needs: global position, location,
   operation and interned operand of every phase-relevant op, as parallel
   arrays (no per-entry tuple). [Out] is omitted — it is a both mover
   under any knowledge, so it can never change the machine. *)
type 'a txn = {
  uid : int;
  tid : int;
  data : 'a;
  mutable seqs : int array;
  mutable locs : Loc.t array;
  mutable ops : Event.op array;
  mutable ids : int array;  (* interned operand per digest slot *)
  mutable len : int;
  mutable phase : phase;
  (* The commit point of the current Post phase — the (N|L) op that moved
     the machine out of Pre. Unpacked mutable fields (cm_seq = 0 means
     "none") so cause tracking allocates nothing unless a violation
     actually fires. *)
  mutable cm_seq : int;
  mutable cm_loc : Loc.t;
  mutable cm_op : Event.op;
  mutable cm_mover : Mover.t;
  mutable viols : viol list;  (* reversed *)
  (* Packed facts this txn's classification optimistically assumed away.
     A transaction can touch thousands of distinct operands (matrix
     sweeps between yields), so membership must be O(1) — a list scan
     here turns registration quadratic in the transaction's footprint. *)
  pending : (int, unit) Hashtbl.t;
  mutable closed : bool;
  mutable retired : bool;
}

type 'a t = {
  itn : Interner.t;
  knowledge : Knowledge.t;
  (* packed fact -> transactions that optimistically assumed its negation *)
  mutable index : 'a txn list array;
  (* packed fact -> uid of the last txn that registered it: a cache in
     front of the per-txn pending table. Uids are never reused, so a
     stamp hit is authoritative; on a miss the table decides. Loops and
     repeated sweeps re-touch the same operands, so the hot path is one
     array probe instead of a hash lookup. *)
  mutable reg_stamp : int array;
  on_retire : 'a txn -> unit;
  mutable parked : 'a txn list;  (* closed with unresolved pending; reversed *)
  mutable next_uid : int;
  mark : float ref option;
  timed : bool;
  mutable repair_s : float;
  mutable repairs : int;
}

let create ?mark ~interner ~on_retire () =
  {
    itn = interner;
    knowledge = Knowledge.create ();
    index = Array.make 64 [];
    reg_stamp = Array.make 64 (-1);
    on_retire;
    parked = [];
    next_uid = 0;
    mark;
    timed = Coop_obs.enabled ();
    repair_s = 0.;
    repairs = 0;
  }

let open_txn t ~tid ~data =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  {
    uid;
    tid;
    data;
    seqs = Array.make 4 0;
    locs = Array.make 4 Loc.none;
    ops = Array.make 4 Event.Yield;
    ids = Array.make 4 (-1);
    len = 0;
    phase = Pre;
    cm_seq = 0;
    cm_loc = Loc.none;
    cm_op = Event.Yield;
    cm_mover = Mover.Both;
    viols = [];
    pending = Hashtbl.create 4;
    closed = false;
    retired = false;
  }

let data txn = txn.data
let txn_uid txn = txn.uid
let violations txn = List.rev txn.viols

let push txn ~seq ~loc ~op ~id =
  let n = Array.length txn.seqs in
  if txn.len = n then begin
    let grow a fill =
      let bigger = Array.make (2 * n) fill in
      Array.blit a 0 bigger 0 n;
      bigger
    in
    txn.seqs <- grow txn.seqs 0;
    txn.locs <- grow txn.locs Loc.none;
    txn.ops <- grow txn.ops Event.Yield;
    txn.ids <- grow txn.ids (-1)
  end;
  txn.seqs.(txn.len) <- seq;
  txn.locs.(txn.len) <- loc;
  txn.ops.(txn.len) <- op;
  txn.ids.(txn.len) <- id;
  txn.len <- txn.len + 1

(* One move of the (R|B)* (N|L) (L|B)* machine — the exact transition
   table of [Automaton.step], including the reset-as-if-yielded rule. *)
let apply txn ~seq ~loc ~op m =
  match (txn.phase, m) with
  | Pre, (Mover.Right | Mover.Both) -> ()
  | Pre, ((Mover.Non | Mover.Left) as m) ->
      txn.phase <- Post;
      (* This op is the commit point: it is the cause of every violation
         until the machine resets. *)
      txn.cm_seq <- seq;
      txn.cm_loc <- loc;
      txn.cm_op <- op;
      txn.cm_mover <- m
  | Post, (Mover.Left | Mover.Both) -> ()
  | Post, ((Mover.Right | Mover.Non) as m) ->
      let vcause =
        if txn.cm_seq > 0 then
          Some
            { cseq = txn.cm_seq; cloc = txn.cm_loc; cop = txn.cm_op;
              cmover = txn.cm_mover }
        else None
      in
      txn.viols <-
        { vseq = seq; vtid = txn.tid; vloc = loc; vop = op; vmover = m; vcause }
        :: txn.viols;
      (match m with
      | Mover.Right ->
          (* Reset-as-if-yielded: the commit the violation was blamed on
             is spent; the next violation needs a fresh one. *)
          txn.phase <- Pre;
          txn.cm_seq <- 0
      | _ -> ())

let bucket_add t packed txn =
  if packed >= Array.length t.index then begin
    let bigger = Array.make (max (packed + 1) (2 * Array.length t.index)) [] in
    Array.blit t.index 0 bigger 0 (Array.length t.index);
    t.index <- bigger
  end;
  t.index.(packed) <- txn :: t.index.(packed)

(* Optimistic classification charged an assumption ("v is race-free",
   "l is thread-local"): remember which fact would invalidate it so a
   late arrival replays exactly the transactions that used it. *)
let register_pending t txn (op : Event.op) id =
  let want =
    match op with
    | Event.Read _ | Event.Write _ ->
        if Knowledge.racy t.knowledge id then -1 else pack (Racy id)
    | Event.Acquire _ | Event.Release _ ->
        if Knowledge.shared t.knowledge id then -1 else pack (Shared id)
    | _ -> -1
  in
  if want >= 0 then
    if want < Array.length t.reg_stamp && t.reg_stamp.(want) = txn.uid then ()
    else begin
      if want >= Array.length t.reg_stamp then begin
        let bigger =
          Array.make (max (want + 1) (2 * Array.length t.reg_stamp)) (-1)
        in
        Array.blit t.reg_stamp 0 bigger 0 (Array.length t.reg_stamp);
        t.reg_stamp <- bigger
      end;
      t.reg_stamp.(want) <- txn.uid;
      if not (Hashtbl.mem txn.pending want) then begin
        Hashtbl.add txn.pending want ();
        bucket_add t want txn
      end
    end

let step t txn ~seq (e : Event.t) =
  let id = Interner.cur_operand t.itn in
  match Knowledge.classify t.knowledge e.op id with
  | None -> ()
  | Some m -> (
      match e.op with
      | Event.Out _ -> ()  (* both mover forever: invisible to the machine *)
      | op ->
          push txn ~seq ~loc:e.loc ~op ~id;
          register_pending t txn op id;
          apply txn ~seq ~loc:e.loc ~op m)

(* Violations are NOT monotone in knowledge. In [rel l1; acq l2; wr v]
   with l1 shared and v racy, optimism about l2 (assumed thread-local,
   so the acquire is a both mover) flags the write — a non mover after
   the release's commit point. When shared(l2) arrives, final knowledge
   instead flags the acquire (a right mover post-commit), and that
   violation RESETS the machine to Pre, so the write now commits
   quietly. One fact moved one violation and deleted another; patching
   the violation list in place is unsound in both directions, hence
   repair recomputes the whole machine over the digest. *)
let replay t txn =
  txn.phase <- Pre;
  txn.cm_seq <- 0;
  txn.viols <- [];
  for i = 0 to txn.len - 1 do
    let op = txn.ops.(i) in
    match Knowledge.classify t.knowledge op txn.ids.(i) with
    | Some m -> apply txn ~seq:txn.seqs.(i) ~loc:txn.locs.(i) ~op m
    | None -> assert false
  done

let retire t txn =
  txn.retired <- true;
  t.on_retire txn

let on_fact t f =
  let t0 = if t.timed then Coop_obs.now_s () else 0. in
  if Knowledge.learn t.knowledge f then begin
    let packed = pack f in
    (* The receiving end of the propagation flow the publisher began. *)
    Coop_obs.flow_end (flow_name f) ~id:packed;
    if packed < Array.length t.index then begin
      let bucket = t.index.(packed) in
      (* The fact is final: nothing will ever point at this bucket
         again, so it is dropped wholesale after the repairs. *)
      t.index.(packed) <- [];
      List.iter
        (fun txn ->
          Hashtbl.remove txn.pending packed;
          replay t txn;
          if txn.closed && (not txn.retired) && Hashtbl.length txn.pending = 0
          then retire t txn)
        bucket
    end
  end;
  if t.timed then begin
    let dt = Coop_obs.now_s () -. t0 in
    t.repair_s <- t.repair_s +. dt;
    t.repairs <- t.repairs + 1;
    (* Repair runs inside the publisher's instrumented step; advancing the
       shared clock mark keeps its cost out of that checker's timer so the
       attribution shares still sum to one. *)
    match t.mark with Some m -> m := !m +. dt | None -> ()
  end

let close t txn =
  txn.closed <- true;
  if Hashtbl.length txn.pending = 0 then retire t txn
  else t.parked <- txn :: t.parked

let finalize t =
  (* Unresolved assumptions at end of stream were all correct (the
     invalidating fact never fired), so parked results are final as-is. *)
  List.iter (fun txn -> if not txn.retired then retire t txn) (List.rev t.parked);
  t.parked <- [];
  if t.timed && t.repairs > 0 then
    Coop_obs.timer_add "checker/repair" t.repair_s t.repairs

(* Checkpointing. The live-transaction graph is shared — a transaction
   sits in [parked] and in one index bucket per pending assumption, and
   the caller holds its open transactions — so copying works uid-wise:
   collect every live transaction once, deep-copy it, and rebuild every
   containing structure through a uid-to-copy table. [roots] are the
   caller's open transactions (the engine has no handle on an open
   transaction with no pending assumption). Retired transactions are
   never reachable from engine structures, so they are not copied; their
   violations already left through [on_retire]. *)
type 'a snapshot = {
  s_racy : Bytes.t;
  s_shared : Bytes.t;
  s_txns : 'a txn list;  (* private deep copies, one per live txn *)
  s_index : (int * int list) list;  (* packed fact -> member uids *)
  s_reg_stamp : int array;
  s_parked : int list;  (* uids, insertion order preserved *)
  s_next_uid : int;
}

let copy_txn txn =
  {
    uid = txn.uid;
    tid = txn.tid;
    data = txn.data;
    seqs = Array.copy txn.seqs;
    locs = Array.copy txn.locs;
    ops = Array.copy txn.ops;
    ids = Array.copy txn.ids;
    len = txn.len;
    phase = txn.phase;
    cm_seq = txn.cm_seq;
    cm_loc = txn.cm_loc;
    cm_op = txn.cm_op;
    cm_mover = txn.cm_mover;
    viols = txn.viols;
    pending = Hashtbl.copy txn.pending;
    closed = txn.closed;
    retired = txn.retired;
  }

let snapshot ~roots t =
  let live : (int, 'a txn) Hashtbl.t = Hashtbl.create 64 in
  let see txn = if not (Hashtbl.mem live txn.uid) then Hashtbl.add live txn.uid txn in
  List.iter see roots;
  List.iter see t.parked;
  Array.iter (fun bucket -> List.iter see bucket) t.index;
  {
    s_racy = Bytes.copy t.knowledge.Knowledge.racy;
    s_shared = Bytes.copy t.knowledge.Knowledge.shared;
    s_txns = Hashtbl.fold (fun _ txn acc -> copy_txn txn :: acc) live [];
    s_index =
      Array.to_list t.index
      |> List.mapi (fun packed bucket ->
             (packed, List.map (fun txn -> txn.uid) bucket))
      |> List.filter (fun (_, uids) -> uids <> []);
    s_reg_stamp = Array.copy t.reg_stamp;
    s_parked = List.map (fun txn -> txn.uid) t.parked;
    s_next_uid = t.next_uid;
  }

let restore t s =
  (* Copy again on load: the snapshot stays loadable into further
     engines, and engines restored from one snapshot never share
     transactions. *)
  let tbl : (int, 'a txn) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun txn -> Hashtbl.replace tbl txn.uid (copy_txn txn)) s.s_txns;
  let of_uid uid =
    match Hashtbl.find_opt tbl uid with
    | Some txn -> txn
    | None -> invalid_arg "Online.restore: snapshot names an unknown txn"
  in
  t.knowledge.Knowledge.racy <- Bytes.copy s.s_racy;
  t.knowledge.Knowledge.shared <- Bytes.copy s.s_shared;
  let width =
    List.fold_left (fun acc (packed, _) -> max acc (packed + 1)) 64 s.s_index
  in
  let index = Array.make width [] in
  List.iter
    (fun (packed, uids) -> index.(packed) <- List.map of_uid uids)
    s.s_index;
  t.index <- index;
  t.reg_stamp <- Array.copy s.s_reg_stamp;
  t.parked <- List.map of_uid s.s_parked;
  t.next_uid <- s.s_next_uid;
  tbl
