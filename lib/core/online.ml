open Coop_trace

type fact =
  | Racy of Event.var
  | Shared of int

type publish = fact -> unit
type subscribe = (fact -> unit) -> unit

let facts publish =
  {
    Coop_race.Fasttrack.on_racy_var = (fun v -> publish (Racy v));
    on_shared_lock = (fun l -> publish (Shared l));
  }

(* What the engine currently believes. Facts are monotone — a variable
   never stops being racy, a lock never becomes thread-local again — so
   belief only grows and each classification can only be refined in one
   direction (Both -> Non for accesses, Both -> Right/Left for lock ops). *)
module Knowledge = struct
  type t = {
    racy : (Event.var, unit) Hashtbl.t;
    shared : (int, unit) Hashtbl.t;
  }

  let create () = { racy = Hashtbl.create 16; shared = Hashtbl.create 8 }

  let learn k = function
    | Racy v ->
        if Hashtbl.mem k.racy v then false
        else begin
          Hashtbl.add k.racy v ();
          true
        end
    | Shared l ->
        if Hashtbl.mem k.shared l then false
        else begin
          Hashtbl.add k.shared l ();
          true
        end

  let classify k op =
    Mover.classify_pred
      ~local_locks:(fun l -> not (Hashtbl.mem k.shared l))
      ~racy:(fun v -> Hashtbl.mem k.racy v)
      op
end

type phase =
  | Pre
  | Post

type viol = {
  vseq : int;
  vtid : int;
  vloc : Loc.t;
  vop : Event.op;
  vmover : Mover.t;
}

(* The digest keeps only what a replay needs: global position, location
   and operation of every phase-relevant op. [Out] is omitted — it is a
   both mover under any knowledge, so it can never change the machine. *)
type 'a txn = {
  uid : int;
  tid : int;
  data : 'a;
  mutable digest : (int * Loc.t * Event.op) array;
  mutable len : int;
  mutable phase : phase;
  mutable viols : viol list;  (* reversed *)
  pending : (fact, unit) Hashtbl.t;
  mutable closed : bool;
  mutable retired : bool;
}

type 'a t = {
  knowledge : Knowledge.t;
  index : (fact, 'a txn list ref) Hashtbl.t;
  on_retire : 'a txn -> unit;
  mutable parked : 'a txn list;  (* closed with unresolved pending; reversed *)
  mutable next_uid : int;
  mark : float ref option;
  timed : bool;
  mutable repair_s : float;
  mutable repairs : int;
}

let create ?mark ~on_retire () =
  {
    knowledge = Knowledge.create ();
    index = Hashtbl.create 16;
    on_retire;
    parked = [];
    next_uid = 0;
    mark;
    timed = Coop_obs.enabled ();
    repair_s = 0.;
    repairs = 0;
  }

let dummy_slot = (0, Loc.make ~func:0 ~pc:0 ~line:0, Event.Yield)

let open_txn t ~tid ~data =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  {
    uid;
    tid;
    data;
    digest = Array.make 4 dummy_slot;
    len = 0;
    phase = Pre;
    viols = [];
    pending = Hashtbl.create 4;
    closed = false;
    retired = false;
  }

let data txn = txn.data
let txn_uid txn = txn.uid
let violations txn = List.rev txn.viols

let push txn slot =
  let n = Array.length txn.digest in
  if txn.len = n then begin
    let bigger = Array.make (2 * n) dummy_slot in
    Array.blit txn.digest 0 bigger 0 n;
    txn.digest <- bigger
  end;
  txn.digest.(txn.len) <- slot;
  txn.len <- txn.len + 1

(* One move of the (R|B)* (N|L) (L|B)* machine — the exact transition
   table of [Automaton.step], including the reset-as-if-yielded rule. *)
let apply txn ~seq ~loc ~op m =
  match (txn.phase, m) with
  | Pre, (Mover.Right | Mover.Both) -> ()
  | Pre, (Mover.Non | Mover.Left) -> txn.phase <- Post
  | Post, (Mover.Left | Mover.Both) -> ()
  | Post, ((Mover.Right | Mover.Non) as m) ->
      txn.viols <-
        { vseq = seq; vtid = txn.tid; vloc = loc; vop = op; vmover = m }
        :: txn.viols;
      txn.phase <- (match m with Mover.Right -> Pre | _ -> Post)

(* Optimistic classification charged an assumption ("v is race-free",
   "l is thread-local"): remember which fact would invalidate it so a
   late arrival replays exactly the transactions that used it. *)
let register_pending t txn op =
  let want =
    match (op : Event.op) with
    | Event.Read v | Event.Write v ->
        if Hashtbl.mem t.knowledge.Knowledge.racy v then None
        else Some (Racy v)
    | Event.Acquire l | Event.Release l ->
        if Hashtbl.mem t.knowledge.Knowledge.shared l then None
        else Some (Shared l)
    | _ -> None
  in
  match want with
  | None -> ()
  | Some f ->
      if not (Hashtbl.mem txn.pending f) then begin
        Hashtbl.add txn.pending f ();
        let bucket =
          match Hashtbl.find_opt t.index f with
          | Some b -> b
          | None ->
              let b = ref [] in
              Hashtbl.add t.index f b;
              b
        in
        bucket := txn :: !bucket
      end

let step t txn ~seq (e : Event.t) =
  match Knowledge.classify t.knowledge e.op with
  | None -> ()
  | Some m -> (
      match e.op with
      | Event.Out _ -> ()  (* both mover forever: invisible to the machine *)
      | op ->
          push txn (seq, e.loc, op);
          register_pending t txn op;
          apply txn ~seq ~loc:e.loc ~op m)

(* Violations are NOT monotone in knowledge. In [rel l1; acq l2; wr v]
   with l1 shared and v racy, optimism about l2 (assumed thread-local,
   so the acquire is a both mover) flags the write — a non mover after
   the release's commit point. When shared(l2) arrives, final knowledge
   instead flags the acquire (a right mover post-commit), and that
   violation RESETS the machine to Pre, so the write now commits
   quietly. One fact moved one violation and deleted another; patching
   the violation list in place is unsound in both directions, hence
   repair recomputes the whole machine over the digest. *)
let replay t txn =
  txn.phase <- Pre;
  txn.viols <- [];
  for i = 0 to txn.len - 1 do
    let seq, loc, op = txn.digest.(i) in
    match Knowledge.classify t.knowledge op with
    | Some m -> apply txn ~seq ~loc ~op m
    | None -> assert false
  done

let retire t txn =
  txn.retired <- true;
  t.on_retire txn

let on_fact t f =
  let t0 = if t.timed then Coop_obs.now_s () else 0. in
  if Knowledge.learn t.knowledge f then begin
    match Hashtbl.find_opt t.index f with
    | None -> ()
    | Some bucket ->
        (* The fact is final: nothing will ever point at this bucket
           again, so it is dropped wholesale after the repairs. *)
        Hashtbl.remove t.index f;
        List.iter
          (fun txn ->
            Hashtbl.remove txn.pending f;
            replay t txn;
            if txn.closed && (not txn.retired) && Hashtbl.length txn.pending = 0
            then retire t txn)
          !bucket
  end;
  if t.timed then begin
    let dt = Coop_obs.now_s () -. t0 in
    t.repair_s <- t.repair_s +. dt;
    t.repairs <- t.repairs + 1;
    (* Repair runs inside the publisher's instrumented step; advancing the
       shared clock mark keeps its cost out of that checker's timer so the
       attribution shares still sum to one. *)
    match t.mark with Some m -> m := !m +. dt | None -> ()
  end

let close t txn =
  txn.closed <- true;
  if Hashtbl.length txn.pending = 0 then retire t txn
  else t.parked <- txn :: t.parked

let finalize t =
  (* Unresolved assumptions at end of stream were all correct (the
     invalidating fact never fired), so parked results are final as-is. *)
  List.iter (fun txn -> if not txn.retired then retire t txn) (List.rev t.parked);
  t.parked <- [];
  if t.timed && t.repairs > 0 then
    Coop_obs.timer_add "checker/repair" t.repair_s t.repairs
