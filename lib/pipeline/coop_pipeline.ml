open Coop_trace

type result = {
  races : Coop_race.Report.t list;
  racy : Event.Var_set.t;
  lockset_races : Coop_race.Report.t list option;
  violations : Coop_core.Automaton.violation list;
  deadlock : Coop_core.Deadlock.result;
  atomizer : Coop_atomicity.Atomizer.result option;
  conflict : Coop_atomicity.Conflict.result option;
  events : int;
}

let opt = function
  | None -> Analysis.const None
  | Some a -> Analysis.map Option.some a

let run ?(lockset = false) ?(atomize = false) ?(conflict = false) source =
  (* Phase 1: everything that needs no prior knowledge, fused behind one
     event dispatch — happens-before race detection, the optional Eraser
     baseline, the thread-local-lock scan, lock-order deadlock edges, and
     the event counter. *)
  let phase1 =
    Analysis.chain
      (Coop_race.Fasttrack.analysis ())
      (Analysis.chain
         (opt (if lockset then Some (Coop_race.Lockset.analysis ()) else None))
         (Analysis.chain
            (Coop_core.Cooperability.local_locks_analysis ())
            (Analysis.chain (Coop_core.Deadlock.analysis ()) (Analysis.count ()))))
  in
  let races, (lockset_races, (local_locks, (deadlock, events))) =
    Source.run source phase1
  in
  let racy = Coop_race.Report.racy_vars races in
  (* Phase 2: the mover/transaction checkers, which need the final racy set
     and local-lock predicate; the source is re-streamed, never stored. *)
  let phase2 =
    Analysis.chain
      (Coop_core.Automaton.analysis ~local_locks ~racy ())
      (Analysis.chain
         (opt
            (if atomize then
               Some (Coop_atomicity.Atomizer.analysis ~local_locks ~racy ())
             else None))
         (opt
            (if conflict then Some (Coop_atomicity.Conflict.analysis ())
             else None)))
  in
  let violations, (atomizer, conflict) = Source.run source phase2 in
  { races; racy; lockset_races; violations; deadlock; atomizer; conflict;
    events }

let cooperable r = r.violations = []
