open Coop_trace

type result = {
  races : Coop_race.Report.t list;
  racy : Event.Var_set.t;
  lockset_races : Coop_race.Report.t list option;
  violations : Coop_core.Automaton.violation list;
  deadlock : Coop_core.Deadlock.result;
  atomizer : Coop_atomicity.Atomizer.result option;
  conflict : Coop_atomicity.Conflict.result option;
  events : int;
}

let opt = function
  | None -> Analysis.const None
  | Some a -> Analysis.map Option.some a

(* Attribute each checker's step/finalize time to a [checker/<name>]
   timer; the checkers of one phase share a clock mark seeded by the
   enclosing [instrument_phase], so a chain of [k] checkers costs [k + 2]
   clock reads per event. With telemetry disabled [instrument] returns
   its argument, so the fused chain below is byte-identical to the
   uninstrumented one. *)
let instr mark name a =
  Analysis.instrument ~mark ~name:("checker/" ^ name) a

(* Two-pass reference: phase 1 gathers final knowledge, phase 2
   re-streams the source through the mover/transaction checkers. *)
let run_two_pass ?(lockset = false) ?(atomize = false) ?(conflict = false)
    ?(witness = false) source =
  (* Phase 1: everything that needs no prior knowledge, fused behind one
     event dispatch — happens-before race detection, the optional Eraser
     baseline, the thread-local-lock scan, lock-order deadlock edges, and
     the event counter. *)
  let mark = ref 0. in
  let instr name a = instr mark name a in
  (* Both phases share one interner (and so one dense-id space): each
     phase's chain is headed by a note stage that interns an event's
     operands once for every checker behind it. *)
  let itn = Interner.create () in
  let phase1 =
    Analysis.instrument_phase ~name:"analysis/phase1" ~mark
      (Analysis.chain
         (instr "intern" (Interner.analysis itn))
         (Analysis.chain
            (instr "fasttrack"
               (Coop_race.Fasttrack.analysis ~interner:itn ~witness ()))
            (Analysis.chain
               (opt
                  (if lockset then
                     Some
                       (instr "lockset"
                          (Coop_race.Lockset.analysis ~interner:itn ~witness ()))
                   else None))
               (Analysis.chain
                  (instr "local_locks"
                     (Coop_core.Cooperability.local_locks_analysis
                        ~interner:itn ()))
                  (Analysis.chain
                     (instr "deadlock" (Coop_core.Deadlock.analysis ()))
                     (Analysis.count ()))))))
  in
  let (), (races, (lockset_races, (local_locks, (deadlock, events)))) =
    Coop_obs.span "pipeline/phase1" (fun () -> Source.run source phase1)
  in
  let racy = Coop_race.Report.racy_vars races in
  (* Phase 2: the mover/transaction checkers, which need the final racy set
     and local-lock predicate; the source is re-streamed, never stored. *)
  let phase2 =
    Analysis.instrument_phase ~name:"analysis/phase2" ~mark
      (Analysis.chain
         (instr "intern" (Interner.analysis itn))
         (Analysis.chain
            (instr "automaton"
               (Coop_core.Automaton.analysis ~local_locks ~racy ()))
            (Analysis.chain
               (opt
                  (if atomize then
                     Some
                       (instr "atomizer"
                          (Coop_atomicity.Atomizer.analysis ~local_locks ~racy
                             ()))
                   else None))
               (opt
                  (if conflict then
                     Some
                       (instr "conflict"
                          (Coop_atomicity.Conflict.analysis ~interner:itn ()))
                   else None)))))
  in
  let (), (violations, (atomizer, conflict)) =
    Coop_obs.span "pipeline/phase2" (fun () -> Source.run source phase2)
  in
  { races; racy; lockset_races; violations; deadlock; atomizer; conflict;
    events }

(* Single-pass: the race detector publishes facts into the engine-backed
   mover checkers as they stream, so every checker — knowledge producers
   and consumers alike — rides one replay behind one event dispatch. *)
let run_online ?(lockset = false) ?(atomize = false) ?(conflict = false)
    ?(witness = false) source =
  let mark = ref 0. in
  let instr name a = instr mark name a in
  (* One interner for the whole fused chain: the head note stage interns
     each event's operands once, every checker indexes by the dense ids,
     and the fact channel between detector and engines speaks in them. *)
  let itn = Interner.create () in
  let fused =
    Analysis.instrument_phase ~name:"analysis/online" ~mark
      (Analysis.chain
         (instr "intern" (Interner.analysis itn))
         (Analysis.feedback
            (fun ~publish ->
              Analysis.chain
                (instr "fasttrack"
                   (Coop_race.Fasttrack.analysis ~interner:itn ~witness
                      ~facts:(Coop_core.Online.facts publish) ()))
                (Analysis.chain
                   (opt
                      (if lockset then
                         Some
                           (instr "lockset"
                              (Coop_race.Lockset.analysis ~interner:itn
                                 ~witness ()))
                       else None))
                   (Analysis.chain
                      (instr "deadlock" (Coop_core.Deadlock.analysis ()))
                      (Analysis.count ()))))
            (fun ~subscribe ->
              Analysis.chain
                (instr "automaton"
                   (Coop_core.Automaton.online_analysis ~mark ~interner:itn
                      ~subscribe ()))
                (Analysis.chain
                   (opt
                      (if atomize then
                         Some
                           (instr "atomizer"
                              (Coop_atomicity.Atomizer.online_analysis ~mark
                                 ~interner:itn ~subscribe ()))
                       else None))
                   (opt
                      (if conflict then
                         Some
                           (instr "conflict"
                              (Coop_atomicity.Conflict.analysis ~interner:itn
                                 ()))
                       else None))))))
  in
  let ( (),
        ( (races, (lockset_races, (deadlock, events))),
          (violations, (atomizer, conflict)) ) ) =
    Coop_obs.span "pipeline/online" (fun () -> Source.run source fused)
  in
  { races; racy = Coop_race.Report.racy_vars races; lockset_races; violations;
    deadlock; atomizer; conflict; events }

(* Ownership-sharded single pass: [Coop_core.Sharded] runs the fused
   engine per shard (FastTrack + cooperability automaton + optional
   Eraser), the Atomizer rides along as a per-shard client, and the
   globally-ordered analyses (deadlock, conflict graph) run at shard 0
   off the broadcast/aux sub-streams — so every checker still sees
   exactly the event sequence it would have seen sequentially. *)
let run_sharded ?(lockset = false) ?(atomize = false) ?(conflict = false)
    ?witness ~shards source =
  let module Sharded = Coop_core.Sharded in
  let atom_driver =
    if atomize then Some (Coop_atomicity.Atomizer.Sharded_driver.create ())
    else None
  in
  let conflict_res = ref None in
  let conflict_client ~interner =
    let a = Coop_atomicity.Conflict.analysis ~interner () in
    {
      Sharded.null_client with
      cl_aux_step = (fun ~seq:_ e -> Analysis.step a e);
      cl_finish = (fun () -> conflict_res := Some (Analysis.finalize a));
    }
  in
  let client ~shard ~interner =
    let c =
      match atom_driver with
      | Some d ->
          Coop_atomicity.Atomizer.Sharded_driver.client d ~shard ~interner
      | None -> Sharded.null_client
    in
    if conflict && shard = 0 then
      Sharded.combine_clients c (conflict_client ~interner)
    else c
  in
  let o =
    Sharded.run ~automaton:true ~lockset ~deadlock:true ~aux_access:conflict
      ?witness ~client ~shards source
  in
  {
    races = o.Sharded.races;
    racy = o.Sharded.racy;
    lockset_races = o.Sharded.lockset_races;
    violations = o.Sharded.violations;
    deadlock = Option.get o.Sharded.deadlock;
    atomizer =
      Option.map Coop_atomicity.Atomizer.Sharded_driver.result atom_driver;
    conflict = !conflict_res;
    events = o.Sharded.events;
  }

let run ?lockset ?atomize ?conflict ?(two_pass = false) ?shards ?witness
    source =
  let shards =
    match shards with
    | Some k -> k
    | None -> Coop_core.Sharded.default_shards ()
  in
  if two_pass then run_two_pass ?lockset ?atomize ?conflict ?witness source
  else if shards > 1 then
    run_sharded ?lockset ?atomize ?conflict ?witness ~shards source
  else run_online ?lockset ?atomize ?conflict ?witness source

let cooperable r = r.violations = []
