(** The fused analysis pipeline: every checker behind one event dispatch.

    This is the reproduction's "RoadRunner tool chain": one driver that
    feeds an event stream ({!Coop_trace.Source.t}) through every dynamic
    analysis, and never materializes a trace. By default everything runs
    in a {b single streaming pass}: the knowledge-free analyses —
    FastTrack happens-before race detection, the optional Eraser-lockset
    baseline, lock-order deadlock prediction, the event counter — are
    fused via [Analysis.chain], and the race detector publishes its
    discoveries through [Analysis.feedback] into the engine-backed
    mover/transaction checkers (the cooperability automaton and the
    optional Atomizer baseline) riding the same replay. The historical
    {b two-pass} mode, where phase 2 re-streams the source with the
    final racy set, is kept behind [~two_pass:true] as the reference
    oracle (and requires a replayable source).

    Memory is O(threads·vars) plus, in single-pass mode, the digests of
    transactions with unresolved optimistic assumptions; the source may
    be a recorded trace, a serialized trace streamed off disk, a
    deterministic re-execution of the program itself ([Runner.source]),
    or — single-pass only — a non-replayable pipe. Results are identical
    to the per-checker offline entry points on the same event sequence,
    and identical between the two modes — property-tested in
    [test_pipeline] and [test_differential]. *)

open Coop_trace

type result = {
  races : Coop_race.Report.t list;  (** FastTrack races, detection order. *)
  racy : Event.Var_set.t;  (** Racy variables (non-mover accesses). *)
  lockset_races : Coop_race.Report.t list option;
      (** Eraser-lockset warnings, when requested. *)
  violations : Coop_core.Automaton.violation list;
      (** Cooperability violations, program order. *)
  deadlock : Coop_core.Deadlock.result;  (** Lock-order graph and cycles. *)
  atomizer : Coop_atomicity.Atomizer.result option;
      (** Atomicity baseline, when requested. *)
  conflict : Coop_atomicity.Conflict.result option;
      (** Conflict-graph serializability, when requested. *)
  events : int;  (** Events per phase (the stream length). *)
}

val run :
  ?lockset:bool ->
  ?atomize:bool ->
  ?conflict:bool ->
  ?two_pass:bool ->
  ?shards:int ->
  ?witness:bool ->
  Source.t ->
  result
(** [run source] drives the fused chain over [source] — one replay by
    default, exactly two with [~two_pass:true] (default [false]). The
    optional flags (all default [false]) enable the Eraser-lockset,
    Atomizer and conflict-graph baselines.

    [shards] (default {!Coop_core.Sharded.default_shards}) runs the
    single pass ownership-sharded across that many sub-engines: the
    cooperability engine, race detectors and Atomizer shard by
    variable/thread ownership, while deadlock and conflict-graph run at
    shard 0 on their globally-ordered sub-streams. [1] is the sequential
    chain; results are identical at every shard count
    (property-tested). Ignored in two-pass mode.

    [witness] (default [false]) makes every FastTrack race and Eraser
    warning carry a {!Coop_race.Report.witness} (see
    {!Coop_provenance}), identical in all three modes; violations and
    Atomizer warnings always carry their commit cause. *)

val cooperable : result -> bool
(** No cooperability violations. *)
