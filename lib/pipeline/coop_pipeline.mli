(** The fused analysis pipeline: every checker in two streaming phases.

    This is the reproduction's "RoadRunner tool chain": one driver that
    feeds a replayable event stream ({!Coop_trace.Source.t}) through every
    dynamic analysis with a single event dispatch per phase, and never
    materializes a trace. Phase 1 runs the analyses that need no prior
    knowledge — FastTrack happens-before race detection, the optional
    Eraser-lockset baseline, the thread-local-lock scan, lock-order
    deadlock prediction, and the event counter — fused via
    [Analysis.chain]. Phase 2 re-streams the source through the
    mover/transaction checkers (the cooperability automaton and the
    optional Atomizer + conflict-graph baselines), which need the final
    racy set and local-lock predicate from phase 1.

    Memory is O(threads·vars) throughout; the source may be a recorded
    trace, a serialized trace streamed off disk, or a deterministic
    re-execution of the program itself ([Runner.source]). Results are
    identical to the per-checker offline entry points on the same event
    sequence — property-tested in [test_pipeline]. *)

open Coop_trace

type result = {
  races : Coop_race.Report.t list;  (** FastTrack races, detection order. *)
  racy : Event.Var_set.t;  (** Racy variables (non-mover accesses). *)
  lockset_races : Coop_race.Report.t list option;
      (** Eraser-lockset warnings, when requested. *)
  violations : Coop_core.Automaton.violation list;
      (** Cooperability violations, program order. *)
  deadlock : Coop_core.Deadlock.result;  (** Lock-order graph and cycles. *)
  atomizer : Coop_atomicity.Atomizer.result option;
      (** Atomicity baseline, when requested. *)
  conflict : Coop_atomicity.Conflict.result option;
      (** Conflict-graph serializability, when requested. *)
  events : int;  (** Events per phase (the stream length). *)
}

val run :
  ?lockset:bool -> ?atomize:bool -> ?conflict:bool -> Source.t -> result
(** [run source] drives the two fused phases over [source] (replayed
    exactly twice). The optional flags (all default [false]) enable the
    Eraser baseline in phase 1 and the Atomizer / conflict-graph baselines
    in phase 2. *)

val cooperable : result -> bool
(** No cooperability violations. *)
