(** First-class witnesses: the causal evidence behind a verdict.

    Every verdict the toolchain emits — "these two accesses race", "this
    variable has no consistent lock", "a yield is missing here" — is
    backed by a small, machine-checkable record of {e why} it holds.
    This module owns the shapes that only need trace vocabulary
    (locations, variables, thread ids): the happens-before access pair
    behind a FastTrack race and the divergent lock sets behind an Eraser
    warning. Commit-point causes for mover violations live with the
    transaction engine ([Coop_core.Online.cause]), which owns the mover
    vocabulary.

    Witnesses are plain data: capturing them is optional (detectors take
    a [?witness] flag and pay nothing when it is off), comparing them is
    structural, and serializing them is the [coop-witness/v1] JSON
    schema emitted here and validated by [bench/main.exe json-verify].
    The HB self-check that replays a race witness against the vector
    clock oracle lives in [Coop_race.Witness_check] (it needs the
    oracle). *)

open Coop_trace

type access = {
  a_tid : int;  (** Original thread id of the access. *)
  a_seq : int;  (** 1-based global position in the event stream. *)
  a_loc : Loc.t;  (** Source location of the access. *)
}
(** One end of an evidence pair. [a_seq] indexes the stream the verdict
    was produced from: event [a_seq - 1] of the materialized trace. *)

type race = {
  r_first : access;  (** The earlier conflicting access. *)
  r_second : access;  (** The access that exposed the race. *)
  r_first_clock : int;
      (** The first thread's own clock component at its access (the
          epoch FastTrack stored). *)
  r_second_sees : int;
      (** The second thread's view of the first thread's clock at the
          second access. [r_second_sees < r_first_clock] is exactly
          "first does not happen-before second"; trace order gives the
          other direction, so the pair is concurrent. *)
}
(** Evidence for a happens-before race: the two conflicting accesses and
    the clock comparison that proves them unordered. *)

type lockset = {
  l_access : access;  (** The access on which the candidate set died. *)
  l_prior : int list;
      (** Candidate locks (original handles, ascending) protecting the
          variable before this access. *)
  l_held : int list;
      (** Locks held by the accessing thread at the access, ascending.
          Disjoint from [l_prior] — that is the divergence. *)
}
(** Evidence for an Eraser warning: the two lock sets whose intersection
    emptied the candidate set. *)

type t =
  | Race of race
  | Locks of lockset

val pp_access : Format.formatter -> access -> unit
(** ["t1#20 @f0:pc3(line 7)"]. *)

val pp : Format.formatter -> t -> unit
(** One-line human-readable evidence, e.g.
    ["t0#12 @.. clock 3, t1#20 @.. sees 2: unordered"]. *)

val schema : string
(** ["coop-witness/v1"] — the value of the ["schema"] field of every
    witness JSON document. *)

val access_json : access -> Coop_util.Json.t
val race_json : race -> Coop_util.Json.t
val lockset_json : lockset -> Coop_util.Json.t

val to_json : t -> Coop_util.Json.t
(** The witness under its variant tag, as embedded in [coop-witness/v1]
    documents ([{"race": ...}] or [{"locks": ...}]). *)

(** {2 CLI surface} *)

type mode =
  | Text  (** Append witness text to the human-readable report. *)
  | Json of string option
      (** Emit a [coop-witness/v1] document — to the named file, or to
          stdout when [None]. *)

val parse_mode : string -> mode option
(** [parse_mode s] accepts ["text"], ["json"] and ["json:FILE"] (with a
    non-empty [FILE]); anything else is [None]. CLIs reject [None] with
    exit 2, mirroring the [--jobs]/[--shards] convention. *)
