open Coop_trace
module Json = Coop_util.Json

type access = {
  a_tid : int;
  a_seq : int;
  a_loc : Loc.t;
}

type race = {
  r_first : access;
  r_second : access;
  r_first_clock : int;
  r_second_sees : int;
}

type lockset = {
  l_access : access;
  l_prior : int list;
  l_held : int list;
}

type t =
  | Race of race
  | Locks of lockset

let pp_access ppf a =
  Format.fprintf ppf "t%d#%d @%a" a.a_tid a.a_seq Loc.pp a.a_loc

let pp_locks ppf ls =
  let ppl ppf = function
    | [] -> Format.pp_print_string ppf "{}"
    | l ->
        Format.fprintf ppf "{%s}"
          (String.concat "," (List.map string_of_int l))
  in
  Format.fprintf ppf "%a holds %a, prior candidates %a: disjoint" pp_access
    ls.l_access ppl ls.l_held ppl ls.l_prior

let pp ppf = function
  | Race r ->
      Format.fprintf ppf "%a clock %d, %a sees %d: unordered" pp_access
        r.r_first r.r_first_clock pp_access r.r_second r.r_second_sees
  | Locks ls -> pp_locks ppf ls

let schema = "coop-witness/v1"

let access_json a =
  Json.Obj
    [ ("tid", Json.Int a.a_tid); ("seq", Json.Int a.a_seq);
      ("loc", Json.String (Loc.to_string a.a_loc)) ]

let race_json r =
  Json.Obj
    [ ("first", access_json r.r_first); ("second", access_json r.r_second);
      ("first_clock", Json.Int r.r_first_clock);
      ("second_sees", Json.Int r.r_second_sees) ]

let lockset_json ls =
  Json.Obj
    [ ("access", access_json ls.l_access);
      ("prior", Json.List (List.map (fun l -> Json.Int l) ls.l_prior));
      ("held", Json.List (List.map (fun l -> Json.Int l) ls.l_held)) ]

let to_json = function
  | Race r -> Json.Obj [ ("race", race_json r) ]
  | Locks ls -> Json.Obj [ ("locks", lockset_json ls) ]

type mode =
  | Text
  | Json of string option

let parse_mode s =
  match s with
  | "text" -> Some Text
  | "json" -> Some (Json None)
  | _ ->
      let n = String.length s in
      if n > 5 && String.sub s 0 5 = "json:" then
        Some (Json (Some (String.sub s 5 (n - 5))))
      else None
