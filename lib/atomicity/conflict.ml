open Coop_trace

type result = {
  transactions : int;
  edges : int;
  cyclic : bool;
  cycle_witness : int list;
}

module Edge_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type var_state = {
  mutable last_writer : int;  (* txn id, -1 when none *)
  mutable readers : int list;  (* txns reading since last write *)
}

let analysis () =
  let next_txn = ref 0 in
  let fresh () =
    let n = !next_txn in
    incr next_txn;
    n
  in
  (* Per-thread: call depth and current top-level transaction. *)
  let depth : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let current : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let last_txn_of_thread : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let edges = ref Edge_set.empty in
  let add_edge a b = if a <> b && a >= 0 then edges := Edge_set.add (a, b) !edges in
  let vars : (Event.var, var_state) Hashtbl.t = Hashtbl.create 64 in
  let var_of v =
    match Hashtbl.find_opt vars v with
    | Some s -> s
    | None ->
        let s = { last_writer = -1; readers = [] } in
        Hashtbl.add vars v s;
        s
  in
  let txn_of tid =
    match Hashtbl.find_opt current tid with
    | Some t -> t
    | None ->
        (* Events outside any activation get a unary transaction. *)
        let t = fresh () in
        (match Hashtbl.find_opt last_txn_of_thread tid with
        | Some p -> add_edge p t
        | None -> ());
        Hashtbl.replace last_txn_of_thread tid t;
        t
  in
  let step (e : Event.t) =
      let tid = e.tid in
      let d = match Hashtbl.find_opt depth tid with Some d -> d | None -> 0 in
      match e.op with
      | Event.Enter _ ->
          if d = 0 then begin
            let t = fresh () in
            (match Hashtbl.find_opt last_txn_of_thread tid with
            | Some p -> add_edge p t
            | None -> ());
            Hashtbl.replace last_txn_of_thread tid t;
            Hashtbl.replace current tid t
          end;
          Hashtbl.replace depth tid (d + 1)
      | Event.Exit _ ->
          Hashtbl.replace depth tid (max 0 (d - 1));
          if d - 1 <= 0 then Hashtbl.remove current tid
      | Event.Read v ->
          let t = txn_of tid in
          let s = var_of v in
          if s.last_writer >= 0 then add_edge s.last_writer t;
          if not (List.mem t s.readers) then s.readers <- t :: s.readers
      | Event.Write v ->
          let t = txn_of tid in
          let s = var_of v in
          if s.last_writer >= 0 then add_edge s.last_writer t;
          List.iter (fun r -> add_edge r t) s.readers;
          s.last_writer <- t;
          s.readers <- []
      | Event.Acquire _ | Event.Release _ | Event.Fork _ | Event.Join _
      | Event.Yield | Event.Atomic_begin | Event.Atomic_end | Event.Out _ ->
          ()
  in
  let finalize () =
  let n = !next_txn in
  (* Cycle detection: iterative DFS with colors. *)
  let succs = Array.make (max n 1) [] in
  Edge_set.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) !edges;
  let color = Array.make (max n 1) 0 in
  (* 0 white, 1 gray, 2 black *)
  let cycle = ref [] in
  let rec dfs path v =
    if !cycle = [] then begin
      color.(v) <- 1;
      List.iter
        (fun w ->
          if !cycle = [] then begin
            if color.(w) = 1 then begin
              (* Back edge to [w]: the cycle is the DFS-path suffix from
                 [w] down to [v]. *)
              let chain = List.rev (v :: path) in
              let rec drop = function
                | x :: _ as l when x = w -> l
                | _ :: rest -> drop rest
                | [] -> [ w ]
              in
              cycle := drop chain
            end
            else if color.(w) = 0 then dfs (v :: path) w
          end)
        succs.(v);
      if !cycle = [] then color.(v) <- 2
    end
  in
  for v = 0 to n - 1 do
    if color.(v) = 0 && !cycle = [] then dfs [] v
  done;
  {
    transactions = n;
    edges = Edge_set.cardinal !edges;
    cyclic = !cycle <> [];
    cycle_witness = !cycle;
  }
  in
  Analysis.make ~step ~finalize

let check trace = Analysis.run (analysis ()) trace
