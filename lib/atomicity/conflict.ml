open Coop_trace

type result = {
  transactions : int;
  edges : int;
  cyclic : bool;
  cycle_witness : int list;
}

module Edge_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type var_state = {
  mutable last_writer : int;  (* txn id, -1 when none *)
  mutable readers : int list;  (* txns reading since last write *)
}

(* Shared placeholder for unoccupied variable slots; never mutated. *)
let dummy_var = { last_writer = -1; readers = [] }

let analysis ?interner () =
  let own_interner = interner = None in
  let itn = match interner with Some itn -> itn | None -> Interner.create () in
  let next_txn = ref 0 in
  let fresh () =
    let n = !next_txn in
    incr next_txn;
    n
  in
  (* Per-thread (dense tid): call depth, current top-level transaction
     (-1 when outside any activation) and latest transaction (-1 when
     none yet). Grown together on demand. *)
  let depth = ref (Array.make 8 0) in
  let current = ref (Array.make 8 (-1)) in
  let last_txn = ref (Array.make 8 (-1)) in
  let ensure_tid tid =
    if tid >= Array.length !depth then begin
      let grow a fill =
        let bigger = Array.make (max (tid + 1) (2 * Array.length a)) fill in
        Array.blit a 0 bigger 0 (Array.length a);
        bigger
      in
      depth := grow !depth 0;
      current := grow !current (-1);
      last_txn := grow !last_txn (-1)
    end
  in
  let edges = ref Edge_set.empty in
  let add_edge a b = if a <> b && a >= 0 then edges := Edge_set.add (a, b) !edges in
  let vars = ref (Array.make 64 dummy_var) in
  let var_of vid =
    if vid >= Array.length !vars then begin
      let bigger = Array.make (max (vid + 1) (2 * Array.length !vars)) dummy_var in
      Array.blit !vars 0 bigger 0 (Array.length !vars);
      vars := bigger
    end;
    let s = !vars.(vid) in
    if s != dummy_var then s
    else begin
      let s = { last_writer = -1; readers = [] } in
      !vars.(vid) <- s;
      s
    end
  in
  let txn_of tid =
    let t = !current.(tid) in
    if t >= 0 then t
    else begin
      (* Events outside any activation get a unary transaction. *)
      let t = fresh () in
      let p = !last_txn.(tid) in
      if p >= 0 then add_edge p t;
      !last_txn.(tid) <- t;
      t
    end
  in
  let step (e : Event.t) =
      if own_interner then Interner.note itn e;
      let tid = Interner.cur_tid itn in
      ensure_tid tid;
      match e.op with
      | Event.Enter _ ->
          let d = !depth.(tid) in
          if d = 0 then begin
            let t = fresh () in
            let p = !last_txn.(tid) in
            if p >= 0 then add_edge p t;
            !last_txn.(tid) <- t;
            !current.(tid) <- t
          end;
          !depth.(tid) <- d + 1
      | Event.Exit _ ->
          let d = !depth.(tid) in
          !depth.(tid) <- max 0 (d - 1);
          if d - 1 <= 0 then !current.(tid) <- -1
      | Event.Read _ ->
          let t = txn_of tid in
          let s = var_of (Interner.cur_operand itn) in
          if s.last_writer >= 0 then add_edge s.last_writer t;
          if not (List.mem t s.readers) then s.readers <- t :: s.readers
      | Event.Write _ ->
          let t = txn_of tid in
          let s = var_of (Interner.cur_operand itn) in
          if s.last_writer >= 0 then add_edge s.last_writer t;
          List.iter (fun r -> add_edge r t) s.readers;
          s.last_writer <- t;
          s.readers <- []
      | Event.Acquire _ | Event.Release _ | Event.Fork _ | Event.Join _
      | Event.Yield | Event.Atomic_begin | Event.Atomic_end | Event.Out _ ->
          ()
  in
  let finalize () =
  let n = !next_txn in
  (* Cycle detection: iterative DFS with colors. *)
  let succs = Array.make (max n 1) [] in
  Edge_set.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) !edges;
  let color = Array.make (max n 1) 0 in
  (* 0 white, 1 gray, 2 black *)
  let cycle = ref [] in
  let rec dfs path v =
    if !cycle = [] then begin
      color.(v) <- 1;
      List.iter
        (fun w ->
          if !cycle = [] then begin
            if color.(w) = 1 then begin
              (* Back edge to [w]: the cycle is the DFS-path suffix from
                 [w] down to [v]. *)
              let chain = List.rev (v :: path) in
              let rec drop = function
                | x :: _ as l when x = w -> l
                | _ :: rest -> drop rest
                | [] -> [ w ]
              in
              cycle := drop chain
            end
            else if color.(w) = 0 then dfs (v :: path) w
          end)
        succs.(v);
      if !cycle = [] then color.(v) <- 2
    end
  in
  for v = 0 to n - 1 do
    if color.(v) = 0 && !cycle = [] then dfs [] v
  done;
  {
    transactions = n;
    edges = Edge_set.cardinal !edges;
    cyclic = !cycle <> [];
    cycle_witness = !cycle;
  }
  in
  Analysis.make ~step ~finalize

let check trace = Analysis.run (analysis ()) trace

