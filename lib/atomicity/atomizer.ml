open Coop_trace
module Mover = Coop_core.Mover

type txn_id =
  | Func of int
  | Block of Loc.t

type warning = {
  tid : int;
  txn : txn_id;
  loc : Loc.t;
  op : Event.op;
  mover : Mover.t;
}

type result = {
  warnings : warning list;
  flagged_functions : int list;
  activations : int;
  violated_activations : int;
}

type phase =
  | Pre
  | Post

type txn = {
  id : txn_id;
  mutable phase : phase;
  mutable violated : bool;
}

let analysis ?(local_locks = fun _ -> false) ~racy () =
  let stacks : (int, txn list ref) Hashtbl.t = Hashtbl.create 8 in
  let warnings = ref [] in
  let activations = ref 0 in
  let violated = ref 0 in
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
  in
  let push tid id =
    incr activations;
    let s = stack_of tid in
    s := { id; phase = Pre; violated = false } :: !s
  in
  let pop tid =
    let s = stack_of tid in
    match !s with
    | t :: rest ->
        if t.violated then incr violated;
        s := rest
    | [] -> ()
  in
  let feed tid loc op m =
    let s = stack_of tid in
    List.iter
      (fun t ->
        match (t.phase, m) with
        | Pre, (Mover.Right | Mover.Both) -> ()
        | Pre, (Mover.Non | Mover.Left) -> t.phase <- Post
        | Post, (Mover.Left | Mover.Both) -> ()
        | Post, ((Mover.Right | Mover.Non) as m) ->
            if not t.violated then begin
              t.violated <- true;
              warnings := { tid; txn = t.id; loc; op; mover = m } :: !warnings
            end)
      !s
  in
  let step (e : Event.t) =
    match e.op with
    | Event.Enter f -> push e.tid (Func f)
    | Event.Exit _ -> pop e.tid
    | Event.Atomic_begin -> push e.tid (Block e.loc)
    | Event.Atomic_end -> pop e.tid
    | Event.Yield -> ()  (* not a transaction boundary for atomicity *)
    | op -> (
        match Mover.classify ~local_locks ~racy op with
        | None -> ()
        | Some m -> feed e.tid e.loc op m)
  in
  let finalize () =
    (* Close transactions still open at the end of the stream. *)
    Hashtbl.iter
      (fun _ s -> List.iter (fun t -> if t.violated then incr violated) !s)
      stacks;
    let warnings = List.rev !warnings in
    let flagged =
      List.fold_left
        (fun acc w -> match w.txn with Func f -> f :: acc | Block _ -> acc)
        [] warnings
      |> List.sort_uniq Int.compare
    in
    {
      warnings;
      flagged_functions = flagged;
      activations = !activations;
      violated_activations = !violated;
    }
  in
  Coop_trace.Analysis.make ~step ~finalize

let check_with_racy ?local_locks ~racy trace =
  Coop_trace.Analysis.run (analysis ?local_locks ~racy ()) trace

let check trace =
  let racy = Coop_race.Fasttrack.racy_vars_of_trace trace in
  let local_locks = Coop_core.Cooperability.local_locks_of trace in
  check_with_racy ~local_locks ~racy trace

let pp_txn ppf = function
  | Func f -> Format.fprintf ppf "fn#%d" f
  | Block l -> Format.fprintf ppf "atomic@%a" Loc.pp l

let pp_warning ppf w =
  Format.fprintf ppf "t%d: %a is not atomic: %a at %a (%a in post-commit)"
    w.tid pp_txn w.txn Event.pp_op w.op Loc.pp w.loc Mover.pp w.mover
