open Coop_trace
module Mover = Coop_core.Mover

type txn_id =
  | Func of int
  | Block of Loc.t

type warning = {
  tid : int;
  txn : txn_id;
  loc : Loc.t;
  op : Event.op;
  mover : Mover.t;
  cause : Coop_core.Online.cause option;
}

type result = {
  warnings : warning list;
  flagged_functions : int list;
  activations : int;
  violated_activations : int;
}

type phase =
  | Pre
  | Post

(* Per-activation phase machine, with the commit point of the current
   Post phase mirrored from the engine (cm_seq = 0 = none) so both paths
   blame the warning on the same op. *)
type txn = {
  id : txn_id;
  mutable phase : phase;
  mutable violated : bool;
  mutable cm_seq : int;
  mutable cm_loc : Loc.t;
  mutable cm_op : Event.op;
  mutable cm_mover : Mover.t;
}

let analysis ?(local_locks = fun _ -> false) ~racy () =
  let stacks : (int, txn list ref) Hashtbl.t = Hashtbl.create 8 in
  let warnings = ref [] in
  let activations = ref 0 in
  let violated = ref 0 in
  let seq = ref 0 in  (* 1-based global position, counts every event *)
  let stack_of tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
  in
  let push tid id =
    incr activations;
    let s = stack_of tid in
    s :=
      { id; phase = Pre; violated = false; cm_seq = 0; cm_loc = Loc.none;
        cm_op = Event.Yield; cm_mover = Mover.Both }
      :: !s
  in
  let pop tid =
    let s = stack_of tid in
    match !s with
    | t :: rest ->
        if t.violated then incr violated;
        s := rest
    | [] -> ()
  in
  let feed tid loc op m =
    let s = stack_of tid in
    List.iter
      (fun t ->
        match (t.phase, m) with
        | Pre, (Mover.Right | Mover.Both) -> ()
        | Pre, ((Mover.Non | Mover.Left) as m) ->
            t.phase <- Post;
            t.cm_seq <- !seq;
            t.cm_loc <- loc;
            t.cm_op <- op;
            t.cm_mover <- m
        | Post, (Mover.Left | Mover.Both) -> ()
        | Post, ((Mover.Right | Mover.Non) as m) ->
            if not t.violated then begin
              t.violated <- true;
              let cause =
                if t.cm_seq > 0 then
                  Some
                    { Coop_core.Online.cseq = t.cm_seq; cloc = t.cm_loc;
                      cop = t.cm_op; cmover = t.cm_mover }
                else None
              in
              warnings :=
                { tid; txn = t.id; loc; op; mover = m; cause } :: !warnings
            end)
      !s
  in
  let step (e : Event.t) =
    incr seq;
    match e.op with
    | Event.Enter f -> push e.tid (Func f)
    | Event.Exit _ -> pop e.tid
    | Event.Atomic_begin -> push e.tid (Block e.loc)
    | Event.Atomic_end -> pop e.tid
    | Event.Yield -> ()  (* not a transaction boundary for atomicity *)
    | op -> (
        match Mover.classify ~local_locks ~racy op with
        | None -> ()
        | Some m -> feed e.tid e.loc op m)
  in
  let finalize () =
    (* Close transactions still open at the end of the stream. *)
    Hashtbl.iter
      (fun _ s -> List.iter (fun t -> if t.violated then incr violated) !s)
      stacks;
    let warnings = List.rev !warnings in
    let flagged =
      List.fold_left
        (fun acc w -> match w.txn with Func f -> f :: acc | Block _ -> acc)
        [] warnings
      |> List.sort_uniq Int.compare
    in
    {
      warnings;
      flagged_functions = flagged;
      activations = !activations;
      violated_activations = !violated;
    }
  in
  Coop_trace.Analysis.make ~step ~finalize

let check_with_racy ?local_locks ~racy trace =
  Coop_trace.Analysis.run (analysis ?local_locks ~racy ()) trace

(* Single-pass variant on the shared engine. The engine's phase machine
   resets on a right-mover violation where this checker's does not (once
   violated, an activation stays violated and is never re-flagged) — but
   the two machines run identically up to the first violation, so the
   engine's first recorded violation is exactly this checker's warning,
   and "any violations at all" is the same predicate in both. *)
module Online = Coop_core.Online

let online_analysis ?mark ~interner ~subscribe () =
  let acc = ref [] in  (* (first-violation seq, txn uid, warning) *)
  let activations = ref 0 in
  let violated = ref 0 in
  let engine =
    Online.create ?mark ~interner
      ~on_retire:(fun txn ->
        match Online.violations txn with
        | [] -> ()
        | v :: _ ->
            incr violated;
            acc :=
              ( v.Online.vseq,
                Online.txn_uid txn,
                { tid = v.Online.vtid; txn = Online.data txn;
                  loc = v.Online.vloc; op = v.Online.vop;
                  mover = v.Online.vmover; cause = v.Online.vcause } )
              :: !acc)
      ()
  in
  subscribe (Online.on_fact engine);
  (* dense tid -> stack of open activations, innermost first *)
  let stacks : txn_id Online.txn list array ref = ref (Array.make 8 []) in
  let ensure tid =
    if tid >= Array.length !stacks then begin
      let bigger = Array.make (max (tid + 1) (2 * Array.length !stacks)) [] in
      Array.blit !stacks 0 bigger 0 (Array.length !stacks);
      stacks := bigger
    end
  in
  let push tid orig_tid id =
    incr activations;
    ensure tid;
    !stacks.(tid) <- Online.open_txn engine ~tid:orig_tid ~data:id :: !stacks.(tid)
  in
  let pop tid =
    ensure tid;
    match !stacks.(tid) with
    | t :: rest ->
        Online.close engine t;
        !stacks.(tid) <- rest
    | [] -> ()
  in
  let seq = ref 0 in
  let step (e : Event.t) =
    incr seq;
    let tid = Interner.cur_tid interner in
    match e.op with
    | Event.Enter f -> push tid e.tid (Func f)
    | Event.Exit _ -> pop tid
    | Event.Atomic_begin -> push tid e.tid (Block e.loc)
    | Event.Atomic_end -> pop tid
    | Event.Yield -> ()  (* not a transaction boundary for atomicity *)
    | _ ->
        if tid < Array.length !stacks then
          List.iter (fun t -> Online.step engine t ~seq:!seq e) !stacks.(tid)
  in
  let finalize () =
    Array.iter (List.iter (Online.close engine)) !stacks;
    stacks := [||];
    Online.finalize engine;
    (* The two-pass checker emits warnings in trace order, walking each
       stack innermost-first on the flagging event; uids grow outward-in
       at the same position, so (seq, uid descending) reproduces it. *)
    let warnings =
      List.sort
        (fun (s1, u1, _) (s2, u2, _) ->
          match Int.compare s1 s2 with 0 -> Int.compare u2 u1 | c -> c)
        !acc
      |> List.map (fun (_, _, w) -> w)
    in
    let flagged =
      List.fold_left
        (fun acc w -> match w.txn with Func f -> f :: acc | Block _ -> acc)
        [] warnings
      |> List.sort_uniq Int.compare
    in
    {
      warnings;
      flagged_functions = flagged;
      activations = !activations;
      violated_activations = !violated;
    }
  in
  Coop_trace.Analysis.make ~step ~finalize

let check_two_pass trace =
  let racy = Coop_race.Fasttrack.racy_vars_of_trace trace in
  let local_locks = Coop_core.Cooperability.local_locks_of trace in
  check_with_racy ~local_locks ~racy trace

(* Ownership-sharded single-pass variant: each shard runs the same
   engine-driven checker as [online_analysis] over the threads it owns
   (a thread's whole event stream arrives at one shard, in order, so the
   per-activation phase machines are exact), with racy/shared facts
   gossiped across shards by [Coop_core.Sharded]. Warnings of one event
   all come from one thread — hence one shard — so the sequential merge
   key (seq, uid descending) stays valid across shards. *)
module Sharded_driver = struct
  module Sharded = Coop_core.Sharded

  type t = {
    mutable accs : (int * int * warning) list;  (* all shards, unsorted *)
    mutable total_activations : int;
    mutable total_violated : int;
  }

  let create () = { accs = []; total_activations = 0; total_violated = 0 }

  let client d ~shard:_ ~interner =
    let acc = ref [] in
    let activations = ref 0 in
    let violated = ref 0 in
    let engine =
      Online.create ~interner
        ~on_retire:(fun txn ->
          match Online.violations txn with
          | [] -> ()
          | v :: _ ->
              incr violated;
              acc :=
                ( v.Online.vseq,
                  Online.txn_uid txn,
                  { tid = v.Online.vtid; txn = Online.data txn;
                    loc = v.Online.vloc; op = v.Online.vop;
                    mover = v.Online.vmover; cause = v.Online.vcause } )
                :: !acc)
        ()
    in
    let stacks : txn_id Online.txn list array ref = ref (Array.make 8 []) in
    let ensure tid =
      if tid >= Array.length !stacks then begin
        let bigger = Array.make (max (tid + 1) (2 * Array.length !stacks)) [] in
        Array.blit !stacks 0 bigger 0 (Array.length !stacks);
        stacks := bigger
      end
    in
    let push tid orig_tid id =
      incr activations;
      ensure tid;
      !stacks.(tid) <-
        Online.open_txn engine ~tid:orig_tid ~data:id :: !stacks.(tid)
    in
    let pop tid =
      ensure tid;
      match !stacks.(tid) with
      | t :: rest ->
          Online.close engine t;
          !stacks.(tid) <- rest
      | [] -> ()
    in
    let step ~seq (e : Event.t) =
      let tid = Interner.cur_tid interner in
      match e.op with
      | Event.Enter f -> push tid e.tid (Func f)
      | Event.Exit _ -> pop tid
      | Event.Atomic_begin -> push tid e.tid (Block e.loc)
      | Event.Atomic_end -> pop tid
      | Event.Yield -> ()  (* not a transaction boundary for atomicity *)
      | _ ->
          if tid < Array.length !stacks then
            List.iter (fun t -> Online.step engine t ~seq e) !stacks.(tid)
    in
    {
      Sharded.cl_engine_step = step;
      cl_aux_step = (fun ~seq:_ _ -> ());
      cl_fact = Online.on_fact engine;
      cl_finish =
        (fun () ->
          Array.iter (List.iter (Online.close engine)) !stacks;
          stacks := [||];
          Online.finalize engine;
          d.accs <- List.rev_append !acc d.accs;
          d.total_activations <- d.total_activations + !activations;
          d.total_violated <- d.total_violated + !violated);
    }

  let result d =
    let warnings =
      List.sort
        (fun (s1, u1, _) (s2, u2, _) ->
          match Int.compare s1 s2 with 0 -> Int.compare u2 u1 | c -> c)
        d.accs
      |> List.map (fun (_, _, w) -> w)
    in
    let flagged =
      List.fold_left
        (fun acc w -> match w.txn with Func f -> f :: acc | Block _ -> acc)
        [] warnings
      |> List.sort_uniq Int.compare
    in
    {
      warnings;
      flagged_functions = flagged;
      activations = d.total_activations;
      violated_activations = d.total_violated;
    }
end

let check_sharded ~shards trace =
  let d = Sharded_driver.create () in
  let (_ : Coop_core.Sharded.outcome) =
    Coop_core.Sharded.run ~automaton:false ~shards
      ~client:(Sharded_driver.client d)
      (Source.of_trace trace)
  in
  Sharded_driver.result d

let check ?(two_pass = false) ?shards trace =
  let shards =
    match shards with
    | Some k -> k
    | None -> Coop_core.Sharded.default_shards ()
  in
  if two_pass then check_two_pass trace
  else if shards > 1 then check_sharded ~shards trace
  else
    let itn = Interner.create () in
    let fused =
      Analysis.chain (Interner.analysis itn)
        (Analysis.feedback
           (fun ~publish ->
             Coop_race.Fasttrack.analysis ~interner:itn
               ~facts:(Online.facts publish) ())
           (fun ~subscribe -> online_analysis ~interner:itn ~subscribe ()))
    in
    snd (snd (Source.run (Source.of_trace trace) fused))

let pp_txn ppf = function
  | Func f -> Format.fprintf ppf "fn#%d" f
  | Block l -> Format.fprintf ppf "atomic@%a" Loc.pp l

let pp_warning ppf w =
  Format.fprintf ppf "t%d: %a is not atomic: %a at %a (%a in post-commit)"
    w.tid pp_txn w.txn Event.pp_op w.op Loc.pp w.loc Mover.pp w.mover
