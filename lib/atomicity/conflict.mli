(** Conflict-graph serializability over top-level function activations
    (a Velodrome-style second baseline).

    Each top-level (depth-1) function activation of a thread is a
    transaction node. Conflicting accesses between transactions of
    different threads, plus per-thread program order, induce edges; a cycle
    means the execution is not conflict-serializable. *)

type result = {
  transactions : int;  (** Nodes in the graph. *)
  edges : int;  (** Distinct directed edges. *)
  cyclic : bool;  (** Whether a cycle exists. *)
  cycle_witness : int list;  (** Node ids on one cycle, empty if acyclic. *)
}

val analysis :
  ?interner:Coop_trace.Interner.t -> unit -> result Coop_trace.Analysis.t
(** The conflict-graph builder as a single-pass online analysis: edges
    accrue per event; the cycle search runs at finalize. Per-thread and
    per-variable state is kept in flat arrays over an {!Coop_trace.Interner}'s
    dense ids; with [~interner] the builder shares a fused chain's
    interner (events noted upstream), without it it notes events
    itself. *)

val check : Coop_trace.Trace.t -> result
(** Build the conflict graph of a recorded trace and search for cycles.
    Offline wrapper over {!analysis}. *)
