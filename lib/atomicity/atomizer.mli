(** Atomizer-style atomicity checking — the baseline the paper compares
    against.

    Atomicity demands that every function body (and every explicit [atomic]
    block) is a single reducible transaction: [(R|B)* (N|L) (L|B)*] over its
    whole extent, with no reset points. Cooperability generalizes this by
    letting the programmer split a function into several transactions with
    [yield] — so atomicity reports a superset of warnings, and the gap
    between the two counts is the paper's headline comparison (Figure 3 /
    Table 2).

    Transactions nest: every event is charged to all open transactions of
    its thread, and a violation in any of them flags that transaction. Each
    activation is flagged at most once; warnings are also aggregated per
    function. [yield] events are deliberately ignored — atomicity has no
    notion of a scheduling point inside a transaction. *)

open Coop_trace

(** What a transaction is. *)
type txn_id =
  | Func of int  (** A function activation, by function index. *)
  | Block of Loc.t  (** An [atomic { .. }] block, by its begin location. *)

type warning = {
  tid : int;
  txn : txn_id;  (** The transaction that cannot be reduced. *)
  loc : Loc.t;  (** The operation that broke the pattern. *)
  op : Event.op;
  mover : Coop_core.Mover.t;
  cause : Coop_core.Online.cause option;
      (** The commit point of the activation — the causal pair's first
          half; [loc]/[op] is the second. Identical across two-pass,
          single-pass and sharded drivers. *)
}

type result = {
  warnings : warning list;  (** One per violated activation, in order. *)
  flagged_functions : int list;  (** Distinct function indices flagged. *)
  activations : int;  (** Transactions observed (functions + blocks). *)
  violated_activations : int;  (** How many of them were flagged. *)
}

val check : ?two_pass:bool -> ?shards:int -> Trace.t -> result
(** Check a recorded trace. By default a single fused pass: the race
    detector feeds racy-variable and shared-lock facts straight into the
    nested-transaction engine ({!Coop_core.Online}), which repairs
    affected activations on late facts. With [~two_pass:true], the
    reference path: FastTrack racy set and lock scan first, then the
    nested-transaction automaton (streams the trace three times). Both
    agree exactly (property-tested). Thread-local locks are both-movers,
    as in the cooperability checker, so the two analyses compare like
    for like.

    [shards] (default {!Coop_core.Sharded.default_shards}) runs the
    fused pass ownership-sharded ({!Sharded_driver}); [1] is the
    sequential engine. Ignored in two-pass mode. *)

val check_two_pass : Trace.t -> result
(** [check ~two_pass:true], named for differential tests. *)

(** The atomicity checker as a {!Coop_core.Sharded} client: each shard
    replays the engine-driven checker over the threads it owns, and
    [result] merges per-shard warnings back into sequential order
    (same-event warnings always share a shard, so the (position, uid)
    merge key carries over). Used by [check ~shards] and the pipeline's
    sharded mode. *)
module Sharded_driver : sig
  type t

  val create : unit -> t

  val client :
    t -> shard:int -> interner:Interner.t -> Coop_core.Sharded.client
  (** Pass to {!Coop_core.Sharded.run}'s [~client] (compose with
      {!Coop_core.Sharded.combine_clients} when stacking checkers). *)

  val result : t -> result
  (** Merge the per-shard contributions. Call only after
      {!Coop_core.Sharded.run} returned. *)
end

val online_analysis :
  ?mark:float ref ->
  interner:Interner.t ->
  subscribe:Coop_core.Online.subscribe ->
  unit ->
  result Analysis.t
(** The single-pass nested-transaction checker: knowledge streams in
    through [subscribe] while events flow, and affected activations are
    repaired when a fact arrives late. Finalizes to exactly what
    {!analysis} reports under final knowledge. [interner] must be the
    chain's shared interner (events noted upstream, same interner as the
    publishing detector); [mark] as in {!Coop_core.Online.create}. *)

val analysis :
  ?local_locks:(int -> bool) ->
  racy:Event.Var_set.t ->
  unit ->
  result Analysis.t
(** The nested-transaction automaton as a single-pass online analysis
    (O(threads·depth) state). Like [Automaton.analysis], the racy set and
    [local_locks] must be final knowledge — the fused pipeline runs this
    in its second streaming phase. *)

val check_with_racy :
  ?local_locks:(int -> bool) -> racy:Event.Var_set.t -> Trace.t -> result
(** Same with a precomputed racy set and local-lock predicate. Offline
    wrapper over {!analysis}. *)

val pp_warning : Format.formatter -> warning -> unit
(** Human-readable warning. *)
