#!/bin/sh
# The CI entry point: full build, test suite (sequential, with 2- and
# 4-domain shared pools, and with the analysis sharded 2 ways), bench
# smoke tests including the machine-readable JSON output. Equivalent to
# `dune build @ci`, but with per-stage output.
set -eu
cd "$(dirname "$0")"

echo "== build =="
dune build @all

echo "== tests =="
dune runtest

echo "== tests (COOP_JOBS=2: parallel analyses on the shared pool) =="
COOP_JOBS=2 dune runtest --force

echo "== tests (COOP_JOBS=4: deeper work-stealing interleavings) =="
COOP_JOBS=4 dune runtest --force

echo "== tests (COOP_SHARDS=2: ownership-sharded analysis repo-wide) =="
COOP_SHARDS=2 dune runtest --force

echo "== differential suite (single-pass engine vs two-pass oracle) =="
dune exec test/test_main.exe -- test differential

echo "== sharded differential suite (sharded 1/2/4/8 vs sequential) =="
dune exec test/test_main.exe -- test sharded

echo "== witness differential suite (HB self-check, cross-mode identity) =="
dune exec test/test_main.exe -- test witness

echo "== witness smoke (explain + check --witness, coop-witness/v1) =="
dune exec bin/coopcheck.exe -- explain tsp \
  --witness json:_build/ci-witness-tsp.json || [ $? -eq 1 ]
dune exec bench/main.exe -- json-verify _build/ci-witness-tsp.json
dune exec bin/coopcheck.exe -- check philo \
  --witness json:_build/ci-witness-philo.json || [ $? -eq 1 ]
dune exec bench/main.exe -- json-verify _build/ci-witness-philo.json

echo "== piped-trace smoke (check --trace - on stdin, one pass) =="
dune exec bin/coopcheck.exe -- trace philo -t 2 -s 2 \
  --save _build/ci-pipe-smoke.tr
dune exec bin/coopcheck.exe -- check --trace - \
  < _build/ci-pipe-smoke.tr || [ $? -eq 1 ]

echo "== codec differential (text vs binary traces, identical verdicts) =="
# The same recording saved in both formats must produce byte-identical
# verdicts and witness documents through every analysis configuration.
# `check` exits 1 when it finds violations — identical in both runs by
# construction; cmp is the gate.
dune exec bin/coopcheck.exe -- trace tsp --save _build/ci-diff.tr
dune exec bin/coopcheck.exe -- convert --to binary \
  _build/ci-diff.tr _build/ci-diff.ctr
dune exec bin/coopcheck.exe -- convert --to text \
  _build/ci-diff.ctr _build/ci-diff-roundtrip.tr
cmp _build/ci-diff.tr _build/ci-diff-roundtrip.tr
for shards in 1 2 4; do
  COOP_SHARDS=$shards dune exec bin/coopcheck.exe -- check \
    --trace _build/ci-diff.tr --witness json:_build/ci-diff-text.json \
    > _build/ci-diff-text.out || [ $? -eq 1 ]
  COOP_SHARDS=$shards dune exec bin/coopcheck.exe -- check \
    --trace _build/ci-diff.ctr --witness json:_build/ci-diff-bin.json \
    > _build/ci-diff-bin.out || [ $? -eq 1 ]
  cmp _build/ci-diff-text.out _build/ci-diff-bin.out
  cmp _build/ci-diff-text.json _build/ci-diff-bin.json
done
dune exec bin/coopcheck.exe -- check --trace - \
  < _build/ci-diff.ctr > _build/ci-diff-pipe.out || [ $? -eq 1 ]
cmp _build/ci-diff-text.out _build/ci-diff-pipe.out

echo "== replay differential (checkpointed vs stateless, identical output) =="
# Replay elision must not change what is explored or inferred: cached and
# stateless (--no-cache) runs must produce identical behaviour sets,
# yield sets and witness documents. Only explore's "dpor:" counter line
# legitimately differs (the stateless oracle replays more transitions),
# so it is stripped before the byte-for-byte compare.
dune exec bin/coopcheck.exe -- explore bank -t 2 -s 2 --dpor \
  > _build/ci-replay-cached.out
dune exec bin/coopcheck.exe -- explore bank -t 2 -s 2 --dpor --no-cache \
  > _build/ci-replay-stateless.out
grep -v '^dpor:' _build/ci-replay-cached.out > _build/ci-replay-cached.cmp
grep -v '^dpor:' _build/ci-replay-stateless.out \
  > _build/ci-replay-stateless.cmp
cmp _build/ci-replay-cached.cmp _build/ci-replay-stateless.cmp
dune exec bin/coopcheck.exe -- infer philo -t 2 -s 2 \
  --witness json:_build/ci-replay-infer-cached.json \
  > _build/ci-replay-infer-cached.out
dune exec bin/coopcheck.exe -- infer philo -t 2 -s 2 --no-cache \
  --witness json:_build/ci-replay-infer-stateless.json \
  > _build/ci-replay-infer-stateless.out
cmp _build/ci-replay-infer-cached.out _build/ci-replay-infer-stateless.out
cmp _build/ci-replay-infer-cached.json _build/ci-replay-infer-stateless.json

echo "== bench smoke (table1) =="
dune exec bench/main.exe -- table1

echo "== bench smoke (table3 --json, 2 domains, 2 workloads) =="
COOP_JOBS=2 dune exec bench/main.exe -- table3 --only philo,crypt \
  --json _build/ci-table3.json
dune exec bench/main.exe -- json-verify _build/ci-table3.json

echo "== vclock bench smoke (flat vs persistent, json-verified) =="
dune exec bench/main.exe -- vclock --json _build/ci-vclock.json
dune exec bench/main.exe -- json-verify _build/ci-vclock.json

echo "== pool bench smoke (static shards vs work stealing, json-verified) =="
dune exec bench/main.exe -- pool --json _build/ci-pool.json
dune exec bench/main.exe -- json-verify _build/ci-pool.json

echo "== scaling bench smoke (ownership-sharded analysis, json-verified) =="
dune exec bench/main.exe -- scaling --only philo,crypt --shards 1,2 \
  --json _build/ci-scaling.json
dune exec bench/main.exe -- json-verify _build/ci-scaling.json

echo "== allocation-budget smoke (minor words/event vs recorded budget) =="
dune exec bench/main.exe -- alloc-smoke

echo "== codec bench smoke (text vs binary throughput, json-verified) =="
dune exec bench/main.exe -- codec --only philo,crypt \
  --json _build/ci-codec.json
dune exec bench/main.exe -- json-verify _build/ci-codec.json

echo "== replay bench smoke (checkpointed vs stateless dpor, json-verified) =="
dune exec bench/main.exe -- replay --json _build/ci-replay.json
dune exec bench/main.exe -- json-verify _build/ci-replay.json

echo "== profile smoke (--profile-json / --chrome-trace, 2 workloads) =="
# coopcheck check exits 1 when the workload has violations; the profile
# files must be written and valid either way.
dune exec bin/coopcheck.exe -- check montecarlo \
  --profile-json _build/ci-obs-mc.json \
  --chrome-trace _build/ci-chrome-mc.json || [ $? -eq 1 ]
dune exec bench/main.exe -- json-verify _build/ci-obs-mc.json
dune exec bench/main.exe -- json-verify _build/ci-chrome-mc.json
COOP_JOBS=2 dune exec bin/coopcheck.exe -- infer philo \
  --profile-json _build/ci-obs-philo.json \
  --chrome-trace _build/ci-chrome-philo.json
dune exec bench/main.exe -- json-verify _build/ci-obs-philo.json
dune exec bench/main.exe -- json-verify _build/ci-chrome-philo.json

echo "== ci ok =="
