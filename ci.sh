#!/bin/sh
# The CI entry point: full build, test suite, bench smoke test.
# Equivalent to `dune build @ci`, but with per-stage output.
set -eu
cd "$(dirname "$0")"

echo "== build =="
dune build @all

echo "== tests =="
dune runtest

echo "== bench smoke (table1) =="
dune exec bench/main.exe -- table1

echo "== ci ok =="
