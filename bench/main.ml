(* The evaluation harness: regenerates every table and figure of the
   reproduction (see DESIGN.md for the per-experiment index and
   EXPERIMENTS.md for paper-vs-measured records).

     dune exec bench/main.exe                         # everything
     dune exec bench/main.exe table1                  # one experiment
     dune exec bench/main.exe micro                   # bechamel micro-benchmarks
     dune exec bench/main.exe -- table3 --jobs 4      # domain-parallel rows
     dune exec bench/main.exe -- table3 --json t3.json --only philo,crypt
     dune exec bench/main.exe -- json-verify t3.json  # CI validation

   Per-workload rows (and the ablation grid) are computed in parallel on
   the shared domain pool — sized by --jobs, then COOP_JOBS, then the
   machine — and always printed in canonical order; the numbers in each
   cell are computed identically either way. Absolute numbers are machine-
   and substrate-specific; the shapes (who wins, by what factor, where
   behaviour sets coincide) are what reproduce the paper. *)

open Coop_util
open Coop_lang
open Coop_runtime
open Coop_core
open Coop_workloads

(* ---------------------------------------------------------------------- *)
(* Timing helpers                                                          *)
(* ---------------------------------------------------------------------- *)

let time_median ?(reps = 5) f =
  let samples =
    Array.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (Sys.opaque_identity (f ()));
        Unix.gettimeofday () -. t0)
  in
  Stats.median samples

let ms t = Printf.sprintf "%.2f" (1000. *. t)

(* ---------------------------------------------------------------------- *)
(* CLI state (set by the driver before any experiment runs)                *)
(* ---------------------------------------------------------------------- *)

let json_out : string option ref = ref None
let only : string list option ref = ref None

let selected () =
  match !only with
  | None -> Registry.all
  | Some names ->
      List.filter (fun (e : Registry.entry) -> List.mem e.Registry.name names)
        Registry.all

let keep name =
  match !only with None -> true | Some names -> List.mem name names

(* ---------------------------------------------------------------------- *)
(* Per-workload data, computed once and shared by tables 1-3 / fig 3       *)
(* ---------------------------------------------------------------------- *)

type row = {
  entry : Registry.entry;
  prog : Bytecode.program;
  loc : int;
  trace : Coop_trace.Trace.t;  (* one reference run, with inferred yields *)
  infer : Infer.result;
  metrics : Metrics.t;
  coop0 : Cooperability.result;  (* checker output on the unannotated run *)
  atom : Coop_atomicity.Atomizer.result;
}

let build_row (e : Registry.entry) =
  let prog = Registry.program_of e in
  let loc = Registry.loc_count (Registry.source_of e) in
  let infer = Infer.infer prog in
  let sched () = Sched.random ~seed:5 () in
  let _, trace0 = Runner.record ~sched:(sched ()) prog in
  let coop0 = Cooperability.check trace0 in
  let atom = Coop_atomicity.Atomizer.check trace0 in
  let _, trace =
    Runner.record ~yields:infer.Infer.yields ~sched:(sched ()) prog
  in
  let metrics = Metrics.compute prog ~inferred:infer.Infer.yields ~trace in
  { entry = e; prog; loc; trace; infer; metrics; coop0; atom }

(* The dominant cost of the whole harness (one yield-inference fixpoint per
   workload); rows are independent, so they fan out across the pool. *)
let rows = lazy (Pool.map build_row (selected ()))

(* ---------------------------------------------------------------------- *)
(* Table 1: benchmark characteristics                                      *)
(* ---------------------------------------------------------------------- *)

let table1 () =
  let t =
    Table.create
      ~headers:
        [ ("benchmark", Table.Left); ("LoC", Table.Right);
          ("threads", Table.Right); ("bytecode", Table.Right);
          ("events", Table.Right); ("base time (ms)", Table.Right) ]
  in
  Pool.map
    (fun r ->
      let base =
        time_median (fun () ->
            Runner.run ~sched:(Sched.random ~seed:5 ())
              ~sink:Coop_trace.Trace.Sink.ignore r.prog)
      in
      [ r.entry.Registry.name; string_of_int r.loc;
        string_of_int r.entry.Registry.default_threads;
        string_of_int (Bytecode.code_size r.prog);
        string_of_int (Coop_trace.Trace.length r.trace); ms base ])
    (Lazy.force rows)
  |> List.iter (Table.add_row t);
  Table.print ~title:"Table 1: benchmark characteristics" t

(* ---------------------------------------------------------------------- *)
(* Table 2: annotation burden — cooperability vs atomicity                 *)
(* ---------------------------------------------------------------------- *)

let table2 () =
  let t =
    Table.create
      ~headers:
        [ ("benchmark", Table.Left); ("coop warn sites", Table.Right);
          ("yields (stat+inf)", Table.Right); ("yield-free fns", Table.Right);
          ("yields/kevent", Table.Right); ("atom warn sites", Table.Right);
          ("atom warn txns", Table.Right) ]
  in
  Pool.map
    (fun r ->
      let coop_sites =
        Coop_trace.Loc.Set.cardinal
          (Cooperability.violation_locs r.coop0.Cooperability.violations)
      in
      let atom_sites =
        List.fold_left
          (fun s (w : Coop_atomicity.Atomizer.warning) ->
            Coop_trace.Loc.Set.add w.Coop_atomicity.Atomizer.loc s)
          Coop_trace.Loc.Set.empty r.atom.Coop_atomicity.Atomizer.warnings
        |> Coop_trace.Loc.Set.cardinal
      in
      [ r.entry.Registry.name; string_of_int coop_sites;
        Printf.sprintf "%d+%d" r.metrics.Metrics.static_yields
          r.metrics.Metrics.inferred_yields;
        Printf.sprintf "%d/%d (%.0f%%)" r.metrics.Metrics.yield_free_functions
          r.metrics.Metrics.functions r.metrics.Metrics.pct_yield_free;
        Printf.sprintf "%.2f" r.metrics.Metrics.yields_per_kevent;
        string_of_int atom_sites;
        string_of_int r.atom.Coop_atomicity.Atomizer.violated_activations ])
    (Lazy.force rows)
  |> List.iter (Table.add_row t);
  Table.print
    ~title:
      "Table 2: annotation burden — cooperability vs method-level atomicity"
    t

(* ---------------------------------------------------------------------- *)
(* Table 3: dynamic-analysis overhead                                      *)
(* ---------------------------------------------------------------------- *)

type table3_row = {
  t3_name : string;
  t3_base : float;
  t3_race : float;
  t3_full : float;  (* single-pass engine: one execution per schedule *)
  t3_two : float;  (* two-pass oracle: re-executes for the mover phase *)
  t3_events : int;
  t3_minor_w_per_event : float;  (* full-pipeline minor words / event *)
  t3_major_collections : int;  (* major collections during that run *)
}

(* GC cost of one full-pipeline pass, sampled on a dedicated run so the
   timed medians above stay unperturbed. OCaml 5 GC counters are
   per-domain; the pipeline runs on the calling domain, so the delta is
   the run's own allocation. *)
let alloc_sample f =
  (* Flush the young generation at both window edges: the runtime only
     folds young-generation allocation into [minor_words] at minor
     collections, so an unflushed window reads 0 or a whole
     minor-heap's worth depending on where collections happened to
     land. *)
  Gc.minor ();
  let g0 = Gc.quick_stat () in
  let r = f () in
  Gc.minor ();
  let g1 = Gc.quick_stat () in
  ( r,
    g1.Gc.minor_words -. g0.Gc.minor_words,
    g1.Gc.major_collections - g0.Gc.major_collections )

let table3_measure r =
  let sched () = Sched.random ~seed:5 () in
  (* Timed at 32x the default workload size: the default-size streams run
     in single-digit milliseconds, where scheduler noise and per-run
     setup drown a median of 5; the scaled streams put every timed
     section in the tens of milliseconds. *)
  let prog =
    Registry.program_of ~size:(32 * r.entry.Registry.default_size) r.entry
  in
  let base =
    time_median (fun () ->
        Runner.run ~sched:(sched ()) ~sink:Coop_trace.Trace.Sink.ignore prog)
  in
  (* Race-only: the FastTrack analysis alone, fed straight from the VM
     sink (single pass, nothing recorded). *)
  let race =
    time_median (fun () ->
        Runner.analyze ~sched:(sched ()) (Coop_race.Fasttrack.analysis ())
          prog)
  in
  (* Full pipeline, single-pass engine: races + deadlock + counter feeding
     facts into the engine-backed cooperability automaton + Atomizer over
     ONE execution — the same fused driver the CLI uses by default. *)
  let events = ref 0 in
  let source = Runner.source ~sched prog in
  let full =
    time_median (fun () ->
        let res = Coop_pipeline.run ~atomize:true source in
        events := res.Coop_pipeline.events;
        res)
  in
  (* The two-pass oracle re-executes the program for its mover phase, so
     its cost includes a second uninstrumented-plus-dispatch run — the
     gap between the two columns is what fusing the passes buys. *)
  let two =
    time_median (fun () ->
        Coop_pipeline.run ~atomize:true ~two_pass:true source)
  in
  let _, minor_w, majors =
    alloc_sample (fun () -> Coop_pipeline.run ~atomize:true source)
  in
  { t3_name = r.entry.Registry.name; t3_base = base; t3_race = race;
    t3_full = full; t3_two = two; t3_events = !events;
    t3_minor_w_per_event = minor_w /. float_of_int (max 1 !events);
    t3_major_collections = majors }

let table3_json rows =
  Json.Obj
    [ ("experiment", Json.String "table3");
      ("jobs", Json.Int (Pool.jobs (Pool.shared ())));
      ("workloads",
       Json.List
         (List.map
            (fun w ->
              let kev dt = float_of_int w.t3_events /. 1000. /. dt in
              Json.Obj
                [ ("name", Json.String w.t3_name);
                  ("events", Json.Int w.t3_events);
                  ("base_s", Json.Float w.t3_base);
                  ("race_s", Json.Float w.t3_race);
                  ("full_s", Json.Float w.t3_full);
                  ("two_pass_s", Json.Float w.t3_two);
                  ("passes_per_schedule", Json.Int 1);
                  ("two_pass_passes", Json.Int 2);
                  ("race_slowdown", Json.Float (w.t3_race /. w.t3_base));
                  ("full_slowdown", Json.Float (w.t3_full /. w.t3_base));
                  ("two_pass_slowdown", Json.Float (w.t3_two /. w.t3_base));
                  ("race_kev_s", Json.Float (kev w.t3_race));
                  ("full_kev_s", Json.Float (kev w.t3_full));
                  ("two_pass_kev_s", Json.Float (kev w.t3_two));
                  (* Throughput of the analysis stack alone: events over
                     the time the full pipeline adds on top of the
                     uninstrumented run. The epsilon floor keeps the
                     division sane when analysis cost is within noise of
                     zero (full ~ base). *)
                  ("analysis_kev_s",
                   Json.Float
                     (float_of_int w.t3_events /. 1000.
                     /. Float.max 1e-6 (w.t3_full -. w.t3_base)));
                  ("minor_words_per_event",
                   Json.Float w.t3_minor_w_per_event);
                  ("major_collections", Json.Int w.t3_major_collections) ])
            rows)) ]

let table3 () =
  let t =
    Table.create
      ~headers:
        [ ("benchmark", Table.Left); ("base (ms)", Table.Right);
          ("events", Table.Right); ("race only", Table.Right);
          ("1-pass full", Table.Right); ("2-pass full", Table.Right);
          ("race kev/s", Table.Right); ("1-pass kev/s", Table.Right);
          ("2-pass kev/s", Table.Right); ("minor w/ev", Table.Right) ]
  in
  let measured = Pool.map table3_measure (Lazy.force rows) in
  List.iter
    (fun w ->
      let slow x = Printf.sprintf "%.2fx" (x /. w.t3_base) in
      let kev dt =
        Printf.sprintf "%.0f" (float_of_int w.t3_events /. 1000. /. dt)
      in
      Table.add_row t
        [ w.t3_name; ms w.t3_base; string_of_int w.t3_events; slow w.t3_race;
          slow w.t3_full; slow w.t3_two; kev w.t3_race; kev w.t3_full;
          kev w.t3_two; Printf.sprintf "%.1f" w.t3_minor_w_per_event ])
    measured;
  Table.print
    ~title:
      "Table 3: dynamic-analysis slowdown over uninstrumented execution \
       (fused streaming driver)"
    t;
  print_endline
    "(every column runs through the same fused Analysis driver with no\n\
     trace materialized; `full` = race detection + lock-order deadlock +\n\
     cooperability automaton + Atomizer. The 1-pass column is the default\n\
     single-pass engine — one execution per schedule, facts fed forward,\n\
     transactions repaired on late races; the 2-pass column is the\n\
     reference oracle, which re-executes the program for its mover phase.\n\
     events/sec is measured against the per-pass stream length.)\n";
  match !json_out with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Json.to_string (table3_json measured));
      close_out oc;
      Printf.printf "(wrote %s)\n" path

(* ---------------------------------------------------------------------- *)
(* Profile: per-checker overhead attribution (the paper's "dominated by    *)
(* the race detector" claim, measured per workload)                        *)
(* ---------------------------------------------------------------------- *)

(* One workload, one instrumented full-pipeline run. Deliberately
   sequential with a registry reset per workload: per-checker timers are
   process-global, so parallel rows would merge attributions across
   workloads. *)
let profile_measure (e : Registry.entry) =
  let prog = Registry.program_of e in
  Coop_obs.reset ();
  Coop_obs.enable ();
  let source =
    Runner.source ~sched:(fun () -> Sched.random ~seed:5 ()) prog
  in
  let r = Coop_pipeline.run ~atomize:true source in
  let snap = Coop_obs.snapshot () in
  Coop_obs.disable ();
  let rows, total = Coop_obs.attribution snap in
  (e.Registry.name, r.Coop_pipeline.events, rows, total)

let profile_json measured =
  Json.Obj
    [ ("experiment", Json.String "profile");
      ("jobs", Json.Int (Pool.jobs (Pool.shared ())));
      ("workloads",
       Json.List
         (List.map
            (fun (name, events, rows, total, (w_off, w_on)) ->
              Json.Obj
                [ ("name", Json.String name);
                  ("events", Json.Int events);
                  ("analysis_s", Json.Float total);
                  ("witness_off_s", Json.Float w_off);
                  ("witness_on_s", Json.Float w_on);
                  ("witness_overhead", Json.Float ((w_on -. w_off) /. w_off));
                  ("checkers",
                   Json.List
                     (List.map
                        (fun (r : Coop_obs.attribution_row) ->
                          Json.Obj
                            [ ("checker", Json.String r.Coop_obs.checker);
                              ("s", Json.Float r.Coop_obs.seconds);
                              ("share", Json.Float r.Coop_obs.share);
                              ("events", Json.Int r.Coop_obs.events) ])
                        rows)) ])
            measured)) ]

let profile () =
  (* Force the shared rows (and their inference fixpoints) BEFORE enabling
     telemetry, so the attribution below times exactly one pipeline run per
     workload. *)
  let entries = List.map (fun r -> r.entry) (Lazy.force rows) in
  (* Witness capture cost: the same fused pipeline timed with provenance
     off (the default) and on, uninstrumented so the numbers are clean.
     Off pays only a dead branch per access in the detectors; on pays
     the per-variable side tables and the witness allocation per race. *)
  let witness_cost (e : Registry.entry) =
    let prog = Registry.program_of e in
    let source () =
      Runner.source ~sched:(fun () -> Sched.random ~seed:5 ()) prog
    in
    let off =
      time_median ~reps:3 (fun () -> Coop_pipeline.run ~atomize:true (source ()))
    in
    let on =
      time_median ~reps:3 (fun () ->
          Coop_pipeline.run ~atomize:true ~witness:true (source ()))
    in
    (off, on)
  in
  let measured =
    List.map
      (fun e ->
        let name, events, rows, total = profile_measure e in
        (name, events, rows, total, witness_cost e))
      entries
  in
  let checkers =
    List.sort_uniq compare
      (List.concat_map
         (fun (_, _, rows, _, _) ->
           List.filter_map
             (fun (r : Coop_obs.attribution_row) ->
               if r.Coop_obs.events > 0 then Some r.Coop_obs.checker else None)
             rows)
         measured)
  in
  let t =
    Table.create
      ~headers:
        (("benchmark", Table.Left)
        :: ("events", Table.Right)
        :: ("analysis (ms)", Table.Right)
        :: List.map (fun c -> (c, Table.Right)) checkers
        @ [ ("dispatch/other", Table.Right) ])
  in
  List.iter
    (fun (name, events, rows, total, _) ->
      let share c =
        match
          List.find_opt
            (fun (r : Coop_obs.attribution_row) -> r.Coop_obs.checker = c)
            rows
        with
        | Some r -> Printf.sprintf "%.1f%%" (100. *. r.Coop_obs.share)
        | None -> "-"
      in
      Table.add_row t
        (name :: string_of_int events
        :: Printf.sprintf "%.2f" (1000. *. total)
        :: List.map share checkers
        @ [ share "(dispatch/other)" ]))
    measured;
  Table.print
    ~title:
      "Profile: per-checker share of the analysis sink time (full fused \
       pipeline, atomizer on)"
    t;
  print_endline
    "(shares are measured per checker step inside the fused dispatch; the\n\
     dispatch/other column is chain dispatch plus the instrumentation's own\n\
     clock reads, reported instead of hidden. Everything runs in the\n\
     single-pass engine, so there is no analysis/phase2 row any more; the\n\
     [repair] column is the engine re-running transaction digests when a\n\
     race arrives late — its cost is carved out of the publishing checker's\n\
     share. The race-detection row [fasttrack] carrying the largest checker\n\
     share on the Java-Grande-style workloads is the paper's \"slowdown\n\
     dominated by the race detector\".)\n";
  let wt =
    Table.create
      ~headers:
        [ ("benchmark", Table.Left); ("witness off (ms)", Table.Right);
          ("witness on (ms)", Table.Right); ("overhead", Table.Right) ]
  in
  List.iter
    (fun (name, _, _, _, (off, on)) ->
      Table.add_row wt
        [ name;
          Printf.sprintf "%.2f" (1000. *. off);
          Printf.sprintf "%.2f" (1000. *. on);
          Printf.sprintf "%+.1f%%" (100. *. ((on -. off) /. off)) ])
    measured;
  Table.print
    ~title:
      "Witness overhead: full pipeline with provenance capture off vs on"
    wt;
  print_endline
    "(off is the default hot path — the only cost the refactor may add is a\n\
     dead branch per access; on adds the per-variable witness side tables\n\
     and one record per race. Both runs include program execution.)\n";
  let path =
    match !json_out with Some p -> p | None -> "BENCH_profile.json"
  in
  let oc = open_out path in
  output_string oc (Json.to_string (profile_json measured));
  close_out oc;
  Printf.printf "(wrote %s)\n" path

(* ---------------------------------------------------------------------- *)
(* Figure 1: the reduction theorem, empirically                            *)
(* ---------------------------------------------------------------------- *)

let fig1 () =
  let t =
    Table.create
      ~headers:
        [ ("program", Table.Left); ("yields", Table.Right);
          ("preempt behav", Table.Right); ("coop behav", Table.Right);
          ("preempt states", Table.Right); ("coop states", Table.Right);
          ("equal", Table.Left) ]
  in
  Pool.map
    (fun (name, src) ->
      let prog = Compile.source src in
      let inf = Infer.infer prog in
      let v =
        Equivalence.compare ~yields:inf.Infer.yields ~max_states:400_000 prog
      in
      [ name;
        string_of_int (Coop_trace.Loc.Set.cardinal inf.Infer.yields);
        string_of_int
          (Behavior.Set.cardinal v.Equivalence.preemptive.Explore.behaviors);
        string_of_int
          (Behavior.Set.cardinal v.Equivalence.cooperative.Explore.behaviors);
        string_of_int v.Equivalence.preemptive.Explore.states;
        string_of_int v.Equivalence.cooperative.Explore.states;
        (if v.Equivalence.equal then "yes" else "NO") ])
    [
      ("racy_counter 2x2", Micro.racy_counter ~threads:2 ~incs:2);
      ("racy_counter 3x1", Micro.racy_counter ~threads:3 ~incs:1);
      ("locked_counter 2x2",
       Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:false);
      ("check_then_act 2", Micro.check_then_act ~threads:2);
      ("check_then_act 3", Micro.check_then_act ~threads:3);
      ("single_transaction 3", Micro.single_transaction ~threads:3);
      ("producer_consumer 2", Micro.producer_consumer ~items:2);
    ]
  |> List.iter (Table.add_row t);
  Table.print
    ~title:
      "Figure 1: behaviour sets under preemptive vs cooperative scheduling \
       (with inferred yields)"
    t;
  print_endline
    "(equal=yes on every row is the reduction theorem; cooperative state\n\
     counts are 1-2 orders of magnitude smaller — the payoff of reasoning\n\
     at yield granularity.)\n"

(* ---------------------------------------------------------------------- *)
(* Figure 2: analysis cost scales linearly in trace length                 *)
(* ---------------------------------------------------------------------- *)

let fig2 () =
  let t =
    Table.create
      ~headers:
        [ ("workload", Table.Left); ("size", Table.Right);
          ("events", Table.Right); ("check (ms)", Table.Right);
          ("us/event", Table.Right) ]
  in
  let points =
    List.concat_map
      (fun (name, sizes) -> List.map (fun size -> (name, size)) sizes)
      [ ("montecarlo", [ 5; 10; 20; 40; 80 ]); ("sor", [ 3; 6; 12; 24 ]) ]
  in
  Pool.map
    (fun (name, size) ->
      let e = Option.get (Registry.find name) in
      let prog = Registry.program_of ~size e in
      let _, trace = Runner.record ~sched:(Sched.random ~seed:5 ()) prog in
      let n = Coop_trace.Trace.length trace in
      let dt = time_median (fun () -> Cooperability.check trace) in
      [ name; string_of_int size; string_of_int n; ms dt;
        Printf.sprintf "%.2f" (1e6 *. dt /. float_of_int (max n 1)) ])
    points
  |> List.iter (Table.add_row t);
  Table.print ~title:"Figure 2: cooperability-check cost vs trace length" t;
  print_endline
    "(us/event staying flat as traces grow ~16x = the analysis is linear,\n\
     dominated by the FastTrack pass, matching the paper's overhead story.)\n"

(* ---------------------------------------------------------------------- *)
(* Figure 3: warning counts — atomicity >> cooperability                   *)
(* ---------------------------------------------------------------------- *)

let fig3 () =
  print_endline "Figure 3: residual warnings after annotation";
  print_endline "============================================";
  print_endline
    "For each benchmark: warnings before annotation, annotations added\n\
     (yields for cooperability; atomicity has no corresponding annotation),\n\
     and warnings remaining afterwards.";
  print_newline ();
  let bar n = String.make (min 60 n) '#' in
  Pool.map
    (fun r ->
      let coop_before =
        Coop_trace.Loc.Set.cardinal
          (Cooperability.violation_locs r.coop0.Cooperability.violations)
      in
      let yields = Coop_trace.Loc.Set.cardinal r.infer.Infer.yields in
      (* Re-check an annotated run: the fixpoint property says zero. *)
      let coop_after =
        List.length (Cooperability.check r.trace).Cooperability.violations
      in
      let atom_sites =
        List.fold_left
          (fun s (w : Coop_atomicity.Atomizer.warning) ->
            Coop_trace.Loc.Set.add w.Coop_atomicity.Atomizer.loc s)
          Coop_trace.Loc.Set.empty r.atom.Coop_atomicity.Atomizer.warnings
        |> Coop_trace.Loc.Set.cardinal
      in
      (* Atomicity ignores yields, so its warnings persist verbatim. *)
      let atom_after =
        List.fold_left
          (fun s (w : Coop_atomicity.Atomizer.warning) ->
            Coop_trace.Loc.Set.add w.Coop_atomicity.Atomizer.loc s)
          Coop_trace.Loc.Set.empty
          (Coop_atomicity.Atomizer.check r.trace).Coop_atomicity.Atomizer
            .warnings
        |> Coop_trace.Loc.Set.cardinal
      in
      Printf.sprintf "%-12s coop: %d sites + %d yields -> %d left  %s\n%-12s atom: %d sites + no fix   -> %d left  %s"
        r.entry.Registry.name coop_before yields coop_after
        (bar (coop_after * 6)) "" atom_sites atom_after (bar (atom_after * 6)))
    (Lazy.force rows)
  |> List.iter print_endline;
  print_endline
    "\n(the asymmetry the paper reports: every cooperability warning is\n\
     discharged by a handful of yield annotations, while atomicity warnings\n\
     are irreducible — the flagged loops and multi-lock functions genuinely\n\
     are not atomic, yet the programs are perfectly correct.)\n"

(* ---------------------------------------------------------------------- *)
(* Ablations: design choices DESIGN.md calls out                           *)
(* ---------------------------------------------------------------------- *)

(* Ablation A: race-detector substrate. The mover classification depends on
   which accesses are racy; swapping FastTrack for an Eraser-style lockset
   detector inflates the racy set and with it the violation count. *)
let ablation_substrate () =
  let t =
    Table.create
      ~headers:
        [ ("benchmark", Table.Left); ("FT racy vars", Table.Right);
          ("LS racy vars", Table.Right); ("FT warn sites", Table.Right);
          ("LS warn sites", Table.Right) ]
  in
  Pool.map
    (fun r ->
      let _, trace = Runner.record ~sched:(Sched.random ~seed:5 ()) r.prog in
      let ft = Coop_race.Fasttrack.racy_vars_of_trace trace in
      let ls = Coop_race.Lockset.racy_vars_of_trace trace in
      let local_locks = Cooperability.local_locks_of trace in
      let sites racy =
        Cooperability.check_with_racy ~local_locks ~racy trace
        |> Cooperability.violation_locs |> Coop_trace.Loc.Set.cardinal
      in
      [ r.entry.Registry.name;
        string_of_int (Coop_trace.Event.Var_set.cardinal ft);
        string_of_int (Coop_trace.Event.Var_set.cardinal ls);
        string_of_int (sites ft); string_of_int (sites ls) ])
    (Lazy.force rows)
  |> List.iter (Table.add_row t);
  Table.print
    ~title:
      "Ablation A: FastTrack (FT) vs Eraser-lockset (LS) as the race \
       substrate"
    t;
  print_endline
    "(lockset coarseness — fork/join ordering is invisible to it — inflates\n\
     the racy set and the warning sites; precise happens-before detection\n\
     is what keeps cooperability's annotation burden low.)\n"

(* Ablation B: the thread-local-lock refinement. *)
let ablation_local_locks () =
  let t =
    Table.create
      ~headers:
        [ ("program", Table.Left); ("warn sites with", Table.Right);
          ("warn sites without", Table.Right) ]
  in
  (* A program where the refinement bites: main logs under its own lock
     (never contended) while workers synchronize on another. Without the
     refinement every log region is an R..L transaction and main's logging
     loop violates; with it the log lock's operations are both movers. *)
  let main_local_lock =
    "var x = 0; var logged = 0; lock m; lock log_lock; array tids[2];\n\
     fn w(n) { var i = 0; while (i < n) { yield; sync (m) { x = x + 1; } i = i + 1; } }\n\
     fn main() { var i = 0; while (i < 2) { tids[i] = spawn w(3); i = i + 1; }\n\
     i = 0; while (i < 4) { sync (log_lock) { logged = logged + 1; } i = i + 1; }\n\
     i = 0; while (i < 2) { join tids[i]; i = i + 1; } print(x); print(logged); }"
  in
  let programs =
    (("main_local_lock", Compile.source main_local_lock)
    :: List.map
         (fun (name, src) -> (name, Compile.source src))
         Coop_workloads.Micro.all)
    @ List.map
        (fun r -> (r.entry.Registry.name, r.prog))
        (Lazy.force rows)
  in
  Pool.map
    (fun (name, prog) ->
      let _, trace = Runner.record ~sched:(Sched.random ~seed:5 ()) prog in
      let racy = Coop_race.Fasttrack.racy_vars_of_trace trace in
      let with_ =
        Cooperability.check_with_racy
          ~local_locks:(Cooperability.local_locks_of trace) ~racy trace
        |> Cooperability.violation_locs |> Coop_trace.Loc.Set.cardinal
      in
      let without =
        Cooperability.check_with_racy ~racy trace
        |> Cooperability.violation_locs |> Coop_trace.Loc.Set.cardinal
      in
      [ name; string_of_int with_; string_of_int without ])
    programs
  |> List.iter (Table.add_row t);
  Table.print
    ~title:"Ablation B: thread-local-lock refinement on vs off"
    t

(* Ablation C: schedule-portfolio composition for yield inference. *)
let ablation_portfolio () =
  let t =
    Table.create
      ~headers:
        [ ("benchmark", Table.Left); ("portfolio", Table.Left);
          ("yields", Table.Right); ("residual", Table.Right) ]
  in
  let portfolios =
    [ ("1 random", [ (fun () -> Sched.random ~seed:11 ()) ]);
      ("5 random",
       List.init 5 (fun i () -> Sched.random ~seed:(11 + (17 * i)) ()));
      ("rr only",
       [ (fun () -> Sched.round_robin ~quantum:1 ());
         (fun () -> Sched.round_robin ~quantum:3 ());
         (fun () -> Sched.round_robin ~quantum:17 ()) ]);
      ("pct only",
       [ (fun () -> Sched.pct ~seed:7 ~depth:3 ~change_span:5000 ());
         (fun () -> Sched.pct ~seed:77 ~depth:5 ~change_span:5000 ()) ]);
      ("full", Infer.default_portfolio) ]
  in
  let grid =
    List.concat_map
      (fun name -> List.map (fun p -> (name, p)) portfolios)
      (List.filter keep [ "raytracer"; "philo"; "queue"; "tsp" ])
  in
  Pool.map
    (fun (name, (pname, portfolio)) ->
      let e = Option.get (Registry.find name) in
      let prog = Registry.program_of e in
      let inf = Infer.infer ~portfolio prog in
      (* Residual: violations that the FULL portfolio still finds given
         this portfolio's yields — schedules the cheap portfolio missed. *)
      let residual = ref 0 in
      List.iter
        (fun mk ->
          let _, trace =
            Runner.record ~yields:inf.Infer.yields ~sched:(mk ()) prog
          in
          residual :=
            !residual
            + List.length (Cooperability.check trace).Cooperability.violations)
        Infer.default_portfolio;
      [ name; pname;
        string_of_int (Coop_trace.Loc.Set.cardinal inf.Infer.yields);
        string_of_int !residual ])
    grid
  |> List.iter (Table.add_row t);
  Table.print
    ~title:
      "Ablation C: inference portfolio composition (residual = violations a \
       fuller portfolio still finds)"
    t

(* Ablation D: static vs dynamic analysis. *)
let ablation_static () =
  let t =
    Table.create
      ~headers:
        [ ("benchmark", Table.Left); ("static racy regions", Table.Right);
          ("static yields", Table.Right); ("dynamic yields", Table.Right);
          ("dyn ⊆ static", Table.Left) ]
  in
  Pool.map
    (fun r ->
      let s = Coop_static.Check.infer r.prog in
      let subset =
        Coop_trace.Loc.Set.subset r.infer.Infer.yields
          s.Coop_static.Check.yields
      in
      [ r.entry.Registry.name;
        string_of_int
          (List.length s.Coop_static.Check.races.Coop_static.Races.racy);
        string_of_int (Coop_trace.Loc.Set.cardinal s.Coop_static.Check.yields);
        string_of_int (Coop_trace.Loc.Set.cardinal r.infer.Infer.yields);
        (if subset then "yes" else "no") ])
    (Lazy.force rows)
  |> List.iter (Table.add_row t);
  Table.print
    ~title:"Ablation D: purely static analysis vs the dynamic checker"
    t;
  print_endline
    "(whole-array regions, path joins and invisible join-ordering make the\n\
     static checker demand several times more yields — the imprecision that\n\
     motivates the paper's choice of a dynamic analysis.)\n"

(* Ablation E: explorer granularity — what the visible-only reduction
   saves. *)
let ablation_explore () =
  let t =
    Table.create
      ~headers:
        [ ("program", Table.Left); ("per-instr states", Table.Right);
          ("visible-only states", Table.Right); ("DPOR executions", Table.Right);
          ("same behaviours", Table.Left) ]
  in
  Pool.map
    (fun (name, src) ->
      let prog = Compile.source src in
      let fine =
        Explore.run ~max_states:800_000
          ~granularity:Explore.Every_instruction Explore.Preemptive prog
      in
      let coarse =
        Explore.run ~max_states:800_000 ~granularity:Explore.Visible_only
          Explore.Preemptive prog
      in
      let dpor = Dpor.run ~max_executions:400_000 prog in
      let agree =
        Behavior.Set.equal fine.Explore.behaviors coarse.Explore.behaviors
        && Behavior.Set.equal fine.Explore.behaviors dpor.Dpor.behaviors
      in
      [ name; string_of_int fine.Explore.states;
        string_of_int coarse.Explore.states;
        string_of_int dpor.Dpor.executions;
        (if agree then "yes" else "NO") ])
    [ ("racy_counter 2x2", Coop_workloads.Micro.racy_counter ~threads:2 ~incs:2);
      ("check_then_act 2", Coop_workloads.Micro.check_then_act ~threads:2);
      ("single_transaction 2", Coop_workloads.Micro.single_transaction ~threads:2);
      ("single_transaction 3", Coop_workloads.Micro.single_transaction ~threads:3) ]
  |> List.iter (Table.add_row t);
  Table.print
    ~title:
      "Ablation E: schedule-space reduction (stateful visible-only DFS vs \
       per-instruction DFS vs stateless sleep-set DPOR)"
    t

(* Ablation F: deadlock prediction across the suite (the reduction
   theorem's precondition). *)
let ablation_deadlock () =
  let t =
    Table.create
      ~headers:
        [ ("program", Table.Left); ("lock-order edges", Table.Right);
          ("cycles", Table.Right) ]
  in
  let programs =
    List.map (fun r -> (r.entry.Registry.name, r.prog)) (Lazy.force rows)
    @ [ ("deadlock_prone", Compile.source (Coop_workloads.Micro.deadlock_prone ())) ]
  in
  Pool.map
    (fun (name, prog) ->
      (* Use a completing run when one exists so both edges show. *)
      let rec find_trace seed =
        if seed > 40 then snd (Runner.record ~sched:(Sched.random ~seed:0 ()) prog)
        else begin
          let o, trace =
            Runner.record ~max_steps:3_000_000 ~sched:(Sched.random ~seed ()) prog
          in
          if o.Runner.termination = Runner.Completed then trace
          else find_trace (seed + 1)
        end
      in
      let r = Deadlock.analyze (find_trace 0) in
      [ name; string_of_int (List.length r.Deadlock.edges);
        string_of_int (List.length r.Deadlock.cycles) ])
    programs
  |> List.iter (Table.add_row t);
  Table.print
    ~title:
      "Ablation F: Goodlock-style deadlock prediction (zero cycles = the \
       reduction theorem's precondition holds)"
    t

let ablations () =
  ablation_substrate ();
  ablation_local_locks ();
  ablation_portfolio ();
  ablation_static ();
  ablation_explore ();
  ablation_deadlock ()

(* ---------------------------------------------------------------------- *)
(* Bechamel micro-benchmarks: one Test.make per table/figure               *)
(* ---------------------------------------------------------------------- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  (* Pre-build the inputs outside the timed thunks. Deliberately NOT
     parallelized: bechamel owns its own measurement loop and wants a quiet
     machine. *)
  let philo = Registry.program_of (Option.get (Registry.find "philo")) in
  let _, philo_trace =
    Runner.record ~sched:(Sched.random ~seed:5 ()) philo
  in
  let racy2 = Compile.source (Micro.racy_counter ~threads:2 ~incs:2) in
  let tests =
    [
      (* Table 1: raw execution. *)
      Test.make ~name:"table1/vm-run-philo"
        (Staged.stage (fun () ->
             Runner.run ~sched:(Sched.random ~seed:5 ())
               ~sink:Coop_trace.Trace.Sink.ignore philo));
      (* Table 2: inference building block — one checker pass. *)
      Test.make ~name:"table2/cooperability-check"
        (Staged.stage (fun () -> Cooperability.check philo_trace));
      (* Table 3: the race-detector pass in isolation. *)
      Test.make ~name:"table3/fasttrack-pass"
        (Staged.stage (fun () -> Coop_race.Fasttrack.run philo_trace));
      (* Table 2/3 baseline: the atomizer pass. *)
      Test.make ~name:"table2/atomizer-pass"
        (Staged.stage (fun () -> Coop_atomicity.Atomizer.check philo_trace));
      (* Figure 1: exhaustive exploration of a small program. *)
      Test.make ~name:"fig1/explore-preemptive"
        (Staged.stage (fun () ->
             Explore.run ~max_states:50_000 Explore.Preemptive racy2));
      Test.make ~name:"fig1/explore-cooperative"
        (Staged.stage (fun () ->
             Explore.run ~max_states:50_000 Explore.Cooperative racy2));
      (* Figure 2: the automaton pass alone (no race detection). *)
      Test.make ~name:"fig2/automaton-pass"
        (Staged.stage (fun () ->
             Cooperability.check_with_racy
               ~racy:Coop_trace.Event.Var_set.empty philo_trace));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.8) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances test in
    let results = Analyze.all ols Instance.monotonic_clock raw in
    results
  in
  let t =
    Table.create
      ~headers:[ ("micro-benchmark", Table.Left); ("time/run", Table.Right) ]
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> Printf.sprintf "%.0f ns" e
            | _ -> "n/a"
          in
          Table.add_row t [ name; estimate ])
        results)
    tests;
  Table.print ~title:"Bechamel micro-benchmarks" t

(* ---------------------------------------------------------------------- *)
(* Vector-clock microbenchmark: flat arrays vs the persistent map oracle   *)
(* ---------------------------------------------------------------------- *)

(* The detector's three hot loops, isolated per representation: ticks
   (release/fork), the acquire/release join-copy dance against a lock
   clock, and epoch/clock leq probes (every read and write). Thread
   counts bracket the suite's real spread (2) through a pathological
   wide run (64). Writes BENCH_vclock.json (or --json PATH), shaped for
   json-verify. *)
let vclock () =
  let module V = Coop_race.Vclock in
  let module P = Coop_race.Vclock.Persistent in
  let module E = Coop_race.Epoch in
  let ops = 200_000 in
  let flat_clocks t =
    Array.init t (fun i ->
        let c = V.create ~capacity:t () in
        V.set c i 1;
        c)
  in
  let pers_clocks t = Array.init t (fun i -> P.set P.empty i 1) in
  let flat mix t () =
    match mix with
    | "tick" ->
        let cs = flat_clocks t in
        for i = 0 to ops - 1 do
          V.tick_in_place cs.(i mod t) (i mod t)
        done
    | "join" ->
        let cs = flat_clocks t in
        let lock = V.create ~capacity:t () in
        for i = 0 to ops - 1 do
          let tid = i mod t in
          let c = cs.(tid) in
          V.join_into ~into:c lock;
          V.copy_into ~into:lock c;
          V.tick_in_place c tid
        done
    | _ ->
        let cs = flat_clocks t in
        let hits = ref 0 in
        for i = 0 to ops - 1 do
          let tid = i mod t in
          let c = cs.(tid) in
          if E.leq (E.make ~tid ~clock:1) c then incr hits;
          if V.leq c cs.((tid + 1) mod t) then incr hits;
          V.tick_in_place c tid
        done;
        ignore (Sys.opaque_identity !hits)
  in
  let pers mix t () =
    match mix with
    | "tick" ->
        let cs = pers_clocks t in
        for i = 0 to ops - 1 do
          let tid = i mod t in
          cs.(tid) <- P.tick cs.(tid) tid
        done
    | "join" ->
        let cs = pers_clocks t in
        let lock = ref P.empty in
        for i = 0 to ops - 1 do
          let tid = i mod t in
          cs.(tid) <- P.join cs.(tid) !lock;
          lock := cs.(tid);
          cs.(tid) <- P.tick cs.(tid) tid
        done
    | _ ->
        let cs = pers_clocks t in
        let hits = ref 0 in
        for i = 0 to ops - 1 do
          let tid = i mod t in
          if 1 <= P.get cs.(tid) tid then incr hits;
          if P.leq cs.(tid) cs.((tid + 1) mod t) then incr hits;
          cs.(tid) <- P.tick cs.(tid) tid
        done;
        ignore (Sys.opaque_identity !hits)
  in
  let cases =
    List.concat_map
      (fun mix ->
        List.concat_map
          (fun t ->
            [ ("flat", mix, t, flat mix t); ("persistent", mix, t, pers mix t) ])
          [ 2; 8; 64 ])
      [ "tick"; "join"; "leq" ]
  in
  let table =
    Table.create
      ~headers:
        [ ("mix", Table.Left); ("threads", Table.Right);
          ("flat Mops/s", Table.Right); ("persistent Mops/s", Table.Right);
          ("speedup", Table.Right) ]
  in
  let measured =
    List.map
      (fun (impl, mix, t, f) ->
        let s = time_median ~reps:3 f in
        (impl, mix, t, s, float_of_int ops /. 1e6 /. s))
      cases
  in
  let find impl mix t =
    List.find_map
      (fun (i, m, th, _, mops) ->
        if i = impl && m = mix && th = t then Some mops else None)
      measured
    |> Option.get
  in
  List.iter
    (fun mix ->
      List.iter
        (fun t ->
          let f = find "flat" mix t and p = find "persistent" mix t in
          Table.add_row table
            [ mix; string_of_int t; Printf.sprintf "%.1f" f;
              Printf.sprintf "%.1f" p; Printf.sprintf "%.1fx" (f /. p) ])
        [ 2; 8; 64 ])
    [ "tick"; "join"; "leq" ];
  Table.print
    ~title:"Vector-clock microbenchmark: flat in-place vs persistent map"
    table;
  let json =
    Json.Obj
      [ ("experiment", Json.String "vclock");
        ("ops_per_case", Json.Int ops);
        ("cases",
         Json.List
           (List.map
              (fun (impl, mix, t, s, mops) ->
                Json.Obj
                  [ ("impl", Json.String impl); ("mix", Json.String mix);
                    ("threads", Json.Int t); ("ops", Json.Int ops);
                    ("seconds", Json.Float s); ("mops_s", Json.Float mops) ])
              measured)) ]
  in
  let path = match !json_out with Some p -> p | None -> "BENCH_vclock.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  close_out oc;
  Printf.printf "(wrote %s)\n" path

(* ---------------------------------------------------------------------- *)
(* Allocation-budget smoke: fail CI when the hot path regresses            *)
(* ---------------------------------------------------------------------- *)

(* Budget for the full single-pass pipeline, in minor words per event on
   the montecarlo workload (seed 5, size 40 — long enough that per-event
   steady state dominates per-run setup). The figure covers VM execution
   plus every checker. Recorded after the flat-clock/interning rework
   (measured: ~1789 words/event, deterministic for this seed); the bound
   carries ~2x headroom so only a genuine regression of the per-event
   allocation discipline trips it, not GC noise. *)
let alloc_budget_minor_words_per_event = 3_500.

let alloc_smoke () =
  let e = Option.get (Registry.find "montecarlo") in
  let prog = Registry.program_of ~size:40 e in
  let source =
    Runner.source ~sched:(fun () -> Sched.random ~seed:5 ()) prog
  in
  (* Warm one run so program caches and checker tables exist, then sample. *)
  ignore (Coop_pipeline.run ~atomize:true source);
  let r, minor_w, majors =
    alloc_sample (fun () -> Coop_pipeline.run ~atomize:true source)
  in
  let per_event = minor_w /. float_of_int (max 1 r.Coop_pipeline.events) in
  Printf.printf
    "alloc-smoke: montecarlo %d events, %.1f minor words/event (budget %.1f), \
     %d major collections\n"
    r.Coop_pipeline.events per_event alloc_budget_minor_words_per_event majors;
  if per_event > alloc_budget_minor_words_per_event then begin
    Printf.eprintf
      "alloc-smoke: FAIL — %.1f minor words/event exceeds the %.1f budget\n"
      per_event alloc_budget_minor_words_per_event;
    exit 1
  end;
  print_endline "alloc-smoke: ok"

(* ---------------------------------------------------------------------- *)
(* Codec throughput: text lines vs coop-trace/v1 binary                    *)
(* ---------------------------------------------------------------------- *)

(* Both serializations of the same recorded trace (32x size, as in
   table 3, so the streams are long enough for steady-state rates),
   encode and decode timed separately on in-memory strings — pure codec
   cost, no disk, no analysis. Decode feeds the ignore sink, i.e. the
   number reported is exactly the parse share a streaming `check
   --trace` pays before its checkers see an event. Writes
   BENCH_codec.json (or --json PATH), shaped for json-verify, which
   also enforces the format's two contracts: binary no more than half
   the bytes per event, decode at least 5x the text parse rate. *)
let codec_bench () =
  let module Ser = Coop_trace.Serialize in
  let module Codec = Coop_trace.Codec in
  (* The small streams decode in tens of microseconds, where one stray
     minor-GC pause triples a single-call sample; batching calls until a
     sample spans ~10ms spreads pauses over every sample instead. *)
  let batched f =
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    let once = Unix.gettimeofday () -. t0 in
    let k = max 1 (int_of_float (0.01 /. Float.max 1e-6 once)) in
    fun () ->
      let t0 = Unix.gettimeofday () in
      for _ = 1 to k do
        ignore (Sys.opaque_identity (f ()))
      done;
      (Unix.gettimeofday () -. t0) /. float_of_int k
  in
  let timed f =
    let sample = batched f in
    Stats.median (Array.init 5 (fun _ -> sample ()))
  in
  let measure (e : Registry.entry) =
    let prog = Registry.program_of ~size:(32 * e.Registry.default_size) e in
    let _, trace = Runner.record ~sched:(Sched.random ~seed:5 ()) prog in
    let events = Coop_trace.Trace.length trace in
    let text = Ser.to_string trace in
    let bin = Codec.to_string trace in
    let sink = Coop_trace.Trace.Sink.ignore in
    let text_enc = timed (fun () -> Ser.to_string trace) in
    let bin_enc = timed (fun () -> Codec.to_string trace) in
    (* The headline number is the text/binary decode RATIO, so the two
       sides of each sample pair run back to back: the machine's clock
       and cache state drift over a run, and adjacent samples see the
       same conditions where widely separated ones do not. The reported
       speedup is the median of per-pair ratios, the rates are medians
       of their own samples. *)
    let sample_text = batched (fun () -> Ser.iter_string text sink) in
    let sample_bin = batched (fun () -> Codec.iter_string bin sink) in
    let pairs = Array.init 5 (fun _ -> (sample_text (), sample_bin ())) in
    let text_dec = Stats.median (Array.map fst pairs) in
    let bin_dec = Stats.median (Array.map snd pairs) in
    let speedup = Stats.median (Array.map (fun (td, bd) -> td /. bd) pairs) in
    let _, dec_minor, _ =
      alloc_sample (fun () -> Codec.iter_string bin sink)
    in
    let mev dt = float_of_int events /. 1e6 /. dt in
    let fev = float_of_int (max 1 events) in
    ( e.Registry.name, events,
      String.length text, String.length bin,
      mev text_enc, mev bin_enc, mev text_dec, mev bin_dec, speedup,
      dec_minor /. fev )
  in
  (* Deliberately sequential on the main domain: Pool workers drag every
     measurement through multi-domain stop-the-world barriers on each
     minor collection, halving both parse rates (the allocation-heavy
     text side most of all) and skewing the ratio. *)
  let measured = List.map measure (selected ()) in
  let table =
    Table.create
      ~headers:
        [ ("workload", Table.Left); ("events", Table.Right);
          ("text B/ev", Table.Right); ("bin B/ev", Table.Right);
          ("bytes", Table.Right);
          ("text parse Mev/s", Table.Right); ("bin decode Mev/s", Table.Right);
          ("decode", Table.Right); ("dec minor w/ev", Table.Right) ]
  in
  (* The headline suite aggregate: total events over total wall time per
     side, i.e. what a consumer replaying the whole corpus would see.
     Event-weighted, so the long steady-state streams dominate, as they
     do in any real capture. *)
  let tot f = List.fold_left (fun a m -> a +. f m) 0. measured in
  let agg_events =
    tot (fun (_, ev, _, _, _, _, _, _, _, _) -> float_of_int ev)
  in
  let agg_tb = tot (fun (_, _, tb, _, _, _, _, _, _, _) -> float_of_int tb) in
  let agg_bb = tot (fun (_, _, _, bb, _, _, _, _, _, _) -> float_of_int bb) in
  let agg_text_time =
    tot (fun (_, ev, _, _, _, _, tdec, _, _, _) ->
        float_of_int ev /. 1e6 /. tdec)
  in
  let agg_bin_time =
    tot (fun (_, ev, _, _, _, _, _, bdec, _, _) ->
        float_of_int ev /. 1e6 /. bdec)
  in
  let agg_tdec = agg_events /. 1e6 /. agg_text_time in
  let agg_bdec = agg_events /. 1e6 /. agg_bin_time in
  let agg_speedup = agg_text_time /. agg_bin_time in
  List.iter
    (fun (name, events, tb, bb, _, _, tdec, bdec, sp, wpe) ->
      let fev = float_of_int (max 1 events) in
      Table.add_row table
        [ name; string_of_int events;
          Printf.sprintf "%.1f" (float_of_int tb /. fev);
          Printf.sprintf "%.1f" (float_of_int bb /. fev);
          Printf.sprintf "%.2fx" (float_of_int bb /. float_of_int tb);
          Printf.sprintf "%.2f" tdec; Printf.sprintf "%.2f" bdec;
          Printf.sprintf "%.1fx" sp;
          Printf.sprintf "%.1f" wpe ])
    measured;
  Table.add_row table
    [ "suite"; Printf.sprintf "%.0f" agg_events;
      Printf.sprintf "%.1f" (agg_tb /. agg_events);
      Printf.sprintf "%.1f" (agg_bb /. agg_events);
      Printf.sprintf "%.2fx" (agg_bb /. agg_tb);
      Printf.sprintf "%.2f" agg_tdec; Printf.sprintf "%.2f" agg_bdec;
      Printf.sprintf "%.1fx" agg_speedup; "" ];
  Table.print ~title:"Codec throughput: text lines vs coop-trace/v1 binary"
    table;
  let json =
    Json.Obj
      [ ("experiment", Json.String "codec");
        ("jobs", Json.Int 1);
        ("workloads",
         Json.List
           (List.map
              (fun (name, events, tb, bb, tenc, benc, tdec, bdec, sp, wpe) ->
                let fev = float_of_int (max 1 events) in
                Json.Obj
                  [ ("name", Json.String name); ("events", Json.Int events);
                    ("text_bytes", Json.Int tb); ("bin_bytes", Json.Int bb);
                    ("text_bytes_per_event", Json.Float (float_of_int tb /. fev));
                    ("bin_bytes_per_event", Json.Float (float_of_int bb /. fev));
                    ("bytes_ratio",
                     Json.Float (float_of_int bb /. float_of_int tb));
                    ("text_encode_mev_s", Json.Float tenc);
                    ("bin_encode_mev_s", Json.Float benc);
                    ("text_parse_mev_s", Json.Float tdec);
                    ("bin_decode_mev_s", Json.Float bdec);
                    ("decode_speedup", Json.Float sp);
                    ("decode_minor_words_per_event", Json.Float wpe) ])
              measured));
        ("aggregate",
         Json.Obj
           [ ("events", Json.Int (int_of_float agg_events));
             ("bytes_ratio", Json.Float (agg_bb /. agg_tb));
             ("text_parse_mev_s", Json.Float agg_tdec);
             ("bin_decode_mev_s", Json.Float agg_bdec);
             ("decode_speedup", Json.Float agg_speedup) ]) ]
  in
  let path = match !json_out with Some p -> p | None -> "BENCH_codec.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  close_out oc;
  Printf.printf "(wrote %s)\n" path

(* ---------------------------------------------------------------------- *)
(* Pool microbenchmark: static sharding vs work stealing                   *)
(* ---------------------------------------------------------------------- *)

(* Scheduler load-balancing probe: the same task tree executed (a) as
   [domains] statically pre-sharded chunk tasks and (b) as one task per
   leaf, fork-join spawned so the work-stealing deques re-balance it.
   Leaves are timed waits rather than CPU spins, so the measured
   wall-clock is a pure function of distribution quality — domains
   overlap sleeps the same way they would overlap real blocking work,
   independent of the host's core count. The balanced tree cannot be
   improved by stealing (equal chunks are already optimal), so its
   steal-vs-static delta is the scheduler's overhead budget; the
   Zipf-sized tree front-loads its heavy leaves into the first static
   chunk — exactly the irregularity of DPOR root subtrees and explore
   frontiers that motivated the work-stealing rebuild. *)

let pool_leaves = 64
let pool_unit_s = 0.004

let pool_weights = function
  | "balanced" -> List.init pool_leaves (fun _ -> 1.0)
  | _ (* skewed *) ->
      (* Zipf(s=1) sizes, heaviest first: leaf i costs 8/(i+1) units. *)
      List.init pool_leaves (fun i -> 8.0 /. float_of_int (i + 1))

let pool_sleep w = Unix.sleepf (w *. pool_unit_s)

(* Contiguous split into [n] chunks — the static pre-sharding a
   parallel_map over pre-chunked inputs would do. *)
let pool_chunks n leaves =
  let arr = Array.of_list leaves in
  let len = Array.length arr in
  List.init n (fun k ->
      let lo = k * len / n and hi = (k + 1) * len / n in
      Array.to_list (Array.sub arr lo (hi - lo)))
  |> List.filter (fun c -> c <> [])

let pool_run_static pool domains leaves =
  let promises =
    List.map
      (fun chunk -> Pool.spawn pool (fun () -> List.iter pool_sleep chunk))
      (pool_chunks domains leaves)
  in
  List.iter (Pool.await pool) promises

let pool_run_steal pool leaves =
  let arr = Array.of_list leaves in
  (* Fork-join over the leaf range: every leaf its own task, spawned
     from inside tasks, so idle domains steal the un-started half-trees. *)
  let rec go lo hi =
    if hi - lo <= 1 then (if hi > lo then pool_sleep arr.(lo))
    else begin
      let mid = (lo + hi) / 2 in
      let right = Pool.spawn pool (fun () -> go mid hi) in
      go lo mid;
      Pool.await pool right
    end
  in
  go 0 (Array.length arr)

let pool_case shape impl domains =
  let pool = Pool.create ~jobs:domains () in
  let leaves = pool_weights shape in
  Coop_obs.reset ();
  Coop_obs.enable ();
  let t0 = Unix.gettimeofday () in
  (match impl with
  | "static" -> pool_run_static pool domains leaves
  | _ -> pool_run_steal pool leaves);
  let seconds = Unix.gettimeofday () -. t0 in
  let snap = Coop_obs.snapshot () in
  let steals =
    match List.assoc_opt "pool/steals" snap.Coop_obs.counters with
    | Some n -> n
    | None -> 0
  in
  Coop_obs.disable ();
  Coop_obs.reset ();
  Pool.shutdown pool;
  (seconds, steals)

let pool_bench () =
  let domains_list = [ 1; 2; 4; 8 ] in
  let shapes = [ "balanced"; "skewed" ] in
  let impls = [ "static"; "steal" ] in
  (* Timing 8 domains on a machine with fewer cores measures the OS
     scheduler multiplexing oversubscribed domains, not the pool — a
     reliably flaky row. It is emitted as "skipped" instead. *)
  let measurable domains = domains <= Domain.recommended_domain_count () || domains < 8 in
  let results =
    List.concat_map
      (fun shape ->
        List.concat_map
          (fun domains ->
            List.map
              (fun impl ->
                let m =
                  if measurable domains then
                    Some (pool_case shape impl domains)
                  else None
                in
                (shape, impl, domains, m))
              impls)
          domains_list)
      shapes
  in
  let find shape impl domains =
    List.find_map
      (fun (s, i, d, m) ->
        if s = shape && i = impl && d = domains then Some m else None)
      results
    |> Option.get
  in
  let table =
    Table.create
      ~headers:
        [ ("tree", Table.Left); ("domains", Table.Right);
          ("static (ms)", Table.Right); ("steal (ms)", Table.Right);
          ("speedup", Table.Right); ("steals", Table.Right) ]
  in
  List.iter
    (fun shape ->
      List.iter
        (fun d ->
          match (find shape "static" d, find shape "steal" d) with
          | Some (st, _), Some (ws, steals) ->
              Table.add_row table
                [ shape; string_of_int d; ms st; ms ws;
                  Printf.sprintf "%.2fx" (st /. ws); string_of_int steals ]
          | _ ->
              Table.add_row table
                [ shape; string_of_int d; "skipped"; "skipped"; "-"; "-" ])
        domains_list)
    shapes;
  Table.print
    ~title:
      (Printf.sprintf
         "Pool microbenchmark: static shards vs work stealing (%d timed-wait \
          leaves, unit %.1f ms)"
         pool_leaves (1000. *. pool_unit_s))
    table;
  let skewed_speedup_8 =
    match (find "skewed" "static" 8, find "skewed" "steal" 8) with
    | Some (st, _), Some (ws, _) -> Some (st /. ws)
    | _ -> None
  in
  let balanced_overhead_8 =
    match (find "balanced" "static" 8, find "balanced" "steal" 8) with
    | Some (st, _), Some (ws, _) -> Some ((ws /. st) -. 1.)
    | _ -> None
  in
  (match (skewed_speedup_8, balanced_overhead_8) with
  | Some sp, Some ov ->
      Printf.printf
        "pool: skewed speedup at 8 domains %.2fx, balanced overhead %+.1f%%\n"
        sp (100. *. ov)
  | _ ->
      Printf.printf
        "pool: 8-domain rows skipped (machine recommends %d domain(s))\n"
        (Domain.recommended_domain_count ()));
  let json =
    Json.Obj
      [ ("experiment", Json.String "pool");
        ("leaves", Json.Int pool_leaves);
        ("unit_ms", Json.Float (1000. *. pool_unit_s));
        ("cases",
         Json.List
           (List.map
              (fun (shape, impl, domains, m) ->
                Json.Obj
                  ([ ("shape", Json.String shape);
                     ("impl", Json.String impl);
                     ("domains", Json.Int domains);
                     ("tasks",
                      Json.Int
                        (if impl = "steal" then pool_leaves
                         else min domains pool_leaves)) ]
                  @
                  match m with
                  | Some (seconds, steals) ->
                      [ ("seconds", Json.Float seconds);
                        ("steals", Json.Int steals) ]
                  | None ->
                      [ ("seconds", Json.String "skipped");
                        ("steals", Json.String "skipped") ]))
              results));
        ("summary",
         Json.Obj
           (let opt = function
              | Some v -> Json.Float v
              | None -> Json.String "skipped"
            in
            [ ("skewed_speedup_8", opt skewed_speedup_8);
              ("balanced_overhead_8", opt balanced_overhead_8) ])) ]
  in
  let path = match !json_out with Some p -> p | None -> "BENCH_pool.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  close_out oc;
  Printf.printf "(wrote %s)\n" path

(* ---------------------------------------------------------------------- *)
(* analysis_scaling: ownership-sharded single-trace analysis               *)
(* ---------------------------------------------------------------------- *)

(* How far the ownership-sharded engine (Coop_core.Sharded) scales on one
   trace: each workload's 32x trace is recorded once, then the analysis
   stack alone is re-timed at every shard count — shards = 1 is the
   sequential fused engine (the baseline and differential oracle), K > 1
   routes the same stream across K sub-engines on a K-domain pool. The
   trace is in memory, so the measured section is pure analysis: routing,
   per-shard detection/classification, fact gossip and merge. Every
   sharded result is also checked for equality against the sequential
   one — a speedup that changed the answer would be worthless. *)

let scaling_shards = ref [ 1; 2; 4; 8 ]

let scaling () =
  let shard_counts =
    let ks = List.sort_uniq Int.compare !scaling_shards in
    if List.mem 1 ks then ks else 1 :: ks
  in
  let coop_result_equal (a : Cooperability.result) (b : Cooperability.result)
      =
    a.Cooperability.violations = b.Cooperability.violations
    && a.Cooperability.races = b.Cooperability.races
    && Coop_trace.Event.Var_set.equal a.Cooperability.racy
         b.Cooperability.racy
    && a.Cooperability.events = b.Cooperability.events
  in
  let measure (e : Registry.entry) =
    let prog = Registry.program_of ~size:(32 * e.Registry.default_size) e in
    let _, trace = Runner.record ~sched:(Sched.random ~seed:5 ()) prog in
    let source () = Coop_trace.Source.of_trace trace in
    let reference = Cooperability.check_source ~shards:1 (source ()) in
    let verified =
      List.for_all
        (fun k ->
          coop_result_equal reference
            (Cooperability.check_source ~shards:k (source ())))
        shard_counts
    in
    let cases =
      List.map
        (fun k ->
          if k = 1 then
            let seconds =
              time_median ~reps:3 (fun () ->
                  Cooperability.check_source ~shards:1 (source ()))
            in
            (* The sequential engine routes nothing, so its replication
               ratio is 0 by definition. *)
            (k, (seconds, 0.0))
          else begin
            (* A dedicated K-domain pool, so the measurement reflects K
               shards on K domains rather than whatever the shared pool
               happens to be sized to. *)
            let pool = Pool.create ~jobs:k () in
            (* One non-timed run reads the router's traffic counters:
               broadcasts / messages is the share of routed deliveries
               that are clock-sync replication at this K. *)
            let o = Sharded.run ~pool ~shards:k (source ()) in
            let ratio =
              if o.Sharded.messages = 0 then 0.0
              else
                float_of_int o.Sharded.broadcasts
                /. float_of_int o.Sharded.messages
            in
            let dt =
              time_median ~reps:3 (fun () ->
                  Sharded.run ~pool ~shards:k (source ()))
            in
            Pool.shutdown pool;
            (k, (dt, ratio))
          end)
        shard_counts
    in
    (e.Registry.name, reference.Cooperability.events, verified, cases)
  in
  let measured = List.map measure (selected ()) in
  let t =
    Table.create
      ~headers:
        [ ("benchmark", Table.Left); ("events", Table.Right);
          ("shards", Table.Right); ("analysis (ms)", Table.Right);
          ("Mev/s", Table.Right); ("speedup", Table.Right);
          ("repl", Table.Right); ("ok", Table.Right) ]
  in
  List.iter
    (fun (name, events, verified, cases) ->
      let t1, _ = List.assoc 1 cases in
      List.iter
        (fun (k, (dt, ratio)) ->
          Table.add_row t
            [ name; string_of_int events; string_of_int k; ms dt;
              Printf.sprintf "%.2f" (float_of_int events /. 1e6 /. dt);
              Printf.sprintf "%.2fx" (t1 /. dt);
              Printf.sprintf "%.2f" ratio;
              (if verified then "=" else "DIFF") ])
        cases)
    measured;
  Table.print
    ~title:
      "Analysis scaling: ownership-sharded engine vs sequential (32x \
       traces, recorded once; analysis stack only)"
    t;
  let max_shards = List.fold_left max 1 shard_counts in
  let speedup_at_max (_, _, _, cases) =
    fst (List.assoc 1 cases) /. fst (List.assoc max_shards cases)
  in
  let best_speedup =
    List.fold_left (fun acc w -> Float.max acc (speedup_at_max w)) 0. measured
  in
  let at_3x =
    List.length (List.filter (fun w -> speedup_at_max w >= 3.) measured)
  in
  Printf.printf
    "scaling: best %.2fx at %d shards; %d/%d workloads at >= 3x \
     (machine has %d domain(s))\n"
    best_speedup max_shards at_3x (List.length measured)
    (Domain.recommended_domain_count ());
  let json =
    Json.Obj
      [ ("experiment", Json.String "analysis_scaling");
        ("jobs", Json.Int (Pool.jobs (Pool.shared ())));
        ("machine_domains", Json.Int (Domain.recommended_domain_count ()));
        ("shards", Json.List (List.map (fun k -> Json.Int k) shard_counts));
        ("workloads",
         Json.List
           (List.map
              (fun (name, events, verified, cases) ->
                let t1, _ = List.assoc 1 cases in
                Json.Obj
                  [ ("name", Json.String name);
                    ("events", Json.Int events);
                    ("verified", Json.Bool verified);
                    ("cases",
                     Json.List
                       (List.map
                          (fun (k, (dt, ratio)) ->
                            Json.Obj
                              [ ("shards", Json.Int k);
                                ("seconds", Json.Float dt);
                                ("mev_s",
                                 Json.Float
                                   (float_of_int events /. 1e6 /. dt));
                                ("speedup", Json.Float (t1 /. dt));
                                ("broadcast_ratio", Json.Float ratio) ])
                          cases)) ])
              measured));
        ("summary",
         Json.Obj
           [ ("max_shards", Json.Int max_shards);
             ("best_speedup", Json.Float best_speedup);
             ("workloads_at_3x", Json.Int at_3x) ]) ]
  in
  let path =
    match !json_out with Some p -> p | None -> "BENCH_scaling.json"
  in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  close_out oc;
  Printf.printf "(wrote %s)\n" path

(* ---------------------------------------------------------------------- *)
(* replay: checkpointed prefix resumption vs the stateless oracles         *)
(* ---------------------------------------------------------------------- *)

(* Replay elision on the exploration/inference layer: DPOR with the
   checkpoint store against the stateless `~no_cache:true` oracle
   (identical behaviour sets, executions and novel steps; only the
   prefix re-derivation work differs), plus the infer portfolio's shared
   pre-divergence prefix against its stateless pass. Both engines run at
   their default budgets. Writes BENCH_replay.json
   (schema coop-replay/v1), shaped for json-verify, which re-asserts the
   headline gates: suite-median total-steps reduction >= 3x and
   wall-clock speedup >= 1.5x for DPOR, every row cross-checked against
   its oracle. *)

let replay_dpor_cases () =
  let micro name src = (name, Compile.source src) in
  let registry name ~threads ~size =
    let e = Option.get (Registry.find name) in
    ( Printf.sprintf "%s(t%d s%d)" name threads size,
      Compile.source (e.Registry.source ~threads ~size) )
  in
  [ micro "racy_counter(2x2)" (Micro.racy_counter ~threads:2 ~incs:2);
    micro "racy_counter(3x1)" (Micro.racy_counter ~threads:3 ~incs:1);
    micro "locked_counter(2x3)"
      (Micro.locked_counter ~threads:2 ~incs:3 ~yield_at_loop:false);
    micro "check_then_act(2)" (Micro.check_then_act ~threads:2);
    micro "single_transaction(3)" (Micro.single_transaction ~threads:3);
    registry "bank" ~threads:2 ~size:2 ]

let replay_infer_cases () =
  let entry name ~threads ~size =
    let e = Option.get (Registry.find name) in
    ( Printf.sprintf "%s(t%d s%d)" name threads size,
      Compile.source (e.Registry.source ~threads ~size) )
  in
  [ entry "bank" ~threads:2 ~size:2; entry "philo" ~threads:2 ~size:2 ]

let replay_bench () =
  let median_of xs =
    let a = Array.of_list xs in
    Stats.median a
  in
  let dpor_rows =
    List.map
      (fun (name, prog) ->
        let cached = Dpor.run prog in
        let stateless = Dpor.run ~no_cache:true prog in
        let cached_s = time_median ~reps:3 (fun () -> Dpor.run prog) in
        let stateless_s =
          time_median ~reps:3 (fun () -> Dpor.run ~no_cache:true prog)
        in
        (* The oracle contract: the store only changes how prefix states
           are re-derived, never what is explored. *)
        let verified =
          cached.Dpor.complete && stateless.Dpor.complete
          && Behavior.Set.equal cached.Dpor.behaviors
               stateless.Dpor.behaviors
          && cached.Dpor.executions = stateless.Dpor.executions
          && cached.Dpor.novel_steps = stateless.Dpor.novel_steps
        in
        let reduction =
          float_of_int stateless.Dpor.steps /. float_of_int cached.Dpor.steps
        in
        let speedup = stateless_s /. cached_s in
        Printf.printf
          "replay dpor %-22s %8d execs, steps %9d -> %8d (%5.2fx), wall \
           %6s -> %6s ms (%4.2fx)%s\n"
          name cached.Dpor.executions stateless.Dpor.steps cached.Dpor.steps
          reduction (ms stateless_s) (ms cached_s) speedup
          (if verified then "" else "  ORACLE MISMATCH");
        (name, cached, stateless, cached_s, stateless_s, reduction, speedup,
         verified))
      (replay_dpor_cases ())
  in
  let infer_rows =
    List.map
      (fun (name, prog) ->
        let pool = Coop_util.Pool.shared () in
        let cached = Coop_core.Infer.infer ~pool prog in
        let stateless = Coop_core.Infer.infer ~pool ~no_cache:true prog in
        let cached_s =
          time_median ~reps:3 (fun () -> Coop_core.Infer.infer ~pool prog)
        in
        let stateless_s =
          time_median ~reps:3 (fun () ->
              Coop_core.Infer.infer ~pool ~no_cache:true prog)
        in
        let verified =
          Coop_trace.Loc.Set.equal cached.Coop_core.Infer.yields
            stateless.Coop_core.Infer.yields
          && cached.Coop_core.Infer.rounds = stateless.Coop_core.Infer.rounds
          && List.map
               (fun (w : Coop_core.Infer.yield_witness) ->
                 (w.Coop_core.Infer.yw_round, w.Coop_core.Infer.yw_sched))
               cached.Coop_core.Infer.witnesses
             = List.map
                 (fun (w : Coop_core.Infer.yield_witness) ->
                   (w.Coop_core.Infer.yw_round, w.Coop_core.Infer.yw_sched))
                 stateless.Coop_core.Infer.witnesses
        in
        let speedup = stateless_s /. cached_s in
        Printf.printf
          "replay infer %-21s %2d rounds, %7d events (+%7d elided), wall \
           %6s -> %6s ms (%4.2fx)%s\n"
          name cached.Coop_core.Infer.rounds
          cached.Coop_core.Infer.events_analyzed
          cached.Coop_core.Infer.elided_events (ms stateless_s) (ms cached_s)
          speedup
          (if verified then "" else "  ORACLE MISMATCH");
        (name, cached, stateless, cached_s, stateless_s, speedup, verified))
      (replay_infer_cases ())
  in
  let table =
    Table.create
      ~headers:
        [ ("workload", Table.Left); ("executions", Table.Right);
          ("stateless steps", Table.Right); ("cached steps", Table.Right);
          ("reduction", Table.Right); ("wall speedup", Table.Right);
          ("oracle", Table.Right) ]
  in
  List.iter
    (fun (name, (c : Dpor.result), (s : Dpor.result), _, _, red, sp, ok) ->
      Table.add_row table
        [ name; string_of_int c.Dpor.executions;
          string_of_int s.Dpor.steps; string_of_int c.Dpor.steps;
          Printf.sprintf "%.2fx" red; Printf.sprintf "%.2fx" sp;
          (if ok then "ok" else "MISMATCH") ])
    dpor_rows;
  Table.print
    ~title:"Replay elision: DPOR with checkpoints vs the stateless oracle"
    table;
  let median_reduction =
    median_of
      (List.map (fun (_, _, _, _, _, red, _, _) -> red) dpor_rows)
  in
  let median_speedup =
    median_of (List.map (fun (_, _, _, _, _, _, sp, _) -> sp) dpor_rows)
  in
  Printf.printf
    "replay: dpor suite median steps reduction %.2fx (gate 3x), median wall \
     speedup %.2fx (gate 1.5x)\n"
    median_reduction median_speedup;
  let dpor_json =
    List.map
      (fun (name, (c : Dpor.result), (s : Dpor.result), cs, ss, red, sp, ok)
         ->
        Json.Obj
          [ ("name", Json.String name);
            ("executions", Json.Int c.Dpor.executions);
            ("cached_steps", Json.Int c.Dpor.steps);
            ("novel_steps", Json.Int c.Dpor.novel_steps);
            ("replayed_steps", Json.Int c.Dpor.replayed_steps);
            ("cache_hits", Json.Int c.Dpor.cache_hits);
            ("stateless_steps", Json.Int s.Dpor.steps);
            ("cached_seconds", Json.Float cs);
            ("stateless_seconds", Json.Float ss);
            ("steps_reduction", Json.Float red);
            ("speedup", Json.Float sp);
            ("verified", Json.Bool ok) ])
      dpor_rows
  in
  let infer_json =
    List.map
      (fun ( name,
             (c : Coop_core.Infer.result),
             (s : Coop_core.Infer.result),
             cs, ss, sp, ok ) ->
        Json.Obj
          [ ("name", Json.String name);
            ("rounds", Json.Int c.Coop_core.Infer.rounds);
            ("events_analyzed", Json.Int c.Coop_core.Infer.events_analyzed);
            ("prefix_events", Json.Int c.Coop_core.Infer.prefix_events);
            ("elided_events", Json.Int c.Coop_core.Infer.elided_events);
            ("cache_hits", Json.Int c.Coop_core.Infer.cache_hits);
            ("stateless_events", Json.Int s.Coop_core.Infer.events_analyzed);
            ("cached_seconds", Json.Float cs);
            ("stateless_seconds", Json.Float ss);
            ("speedup", Json.Float sp);
            ("verified", Json.Bool ok) ])
      infer_rows
  in
  let json =
    Json.Obj
      [ ("experiment", Json.String "replay");
        ("schema", Json.String "coop-replay/v1");
        ("jobs", Json.Int (Coop_util.Pool.default_jobs ()));
        ("dpor", Json.List dpor_json);
        ("infer", Json.List infer_json);
        ("summary",
         Json.Obj
           [ ("median_steps_reduction", Json.Float median_reduction);
             ("median_speedup", Json.Float median_speedup) ]) ]
  in
  let path = match !json_out with Some p -> p | None -> "BENCH_replay.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  close_out oc;
  Printf.printf "(wrote %s)\n" path

(* ---------------------------------------------------------------------- *)
(* JSON validation (the CI gate for the machine-readable output)           *)
(* ---------------------------------------------------------------------- *)

(* Validates every machine-readable document the toolchain emits, keyed by
   shape: bench results ({"experiment": "table3" | "profile"}), a Coop_obs
   snapshot ({"schema": "coop-obs/v1"}), or a Chrome trace_event array. *)
let json_verify path =
  let fail msg =
    Printf.eprintf "json-verify: %s: %s\n" path msg;
    exit 1
  in
  let contents =
    match open_in_bin path with
    | exception Sys_error e -> fail e
    | ic ->
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
  in
  let json =
    match Json.of_string contents with Ok v -> v | Error e -> fail e
  in
  let check_jobs () =
    match Json.member "jobs" json with
    | Some (Json.Int j) when j >= 1 -> ()
    | _ -> fail "missing or invalid \"jobs\" field"
  in
  let workloads_of json =
    match Json.member "workloads" json with
    | Some (Json.List (_ :: _ as ws)) -> ws
    | Some (Json.List []) -> fail "empty \"workloads\" array"
    | _ -> fail "missing \"workloads\" array"
  in
  let name_of w =
    match Json.member "name" w with
    | Some (Json.String s) -> s
    | _ -> fail "workload entry without a \"name\""
  in
  let verify_table3 () =
    check_jobs ();
    let workloads = workloads_of json in
    List.iter
      (fun w ->
        let name = name_of w in
        List.iter
          (fun field ->
            match Option.bind (Json.member field w) Json.to_float with
            | Some v when v > 0. -> ()
            | Some _ -> fail (Printf.sprintf "%s: non-positive %s" name field)
            | None -> fail (Printf.sprintf "%s: missing numeric %s" name field))
          [ "events"; "base_s"; "race_s"; "full_s"; "two_pass_s";
            "passes_per_schedule"; "two_pass_passes"; "race_slowdown";
            "full_slowdown"; "two_pass_slowdown"; "race_kev_s"; "full_kev_s";
            "two_pass_kev_s"; "analysis_kev_s"; "minor_words_per_event" ];
        (* Allocation counters: zero is legitimate for major collections. *)
        match Option.bind (Json.member "major_collections" w) Json.to_float with
        | Some v when v >= 0. -> ()
        | Some _ -> fail (Printf.sprintf "%s: negative major_collections" name)
        | None ->
            fail (Printf.sprintf "%s: missing numeric major_collections" name))
      workloads;
    Printf.printf "json-verify: %s ok (table3, %d workloads)\n" path
      (List.length workloads)
  in
  let verify_profile () =
    check_jobs ();
    let workloads = workloads_of json in
    List.iter
      (fun w ->
        let name = name_of w in
        (match Option.bind (Json.member "analysis_s" w) Json.to_float with
        | Some v when v > 0. -> ()
        | _ -> fail (Printf.sprintf "%s: missing positive analysis_s" name));
        (* Witness cost columns: both timings positive, the relative
           overhead finite (it may be slightly negative — timer noise). *)
        List.iter
          (fun field ->
            match Option.bind (Json.member field w) Json.to_float with
            | Some v when v > 0. && Float.is_finite v -> ()
            | _ -> fail (Printf.sprintf "%s: missing positive %s" name field))
          [ "witness_off_s"; "witness_on_s" ];
        (match
           Option.bind (Json.member "witness_overhead" w) Json.to_float
         with
        | Some v when Float.is_finite v -> ()
        | _ -> fail (Printf.sprintf "%s: missing finite witness_overhead" name));
        let checkers =
          match Json.member "checkers" w with
          | Some (Json.List (_ :: _ as cs)) -> cs
          | _ -> fail (Printf.sprintf "%s: missing \"checkers\" array" name)
        in
        let share_sum =
          List.fold_left
            (fun acc c ->
              (match Json.member "checker" c with
              | Some (Json.String _) -> ()
              | _ -> fail (Printf.sprintf "%s: checker without a name" name));
              match Option.bind (Json.member "share" c) Json.to_float with
              | Some s when s >= 0. && s <= 1.0001 -> acc +. s
              | _ ->
                  fail (Printf.sprintf "%s: checker without a valid share" name))
            0. checkers
        in
        (* The attribution includes an explicit dispatch/other residual, so
           the rows must account for (essentially) all the analysis time. *)
        if share_sum < 0.95 || share_sum > 1.05 then
          fail
            (Printf.sprintf "%s: checker shares sum to %.3f (want ~1)" name
               share_sum))
      workloads;
    Printf.printf "json-verify: %s ok (profile, %d workloads)\n" path
      (List.length workloads)
  in
  let verify_obs_snapshot () =
    List.iter
      (fun field ->
        match Json.member field json with
        | Some (Json.Obj _) -> ()
        | _ -> fail (Printf.sprintf "missing %S object" field))
      [ "counters"; "gauges"; "timers"; "histograms" ];
    let spans =
      match Json.member "spans" json with
      | Some (Json.List ss) -> ss
      | _ -> fail "missing \"spans\" array"
    in
    List.iter
      (fun s ->
        match
          ( Json.member "name" s,
            Option.bind (Json.member "start_us" s) Json.to_float,
            Option.bind (Json.member "dur_us" s) Json.to_float )
        with
        | Some (Json.String _), Some _, Some d when d >= 0. -> ()
        | _ -> fail "span without name/start_us/dur_us")
      spans;
    Printf.printf "json-verify: %s ok (coop-obs snapshot, %d spans)\n" path
      (List.length spans)
  in
  let verify_chrome_trace events =
    if events = [] then fail "empty trace_event array";
    List.iter
      (fun e ->
        (match
           ( Json.member "name" e, Json.member "ph" e, Json.member "pid" e,
             Json.member "tid" e )
         with
        | Some (Json.String _), Some (Json.String _), Some (Json.Int _),
          Some (Json.Int _) ->
            ()
        | _ -> fail "trace event without name/ph/pid/tid");
        match Json.member "ph" e with
        | Some (Json.String "X") -> (
            match (Json.member "ts" e, Json.member "dur" e) with
            | Some (Json.Int _), Some (Json.Int d) when d >= 0 -> ()
            | _ -> fail "complete (X) event without integer ts/dur")
        | _ -> ())
      events;
    Printf.printf "json-verify: %s ok (chrome trace, %d events)\n" path
      (List.length events)
  in
  let verify_vclock () =
    (match Option.bind (Json.member "ops_per_case" json) Json.to_float with
    | Some v when v > 0. -> ()
    | _ -> fail "missing positive \"ops_per_case\"");
    let cases =
      match Json.member "cases" json with
      | Some (Json.List (_ :: _ as cs)) -> cs
      | _ -> fail "missing non-empty \"cases\" array"
    in
    let impls = Hashtbl.create 4 and mixes = Hashtbl.create 4 in
    List.iter
      (fun c ->
        (match (Json.member "impl" c, Json.member "mix" c) with
        | Some (Json.String i), Some (Json.String m) ->
            Hashtbl.replace impls i ();
            Hashtbl.replace mixes m ()
        | _ -> fail "case without impl/mix strings");
        List.iter
          (fun field ->
            match Option.bind (Json.member field c) Json.to_float with
            | Some v when v > 0. -> ()
            | _ -> fail (Printf.sprintf "case without positive %s" field))
          [ "threads"; "ops"; "seconds"; "mops_s" ])
      cases;
    (* The experiment is a comparison: both representations and all three
       operation mixes must actually be present. *)
    List.iter
      (fun i ->
        if not (Hashtbl.mem impls i) then
          fail (Printf.sprintf "no cases for impl %S" i))
      [ "flat"; "persistent" ];
    List.iter
      (fun m ->
        if not (Hashtbl.mem mixes m) then
          fail (Printf.sprintf "no cases for mix %S" m))
      [ "tick"; "join"; "leq" ];
    Printf.printf "json-verify: %s ok (vclock, %d cases)\n" path
      (List.length cases)
  in
  let verify_pool () =
    (match Json.member "leaves" json with
    | Some (Json.Int n) when n > 0 -> ()
    | _ -> fail "missing positive \"leaves\"");
    let cases =
      match Json.member "cases" json with
      | Some (Json.List (_ :: _ as cs)) -> cs
      | _ -> fail "missing non-empty \"cases\" array"
    in
    let shapes = Hashtbl.create 4 and impls = Hashtbl.create 4 in
    List.iter
      (fun c ->
        (match (Json.member "shape" c, Json.member "impl" c) with
        | Some (Json.String s), Some (Json.String i) ->
            Hashtbl.replace shapes s ();
            Hashtbl.replace impls i ()
        | _ -> fail "case without shape/impl strings");
        List.iter
          (fun field ->
            match Option.bind (Json.member field c) Json.to_float with
            | Some v when v > 0. -> ()
            | _ -> fail (Printf.sprintf "case without positive %s" field))
          [ "domains"; "tasks" ];
        (* Rows the machine cannot time honestly (8 domains on fewer
           cores) are emitted as "skipped" rather than measured. *)
        match Json.member "seconds" c with
        | Some (Json.String "skipped") -> (
            match Json.member "steals" c with
            | Some (Json.String "skipped") -> ()
            | _ -> fail "skipped case with a measured \"steals\" count")
        | _ -> (
            (match Option.bind (Json.member "seconds" c) Json.to_float with
            | Some v when v > 0. -> ()
            | _ -> fail "case without positive seconds");
            match Json.member "steals" c with
            | Some (Json.Int s) when s >= 0 -> ()
            | _ -> fail "case without a non-negative \"steals\" count"))
      cases;
    (* The experiment is a comparison: both tree shapes and both
       scheduling strategies must actually be present. *)
    List.iter
      (fun s ->
        if not (Hashtbl.mem shapes s) then
          fail (Printf.sprintf "no cases for shape %S" s))
      [ "balanced"; "skewed" ];
    List.iter
      (fun i ->
        if not (Hashtbl.mem impls i) then
          fail (Printf.sprintf "no cases for impl %S" i))
      [ "static"; "steal" ];
    (match Json.member "summary" json with
    | Some summary ->
        List.iter
          (fun field ->
            match Json.member field summary with
            | Some (Json.String "skipped") -> ()
            | m -> (
                match Option.bind m Json.to_float with
                | Some v when Float.is_finite v -> ()
                | _ ->
                    fail
                      (Printf.sprintf "summary without finite %s (or \
                                       \"skipped\")" field)))
          [ "skewed_speedup_8"; "balanced_overhead_8" ]
    | None -> fail "missing \"summary\" object");
    Printf.printf "json-verify: %s ok (pool, %d cases)\n" path
      (List.length cases)
  in
  let verify_codec () =
    (match Json.member "jobs" json with
    | Some (Json.Int n) when n > 0 -> ()
    | _ -> fail "missing positive \"jobs\"");
    let workloads =
      match Json.member "workloads" json with
      | Some (Json.List (_ :: _ as ws)) -> ws
      | _ -> fail "missing non-empty \"workloads\" array"
    in
    List.iter
      (fun w ->
        let name =
          match Json.member "name" w with
          | Some (Json.String n) -> n
          | _ -> fail "workload without a name"
        in
        let ctx field = Printf.sprintf "workload %s: %s" name field in
        List.iter
          (fun field ->
            match Json.member field w with
            | Some (Json.Int n) when n > 0 -> ()
            | _ -> fail (ctx (Printf.sprintf "missing positive %s" field)))
          [ "events"; "text_bytes"; "bin_bytes" ];
        List.iter
          (fun field ->
            match Option.bind (Json.member field w) Json.to_float with
            | Some v when v > 0. -> ()
            | _ -> fail (ctx (Printf.sprintf "missing positive %s" field)))
          [ "text_bytes_per_event"; "bin_bytes_per_event"; "bytes_ratio";
            "text_encode_mev_s"; "bin_encode_mev_s"; "text_parse_mev_s";
            "bin_decode_mev_s"; "decode_speedup" ];
        (match Json.member "decode_minor_words_per_event" w with
        | Some m -> (
            match Json.to_float m with
            | Some v when v >= 0. -> ()
            | _ -> fail (ctx "negative decode_minor_words_per_event"))
        | None -> fail (ctx "missing decode_minor_words_per_event"));
        (* Per-workload floors: deterministic size halving everywhere,
           and no stream may degenerate to text-parser speed. The full
           5x decode bar is held at the suite level below — def-heavy
           microtraces (an interner def every other event, a cost the
           text format never pays) legitimately bottom out near 4x. *)
        (match Option.bind (Json.member "bytes_ratio" w) Json.to_float with
        | Some r when r <= 0.5 -> ()
        | Some r ->
            fail (ctx (Printf.sprintf "bytes_ratio %.3f exceeds 0.5" r))
        | None -> assert false);
        match Option.bind (Json.member "decode_speedup" w) Json.to_float with
        | Some s when s >= 3.0 -> ()
        | Some s ->
            fail (ctx (Printf.sprintf "decode_speedup %.2fx below 3x" s))
        | None -> assert false)
      workloads;
    let agg =
      match Json.member "aggregate" json with
      | Some a -> a
      | None -> fail "missing \"aggregate\" object"
    in
    (match Option.bind (Json.member "bytes_ratio" agg) Json.to_float with
    | Some r when r > 0. && r <= 0.5 -> ()
    | Some r ->
        fail (Printf.sprintf "aggregate bytes_ratio %.3f exceeds 0.5" r)
    | None -> fail "aggregate missing bytes_ratio");
    (match Option.bind (Json.member "decode_speedup" agg) Json.to_float with
    | Some s when s >= 5.0 -> ()
    | Some s ->
        fail (Printf.sprintf "aggregate decode_speedup %.2fx below 5x" s)
    | None -> fail "aggregate missing decode_speedup");
    Printf.printf "json-verify: %s ok (codec, %d workloads)\n" path
      (List.length workloads)
  in
  let verify_scaling () =
    let shard_counts =
      match Json.member "shards" json with
      | Some (Json.List (_ :: _ as ks)) ->
          List.map
            (function
              | Json.Int k when k > 0 -> k
              | _ -> fail "non-positive shard count")
            ks
      | _ -> fail "missing non-empty \"shards\" array"
    in
    if not (List.mem 1 shard_counts) then
      fail "shard counts must include the sequential baseline 1";
    let workloads =
      match Json.member "workloads" json with
      | Some (Json.List (_ :: _ as ws)) -> ws
      | _ -> fail "missing non-empty \"workloads\" array"
    in
    List.iter
      (fun w ->
        let name =
          match Json.member "name" w with
          | Some (Json.String n) -> n
          | _ -> fail "workload without a name"
        in
        (match Json.member "events" w with
        | Some (Json.Int n) when n > 0 -> ()
        | _ -> fail (name ^ ": missing positive \"events\""));
        (* The speedup claim is only worth verifying if the sharded runs
           produced the sequential answer. *)
        (match Json.member "verified" w with
        | Some (Json.Bool true) -> ()
        | _ -> fail (name ^ ": sharded results not verified = sequential"));
        let cases =
          match Json.member "cases" w with
          | Some (Json.List cs) -> cs
          | _ -> fail (name ^ ": missing \"cases\" array")
        in
        let seen = Hashtbl.create 8 in
        List.iter
          (fun c ->
            (match Json.member "shards" c with
            | Some (Json.Int k) when k > 0 -> Hashtbl.replace seen k ()
            | _ -> fail (name ^ ": case without positive shards"));
            List.iter
              (fun field ->
                match Option.bind (Json.member field c) Json.to_float with
                | Some v when v > 0. && Float.is_finite v -> ()
                | _ ->
                    fail
                      (Printf.sprintf "%s: case without positive %s" name
                         field))
              [ "seconds"; "mev_s"; "speedup" ];
            (* Replication traffic: 0 at shards = 1, a finite share of the
               routed messages otherwise. *)
            match
              Option.bind (Json.member "broadcast_ratio" c) Json.to_float
            with
            | Some v when v >= 0. && Float.is_finite v -> ()
            | _ ->
                fail
                  (Printf.sprintf
                     "%s: case without finite non-negative broadcast_ratio"
                     name))
          cases;
        List.iter
          (fun k ->
            if not (Hashtbl.mem seen k) then
              fail (Printf.sprintf "%s: no case for %d shards" name k))
          shard_counts)
      workloads;
    (match Json.member "summary" json with
    | Some summary ->
        (match Option.bind (Json.member "best_speedup" summary) Json.to_float
         with
        | Some v when Float.is_finite v && v > 0. -> ()
        | _ -> fail "summary without positive best_speedup");
        (match Json.member "workloads_at_3x" summary with
        | Some (Json.Int n) when n >= 0 -> ()
        | _ -> fail "summary without workloads_at_3x count")
    | None -> fail "missing \"summary\" object");
    Printf.printf "json-verify: %s ok (analysis_scaling, %d workloads)\n"
      path (List.length workloads)
  in
  (* coop-witness/v1: the causal-evidence documents coopcheck's --witness
     json emits. Shapes per command: check/explain carry races (each with
     an embedded race or locks witness) and violations (each with a
     commit cause); atomize carries warnings; infer carries yields with
     their forcing violation. explain documents additionally assert the
     HB self-check passed — an unverified witness is a CI failure, not a
     formatting nit. *)
  let verify_witness () =
    let command =
      match Json.member "command" json with
      | Some (Json.String c) -> c
      | _ -> fail "missing \"command\" string"
    in
    let check_access ctx a =
      match (Json.member "tid" a, Json.member "seq" a, Json.member "loc" a)
      with
      | Some (Json.Int t), Some (Json.Int s), Some (Json.String _)
        when t >= 0 && s >= 1 ->
          ()
      | _ -> fail (ctx ^ ": access without tid/seq/loc")
    in
    let check_witness ctx = function
      | Json.Null -> ()
      | w -> (
          match (Json.member "race" w, Json.member "locks" w) with
          | Some r, None ->
              (match (Json.member "first" r, Json.member "second" r) with
              | Some f, Some s ->
                  check_access ctx f;
                  check_access ctx s
              | _ -> fail (ctx ^ ": race witness without first/second"));
              List.iter
                (fun field ->
                  match Json.member field r with
                  | Some (Json.Int _) -> ()
                  | _ -> fail (ctx ^ ": race witness without " ^ field))
                [ "first_clock"; "second_sees" ]
          | None, Some l -> (
              (match Json.member "access" l with
              | Some a -> check_access ctx a
              | None -> fail (ctx ^ ": locks witness without access"));
              match (Json.member "prior" l, Json.member "held" l) with
              | Some (Json.List _), Some (Json.List _) -> ()
              | _ -> fail (ctx ^ ": locks witness without prior/held"))
          | _ -> fail (ctx ^ ": witness is neither race nor locks"))
    in
    let check_cause ctx = function
      | Json.Null -> ()
      | c -> (
          match
            ( Json.member "seq" c, Json.member "loc" c, Json.member "op" c,
              Json.member "mover" c )
          with
          | Some (Json.Int s), Some (Json.String _), Some (Json.String _),
            Some (Json.String _)
            when s >= 1 ->
              ()
          | _ -> fail (ctx ^ ": cause without seq/loc/op/mover"))
    in
    let check_violation ctx v =
      match
        ( Json.member "tid" v, Json.member "loc" v, Json.member "op" v,
          Json.member "mover" v )
      with
      | Some (Json.Int _), Some (Json.String _), Some (Json.String _),
        Some (Json.String _) ->
          check_cause ctx
            (Option.value ~default:Json.Null (Json.member "cause" v))
      | _ -> fail (ctx ^ ": violation without tid/loc/op/mover")
    in
    let list_of field =
      match Json.member field json with
      | Some (Json.List l) -> l
      | _ -> fail (Printf.sprintf "missing %S array" field)
    in
    let counted =
      match command with
      | "check" | "explain" ->
          let races = list_of "races" in
          List.iteri
            (fun i r ->
              let ctx = Printf.sprintf "race %d" i in
              (match (Json.member "var" r, Json.member "kind" r) with
              | Some (Json.String _), Some (Json.String _) -> ()
              | _ -> fail (ctx ^ ": missing var/kind"));
              check_witness ctx
                (Option.value ~default:Json.Null (Json.member "witness" r));
              if command = "explain" then
                match Json.member "verified" r with
                | Some (Json.Bool true) -> ()
                | Some (Json.Bool false) ->
                    fail (ctx ^ ": witness failed the HB self-check")
                | _ -> fail (ctx ^ ": explain race without verified"))
            races;
          let vs = list_of "violations" in
          List.iteri
            (fun i v -> check_violation (Printf.sprintf "violation %d" i) v)
            vs;
          List.length races + List.length vs
      | "atomize" ->
          let ws = list_of "warnings" in
          List.iteri
            (fun i w -> check_violation (Printf.sprintf "warning %d" i) w)
            ws;
          List.length ws
      | "infer" ->
          let ys = list_of "yields" in
          List.iteri
            (fun i y ->
              let ctx = Printf.sprintf "yield %d" i in
              (* round 0 = trace-mode inference (no re-execution). *)
              (match
                 ( Json.member "loc" y, Json.member "round" y,
                   Json.member "sched" y )
               with
              | Some (Json.String _), Some (Json.Int r), Some (Json.String _)
                when r >= 0 ->
                  ()
              | _ -> fail (ctx ^ ": missing loc/round/sched"));
              match Json.member "violation" y with
              | Some v -> check_violation ctx v
              | None -> fail (ctx ^ ": missing violation"))
            ys;
          List.length ys
      | c -> fail (Printf.sprintf "unknown witness command %S" c)
    in
    Printf.printf "json-verify: %s ok (coop-witness/v1 %s, %d witness(es))\n"
      path command counted
  in
  (* coop-replay/v1: replay-elision results. Every DPOR row must be
     verified against its stateless oracle and internally consistent
     (cached steps = novel + replayed), and the suite medians must clear
     the headline gates: total-steps reduction >= 3x and wall-clock
     speedup >= 1.5x at default budgets. *)
  let verify_replay () =
    check_jobs ();
    let rows field =
      match Json.member field json with
      | Some (Json.List (_ :: _ as rs)) -> rs
      | Some (Json.List []) -> fail (Printf.sprintf "empty %S array" field)
      | _ -> fail (Printf.sprintf "missing %S array" field)
    in
    let int_field ctx r field =
      match Json.member field r with
      | Some (Json.Int n) when n >= 0 -> n
      | _ -> fail (Printf.sprintf "%s: missing non-negative %S" ctx field)
    in
    let float_field ctx r field =
      match Option.bind (Json.member field r) Json.to_float with
      | Some v when v > 0. && Float.is_finite v -> v
      | _ -> fail (Printf.sprintf "%s: missing positive %S" ctx field)
    in
    let check_verified ctx r =
      match Json.member "verified" r with
      | Some (Json.Bool true) -> ()
      | _ ->
          fail (ctx ^ ": cached run not verified against its stateless oracle")
    in
    let dpor = rows "dpor" in
    let measured =
      List.map
        (fun r ->
          let ctx = "dpor " ^ name_of r in
          check_verified ctx r;
          let cached = int_field ctx r "cached_steps" in
          let novel = int_field ctx r "novel_steps" in
          let replayed = int_field ctx r "replayed_steps" in
          if cached <> novel + replayed then
            fail (ctx ^ ": cached_steps is not novel_steps + replayed_steps");
          let stateless = int_field ctx r "stateless_steps" in
          if cached < 1 || stateless < 1 then
            fail (ctx ^ ": empty exploration");
          ignore (int_field ctx r "executions");
          ignore (int_field ctx r "cache_hits");
          ignore (float_field ctx r "cached_seconds");
          ignore (float_field ctx r "stateless_seconds");
          let red = float_field ctx r "steps_reduction" in
          if
            Float.abs
              (red -. (float_of_int stateless /. float_of_int cached))
            > 1e-6
          then fail (ctx ^ ": steps_reduction disagrees with the counters");
          (red, float_field ctx r "speedup"))
        dpor
    in
    List.iter
      (fun r ->
        let ctx = "infer " ^ name_of r in
        check_verified ctx r;
        ignore (int_field ctx r "events_analyzed");
        ignore (int_field ctx r "prefix_events");
        ignore (int_field ctx r "elided_events");
        ignore (int_field ctx r "cache_hits");
        ignore (float_field ctx r "cached_seconds");
        ignore (float_field ctx r "stateless_seconds");
        ignore (float_field ctx r "speedup"))
      (rows "infer");
    let median xs = Coop_util.Stats.median (Array.of_list xs) in
    let mr = median (List.map fst measured) in
    let msp = median (List.map snd measured) in
    (match Json.member "summary" json with
    | Some summary ->
        List.iter
          (fun (field, recomputed) ->
            match Option.bind (Json.member field summary) Json.to_float with
            | Some v when Float.abs (v -. recomputed) <= 1e-6 -> ()
            | Some _ -> fail ("summary " ^ field ^ " disagrees with the rows")
            | None -> fail ("summary without " ^ field))
          [ ("median_steps_reduction", mr); ("median_speedup", msp) ]
    | None -> fail "missing \"summary\" object");
    if mr < 3.0 then
      fail
        (Printf.sprintf
           "median steps reduction %.2fx below the 3x replay-elision gate" mr);
    if msp < 1.5 then
      fail
        (Printf.sprintf
           "median wall-clock speedup %.2fx below the 1.5x gate" msp);
    Printf.printf
      "json-verify: %s ok (coop-replay/v1, %d dpor rows, median reduction \
       %.2fx, median speedup %.2fx)\n"
      path (List.length dpor) mr msp
  in
  match json with
  | Json.List events -> verify_chrome_trace events
  | _ -> (
      match (Json.member "experiment" json, Json.member "schema" json) with
      | Some (Json.String "table3"), _ -> verify_table3 ()
      | Some (Json.String "profile"), _ -> verify_profile ()
      | Some (Json.String "vclock"), _ -> verify_vclock ()
      | Some (Json.String "pool"), _ -> verify_pool ()
      | Some (Json.String "analysis_scaling"), _ -> verify_scaling ()
      | Some (Json.String "codec"), _ -> verify_codec ()
      | Some (Json.String "replay"), _ -> verify_replay ()
      | _, Some (Json.String "coop-replay/v1") -> verify_replay ()
      | _, Some (Json.String "coop-obs/v1") -> verify_obs_snapshot ()
      | _, Some (Json.String "coop-witness/v1") -> verify_witness ()
      | _ ->
          fail
            "unrecognized document (want \
             experiment=table3|profile|vclock|pool|analysis_scaling|codec|replay, \
             schema=coop-obs/v1|coop-witness/v1|coop-replay/v1, or a \
             trace_event array)")

(* ---------------------------------------------------------------------- *)
(* Driver                                                                  *)
(* ---------------------------------------------------------------------- *)

let all = [ ("table1", table1); ("table2", table2); ("table3", table3);
            ("profile", profile); ("fig1", fig1); ("fig2", fig2);
            ("fig3", fig3); ("ablations", ablations); ("micro", micro);
            ("vclock", vclock); ("pool", pool_bench);
            ("scaling", scaling); ("alloc-smoke", alloc_smoke);
            ("codec", codec_bench); ("replay", replay_bench) ]

let usage () =
  Printf.eprintf
    "usage: main.exe [EXPERIMENT...] [--jobs N] [--json FILE] [--only W1,W2]\n\
    \       [--shards K1,K2,...]\n\
    \       main.exe json-verify FILE\n\
     experiments: %s (default: all)\n"
    (String.concat ", " (List.map fst all));
  exit 2

(* Same diagnostic shape as coopcheck's: the one jobs-validation message,
   parameterized only by where the bad value came from. *)
let bad_jobs source arg =
  Printf.eprintf "bench: invalid jobs argument %S: %s wants a positive \
                  integer\n" arg source;
  exit 2

(* A malformed COOP_JOBS is rejected up front rather than silently falling
   back to the machine's domain count. *)
let validate_env_jobs () =
  match Sys.getenv_opt "COOP_JOBS" with
  | Some s when Coop_util.Pool.parse_jobs s = None -> bad_jobs "COOP_JOBS" s
  | _ -> ()

let bad_shards source arg =
  Printf.eprintf "bench: invalid shards argument %S: %s wants a positive \
                  integer\n" arg source;
  exit 2

(* COOP_SHARDS gets the same up-front rejection as COOP_JOBS, and for the
   same reason: a typo must not silently mean "sequential". *)
let validate_env_shards () =
  match Sys.getenv_opt "COOP_SHARDS" with
  | Some s when Coop_util.Pool.parse_jobs s = None -> bad_shards "COOP_SHARDS" s
  | _ -> ()

let () =
  validate_env_jobs ();
  validate_env_shards ();
  match Array.to_list Sys.argv with
  | _ :: "json-verify" :: rest -> (
      match rest with [ path ] -> json_verify path | _ -> usage ())
  | _ :: args ->
      let experiments = ref [] in
      let rec parse = function
        | [] -> ()
        | "--jobs" :: n :: rest -> (
            match Coop_util.Pool.parse_jobs n with
            | Some n ->
                Coop_util.Pool.set_default_jobs n;
                parse rest
            | None -> bad_jobs "--jobs" n)
        | "--json" :: path :: rest ->
            json_out := Some path;
            parse rest
        | "--shards" :: ks :: rest ->
            let ks =
              String.split_on_char ',' ks |> List.map String.trim
              |> List.map (fun k ->
                     match Coop_util.Pool.parse_jobs k with
                     | Some k -> k
                     | None -> bad_shards "--shards" k)
            in
            if ks = [] then bad_shards "--shards" "";
            scaling_shards := ks;
            parse rest
        | "--only" :: names :: rest ->
            let names = String.split_on_char ',' names |> List.map String.trim in
            List.iter
              (fun n ->
                if Registry.find n = None then begin
                  Printf.eprintf "--only: unknown workload %s (have: %s)\n" n
                    (String.concat ", " Registry.names);
                  exit 2
                end)
              names;
            only := Some names;
            parse rest
        | ("--jobs" | "--json" | "--only" | "--shards") :: [] -> usage ()
        | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
        | exp :: rest ->
            (match List.assoc_opt exp all with
            | Some f -> experiments := (exp, f) :: !experiments
            | None ->
                Printf.eprintf "unknown experiment %s (have: %s)\n" exp
                  (String.concat ", " (List.map fst all));
                exit 2);
            parse rest
      in
      parse args;
      let to_run =
        match List.rev !experiments with [] -> all | exps -> exps
      in
      List.iter (fun (_, f) -> f ()) to_run
  | [] -> usage ()
