open Coop_trace

(* Pass 1: replay the synchronization state machine, recording each event's
   thread clock at execution time. *)
let event_clocks trace =
  let clocks = Hashtbl.create 8 in
  let locks = Hashtbl.create 8 in
  let clock_of tid =
    match Hashtbl.find_opt clocks tid with
    | Some c -> c
    | None ->
        let c = Vclock.set Vclock.empty tid 1 in
        Hashtbl.replace clocks tid c;
        c
  in
  let out = Array.make (Trace.length trace) Vclock.empty in
  Trace.iteri
    (fun i (e : Event.t) ->
      let c = clock_of e.tid in
      out.(i) <- c;
      match e.op with
      | Event.Acquire l ->
          let lc =
            match Hashtbl.find_opt locks l with
            | Some lc -> lc
            | None -> Vclock.empty
          in
          Hashtbl.replace clocks e.tid (Vclock.join c lc);
          out.(i) <- Hashtbl.find clocks e.tid
      | Event.Release l ->
          Hashtbl.replace locks l c;
          Hashtbl.replace clocks e.tid (Vclock.tick c e.tid)
      | Event.Fork u ->
          let cu = clock_of u in
          Hashtbl.replace clocks u (Vclock.join cu c);
          Hashtbl.replace clocks e.tid (Vclock.tick c e.tid)
      | Event.Join u ->
          let cu = clock_of u in
          Hashtbl.replace clocks e.tid (Vclock.join c cu)
      | Event.Read _ | Event.Write _ | Event.Yield | Event.Enter _
      | Event.Exit _ | Event.Atomic_begin | Event.Atomic_end | Event.Out _ ->
          ())
    trace;
  out

let happens_before trace i j =
  if i >= j then invalid_arg "Naive_hb.happens_before: need i < j";
  let ei = Trace.get trace i and ej = Trace.get trace j in
  if ei.Event.tid = ej.Event.tid then true
  else begin
    let clocks = event_clocks trace in
    (* Event i happens-before j iff thread i's component at time of i is
       visible in j's clock. *)
    Vclock.get clocks.(i) ei.Event.tid <= Vclock.get clocks.(j) ei.Event.tid
  end

let accesses trace =
  let acc = ref [] in
  Trace.iteri
    (fun i (e : Event.t) ->
      match e.op with
      | Event.Read v -> acc := (i, e.tid, v, false) :: !acc
      | Event.Write v -> acc := (i, e.tid, v, true) :: !acc
      | _ -> ())
    trace;
  List.rev !acc

let race_pairs trace =
  let clocks = event_clocks trace in
  let accs = Array.of_list (accesses trace) in
  let hb i ti j = Vclock.get clocks.(i) ti <= Vclock.get clocks.(j) ti in
  let pairs = ref [] in
  let n = Array.length accs in
  for a = 0 to n - 1 do
    let i, ti, vi, wi = accs.(a) in
    for b = a + 1 to n - 1 do
      let j, tj, vj, wj = accs.(b) in
      if ti <> tj && Event.equal_var vi vj && (wi || wj) && not (hb i ti j)
      then pairs := (i, j) :: !pairs
    done
  done;
  List.rev !pairs

let racy_vars trace =
  List.fold_left
    (fun s (i, _) ->
      match (Trace.get trace i).Event.op with
      | Event.Read v | Event.Write v -> Event.Var_set.add v s
      | _ -> s)
    Event.Var_set.empty (race_pairs trace)
