(** Vector clocks.

    A vector clock maps thread ids to logical times. Clocks are persistent:
    every operation returns a new clock, which keeps the FastTrack detector
    simple to snapshot and to test. Missing entries read as 0, so clocks over
    different thread populations compare naturally. *)

type t
(** A persistent vector clock. *)

val empty : t
(** The all-zeros clock. *)

val get : t -> int -> int
(** [get c t] is thread [t]'s component (0 when absent). *)

val set : t -> int -> int -> t
(** [set c t n] replaces thread [t]'s component with [n]. *)

val tick : t -> int -> t
(** [tick c t] increments thread [t]'s component. *)

val join : t -> t -> t
(** Pointwise maximum. *)

val leq : t -> t -> bool
(** [leq a b] iff [a] is pointwise <= [b]; this is the happens-before
    order between the times the clocks represent. *)

val equal : t -> t -> bool
(** Pointwise equality (ignoring explicit zeros). *)

val compare : t -> t -> int
(** An arbitrary total order consistent with {!equal}, for use in maps. *)

val of_list : (int * int) list -> t
(** Build from [(tid, time)] pairs; later pairs win. *)

val to_list : t -> (int * int) list
(** Non-zero bindings, ascending by thread id. *)

val pp : Format.formatter -> t -> unit
(** Renders as ["<0:3, 2:1>"]. *)
