lib/race/lockset.ml: Coop_trace Event Hashtbl Int List Loc Report Set Trace
