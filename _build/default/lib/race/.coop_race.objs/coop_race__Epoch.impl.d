lib/race/epoch.ml: Format Int Vclock
