lib/race/vclock.ml: Format Int List Map
