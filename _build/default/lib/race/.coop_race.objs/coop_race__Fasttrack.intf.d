lib/race/fasttrack.mli: Coop_trace Event Report Trace
