lib/race/report.mli: Coop_trace Format
