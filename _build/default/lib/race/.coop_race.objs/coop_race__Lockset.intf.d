lib/race/lockset.mli: Coop_trace Event Report Trace
