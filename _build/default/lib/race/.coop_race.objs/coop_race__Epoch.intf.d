lib/race/epoch.mli: Format Vclock
