lib/race/naive_hb.ml: Array Coop_trace Event Hashtbl List Trace Vclock
