lib/race/report.ml: Coop_trace Event Format List Loc
