lib/race/naive_hb.mli: Coop_trace Event Trace Vclock
