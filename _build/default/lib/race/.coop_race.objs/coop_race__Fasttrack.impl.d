lib/race/fasttrack.ml: Array Coop_trace Epoch Event Hashtbl List Report Trace Vclock
