module M = Map.Make (Int)

(* Invariant: no explicit zero entries are stored, so structural map equality
   coincides with clock equality. *)
type t = int M.t

let empty = M.empty

let get c t = match M.find_opt t c with Some n -> n | None -> 0

let set c t n = if n = 0 then M.remove t c else M.add t n c

let tick c t = M.add t (get c t + 1) c

let join a b = M.union (fun _ x y -> Some (max x y)) a b

let leq a b = M.for_all (fun t n -> n <= get b t) a

let equal = M.equal Int.equal

let compare = M.compare Int.compare

let of_list l = List.fold_left (fun c (t, n) -> set c t n) empty l

let to_list c = M.bindings c

let pp ppf c =
  let bindings = to_list c in
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (t, n) -> Format.fprintf ppf "%d:%d" t n))
    bindings
