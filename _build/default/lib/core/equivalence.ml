open Coop_runtime

type verdict = {
  preemptive : Explore.result;
  cooperative : Explore.result;
  equal : bool;
  preemptive_subset : bool;
}

let compare ?yields ?max_states prog =
  let preemptive = Explore.run ?yields ?max_states Explore.Preemptive prog in
  let cooperative = Explore.run ?yields ?max_states Explore.Cooperative prog in
  let complete = preemptive.Explore.complete && cooperative.Explore.complete in
  {
    preemptive;
    cooperative;
    equal =
      complete
      && Behavior.Set.equal preemptive.Explore.behaviors
           cooperative.Explore.behaviors;
    preemptive_subset =
      complete
      && Behavior.Set.subset preemptive.Explore.behaviors
           cooperative.Explore.behaviors;
  }

let pp ppf v =
  Format.fprintf ppf
    "preemptive: %d behaviors/%d states%s, cooperative: %d behaviors/%d \
     states%s, equal=%b, pre⊆coop=%b"
    (Behavior.Set.cardinal v.preemptive.Explore.behaviors)
    v.preemptive.Explore.states
    (if v.preemptive.Explore.complete then "" else " (incomplete)")
    (Behavior.Set.cardinal v.cooperative.Explore.behaviors)
    v.cooperative.Explore.states
    (if v.cooperative.Explore.complete then "" else " (incomplete)")
    v.equal v.preemptive_subset
