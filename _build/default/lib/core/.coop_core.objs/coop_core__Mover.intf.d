lib/core/mover.mli: Coop_trace Event Format
