lib/core/equivalence.ml: Behavior Coop_runtime Explore Format
