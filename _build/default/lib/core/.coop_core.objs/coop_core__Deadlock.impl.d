lib/core/deadlock.ml: Coop_trace Event Format Hashtbl Int List Loc Map Set Trace
