lib/core/metrics.mli: Coop_lang Coop_trace Format Loc Trace
