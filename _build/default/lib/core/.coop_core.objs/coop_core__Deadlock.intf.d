lib/core/deadlock.mli: Coop_trace Format Loc Trace
