lib/core/mover.ml: Coop_trace Event Format
