lib/core/equivalence.mli: Coop_lang Coop_runtime Coop_trace Explore Format Loc
