lib/core/automaton.ml: Coop_trace Event Format Hashtbl List Loc Mover
