lib/core/cooperability.ml: Automaton Coop_race Coop_trace Event Hashtbl List Loc Trace
