lib/core/automaton.mli: Coop_trace Event Format Loc Mover
