lib/core/infer.ml: Coop_runtime Coop_trace Cooperability List Loc Runner Sched Trace
