lib/core/infer.mli: Coop_lang Coop_runtime Coop_trace Loc Sched
