lib/core/cooperability.mli: Automaton Coop_race Coop_trace Event Loc Trace
