lib/core/metrics.ml: Array Bytecode Coop_lang Coop_trace Event Format Loc Trace
