open Coop_trace

type result = {
  violations : Automaton.violation list;
  races : Coop_race.Report.t list;
  racy : Event.Var_set.t;
  events : int;
}

let check_with_racy ?local_locks ~racy trace =
  let a = Automaton.create () in
  Trace.iter (fun e -> ignore (Automaton.step ?local_locks a ~racy e)) trace;
  Automaton.violations a

(* A lock is thread-local when at most one thread ever acquires it. *)
let local_locks_of trace =
  let owners = Hashtbl.create 8 in
  Trace.iter
    (fun (e : Event.t) ->
      match e.op with
      | Event.Acquire l | Event.Release l -> (
          match Hashtbl.find_opt owners l with
          | None -> Hashtbl.add owners l (Some e.tid)
          | Some (Some t) when t = e.tid -> ()
          | Some (Some _) -> Hashtbl.replace owners l None
          | Some None -> ())
      | _ -> ())
    trace;
  fun l -> match Hashtbl.find_opt owners l with Some (Some _) -> true | _ -> false

let check trace =
  let ft = Coop_race.Fasttrack.create () in
  Trace.iter (fun e -> ignore (Coop_race.Fasttrack.handle ft e)) trace;
  let races = Coop_race.Fasttrack.races ft in
  let racy = Coop_race.Fasttrack.racy_vars ft in
  let local_locks = local_locks_of trace in
  let violations = check_with_racy ~local_locks ~racy trace in
  { violations; races; racy; events = Trace.length trace }

let violation_locs vs =
  List.fold_left
    (fun s (v : Automaton.violation) -> Loc.Set.add v.Automaton.loc s)
    Loc.Set.empty vs

let cooperable r = r.violations = []

let online () =
  let buffered = Trace.create () in
  let ft = Coop_race.Fasttrack.create () in
  let sink e =
    Trace.add buffered e;
    ignore (Coop_race.Fasttrack.handle ft e)
  in
  let finish () =
    let races = Coop_race.Fasttrack.races ft in
    let racy = Coop_race.Fasttrack.racy_vars ft in
    let local_locks = local_locks_of buffered in
    let violations = check_with_racy ~local_locks ~racy buffered in
    { violations; races; racy; events = Trace.length buffered }
  in
  (sink, finish)
