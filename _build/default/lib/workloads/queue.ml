let name = "queue"

let description = "two-lock ring-buffer FIFO, producer/consumer pairs"

let default_threads = 2

let default_size = 3

let source ~threads ~size =
  let items = size * 8 in
  let cap = 8 in
  (* Bounded-buffer protocol: [count] counts reserved-but-not-yet-freed
     slots (producers reserve before writing), [ready] counts published
     items (incremented after the ring write, decremented before the read).
     The count_lock handoffs order every ring write before its read and
     every read before the slot's reuse. *)
  Printf.sprintf
    {|// %d producer/consumer pairs, %d items each, capacity %d
array ring[%d];
var head = 0;
var tail = 0;
var count = 0;
var ready = 0;
var consumed_sum = 0;
lock head_lock;
lock tail_lock;
lock count_lock;
lock sum_lock;
array ptids[%d];
array ctids[%d];

fn enqueue_one(v, cap) {
  var reserved = 0;
  while (reserved == 0) {
    yield;
    sync (count_lock) {
      if (count < cap) {
        count = count + 1;
        reserved = 1;
      }
    }
  }
  sync (tail_lock) {
    ring[tail %% cap] = v;
    tail = tail + 1;
  }
  sync (count_lock) {
    ready = ready + 1;
  }
}

fn dequeue_one(cap) {
  var avail = 0;
  while (avail == 0) {
    yield;
    sync (count_lock) {
      if (ready > 0) {
        ready = ready - 1;
        avail = 1;
      }
    }
  }
  var got = 0;
  sync (head_lock) {
    got = ring[head %% cap];
    head = head + 1;
  }
  sync (count_lock) {
    count = count - 1;
  }
  return got;
}

fn producer(id, n, cap) {
  var i = 0;
  while (i < n) {
    enqueue_one(id * n + i, cap);
    i = i + 1;
  }
}

fn consumer(n, cap) {
  var i = 0;
  var local = 0;
  while (i < n) {
    local = local + dequeue_one(cap);
    i = i + 1;
  }
  sync (sum_lock) {
    consumed_sum = consumed_sum + local;
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    ptids[i] = spawn producer(i, %d, %d);
    ctids[i] = spawn consumer(%d, %d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join ptids[i];
    join ctids[i];
    i = i + 1;
  }
  print(consumed_sum);
  assert(consumed_sum == %d);
}
|}
    threads items cap cap threads threads threads items cap items cap threads
    (let total = ref 0 in
     for id = 0 to threads - 1 do
       for i = 0 to items - 1 do
         total := !total + (id * items) + i
       done
     done;
     !total)
