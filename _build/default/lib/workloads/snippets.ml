let barrier_decls =
  {|var bar_count = 0;
var bar_gen = 0;
lock bar_lock;
|}

let barrier_fn =
  {|fn barrier(n) {
  var my_gen = 0;
  sync (bar_lock) {
    bar_count = bar_count + 1;
    my_gen = bar_gen;
    if (bar_count == n) {
      bar_count = 0;
      bar_gen = bar_gen + 1;
    }
  }
  var done = 0;
  while (done == 0) {
    yield;
    sync (bar_lock) {
      if (bar_gen != my_gen) {
        done = 1;
      }
    }
  }
}
|}

let lcg_fn =
  {|fn lcg(s) {
  return (s * 1103 + 12345) % 65536;
}
|}
