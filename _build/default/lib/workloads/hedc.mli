(** Task-pool crawler (the "hedc" meta-crawler shape).

    Workers pop tasks from a shared pool, do local work, occasionally push
    follow-up tasks, and count results. A [pending] counter guarded by the
    pool lock gives a race-free termination condition even with follow-up
    production. *)

val name : string
val description : string
val default_threads : int
val default_size : int

val source : threads:int -> size:int -> string
(** [threads] crawlers, [size * 4] seed tasks, pool capacity 16. *)
