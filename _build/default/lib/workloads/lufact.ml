let name = "lufact"

let description = "barrier-phased LU factorization kernel"

let default_threads = 4

let default_size = 4

let source ~threads ~size =
  let n = size + 4 in
  Printf.sprintf
    {|// %d workers, %dx%d matrix
array a[%d];
array tids[%d];
%s
%s
fn worker(id, nthreads, n) {
  var k = 0;
  while (k < n - 1) {
    if (k %% nthreads == id) {
      var i = k + 1;
      while (i < n) {
        a[i * n + k] = (a[i * n + k] * 100) / (a[k * n + k] + 1);
        i = i + 1;
      }
    }
    barrier(nthreads);
    var r = k + 1 + id;
    while (r < n) {
      var j = k + 1;
      while (j < n) {
        a[r * n + j] = a[r * n + j] - (a[r * n + k] * a[k * n + j]) / 100;
        j = j + 1;
      }
      r = r + nthreads;
    }
    barrier(nthreads);
    k = k + 1;
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    a[i] = (i * 7 + 3) %% 50 + 1;
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    tids[i] = spawn worker(i, %d, %d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  var sum = 0;
  i = 0;
  while (i < %d) {
    sum = sum + a[i];
    i = i + 1;
  }
  print(sum);
}
|}
    threads n n (n * n) threads Snippets.barrier_decls Snippets.barrier_fn
    (n * n) threads threads n threads (n * n)
