(** Fourier-coefficient style kernel (Java Grande "series" shape).

    Pure data parallelism over disjoint array slices: no locks, no races,
    no yields. The baseline "nothing to report" workload. *)

val name : string
val description : string
val default_threads : int
val default_size : int

val source : threads:int -> size:int -> string
(** [threads] workers over [8 * size] coefficients. *)
