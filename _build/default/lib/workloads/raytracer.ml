let name = "raytracer"

let description = "dynamic row queue + checksum merge"

let default_threads = 4

let default_size = 5

let source ~threads ~size =
  let height = size * 6 in
  let width = 16 in
  Printf.sprintf
    {|// %d workers, %d rows of width %d
var next_row = 0;
var checksum = 0;
lock q_lock;
lock csum_lock;
array tids[%d];

fn render_row(r, width) {
  var acc = 0;
  var c = 0;
  while (c < width) {
    acc = acc + ((r * 31 + c * 17) * (r + c)) %% 255;
    c = c + 1;
  }
  return acc;
}

fn worker(width, height) {
  var running = 1;
  while (running == 1) {
    var row = 0 - 1;
    sync (q_lock) {
      if (next_row < height) {
        row = next_row;
        next_row = next_row + 1;
      }
    }
    if (row < 0) {
      running = 0;
    } else {
      var val = render_row(row, width);
      sync (csum_lock) {
        checksum = checksum + val;
      }
    }
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    tids[i] = spawn worker(%d, %d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  print(checksum);
}
|}
    threads height width threads threads width height threads
