(** Barrier-phased LU-style factorization (Java Grande "lufact" shape).

    Each step: the pivot owner normalizes a column, a barrier, every thread
    updates its strided rows of the trailing submatrix, a barrier. All
    integer arithmetic is scaled to stay exact. *)

val name : string
val description : string
val default_threads : int
val default_size : int

val source : threads:int -> size:int -> string
(** [threads] workers, [size + 4] x [size + 4] matrix. *)
