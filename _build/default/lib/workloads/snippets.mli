(** Shared CoopLang code snippets used by several workloads. *)

val barrier_decls : string
(** Global declarations for the reusable sense-counter barrier. *)

val barrier_fn : string
(** A [barrier(n)] function: the classic counter/generation barrier. The
    spin loop carries an explicit [yield] — under cooperative semantics a
    spin-wait must be a scheduling point, which is precisely the kind of
    yield the paper says programmers must write by hand. *)

val lcg_fn : string
(** [lcg(s)]: one step of a linear congruential generator, used by the
    randomized workloads for thread-local pseudo-randomness. Keeps values
    in a small positive range to avoid overflow. *)
