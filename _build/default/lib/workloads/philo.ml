let name = "philo"

let description = "dining philosophers, ordered forks, shared meal counter"

let default_threads = 4

let default_size = 12

let source ~threads ~size =
  Printf.sprintf
    {|// %d philosophers, %d rounds each
var meals = 0;
lock forks[%d];
lock meals_lock;
array tids[%d];

fn philosopher(id, rounds) {
  var first = id;
  var second = (id + 1) %% %d;
  if (second < first) {
    first = second;
    second = id;
  }
  var r = 0;
  while (r < rounds) {
    acquire(forks[first]);
    acquire(forks[second]);
    sync (meals_lock) {
      meals = meals + 1;
    }
    release(forks[second]);
    release(forks[first]);
    r = r + 1;
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    tids[i] = spawn philosopher(i, %d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  print(meals);
  assert(meals == %d);
}
|}
    threads size threads threads threads threads size threads (threads * size)
