lib/workloads/elevator.ml: Printf
