lib/workloads/moldyn.mli:
