lib/workloads/series.mli:
