lib/workloads/sparse.ml: Printf
