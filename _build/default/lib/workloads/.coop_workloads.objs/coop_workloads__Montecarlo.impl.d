lib/workloads/montecarlo.ml: Printf
