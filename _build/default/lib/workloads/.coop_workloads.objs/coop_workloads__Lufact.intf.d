lib/workloads/lufact.mli:
