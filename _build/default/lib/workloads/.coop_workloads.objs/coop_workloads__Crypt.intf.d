lib/workloads/crypt.mli:
