lib/workloads/sparse.mli:
