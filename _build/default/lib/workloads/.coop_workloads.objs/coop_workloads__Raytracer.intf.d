lib/workloads/raytracer.mli:
