lib/workloads/snippets.mli:
