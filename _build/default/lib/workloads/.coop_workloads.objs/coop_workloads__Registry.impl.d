lib/workloads/registry.ml: Bank Coop_lang Crypt Elevator Hedc List Lufact Moldyn Montecarlo Option Philo Queue Raytracer Series Sor Sparse String Tsp
