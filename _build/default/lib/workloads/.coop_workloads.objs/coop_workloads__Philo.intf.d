lib/workloads/philo.mli:
