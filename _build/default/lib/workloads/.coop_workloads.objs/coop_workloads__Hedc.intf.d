lib/workloads/hedc.mli:
