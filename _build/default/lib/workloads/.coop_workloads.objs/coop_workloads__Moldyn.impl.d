lib/workloads/moldyn.ml: Printf Snippets
