lib/workloads/micro.mli:
