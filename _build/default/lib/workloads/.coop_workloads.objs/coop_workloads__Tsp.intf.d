lib/workloads/tsp.mli:
