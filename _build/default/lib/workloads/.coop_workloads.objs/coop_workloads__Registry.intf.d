lib/workloads/registry.mli: Coop_lang
