lib/workloads/snippets.ml:
