lib/workloads/lufact.ml: Printf Snippets
