lib/workloads/crypt.ml: Printf
