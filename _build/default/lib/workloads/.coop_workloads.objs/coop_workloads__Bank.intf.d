lib/workloads/bank.mli:
