lib/workloads/montecarlo.mli:
