lib/workloads/series.ml: Printf
