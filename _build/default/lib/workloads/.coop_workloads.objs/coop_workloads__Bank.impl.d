lib/workloads/bank.ml: Printf
