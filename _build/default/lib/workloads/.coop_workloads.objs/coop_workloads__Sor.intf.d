lib/workloads/sor.mli:
