lib/workloads/queue.ml: Printf
