lib/workloads/raytracer.ml: Printf
