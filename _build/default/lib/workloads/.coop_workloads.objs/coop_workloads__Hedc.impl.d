lib/workloads/hedc.ml: Printf
