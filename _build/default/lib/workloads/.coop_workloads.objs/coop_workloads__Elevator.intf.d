lib/workloads/elevator.mli:
