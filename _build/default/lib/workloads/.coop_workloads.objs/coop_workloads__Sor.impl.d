lib/workloads/sor.ml: Printf Snippets
