lib/workloads/tsp.ml: Printf
