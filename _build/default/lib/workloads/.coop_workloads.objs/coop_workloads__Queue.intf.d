lib/workloads/queue.mli:
