lib/workloads/philo.ml: Printf
