(** Ray tracer with a dynamic row queue (Java Grande "raytracer" shape).

    Workers repeatedly grab a row index from a lock-protected counter,
    render locally, and merge into a lock-protected checksum. Two lock
    regions per iteration make the loop body two transactions — the checker
    infers a yield between them and one at the loop head. *)

val name : string
val description : string
val default_threads : int
val default_size : int

val source : threads:int -> size:int -> string
(** [threads] workers over [size * 6] rows of width 16. *)
