type entry = {
  name : string;
  description : string;
  source : threads:int -> size:int -> string;
  default_threads : int;
  default_size : int;
}

module type Workload = sig
  val name : string
  val description : string
  val default_threads : int
  val default_size : int
  val source : threads:int -> size:int -> string
end

let entry (module W : Workload) =
  {
    name = W.name;
    description = W.description;
    source = W.source;
    default_threads = W.default_threads;
    default_size = W.default_size;
  }

let all =
  [
    entry (module Series);
    entry (module Sparse);
    entry (module Crypt);
    entry (module Sor);
    entry (module Lufact);
    entry (module Moldyn);
    entry (module Montecarlo);
    entry (module Raytracer);
    entry (module Philo);
    entry (module Bank);
    entry (module Queue);
    entry (module Elevator);
    entry (module Tsp);
    entry (module Hedc);
  ]

let find name = List.find_opt (fun e -> String.equal e.name name) all

let names = List.map (fun e -> e.name) all

let source_of ?threads ?size e =
  let threads = Option.value threads ~default:e.default_threads in
  let size = Option.value size ~default:e.default_size in
  e.source ~threads ~size

let program_of ?threads ?size e =
  Coop_lang.Compile.source (source_of ?threads ?size e)

let loc_count src =
  String.split_on_char '\n' src
  |> List.filter (fun line ->
         let line = String.trim line in
         String.length line > 0
         && not (String.length line >= 2 && String.sub line 0 2 = "//"))
  |> List.length
