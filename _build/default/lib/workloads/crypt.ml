let name = "crypt"

let description = "two-phase encrypt/decrypt with fork/join ordering"

let default_threads = 4

let default_size = 5

let source ~threads ~size =
  let n = 8 * size in
  Printf.sprintf
    {|// %d workers per phase, %d bytes
array plain[%d];
array cipher[%d];
array back[%d];
array tids[%d];

fn encrypt(id, nthreads, n) {
  var i = id;
  while (i < n) {
    cipher[i] = (plain[i] * 7 + 31) %% 256;
    i = i + nthreads;
  }
}

fn decrypt(id, nthreads, n) {
  var i = id;
  while (i < n) {
    // 7 * 183 = 1281 = 5 * 256 + 1, so *183 inverts *7 mod 256
    back[i] = ((cipher[i] - 31 + 256) * 183) %% 256;
    i = i + nthreads;
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    plain[i] = (i * 13 + 5) %% 256;
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    tids[i] = spawn encrypt(i, %d, %d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    tids[i] = spawn decrypt(i, %d, %d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  var ok = 1;
  i = 0;
  while (i < %d) {
    if (back[i] != plain[i]) {
      ok = 0;
    }
    i = i + 1;
  }
  print(ok);
  assert(ok == 1);
}
|}
    threads n n n n threads n threads threads n threads threads threads n
    threads n
