(** Dining philosophers with ordered fork acquisition.

    Exercises nested lock acquisition (R R .. L L transactions) and a shared
    meal counter. Deadlock-free by lock ordering; the cooperability checker
    should infer exactly one yield at the round-loop head. *)

val name : string
val description : string
val default_threads : int
val default_size : int

val source : threads:int -> size:int -> string
(** [threads] philosophers, [size] rounds each. *)
