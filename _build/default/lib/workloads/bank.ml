let name = "bank"

let description = "lock-striped bank transfers over 8 accounts"

let default_threads = 4

let default_size = 25

let accounts = 8

let source ~threads ~size =
  Printf.sprintf
    {|// %d tellers, %d transfers each, %d accounts
array accounts[%d];
lock alock[%d];
array tids[%d];

fn lcg(s) {
  return (s * 1103 + 12345) %% 65536;
}

fn transfer(src, dst, amt) {
  var lo = src;
  var hi = dst;
  if (hi < lo) {
    lo = dst;
    hi = src;
  }
  acquire(alock[lo]);
  if (hi != lo) {
    acquire(alock[hi]);
  }
  accounts[src] = accounts[src] - amt;
  accounts[dst] = accounts[dst] + amt;
  if (hi != lo) {
    release(alock[hi]);
  }
  release(alock[lo]);
}

fn teller(id, n) {
  var s = id * 7919 + 13;
  var i = 0;
  while (i < n) {
    s = lcg(s);
    var src = s %% %d;
    s = lcg(s);
    var dst = s %% %d;
    transfer(src, dst, 1);
    i = i + 1;
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    accounts[i] = 100;
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    tids[i] = spawn teller(i, %d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  var total = 0;
  i = 0;
  while (i < %d) {
    total = total + accounts[i];
    i = i + 1;
  }
  print(total);
  assert(total == %d);
}
|}
    threads size accounts accounts accounts threads accounts accounts accounts
    threads size threads accounts (accounts * 100)
