(** Branch-and-bound traveling salesman with a benign racy bound.

    The classic shape: a shared best-tour bound is read {e without} the lock
    for pruning (the deliberate "benign race" of the original tsp benchmark)
    and updated under the lock. The racy read is a non mover, so the checker
    demands yields around the pruning reads — reproducing the paper's
    discussion of how cooperability handles intentional races. The final
    bound is still deterministic: stale pruning reads only ever make the
    search do extra work. *)

val name : string
val description : string
val default_threads : int
val default_size : int

val source : threads:int -> size:int -> string
(** [threads] workers; [min 8 (4 + size)] cities. *)
