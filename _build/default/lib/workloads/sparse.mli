(** Sparse matrix-vector multiplication (Java Grande "sparsematmult"
    shape).

    The matrix is in triplet form (row/col/val arrays, read-only after
    pre-fork initialization); each worker owns a stride of the nonzeros and
    accumulates into a private slice of a partial-sum matrix, which main
    reduces after joining — all sharing is fork/join ordered. *)

val name : string
val description : string
val default_threads : int
val default_size : int

val source : threads:int -> size:int -> string
(** [threads] workers, [12 * size] nonzeros over a [4 * size]-row matrix. *)
