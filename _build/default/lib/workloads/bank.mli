(** Lock-striped bank transfers.

    Random transfers between accounts, each guarded by the two account locks
    taken in canonical order. Money is conserved — the final assertion is
    schedule-independent once transfers are atomic. *)

val name : string
val description : string
val default_threads : int
val default_size : int

val source : threads:int -> size:int -> string
(** [threads] tellers, [size] transfers each over 8 accounts. *)
