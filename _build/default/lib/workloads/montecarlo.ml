let name = "montecarlo"

let description = "embarrassingly parallel Monte-Carlo accumulation"

let default_threads = 4

let default_size = 5

let source ~threads ~size =
  let trials = size * 40 in
  Printf.sprintf
    {|// %d workers, %d trials each
var hits = 0;
lock sum_lock;
array tids[%d];

fn lcg(s) {
  return (s * 1103 + 12345) %% 65536;
}

fn worker(id, trials) {
  var s = id * 2357 + 11;
  var local = 0;
  var i = 0;
  while (i < trials) {
    s = lcg(s);
    var px = s %% 100;
    s = lcg(s);
    var py = s %% 100;
    if (px * px + py * py < 10000) {
      local = local + 1;
    }
    i = i + 1;
  }
  sync (sum_lock) {
    hits = hits + local;
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    tids[i] = spawn worker(i, %d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  print(hits);
}
|}
    threads trials threads threads trials threads
