let name = "elevator"

let description = "bounded request queue polled by elevator threads"

let default_threads = 3

let default_size = 5

let capacity = 8

let source ~threads ~size =
  let requests = size * 5 in
  Printf.sprintf
    {|// %d elevators, %d requests, queue capacity %d
array queue[%d];
array pos[%d];
var head = 0;
var tail = 0;
var served = 0;
var producing_done = 0;
lock q_lock;
array tids[%d];

fn lcg(s) {
  return (s * 1103 + 12345) %% 65536;
}

fn producer(n, cap) {
  var s = 5;
  var i = 0;
  while (i < n) {
    s = lcg(s);
    var fl = s %% 20;
    var pushed = 0;
    while (pushed == 0) {
      yield;
      sync (q_lock) {
        if (tail - head < cap) {
          queue[tail %% cap] = fl;
          tail = tail + 1;
          pushed = 1;
        }
      }
    }
    i = i + 1;
  }
  sync (q_lock) {
    producing_done = 1;
  }
}

fn elevator(id, cap) {
  var running = 1;
  while (running == 1) {
    var fl = 0 - 1;
    yield;
    sync (q_lock) {
      if (head < tail) {
        fl = queue[head %% cap];
        head = head + 1;
      } else {
        if (producing_done == 1) {
          running = 0;
        }
      }
    }
    if (fl >= 0) {
      var cur = pos[id];
      while (cur != fl) {
        if (cur < fl) {
          cur = cur + 1;
        } else {
          cur = cur - 1;
        }
      }
      pos[id] = cur;
      sync (q_lock) {
        served = served + 1;
      }
    }
  }
}

fn main() {
  var p = spawn producer(%d, %d);
  var i = 0;
  while (i < %d) {
    tids[i] = spawn elevator(i, %d);
    i = i + 1;
  }
  join p;
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  print(served);
  assert(served == %d);
}
|}
    threads requests capacity capacity threads threads requests capacity
    threads capacity threads requests
