(** A two-lock bounded FIFO (the classic Michael-Scott two-lock queue,
    adapted to a ring buffer).

    Enqueuers and dequeuers synchronize on separate head/tail locks plus a
    lock-protected element counter — a workload whose critical sections are
    small and frequent, stressing the R..L transaction boundaries. Output
    (sum of dequeued values) is deterministic. *)

val name : string
val description : string
val default_threads : int
val default_size : int

val source : threads:int -> size:int -> string
(** [threads] producer/consumer pairs, [size * 8] items per producer. *)
