let racy_counter ~threads ~incs =
  Printf.sprintf
    {|var x = 0;
array tids[%d];

fn worker(n) {
  var i = 0;
  while (i < n) {
    x = x + 1;
    i = i + 1;
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    tids[i] = spawn worker(%d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  print(x);
}
|}
    threads threads incs threads

let locked_counter ~threads ~incs ~yield_at_loop =
  Printf.sprintf
    {|var x = 0;
lock m;
array tids[%d];

fn worker(n) {
  var i = 0;
  while (i < n) {
    %s
    sync (m) {
      x = x + 1;
    }
    i = i + 1;
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    tids[i] = spawn worker(%d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  print(x);
  assert(x == %d);
}
|}
    threads
    (if yield_at_loop then "yield;" else "")
    threads incs threads (threads * incs)

let check_then_act ~threads =
  Printf.sprintf
    {|var owner = -1;
var claims = 0;
lock m;
array tids[%d];

fn grab(id) {
  var free = 0;
  sync (m) {
    if (owner < 0) {
      free = 1;
    }
  }
  // The gap between the check and the act is the bug.
  if (free == 1) {
    sync (m) {
      owner = id;
      claims = claims + 1;
    }
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    tids[i] = spawn grab(i);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  print(claims);
}
|}
    threads threads threads

let single_transaction ~threads =
  Printf.sprintf
    {|var x = 0;
lock m;
array tids[%d];

fn worker(v) {
  var local = v * v + 1;
  sync (m) {
    x = x + local;
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    tids[i] = spawn worker(i);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  print(x);
}
|}
    threads threads threads

let deadlock_prone () =
  {|var x = 0;
lock a;
lock b;

fn left() {
  acquire(a);
  acquire(b);
  x = x + 1;
  release(b);
  release(a);
}

fn right() {
  acquire(b);
  acquire(a);
  x = x + 10;
  release(a);
  release(b);
}

fn main() {
  var t1 = spawn left();
  var t2 = spawn right();
  join t1;
  join t2;
  print(x);
}
|}

let monitor_cell ~items =
  Printf.sprintf
    {|var slot = -1;
var got_sum = 0;
lock m;

fn producer(n) {
  var i = 0;
  while (i < n) {
    sync (m) {
      while (slot >= 0) {
        wait(m);
      }
      slot = i * 10;
      notifyall(m);
    }
    i = i + 1;
  }
}

fn consumer(n) {
  var i = 0;
  while (i < n) {
    var got = 0;
    sync (m) {
      while (slot < 0) {
        wait(m);
      }
      got = slot;
      slot = -1;
      notifyall(m);
    }
    print(got);
    got_sum = got_sum + got;
    i = i + 1;
  }
}

fn main() {
  var p = spawn producer(%d);
  var c = spawn consumer(%d);
  join p;
  join c;
  assert(got_sum == %d);
}
|}
    items items
    (let s = ref 0 in
     for i = 0 to items - 1 do
       s := !s + (i * 10)
     done;
     !s)

let producer_consumer ~items =
  Printf.sprintf
    {|var slot = -1;
var consumed = 0;
lock m;

fn producer(n) {
  var i = 0;
  while (i < n) {
    var put = 0;
    while (put == 0) {
      yield;
      sync (m) {
        if (slot < 0) {
          slot = i * 10;
          put = 1;
        }
      }
    }
    i = i + 1;
  }
}

fn consumer(n) {
  var i = 0;
  while (i < n) {
    var got = 0 - 1;
    yield;
    sync (m) {
      if (slot >= 0) {
        got = slot;
        slot = 0 - 1;
      }
    }
    if (got >= 0) {
      print(got);
      consumed = consumed + 1;
      i = i + 1;
    }
  }
}

fn main() {
  var p = spawn producer(%d);
  var c = spawn consumer(%d);
  join p;
  join c;
  assert(consumed == %d);
}
|}
    items items items

let all =
  [
    ("racy_counter", racy_counter ~threads:2 ~incs:2);
    ("locked_counter_noyield", locked_counter ~threads:2 ~incs:2 ~yield_at_loop:false);
    ("locked_counter_yield", locked_counter ~threads:2 ~incs:2 ~yield_at_loop:true);
    ("check_then_act", check_then_act ~threads:2);
    ("single_transaction", single_transaction ~threads:3);
    ("deadlock_prone", deadlock_prone ());
    ("producer_consumer", producer_consumer ~items:3);
    ("monitor_cell", monitor_cell ~items:3);
  ]
