(** Simplified molecular dynamics (Java Grande "moldyn" shape).

    Force computation reads every particle position and writes the owner's
    force slice; the integration phase updates owned positions/velocities.
    Phases are barrier-separated, so the sharing is race-free. *)

val name : string
val description : string
val default_threads : int
val default_size : int

val source : threads:int -> size:int -> string
(** [threads] workers, [4 * size] particles, [size] timesteps. *)
