(** Monte-Carlo pi estimation (Java Grande "montecarlo" shape).

    Embarrassingly parallel: each worker accumulates locally and merges once
    under a lock. The whole worker is a single reducible transaction —
    zero yields are needed. *)

val name : string
val description : string
val default_threads : int
val default_size : int

val source : threads:int -> size:int -> string
(** [threads] workers, [size * 40] trials each. *)
