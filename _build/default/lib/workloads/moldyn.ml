let name = "moldyn"

let description = "barrier-phased molecular dynamics kernel"

let default_threads = 4

let default_size = 5

let source ~threads ~size =
  let n = 4 * size in
  Printf.sprintf
    {|// %d workers, %d particles, %d timesteps
array x[%d];
array v[%d];
array f[%d];
array tids[%d];
%s
%s
fn worker(id, nthreads, steps) {
  var it = 0;
  while (it < steps) {
    var i = id;
    while (i < %d) {
      var acc = 0;
      var j = 0;
      while (j < %d) {
        acc = acc + (x[j] - x[i]);
        j = j + 1;
      }
      f[i] = acc / %d;
      i = i + nthreads;
    }
    barrier(nthreads);
    i = id;
    while (i < %d) {
      v[i] = v[i] + f[i];
      x[i] = x[i] + v[i] / 4;
      i = i + nthreads;
    }
    barrier(nthreads);
    it = it + 1;
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    x[i] = (i * 17) %% 101;
    v[i] = (i * 5) %% 13 - 6;
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    tids[i] = spawn worker(i, %d, %d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  var sum = 0;
  i = 0;
  while (i < %d) {
    sum = sum + x[i] + v[i];
    i = i + 1;
  }
  print(sum);
}
|}
    threads n size n n n threads Snippets.barrier_decls Snippets.barrier_fn n n
    n n n threads threads size threads n
