(** Small canonical programs used by the equivalence experiments (Figure 1)
    and the unit tests. Each is a classic example from the
    cooperability/atomicity literature. *)

val racy_counter : threads:int -> incs:int -> string
(** Unsynchronized [x = x + 1] in parallel: racy, loses updates under
    preemption. *)

val locked_counter : threads:int -> incs:int -> yield_at_loop:bool -> string
(** Lock-protected increments in a loop; with [yield_at_loop] the loop head
    carries the yield cooperability demands, without it the program is a
    cooperability violation (but still race-free and correct). *)

val check_then_act : threads:int -> string
(** The classic non-atomic check-then-act: read a flag under one lock
    region, act under another. Race-free, atomicity violation, cooperability
    violation — and genuinely buggy (the assert can fail). *)

val single_transaction : threads:int -> string
(** Each thread performs one perfectly reducible R* N L* transaction:
    cooperable with zero yields. *)

val deadlock_prone : unit -> string
(** Two threads taking two locks in opposite orders: deadlocks under some
    schedules. Used to test deadlock detection in the explorer. *)

val monitor_cell : items:int -> string
(** One producer, one consumer over a 1-slot cell coordinated with
    [wait]/[notify] on its monitor — the Java idiom our spin loops
    otherwise substitute for. Deterministic output; race-free; the waits
    are the yield points. *)

val producer_consumer : items:int -> string
(** One producer, one consumer over a 1-slot buffer with yield-based
    polling: cooperable, terminating, deterministic output. *)

val all : (string * string) list
(** [(name, source)] of every micro program at small default parameters. *)
