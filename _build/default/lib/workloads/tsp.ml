let name = "tsp"

let description = "branch-and-bound TSP with a benign racy bound"

let default_threads = 4

let default_size = 2

let source ~threads ~size =
  let cities = min 8 (4 + size) in
  Printf.sprintf
    {|// %d workers, %d cities
var best = 99999999;
var next_start = 0;
lock best_lock;
lock wq_lock;
array dist[%d];
array visited[%d];
array tids[%d];

fn search(id, city, nvis, len, n) {
  var bound = best; // deliberate unlocked read: the benign race
  if (len < bound) {
    if (nvis == n) {
      var total = len + dist[city * n + 0];
      sync (best_lock) {
        if (total < best) {
          best = total;
        }
      }
    } else {
      var c = 1;
      while (c < n) {
        if (visited[id * n + c] == 0) {
          visited[id * n + c] = 1;
          search(id, c, nvis + 1, len + dist[city * n + c], n);
          visited[id * n + c] = 0;
        }
        c = c + 1;
      }
    }
  }
}

fn worker(id, n) {
  var running = 1;
  while (running == 1) {
    var s = 0 - 1;
    sync (wq_lock) {
      if (next_start < n - 1) {
        next_start = next_start + 1;
        s = next_start;
      }
    }
    if (s < 0) {
      running = 0;
    } else {
      var c = 0;
      while (c < n) {
        visited[id * n + c] = 0;
        c = c + 1;
      }
      visited[id * n + s] = 1;
      search(id, s, 2, dist[0 * n + s], n);
    }
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    var j = 0;
    while (j < %d) {
      if (i == j) {
        dist[i * %d + j] = 0;
      } else {
        var d = ((i * 37 + j * 61) %% 90) + 10;
        dist[i * %d + j] = d;
        dist[j * %d + i] = d;
      }
      j = j + 1;
    }
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    tids[i] = spawn worker(i, %d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  print(best);
}
|}
    threads cities (cities * cities) (threads * cities) threads cities cities
    cities cities cities threads cities threads
