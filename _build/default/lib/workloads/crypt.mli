(** Encrypt/decrypt round trip over disjoint slices (Java Grande "crypt"
    shape).

    Phase 1 workers encrypt, are joined, then phase 2 workers decrypt; the
    final assertion checks the round trip. Fork/join provides all ordering —
    a workload whose mover vocabulary is fork/join rather than locks. *)

val name : string
val description : string
val default_threads : int
val default_size : int

val source : threads:int -> size:int -> string
(** [threads] workers per phase over [8 * size] bytes. *)
