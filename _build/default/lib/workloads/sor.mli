(** Red-black successive over-relaxation on a 1-D grid.

    Barrier-separated phases: even cells then odd cells, strided over
    threads. All sharing is disjoint-write/ordered-read, so the only yields
    are the explicit ones in the barrier's spin loop. *)

val name : string
val description : string
val default_threads : int
val default_size : int

val source : threads:int -> size:int -> string
(** [threads] workers, grid of [8 * size] cells, [size] iterations. *)
