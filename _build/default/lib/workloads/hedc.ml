let name = "hedc"

let description = "task pool with follow-up task production"

let default_threads = 4

let default_size = 4

let capacity = 16

let source ~threads ~size =
  let seeds = size * 4 in
  (* The pool must fit all seeds (main seeds before crawlers start) plus one
     in-flight follow-up per crawler, or all crawlers can end up spinning on
     a full pool with nobody left to pop. *)
  let capacity = max capacity (seeds + (2 * threads)) in
  Printf.sprintf
    {|// %d crawlers, %d seed tasks, capacity %d
array pool[%d];
var t_head = 0;
var t_tail = 0;
var pending = 0;
var seeded = 0;
var results = 0;
lock t_lock;
lock r_lock;
array tids[%d];

fn crawler(id, cap) {
  var running = 1;
  while (running == 1) {
    var task = 0 - 1;
    yield;
    sync (t_lock) {
      if (t_head < t_tail) {
        task = pool[t_head %% cap];
        t_head = t_head + 1;
      } else {
        if (seeded == 1 && pending == 0) {
          running = 0;
        }
      }
    }
    if (task >= 0) {
      var acc = 0;
      var k = 0;
      while (k < task %% 20 + 5) {
        acc = acc + k * task;
        k = k + 1;
      }
      sync (r_lock) {
        results = results + 1;
      }
      if (task >= 3) {
        var pushed = 0;
        while (pushed == 0) {
          yield;
          sync (t_lock) {
            if (t_tail - t_head < cap) {
              pool[t_tail %% cap] = task / 3;
              t_tail = t_tail + 1;
              pending = pending + 1;
              pushed = 1;
            }
          }
        }
      }
      sync (t_lock) {
        pending = pending - 1;
      }
    }
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    sync (t_lock) {
      pool[t_tail %% %d] = (i * 11 + 4) %% 40;
      t_tail = t_tail + 1;
      pending = pending + 1;
    }
    i = i + 1;
  }
  sync (t_lock) {
    seeded = 1;
  }
  i = 0;
  while (i < %d) {
    tids[i] = spawn crawler(i, %d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  print(results);
  assert(results >= %d);
}
|}
    threads seeds capacity capacity threads seeds capacity threads capacity
    threads seeds
