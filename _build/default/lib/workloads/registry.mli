(** The benchmark registry: every workload the evaluation runs, with its
    default parameters, addressable by name from the CLI and the bench
    harness. *)

type entry = {
  name : string;
  description : string;
  source : threads:int -> size:int -> string;  (** CoopLang source. *)
  default_threads : int;
  default_size : int;
}

val all : entry list
(** The fourteen evaluation workloads, in Table 1 order. *)

val find : string -> entry option
(** Look a workload up by name. *)

val names : string list
(** All workload names, in order. *)

val source_of : ?threads:int -> ?size:int -> entry -> string
(** Source at the given (default: the entry's default) parameters. *)

val program_of : ?threads:int -> ?size:int -> entry -> Coop_lang.Bytecode.program
(** Compiled program at the given parameters. *)

val loc_count : string -> int
(** Non-blank, non-comment source lines — the "LoC" column of Table 1. *)
