let name = "sparse"

let description = "sparse mat-vec with per-thread partial sums"

let default_threads = 4

let default_size = 5

let source ~threads ~size =
  let rows = 4 * size in
  let nnz = 12 * size in
  Printf.sprintf
    {|// %d workers, %d nonzeros, %d rows
array row[%d];
array col[%d];
array val[%d];
array x[%d];
array partial[%d];  // threads x rows, flattened
array y[%d];
array tids[%d];

fn worker(id, nthreads, nnz, rows) {
  var k = id;
  while (k < nnz) {
    var r = row[k];
    partial[id * rows + r] = partial[id * rows + r] + val[k] * x[col[k]];
    k = k + nthreads;
  }
}

fn main() {
  var k = 0;
  while (k < %d) {
    row[k] = (k * 7) %% %d;
    col[k] = (k * 13) %% %d;
    val[k] = (k * 3) %% 9 + 1;
    k = k + 1;
  }
  k = 0;
  while (k < %d) {
    x[k] = (k * 5) %% 11 + 1;
    k = k + 1;
  }
  var i = 0;
  while (i < %d) {
    tids[i] = spawn worker(i, %d, %d, %d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  var r = 0;
  while (r < %d) {
    var acc = 0;
    i = 0;
    while (i < %d) {
      acc = acc + partial[i * %d + r];
      i = i + 1;
    }
    y[r] = acc;
    r = r + 1;
  }
  var checksum = 0;
  r = 0;
  while (r < %d) {
    checksum = checksum + y[r];
    r = r + 1;
  }
  print(checksum);
}
|}
    threads nnz rows nnz nnz nnz rows (threads * rows) rows threads nnz rows
    rows rows threads threads nnz rows threads rows threads rows rows
