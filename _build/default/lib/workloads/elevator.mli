(** Elevator simulation: a producer posts floor requests into a bounded
    queue; elevator threads poll the queue, travel locally, and count served
    requests.

    Polling loops carry explicit yields (required for liveness under
    cooperative scheduling); the two lock regions per service cycle are
    where inference adds its yields. *)

val name : string
val description : string
val default_threads : int
val default_size : int

val source : threads:int -> size:int -> string
(** [threads] elevators, [size * 5] requests, queue capacity 8. *)
