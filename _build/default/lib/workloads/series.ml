let name = "series"

let description = "disjoint-slice data parallelism, no synchronization"

let default_threads = 4

let default_size = 5

let source ~threads ~size =
  let n = 8 * size in
  Printf.sprintf
    {|// %d workers, %d coefficients
array coef[%d];
array tids[%d];

fn worker(id, nthreads, n) {
  var i = id;
  while (i < n) {
    var acc = 0;
    var k = 1;
    while (k < 30) {
      acc = acc + (i * k * k) %% 1000;
      k = k + 1;
    }
    coef[i] = acc;
    i = i + nthreads;
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    tids[i] = spawn worker(i, %d, %d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  var sum = 0;
  i = 0;
  while (i < %d) {
    sum = sum + coef[i];
    i = i + 1;
  }
  print(sum);
}
|}
    threads n n threads threads threads n threads n
