let name = "sor"

let description = "red-black SOR stencil with counter barriers"

let default_threads = 4

let default_size = 6

let source ~threads ~size =
  let n = 8 * size in
  Printf.sprintf
    {|// %d workers, %d cells, %d iterations
array grid[%d];
array tids[%d];
%s
%s
fn worker(id, nthreads, iters) {
  var it = 0;
  while (it < iters) {
    var i = 1 + id;
    while (i < %d - 1) {
      if (i %% 2 == 0) {
        grid[i] = (grid[i - 1] + grid[i + 1]) / 2;
      }
      i = i + nthreads;
    }
    barrier(nthreads);
    i = 1 + id;
    while (i < %d - 1) {
      if (i %% 2 == 1) {
        grid[i] = (grid[i - 1] + grid[i + 1]) / 2;
      }
      i = i + nthreads;
    }
    barrier(nthreads);
    it = it + 1;
  }
}

fn main() {
  var i = 0;
  while (i < %d) {
    grid[i] = (i * i) %% 97;
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    tids[i] = spawn worker(i, %d, %d);
    i = i + 1;
  }
  i = 0;
  while (i < %d) {
    join tids[i];
    i = i + 1;
  }
  var sum = 0;
  i = 0;
  while (i < %d) {
    sum = sum + grid[i];
    i = i + 1;
  }
  print(sum);
}
|}
    threads n size n threads Snippets.barrier_decls Snippets.barrier_fn n n n
    threads threads size threads n
