(** A reference big-step evaluator for the sequential fragment of CoopLang.

    This is the executable semantics the compiler + VM are tested against:
    for any single-threaded program (no [spawn]/[join]/[sync]/[acquire]/
    [release]/[yield]/[atomic]), running the compiled bytecode under any
    scheduler must produce exactly the evaluator's output and final global
    store. The fuzzing property in the test suite generates random
    well-formed sequential programs and checks this agreement.

    The evaluator interprets the AST directly — it shares no code with the
    compiler or VM, which is what makes the agreement meaningful. *)

exception Unsupported of string
(** Raised when the program uses a concurrency construct. *)

exception Fault of string
(** Runtime faults: division by zero, out-of-bounds access, failed assert. *)

type outcome = {
  output : int list;  (** [print] values in order. *)
  globals : int list;  (** Final value of each global slot. *)
  fault : string option;  (** The first fault, if any ended the run. *)
}

val run : ?fuel:int -> Ast.program -> outcome
(** [run p] evaluates [p] from [main]. [fuel] (default 1_000_000) bounds the
    number of statements executed; exceeding it raises [Fault "out of
    fuel"] so non-terminating generated programs cannot hang the tests.
    Raises {!Unsupported} on concurrency constructs, and {!Resolve.Error}
    via the embedded name resolution. *)
