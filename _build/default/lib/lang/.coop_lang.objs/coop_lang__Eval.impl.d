lib/lang/eval.ml: Array Ast List Resolve
