lib/lang/ast.mli:
