lib/lang/ast.ml: List String
