lib/lang/compile.ml: Array Ast Bytecode List Parser Printf Resolve
