lib/lang/token.ml:
