lib/lang/resolve.mli: Ast
