lib/lang/pretty.ml: Ast List Printf String
