lib/lang/bytecode.ml: Array Ast Buffer Coop_trace Format Pretty Printf
