lib/lang/compile.mli: Ast Bytecode
