lib/lang/resolve.ml: Array Ast Hashtbl List Printf String
