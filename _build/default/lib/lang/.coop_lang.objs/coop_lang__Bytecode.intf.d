lib/lang/bytecode.mli: Ast Coop_trace Format
