lib/lang/token.mli:
