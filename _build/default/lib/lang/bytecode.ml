type instr =
  | Const of int
  | Load_global of int
  | Store_global of int
  | Load_local of int
  | Store_local of int
  | Load_elem of int
  | Store_elem of int
  | Array_len of int
  | Binop of Ast.binop
  | Unop of Ast.unop
  | Jump of int
  | Jump_if_zero of int
  | Acquire
  | Release
  | Wait
  | Notify of bool
  | Yield_instr
  | Atomic_begin
  | Atomic_end
  | Spawn of int * int
  | Join
  | Call of int * int
  | Ret
  | Print
  | Assert
  | Pop
  | Halt

type func = {
  name : string;
  arity : int;
  n_locals : int;
  code : instr array;
  lines : int array;
}

type program = {
  funcs : func array;
  main : int;
  n_globals : int;
  global_init : int array;
  global_names : string array;
  array_sizes : int array;
  array_names : string array;
  n_locks : int;
  lock_names : string array;
}

let loc prog ~func ~pc =
  let f = prog.funcs.(func) in
  let line = if pc >= 0 && pc < Array.length f.lines then f.lines.(pc) else 0 in
  Coop_trace.Loc.make ~func ~pc ~line

let pp_instr ppf = function
  | Const n -> Format.fprintf ppf "const %d" n
  | Load_global g -> Format.fprintf ppf "load_g %d" g
  | Store_global g -> Format.fprintf ppf "store_g %d" g
  | Load_local l -> Format.fprintf ppf "load_l %d" l
  | Store_local l -> Format.fprintf ppf "store_l %d" l
  | Load_elem a -> Format.fprintf ppf "load_e a%d" a
  | Store_elem a -> Format.fprintf ppf "store_e a%d" a
  | Array_len a -> Format.fprintf ppf "len a%d" a
  | Binop op -> Format.fprintf ppf "binop %s" (Pretty.binop op)
  | Unop op -> Format.fprintf ppf "unop %s" (Pretty.unop op)
  | Jump t -> Format.fprintf ppf "jump %d" t
  | Jump_if_zero t -> Format.fprintf ppf "jz %d" t
  | Acquire -> Format.pp_print_string ppf "acquire"
  | Release -> Format.pp_print_string ppf "release"
  | Wait -> Format.pp_print_string ppf "wait"
  | Notify all -> Format.pp_print_string ppf (if all then "notifyall" else "notify")
  | Yield_instr -> Format.pp_print_string ppf "yield"
  | Atomic_begin -> Format.pp_print_string ppf "atomic_begin"
  | Atomic_end -> Format.pp_print_string ppf "atomic_end"
  | Spawn (f, n) -> Format.fprintf ppf "spawn f%d/%d" f n
  | Join -> Format.pp_print_string ppf "join"
  | Call (f, n) -> Format.fprintf ppf "call f%d/%d" f n
  | Ret -> Format.pp_print_string ppf "ret"
  | Print -> Format.pp_print_string ppf "print"
  | Assert -> Format.pp_print_string ppf "assert"
  | Pop -> Format.pp_print_string ppf "pop"
  | Halt -> Format.pp_print_string ppf "halt"

let disassemble prog =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun fi f ->
      Buffer.add_string buf
        (Printf.sprintf "fn %s (f%d, arity %d, locals %d):\n" f.name fi f.arity
           f.n_locals);
      Array.iteri
        (fun pc ins ->
          Buffer.add_string buf
            (Format.asprintf "  %4d: %a   ; line %d\n" pc pp_instr ins
               f.lines.(pc)))
        f.code)
    prog.funcs;
  Buffer.contents buf

let code_size prog =
  Array.fold_left (fun n f -> n + Array.length f.code) 0 prog.funcs
