exception Error of string * int

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let tokens = ref [] in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      let start_line = !line in
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then raise (Error ("unterminated comment", start_line))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      emit (Token.INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      match Token.keyword_of_string word with
      | Some kw -> emit kw
      | None -> emit (Token.IDENT word)
    end
    else begin
      let two tok = emit tok; i := !i + 2 in
      let one tok = emit tok; incr i in
      match (c, peek 1) with
      | '<', Some '=' -> two Token.LE
      | '>', Some '=' -> two Token.GE
      | '=', Some '=' -> two Token.EQEQ
      | '!', Some '=' -> two Token.NE
      | '&', Some '&' -> two Token.ANDAND
      | '|', Some '|' -> two Token.OROR
      | '(', _ -> one Token.LPAREN
      | ')', _ -> one Token.RPAREN
      | '{', _ -> one Token.LBRACE
      | '}', _ -> one Token.RBRACE
      | '[', _ -> one Token.LBRACKET
      | ']', _ -> one Token.RBRACKET
      | ',', _ -> one Token.COMMA
      | ';', _ -> one Token.SEMI
      | '=', _ -> one Token.ASSIGN
      | '+', _ -> one Token.PLUS
      | '-', _ -> one Token.MINUS
      | '*', _ -> one Token.STAR
      | '/', _ -> one Token.SLASH
      | '%', _ -> one Token.PERCENT
      | '<', _ -> one Token.LT
      | '>', _ -> one Token.GT
      | '!', _ -> one Token.BANG
      | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  emit Token.EOF;
  List.rev !tokens
