(** Abstract syntax of CoopLang.

    CoopLang is the small concurrent imperative language the benchmarks are
    written in. It provides exactly the features the paper's analysis needs
    to observe: shared global scalars and arrays, locks with structured
    [sync] blocks, [spawn]/[join] threading, explicit [yield] annotations,
    and [atomic] blocks (used only by the atomicity baseline).

    Values are machine integers; booleans are represented as 0/1. The
    logical operators [&&] and [||] are strict (both operands evaluate) —
    this keeps the bytecode's interleaving semantics simple and does not
    matter for any benchmark. *)

(** Binary operators, in C-like precedence. *)
type binop =
  | Add
  | Sub
  | Mul
  | Div  (** Truncating; division by zero is a runtime fault. *)
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And  (** Strict logical and: nonzero/nonzero. *)
  | Or  (** Strict logical or. *)

(** Unary operators. *)
type unop =
  | Neg
  | Not

(** Expressions. *)
type expr =
  | Int of int  (** Integer literal. *)
  | Bool of bool  (** [true]/[false] literal. *)
  | Var of string  (** Local or global scalar read. *)
  | Index of string * expr  (** Array element read [a[e]]. *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list  (** Function call, yields its return value. *)
  | Spawn of string * expr list
      (** Thread creation; evaluates to the child's thread id. *)

(** A reference to a lock: either a scalar lock or an element of a lock
    array. *)
type lock_ref = {
  lock : string;  (** Declared lock name. *)
  index : expr option;  (** Element selector for lock arrays. *)
}

(** Statement payloads. *)
type stmt_kind =
  | Local of string * expr  (** [var x = e;] — a new thread-local slot. *)
  | Assign of string * expr  (** [x = e;] — local or global. *)
  | Store of string * expr * expr  (** [a[i] = e;]. *)
  | If of expr * block * block  (** [if (e) { .. } else { .. }]. *)
  | While of expr * block  (** [while (e) { .. }]. *)
  | Sync of lock_ref * block  (** [sync (m) { .. }] — acquire/release. *)
  | Atomic of block  (** [atomic { .. }] — atomicity-spec marker. *)
  | Yield  (** [yield;] — a cooperative scheduling point. *)
  | Acquire_stmt of lock_ref  (** [acquire(m);] — unstructured locking. *)
  | Release_stmt of lock_ref  (** [release(m);]. *)
  | Wait_stmt of lock_ref
      (** [wait(m);] — must hold [m]: releases it, parks on its condition,
          and reacquires after a notify. A yield point, as in the paper. *)
  | Notify_stmt of lock_ref * bool
      (** [notify(m);] / [notifyall(m);] — must hold [m]; wakes one / all
          waiters. The [bool] is true for notifyall. *)
  | Join_stmt of expr  (** [join e;] — wait for a thread id. *)
  | Print of expr  (** [print(e);] — observable output. *)
  | Assert of expr  (** [assert(e);] — fault when zero. *)
  | Return of expr option  (** [return;] or [return e;]. *)
  | Expr_stmt of expr  (** Call or spawn for effect. *)
  | Block of block  (** Nested scope. *)

and stmt = {
  kind : stmt_kind;
  line : int;  (** 1-based source line, for diagnostics and reports. *)
}

and block = stmt list

(** A function definition. All functions return an integer (0 implicitly). *)
type func = {
  fname : string;
  params : string list;
  body : block;
  fline : int;
}

(** Top-level declarations. *)
type decl =
  | Gvar of string * int  (** [var x = k;] — shared scalar, constant init. *)
  | Garray of string * int  (** [array a[N];] — shared, zero-initialized. *)
  | Glock of string * int  (** [lock m;] (count 1) or [lock m[N];]. *)

(** A whole program. Execution starts at the zero-argument function
    [main]. *)
type program = {
  decls : decl list;
  funcs : func list;
}

val stmt : ?line:int -> stmt_kind -> stmt
(** Statement constructor with a default line of 0. *)

val equal_expr : expr -> expr -> bool
(** Structural equality (used by parser round-trip tests). *)

val equal_program : program -> program -> bool
(** Structural equality ignoring line numbers. *)
