exception Unsupported of string

exception Fault of string

type outcome = {
  output : int list;
  globals : int list;
  fault : string option;
}

(* The evaluator carries its own mutable world; locals are association
   lists, rebuilt per scope, which keeps shadowing semantics obvious. *)
type world = {
  env : Resolve.env;
  prog : Ast.program;
  globals : int array;
  arrays : int array array;
  mutable output_rev : int list;
  mutable fuel : int;
}

exception Returned of int

let spend w =
  if w.fuel <= 0 then raise (Fault "out of fuel");
  w.fuel <- w.fuel - 1

let func_of w name =
  let rec go = function
    | [] -> raise (Fault ("no such function " ^ name))
    | (f : Ast.func) :: rest -> if f.fname = name then f else go rest
  in
  go w.prog.Ast.funcs

let rec eval_expr w locals (e : Ast.expr) =
  match e with
  | Ast.Int n -> n
  | Ast.Bool b -> if b then 1 else 0
  | Ast.Var x -> (
      match List.assoc_opt x !locals with
      | Some v -> v
      | None -> (
          match Resolve.global_slot w.env x with
          | Some g -> w.globals.(g)
          | None -> raise (Fault ("unknown variable " ^ x))))
  | Ast.Index (a, i) -> (
      match Resolve.array_id w.env a with
      | Some id ->
          let idx = eval_expr w locals i in
          if idx < 0 || idx >= Array.length w.arrays.(id) then
            raise (Fault "array index out of bounds");
          w.arrays.(id).(idx)
      | None -> raise (Fault ("unknown array " ^ a)))
  | Ast.Unary (op, e) -> (
      let v = eval_expr w locals e in
      match op with Ast.Neg -> -v | Ast.Not -> if v = 0 then 1 else 0)
  | Ast.Binary (op, a, b) -> (
      let x = eval_expr w locals a in
      let y = eval_expr w locals b in
      let bool_ c = if c then 1 else 0 in
      match op with
      | Ast.Add -> x + y
      | Ast.Sub -> x - y
      | Ast.Mul -> x * y
      | Ast.Div -> if y = 0 then raise (Fault "division by zero") else x / y
      | Ast.Mod -> if y = 0 then raise (Fault "modulo by zero") else x mod y
      | Ast.Lt -> bool_ (x < y)
      | Ast.Le -> bool_ (x <= y)
      | Ast.Gt -> bool_ (x > y)
      | Ast.Ge -> bool_ (x >= y)
      | Ast.Eq -> bool_ (x = y)
      | Ast.Ne -> bool_ (x <> y)
      | Ast.And -> bool_ (x <> 0 && y <> 0)
      | Ast.Or -> bool_ (x <> 0 || y <> 0))
  | Ast.Call (f, args) ->
      let vals = List.map (eval_expr w locals) args in
      call w f vals
  | Ast.Spawn _ -> raise (Unsupported "spawn")

and call w fname args =
  let f = func_of w fname in
  if List.length f.Ast.params <> List.length args then
    raise (Fault ("arity mismatch calling " ^ fname));
  let locals = ref (List.combine f.Ast.params args) in
  match exec_block w locals f.Ast.body with
  | () -> 0
  | exception Returned v -> v

and exec_block w locals stmts =
  (* Locals declared inside the block vanish afterwards. *)
  let saved = !locals in
  List.iter (exec_stmt w locals) stmts;
  locals := saved

and exec_stmt w locals (s : Ast.stmt) =
  spend w;
  match s.kind with
  | Ast.Local (x, e) ->
      let v = eval_expr w locals e in
      locals := (x, v) :: !locals
  | Ast.Assign (x, e) -> (
      let v = eval_expr w locals e in
      if List.mem_assoc x !locals then begin
        (* Replace the innermost binding. *)
        let rec replace = function
          | [] -> []
          | (y, _) :: rest when y = x -> (y, v) :: rest
          | b :: rest -> b :: replace rest
        in
        locals := replace !locals
      end
      else begin
        match Resolve.global_slot w.env x with
        | Some g -> w.globals.(g) <- v
        | None -> raise (Fault ("unknown variable " ^ x))
      end)
  | Ast.Store (a, i, e) -> (
      match Resolve.array_id w.env a with
      | Some id ->
          let idx = eval_expr w locals i in
          let v = eval_expr w locals e in
          if idx < 0 || idx >= Array.length w.arrays.(id) then
            raise (Fault "array index out of bounds");
          w.arrays.(id).(idx) <- v
      | None -> raise (Fault ("unknown array " ^ a)))
  | Ast.If (c, t, e) ->
      if eval_expr w locals c <> 0 then exec_block w locals t
      else exec_block w locals e
  | Ast.While (c, b) ->
      let rec loop () =
        spend w;
        if eval_expr w locals c <> 0 then begin
          exec_block w locals b;
          loop ()
        end
      in
      loop ()
  | Ast.Print e -> w.output_rev <- eval_expr w locals e :: w.output_rev
  | Ast.Assert e ->
      if eval_expr w locals e = 0 then raise (Fault "assertion failed")
  | Ast.Return None -> raise (Returned 0)
  | Ast.Return (Some e) -> raise (Returned (eval_expr w locals e))
  | Ast.Expr_stmt e -> ignore (eval_expr w locals e)
  | Ast.Block b -> exec_block w locals b
  | Ast.Yield -> raise (Unsupported "yield")
  | Ast.Sync _ -> raise (Unsupported "sync")
  | Ast.Atomic _ -> raise (Unsupported "atomic")
  | Ast.Acquire_stmt _ -> raise (Unsupported "acquire")
  | Ast.Release_stmt _ -> raise (Unsupported "release")
  | Ast.Wait_stmt _ -> raise (Unsupported "wait")
  | Ast.Notify_stmt _ -> raise (Unsupported "notify")
  | Ast.Join_stmt _ -> raise (Unsupported "join")

let run ?(fuel = 1_000_000) (p : Ast.program) =
  let env = Resolve.program p in
  let globals = Array.copy env.Resolve.global_init in
  let arrays = Array.map (fun n -> Array.make n 0) env.Resolve.array_sizes in
  let w = { env; prog = p; globals; arrays; output_rev = []; fuel } in
  let fault =
    match call w "main" [] with
    | _ -> None
    | exception Fault msg -> Some msg
  in
  {
    output = List.rev w.output_rev;
    globals = Array.to_list w.globals;
    fault;
  }
