(** Compiler from CoopLang AST to {!Bytecode}.

    Single pass per function with backpatched jump targets. Local slots are
    allocated monotonically (no reuse), so every [var] and every compiler
    temporary gets a distinct slot; shadowing follows lexical scope. *)

exception Error of string
(** Raised on internal consistency errors (resolution is expected to have
    been run first and catches all user-level errors). *)

val program : Ast.program -> Bytecode.program
(** Compile a resolved-checkable program. Runs {!Resolve.program} internally
    and therefore raises {!Resolve.Error} on static errors. *)

val source : string -> Bytecode.program
(** [source src] parses, resolves and compiles. Raises {!Lexer.Error},
    {!Parser.Error}, {!Resolve.Error} accordingly. *)
