(** Name resolution and static checks for CoopLang programs.

    Resolution assigns dense slots/ids to globals, arrays, locks and
    functions, and rejects ill-formed programs before compilation: duplicate
    declarations, unknown names, arity mismatches, a missing zero-argument
    [main], non-positive array or lock sizes, and [return] inside [sync] or
    [atomic] blocks (which would bypass the release). *)

exception Error of string
(** Raised with a human-readable message on any static error. *)

type env = {
  n_globals : int;  (** Number of global scalar slots. *)
  global_names : string array;  (** Slot -> name. *)
  global_init : int array;  (** Slot -> initial value. *)
  array_names : string array;  (** Array id -> name. *)
  array_sizes : int array;  (** Array id -> declared size. *)
  lock_names : string array;
      (** Lock group -> name. Groups with count > 1 occupy a contiguous
          range of handles. *)
  lock_bases : int array;  (** Lock group -> first handle. *)
  lock_counts : int array;  (** Lock group -> number of handles. *)
  n_locks : int;  (** Total number of lock handles. *)
  func_names : string array;  (** Function index -> name. *)
  func_arity : int array;  (** Function index -> parameter count. *)
  main : int;  (** Index of [main]. *)
}

val global_slot : env -> string -> int option
(** Slot of a global scalar, if declared. *)

val array_id : env -> string -> int option
(** Id of an array, if declared. *)

val lock_group : env -> string -> int option
(** Group index of a lock, if declared. *)

val func_index : env -> string -> int option
(** Index of a function, if defined. *)

val program : Ast.program -> env
(** Resolve and check a program. Raises {!Error} on any violation. *)
