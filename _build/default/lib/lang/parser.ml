exception Error of string * int

type state = {
  toks : (Token.t * int) array;
  mutable pos : int;
}

let current st = fst st.toks.(st.pos)

let line st = snd st.toks.(st.pos)

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let fail st msg =
  raise (Error (Printf.sprintf "%s (found %s)" msg (Token.to_string (current st)), line st))

let expect st tok what =
  if current st = tok then advance st
  else fail st (Printf.sprintf "expected %s after %s" (Token.to_string tok) what)

let ident st what =
  match current st with
  | Token.IDENT s ->
      advance st;
      s
  | _ -> fail st (Printf.sprintf "expected identifier in %s" what)

let int_lit st what =
  match current st with
  | Token.INT n ->
      advance st;
      n
  | Token.MINUS -> (
      advance st;
      match current st with
      | Token.INT n ->
          advance st;
          -n
      | _ -> fail st (Printf.sprintf "expected integer in %s" what))
  | _ -> fail st (Printf.sprintf "expected integer in %s" what)

(* --- Expressions: precedence climbing --------------------------------- *)

let binop_of_token = function
  | Token.OROR -> Some (Ast.Or, 1)
  | Token.ANDAND -> Some (Ast.And, 2)
  | Token.EQEQ -> Some (Ast.Eq, 3)
  | Token.NE -> Some (Ast.Ne, 3)
  | Token.LT -> Some (Ast.Lt, 4)
  | Token.LE -> Some (Ast.Le, 4)
  | Token.GT -> Some (Ast.Gt, 4)
  | Token.GE -> Some (Ast.Ge, 4)
  | Token.PLUS -> Some (Ast.Add, 5)
  | Token.MINUS -> Some (Ast.Sub, 5)
  | Token.STAR -> Some (Ast.Mul, 6)
  | Token.SLASH -> Some (Ast.Div, 6)
  | Token.PERCENT -> Some (Ast.Mod, 6)
  | _ -> None

let rec parse_expr st = parse_binary st 1

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (current st) with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := Ast.Binary (op, !lhs, rhs)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match current st with
  | Token.MINUS ->
      advance st;
      Ast.Unary (Ast.Neg, parse_unary st)
  | Token.BANG ->
      advance st;
      Ast.Unary (Ast.Not, parse_unary st)
  | _ -> parse_primary st

and parse_args st =
  expect st Token.LPAREN "call";
  if current st = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let e = parse_expr st in
      match current st with
      | Token.COMMA ->
          advance st;
          loop (e :: acc)
      | Token.RPAREN ->
          advance st;
          List.rev (e :: acc)
      | _ -> fail st "expected , or ) in argument list"
    in
    loop []
  end

and parse_primary st =
  match current st with
  | Token.INT n ->
      advance st;
      Ast.Int n
  | Token.KW_TRUE ->
      advance st;
      Ast.Bool true
  | Token.KW_FALSE ->
      advance st;
      Ast.Bool false
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN "parenthesized expression";
      e
  | Token.KW_SPAWN ->
      advance st;
      let f = ident st "spawn" in
      let args = parse_args st in
      Ast.Spawn (f, args)
  | Token.IDENT name -> (
      advance st;
      match current st with
      | Token.LPAREN -> Ast.Call (name, parse_args st)
      | Token.LBRACKET ->
          advance st;
          let idx = parse_expr st in
          expect st Token.RBRACKET "array index";
          Ast.Index (name, idx)
      | _ -> Ast.Var name)
  | _ -> fail st "expected expression"

(* --- Statements -------------------------------------------------------- *)

let parse_lock_ref st =
  let name = ident st "lock reference" in
  if current st = Token.LBRACKET then begin
    advance st;
    let idx = parse_expr st in
    expect st Token.RBRACKET "lock index";
    { Ast.lock = name; index = Some idx }
  end
  else { Ast.lock = name; index = None }

let rec parse_block st =
  expect st Token.LBRACE "block";
  let rec loop acc =
    if current st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

and parse_stmt st =
  let ln = line st in
  let mk kind = Ast.stmt ~line:ln kind in
  match current st with
  | Token.KW_VAR ->
      advance st;
      let name = ident st "var declaration" in
      expect st Token.ASSIGN "var name";
      let e = parse_expr st in
      expect st Token.SEMI "var declaration";
      mk (Ast.Local (name, e))
  | Token.KW_IF ->
      advance st;
      expect st Token.LPAREN "if";
      let cond = parse_expr st in
      expect st Token.RPAREN "if condition";
      let then_ = parse_block st in
      let else_ =
        if current st = Token.KW_ELSE then begin
          advance st;
          if current st = Token.KW_IF then [ parse_stmt st ]
          else parse_block st
        end
        else []
      in
      mk (Ast.If (cond, then_, else_))
  | Token.KW_WHILE ->
      advance st;
      expect st Token.LPAREN "while";
      let cond = parse_expr st in
      expect st Token.RPAREN "while condition";
      mk (Ast.While (cond, parse_block st))
  | Token.KW_SYNC ->
      advance st;
      expect st Token.LPAREN "sync";
      let l = parse_lock_ref st in
      expect st Token.RPAREN "sync lock";
      mk (Ast.Sync (l, parse_block st))
  | Token.KW_ATOMIC ->
      advance st;
      mk (Ast.Atomic (parse_block st))
  | Token.KW_YIELD ->
      advance st;
      expect st Token.SEMI "yield";
      mk Ast.Yield
  | Token.KW_ACQUIRE ->
      advance st;
      expect st Token.LPAREN "acquire";
      let l = parse_lock_ref st in
      expect st Token.RPAREN "acquire lock";
      expect st Token.SEMI "acquire";
      mk (Ast.Acquire_stmt l)
  | Token.KW_RELEASE ->
      advance st;
      expect st Token.LPAREN "release";
      let l = parse_lock_ref st in
      expect st Token.RPAREN "release lock";
      expect st Token.SEMI "release";
      mk (Ast.Release_stmt l)
  | Token.KW_WAIT ->
      advance st;
      expect st Token.LPAREN "wait";
      let l = parse_lock_ref st in
      expect st Token.RPAREN "wait lock";
      expect st Token.SEMI "wait";
      mk (Ast.Wait_stmt l)
  | Token.KW_NOTIFY | Token.KW_NOTIFYALL ->
      let all = current st = Token.KW_NOTIFYALL in
      advance st;
      expect st Token.LPAREN "notify";
      let l = parse_lock_ref st in
      expect st Token.RPAREN "notify lock";
      expect st Token.SEMI "notify";
      mk (Ast.Notify_stmt (l, all))
  | Token.KW_JOIN ->
      advance st;
      let e = parse_expr st in
      expect st Token.SEMI "join";
      mk (Ast.Join_stmt e)
  | Token.KW_PRINT ->
      advance st;
      expect st Token.LPAREN "print";
      let e = parse_expr st in
      expect st Token.RPAREN "print argument";
      expect st Token.SEMI "print";
      mk (Ast.Print e)
  | Token.KW_ASSERT ->
      advance st;
      expect st Token.LPAREN "assert";
      let e = parse_expr st in
      expect st Token.RPAREN "assert argument";
      expect st Token.SEMI "assert";
      mk (Ast.Assert e)
  | Token.KW_RETURN ->
      advance st;
      if current st = Token.SEMI then begin
        advance st;
        mk (Ast.Return None)
      end
      else begin
        let e = parse_expr st in
        expect st Token.SEMI "return";
        mk (Ast.Return (Some e))
      end
  | Token.KW_SPAWN ->
      advance st;
      let f = ident st "spawn" in
      let args = parse_args st in
      expect st Token.SEMI "spawn";
      mk (Ast.Expr_stmt (Ast.Spawn (f, args)))
  | Token.LBRACE -> mk (Ast.Block (parse_block st))
  | Token.IDENT name -> (
      advance st;
      match current st with
      | Token.ASSIGN ->
          advance st;
          let e = parse_expr st in
          expect st Token.SEMI "assignment";
          mk (Ast.Assign (name, e))
      | Token.LBRACKET ->
          advance st;
          let idx = parse_expr st in
          expect st Token.RBRACKET "array index";
          expect st Token.ASSIGN "array store";
          let e = parse_expr st in
          expect st Token.SEMI "array store";
          mk (Ast.Store (name, idx, e))
      | Token.LPAREN ->
          let args = parse_args st in
          expect st Token.SEMI "call statement";
          mk (Ast.Expr_stmt (Ast.Call (name, args)))
      | _ -> fail st "expected =, [ or ( after identifier")
  | _ -> fail st "expected statement"

(* --- Top level --------------------------------------------------------- *)

let parse_decl st =
  match current st with
  | Token.KW_VAR ->
      advance st;
      let name = ident st "global var" in
      let init =
        if current st = Token.ASSIGN then begin
          advance st;
          int_lit st "global initializer"
        end
        else 0
      in
      expect st Token.SEMI "global var";
      Some (Ast.Gvar (name, init))
  | Token.KW_ARRAY ->
      advance st;
      let name = ident st "array declaration" in
      expect st Token.LBRACKET "array name";
      let size = int_lit st "array size" in
      expect st Token.RBRACKET "array size";
      expect st Token.SEMI "array declaration";
      Some (Ast.Garray (name, size))
  | Token.KW_LOCK ->
      advance st;
      let name = ident st "lock declaration" in
      let count =
        if current st = Token.LBRACKET then begin
          advance st;
          let c = int_lit st "lock count" in
          expect st Token.RBRACKET "lock count";
          c
        end
        else 1
      in
      expect st Token.SEMI "lock declaration";
      Some (Ast.Glock (name, count))
  | _ -> None

let parse_func st =
  let ln = line st in
  expect st Token.KW_FN "top level";
  let name = ident st "function definition" in
  expect st Token.LPAREN "function name";
  let params =
    if current st = Token.RPAREN then begin
      advance st;
      []
    end
    else begin
      let rec loop acc =
        let p = ident st "parameter list" in
        match current st with
        | Token.COMMA ->
            advance st;
            loop (p :: acc)
        | Token.RPAREN ->
            advance st;
            List.rev (p :: acc)
        | _ -> fail st "expected , or ) in parameter list"
      in
      loop []
    end
  in
  { Ast.fname = name; params; body = parse_block st; fline = ln }

let program src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let decls = ref [] in
  let funcs = ref [] in
  let rec loop () =
    if current st = Token.EOF then ()
    else begin
      (match parse_decl st with
      | Some d -> decls := d :: !decls
      | None ->
          if current st = Token.KW_FN then funcs := parse_func st :: !funcs
          else fail st "expected declaration or function");
      loop ()
    end
  in
  loop ();
  { Ast.decls = List.rev !decls; funcs = List.rev !funcs }

let expr src =
  let st = { toks = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let e = parse_expr st in
  if current st <> Token.EOF then fail st "trailing tokens after expression";
  e
