exception Error of string

type env = {
  n_globals : int;
  global_names : string array;
  global_init : int array;
  array_names : string array;
  array_sizes : int array;
  lock_names : string array;
  lock_bases : int array;
  lock_counts : int array;
  n_locks : int;
  func_names : string array;
  func_arity : int array;
  main : int;
}

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let index_of names name =
  let n = Array.length names in
  let rec go i =
    if i >= n then None
    else if String.equal names.(i) name then Some i
    else go (i + 1)
  in
  go 0

let global_slot env name = index_of env.global_names name

let array_id env name = index_of env.array_names name

let lock_group env name = index_of env.lock_names name

let func_index env name = index_of env.func_names name

(* Check that [return] does not occur under sync/atomic (it would skip the
   release / unbalance the atomic markers), and that locals are defined
   before use with correct shadowing. Expression-level name checking happens
   here too so errors carry source lines. *)
let check_func env (f : Ast.func) =
  let rec check_expr locals line (e : Ast.expr) =
    match e with
    | Ast.Int _ | Ast.Bool _ -> ()
    | Ast.Var x ->
        if not (List.mem x locals) && global_slot env x = None then
          err "line %d: unknown variable %s in %s" line x f.fname
    | Ast.Index (a, i) ->
        if array_id env a = None then
          err "line %d: unknown array %s in %s" line a f.fname;
        check_expr locals line i
    | Ast.Unary (_, e) -> check_expr locals line e
    | Ast.Binary (_, a, b) ->
        check_expr locals line a;
        check_expr locals line b
    | Ast.Call (g, args) | Ast.Spawn (g, args) -> (
        List.iter (check_expr locals line) args;
        match func_index env g with
        | None -> err "line %d: unknown function %s in %s" line g f.fname
        | Some i ->
            if env.func_arity.(i) <> List.length args then
              err "line %d: %s expects %d argument(s), got %d" line g
                env.func_arity.(i) (List.length args))
  in
  let check_lock_ref locals line (l : Ast.lock_ref) =
    (match lock_group env l.lock with
    | None -> err "line %d: unknown lock %s in %s" line l.lock f.fname
    | Some g -> (
        match l.index with
        | None ->
            if env.lock_counts.(g) <> 1 then
              err "line %d: lock array %s needs an index" line l.lock
        | Some i -> check_expr locals line i));
    ()
  in
  let rec check_block locals ~in_sync stmts =
    match stmts with
    | [] -> locals
    | (s : Ast.stmt) :: rest ->
        let locals =
          match s.kind with
          | Ast.Local (x, e) ->
              check_expr locals s.line e;
              x :: locals
          | Ast.Assign (x, e) ->
              if not (List.mem x locals) && global_slot env x = None then
                err "line %d: unknown variable %s in %s" s.line x f.fname;
              check_expr locals s.line e;
              locals
          | Ast.Store (a, i, e) ->
              if array_id env a = None then
                err "line %d: unknown array %s in %s" s.line a f.fname;
              check_expr locals s.line i;
              check_expr locals s.line e;
              locals
          | Ast.If (c, t, e) ->
              check_expr locals s.line c;
              ignore (check_block locals ~in_sync t);
              ignore (check_block locals ~in_sync e);
              locals
          | Ast.While (c, b) ->
              check_expr locals s.line c;
              ignore (check_block locals ~in_sync b);
              locals
          | Ast.Sync (l, b) ->
              check_lock_ref locals s.line l;
              ignore (check_block locals ~in_sync:true b);
              locals
          | Ast.Atomic b ->
              ignore (check_block locals ~in_sync:true b);
              locals
          | Ast.Yield -> locals
          | Ast.Acquire_stmt l | Ast.Release_stmt l | Ast.Wait_stmt l
          | Ast.Notify_stmt (l, _) ->
              check_lock_ref locals s.line l;
              locals
          | Ast.Join_stmt e | Ast.Print e | Ast.Assert e | Ast.Expr_stmt e ->
              check_expr locals s.line e;
              locals
          | Ast.Return eo ->
              if in_sync then
                err "line %d: return inside sync/atomic block in %s" s.line
                  f.fname;
              (match eo with
              | None -> ()
              | Some e -> check_expr locals s.line e);
              locals
          | Ast.Block b ->
              ignore (check_block locals ~in_sync b);
              locals
        in
        check_block locals ~in_sync rest
  in
  ignore (check_block f.params ~in_sync:false f.body)

let program (p : Ast.program) =
  let gvars = ref [] and arrays = ref [] and locks = ref [] in
  List.iter
    (fun d ->
      match d with
      | Ast.Gvar (x, init) -> gvars := (x, init) :: !gvars
      | Ast.Garray (a, size) ->
          if size <= 0 then err "array %s has non-positive size %d" a size;
          arrays := (a, size) :: !arrays
      | Ast.Glock (l, count) ->
          if count <= 0 then err "lock %s has non-positive count %d" l count;
          locks := (l, count) :: !locks)
    p.decls;
  let gvars = List.rev !gvars in
  let arrays = List.rev !arrays in
  let locks = List.rev !locks in
  let check_dups what names =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun n ->
        if Hashtbl.mem seen n then err "duplicate %s declaration: %s" what n;
        Hashtbl.add seen n ())
      names
  in
  check_dups "global" (List.map fst gvars);
  check_dups "array" (List.map fst arrays);
  check_dups "lock" (List.map fst locks);
  check_dups "function" (List.map (fun (f : Ast.func) -> f.fname) p.funcs);
  List.iter
    (fun (f : Ast.func) -> check_dups ("parameter of " ^ f.fname) f.params)
    p.funcs;
  let lock_names = Array.of_list (List.map fst locks) in
  let lock_counts = Array.of_list (List.map snd locks) in
  let lock_bases = Array.make (Array.length lock_counts) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i c ->
      lock_bases.(i) <- !total;
      total := !total + c)
    lock_counts;
  let func_names =
    Array.of_list (List.map (fun (f : Ast.func) -> f.fname) p.funcs)
  in
  let func_arity =
    Array.of_list (List.map (fun (f : Ast.func) -> List.length f.params) p.funcs)
  in
  let main =
    match index_of func_names "main" with
    | Some i ->
        if func_arity.(i) <> 0 then err "main must take no parameters";
        i
    | None -> err "program has no main function"
  in
  let env =
    {
      n_globals = List.length gvars;
      global_names = Array.of_list (List.map fst gvars);
      global_init = Array.of_list (List.map snd gvars);
      array_names = Array.of_list (List.map fst arrays);
      array_sizes = Array.of_list (List.map snd arrays);
      lock_names;
      lock_bases;
      lock_counts;
      n_locks = !total;
      func_names;
      func_arity;
      main;
    }
  in
  List.iter (check_func env) p.funcs;
  env
