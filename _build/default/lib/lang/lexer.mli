(** Hand-written lexer for CoopLang.

    Supports [//] line comments and [/* .. */] block comments (non-nesting),
    decimal integer literals, and the operators listed in {!Token}. *)

exception Error of string * int
(** [(message, line)] — raised on an unrecognized character or an unterminated
    comment. *)

val tokenize : string -> (Token.t * int) list
(** [tokenize src] is the token stream with 1-based line numbers, ending with
    a single [EOF] token. *)
