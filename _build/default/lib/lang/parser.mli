(** Recursive-descent parser for CoopLang.

    See {!Ast} for the language and the grammar summary in the README. *)

exception Error of string * int
(** [(message, line)] — raised on a syntax error. *)

val program : string -> Ast.program
(** [program src] parses a whole compilation unit. *)

val expr : string -> Ast.expr
(** [expr src] parses a single expression (used in tests). *)
