(** The stack bytecode CoopLang compiles to.

    One instruction performs at most one shared-memory or synchronization
    operation, which fixes the interleaving granularity of the VM: this is
    the analogue of the paper's JVM-bytecode-level instrumentation.
    Operands travel on a per-frame operand stack; locals (including
    parameters) live in per-frame slots. *)

(** Instructions. Jump targets are absolute offsets within the enclosing
    function's code array. *)
type instr =
  | Const of int  (** Push a literal. *)
  | Load_global of int  (** Push a global slot (emits a read event). *)
  | Store_global of int  (** Pop into a global slot (emits a write event). *)
  | Load_local of int  (** Push a local slot (thread-private, no event). *)
  | Store_local of int  (** Pop into a local slot. *)
  | Load_elem of int  (** Pop index, push [array.(index)] (read event). *)
  | Store_elem of int  (** Pop value then index, store (write event). *)
  | Array_len of int  (** Push the declared size of an array. *)
  | Binop of Ast.binop  (** Pop two, push result. *)
  | Unop of Ast.unop  (** Pop one, push result. *)
  | Jump of int  (** Unconditional branch. *)
  | Jump_if_zero of int  (** Pop; branch when zero. *)
  | Acquire  (** Pop a lock handle; may block (acquire event). *)
  | Release  (** Pop a lock handle (release event). *)
  | Wait
      (** Pop a held lock handle: release it, park on its condition, emit
          [Release] then [Yield]; the later reacquire emits [Acquire]. *)
  | Notify of bool  (** Pop a held lock handle; wake one ([false]) or all. *)
  | Yield_instr  (** A static yield annotation (yield event). *)
  | Atomic_begin  (** Atomicity-spec marker (event). *)
  | Atomic_end  (** Atomicity-spec marker (event). *)
  | Spawn of int * int  (** [(func, nargs)]: pop args, push child tid. *)
  | Join  (** Pop a tid; blocks until that thread finishes. *)
  | Call of int * int  (** [(func, nargs)]: pop args, push frame. *)
  | Ret  (** Pop return value, pop frame, push value at caller. *)
  | Print  (** Pop and record observable output (out event). *)
  | Assert  (** Pop; zero is a runtime fault. *)
  | Pop  (** Discard the stack top. *)
  | Halt  (** Finish the current thread. *)

type func = {
  name : string;
  arity : int;  (** Parameters occupy local slots [0 .. arity-1]. *)
  n_locals : int;  (** Total local slots, parameters included. *)
  code : instr array;
  lines : int array;  (** Source line of each instruction (same length). *)
}

type program = {
  funcs : func array;
  main : int;  (** Entry function index. *)
  n_globals : int;
  global_init : int array;
  global_names : string array;
  array_sizes : int array;  (** Indexed by array id. *)
  array_names : string array;
  n_locks : int;
  lock_names : string array;  (** Lock handle -> display name. *)
}

val loc : program -> func:int -> pc:int -> Coop_trace.Loc.t
(** The source location of an instruction. *)

val pp_instr : Format.formatter -> instr -> unit
(** Mnemonic rendering of one instruction. *)

val disassemble : program -> string
(** Full program listing, one instruction per line, for debugging. *)

val code_size : program -> int
(** Total instruction count over all functions. *)
