type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type unop =
  | Neg
  | Not

type expr =
  | Int of int
  | Bool of bool
  | Var of string
  | Index of string * expr
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list
  | Spawn of string * expr list

type lock_ref = { lock : string; index : expr option }

type stmt_kind =
  | Local of string * expr
  | Assign of string * expr
  | Store of string * expr * expr
  | If of expr * block * block
  | While of expr * block
  | Sync of lock_ref * block
  | Atomic of block
  | Yield
  | Acquire_stmt of lock_ref
  | Release_stmt of lock_ref
  | Wait_stmt of lock_ref
  | Notify_stmt of lock_ref * bool
  | Join_stmt of expr
  | Print of expr
  | Assert of expr
  | Return of expr option
  | Expr_stmt of expr
  | Block of block

and stmt = { kind : stmt_kind; line : int }

and block = stmt list

type func = { fname : string; params : string list; body : block; fline : int }

type decl =
  | Gvar of string * int
  | Garray of string * int
  | Glock of string * int

type program = { decls : decl list; funcs : func list }

let stmt ?(line = 0) kind = { kind; line }

let rec equal_expr a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Var x, Var y -> String.equal x y
  | Index (x, i), Index (y, j) -> String.equal x y && equal_expr i j
  | Unary (o1, e1), Unary (o2, e2) -> o1 = o2 && equal_expr e1 e2
  | Binary (o1, a1, b1), Binary (o2, a2, b2) ->
      o1 = o2 && equal_expr a1 a2 && equal_expr b1 b2
  | Call (f, xs), Call (g, ys) | Spawn (f, xs), Spawn (g, ys) ->
      String.equal f g
      && List.length xs = List.length ys
      && List.for_all2 equal_expr xs ys
  | _ -> false

let equal_lock_ref a b =
  String.equal a.lock b.lock
  &&
  match (a.index, b.index) with
  | None, None -> true
  | Some i, Some j -> equal_expr i j
  | _ -> false

let rec equal_stmt a b =
  match (a.kind, b.kind) with
  | Local (x, e), Local (y, f) | Assign (x, e), Assign (y, f) ->
      String.equal x y && equal_expr e f
  | Store (x, i, e), Store (y, j, f) ->
      String.equal x y && equal_expr i j && equal_expr e f
  | If (c, t, e), If (d, u, f) ->
      equal_expr c d && equal_block t u && equal_block e f
  | While (c, b1), While (d, b2) -> equal_expr c d && equal_block b1 b2
  | Sync (l, b1), Sync (m, b2) -> equal_lock_ref l m && equal_block b1 b2
  | Atomic b1, Atomic b2 | Block b1, Block b2 -> equal_block b1 b2
  | Yield, Yield -> true
  | Acquire_stmt l, Acquire_stmt m
  | Release_stmt l, Release_stmt m
  | Wait_stmt l, Wait_stmt m ->
      equal_lock_ref l m
  | Notify_stmt (l, a), Notify_stmt (m, b) -> equal_lock_ref l m && a = b
  | Join_stmt e, Join_stmt f
  | Print e, Print f
  | Assert e, Assert f
  | Expr_stmt e, Expr_stmt f ->
      equal_expr e f
  | Return None, Return None -> true
  | Return (Some e), Return (Some f) -> equal_expr e f
  | _ -> false

and equal_block a b =
  List.length a = List.length b && List.for_all2 equal_stmt a b

let equal_func a b =
  String.equal a.fname b.fname
  && List.length a.params = List.length b.params
  && List.for_all2 String.equal a.params b.params
  && equal_block a.body b.body

let equal_decl a b =
  match (a, b) with
  | Gvar (x, i), Gvar (y, j)
  | Garray (x, i), Garray (y, j)
  | Glock (x, i), Glock (y, j) ->
      String.equal x y && i = j
  | _ -> false

let equal_program a b =
  List.length a.decls = List.length b.decls
  && List.for_all2 equal_decl a.decls b.decls
  && List.length a.funcs = List.length b.funcs
  && List.for_all2 equal_func a.funcs b.funcs
