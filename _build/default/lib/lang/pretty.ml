let binop = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.And -> "&&"
  | Ast.Or -> "||"

let unop = function Ast.Neg -> "-" | Ast.Not -> "!"

(* Fully parenthesized output: trivially correct with respect to precedence
   and easy to test by round-trip. *)
let rec expr = function
  | Ast.Int n -> if n < 0 then Printf.sprintf "(%d)" n else string_of_int n
  | Ast.Bool true -> "true"
  | Ast.Bool false -> "false"
  | Ast.Var x -> x
  | Ast.Index (a, i) -> Printf.sprintf "%s[%s]" a (expr i)
  | Ast.Unary (op, e) -> Printf.sprintf "(%s%s)" (unop op) (expr e)
  | Ast.Binary (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr a) (binop op) (expr b)
  | Ast.Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr args))
  | Ast.Spawn (f, args) ->
      Printf.sprintf "spawn %s(%s)" f (String.concat ", " (List.map expr args))

let lock_ref (l : Ast.lock_ref) =
  match l.index with
  | None -> l.lock
  | Some i -> Printf.sprintf "%s[%s]" l.lock (expr i)

let rec stmt ?(indent = 0) (s : Ast.stmt) =
  let pad = String.make (2 * indent) ' ' in
  match s.kind with
  | Ast.Local (x, e) -> Printf.sprintf "%svar %s = %s;" pad x (expr e)
  | Ast.Assign (x, e) -> Printf.sprintf "%s%s = %s;" pad x (expr e)
  | Ast.Store (a, i, e) ->
      Printf.sprintf "%s%s[%s] = %s;" pad a (expr i) (expr e)
  | Ast.If (c, t, []) ->
      Printf.sprintf "%sif (%s) %s" pad (expr c) (block ~indent t)
  | Ast.If (c, t, e) ->
      Printf.sprintf "%sif (%s) %s else %s" pad (expr c) (block ~indent t)
        (block ~indent e)
  | Ast.While (c, b) ->
      Printf.sprintf "%swhile (%s) %s" pad (expr c) (block ~indent b)
  | Ast.Sync (l, b) ->
      Printf.sprintf "%ssync (%s) %s" pad (lock_ref l) (block ~indent b)
  | Ast.Atomic b -> Printf.sprintf "%satomic %s" pad (block ~indent b)
  | Ast.Yield -> pad ^ "yield;"
  | Ast.Acquire_stmt l -> Printf.sprintf "%sacquire(%s);" pad (lock_ref l)
  | Ast.Release_stmt l -> Printf.sprintf "%srelease(%s);" pad (lock_ref l)
  | Ast.Wait_stmt l -> Printf.sprintf "%swait(%s);" pad (lock_ref l)
  | Ast.Notify_stmt (l, all) ->
      Printf.sprintf "%s%s(%s);" pad (if all then "notifyall" else "notify")
        (lock_ref l)
  | Ast.Join_stmt e -> Printf.sprintf "%sjoin %s;" pad (expr e)
  | Ast.Print e -> Printf.sprintf "%sprint(%s);" pad (expr e)
  | Ast.Assert e -> Printf.sprintf "%sassert(%s);" pad (expr e)
  | Ast.Return None -> pad ^ "return;"
  | Ast.Return (Some e) -> Printf.sprintf "%sreturn %s;" pad (expr e)
  | Ast.Expr_stmt e -> Printf.sprintf "%s%s;" pad (expr e)
  | Ast.Block b -> pad ^ block ~indent b

and block ~indent stmts =
  let pad = String.make (2 * indent) ' ' in
  let body =
    List.map (fun s -> stmt ~indent:(indent + 1) s) stmts |> String.concat "\n"
  in
  if stmts = [] then "{ }" else Printf.sprintf "{\n%s\n%s}" body pad

let decl = function
  | Ast.Gvar (x, 0) -> Printf.sprintf "var %s;" x
  | Ast.Gvar (x, n) -> Printf.sprintf "var %s = %d;" x n
  | Ast.Garray (a, n) -> Printf.sprintf "array %s[%d];" a n
  | Ast.Glock (l, 1) -> Printf.sprintf "lock %s;" l
  | Ast.Glock (l, n) -> Printf.sprintf "lock %s[%d];" l n

let func (f : Ast.func) =
  Printf.sprintf "fn %s(%s) %s" f.fname
    (String.concat ", " f.params)
    (block ~indent:0 f.body)

let program (p : Ast.program) =
  let decls = List.map decl p.decls in
  let funcs = List.map func p.funcs in
  String.concat "\n" (decls @ [ "" ] @ funcs) ^ "\n"
