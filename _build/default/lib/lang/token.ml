type t =
  | INT of int
  | IDENT of string
  | KW_VAR
  | KW_ARRAY
  | KW_LOCK
  | KW_FN
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_SYNC
  | KW_ATOMIC
  | KW_YIELD
  | KW_WAIT
  | KW_NOTIFY
  | KW_NOTIFYALL
  | KW_ACQUIRE
  | KW_RELEASE
  | KW_SPAWN
  | KW_JOIN
  | KW_PRINT
  | KW_ASSERT
  | KW_RETURN
  | KW_TRUE
  | KW_FALSE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | ANDAND
  | OROR
  | BANG
  | EOF

let keyword_of_string = function
  | "var" -> Some KW_VAR
  | "array" -> Some KW_ARRAY
  | "lock" -> Some KW_LOCK
  | "fn" -> Some KW_FN
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "sync" -> Some KW_SYNC
  | "atomic" -> Some KW_ATOMIC
  | "yield" -> Some KW_YIELD
  | "wait" -> Some KW_WAIT
  | "notify" -> Some KW_NOTIFY
  | "notifyall" -> Some KW_NOTIFYALL
  | "acquire" -> Some KW_ACQUIRE
  | "release" -> Some KW_RELEASE
  | "spawn" -> Some KW_SPAWN
  | "join" -> Some KW_JOIN
  | "print" -> Some KW_PRINT
  | "assert" -> Some KW_ASSERT
  | "return" -> Some KW_RETURN
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | _ -> None

let to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_VAR -> "var"
  | KW_ARRAY -> "array"
  | KW_LOCK -> "lock"
  | KW_FN -> "fn"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_SYNC -> "sync"
  | KW_ATOMIC -> "atomic"
  | KW_YIELD -> "yield"
  | KW_WAIT -> "wait"
  | KW_NOTIFY -> "notify"
  | KW_NOTIFYALL -> "notifyall"
  | KW_ACQUIRE -> "acquire"
  | KW_RELEASE -> "release"
  | KW_SPAWN -> "spawn"
  | KW_JOIN -> "join"
  | KW_PRINT -> "print"
  | KW_ASSERT -> "assert"
  | KW_RETURN -> "return"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQEQ -> "=="
  | NE -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | EOF -> "<eof>"
