(** Lexical tokens of CoopLang. *)

type t =
  | INT of int
  | IDENT of string
  | KW_VAR
  | KW_ARRAY
  | KW_LOCK
  | KW_FN
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_SYNC
  | KW_ATOMIC
  | KW_YIELD
  | KW_WAIT
  | KW_NOTIFY
  | KW_NOTIFYALL
  | KW_ACQUIRE
  | KW_RELEASE
  | KW_SPAWN
  | KW_JOIN
  | KW_PRINT
  | KW_ASSERT
  | KW_RETURN
  | KW_TRUE
  | KW_FALSE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | ANDAND
  | OROR
  | BANG
  | EOF

val keyword_of_string : string -> t option
(** Recognizes reserved words. *)

val to_string : t -> string
(** Surface rendering of a token, for error messages. *)
