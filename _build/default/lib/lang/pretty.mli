(** Pretty-printer from AST back to concrete CoopLang syntax.

    The printer is exercised by a round-trip property: for arbitrary
    generated programs, [Parser.program (Pretty.program p)] is structurally
    equal to [p]. *)

val binop : Ast.binop -> string
(** Surface spelling of a binary operator. *)

val unop : Ast.unop -> string
(** Surface spelling of a unary operator. *)

val expr : Ast.expr -> string
(** Fully parenthesized rendering of an expression. *)

val stmt : ?indent:int -> Ast.stmt -> string
(** One statement (possibly multi-line), indented by [indent] levels. *)

val program : Ast.program -> string
(** A whole compilation unit, re-parsable by {!Parser.program}. *)
