exception Error of string

type fctx = {
  env : Resolve.env;
  mutable code : Bytecode.instr list;  (* reversed *)
  mutable lines : int list;  (* reversed, parallel to code *)
  mutable next_pc : int;
  mutable next_slot : int;
  mutable max_slot : int;
}

let emit ctx line ins =
  ctx.code <- ins :: ctx.code;
  ctx.lines <- line :: ctx.lines;
  ctx.next_pc <- ctx.next_pc + 1

(* Reserve an instruction slot for a jump to be patched later; returns its
   pc. *)
let emit_patch ctx line =
  let pc = ctx.next_pc in
  emit ctx line (Bytecode.Jump (-1));
  pc

let patch ctx pc target =
  let len = ctx.next_pc in
  let arr = Array.of_list (List.rev ctx.code) in
  (match arr.(pc) with
  | Bytecode.Jump -1 -> arr.(pc) <- Bytecode.Jump target
  | Bytecode.Jump_if_zero -1 -> arr.(pc) <- Bytecode.Jump_if_zero target
  | _ -> raise (Error "patch: slot is not a pending jump"));
  ctx.code <- List.rev (Array.to_list arr);
  ignore len

let fresh_slot ctx =
  let s = ctx.next_slot in
  ctx.next_slot <- s + 1;
  if ctx.next_slot > ctx.max_slot then ctx.max_slot <- ctx.next_slot;
  s

let rec compile_expr ctx scope line (e : Ast.expr) =
  match e with
  | Ast.Int n -> emit ctx line (Bytecode.Const n)
  | Ast.Bool b -> emit ctx line (Bytecode.Const (if b then 1 else 0))
  | Ast.Var x -> (
      match List.assoc_opt x scope with
      | Some slot -> emit ctx line (Bytecode.Load_local slot)
      | None -> (
          match Resolve.global_slot ctx.env x with
          | Some g -> emit ctx line (Bytecode.Load_global g)
          | None -> raise (Error ("compile: unresolved variable " ^ x))))
  | Ast.Index (a, i) -> (
      match Resolve.array_id ctx.env a with
      | Some id ->
          compile_expr ctx scope line i;
          emit ctx line (Bytecode.Load_elem id)
      | None -> raise (Error ("compile: unresolved array " ^ a)))
  | Ast.Unary (op, e) ->
      compile_expr ctx scope line e;
      emit ctx line (Bytecode.Unop op)
  | Ast.Binary (op, a, b) ->
      compile_expr ctx scope line a;
      compile_expr ctx scope line b;
      emit ctx line (Bytecode.Binop op)
  | Ast.Call (f, args) -> (
      match Resolve.func_index ctx.env f with
      | Some fi ->
          List.iter (compile_expr ctx scope line) args;
          emit ctx line (Bytecode.Call (fi, List.length args))
      | None -> raise (Error ("compile: unresolved function " ^ f)))
  | Ast.Spawn (f, args) -> (
      match Resolve.func_index ctx.env f with
      | Some fi ->
          List.iter (compile_expr ctx scope line) args;
          emit ctx line (Bytecode.Spawn (fi, List.length args))
      | None -> raise (Error ("compile: unresolved function " ^ f)))

let compile_lock_handle ctx scope line (l : Ast.lock_ref) =
  match Resolve.lock_group ctx.env l.lock with
  | None -> raise (Error ("compile: unresolved lock " ^ l.lock))
  | Some g -> (
      let base = ctx.env.Resolve.lock_bases.(g) in
      match l.index with
      | None -> emit ctx line (Bytecode.Const base)
      | Some i ->
          emit ctx line (Bytecode.Const base);
          compile_expr ctx scope line i;
          emit ctx line (Bytecode.Binop Ast.Add))

let rec compile_block ctx scope stmts =
  match stmts with
  | [] -> ()
  | s :: rest ->
      let scope = compile_stmt ctx scope s in
      compile_block ctx scope rest

and compile_stmt ctx scope (s : Ast.stmt) =
  let line = s.line in
  match s.kind with
  | Ast.Local (x, e) ->
      compile_expr ctx scope line e;
      let slot = fresh_slot ctx in
      emit ctx line (Bytecode.Store_local slot);
      (x, slot) :: scope
  | Ast.Assign (x, e) ->
      compile_expr ctx scope line e;
      (match List.assoc_opt x scope with
      | Some slot -> emit ctx line (Bytecode.Store_local slot)
      | None -> (
          match Resolve.global_slot ctx.env x with
          | Some g -> emit ctx line (Bytecode.Store_global g)
          | None -> raise (Error ("compile: unresolved variable " ^ x))));
      scope
  | Ast.Store (a, i, e) ->
      (match Resolve.array_id ctx.env a with
      | Some id ->
          compile_expr ctx scope line i;
          compile_expr ctx scope line e;
          emit ctx line (Bytecode.Store_elem id)
      | None -> raise (Error ("compile: unresolved array " ^ a)));
      scope
  | Ast.If (c, t, []) ->
      compile_expr ctx scope line c;
      let jz = ctx.next_pc in
      emit ctx line (Bytecode.Jump_if_zero (-1));
      compile_block ctx scope t;
      patch ctx jz ctx.next_pc;
      scope
  | Ast.If (c, t, e) ->
      compile_expr ctx scope line c;
      let jz = ctx.next_pc in
      emit ctx line (Bytecode.Jump_if_zero (-1));
      compile_block ctx scope t;
      let jend = emit_patch ctx line in
      patch ctx jz ctx.next_pc;
      compile_block ctx scope e;
      patch ctx jend ctx.next_pc;
      scope
  | Ast.While (c, b) ->
      let top = ctx.next_pc in
      compile_expr ctx scope line c;
      let jz = ctx.next_pc in
      emit ctx line (Bytecode.Jump_if_zero (-1));
      compile_block ctx scope b;
      emit ctx line (Bytecode.Jump top);
      patch ctx jz ctx.next_pc;
      scope
  | Ast.Sync (l, b) ->
      (* The handle is computed once and stashed in a temp so the release
         always unlocks the lock that was acquired, even if the index
         expression would evaluate differently afterwards. *)
      compile_lock_handle ctx scope line l;
      let tmp = fresh_slot ctx in
      emit ctx line (Bytecode.Store_local tmp);
      emit ctx line (Bytecode.Load_local tmp);
      emit ctx line Bytecode.Acquire;
      compile_block ctx scope b;
      emit ctx line (Bytecode.Load_local tmp);
      emit ctx line Bytecode.Release;
      scope
  | Ast.Atomic b ->
      emit ctx line Bytecode.Atomic_begin;
      compile_block ctx scope b;
      emit ctx line Bytecode.Atomic_end;
      scope
  | Ast.Yield ->
      emit ctx line Bytecode.Yield_instr;
      scope
  | Ast.Acquire_stmt l ->
      compile_lock_handle ctx scope line l;
      emit ctx line Bytecode.Acquire;
      scope
  | Ast.Release_stmt l ->
      compile_lock_handle ctx scope line l;
      emit ctx line Bytecode.Release;
      scope
  | Ast.Wait_stmt l ->
      compile_lock_handle ctx scope line l;
      emit ctx line Bytecode.Wait;
      scope
  | Ast.Notify_stmt (l, all) ->
      compile_lock_handle ctx scope line l;
      emit ctx line (Bytecode.Notify all);
      scope
  | Ast.Join_stmt e ->
      compile_expr ctx scope line e;
      emit ctx line Bytecode.Join;
      scope
  | Ast.Print e ->
      compile_expr ctx scope line e;
      emit ctx line Bytecode.Print;
      scope
  | Ast.Assert e ->
      compile_expr ctx scope line e;
      emit ctx line Bytecode.Assert;
      scope
  | Ast.Return eo ->
      (match eo with
      | Some e -> compile_expr ctx scope line e
      | None -> emit ctx line (Bytecode.Const 0));
      emit ctx line Bytecode.Ret;
      scope
  | Ast.Expr_stmt e ->
      compile_expr ctx scope line e;
      emit ctx line Bytecode.Pop;
      scope
  | Ast.Block b ->
      compile_block ctx scope b;
      scope

let compile_func env (f : Ast.func) =
  let ctx =
    {
      env;
      code = [];
      lines = [];
      next_pc = 0;
      next_slot = List.length f.params;
      max_slot = List.length f.params;
    }
  in
  let scope = List.mapi (fun i p -> (p, i)) f.params in
  compile_block ctx scope f.body;
  (* Implicit return 0 falls out at the end of every function body. *)
  emit ctx f.fline (Bytecode.Const 0);
  emit ctx f.fline Bytecode.Ret;
  {
    Bytecode.name = f.fname;
    arity = List.length f.params;
    n_locals = ctx.max_slot;
    code = Array.of_list (List.rev ctx.code);
    lines = Array.of_list (List.rev ctx.lines);
  }

let program (p : Ast.program) =
  let env = Resolve.program p in
  let funcs = Array.of_list (List.map (compile_func env) p.funcs) in
  let lock_names =
    Array.make env.Resolve.n_locks ""
  in
  Array.iteri
    (fun g name ->
      let base = env.Resolve.lock_bases.(g) in
      let count = env.Resolve.lock_counts.(g) in
      for k = 0 to count - 1 do
        lock_names.(base + k) <-
          (if count = 1 then name else Printf.sprintf "%s[%d]" name k)
      done)
    env.Resolve.lock_names;
  {
    Bytecode.funcs;
    main = env.Resolve.main;
    n_globals = env.Resolve.n_globals;
    global_init = env.Resolve.global_init;
    global_names = env.Resolve.global_names;
    array_sizes = env.Resolve.array_sizes;
    array_names = env.Resolve.array_names;
    n_locks = env.Resolve.n_locks;
    lock_names;
  }

let source src = program (Parser.program src)
