(** Static race approximation.

    A sound over-approximation of the dynamic racy set, at region
    granularity (a scalar global, or a whole array). Two accesses may race
    when:

    - they touch the same region and at least one writes;
    - they belong to {e concurrent contexts}: different thread roots, or
      the same spawned root (several instances may run), excluding code in
      [main] that no path reaches after a [Spawn];
    - their must-held lock-group sets are disjoint.

    Similarly, a lock group is {e shared} when two concurrent contexts may
    acquire it; non-shared groups are the static analogue of the dynamic
    thread-local-lock refinement. *)

(** A memory region. *)
type region =
  | Rglobal of int
  | Rarray of int

val region_compare : region -> region -> int
(** Total order. *)

val pp_region :
  Coop_lang.Bytecode.program -> Format.formatter -> region -> unit
(** Named rendering, e.g. ["counter"] or ["grid[]"]. *)

type result = {
  racy : region list;  (** May-racy regions, sorted. *)
  shared_groups : int list;  (** Lock groups acquirable by >= 2 contexts. *)
  roots : int list;  (** Thread-root functions ([main] + spawn targets). *)
}

val analyze :
  Coop_lang.Bytecode.program -> (int -> Flow.info array) -> result
(** [analyze prog flow_of] computes the approximation; [flow_of f] supplies
    the per-function dataflow facts (memoized by the caller). *)

val is_racy_region : result -> Coop_trace.Event.var -> bool
(** Whether a dynamic variable falls in a may-racy region. *)
