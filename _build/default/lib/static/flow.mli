(** Intra-procedural abstract interpretation over the bytecode.

    For every reachable instruction of a function this computes the abstract
    operand stack (to resolve lock handles) and the set of lock groups
    {e must}-held — the ingredients of the static race approximation and
    the static transaction-automaton pass.

    Assumption (documented, checked against the compiler): functions are
    entered with an empty operand stack, and callees do not change the
    caller's held-lock set (CoopLang's [sync] is block-structured within a
    function; unstructured [acquire]/[release] pairs that cross function
    boundaries would be approximated). *)

module Iset : Set.S with type elt = int

type info = {
  reachable : bool;  (** Whether any path reaches this pc. *)
  stack : Absval.t list;  (** Abstract operand stack before the instruction. *)
  locals : Absval.t Map.Make(Int).t;  (** Abstract local-slot values. *)
  held : Iset.t;  (** Lock groups must-held before the instruction. *)
  spawned_before : bool;
      (** Whether a [Spawn] may have executed on some path to this pc
          (used to recognize pre-fork initialization code in [main]). *)
  spawns_may : int;
      (** Maximum number of [Spawn]s over paths reaching this pc (saturating). *)
  joins_must : int;
      (** Minimum number of [Join]s over paths reaching this pc (saturating).
          [joins_must >= spawns_may] at a pc of [main] means every spawned
          thread has been joined on every path — the structured fork/join
          quiescence idiom. The inference assumes each thread id is joined at
          most once, which that idiom guarantees. *)
}

val analyze : Coop_lang.Bytecode.program -> int -> info array
(** [analyze prog f] runs the dataflow to fixpoint over function [f] and
    returns per-pc facts (indexed like the code array). *)

val lock_at :
  Coop_lang.Bytecode.program -> info array -> int -> Absval.lock option
(** [lock_at prog infos pc] resolves the lock manipulated by an
    [Acquire]/[Release] at [pc], reading the handle off the abstract stack;
    [None] when [pc] is unreachable or not a lock operation. *)
