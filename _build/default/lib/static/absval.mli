(** Abstract values for the static analyses.

    The static checker runs an abstract interpretation over the bytecode.
    Operand-stack values are tracked just precisely enough to recover which
    lock a dynamic [Acquire]/[Release] manipulates (lock handles are
    computed as [base + index]) and which array cell region an access
    touches. *)

(** An abstract operand-stack value. *)
type t =
  | Const of int  (** Exactly this integer (covers scalar lock handles). *)
  | Base_plus of int  (** [base + unknown] — a lock-array element. *)
  | Top  (** Anything. *)

val join : t -> t -> t
(** Least upper bound. *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** ["42"], ["3+?"] or ["T"]. *)

(** An abstract lock: either a specific declaration group (scalar locks and
    lock arrays collapse to their group) or unknown. *)
type lock =
  | Group of int
  | Any_lock

val lock_of_handle : Coop_lang.Bytecode.program -> t -> lock
(** Resolve an abstract handle value against the program's lock-group
    layout: a [Const h] maps to the group containing handle [h],
    [Base_plus b] to the group whose range starts at or covers [b], and
    [Top] to [Any_lock]. *)

val binop : Coop_lang.Ast.binop -> t -> t -> t
(** Abstract transfer of a binary operation (constant folding for [Const]s,
    [Base_plus] propagation for [Add]). *)

val unop : Coop_lang.Ast.unop -> t -> t
(** Abstract transfer of a unary operation. *)
