open Coop_lang
open Coop_trace
module Mover = Coop_core.Mover
module Iset = Set.Make (Int)

type phase =
  | Pre
  | Post

type violation = {
  loc : Loc.t;
  mover : Mover.t;
}

type result = {
  races : Races.result;
  violations : violation list;
  yields : Loc.Set.t;
  rounds : int;
}

(* Phase sets: a two-bit lattice. *)
module Pset = struct
  (* bit 0 = Pre, bit 1 = Post *)
  type t = int

  let _ = (0 : t)

  let empty = 0

  let pre = 1

  let post = 2

  let union = ( lor )

  let mem_pre p = p land 1 <> 0

  let mem_post p = p land 2 <> 0

  let is_empty p = p = 0
end

(* The mover class of one instruction under the static approximations, or
   None for phase-neutral instructions. *)
let static_mover prog races infos pc instr =
  let shared g = List.mem g races.Races.shared_groups in
  match instr with
  | Bytecode.Load_global g | Bytecode.Store_global g ->
      if Races.is_racy_region races (Event.Global g) then Some Mover.Non
      else Some Mover.Both
  | Bytecode.Load_elem a | Bytecode.Store_elem a ->
      if Races.is_racy_region races (Event.Cell (a, 0)) then Some Mover.Non
      else Some Mover.Both
  | Bytecode.Acquire -> (
      match Flow.lock_at prog infos pc with
      | Some (Absval.Group g) when not (shared g) -> Some Mover.Both
      | Some _ -> Some Mover.Right
      | None -> Some Mover.Right)
  | Bytecode.Release -> (
      match Flow.lock_at prog infos pc with
      | Some (Absval.Group g) when not (shared g) -> Some Mover.Both
      | Some _ -> Some Mover.Left
      | None -> Some Mover.Left)
  | Bytecode.Spawn _ -> Some Mover.Right
  | Bytecode.Join -> Some Mover.Left
  | Bytecode.Print -> Some Mover.Both
  | Bytecode.Notify _ ->
      (* Emits no events; the HB edges it induces flow through the monitor
         lock. *)
      None
  | Bytecode.Const _ | Bytecode.Load_local _ | Bytecode.Store_local _
  | Bytecode.Array_len _ | Bytecode.Binop _ | Bytecode.Unop _
  | Bytecode.Jump _ | Bytecode.Jump_if_zero _ | Bytecode.Yield_instr
  | Bytecode.Wait | Bytecode.Atomic_begin | Bytecode.Atomic_end
  | Bytecode.Call _ | Bytecode.Ret | Bytecode.Assert | Bytecode.Pop
  | Bytecode.Halt ->
      None

(* Transition of one phase under a mover, recording violations through
   [violate]. Mirrors the dynamic automaton, including its recovery. *)
let step_phase ~violate phase (m : Mover.t) =
  match (phase, m) with
  | Pre, (Mover.Right | Mover.Both) -> Pset.pre
  | Pre, (Mover.Non | Mover.Left) -> Pset.post
  | Post, (Mover.Left | Mover.Both) -> Pset.post
  | Post, Mover.Right ->
      violate Mover.Right;
      Pset.pre
  | Post, Mover.Non ->
      violate Mover.Non;
      Pset.post

let step_pset ~violate pset m =
  let out = ref Pset.empty in
  if Pset.mem_pre pset then out := Pset.union !out (step_phase ~violate Pre m);
  if Pset.mem_post pset then out := Pset.union !out (step_phase ~violate Post m);
  !out

(* Instruction successors, mirroring Flow.transfer. *)
let succs code pc =
  match code.(pc) with
  | Bytecode.Jump t -> [ t ]
  | Bytecode.Jump_if_zero t -> [ t; pc + 1 ]
  | Bytecode.Ret | Bytecode.Halt -> []
  | _ -> [ pc + 1 ]

(* Analyze one function for a given entry phase-set using current callee
   summaries. Returns the exit phase-set, the violations found, and the
   phase-sets flowing into each call site — the last drives the
   entry-reachability fixpoint. The computation is a join-over-paths
   fixpoint on per-pc phase-sets; the transfer is linear in the phase-set,
   so analyzing with a set equals the union of per-phase analyses. *)
let analyze_function prog races flow_of yields summaries f entry =
  let fn = prog.Bytecode.funcs.(f) in
  let code = fn.Bytecode.code in
  let n = Array.length code in
  if n = 0 || Pset.is_empty entry then (entry, [], [])
  else begin
    let infos = flow_of f in
    let facts = Array.make n Pset.empty in
    let exits = ref Pset.empty in
    let violations = ref [] in
    let calls = ref [] in
    facts.(0) <- entry;
    let worklist = Queue.create () in
    Queue.add 0 worklist;
    while not (Queue.is_empty worklist) do
      let pc = Queue.pop worklist in
      let pset = facts.(pc) in
      if not (Pset.is_empty pset) then begin
        let loc = Bytecode.loc prog ~func:f ~pc in
        (* An injected yield resets before the instruction executes. *)
        let pset = if Loc.Set.mem loc yields then Pset.pre else pset in
        let violate m =
          if
            not
              (List.exists
                 (fun v -> Loc.equal v.loc loc && v.mover = m)
                 !violations)
          then violations := { loc; mover = m } :: !violations
        in
        let out =
          match code.(pc) with
          | Bytecode.Yield_instr -> Pset.pre
          | Bytecode.Wait ->
              (* Dynamically wait emits Release;Yield and Acquire on resume:
                 a left mover in any phase, then a reset. Net: Pre. *)
              Pset.pre
          | Bytecode.Call (g, _) ->
              calls := (g, pset) :: !calls;
              let out = ref Pset.empty in
              if Pset.mem_pre pset then out := Pset.union !out (summaries g Pre);
              if Pset.mem_post pset then
                out := Pset.union !out (summaries g Post);
              (* Before the callee's first summary stabilizes its exit set
                 may be empty; keep the caller's phases flowing so the
                 fixpoint can grow. *)
              if Pset.is_empty !out then pset else !out
          | instr -> (
              match static_mover prog races infos pc instr with
              | None -> pset
              | Some m -> step_pset ~violate pset m)
        in
        (match code.(pc) with
        | Bytecode.Ret | Bytecode.Halt -> exits := Pset.union !exits pset
        | _ -> ());
        List.iter
          (fun s ->
            if s >= 0 && s < n then begin
              let merged = Pset.union facts.(s) out in
              if merged <> facts.(s) then begin
                facts.(s) <- merged;
                Queue.add s worklist
              end
            end)
          (succs code pc)
      end
    done;
    (!exits, List.rev !violations, !calls)
  end

(* Whole-program pass. Phase A: function summaries (exit phases from each
   entry phase) to fixpoint. Phase B: entry-reachability — thread roots
   start in Pre, call sites propagate their phase-sets into callees — so a
   function is only ever analyzed under entries that can actually reach it.
   Phase C: collect violations of each function under its reachable
   entries. *)
let check_internal prog races flow_of yields =
  let nf = Array.length prog.Bytecode.funcs in
  let store = Array.make nf (Pset.empty, Pset.empty) in
  let summaries g phase =
    let pre, post = store.(g) in
    match phase with Pre -> pre | Post -> post
  in
  (* Phase A. *)
  let changed = ref true in
  let iterations = ref 0 in
  while !changed && !iterations < 64 do
    changed := false;
    incr iterations;
    for f = 0 to nf - 1 do
      let from_pre, _, _ =
        analyze_function prog races flow_of yields summaries f Pset.pre
      in
      let from_post, _, _ =
        analyze_function prog races flow_of yields summaries f Pset.post
      in
      let old_pre, old_post = store.(f) in
      let new_pre = Pset.union old_pre from_pre in
      let new_post = Pset.union old_post from_post in
      if new_pre <> old_pre || new_post <> old_post then begin
        store.(f) <- (new_pre, new_post);
        changed := true
      end
    done
  done;
  (* Phase B. *)
  let entries = Array.make nf Pset.empty in
  entries.(prog.Bytecode.main) <- Pset.pre;
  Array.iter
    (fun (fn : Bytecode.func) ->
      Array.iter
        (fun instr ->
          match instr with
          | Bytecode.Spawn (g, _) -> entries.(g) <- Pset.union entries.(g) Pset.pre
          | _ -> ())
        fn.Bytecode.code)
    prog.Bytecode.funcs;
  let changed = ref true in
  let iterations = ref 0 in
  while !changed && !iterations < 64 do
    changed := false;
    incr iterations;
    for f = 0 to nf - 1 do
      if not (Pset.is_empty entries.(f)) then begin
        let _, _, calls =
          analyze_function prog races flow_of yields summaries f entries.(f)
        in
        List.iter
          (fun (g, pset) ->
            let merged = Pset.union entries.(g) pset in
            if merged <> entries.(g) then begin
              entries.(g) <- merged;
              changed := true
            end)
          calls
      end
    done
  done;
  (* Phase C. *)
  let all = ref [] in
  for f = 0 to nf - 1 do
    let _, vs, _ =
      analyze_function prog races flow_of yields summaries f entries.(f)
    in
    all := vs @ !all
  done;
  List.sort_uniq
    (fun a b ->
      let c = Loc.compare a.loc b.loc in
      if c <> 0 then c else compare a.mover b.mover)
    !all

let with_flow prog k =
  let cache = Hashtbl.create 8 in
  let flow_of f =
    match Hashtbl.find_opt cache f with
    | Some i -> i
    | None ->
        let i = Flow.analyze prog f in
        Hashtbl.add cache f i;
        i
  in
  k flow_of

let check ?(yields = Loc.Set.empty) prog =
  with_flow prog (fun flow_of ->
      let races = Races.analyze prog flow_of in
      check_internal prog races flow_of yields)

let infer prog =
  with_flow prog (fun flow_of ->
      let races = Races.analyze prog flow_of in
      let first = check_internal prog races flow_of Loc.Set.empty in
      let rec loop yields rounds =
        let vs = check_internal prog races flow_of yields in
        let locs =
          List.fold_left (fun s v -> Loc.Set.add v.loc s) Loc.Set.empty vs
        in
        let fresh = Loc.Set.diff locs yields in
        if Loc.Set.is_empty fresh || rounds >= 32 then (yields, rounds)
        else loop (Loc.Set.union yields fresh) (rounds + 1)
      in
      let yields, rounds = loop Loc.Set.empty 1 in
      { races; violations = first; yields; rounds })
