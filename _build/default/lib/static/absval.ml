open Coop_lang

type t =
  | Const of int
  | Base_plus of int
  | Top

let join a b =
  match (a, b) with
  | Const x, Const y when x = y -> Const x
  | Base_plus x, Base_plus y when x = y -> Base_plus x
  | Const x, Base_plus y | Base_plus y, Const x when x >= y -> Base_plus y
  | _ -> Top

let equal a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Base_plus x, Base_plus y -> x = y
  | Top, Top -> true
  | _ -> false

let pp ppf = function
  | Const n -> Format.fprintf ppf "%d" n
  | Base_plus b -> Format.fprintf ppf "%d+?" b
  | Top -> Format.pp_print_string ppf "T"

type lock =
  | Group of int
  | Any_lock

(* Lock groups occupy contiguous handle ranges; recover the group from a
   known handle or a known base. *)
let group_of_handle (prog : Bytecode.program) h =
  (* The program exposes only flat names; recompute group ranges from the
     name table: entries of one group share the prefix before '['. Scalar
     locks are their own group. We treat each maximal run of equal prefixes
     as a group. *)
  let n = prog.Bytecode.n_locks in
  if h < 0 || h >= n then None
  else begin
    let prefix handle =
      let name = prog.Bytecode.lock_names.(handle) in
      match String.index_opt name '[' with
      | Some i -> String.sub name 0 i
      | None -> name
    in
    (* The group id of a handle is the first handle with the same prefix. *)
    let p = prefix h in
    let rec first i = if i > 0 && prefix (i - 1) = p then first (i - 1) else i in
    Some (first h)
  end

let lock_of_handle prog v =
  match v with
  | Const h -> (
      match group_of_handle prog h with Some g -> Group g | None -> Any_lock)
  | Base_plus b -> (
      match group_of_handle prog b with Some g -> Group g | None -> Any_lock)
  | Top -> Any_lock

let binop op a b =
  match (op, a, b) with
  | _, Const x, Const y -> (
      match op with
      | Ast.Add -> Const (x + y)
      | Ast.Sub -> Const (x - y)
      | Ast.Mul -> Const (x * y)
      | Ast.Div -> if y = 0 then Top else Const (x / y)
      | Ast.Mod -> if y = 0 then Top else Const (x mod y)
      | Ast.Lt -> Const (if x < y then 1 else 0)
      | Ast.Le -> Const (if x <= y then 1 else 0)
      | Ast.Gt -> Const (if x > y then 1 else 0)
      | Ast.Ge -> Const (if x >= y then 1 else 0)
      | Ast.Eq -> Const (if x = y then 1 else 0)
      | Ast.Ne -> Const (if x <> y then 1 else 0)
      | Ast.And -> Const (if x <> 0 && y <> 0 then 1 else 0)
      | Ast.Or -> Const (if x <> 0 || y <> 0 then 1 else 0))
  | Ast.Add, Const base, (Top | Base_plus _) -> Base_plus base
  | Ast.Add, (Top | Base_plus _), Const base -> Base_plus base
  | _ -> Top

let unop op a =
  match (op, a) with
  | Ast.Neg, Const x -> Const (-x)
  | Ast.Not, Const x -> Const (if x = 0 then 1 else 0)
  | _ -> Top
