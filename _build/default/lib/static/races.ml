open Coop_lang
module Iset = Flow.Iset

type region =
  | Rglobal of int
  | Rarray of int

let region_compare a b =
  match (a, b) with
  | Rglobal x, Rglobal y -> Int.compare x y
  | Rglobal _, Rarray _ -> -1
  | Rarray _, Rglobal _ -> 1
  | Rarray x, Rarray y -> Int.compare x y

let pp_region (prog : Bytecode.program) ppf = function
  | Rglobal g -> Format.pp_print_string ppf prog.Bytecode.global_names.(g)
  | Rarray a -> Format.fprintf ppf "%s[]" prog.Bytecode.array_names.(a)

type result = {
  racy : region list;
  shared_groups : int list;
  roots : int list;
}

(* One static access site. *)
type site = {
  root : int;  (** The thread-root context this site runs under. *)
  region : region;
  is_write : bool;
  held : Iset.t;  (** Lock groups must-held. *)
  pre_fork : bool;  (** In [main], before any possible spawn. *)
}

(* Call-graph edges via Call instructions (Spawn targets start new
   contexts, not calls). *)
let callees (prog : Bytecode.program) f =
  Array.fold_left
    (fun acc instr ->
      match instr with Bytecode.Call (g, _) -> Iset.add g acc | _ -> acc)
    Iset.empty prog.Bytecode.funcs.(f).Bytecode.code

let spawn_targets (prog : Bytecode.program) =
  Array.fold_left
    (fun acc (f : Bytecode.func) ->
      Array.fold_left
        (fun acc instr ->
          match instr with Bytecode.Spawn (g, _) -> Iset.add g acc | _ -> acc)
        acc f.Bytecode.code)
    Iset.empty prog.Bytecode.funcs

(* Functions call-reachable from [root], including itself. *)
let reach prog root =
  let rec go seen frontier =
    match frontier with
    | [] -> seen
    | f :: rest ->
        if Iset.mem f seen then go seen rest
        else begin
          let seen = Iset.add f seen in
          go seen (Iset.elements (callees prog f) @ rest)
        end
  in
  go Iset.empty [ root ]

let analyze (prog : Bytecode.program) flow_of =
  let main = prog.Bytecode.main in
  let spawned = spawn_targets prog in
  let roots = Iset.add main spawned in
  (* Map function -> the roots it can run under. *)
  let contexts : (int, Iset.t) Hashtbl.t = Hashtbl.create 8 in
  Iset.iter
    (fun root ->
      Iset.iter
        (fun f ->
          let cur =
            match Hashtbl.find_opt contexts f with
            | Some s -> s
            | None -> Iset.empty
          in
          Hashtbl.replace contexts f (Iset.add root cur))
        (reach prog root))
    roots;
  (* Quiescence in main is only meaningful when main is the only spawner
     (otherwise grandchildren escape its join counting). *)
  let only_main_spawns =
    let spawns_elsewhere = ref false in
    Array.iteri
      (fun f (fn : Bytecode.func) ->
        if f <> main then
          Array.iter
            (fun i ->
              match i with Bytecode.Spawn _ -> spawns_elsewhere := true | _ -> ())
            fn.Bytecode.code)
      prog.Bytecode.funcs;
    not !spawns_elsewhere
  in
  (* Collect access sites and lock-acquire sites. *)
  let sites = ref [] in
  let acquires = ref [] in
  Array.iteri
    (fun f (fn : Bytecode.func) ->
      match Hashtbl.find_opt contexts f with
      | None -> ()  (* dead code *)
      | Some roots_of_f ->
          let infos = flow_of f in
          Array.iteri
            (fun pc instr ->
              let info = infos.(pc) in
              if info.Flow.reachable then begin
                let add_site region is_write =
                  Iset.iter
                    (fun root ->
                      let pre_fork =
                        root = main && f = main
                        && (not info.Flow.spawned_before
                           || (only_main_spawns
                              && info.Flow.joins_must >= info.Flow.spawns_may))
                      in
                      sites :=
                        { root; region; is_write; held = info.Flow.held;
                          pre_fork }
                        :: !sites)
                    roots_of_f
                in
                match instr with
                | Bytecode.Load_global g -> add_site (Rglobal g) false
                | Bytecode.Store_global g -> add_site (Rglobal g) true
                | Bytecode.Load_elem a -> add_site (Rarray a) false
                | Bytecode.Store_elem a -> add_site (Rarray a) true
                | Bytecode.Acquire -> (
                    match Flow.lock_at prog infos pc with
                    | Some (Absval.Group g) ->
                        Iset.iter
                          (fun root -> acquires := (root, Absval.Group g) :: !acquires)
                          roots_of_f
                    | Some Absval.Any_lock ->
                        Iset.iter
                          (fun root -> acquires := (root, Absval.Any_lock) :: !acquires)
                          roots_of_f
                    | None -> ())
                | _ -> ()
              end)
            fn.Bytecode.code)
    prog.Bytecode.funcs;
  let sites = !sites in
  (* Two contexts are concurrent unless both are the (single-instance)
     main, and pre-fork main code is concurrent with nothing. *)
  let concurrent a b =
    (not (a.pre_fork || b.pre_fork))
    && not (a.root = prog.Bytecode.main && b.root = prog.Bytecode.main)
  in
  let conflicting a b =
    region_compare a.region b.region = 0 && (a.is_write || b.is_write)
  in
  let protected_ a b = not (Iset.is_empty (Iset.inter a.held b.held)) in
  let racy = ref [] in
  let add_racy r = if not (List.exists (fun x -> region_compare x r = 0) !racy) then racy := r :: !racy in
  let arr = Array.of_list sites in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if conflicting a b && concurrent a b && not (protected_ a b) then
        add_racy a.region
    done
  done;
  (* Shared lock groups: acquired under two concurrent contexts. An
     Any_lock acquire conservatively shares every group. *)
  let acqs = !acquires in
  let any_pair p =
    List.exists
      (fun (r1, l1) ->
        List.exists
          (fun (r2, l2) ->
            (not (r1 = prog.Bytecode.main && r2 = prog.Bytecode.main))
            && p l1 l2)
          acqs)
      acqs
  in
  let shared_groups = ref Iset.empty in
  (* Enumerate the distinct groups seen. *)
  let groups =
    List.fold_left
      (fun s (_, l) -> match l with Absval.Group g -> Iset.add g s | _ -> s)
      Iset.empty acqs
  in
  Iset.iter
    (fun g ->
      let matches l = match l with Absval.Group h -> h = g | Absval.Any_lock -> true in
      if any_pair (fun l1 l2 -> matches l1 && matches l2) then
        shared_groups := Iset.add g !shared_groups)
    groups;
  {
    racy = List.sort region_compare !racy;
    shared_groups = Iset.elements !shared_groups;
    roots = Iset.elements roots;
  }

let is_racy_region result (v : Coop_trace.Event.var) =
  let region =
    match v with
    | Coop_trace.Event.Global g -> Rglobal g
    | Coop_trace.Event.Cell (a, _) -> Rarray a
  in
  List.exists (fun r -> region_compare r region = 0) result.racy
