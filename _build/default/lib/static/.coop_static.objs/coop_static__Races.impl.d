lib/static/races.ml: Absval Array Bytecode Coop_lang Coop_trace Flow Format Hashtbl Int List
