lib/static/absval.ml: Array Ast Bytecode Coop_lang Format String
