lib/static/check.mli: Coop_core Coop_lang Coop_trace Loc Races
