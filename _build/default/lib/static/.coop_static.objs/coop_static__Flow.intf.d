lib/static/flow.mli: Absval Coop_lang Int Map Set
