lib/static/absval.mli: Coop_lang Format
