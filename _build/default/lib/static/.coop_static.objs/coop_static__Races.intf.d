lib/static/races.mli: Coop_lang Coop_trace Flow Format
