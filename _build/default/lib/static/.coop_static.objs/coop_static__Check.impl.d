lib/static/check.ml: Absval Array Bytecode Coop_core Coop_lang Coop_trace Event Flow Hashtbl Int List Loc Queue Races Set
