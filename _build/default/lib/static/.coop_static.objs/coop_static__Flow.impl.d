lib/static/flow.ml: Absval Array Bytecode Coop_lang Int List Map Queue Set
