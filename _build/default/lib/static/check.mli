(** The static cooperability checker.

    A whole-program abstract interpretation that runs the transaction
    automaton over every path of the control-flow graph instead of over one
    dynamic trace. Mover classes come from the static approximations:
    accesses to may-racy regions are non movers, acquires/releases of
    shared lock groups are right/left movers (non-shared groups are both
    movers), [Spawn] is a right mover and [Join] a left mover.

    Functions are summarized as phase transformers (which exit phases are
    possible from each entry phase), computed to fixpoint over the call
    graph, so recursion and nested calls are handled context-insensitively.

    Like the dynamic checker, a violation is a right or non mover reachable
    in the Post phase; [infer] iterates violation -> yield insertion to a
    fixpoint, giving a purely static yield set. The static set
    over-approximates the dynamic one (whole-array regions, path
    insensitivity), which the ablation experiment quantifies. *)

open Coop_trace

type phase =
  | Pre
  | Post

type violation = {
  loc : Loc.t;  (** Instruction needing a yield before it. *)
  mover : Coop_core.Mover.t;  (** [Right] or [Non]. *)
}

type result = {
  races : Races.result;  (** The underlying static approximations. *)
  violations : violation list;  (** First-round violations, deduplicated. *)
  yields : Loc.Set.t;  (** Statically inferred yields (fixpoint). *)
  rounds : int;  (** Iterations to reach the fixpoint. *)
}

val check :
  ?yields:Loc.Set.t -> Coop_lang.Bytecode.program -> violation list
(** One static automaton pass with the given yield set injected. *)

val infer : Coop_lang.Bytecode.program -> result
(** Full static analysis: approximations, then yield inference to
    fixpoint. *)
