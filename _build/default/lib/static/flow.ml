open Coop_lang
module Iset = Set.Make (Int)
module Imap = Map.Make (Int)

type info = {
  reachable : bool;
  stack : Absval.t list;
  locals : Absval.t Imap.t;
  held : Iset.t;
  spawned_before : bool;
  spawns_may : int;
  joins_must : int;
}

(* Saturation point for the spawn/join counters. *)
let count_cap = 1024

let bottom =
  { reachable = false; stack = []; locals = Imap.empty; held = Iset.empty;
    spawned_before = false; spawns_may = 0; joins_must = 0 }

let join_state a b =
  if not a.reachable then b
  else if not b.reachable then a
  else begin
    let stack =
      if List.length a.stack = List.length b.stack then
        List.map2 Absval.join a.stack b.stack
      else
        (* Stack depths should agree for structured code; degrade
           gracefully by collapsing to all-Top of the shorter depth. *)
        List.map (fun _ -> Absval.Top)
          (if List.length a.stack < List.length b.stack then a.stack else b.stack)
    in
    let locals =
      Imap.merge
        (fun _ x y ->
          match (x, y) with
          | Some x, Some y -> Some (Absval.join x y)
          | _ -> Some Absval.Top)
        a.locals b.locals
    in
    {
      reachable = true;
      stack;
      locals;
      held = Iset.inter a.held b.held;
      spawned_before = a.spawned_before || b.spawned_before;
      spawns_may = max a.spawns_may b.spawns_may;
      joins_must = min a.joins_must b.joins_must;
    }
  end

let state_equal a b =
  a.reachable = b.reachable
  && List.length a.stack = List.length b.stack
  && List.for_all2 Absval.equal a.stack b.stack
  && Imap.equal Absval.equal a.locals b.locals
  && Iset.equal a.held b.held
  && a.spawned_before = b.spawned_before
  && a.spawns_may = b.spawns_may
  && a.joins_must = b.joins_must

let pop = function _ :: rest -> rest | [] -> []

let top = function v :: _ -> Some v | [] -> None

(* Transfer of one instruction: returns the out-state and its successor
   pcs. *)
let transfer prog st pc instr =
  let push v st = { st with stack = v :: st.stack } in
  let pop1 st = { st with stack = pop st.stack } in
  let next st = ([ pc + 1 ], st) in
  match instr with
  | Bytecode.Const n -> next (push (Absval.Const n) st)
  | Bytecode.Load_local l ->
      let v =
        match Imap.find_opt l st.locals with Some v -> v | None -> Absval.Top
      in
      next (push v st)
  | Bytecode.Store_local l ->
      let v = match top st.stack with Some v -> v | None -> Absval.Top in
      next (pop1 { st with locals = Imap.add l v st.locals })
  | Bytecode.Load_global _ | Bytecode.Array_len _ -> next (push Absval.Top st)
  | Bytecode.Store_global _ -> next (pop1 st)
  | Bytecode.Load_elem _ ->
      (* pops the index, pushes the value *)
      next (push Absval.Top (pop1 st))
  | Bytecode.Store_elem _ -> next (pop1 (pop1 st))
  | Bytecode.Binop op ->
      let b = top st.stack and a = top (pop st.stack) in
      let v =
        match (a, b) with
        | Some a, Some b -> Absval.binop op a b
        | _ -> Absval.Top
      in
      next (push v (pop1 (pop1 st)))
  | Bytecode.Unop op ->
      let v = match top st.stack with Some a -> Absval.unop op a | None -> Absval.Top in
      next (push v (pop1 st))
  | Bytecode.Jump t -> ([ t ], st)
  | Bytecode.Jump_if_zero t ->
      let st = pop1 st in
      ([ t; pc + 1 ], st)
  | Bytecode.Acquire ->
      let st' =
        match top st.stack with
        | Some v -> (
            match Absval.lock_of_handle prog v with
            | Absval.Group g -> { st with held = Iset.add g st.held }
            | Absval.Any_lock -> st)
        | None -> st
      in
      next (pop1 st')
  | Bytecode.Release ->
      let st' =
        match top st.stack with
        | Some v -> (
            match Absval.lock_of_handle prog v with
            | Absval.Group g -> { st with held = Iset.remove g st.held }
            | Absval.Any_lock ->
                (* Unknown release: lose all certainty. *)
                { st with held = Iset.empty })
        | None -> st
      in
      next (pop1 st')
  | Bytecode.Yield_instr | Bytecode.Atomic_begin | Bytecode.Atomic_end ->
      next st
  | Bytecode.Spawn (_, nargs) ->
      let st =
        { st with spawned_before = true;
          spawns_may = min count_cap (st.spawns_may + 1) }
      in
      let rec popn n st = if n = 0 then st else popn (n - 1) (pop1 st) in
      next (push Absval.Top (popn nargs st))
  | Bytecode.Join ->
      next (pop1 { st with joins_must = min count_cap (st.joins_must + 1) })
  | Bytecode.Call (_, nargs) ->
      let rec popn n st = if n = 0 then st else popn (n - 1) (pop1 st) in
      next (push Absval.Top (popn nargs st))
  | Bytecode.Wait | Bytecode.Notify _ ->
      (* wait releases and reacquires its monitor, so the held set is
         unchanged at the next instruction; notify holds throughout. *)
      next (pop1 st)
  | Bytecode.Print | Bytecode.Assert | Bytecode.Pop -> next (pop1 st)
  | Bytecode.Ret | Bytecode.Halt -> ([], st)

let analyze prog f =
  let code = prog.Bytecode.funcs.(f).Bytecode.code in
  let n = Array.length code in
  let facts = Array.make n bottom in
  if n = 0 then facts
  else begin
    facts.(0) <-
      { reachable = true; stack = []; locals = Imap.empty; held = Iset.empty;
        spawned_before = false; spawns_may = 0; joins_must = 0 };
    let worklist = Queue.create () in
    Queue.add 0 worklist;
    while not (Queue.is_empty worklist) do
      let pc = Queue.pop worklist in
      let st = facts.(pc) in
      if st.reachable then begin
        let succs, out = transfer prog st pc code.(pc) in
        List.iter
          (fun s ->
            if s >= 0 && s < n then begin
              let merged = join_state facts.(s) out in
              if not (state_equal merged facts.(s)) then begin
                facts.(s) <- merged;
                Queue.add s worklist
              end
            end)
          succs
      end
    done;
    facts
  end

let lock_at prog infos pc =
  if pc < 0 || pc >= Array.length infos then None
  else begin
    let st = infos.(pc) in
    if not st.reachable then None
    else
      match top st.stack with
      | Some v -> Some (Absval.lock_of_handle prog v)
      | None -> None
  end
