(** ASCII swim-lane rendering of a trace.

    One column per thread, one row per event, time flowing downward — the
    way the paper draws interleavings. Useful for eyeballing small traces
    and for the CLI's [trace --timeline] mode. *)

val render : ?max_events:int -> Trace.t -> string
(** [render t] lays the trace out as swim lanes. [max_events] (default 200)
    truncates long traces with a trailing ellipsis note. *)

val render_filtered :
  ?max_events:int -> keep:(Event.t -> bool) -> Trace.t -> string
(** Like {!render} over the events satisfying [keep] (e.g. drop
    enter/exit noise). *)
