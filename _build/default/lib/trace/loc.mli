(** Source and bytecode locations.

    Violations and inferred yields are reported against locations. A location
    identifies a bytecode instruction ([func], [pc]) together with the source
    line it was compiled from, so reports are meaningful both to the VM
    (which keys yield sets by instruction) and to the user (who reads source
    lines). *)

type t = {
  func : int;  (** Index of the enclosing function in the program. *)
  pc : int;  (** Bytecode offset within the function. *)
  line : int;  (** 1-based source line, or 0 when synthesized. *)
}

val make : func:int -> pc:int -> line:int -> t
(** Build a location. *)

val none : t
(** A placeholder location for synthesized events (fork of the main thread,
    etc.). *)

val compare : t -> t -> int
(** Total order, suitable for [Map]/[Set]. *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** Renders as ["f3:pc17(line 42)"]. *)

val to_string : t -> string
(** [to_string t] is [Format.asprintf "%a" pp t]. *)

module Set : Set.S with type elt = t
(** Sets of locations (used for yield sets). *)

module Map : Map.S with type key = t
(** Maps keyed by location (used for violation counts). *)
