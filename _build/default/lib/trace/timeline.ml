let cell_width = 16

let pad s =
  let n = String.length s in
  if n >= cell_width then String.sub s 0 cell_width
  else s ^ String.make (cell_width - n) ' '

let render_events events total =
  let tids =
    List.sort_uniq Int.compare (List.map (fun (e : Event.t) -> e.tid) events)
  in
  let column tid =
    let rec idx i = function
      | [] -> -1
      | t :: rest -> if t = tid then i else idx (i + 1) rest
    in
    idx 0 tids
  in
  let buf = Buffer.create 1024 in
  (* Header. *)
  Buffer.add_string buf (pad "");
  List.iter (fun t -> Buffer.add_string buf (pad (Printf.sprintf "t%d" t))) tids;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (pad "");
  List.iter (fun _ -> Buffer.add_string buf (pad (String.make 8 '-'))) tids;
  Buffer.add_char buf '\n';
  List.iteri
    (fun i (e : Event.t) ->
      Buffer.add_string buf (pad (Printf.sprintf "%4d" i));
      let col = column e.tid in
      for c = 0 to List.length tids - 1 do
        if c = col then
          Buffer.add_string buf (pad (Format.asprintf "%a" Event.pp_op e.op))
        else Buffer.add_string buf (pad "|")
      done;
      Buffer.add_char buf '\n')
    events;
  if total > List.length events then
    Buffer.add_string buf
      (Printf.sprintf "... (%d more events)\n" (total - List.length events));
  Buffer.contents buf

let render_filtered ?(max_events = 200) ~keep trace =
  let events = ref [] in
  let count = ref 0 in
  Trace.iter
    (fun e ->
      if keep e then begin
        incr count;
        if !count <= max_events then events := e :: !events
      end)
    trace;
  render_events (List.rev !events) !count

let render ?max_events trace =
  render_filtered ?max_events ~keep:(fun _ -> true) trace
