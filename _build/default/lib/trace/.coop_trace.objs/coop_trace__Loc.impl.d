lib/trace/loc.ml: Format Int Map Set
