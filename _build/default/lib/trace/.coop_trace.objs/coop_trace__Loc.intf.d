lib/trace/loc.mli: Format Map Set
