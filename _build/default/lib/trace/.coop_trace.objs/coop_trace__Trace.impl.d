lib/trace/trace.ml: Array Event Format Int List Loc Set
