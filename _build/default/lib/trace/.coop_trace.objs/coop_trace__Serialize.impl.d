lib/trace/serialize.ml: Buffer Event List Loc Printf String Trace
