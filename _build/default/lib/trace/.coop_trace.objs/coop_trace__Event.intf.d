lib/trace/event.mli: Format Loc Map Set
