lib/trace/timeline.mli: Event Trace
