lib/trace/trace.mli: Event Format
