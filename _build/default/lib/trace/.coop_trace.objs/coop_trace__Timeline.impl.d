lib/trace/timeline.ml: Buffer Event Format Int List Printf String Trace
