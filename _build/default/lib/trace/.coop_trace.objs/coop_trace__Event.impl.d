lib/trace/event.ml: Format Int Loc Map Set
