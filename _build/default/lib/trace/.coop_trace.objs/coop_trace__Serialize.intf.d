lib/trace/serialize.mli: Trace
