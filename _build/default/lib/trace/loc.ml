type t = { func : int; pc : int; line : int }

let make ~func ~pc ~line = { func; pc; line }

let none = { func = -1; pc = -1; line = 0 }

let compare a b =
  let c = Int.compare a.func b.func in
  if c <> 0 then c
  else begin
    let c = Int.compare a.pc b.pc in
    if c <> 0 then c else Int.compare a.line b.line
  end

let equal a b = compare a b = 0

let pp ppf t =
  if t.func < 0 then Format.pp_print_string ppf "<none>"
  else Format.fprintf ppf "f%d:pc%d(line %d)" t.func t.pc t.line

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
