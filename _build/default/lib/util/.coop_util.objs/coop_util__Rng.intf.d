lib/util/rng.mli:
