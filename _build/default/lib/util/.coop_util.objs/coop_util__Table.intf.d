lib/util/table.mli:
