lib/util/stats.mli:
