(** Plain-text table rendering for the benchmark harness.

    The harness prints every reproduced table in the same visual format the
    paper uses: a header row, a rule, then one row per benchmark. Columns are
    sized to their widest cell. *)

type align =
  | Left
  | Right

type t
(** A table under construction. *)

val create : headers:(string * align) list -> t
(** [create ~headers] starts a table whose columns are labelled and aligned as
    given. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends one row. Raises [Invalid_argument] if the number
    of cells differs from the number of headers. *)

val add_rule : t -> unit
(** [add_rule t] appends a horizontal separator row. *)

val render : t -> string
(** [render t] lays the table out as a string, one line per row, with a title
    rule under the header. *)

val print : ?title:string -> t -> unit
(** [print ?title t] writes the rendered table to stdout, preceded by an
    optional underlined title and followed by a blank line. *)
