(** Deterministic pseudo-random number generation.

    All randomized components of the system (schedulers, workload generators,
    property tests that need auxiliary entropy) draw from this splitmix64
    generator so that every run is reproducible from a single integer seed.
    The global [Random] module is deliberately never used. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same future
    stream as [t]. *)

val next : t -> int64
(** [next t] advances the state and returns 64 fresh pseudo-random bits. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)]. [bound] must be
    positive. *)

val bool : t -> bool
(** [bool t] is a uniform boolean. *)

val float : t -> float -> float
(** [float t bound] is a uniform float in [\[0, bound)]. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly chosen element of [arr], which must be
    non-empty. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t arr] permutes [arr] in place with a Fisher-Yates shuffle. *)

val split : t -> t
(** [split t] derives a new generator whose stream is statistically
    independent of the future stream of [t]. *)
