type align =
  | Left
  | Right

type row =
  | Cells of string list
  | Rule

type t = {
  headers : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let headers = List.map fst t.headers in
  let aligns = List.map snd t.headers in
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun ws row ->
        match row with
        | Rule -> ws
        | Cells cs -> List.map2 (fun w c -> max w (String.length c)) ws cs)
      (List.map String.length headers)
      rows
  in
  let pad align w s =
    let n = w - String.length s in
    let fill = String.make (max 0 n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let line cells =
    String.concat "  " (List.map2 (fun (w, a) c -> pad a w c)
                          (List.combine widths aligns) cells)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      (match row with
      | Rule -> Buffer.add_string buf rule
      | Cells cs -> Buffer.add_string buf (line cs));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?title t =
  (match title with
  | None -> ()
  | Some s ->
      print_endline s;
      print_endline (String.make (String.length s) '='));
  print_string (render t);
  print_newline ()
