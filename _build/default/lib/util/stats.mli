(** Small descriptive-statistics helpers used by the benchmark harness. *)

val mean : float array -> float
(** Arithmetic mean; 0. on an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (Bessel-corrected); 0. for fewer than two
    samples. *)

val median : float array -> float
(** Median of the samples; 0. on an empty array. Does not mutate the input. *)

val percentile : float -> float array -> float
(** [percentile p xs] is the [p]-th percentile (0 <= p <= 100) using linear
    interpolation between closest ranks. *)

val min_max : float array -> float * float
(** Smallest and largest sample. Raises [Invalid_argument] on empty input. *)

val geomean : float array -> float
(** Geometric mean of positive samples; 0. on an empty array. *)
