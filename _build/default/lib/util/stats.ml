let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
    sqrt (acc /. float_of_int (n - 1))
  end

let sorted xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile p xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let ys = sorted xs in
    if n = 1 then ys.(0)
    else begin
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = int_of_float (ceil rank) in
      let frac = rank -. float_of_int lo in
      (ys.(lo) *. (1. -. frac)) +. (ys.(hi) *. frac)
    end
  end

let median xs = percentile 50. xs

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> ((if x < lo then x else lo), if x > hi then x else hi))
    (xs.(0), xs.(0))
    xs

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let acc = Array.fold_left (fun a x -> a +. log x) 0. xs in
    exp (acc /. float_of_int n)
  end
