lib/atomicity/conflict.ml: Array Coop_trace Event Hashtbl List Set Trace
