lib/atomicity/conflict.mli: Coop_trace
