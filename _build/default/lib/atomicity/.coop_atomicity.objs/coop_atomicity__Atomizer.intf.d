lib/atomicity/atomizer.mli: Coop_core Coop_trace Event Format Loc Trace
