lib/atomicity/atomizer.ml: Coop_core Coop_race Coop_trace Event Format Hashtbl Int List Loc Trace
