open Coop_trace
open Coop_lang

type mode =
  | Preemptive
  | Cooperative

type granularity =
  | Every_instruction
  | Visible_only

type result = {
  behaviors : Behavior.Set.t;
  complete : bool;
  states : int;
  deadlocks : int;
}

let is_visible = function
  | Bytecode.Load_global _ | Bytecode.Store_global _ | Bytecode.Load_elem _
  | Bytecode.Store_elem _ | Bytecode.Acquire | Bytecode.Release
  | Bytecode.Wait | Bytecode.Notify _ | Bytecode.Yield_instr
  | Bytecode.Spawn _ | Bytecode.Join | Bytecode.Print ->
      true
  | Bytecode.Const _ | Bytecode.Load_local _ | Bytecode.Store_local _
  | Bytecode.Array_len _ | Bytecode.Binop _ | Bytecode.Unop _ | Bytecode.Jump _
  | Bytecode.Jump_if_zero _ | Bytecode.Atomic_begin | Bytecode.Atomic_end
  | Bytecode.Call _ | Bytecode.Ret | Bytecode.Assert | Bytecode.Pop
  | Bytecode.Halt ->
      false

(* The next instruction of [tid], when it has a frame. *)
let next_instr st tid =
  match Vm.thread_status st tid with
  | Vm.Finished | Vm.Faulted _ -> None
  | _ -> Vm.peek_instr st tid

(* One scheduling decision in preemptive mode: execute [tid]'s invisible
   prefix eagerly, then one visible instruction (or park). Returns [None]
   when the segment budget is exhausted. *)
let macro_step ~yields ~max_segment st tid =
  let sink = Trace.Sink.ignore in
  let rec go st fuel =
    if fuel = 0 then None
    else if
      match Vm.thread_status st tid with Vm.Reacquiring _ -> true | _ -> false
    then
      (* A monitor reacquire is itself a visible transition. *)
      Some (Vm.step ~yields st tid ~sink)
    else begin
      match next_instr st tid with
      | None -> Some st
      | Some (instr, loc) ->
          let injected = Loc.Set.mem loc yields in
          if is_visible instr || injected then begin
            (* Execute the visible instruction (or its injected yield) and
               stop; if the thread parks instead, the state still changed. *)
            let st' = Vm.step ~yields st tid ~sink in
            Some st'
          end
          else begin
            let st' = Vm.step ~yields st tid ~sink in
            match Vm.thread_status st' tid with
            | Vm.Finished | Vm.Faulted _ -> Some st'
            | _ -> go st' (fuel - 1)
          end
    end
  in
  go st max_segment

(* One scheduling decision in cooperative mode: run [tid] until it yields,
   blocks, faults or finishes. *)
let coop_segment ~yields ~max_segment st tid =
  let sink = Trace.Sink.ignore in
  let rec go st fuel =
    if fuel = 0 then None
    else begin
      let st' = Vm.step ~yields st tid ~sink in
      if Vm.last_step_yielded st' then Some st'
      else begin
        match Vm.thread_status st' tid with
        | Vm.Finished | Vm.Faulted _ -> Some st'
        | Vm.Blocked_on_lock _ | Vm.Blocked_on_join _ | Vm.Waiting _
        | Vm.Reacquiring _ ->
            Some st'
        | Vm.Runnable -> go st' (fuel - 1)
      end
    end
  in
  go st max_segment

(* One scheduling decision at instruction granularity: a single step. *)
let single_step ~yields st tid =
  Some (Vm.step ~yields st tid ~sink:Trace.Sink.ignore)

let run ?(yields = Loc.Set.empty) ?(max_states = 200_000)
    ?(max_segment = 100_000) ?(granularity = Visible_only) mode prog =
  let seen = Hashtbl.create 1024 in
  let behaviors = ref Behavior.Set.empty in
  let complete = ref true in
  let states = ref 0 in
  let deadlocks = ref 0 in
  let segment =
    match (mode, granularity) with
    | Preemptive, Visible_only -> macro_step ~yields ~max_segment
    | Preemptive, Every_instruction -> single_step ~yields
    | Cooperative, _ -> coop_segment ~yields ~max_segment
  in
  let rec visit st =
    if !states >= max_states then complete := false
    else begin
      let k = Vm.key st in
      if not (Hashtbl.mem seen k) then begin
        Hashtbl.add seen k ();
        incr states;
        match Vm.runnable st with
        | [] ->
            if Vm.deadlocked st then incr deadlocks;
            behaviors := Behavior.Set.add (Behavior.of_state st) !behaviors
        | runnable ->
            List.iter
              (fun tid ->
                match segment st tid with
                | Some st' -> visit st'
                | None -> complete := false)
              runnable
      end
    end
  in
  visit (Vm.init prog);
  {
    behaviors = !behaviors;
    complete = !complete;
    states = !states;
    deadlocks = !deadlocks;
  }

let behaviors_equal a b =
  a.complete && b.complete && Behavior.Set.equal a.behaviors b.behaviors
