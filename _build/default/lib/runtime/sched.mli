(** Schedulers.

    A scheduler picks which runnable thread executes the next instruction.
    The preemptive schedulers (round-robin, random) may switch threads at
    any instruction boundary — the paper's adversarial environment. The
    cooperative scheduler switches only when the running thread yields,
    blocks or terminates — the semantics the programmer is supposed to
    reason about. *)

type context = {
  state : Vm.state;  (** Current machine state. *)
  runnable : int list;  (** Non-empty list of runnable tids, ascending. *)
  last : int option;  (** Thread that executed the previous step. *)
  last_yielded : bool;  (** Whether the previous step emitted a yield. *)
}

type t = {
  name : string;  (** For reports. *)
  pick : context -> int;  (** Chooses one tid out of [context.runnable]. *)
}

val round_robin : quantum:int -> unit -> t
(** Preemptive round-robin: runs each thread for up to [quantum] consecutive
    instructions, then rotates to the next runnable thread. A fresh mutable
    instance per call. *)

val random : seed:int -> unit -> t
(** Uniformly random preemptive scheduling, reproducible from [seed]. *)

val cooperative : unit -> t
(** Cooperative scheduling: keeps running the current thread until it
    yields, blocks or finishes; then rotates fairly (first runnable tid
    strictly greater than the current one, wrapping around). *)

val sequential : t
(** Always picks the lowest runnable tid. Deterministic and stateless; the
    reference for single-threaded semantics tests. *)

val pct : seed:int -> depth:int -> change_span:int -> unit -> t
(** Probabilistic Concurrency Testing (Burckhardt et al.): every thread gets
    a distinct random high priority; the highest-priority runnable thread
    always runs; at [depth - 1] step indices drawn uniformly from
    [\[0, change_span)], the currently running thread is demoted below all
    initial priorities. PCT finds bugs of preemption depth [d] with
    probability >= 1/(n·k^(d-1)) per run, which makes it a strong addition
    to the yield-inference portfolio. *)

val pinned : int list -> t
(** Replays a fixed decision list; falls back to the lowest runnable tid
    when the list is exhausted or the choice is not runnable. Together with
    {!recorded} this gives exact schedule replay: a violation found under
    any scheduler can be reproduced deterministically. *)

val recorded : t -> (unit -> int list) * t
(** [recorded s] wraps [s] so every decision is logged. Returns the
    accessor for the decisions so far (in order) and the wrapped scheduler.
    Replaying them through {!pinned} on the same program reproduces the
    execution exactly (the VM is deterministic given the schedule). *)
