(** Observable behaviours.

    The reduction theorem is stated over behaviours: a preemptive execution
    is equivalent to a cooperative one when they are indistinguishable to an
    observer. We take the standard observables — the sequence of [print]
    outputs, the final global store, whether any thread faulted, and whether
    the run deadlocked. *)

type t = {
  output : int list;  (** [print] values in order. *)
  globals : int list;  (** Final value of every global slot, by slot. *)
  fault_count : int;  (** Number of faulted threads. *)
  deadlocked : bool;  (** True when the run ended in a deadlock. *)
}

val of_state : Vm.state -> t
(** Project a final machine state to its behaviour. *)

val compare : t -> t -> int
(** Total order for sets. *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** Compact one-line rendering. *)

module Set : Set.S with type elt = t
(** Behaviour sets, as produced by the schedule explorer. *)
