type t = {
  output : int list;
  globals : int list;
  fault_count : int;
  deadlocked : bool;
}

let of_state st =
  let prog = Vm.program st in
  let n = prog.Coop_lang.Bytecode.n_globals in
  let globals = List.init n (fun i -> Vm.global_value st i) in
  {
    output = Vm.output st;
    globals;
    fault_count = List.length (Vm.failures st);
    deadlocked = Vm.deadlocked st;
  }

let compare a b =
  let c = compare a.output b.output in
  if c <> 0 then c
  else begin
    let c = compare a.globals b.globals in
    if c <> 0 then c
    else begin
      let c = Int.compare a.fault_count b.fault_count in
      if c <> 0 then c else Bool.compare a.deadlocked b.deadlocked
    end
  end

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "out=[%s] globals=[%s]%s%s"
    (String.concat ";" (List.map string_of_int t.output))
    (String.concat ";" (List.map string_of_int t.globals))
    (if t.fault_count > 0 then Printf.sprintf " faults=%d" t.fault_count else "")
    (if t.deadlocked then " DEADLOCK" else "")

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
