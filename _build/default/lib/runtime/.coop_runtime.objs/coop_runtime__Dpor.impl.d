lib/runtime/dpor.ml: Array Behavior Bytecode Coop_lang Coop_trace Event Int List Loc Set Vm
