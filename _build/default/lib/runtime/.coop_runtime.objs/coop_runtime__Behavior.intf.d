lib/runtime/behavior.mli: Format Set Vm
