lib/runtime/explore.ml: Behavior Bytecode Coop_lang Coop_trace Hashtbl List Loc Trace Vm
