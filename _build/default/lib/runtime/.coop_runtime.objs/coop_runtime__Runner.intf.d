lib/runtime/runner.mli: Behavior Coop_lang Coop_trace Format Loc Sched Trace Vm
