lib/runtime/sched.mli: Vm
