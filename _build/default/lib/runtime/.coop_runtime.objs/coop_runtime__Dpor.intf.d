lib/runtime/dpor.mli: Behavior Coop_lang Coop_trace Loc
