lib/runtime/explore.mli: Behavior Coop_lang Coop_trace Loc
