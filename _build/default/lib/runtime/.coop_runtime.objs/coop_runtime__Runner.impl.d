lib/runtime/runner.ml: Behavior Coop_trace Format Loc Sched Trace Vm
