lib/runtime/vm.ml: Array Ast Buffer Bytecode Coop_lang Coop_trace Event Int List Loc Map Printf Seq
