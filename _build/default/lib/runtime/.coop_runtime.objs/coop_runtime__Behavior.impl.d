lib/runtime/behavior.ml: Bool Coop_lang Format Int List Printf Set String Vm
