lib/runtime/vm.mli: Bytecode Coop_lang Coop_trace Loc Trace
