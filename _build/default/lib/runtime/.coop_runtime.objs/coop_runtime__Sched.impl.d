lib/runtime/sched.ml: Array Coop_util Hashtbl Int List Printf Vm
