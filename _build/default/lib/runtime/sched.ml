type context = {
  state : Vm.state;
  runnable : int list;
  last : int option;
  last_yielded : bool;
}

type t = {
  name : string;
  pick : context -> int;
}

let lowest = function
  | [] -> invalid_arg "Sched: empty runnable list"
  | t :: _ -> t

(* First runnable tid strictly greater than [cur], wrapping. *)
let next_after cur runnable =
  match List.find_opt (fun t -> t > cur) runnable with
  | Some t -> t
  | None -> lowest runnable

let round_robin ~quantum () =
  if quantum <= 0 then invalid_arg "Sched.round_robin: quantum must be positive";
  let used = ref 0 in
  let pick ctx =
    match ctx.last with
    | Some cur when List.mem cur ctx.runnable && !used < quantum ->
        incr used;
        cur
    | Some cur ->
        used := 1;
        next_after cur ctx.runnable
    | None ->
        used := 1;
        lowest ctx.runnable
  in
  { name = Printf.sprintf "round-robin(q=%d)" quantum; pick }

let random ~seed () =
  let rng = Coop_util.Rng.create seed in
  let pick ctx =
    let arr = Array.of_list ctx.runnable in
    Coop_util.Rng.pick rng arr
  in
  { name = Printf.sprintf "random(seed=%d)" seed; pick }

let cooperative () =
  let pick ctx =
    match ctx.last with
    | Some cur when List.mem cur ctx.runnable && not ctx.last_yielded -> cur
    | Some cur -> next_after cur ctx.runnable
    | None -> lowest ctx.runnable
  in
  { name = "cooperative"; pick }

let sequential = { name = "sequential"; pick = (fun ctx -> lowest ctx.runnable) }

let pct ~seed ~depth ~change_span () =
  if depth < 1 then invalid_arg "Sched.pct: depth must be >= 1";
  let rng = Coop_util.Rng.create seed in
  (* Distinct initial priorities, all above the demotion range [0, depth). *)
  let priorities : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let next_initial = ref depth in
  let priority_of tid =
    match Hashtbl.find_opt priorities tid with
    | Some p -> p
    | None ->
        (* Insert at a random rank among the existing initial priorities by
           drawing a fresh value; collisions resolved by tid for
           determinism. *)
        let p = !next_initial + Coop_util.Rng.int rng 1000 in
        incr next_initial;
        Hashtbl.add priorities tid p;
        p
  in
  let change_points =
    List.init (depth - 1) (fun _ -> Coop_util.Rng.int rng (max 1 change_span))
    |> List.sort_uniq Int.compare
  in
  let remaining = ref change_points in
  let next_demotion = ref 0 in
  let step = ref 0 in
  let pick ctx =
    (* Demote the thread that ran the previous step when we crossed a
       change point. *)
    (match (ctx.last, !remaining) with
    | Some cur, cp :: rest when !step > cp ->
        remaining := rest;
        Hashtbl.replace priorities cur !next_demotion;
        incr next_demotion
    | _ -> ());
    incr step;
    let best =
      List.fold_left
        (fun acc tid ->
          let p = priority_of tid in
          match acc with
          | Some (_, bp) when bp >= p -> acc
          | _ -> Some (tid, p))
        None ctx.runnable
    in
    match best with Some (tid, _) -> tid | None -> lowest ctx.runnable
  in
  { name = Printf.sprintf "pct(seed=%d,d=%d)" seed depth; pick }

let recorded inner =
  let log = ref [] in
  let pick ctx =
    let t = inner.pick ctx in
    log := t :: !log;
    t
  in
  ((fun () -> List.rev !log), { name = inner.name ^ "+recorded"; pick })

let pinned decisions =
  let rest = ref decisions in
  let pick ctx =
    match !rest with
    | d :: tl when List.mem d ctx.runnable ->
        rest := tl;
        d
    | _ :: tl ->
        rest := tl;
        lowest ctx.runnable
    | [] -> lowest ctx.runnable
  in
  { name = "pinned"; pick }
