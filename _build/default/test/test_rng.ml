open Coop_util

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next a = Rng.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy () =
  let a = Rng.create 7 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next a) (Rng.next b)

let test_int_range () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_coverage () =
  let r = Rng.create 9 in
  let seen = Array.make 8 false in
  for _ = 1 to 500 do
    seen.(Rng.int r 8) <- true
  done;
  Alcotest.(check bool) "all buckets hit" true (Array.for_all Fun.id seen)

let test_int_invalid () =
  let r = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_bool_balance () =
  let r = Rng.create 3 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool r then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 350 && !trues < 650)

let test_float_range () =
  let r = Rng.create 11 in
  for _ = 1 to 500 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0. && v < 2.5)
  done

let test_pick () =
  let r = Rng.create 13 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "picked element" true (Array.mem (Rng.pick r arr) arr)
  done

let test_pick_empty () =
  let r = Rng.create 1 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick r [||]))

let test_shuffle_permutation () =
  let r = Rng.create 21 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_shuffle_changes () =
  let r = Rng.create 22 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  Alcotest.(check bool) "not identity" true (arr <> Array.init 50 Fun.id)

let test_split_independent () =
  let a = Rng.create 33 in
  let b = Rng.split a in
  let xs = List.init 32 (fun _ -> Rng.next a) in
  let ys = List.init 32 (fun _ -> Rng.next b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int coverage" `Quick test_int_coverage;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "pick membership" `Quick test_pick;
    Alcotest.test_case "pick empty" `Quick test_pick_empty;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "shuffle changes order" `Quick test_shuffle_changes;
    Alcotest.test_case "split independence" `Quick test_split_independent;
  ]
