open Coop_lang
open Coop_runtime
open Coop_core
open Coop_workloads

let compute ?(yields = Coop_trace.Loc.Set.empty) src =
  let prog = Compile.source src in
  let _, trace = Runner.record ~yields ~sched:(Sched.random ~seed:1 ()) prog in
  (prog, Metrics.compute prog ~inferred:yields ~trace)

let test_static_yields_counted () =
  let _, m = compute (Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:true) in
  Alcotest.(check int) "one static yield" 1 m.Metrics.static_yields;
  Alcotest.(check int) "no inferred" 0 m.Metrics.inferred_yields;
  Alcotest.(check int) "total" 1 m.Metrics.total_yields

let test_yield_free_functions () =
  let _, m = compute (Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:true) in
  (* worker has the yield; main does not. *)
  Alcotest.(check int) "two functions" 2 m.Metrics.functions;
  Alcotest.(check int) "one yield-free" 1 m.Metrics.yield_free_functions;
  Alcotest.(check (float 0.01)) "pct" 50.0 m.Metrics.pct_yield_free

let test_no_yields_all_free () =
  let _, m = compute (Micro.single_transaction ~threads:2) in
  Alcotest.(check int) "no yields" 0 m.Metrics.total_yields;
  Alcotest.(check (float 0.01)) "100%% yield-free" 100.0 m.Metrics.pct_yield_free

let test_inferred_counted_separately () =
  let prog = Compile.source (Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:false) in
  let inf = Infer.infer prog in
  let _, trace = Runner.record ~yields:inf.Infer.yields ~sched:(Sched.random ~seed:1 ()) prog in
  let m = Metrics.compute prog ~inferred:inf.Infer.yields ~trace in
  Alcotest.(check int) "inferred" 1 m.Metrics.inferred_yields;
  Alcotest.(check int) "static" 0 m.Metrics.static_yields;
  Alcotest.(check bool) "dynamic yields observed" true (m.Metrics.yield_events > 0);
  Alcotest.(check bool) "density positive" true (m.Metrics.yields_per_kevent > 0.)

let test_code_size_positive () =
  let prog, m = compute (Micro.racy_counter ~threads:2 ~incs:1) in
  Alcotest.(check int) "matches bytecode" (Bytecode.code_size prog) m.Metrics.code_size;
  Alcotest.(check bool) "positive" true (m.Metrics.code_size > 0)

let suite =
  [
    Alcotest.test_case "static yields counted" `Quick test_static_yields_counted;
    Alcotest.test_case "yield-free functions" `Quick test_yield_free_functions;
    Alcotest.test_case "no yields, all free" `Quick test_no_yields_all_free;
    Alcotest.test_case "inferred counted separately" `Quick test_inferred_counted_separately;
    Alcotest.test_case "code size" `Quick test_code_size_positive;
  ]
