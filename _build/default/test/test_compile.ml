open Coop_lang

let compile = Compile.source

let code_of prog name =
  let rec find i =
    if i >= Array.length prog.Bytecode.funcs then Alcotest.fail ("no fn " ^ name)
    else if prog.Bytecode.funcs.(i).Bytecode.name = name then
      prog.Bytecode.funcs.(i)
    else find (i + 1)
  in
  find 0

let test_main_index () =
  let prog = compile "fn helper() { } fn main() { }" in
  Alcotest.(check string) "main resolved" "main"
    prog.Bytecode.funcs.(prog.Bytecode.main).Bytecode.name

let test_implicit_return () =
  let prog = compile "fn main() { }" in
  let f = code_of prog "main" in
  Alcotest.(check bool) "ends const 0; ret" true
    (Array.length f.Bytecode.code = 2
    && f.Bytecode.code.(0) = Bytecode.Const 0
    && f.Bytecode.code.(1) = Bytecode.Ret)

let test_param_slots () =
  let prog = compile "fn f(a, b, c) { var d = 0; d = a; } fn main() { }" in
  let f = code_of prog "f" in
  Alcotest.(check int) "arity" 3 f.Bytecode.arity;
  Alcotest.(check int) "locals include temp" 4 f.Bytecode.n_locals

let test_sync_compiles_handle_once () =
  let prog = compile "var i = 0; lock ms[4]; fn main() { sync (ms[i]) { i = i + 1; } }" in
  let f = code_of prog "main" in
  (* The release must reload the stashed handle (Load_local), not recompute
     the index expression (which now evaluates differently). *)
  let stores = Array.to_list f.Bytecode.code
               |> List.filter (function Bytecode.Store_local _ -> true | _ -> false) in
  Alcotest.(check bool) "handle stashed in a temp" true (List.length stores >= 1);
  (* Count reads of global i: exactly 2 (one for the handle, one in the
     body) -- a recomputation bug would make it 3. *)
  let reads = Array.to_list f.Bytecode.code
              |> List.filter (function Bytecode.Load_global 0 -> true | _ -> false) in
  Alcotest.(check int) "index evaluated once" 2 (List.length reads)

let test_jump_targets_in_range () =
  let prog =
    compile
      "var x = 0; fn main() { var i = 0; while (i < 10) { if (i % 2 == 0) { x = x + i; } else { x = x - 1; } i = i + 1; } }"
  in
  Array.iter
    (fun (f : Bytecode.func) ->
      let n = Array.length f.Bytecode.code in
      Array.iter
        (function
          | Bytecode.Jump t | Bytecode.Jump_if_zero t ->
              Alcotest.(check bool) "target in range" true (t >= 0 && t <= n)
          | _ -> ())
        f.Bytecode.code)
    prog.Bytecode.funcs

let test_lines_parallel_to_code () =
  let prog = compile "fn main() {\n  print(1);\n  print(2);\n}" in
  Array.iter
    (fun (f : Bytecode.func) ->
      Alcotest.(check int) "lines array length"
        (Array.length f.Bytecode.code)
        (Array.length f.Bytecode.lines))
    prog.Bytecode.funcs

let test_line_attribution () =
  let prog = compile "fn main() {\n  print(1);\n  print(2);\n}" in
  let f = code_of prog "main" in
  (* Find the two Print instructions and check their lines. *)
  let lines = ref [] in
  Array.iteri
    (fun pc ins -> if ins = Bytecode.Print then lines := f.Bytecode.lines.(pc) :: !lines)
    f.Bytecode.code;
  Alcotest.(check (list int)) "print lines" [ 3; 2 ] !lines

let test_lock_array_handles () =
  let prog = compile "lock a; lock bs[3]; fn main() { sync (bs[2]) { } sync (a) { } }" in
  Alcotest.(check int) "total handles" 4 prog.Bytecode.n_locks;
  Alcotest.(check string) "scalar lock name" "a" prog.Bytecode.lock_names.(0);
  Alcotest.(check string) "array lock name" "bs[2]" prog.Bytecode.lock_names.(3)

let test_disassemble_smoke () =
  let prog = compile "var x = 5; fn main() { print(x); }" in
  let listing = Bytecode.disassemble prog in
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions main" true (contains listing "fn main");
  Alcotest.(check bool) "mentions print" true (contains listing "print")

let test_code_size () =
  let p1 = compile "fn main() { }" in
  let p2 = compile "fn main() { print(1); print(2); }" in
  Alcotest.(check bool) "more statements, more code" true
    (Bytecode.code_size p2 > Bytecode.code_size p1)

let suite =
  [
    Alcotest.test_case "main index" `Quick test_main_index;
    Alcotest.test_case "implicit return" `Quick test_implicit_return;
    Alcotest.test_case "parameter slots" `Quick test_param_slots;
    Alcotest.test_case "sync handle computed once" `Quick test_sync_compiles_handle_once;
    Alcotest.test_case "jump targets in range" `Quick test_jump_targets_in_range;
    Alcotest.test_case "line arrays parallel" `Quick test_lines_parallel_to_code;
    Alcotest.test_case "line attribution" `Quick test_line_attribution;
    Alcotest.test_case "lock array handles" `Quick test_lock_array_handles;
    Alcotest.test_case "disassembly" `Quick test_disassemble_smoke;
    Alcotest.test_case "code size grows" `Quick test_code_size;
  ]
