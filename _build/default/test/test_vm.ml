open Coop_lang
open Coop_runtime

(* Run a deterministic (single- or multi-threaded) program under the
   sequential scheduler and return its final state. *)
let run src =
  let prog = Compile.source src in
  let o =
    Runner.run ~max_steps:500_000 ~sched:Sched.sequential
      ~sink:Coop_trace.Trace.Sink.ignore prog
  in
  o.Runner.final

let output src = Vm.output (run src)

let check_out msg src expected = Alcotest.(check (list int)) msg expected (output src)

let test_arithmetic () =
  check_out "arith" "fn main() { print(2 + 3 * 4); print(10 / 3); print(10 % 3); }"
    [ 14; 3; 1 ];
  check_out "unary" "fn main() { print(-5); print(!0); print(!7); }" [ -5; 1; 0 ];
  check_out "comparisons"
    "fn main() { print(1 < 2); print(2 <= 1); print(3 == 3); print(3 != 3); }"
    [ 1; 0; 1; 0 ];
  check_out "logical" "fn main() { print(1 && 0); print(1 && 2); print(0 || 0); print(0 || 5); }"
    [ 0; 1; 0; 1 ]

let test_control_flow () =
  check_out "if else" "fn main() { if (1 < 2) { print(1); } else { print(2); } }" [ 1 ];
  check_out "while"
    "fn main() { var i = 0; var s = 0; while (i < 5) { s = s + i; i = i + 1; } print(s); }"
    [ 10 ]

let test_functions () =
  check_out "call with return" "fn sq(x) { return x * x; } fn main() { print(sq(7)); }" [ 49 ];
  check_out "implicit return zero" "fn f() { } fn main() { print(f()); }" [ 0 ];
  check_out "recursion"
    "fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } fn main() { print(fib(10)); }"
    [ 55 ]

let test_globals_arrays () =
  check_out "global init" "var g = 42; fn main() { print(g); }" [ 42 ];
  check_out "array zero init" "array a[3]; fn main() { print(a[2]); }" [ 0 ];
  check_out "array store/load"
    "array a[4]; fn main() { a[1] = 9; a[2] = a[1] * 2; print(a[2]); }" [ 18 ]

let test_locals_shadow_globals () =
  check_out "shadowing" "var x = 1; fn main() { var x = 5; print(x); }" [ 5 ]

let test_faults () =
  let faults src = List.length (Vm.failures (run src)) in
  Alcotest.(check int) "div by zero" 1 (faults "fn main() { print(1 / 0); }");
  Alcotest.(check int) "mod by zero" 1 (faults "fn main() { print(1 % 0); }");
  Alcotest.(check int) "index oob" 1 (faults "array a[2]; fn main() { a[5] = 1; }");
  Alcotest.(check int) "negative index" 1 (faults "array a[2]; fn main() { a[0 - 1] = 1; }");
  Alcotest.(check int) "assert failure" 1 (faults "fn main() { assert(0); }");
  Alcotest.(check int) "release unheld" 1 (faults "lock m; fn main() { release(m); }");
  Alcotest.(check int) "assert pass" 0 (faults "fn main() { assert(1); }")

let test_fault_isolated () =
  (* A fault kills only the faulting thread. *)
  let st = run "fn bad() { assert(0); } fn main() { var t = spawn bad(); join t; print(7); }" in
  Alcotest.(check (list int)) "main continues" [ 7 ] (Vm.output st);
  Alcotest.(check int) "one fault" 1 (List.length (Vm.failures st))

let test_reentrant_locks () =
  check_out "reentrant sync"
    "var x = 0; lock m; fn main() { sync (m) { sync (m) { x = 1; } } print(x); }"
    [ 1 ]

let test_spawn_join_value () =
  check_out "spawn returns tid, join works"
    "var x = 0; fn w() { x = 5; } fn main() { var t = spawn w(); join t; print(x); }"
    [ 5 ]

let test_spawn_args () =
  check_out "spawn passes arguments"
    "var x = 0; fn w(a, b) { x = a * 10 + b; } fn main() { var t = spawn w(3, 4); join t; print(x); }"
    [ 34 ]

let test_yield_instr_noop_semantics () =
  check_out "yield does not change values"
    "fn main() { var i = 0; while (i < 3) { yield; i = i + 1; } print(i); }" [ 3 ]

let test_step_determinism () =
  (* Same scheduler, same program: identical behaviour and step counts. *)
  let prog = Compile.source (Coop_workloads.Micro.racy_counter ~threads:2 ~incs:3) in
  let o1 = Runner.run ~sched:(Sched.random ~seed:9 ()) ~sink:Coop_trace.Trace.Sink.ignore prog in
  let o2 = Runner.run ~sched:(Sched.random ~seed:9 ()) ~sink:Coop_trace.Trace.Sink.ignore prog in
  Alcotest.(check int) "same steps" o1.Runner.steps o2.Runner.steps;
  Alcotest.(check bool) "same behaviour" true
    (Behavior.equal (Runner.behavior_of o1) (Runner.behavior_of o2))

let test_key_distinguishes () =
  let prog = Compile.source "var x = 0; fn main() { x = 1; }" in
  let st0 = Vm.init prog in
  let st1 = Vm.step st0 0 ~sink:Coop_trace.Trace.Sink.ignore in
  Alcotest.(check bool) "keys differ across steps" false (Vm.key st0 = Vm.key st1);
  Alcotest.(check string) "key deterministic" (Vm.key st1) (Vm.key st1)

let test_peek_instr () =
  let prog = Compile.source "fn main() { print(1); }" in
  let st = Vm.init prog in
  (match Vm.peek_instr st 0 with
  | Some (Bytecode.Const 1, loc) -> Alcotest.(check int) "loc func" prog.Bytecode.main loc.Coop_trace.Loc.func
  | _ -> Alcotest.fail "expected Const 1 first")

let test_blocking_join_and_lock () =
  let prog =
    Compile.source
      "var x = 0; lock m; fn w() { sync (m) { x = x + 1; } } fn main() { var t = spawn w(); join t; print(x); }"
  in
  let o = Runner.run ~sched:(Sched.round_robin ~quantum:1 ()) ~sink:Coop_trace.Trace.Sink.ignore prog in
  Alcotest.(check bool) "completed" true (o.Runner.termination = Runner.Completed);
  Alcotest.(check (list int)) "output" [ 1 ] (Vm.output o.Runner.final)

let test_join_faulted_target () =
  (* Joining a faulted thread proceeds rather than deadlocking. *)
  let st = run "fn bad() { assert(0); } fn main() { var t = spawn bad(); join t; print(1); }" in
  Alcotest.(check (list int)) "join proceeds" [ 1 ] (Vm.output st)

let test_deep_recursion () =
  check_out "deep recursion"
    "fn down(n) { if (n == 0) { return 0; } return down(n - 1); } fn main() { print(down(2000)); }"
    [ 0 ]

let test_negative_values () =
  check_out "negative arithmetic and output"
    "fn main() { var x = 0 - 7; print(x); print(x / 2); print(x % 3); }"
    [ -7; -3; -1 ]

let test_many_threads () =
  let st =
    run
      "var x = 0; lock m; array t[20]; fn w() { sync (m) { x = x + 1; } }\n\
       fn main() { var i = 0; while (i < 20) { t[i] = spawn w(); i = i + 1; }\n\
       i = 0; while (i < 20) { join t[i]; i = i + 1; } print(x); }"
  in
  Alcotest.(check (list int)) "twenty threads" [ 20 ] (Vm.output st)

let test_spawn_tids_monotone () =
  let st = run "fn w() { } fn main() { var a = spawn w(); var b = spawn w(); join a; join b; print(b - a); }" in
  Alcotest.(check (list int)) "tids increase by one" [ 1 ] (Vm.output st)

let suite =
  [
    Alcotest.test_case "join faulted target" `Quick test_join_faulted_target;
    Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
    Alcotest.test_case "negative values" `Quick test_negative_values;
    Alcotest.test_case "many threads" `Quick test_many_threads;
    Alcotest.test_case "spawn tids monotone" `Quick test_spawn_tids_monotone;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "globals and arrays" `Quick test_globals_arrays;
    Alcotest.test_case "locals shadow globals" `Quick test_locals_shadow_globals;
    Alcotest.test_case "runtime faults" `Quick test_faults;
    Alcotest.test_case "faults are isolated" `Quick test_fault_isolated;
    Alcotest.test_case "reentrant locks" `Quick test_reentrant_locks;
    Alcotest.test_case "spawn/join" `Quick test_spawn_join_value;
    Alcotest.test_case "spawn arguments" `Quick test_spawn_args;
    Alcotest.test_case "yield semantics" `Quick test_yield_instr_noop_semantics;
    Alcotest.test_case "scheduler determinism" `Quick test_step_determinism;
    Alcotest.test_case "state keys" `Quick test_key_distinguishes;
    Alcotest.test_case "peek_instr" `Quick test_peek_instr;
    Alcotest.test_case "blocking join and lock" `Quick test_blocking_join_and_lock;
  ]
