open Coop_lang
open Coop_runtime
open Coop_core
open Coop_workloads
open Coop_atomicity

let trace_of ?(seed = 7) src =
  let prog = Compile.source src in
  let _, trace = Runner.record ~max_steps:500_000 ~sched:(Sched.random ~seed ()) prog in
  trace

let test_single_transaction_atomic () =
  let r = Atomizer.check (trace_of (Micro.single_transaction ~threads:3)) in
  Alcotest.(check int) "no warnings" 0 (List.length r.Atomizer.warnings)

let test_check_then_act_not_atomic () =
  let r = Atomizer.check (trace_of (Micro.check_then_act ~threads:2)) in
  Alcotest.(check bool) "warned" true (r.Atomizer.warnings <> []);
  Alcotest.(check bool) "grab flagged" true (r.Atomizer.flagged_functions <> [])

let test_atomicity_stricter_than_cooperability () =
  (* A loop of sync blocks with yields: cooperable, but the function is not
     atomic. This is the key asymmetry the paper measures. *)
  let trace = trace_of (Micro.locked_counter ~threads:2 ~incs:3 ~yield_at_loop:true) in
  let coop = Cooperability.check trace in
  let atom = Atomizer.check trace in
  Alcotest.(check bool) "cooperable" true (Cooperability.cooperable coop);
  Alcotest.(check bool) "not atomic" true (atom.Atomizer.warnings <> [])

let test_yield_not_a_boundary_for_atomicity () =
  (* The same program with and without yields gets the same atomicity
     verdict. *)
  let w1 = Atomizer.check (trace_of (Micro.locked_counter ~threads:2 ~incs:3 ~yield_at_loop:true)) in
  let w2 = Atomizer.check (trace_of (Micro.locked_counter ~threads:2 ~incs:3 ~yield_at_loop:false)) in
  Alcotest.(check bool) "both flagged" true
    (w1.Atomizer.warnings <> [] && w2.Atomizer.warnings <> [])

let test_activations_counted () =
  let r = Atomizer.check (trace_of (Micro.single_transaction ~threads:2)) in
  (* main + 2 workers = 3 function activations at least. *)
  Alcotest.(check bool) "at least three" true (r.Atomizer.activations >= 3)

let test_one_warning_per_activation () =
  let r = Atomizer.check (trace_of (Micro.locked_counter ~threads:2 ~incs:5 ~yield_at_loop:false)) in
  (* Each worker activation is flagged once, not once per iteration. *)
  Alcotest.(check bool) "warnings bounded by activations" true
    (List.length r.Atomizer.warnings <= r.Atomizer.activations)

let test_atomic_block_checked () =
  let src =
    "var x = 0; var y = 0; lock m; lock k;\n\
     fn worker() { atomic { sync (m) { x = x + 1; } sync (k) { y = y + 1; } } }\n\
     fn main() { var t1 = spawn worker(); var t2 = spawn worker(); join t1; join t2; }"
  in
  let r = Atomizer.check (trace_of src) in
  let block_warnings =
    List.filter
      (fun w -> match w.Atomizer.txn with Atomizer.Block _ -> true | _ -> false)
      r.Atomizer.warnings
  in
  Alcotest.(check bool) "atomic block flagged" true (block_warnings <> [])

(* --- Conflict-graph serializability ------------------------------------ *)

let test_serializable_trace () =
  let r = Conflict.check (trace_of (Micro.single_transaction ~threads:3)) in
  Alcotest.(check bool) "acyclic" false r.Conflict.cyclic;
  Alcotest.(check bool) "has transactions" true (r.Conflict.transactions > 0)

(* Hand-built classic non-serializable history: r1 r2 w1 w2 inside two
   concurrent activations of the same function. *)
let rw_cycle_trace () =
  let loc = Coop_trace.Loc.make ~func:0 ~pc:0 ~line:1 in
  let ev tid op = Coop_trace.Event.make ~tid ~op ~loc in
  let g0 = Coop_trace.Event.Global 0 in
  Coop_trace.Trace.of_list
    [ ev 1 (Coop_trace.Event.Enter 0); ev 2 (Coop_trace.Event.Enter 0);
      ev 1 (Coop_trace.Event.Read g0); ev 2 (Coop_trace.Event.Read g0);
      ev 1 (Coop_trace.Event.Write g0); ev 2 (Coop_trace.Event.Write g0);
      ev 1 (Coop_trace.Event.Exit 0); ev 2 (Coop_trace.Event.Exit 0) ]

let test_nonserializable_cycle () =
  let r = Conflict.check (rw_cycle_trace ()) in
  Alcotest.(check bool) "crafted cycle detected" true r.Conflict.cyclic;
  (* And the same shape arises from a real execution when the scheduler
     alternates threads instruction by instruction. *)
  let prog = Compile.source (Micro.racy_counter ~threads:2 ~incs:2) in
  let found = ref false in
  for seed = 0 to 60 do
    let _, trace =
      Runner.record ~max_steps:100_000 ~sched:(Sched.random ~seed ()) prog
    in
    if (Conflict.check trace).Conflict.cyclic then found := true
  done;
  Alcotest.(check bool) "cycle found under some schedule" true !found

let test_cycle_witness_nonempty () =
  let r = Conflict.check (rw_cycle_trace ()) in
  let w = r.Conflict.cycle_witness in
  Alcotest.(check bool) "witness nodes" true (List.length w >= 2);
  Alcotest.(check int) "witness has no duplicates"
    (List.length w)
    (List.length (List.sort_uniq Int.compare w))

let suite =
  [
    Alcotest.test_case "single transaction atomic" `Quick test_single_transaction_atomic;
    Alcotest.test_case "check-then-act not atomic" `Quick test_check_then_act_not_atomic;
    Alcotest.test_case "atomicity stricter than cooperability" `Quick
      test_atomicity_stricter_than_cooperability;
    Alcotest.test_case "yields ignored by atomicity" `Quick test_yield_not_a_boundary_for_atomicity;
    Alcotest.test_case "activations counted" `Quick test_activations_counted;
    Alcotest.test_case "one warning per activation" `Quick test_one_warning_per_activation;
    Alcotest.test_case "atomic blocks checked" `Quick test_atomic_block_checked;
    Alcotest.test_case "serializable trace" `Quick test_serializable_trace;
    Alcotest.test_case "non-serializable cycle" `Quick test_nonserializable_cycle;
    Alcotest.test_case "cycle witness" `Quick test_cycle_witness_nonempty;
  ]
