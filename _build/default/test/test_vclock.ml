open Coop_race
open QCheck2

let gen_clock =
  Gen.map Vclock.of_list
    (Gen.list_size (Gen.int_bound 6)
       (Gen.pair (Gen.int_bound 5) (Gen.int_bound 20)))

let print_clock c = Format.asprintf "%a" Vclock.pp c

let test_empty () =
  Alcotest.(check int) "absent is 0" 0 (Vclock.get Vclock.empty 3);
  Alcotest.(check bool) "empty leq anything" true
    (Vclock.leq Vclock.empty (Vclock.of_list [ (0, 5) ]))

let test_set_get () =
  let c = Vclock.set Vclock.empty 2 7 in
  Alcotest.(check int) "set value" 7 (Vclock.get c 2);
  Alcotest.(check int) "others zero" 0 (Vclock.get c 0);
  let c = Vclock.set c 2 0 in
  Alcotest.(check bool) "zero normalizes to empty" true (Vclock.equal c Vclock.empty)

let test_tick () =
  let c = Vclock.tick (Vclock.tick Vclock.empty 1) 1 in
  Alcotest.(check int) "ticked twice" 2 (Vclock.get c 1)

let test_join_concrete () =
  let a = Vclock.of_list [ (0, 3); (1, 1) ] in
  let b = Vclock.of_list [ (1, 4); (2, 2) ] in
  let j = Vclock.join a b in
  Alcotest.(check int) "comp 0" 3 (Vclock.get j 0);
  Alcotest.(check int) "comp 1" 4 (Vclock.get j 1);
  Alcotest.(check int) "comp 2" 2 (Vclock.get j 2)

let test_leq_concrete () =
  let a = Vclock.of_list [ (0, 1) ] in
  let b = Vclock.of_list [ (0, 2); (1, 1) ] in
  Alcotest.(check bool) "a leq b" true (Vclock.leq a b);
  Alcotest.(check bool) "b not leq a" false (Vclock.leq b a)

let prop name gen f = QCheck_alcotest.to_alcotest (Test.make ~name ~count:300 gen f)

let qsuite =
  [
    prop "join commutative" (Gen.pair gen_clock gen_clock) (fun (a, b) ->
        Vclock.equal (Vclock.join a b) (Vclock.join b a));
    prop "join associative" (Gen.triple gen_clock gen_clock gen_clock)
      (fun (a, b, c) ->
        Vclock.equal
          (Vclock.join a (Vclock.join b c))
          (Vclock.join (Vclock.join a b) c));
    prop "join idempotent" gen_clock (fun a -> Vclock.equal (Vclock.join a a) a);
    prop "join is upper bound" (Gen.pair gen_clock gen_clock) (fun (a, b) ->
        let j = Vclock.join a b in
        Vclock.leq a j && Vclock.leq b j);
    prop "join is least upper bound" (Gen.triple gen_clock gen_clock gen_clock)
      (fun (a, b, u) ->
        QCheck2.assume (Vclock.leq a u && Vclock.leq b u);
        Vclock.leq (Vclock.join a b) u);
    prop "leq reflexive" gen_clock (fun a -> Vclock.leq a a);
    prop "leq antisymmetric" (Gen.pair gen_clock gen_clock) (fun (a, b) ->
        QCheck2.assume (Vclock.leq a b && Vclock.leq b a);
        Vclock.equal a b);
    prop "leq transitive" (Gen.triple gen_clock gen_clock gen_clock)
      (fun (a, b, c) ->
        QCheck2.assume (Vclock.leq a b && Vclock.leq b c);
        Vclock.leq a c);
    prop "tick strictly increases" (Gen.pair gen_clock (Gen.int_bound 5))
      (fun (a, t) ->
        let a' = Vclock.tick a t in
        Vclock.leq a a' && not (Vclock.leq a' a));
    prop "to_list/of_list roundtrip" gen_clock (fun a ->
        Vclock.equal a (Vclock.of_list (Vclock.to_list a)));
    prop "compare consistent with equal" (Gen.pair gen_clock gen_clock)
      (fun (a, b) -> Vclock.equal a b = (Vclock.compare a b = 0));
  ]

let test_epoch_pack () =
  let e = Epoch.make ~tid:3 ~clock:42 in
  Alcotest.(check int) "tid" 3 (Epoch.tid e);
  Alcotest.(check int) "clock" 42 (Epoch.clock e);
  Alcotest.(check bool) "not bottom" false (Epoch.is_bottom e);
  Alcotest.(check bool) "bottom is bottom" true (Epoch.is_bottom Epoch.bottom)

let test_epoch_leq () =
  let c = Vclock.of_list [ (2, 5) ] in
  Alcotest.(check bool) "bottom leq" true (Epoch.leq Epoch.bottom c);
  Alcotest.(check bool) "leq same" true (Epoch.leq (Epoch.make ~tid:2 ~clock:5) c);
  Alcotest.(check bool) "leq below" true (Epoch.leq (Epoch.make ~tid:2 ~clock:4) c);
  Alcotest.(check bool) "not leq above" false (Epoch.leq (Epoch.make ~tid:2 ~clock:6) c);
  Alcotest.(check bool) "other thread" false (Epoch.leq (Epoch.make ~tid:0 ~clock:1) c)

let test_epoch_of_thread () =
  let c = Vclock.of_list [ (1, 9) ] in
  let e = Epoch.of_thread 1 c in
  Alcotest.(check int) "clock snapshot" 9 (Epoch.clock e);
  Alcotest.(check string) "pp" "9@1" (Format.asprintf "%a" Epoch.pp e);
  Alcotest.(check string) "pp bottom" "_|_" (Format.asprintf "%a" Epoch.pp Epoch.bottom)

let suite =
  [
    Alcotest.test_case "empty clock" `Quick test_empty;
    Alcotest.test_case "set/get" `Quick test_set_get;
    Alcotest.test_case "tick" `Quick test_tick;
    Alcotest.test_case "join concrete" `Quick test_join_concrete;
    Alcotest.test_case "leq concrete" `Quick test_leq_concrete;
    Alcotest.test_case "epoch packing" `Quick test_epoch_pack;
    Alcotest.test_case "epoch leq" `Quick test_epoch_leq;
    Alcotest.test_case "epoch of_thread and pp" `Quick test_epoch_of_thread;
  ]
  @ qsuite

let _ = print_clock
