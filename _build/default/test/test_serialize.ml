open Coop_trace
open Coop_lang
open Coop_runtime

let events_equal (a : Event.t) (b : Event.t) =
  a.Event.tid = b.Event.tid && a.Event.op = b.Event.op
  && Loc.equal a.Event.loc b.Event.loc

let traces_equal a b =
  Trace.length a = Trace.length b
  && List.for_all2 events_equal (Trace.to_list a) (Trace.to_list b)

let test_roundtrip_concrete () =
  let loc = Loc.make ~func:1 ~pc:7 ~line:12 in
  let es =
    [ Event.make ~tid:0 ~op:(Event.Read (Event.Global 3)) ~loc;
      Event.make ~tid:1 ~op:(Event.Write (Event.Cell (2, 14))) ~loc;
      Event.make ~tid:0 ~op:(Event.Acquire 5) ~loc;
      Event.make ~tid:0 ~op:(Event.Release 5) ~loc;
      Event.make ~tid:0 ~op:(Event.Fork 3) ~loc;
      Event.make ~tid:0 ~op:(Event.Join 3) ~loc;
      Event.make ~tid:2 ~op:Event.Yield ~loc;
      Event.make ~tid:2 ~op:(Event.Enter 0) ~loc;
      Event.make ~tid:2 ~op:(Event.Exit 0) ~loc;
      Event.make ~tid:2 ~op:Event.Atomic_begin ~loc;
      Event.make ~tid:2 ~op:Event.Atomic_end ~loc;
      Event.make ~tid:2 ~op:(Event.Out (-42)) ~loc ]
  in
  let t = Trace.of_list es in
  let t' = Serialize.of_string (Serialize.to_string t) in
  Alcotest.(check bool) "round trip" true (traces_equal t t')

let test_roundtrip_real_trace () =
  let prog = Compile.source (Coop_workloads.Micro.producer_consumer ~items:2) in
  let _, trace = Runner.record ~sched:(Sched.random ~seed:5 ()) prog in
  let trace' = Serialize.of_string (Serialize.to_string trace) in
  Alcotest.(check bool) "real trace round trips" true (traces_equal trace trace');
  (* Analyses agree on the reloaded trace. *)
  let r = Coop_core.Cooperability.check trace in
  let r' = Coop_core.Cooperability.check trace' in
  Alcotest.(check int) "same violations"
    (List.length r.Coop_core.Cooperability.violations)
    (List.length r'.Coop_core.Cooperability.violations)

let test_save_load () =
  let path = Filename.temp_file "coop" ".trace" in
  let prog = Compile.source "var x = 0; fn main() { x = 1; print(x); }" in
  let _, trace = Runner.record ~sched:Sched.sequential prog in
  Serialize.save path trace;
  let trace' = Serialize.load path in
  Sys.remove path;
  Alcotest.(check bool) "file round trip" true (traces_equal trace trace')

let test_parse_errors () =
  let bad input =
    match Serialize.of_string input with
    | _ -> Alcotest.fail ("expected parse error for: " ^ input)
    | exception Serialize.Parse_error (_, _) -> ()
  in
  bad "nonsense";
  bad "0 rd";
  bad "0 rd g1";
  bad "0 rd g1 @ 1 2";
  bad "0 frob 3 @ 0 0 0";
  bad "x rd g1 @ 0 0 0"

let test_blank_lines_ignored () =
  let t = Serialize.of_string "\n0 yield @ 0 0 1\n\n\n" in
  Alcotest.(check int) "one event" 1 (Trace.length t)

let prop_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"serialize round trip on random traces"
       ~count:200 ~print:Gen.print_trace Gen.gen_trace (fun trace ->
         traces_equal trace (Serialize.of_string (Serialize.to_string trace))))

let suite =
  [
    Alcotest.test_case "concrete round trip" `Quick test_roundtrip_concrete;
    Alcotest.test_case "real trace round trip" `Quick test_roundtrip_real_trace;
    Alcotest.test_case "save/load" `Quick test_save_load;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "blank lines ignored" `Quick test_blank_lines_ignored;
    prop_roundtrip;
  ]
