open Coop_trace
open Coop_race

let loc = Loc.make ~func:0 ~pc:0 ~line:1

let ev tid op = Event.make ~tid ~op ~loc

let g0 = Event.Global 0

let test_virgin_exclusive () =
  let t = Lockset.create () in
  Alcotest.(check bool) "virgin" true (Lockset.state_of t g0 = Lockset.Virgin);
  ignore (Lockset.handle t (ev 0 (Event.Write g0)));
  Alcotest.(check bool) "exclusive" true (Lockset.state_of t g0 = Lockset.Exclusive 0);
  ignore (Lockset.handle t (ev 0 (Event.Read g0)));
  Alcotest.(check bool) "still exclusive" true
    (Lockset.state_of t g0 = Lockset.Exclusive 0)

let test_consistent_locking_clean () =
  let t =
    Trace.of_list
      [ ev 0 (Event.Acquire 0); ev 0 (Event.Write g0); ev 0 (Event.Release 0);
        ev 1 (Event.Acquire 0); ev 1 (Event.Write g0); ev 1 (Event.Release 0) ]
  in
  Alcotest.(check int) "no warnings" 0 (List.length (Lockset.run t))

let test_unprotected_sharing_flagged () =
  let t = Trace.of_list [ ev 0 (Event.Write g0); ev 1 (Event.Write g0) ] in
  Alcotest.(check int) "warned" 1 (List.length (Lockset.run t))

let test_inconsistent_locks_flagged () =
  let t =
    Trace.of_list
      [ ev 0 (Event.Acquire 0); ev 0 (Event.Write g0); ev 0 (Event.Release 0);
        ev 1 (Event.Acquire 1); ev 1 (Event.Write g0); ev 1 (Event.Release 1) ]
  in
  Alcotest.(check int) "empty intersection" 1 (List.length (Lockset.run t))

let test_warn_once_per_var () =
  let t =
    Trace.of_list
      [ ev 0 (Event.Write g0); ev 1 (Event.Write g0); ev 0 (Event.Write g0);
        ev 1 (Event.Write g0) ]
  in
  Alcotest.(check int) "single warning" 1 (List.length (Lockset.run t))

let test_read_shared_no_warning () =
  (* Multiple readers with no writer anywhere never warn (Shared state). *)
  let t =
    Trace.of_list
      [ ev 0 (Event.Read g0); ev 1 (Event.Read g0); ev 2 (Event.Read g0) ]
  in
  Alcotest.(check int) "read-only sharing ok" 0 (List.length (Lockset.run t));
  (* But an unprotected initializing write followed by foreign reads is a
     warning: the textbook initialization pattern is only safe when some
     ordering (e.g. fork) exists, which locksets cannot see. *)
  let t2 =
    Trace.of_list
      [ ev 0 (Event.Write g0); ev 1 (Event.Read g0); ev 2 (Event.Read g0) ]
  in
  Alcotest.(check int) "written-then-shared warns" 1 (List.length (Lockset.run t2))

let test_candidate_refinement () =
  let t = Lockset.create () in
  List.iter
    (fun e -> ignore (Lockset.handle t e))
    [ ev 0 (Event.Acquire 0); ev 0 (Event.Acquire 1); ev 0 (Event.Write g0);
      ev 0 (Event.Release 1); ev 0 (Event.Release 0);
      ev 1 (Event.Acquire 0); ev 1 (Event.Write g0) ];
  Alcotest.(check (option (list int))) "refined to common lock" (Some [ 0 ])
    (Lockset.candidate_locks t g0)

let test_coarser_than_fasttrack () =
  (* Fork/join ordering is invisible to locksets: FastTrack says race-free,
     Eraser warns. This is the precision gap the ablation measures. *)
  let t =
    Trace.of_list
      [ ev 0 (Event.Write g0); ev 0 (Event.Fork 1); ev 1 (Event.Write g0) ]
  in
  Alcotest.(check int) "fasttrack: clean" 0 (List.length (Fasttrack.run t));
  Alcotest.(check int) "lockset: warns" 1 (List.length (Lockset.run t))

let prop_sound_wrt_fasttrack =
  (* Whatever FastTrack flags, the lockset detector flags too (on feasible
     traces): HB-races are always lockset violations. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"lockset racy set contains fasttrack racy set"
       ~count:300 ~print:Gen.print_trace Gen.gen_trace (fun trace ->
         let ft = Fasttrack.racy_vars_of_trace trace in
         let ls = Lockset.racy_vars_of_trace trace in
         Event.Var_set.subset ft ls))

let suite =
  [
    Alcotest.test_case "virgin/exclusive transitions" `Quick test_virgin_exclusive;
    Alcotest.test_case "consistent locking clean" `Quick test_consistent_locking_clean;
    Alcotest.test_case "unprotected sharing flagged" `Quick test_unprotected_sharing_flagged;
    Alcotest.test_case "inconsistent locks flagged" `Quick test_inconsistent_locks_flagged;
    Alcotest.test_case "warn once per variable" `Quick test_warn_once_per_var;
    Alcotest.test_case "read-shared is silent" `Quick test_read_shared_no_warning;
    Alcotest.test_case "candidate refinement" `Quick test_candidate_refinement;
    Alcotest.test_case "coarser than fasttrack" `Quick test_coarser_than_fasttrack;
    prop_sound_wrt_fasttrack;
  ]
