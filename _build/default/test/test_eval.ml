open Coop_lang
open Coop_runtime

(* --- Direct evaluator tests -------------------------------------------- *)

let eval src = Eval.run (Parser.program src)

let test_basic () =
  let o = eval "var g = 3; fn main() { g = g * 2 + 1; print(g); }" in
  Alcotest.(check (list int)) "output" [ 7 ] o.Eval.output;
  Alcotest.(check (list int)) "globals" [ 7 ] o.Eval.globals;
  Alcotest.(check bool) "no fault" true (o.Eval.fault = None)

let test_functions_and_arrays () =
  let o =
    eval
      "array a[3]; fn fill(k) { a[k] = k * k; return a[k]; } fn main() { var s = fill(0) + fill(1) + fill(2); print(s); }"
  in
  Alcotest.(check (list int)) "output" [ 5 ] o.Eval.output

let test_faults () =
  Alcotest.(check bool) "div by zero" true ((eval "fn main() { print(1/0); }").Eval.fault <> None);
  Alcotest.(check bool) "oob" true ((eval "array a[1]; fn main() { a[3] = 1; }").Eval.fault <> None);
  Alcotest.(check bool) "assert" true ((eval "fn main() { assert(0); }").Eval.fault <> None)

let test_fuel () =
  let o = Eval.run ~fuel:100 (Parser.program "fn main() { while (1) { } }") in
  Alcotest.(check bool) "fuel exhaustion is a fault" true (o.Eval.fault <> None)

let test_unsupported () =
  (match eval "fn w() { } fn main() { spawn w(); }" with
  | _ -> Alcotest.fail "expected Unsupported"
  | exception Eval.Unsupported _ -> ())

let test_scoping_matches_vm () =
  let src =
    "var g = 10; fn main() { var x = 1; { var x = 2; g = g + x; } g = g + x; print(g); }"
  in
  let o = eval src in
  Alcotest.(check (list int)) "inner then outer" [ 13 ] o.Eval.output

(* --- Differential fuzzing: evaluator vs compiler+VM --------------------- *)

(* Generate well-formed, terminating, sequential programs: straight-line
   arithmetic over a few globals, one array, locals, if/else, bounded
   arithmetic (expressions avoid division to dodge fault-ordering
   differences; faults still compare as a boolean). *)
let gen_seq_program =
  let open QCheck2.Gen in
  let var = oneofl [ "g0"; "g1"; "g2" ] in
  let local = oneofl [ "l0"; "l1" ] in
  let rec expr n =
    if n = 0 then
      oneof [ map (fun i -> Ast.Int i) (int_bound 20);
              map (fun v -> Ast.Var v) var;
              map (fun v -> Ast.Var v) local ]
    else
      oneof
        [ map (fun i -> Ast.Int i) (int_bound 20);
          map (fun v -> Ast.Var v) var;
          (let* i = expr 0 in
           return (Ast.Index ("arr", Ast.Binary (Ast.Mod, Ast.Unary (Ast.Neg, Ast.Unary (Ast.Neg, i)), Ast.Int 4))));
          (let* op = oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Lt; Ast.Eq; Ast.And; Ast.Or ] in
           let* a = expr (n - 1) in
           let* b = expr (n - 1) in
           return (Ast.Binary (op, a, b)));
          (let* e = expr (n - 1) in
           return (Ast.Unary (Ast.Neg, e))) ]
  in
  let idx_expr i = Ast.Binary (Ast.Mod, Ast.Binary (Ast.Mul, i, i), Ast.Int 4) in
  let stmt =
    oneof
      [ (let* v = var in
         let* e = expr 2 in
         return (Ast.stmt (Ast.Assign (v, e))));
        (let* v = local in
         let* e = expr 2 in
         return (Ast.stmt (Ast.Assign (v, e))));
        (let* i = expr 1 in
         let* e = expr 2 in
         return (Ast.stmt (Ast.Store ("arr", idx_expr i, e))));
        (let* e = expr 2 in
         return (Ast.stmt (Ast.Print e)));
        (let* c = expr 2 in
         let* t = expr 1 in
         let* f = expr 1 in
         return
           (Ast.stmt
              (Ast.If
                 ( c,
                   [ Ast.stmt (Ast.Print t) ],
                   [ Ast.stmt (Ast.Print f) ] )))) ]
  in
  let* body = list_size (int_range 1 12) stmt in
  let prologue =
    [ Ast.stmt (Ast.Local ("l0", Ast.Int 0)); Ast.stmt (Ast.Local ("l1", Ast.Int 1)) ]
  in
  return
    {
      Ast.decls = [ Ast.Gvar ("g0", 1); Ast.Gvar ("g1", 2); Ast.Gvar ("g2", 3);
                    Ast.Garray ("arr", 4) ];
      funcs = [ { Ast.fname = "main"; params = []; body = prologue @ body; fline = 1 } ];
    }

let vm_outcome prog_ast =
  let prog = Compile.program prog_ast in
  let o =
    Runner.run ~max_steps:1_000_000 ~sched:Sched.sequential
      ~sink:Coop_trace.Trace.Sink.ignore prog
  in
  let st = o.Runner.final in
  ( Vm.output st,
    List.init prog.Bytecode.n_globals (Vm.global_value st),
    Vm.failures st <> [] )

let prop_vm_matches_evaluator =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"compiler+VM agree with reference evaluator"
       ~count:500 ~print:Pretty.program gen_seq_program (fun p ->
         let e = Eval.run p in
         let out, globals, faulted = vm_outcome p in
         if e.Eval.fault <> None then faulted
         else
           (not faulted) && out = e.Eval.output && globals = e.Eval.globals))

let suite =
  [
    Alcotest.test_case "basic evaluation" `Quick test_basic;
    Alcotest.test_case "functions and arrays" `Quick test_functions_and_arrays;
    Alcotest.test_case "faults" `Quick test_faults;
    Alcotest.test_case "fuel bound" `Quick test_fuel;
    Alcotest.test_case "unsupported constructs" `Quick test_unsupported;
    Alcotest.test_case "scoping" `Quick test_scoping_matches_vm;
    prop_vm_matches_evaluator;
  ]
