(* QCheck generators shared by the property-based suites. *)

open QCheck2
open Coop_trace
open Coop_lang

(* ------------------------------------------------------------------ *)
(* CoopLang AST generators (for the pretty/parse round trip).          *)
(* ------------------------------------------------------------------ *)

let keywords =
  [ "var"; "array"; "lock"; "fn"; "if"; "else"; "while"; "sync"; "atomic";
    "yield"; "acquire"; "release"; "spawn"; "join"; "print"; "assert";
    "return"; "true"; "false" ]

let gen_ident =
  let open Gen in
  let* first = oneofl [ "x"; "y"; "z"; "foo"; "bar"; "n"; "acc"; "tmp" ] in
  let* suffix = int_bound 99 in
  let name = Printf.sprintf "%s%d" first suffix in
  return (if List.mem name keywords then name ^ "_" else name)

let gen_binop =
  Gen.oneofl
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Lt; Ast.Le; Ast.Gt;
      Ast.Ge; Ast.Eq; Ast.Ne; Ast.And; Ast.Or ]

let gen_unop = Gen.oneofl [ Ast.Neg; Ast.Not ]

let rec gen_expr n =
  let open Gen in
  if n <= 0 then
    oneof
      [ map (fun i -> Ast.Int i) (int_bound 1000);
        map (fun b -> Ast.Bool b) bool;
        map (fun x -> Ast.Var x) gen_ident ]
  else
    oneof
      [ map (fun i -> Ast.Int i) (int_bound 1000);
        map (fun x -> Ast.Var x) gen_ident;
        (let* a = gen_ident in
         let* i = gen_expr (n / 2) in
         return (Ast.Index (a, i)));
        (let* op = gen_unop in
         let* e = gen_expr (n - 1) in
         return (Ast.Unary (op, e)));
        (let* op = gen_binop in
         let* a = gen_expr (n / 2) in
         let* b = gen_expr (n / 2) in
         return (Ast.Binary (op, a, b)));
        (let* f = gen_ident in
         let* args = list_size (int_bound 3) (gen_expr (n / 3)) in
         return (Ast.Call (f, args)));
        (let* f = gen_ident in
         let* args = list_size (int_bound 2) (gen_expr (n / 3)) in
         return (Ast.Spawn (f, args))) ]

let gen_lock_ref n =
  let open Gen in
  let* lock = gen_ident in
  let* index = opt (gen_expr n) in
  return { Ast.lock; index }

let rec gen_stmt n =
  let open Gen in
  let leaf =
    oneof
      [ (let* x = gen_ident in
         let* e = gen_expr 2 in
         return (Ast.stmt (Ast.Local (x, e))));
        (let* x = gen_ident in
         let* e = gen_expr 2 in
         return (Ast.stmt (Ast.Assign (x, e))));
        (let* a = gen_ident in
         let* i = gen_expr 1 in
         let* e = gen_expr 2 in
         return (Ast.stmt (Ast.Store (a, i, e))));
        return (Ast.stmt Ast.Yield);
        (let* l = gen_lock_ref 1 in
         return (Ast.stmt (Ast.Acquire_stmt l)));
        (let* l = gen_lock_ref 1 in
         return (Ast.stmt (Ast.Release_stmt l)));
        (let* e = gen_expr 2 in
         return (Ast.stmt (Ast.Join_stmt e)));
        (let* e = gen_expr 2 in
         return (Ast.stmt (Ast.Print e)));
        (let* e = gen_expr 2 in
         return (Ast.stmt (Ast.Assert e)));
        (let* eo = opt (gen_expr 2) in
         return (Ast.stmt (Ast.Return eo)));
        (let* f = gen_ident in
         let* args = list_size (int_bound 2) (gen_expr 1) in
         return (Ast.stmt (Ast.Expr_stmt (Ast.Call (f, args))))) ]
  in
  if n <= 0 then leaf
  else
    oneof
      [ leaf;
        (let* c = gen_expr 2 in
         let* t = gen_block (n - 1) in
         let* e = gen_block (n - 1) in
         return (Ast.stmt (Ast.If (c, t, e))));
        (let* c = gen_expr 2 in
         let* b = gen_block (n - 1) in
         return (Ast.stmt (Ast.While (c, b))));
        (let* l = gen_lock_ref 1 in
         let* b = gen_block (n - 1) in
         return (Ast.stmt (Ast.Sync (l, b))));
        (let* b = gen_block (n - 1) in
         return (Ast.stmt (Ast.Atomic b))) ]

and gen_block n = Gen.list_size (Gen.int_bound 4) (gen_stmt n)

let gen_func =
  let open Gen in
  let* fname = gen_ident in
  let* params = list_size (int_bound 3) gen_ident in
  let* body = gen_block 2 in
  return { Ast.fname; params; body; fline = 0 }

let gen_decl =
  let open Gen in
  oneof
    [ (let* x = gen_ident in
       let* i = int_bound 100 in
       return (Ast.Gvar (x, i)));
      (let* a = gen_ident in
       let* n = int_range 1 64 in
       return (Ast.Garray (a, n)));
      (let* l = gen_ident in
       let* n = int_range 1 8 in
       return (Ast.Glock (l, n))) ]

let gen_program =
  let open Gen in
  let* decls = list_size (int_bound 5) gen_decl in
  let* funcs = list_size (int_bound 4) gen_func in
  return { Ast.decls; funcs }

(* ------------------------------------------------------------------ *)
(* Feasible trace generator (for FastTrack vs naive-HB agreement).     *)
(* ------------------------------------------------------------------ *)

(* Simulates a plausible multithreaded execution: locks are acquired only
   when free, released only by their holder, forks create fresh tids, joins
   target terminated threads. Accesses range over a small variable pool to
   make conflicts likely. *)
let gen_trace =
  let open Gen in
  let* n_events = int_range 5 120 in
  let* seed = int_bound 1_000_000 in
  return
    (let rng = Coop_util.Rng.create seed in
     let trace = Trace.create () in
     let alive = ref [ 0 ] in
     let finished = ref [] in
     let next_tid = ref 1 in
     let held = Hashtbl.create 8 in
     (* lock -> tid *)
     let vars = [| Event.Global 0; Event.Global 1; Event.Cell (0, 0);
                   Event.Cell (0, 1) |] in
     let locks = [| 0; 1; 2 |] in
     let loc = Loc.make ~func:0 ~pc:0 ~line:1 in
     let emit tid op = Trace.add trace (Event.make ~tid ~op ~loc) in
     for _ = 1 to n_events do
       match !alive with
       | [] -> ()
       | ts -> (
           let tid = Coop_util.Rng.pick rng (Array.of_list ts) in
           match Coop_util.Rng.int rng 10 with
           | 0 | 1 | 2 ->
               emit tid (Event.Read (Coop_util.Rng.pick rng vars))
           | 3 | 4 | 5 ->
               emit tid (Event.Write (Coop_util.Rng.pick rng vars))
           | 6 ->
               let l = Coop_util.Rng.pick rng locks in
               if not (Hashtbl.mem held l) then begin
                 Hashtbl.add held l tid;
                 emit tid (Event.Acquire l)
               end
           | 7 ->
               let mine =
                 Hashtbl.fold (fun l o acc -> if o = tid then l :: acc else acc)
                   held []
               in
               (match mine with
               | [] -> ()
               | l :: _ ->
                   Hashtbl.remove held l;
                   emit tid (Event.Release l))
           | 8 ->
               if !next_tid < 6 then begin
                 let child = !next_tid in
                 incr next_tid;
                 alive := child :: !alive;
                 emit tid (Event.Fork child)
               end
           | _ -> (
               match !finished with
               | [] ->
                   (* Retire a thread other than this one, if possible. *)
                   let others = List.filter (fun t -> t <> tid) !alive in
                   (match others with
                   | [] -> ()
                   | t :: _ ->
                       alive := List.filter (fun u -> u <> t) !alive;
                       (* Release its locks first so the trace stays
                          feasible (a dead thread cannot hold a lock another
                          thread later acquires). *)
                       Hashtbl.iter
                         (fun l o ->
                           if o = t then begin
                             Hashtbl.remove held l;
                             emit t (Event.Release l)
                           end)
                         (Hashtbl.copy held);
                       finished := t :: !finished)
               | f :: rest ->
                   finished := rest;
                   emit tid (Event.Join f)))
     done;
     trace)

let print_trace t = Format.asprintf "%a" Trace.pp t
