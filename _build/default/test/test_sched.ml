open Coop_runtime
open Coop_lang

let dummy_state = Vm.init (Compile.source "fn main() { }")

let ctx ?(last = None) ?(last_yielded = false) runnable =
  { Sched.state = dummy_state; runnable; last; last_yielded }

let test_sequential () =
  Alcotest.(check int) "lowest" 1 (Sched.sequential.Sched.pick (ctx [ 1; 2; 3 ]));
  Alcotest.(check int) "single" 7 (Sched.sequential.Sched.pick (ctx [ 7 ]))

let test_round_robin_quantum () =
  let s = Sched.round_robin ~quantum:2 () in
  let pick last runnable = s.Sched.pick (ctx ~last runnable) in
  Alcotest.(check int) "starts lowest" 0 (pick None [ 0; 1 ]);
  Alcotest.(check int) "stays within quantum" 0 (pick (Some 0) [ 0; 1 ]);
  Alcotest.(check int) "rotates after quantum" 1 (pick (Some 0) [ 0; 1 ]);
  Alcotest.(check int) "fresh quantum" 1 (pick (Some 1) [ 0; 1 ])

let test_round_robin_skips_blocked () =
  let s = Sched.round_robin ~quantum:10 () in
  let pick last runnable = s.Sched.pick (ctx ~last runnable) in
  ignore (pick None [ 0; 1; 2 ]);
  Alcotest.(check int) "skips to next when last not runnable" 2 (pick (Some 1) [ 0; 2 ]);
  Alcotest.(check int) "wraps" 0 (pick (Some 2) [ 0 ])

let test_round_robin_invalid () =
  Alcotest.check_raises "bad quantum"
    (Invalid_argument "Sched.round_robin: quantum must be positive") (fun () ->
      ignore (Sched.round_robin ~quantum:0 ()))

let test_random_deterministic () =
  let picks seed =
    let s = Sched.random ~seed () in
    List.init 50 (fun _ -> s.Sched.pick (ctx [ 0; 1; 2; 3 ]))
  in
  Alcotest.(check (list int)) "same seed same picks" (picks 5) (picks 5);
  Alcotest.(check bool) "different seeds differ" true (picks 5 <> picks 6)

let test_random_in_runnable () =
  let s = Sched.random ~seed:3 () in
  for _ = 1 to 100 do
    let t = s.Sched.pick (ctx [ 2; 5; 9 ]) in
    Alcotest.(check bool) "picked runnable" true (List.mem t [ 2; 5; 9 ])
  done

let test_cooperative_sticky () =
  let s = Sched.cooperative () in
  let pick ?(last_yielded = false) last runnable =
    s.Sched.pick (ctx ~last ~last_yielded runnable)
  in
  Alcotest.(check int) "starts lowest" 0 (pick None [ 0; 1 ]);
  Alcotest.(check int) "sticks to current" 0 (pick (Some 0) [ 0; 1 ]);
  Alcotest.(check int) "switches on yield" 1 (pick ~last_yielded:true (Some 0) [ 0; 1 ]);
  Alcotest.(check int) "switches when blocked" 1 (pick (Some 0) [ 1 ]);
  Alcotest.(check int) "wraps around" 0 (pick ~last_yielded:true (Some 1) [ 0; 1 ])

let test_pinned () =
  let s = Sched.pinned [ 2; 1; 1 ] in
  let pick runnable = s.Sched.pick (ctx runnable) in
  Alcotest.(check int) "first" 2 (pick [ 0; 1; 2 ]);
  Alcotest.(check int) "second" 1 (pick [ 0; 1; 2 ]);
  Alcotest.(check int) "third" 1 (pick [ 0; 1; 2 ]);
  Alcotest.(check int) "exhausted falls back" 0 (pick [ 0; 1; 2 ])

let test_record_replay () =
  (* Record a random schedule of a racy program, replay it with pinned, and
     check the behaviours coincide exactly. *)
  let prog =
    Compile.source (Coop_workloads.Micro.racy_counter ~threads:3 ~incs:2)
  in
  let decisions, sched = Sched.recorded (Sched.random ~seed:99 ()) in
  let o1 =
    Runner.run ~sched ~sink:Coop_trace.Trace.Sink.ignore prog
  in
  let o2 =
    Runner.run ~sched:(Sched.pinned (decisions ()))
      ~sink:Coop_trace.Trace.Sink.ignore prog
  in
  Alcotest.(check bool) "identical behaviour" true
    (Behavior.equal (Runner.behavior_of o1) (Runner.behavior_of o2));
  Alcotest.(check int) "identical step count" o1.Runner.steps o2.Runner.steps

let test_pinned_invalid_choice () =
  let s = Sched.pinned [ 9 ] in
  Alcotest.(check int) "invalid choice falls back" 0
    (s.Sched.pick (ctx [ 0; 1 ]))

let test_pct_deterministic () =
  let picks seed =
    let s = Sched.pct ~seed ~depth:3 ~change_span:100 () in
    List.init 80 (fun i -> s.Sched.pick (ctx ~last:(Some (i mod 3)) [ 0; 1; 2 ]))
  in
  Alcotest.(check (list int)) "same seed same schedule" (picks 4) (picks 4)

let test_pct_priority_based () =
  (* With no change points (depth 1), the same thread keeps running while
     runnable: strict priority scheduling. *)
  let s = Sched.pct ~seed:9 ~depth:1 ~change_span:100 () in
  let first = s.Sched.pick (ctx [ 0; 1; 2 ]) in
  for _ = 1 to 20 do
    Alcotest.(check int) "sticks to highest priority" first
      (s.Sched.pick (ctx ~last:(Some first) [ 0; 1; 2 ]))
  done

let test_pct_in_runnable () =
  let s = Sched.pct ~seed:5 ~depth:4 ~change_span:50 () in
  for i = 0 to 200 do
    let runnable = if i mod 2 = 0 then [ 0; 2 ] else [ 1; 2; 3 ] in
    let t = s.Sched.pick (ctx ~last:(Some (i mod 4)) runnable) in
    Alcotest.(check bool) "picked runnable" true (List.mem t runnable)
  done

let test_pct_demotes () =
  (* Across a long run with change points, the running thread must change at
     least once even though all threads stay runnable. *)
  let s = Sched.pct ~seed:3 ~depth:4 ~change_span:60 () in
  let seen = Hashtbl.create 4 in
  let last = ref None in
  for _ = 1 to 120 do
    let t = s.Sched.pick (ctx ~last:!last [ 0; 1; 2 ]) in
    Hashtbl.replace seen t ();
    last := Some t
  done;
  Alcotest.(check bool) "more than one thread ran" true (Hashtbl.length seen > 1)

let test_pct_invalid_depth () =
  Alcotest.check_raises "depth 0" (Invalid_argument "Sched.pct: depth must be >= 1")
    (fun () -> ignore (Sched.pct ~seed:1 ~depth:0 ~change_span:10 ()))

let suite =
  [
    Alcotest.test_case "pct determinism" `Quick test_pct_deterministic;
    Alcotest.test_case "pct strict priorities" `Quick test_pct_priority_based;
    Alcotest.test_case "pct stays in runnable" `Quick test_pct_in_runnable;
    Alcotest.test_case "pct demotes at change points" `Quick test_pct_demotes;
    Alcotest.test_case "pct invalid depth" `Quick test_pct_invalid_depth;
    Alcotest.test_case "sequential" `Quick test_sequential;
    Alcotest.test_case "round-robin quantum" `Quick test_round_robin_quantum;
    Alcotest.test_case "round-robin skips blocked" `Quick test_round_robin_skips_blocked;
    Alcotest.test_case "round-robin invalid quantum" `Quick test_round_robin_invalid;
    Alcotest.test_case "random determinism" `Quick test_random_deterministic;
    Alcotest.test_case "random stays in runnable" `Quick test_random_in_runnable;
    Alcotest.test_case "cooperative stickiness" `Quick test_cooperative_sticky;
    Alcotest.test_case "pinned replay" `Quick test_pinned;
    Alcotest.test_case "record and replay" `Quick test_record_replay;
    Alcotest.test_case "pinned invalid choice" `Quick test_pinned_invalid_choice;
  ]
