open Coop_lang
open Coop_core
open Coop_workloads

let verdict ?(with_inferred = true) src =
  let prog = Compile.source src in
  let yields =
    if with_inferred then (Infer.infer prog).Infer.yields
    else Coop_trace.Loc.Set.empty
  in
  Equivalence.compare ~yields ~max_states:200_000 prog

(* The reduction theorem, validated empirically: once the inferred yields are
   in place, preemptive and cooperative behaviour sets coincide. *)
let test_theorem_on_micro_programs () =
  List.iter
    (fun (name, src) ->
      let v = verdict src in
      Alcotest.(check bool) (name ^ ": preemptive within cooperative") true
        v.Equivalence.preemptive_subset;
      Alcotest.(check bool) (name ^ ": sets equal") true v.Equivalence.equal)
    [
      ("racy_counter", Micro.racy_counter ~threads:2 ~incs:2);
      ("locked_counter", Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:false);
      ("check_then_act", Micro.check_then_act ~threads:2);
      ("single_transaction", Micro.single_transaction ~threads:2);
      ("producer_consumer", Micro.producer_consumer ~items:2);
    ]

let test_without_yields_gap () =
  (* Without yields, the racy counter's preemptive behaviours strictly exceed
     the cooperative ones: cooperative reasoning would miss the lost
     updates. *)
  let v = verdict ~with_inferred:false (Micro.racy_counter ~threads:2 ~incs:2) in
  Alcotest.(check bool) "not equal" false v.Equivalence.equal;
  Alcotest.(check bool) "cooperative misses behaviours" true
    (Coop_runtime.Behavior.Set.cardinal v.Equivalence.cooperative.Coop_runtime.Explore.behaviors
    < Coop_runtime.Behavior.Set.cardinal v.Equivalence.preemptive.Coop_runtime.Explore.behaviors)

let test_deadlock_caveat () =
  (* The classic caveat of reduction-based reasoning: lock-order deadlocks
     are invisible cooperatively even though the program is "cooperable"
     (acquire-acquire is R R). The paper's theory assumes deadlock-freedom;
     we document the gap and test that it is real. *)
  let v = verdict (Micro.deadlock_prone ()) in
  Alcotest.(check bool) "deadlock breaks equality" false v.Equivalence.equal

let test_yields_add_no_preemptive_behaviors () =
  (* Injecting yields never changes the preemptive behaviour set: yields are
     no-ops under preemption. *)
  let src = Micro.racy_counter ~threads:2 ~incs:2 in
  let prog = Compile.source src in
  let without = Coop_runtime.Explore.run Coop_runtime.Explore.Preemptive prog in
  let yields = (Infer.infer prog).Infer.yields in
  let with_ = Coop_runtime.Explore.run ~yields Coop_runtime.Explore.Preemptive prog in
  Alcotest.(check bool) "same preemptive behaviours" true
    (Coop_runtime.Behavior.Set.equal without.Coop_runtime.Explore.behaviors
       with_.Coop_runtime.Explore.behaviors)

let test_pp_smoke () =
  let v = verdict (Micro.single_transaction ~threads:2) in
  let s = Format.asprintf "%a" Equivalence.pp v in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let suite =
  [
    Alcotest.test_case "reduction theorem on micro programs" `Slow test_theorem_on_micro_programs;
    Alcotest.test_case "gap without yields" `Quick test_without_yields_gap;
    Alcotest.test_case "deadlock caveat" `Quick test_deadlock_caveat;
    Alcotest.test_case "yields preserve preemptive behaviours" `Quick test_yields_add_no_preemptive_behaviors;
    Alcotest.test_case "pp" `Quick test_pp_smoke;
  ]
