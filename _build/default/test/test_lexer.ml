open Coop_lang

let toks src = List.map fst (Lexer.tokenize src)

let test_simple () =
  Alcotest.(check bool) "tokens" true
    (toks "var x = 42;"
    = [ Token.KW_VAR; Token.IDENT "x"; Token.ASSIGN; Token.INT 42; Token.SEMI;
        Token.EOF ])

let test_operators () =
  Alcotest.(check bool) "two-char ops" true
    (toks "<= >= == != && ||"
    = [ Token.LE; Token.GE; Token.EQEQ; Token.NE; Token.ANDAND; Token.OROR;
        Token.EOF ]);
  Alcotest.(check bool) "one-char ops" true
    (toks "+ - * / % < > ! ="
    = [ Token.PLUS; Token.MINUS; Token.STAR; Token.SLASH; Token.PERCENT;
        Token.LT; Token.GT; Token.BANG; Token.ASSIGN; Token.EOF ])

let test_keywords_vs_idents () =
  Alcotest.(check bool) "keyword" true (toks "while" = [ Token.KW_WHILE; Token.EOF ]);
  Alcotest.(check bool) "prefixed ident" true
    (toks "whilex" = [ Token.IDENT "whilex"; Token.EOF ]);
  Alcotest.(check bool) "underscore ident" true
    (toks "_foo" = [ Token.IDENT "_foo"; Token.EOF ])

let test_line_comments () =
  Alcotest.(check bool) "line comment skipped" true
    (toks "x // comment here\ny" = [ Token.IDENT "x"; Token.IDENT "y"; Token.EOF ])

let test_block_comments () =
  Alcotest.(check bool) "block comment skipped" true
    (toks "x /* multi\nline */ y" = [ Token.IDENT "x"; Token.IDENT "y"; Token.EOF ])

let test_line_numbers () =
  let ts = Lexer.tokenize "a\nb\n\nc" in
  let lines = List.map snd ts in
  Alcotest.(check (list int)) "line numbers" [ 1; 2; 4; 4 ] lines

let test_block_comment_lines () =
  let ts = Lexer.tokenize "/* one\ntwo */ x" in
  Alcotest.(check int) "line after comment" 2 (snd (List.hd ts))

let test_unterminated_comment () =
  (match Lexer.tokenize "/* never closed" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Lexer.Error (_, 1) -> ())

let test_bad_character () =
  (match Lexer.tokenize "x # y" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Lexer.Error (_, _) -> ())

let test_numbers () =
  Alcotest.(check bool) "multi-digit" true (toks "1234567" = [ Token.INT 1234567; Token.EOF ]);
  Alcotest.(check bool) "zero" true (toks "0" = [ Token.INT 0; Token.EOF ])

let suite =
  [
    Alcotest.test_case "simple declaration" `Quick test_simple;
    Alcotest.test_case "operators" `Quick test_operators;
    Alcotest.test_case "keywords vs identifiers" `Quick test_keywords_vs_idents;
    Alcotest.test_case "line comments" `Quick test_line_comments;
    Alcotest.test_case "block comments" `Quick test_block_comments;
    Alcotest.test_case "line numbers" `Quick test_line_numbers;
    Alcotest.test_case "block comment line counting" `Quick test_block_comment_lines;
    Alcotest.test_case "unterminated comment" `Quick test_unterminated_comment;
    Alcotest.test_case "bad character" `Quick test_bad_character;
    Alcotest.test_case "number literals" `Quick test_numbers;
  ]
