open Coop_lang
open Coop_runtime
open Coop_core
open Coop_workloads

let infer src = Infer.infer (Compile.source src)

let test_fixpoint_is_clean () =
  let src = Micro.locked_counter ~threads:2 ~incs:3 ~yield_at_loop:false in
  let prog = Compile.source src in
  let inf = Infer.infer prog in
  (* Fresh schedules not in the portfolio must also be clean with the
     inferred yields. *)
  List.iter
    (fun seed ->
      let _, trace =
        Runner.record ~yields:inf.Infer.yields ~max_steps:500_000
          ~sched:(Sched.random ~seed ()) prog
      in
      let r = Cooperability.check trace in
      Alcotest.(check int)
        (Printf.sprintf "clean under fresh seed %d" seed)
        0
        (List.length r.Cooperability.violations))
    [ 1234; 5678; 424242 ]

let test_locked_counter_one_yield () =
  let inf = infer (Micro.locked_counter ~threads:2 ~incs:3 ~yield_at_loop:false) in
  Alcotest.(check int) "exactly one yield" 1
    (Coop_trace.Loc.Set.cardinal inf.Infer.yields);
  Alcotest.(check bool) "found violations initially" true (inf.Infer.initial_violations > 0);
  Alcotest.(check int) "final check clean" 0 inf.Infer.final_check_violations

let test_already_cooperable_zero_yields () =
  let inf = infer (Micro.single_transaction ~threads:3) in
  Alcotest.(check int) "zero yields" 0 (Coop_trace.Loc.Set.cardinal inf.Infer.yields);
  Alcotest.(check int) "one round" 1 inf.Infer.rounds;
  Alcotest.(check int) "no initial violations" 0 inf.Infer.initial_violations

let test_yield_annotated_zero_yields () =
  let inf = infer (Micro.locked_counter ~threads:2 ~incs:3 ~yield_at_loop:true) in
  Alcotest.(check int) "nothing to infer" 0
    (Coop_trace.Loc.Set.cardinal inf.Infer.yields)

let test_base_yields_respected () =
  (* Seeding inference with the known answer means nothing new is inferred
     and the result excludes the seed. *)
  let src = Micro.locked_counter ~threads:2 ~incs:3 ~yield_at_loop:false in
  let prog = Compile.source src in
  let first = Infer.infer prog in
  let second = Infer.infer ~base_yields:first.Infer.yields prog in
  Alcotest.(check int) "no new yields" 0
    (Coop_trace.Loc.Set.cardinal second.Infer.yields)

let test_philo_single_yield () =
  let e = Option.get (Registry.find "philo") in
  let inf = Infer.infer (Registry.program_of ~threads:3 ~size:4 e) in
  Alcotest.(check int) "philo needs one yield" 1
    (Coop_trace.Loc.Set.cardinal inf.Infer.yields)

let test_monotone_rounds () =
  let inf = infer (Micro.check_then_act ~threads:3) in
  Alcotest.(check bool) "terminates quickly" true (inf.Infer.rounds <= 5)

let suite =
  [
    Alcotest.test_case "fixpoint is clean on fresh seeds" `Quick test_fixpoint_is_clean;
    Alcotest.test_case "locked counter: one yield" `Quick test_locked_counter_one_yield;
    Alcotest.test_case "cooperable program: zero yields" `Quick test_already_cooperable_zero_yields;
    Alcotest.test_case "annotated program: zero yields" `Quick test_yield_annotated_zero_yields;
    Alcotest.test_case "base yields respected" `Quick test_base_yields_respected;
    Alcotest.test_case "philo: one yield" `Quick test_philo_single_yield;
    Alcotest.test_case "inference terminates" `Quick test_monotone_rounds;
  ]
