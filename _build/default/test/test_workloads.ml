open Coop_lang
open Coop_runtime
open Coop_core
open Coop_workloads

(* Small parameters so the whole suite stays fast; behaviours are the same
   shape as the defaults. *)
let small (e : Registry.entry) =
  let threads = min 3 e.Registry.default_threads in
  let size = max 1 (e.Registry.default_size / 2) in
  (threads, size)

let run_with sched prog =
  Runner.run ~max_steps:3_000_000 ~sched ~sink:Coop_trace.Trace.Sink.ignore prog

let test_all_compile () =
  List.iter
    (fun (e : Registry.entry) ->
      let threads, size = small e in
      match Registry.program_of ~threads ~size e with
      | _ -> ()
      | exception exn ->
          Alcotest.fail
            (Printf.sprintf "%s failed to compile: %s" e.Registry.name
               (Printexc.to_string exn)))
    Registry.all

let test_all_terminate_without_faults () =
  List.iter
    (fun (e : Registry.entry) ->
      let threads, size = small e in
      let prog = Registry.program_of ~threads ~size e in
      List.iter
        (fun sched ->
          let o = run_with sched prog in
          Alcotest.(check bool)
            (Printf.sprintf "%s completes under %s" e.Registry.name
               sched.Sched.name)
            true
            (o.Runner.termination = Runner.Completed);
          Alcotest.(check int)
            (Printf.sprintf "%s has no faults" e.Registry.name)
            0
            (List.length (Vm.failures o.Runner.final)))
        [ Sched.random ~seed:11 (); Sched.round_robin ~quantum:3 ();
          Sched.cooperative () ])
    Registry.all

let test_outputs_schedule_independent () =
  (* Every workload is written to produce a deterministic observable result
     (that is the point of proper synchronization). *)
  List.iter
    (fun (e : Registry.entry) ->
      let threads, size = small e in
      let prog = Registry.program_of ~threads ~size e in
      let outputs =
        List.map
          (fun sched -> Vm.output (run_with sched prog).Runner.final)
          [ Sched.random ~seed:1 (); Sched.random ~seed:99 ();
            Sched.round_robin ~quantum:1 (); Sched.cooperative () ]
      in
      match outputs with
      | first :: rest ->
          List.iter
            (fun o ->
              Alcotest.(check (list int))
                (Printf.sprintf "%s deterministic output" e.Registry.name)
                first o)
            rest
      | [] -> assert false)
    Registry.all

let test_inference_converges_small () =
  List.iter
    (fun (e : Registry.entry) ->
      let threads, size = small e in
      let prog = Registry.program_of ~threads ~size e in
      let inf = Infer.infer ~max_steps:3_000_000 prog in
      Alcotest.(check int)
        (Printf.sprintf "%s inference reaches a clean fixpoint" e.Registry.name)
        0 inf.Infer.final_check_violations;
      Alcotest.(check bool)
        (Printf.sprintf "%s needs few yields" e.Registry.name)
        true
        (Coop_trace.Loc.Set.cardinal inf.Infer.yields <= 8))
    Registry.all

let test_registry_lookup () =
  Alcotest.(check int) "fourteen workloads" 14 (List.length Registry.all);
  Alcotest.(check bool) "find philo" true (Registry.find "philo" <> None);
  Alcotest.(check bool) "find nothing" true (Registry.find "nope" = None);
  Alcotest.(check int) "names count" 14 (List.length Registry.names)

let test_loc_counts () =
  List.iter
    (fun (e : Registry.entry) ->
      let loc = Registry.loc_count (Registry.source_of e) in
      Alcotest.(check bool)
        (Printf.sprintf "%s has a plausible size (%d LoC)" e.Registry.name loc)
        true
        (loc > 20 && loc < 400))
    Registry.all

let test_race_free_except_tsp () =
  (* tsp deliberately reads the bound without the lock; everything else is
     race-free by construction. *)
  List.iter
    (fun (e : Registry.entry) ->
      let threads, size = small e in
      let prog = Registry.program_of ~threads ~size e in
      let _, trace = Runner.record ~max_steps:3_000_000 ~sched:(Sched.random ~seed:23 ()) prog in
      let racy = Coop_race.Fasttrack.racy_vars_of_trace trace in
      let n = Coop_trace.Event.Var_set.cardinal racy in
      if e.Registry.name = "tsp" then
        Alcotest.(check int) "tsp has exactly the benign race" 1 n
      else
        Alcotest.(check int) (Printf.sprintf "%s race-free" e.Registry.name) 0 n)
    Registry.all

let test_micro_all_compile () =
  List.iter
    (fun (name, src) ->
      match Compile.source src with
      | _ -> ()
      | exception exn ->
          Alcotest.fail (name ^ ": " ^ Printexc.to_string exn))
    Micro.all

let suite =
  [
    Alcotest.test_case "all workloads compile" `Quick test_all_compile;
    Alcotest.test_case "all terminate without faults" `Slow test_all_terminate_without_faults;
    Alcotest.test_case "outputs schedule-independent" `Slow test_outputs_schedule_independent;
    Alcotest.test_case "inference converges" `Slow test_inference_converges_small;
    Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
    Alcotest.test_case "LoC counts plausible" `Quick test_loc_counts;
    Alcotest.test_case "race-free except tsp" `Slow test_race_free_except_tsp;
    Alcotest.test_case "micro programs compile" `Quick test_micro_all_compile;
  ]
