(* wait/notify monitor semantics, end to end: VM behaviour, happens-before
   edges, cooperability, and exploration. *)

open Coop_lang
open Coop_runtime
open Coop_core
open Coop_workloads

let run ?(sched = Sched.random ~seed:7 ()) src =
  let prog = Compile.source src in
  Runner.run ~max_steps:500_000 ~sched ~sink:Coop_trace.Trace.Sink.ignore prog

let test_handoff () =
  (* A waiting thread wakes only after the notify and sees the update. *)
  let src =
    "var x = 0; lock m;\n\
     fn waiter() { sync (m) { while (x == 0) { wait(m); } print(x); } }\n\
     fn main() { var t = spawn waiter(); yield; sync (m) { x = 42; notify(m); } join t; }"
  in
  List.iter
    (fun seed ->
      let o = run ~sched:(Sched.random ~seed ()) src in
      Alcotest.(check bool) "completed" true (o.Runner.termination = Runner.Completed);
      Alcotest.(check (list int)) "saw the write" [ 42 ] (Vm.output o.Runner.final))
    [ 1; 2; 3; 4; 5 ]

let test_wait_releases_lock () =
  (* If wait did not release the monitor, main could never acquire it and
     this would deadlock. The cooperative scheduler makes the ordering
     deterministic: main's yield hands control to the waiter, which waits
     (a yield point), handing control back for the notify. *)
  let o =
    run ~sched:(Sched.cooperative ())
      "var x = 0; lock m;\n\
       fn waiter() { sync (m) { wait(m); x = x + 1; } }\n\
       fn main() { var t = spawn waiter(); yield; sync (m) { notify(m); } join t; print(x); }"
  in
  Alcotest.(check bool) "completed" true (o.Runner.termination = Runner.Completed);
  Alcotest.(check (list int)) "resumed after notify" [ 1 ] (Vm.output o.Runner.final)

let test_lost_wakeup_deadlocks () =
  (* Waiting with nobody left to notify is a deadlock, and the runner
     reports it. *)
  let o = run "lock m; fn main() { sync (m) { wait(m); } }" in
  Alcotest.(check bool) "deadlock" true (o.Runner.termination = Runner.Deadlock)

let test_notify_all_wakes_everyone () =
  let src =
    "var go = 0; var done_ = 0; lock m;\n\
     fn waiter() { sync (m) { while (go == 0) { wait(m); } done_ = done_ + 1; } }\n\
     fn main() { var a = spawn waiter(); var b = spawn waiter(); var c = spawn waiter();\n\
     yield; sync (m) { go = 1; notifyall(m); } join a; join b; join c; print(done_); }"
  in
  List.iter
    (fun seed ->
      let o = run ~sched:(Sched.random ~seed ()) src in
      Alcotest.(check bool) "completed" true (o.Runner.termination = Runner.Completed);
      Alcotest.(check (list int)) "all three woke" [ 3 ] (Vm.output o.Runner.final))
    [ 11; 12; 13 ]

let test_notify_wakes_one () =
  (* With a single notify, exactly one of two waiters proceeds; the program
     then deadlocks with the second still waiting. *)
  let src =
    "var woke = 0; lock m;\n\
     fn waiter() { sync (m) { wait(m); woke = woke + 1; } }\n\
     fn main() { var a = spawn waiter(); var b = spawn waiter(); yield; yield;\n\
     sync (m) { notify(m); } join a; join b; }"
  in
  let saw_deadlock = ref false in
  for seed = 0 to 10 do
    let o = run ~sched:(Sched.random ~seed ()) src in
    if o.Runner.termination = Runner.Deadlock then begin
      saw_deadlock := true;
      Alcotest.(check int) "exactly one woke" 1 (Vm.global_value o.Runner.final 0)
    end
  done;
  Alcotest.(check bool) "single wakeup leaves one waiter" true !saw_deadlock

let test_wait_without_lock_faults () =
  let o = run "lock m; fn main() { wait(m); }" in
  Alcotest.(check int) "fault" 1 (List.length (Vm.failures o.Runner.final));
  let o2 = run "lock m; fn main() { notify(m); }" in
  Alcotest.(check int) "notify fault" 1 (List.length (Vm.failures o2.Runner.final))

let test_monitor_cell_deterministic () =
  let prog = Compile.source (Micro.monitor_cell ~items:3) in
  let outputs =
    List.map
      (fun sched ->
        let o = Runner.run ~max_steps:500_000 ~sched ~sink:Coop_trace.Trace.Sink.ignore prog in
        Alcotest.(check bool) "completed" true (o.Runner.termination = Runner.Completed);
        Alcotest.(check int) "no faults" 0 (List.length (Vm.failures o.Runner.final));
        Vm.output o.Runner.final)
      [ Sched.random ~seed:5 (); Sched.random ~seed:55 ();
        Sched.round_robin ~quantum:1 (); Sched.cooperative () ]
  in
  List.iter
    (fun o -> Alcotest.(check (list int)) "FIFO order" [ 0; 10; 20 ] o)
    outputs

let test_monitor_race_free () =
  let prog = Compile.source (Micro.monitor_cell ~items:3) in
  let _, trace = Runner.record ~max_steps:500_000 ~sched:(Sched.random ~seed:3 ()) prog in
  Alcotest.(check int) "wait/notify handoff is race-free" 0
    (Coop_trace.Event.Var_set.cardinal
       (Coop_race.Fasttrack.racy_vars_of_trace trace))

let test_monitor_cooperable_with_inference () =
  let prog = Compile.source (Micro.monitor_cell ~items:2) in
  let inf = Infer.infer prog in
  Alcotest.(check int) "inference converges" 0 inf.Infer.final_check_violations;
  (* waits are already yield points, so few extra yields are needed *)
  Alcotest.(check bool) "few yields" true
    (Coop_trace.Loc.Set.cardinal inf.Infer.yields <= 4)

let test_monitor_reduction_theorem () =
  let prog = Compile.source (Micro.monitor_cell ~items:2) in
  let inf = Infer.infer prog in
  let v = Equivalence.compare ~yields:inf.Infer.yields ~max_states:400_000 prog in
  Alcotest.(check bool) "behaviour sets equal" true v.Equivalence.equal

let test_monitor_dpor_agrees () =
  let prog = Compile.source (Micro.monitor_cell ~items:2) in
  let dfs = Explore.run ~max_states:400_000 Explore.Preemptive prog in
  let dpor = Dpor.run ~max_executions:400_000 prog in
  Alcotest.(check bool) "both complete" true (dfs.Explore.complete && dpor.Dpor.complete);
  Alcotest.(check bool) "same behaviours" true
    (Behavior.Set.equal dfs.Explore.behaviors dpor.Dpor.behaviors)

let suite =
  [
    Alcotest.test_case "notify handoff" `Quick test_handoff;
    Alcotest.test_case "wait releases the lock" `Quick test_wait_releases_lock;
    Alcotest.test_case "lost wakeup deadlocks" `Quick test_lost_wakeup_deadlocks;
    Alcotest.test_case "notifyall wakes everyone" `Quick test_notify_all_wakes_everyone;
    Alcotest.test_case "notify wakes exactly one" `Quick test_notify_wakes_one;
    Alcotest.test_case "wait/notify need the lock" `Quick test_wait_without_lock_faults;
    Alcotest.test_case "monitor cell deterministic" `Quick test_monitor_cell_deterministic;
    Alcotest.test_case "monitor cell race-free" `Quick test_monitor_race_free;
    Alcotest.test_case "monitor cell cooperable" `Quick test_monitor_cooperable_with_inference;
    Alcotest.test_case "monitor reduction theorem" `Slow test_monitor_reduction_theorem;
    Alcotest.test_case "monitor dpor agrees" `Slow test_monitor_dpor_agrees;
  ]
