open Coop_trace
open Coop_core

(* A tiny vocabulary for driving the automaton: symbolic mover sequences
   rendered as concrete events. Global 0 is racy (non mover), Global 1 is
   race-free (both mover). *)
type sym =
  | R
  | L
  | B
  | N
  | Y

let racy = Event.Var_set.singleton (Event.Global 0)

let event_of = function
  | R -> Event.Acquire 0
  | L -> Event.Release 0
  | B -> Event.Read (Event.Global 1)
  | N -> Event.Write (Event.Global 0)
  | Y -> Event.Yield

let drive tid syms =
  let a = Automaton.create () in
  List.iter
    (fun s ->
      ignore
        (Automaton.step a ~racy
           (Event.make ~tid ~op:(event_of s) ~loc:Loc.none)))
    syms;
  List.length (Automaton.violations a)

let check msg syms expected = Alcotest.(check int) msg expected (drive 0 syms)

let test_reducible_patterns () =
  check "empty" [] 0;
  check "R* N L*" [ R; R; N; L; L ] 0;
  check "R* L*" [ R; R; L; L ] 0;
  check "both movers anywhere" [ B; R; B; N; B; L; B ] 0;
  check "single N" [ N ] 0;
  check "single L" [ L ] 0;
  check "single R" [ R ] 0

let test_irreducible_patterns () =
  check "N N" [ N; N ] 1;
  check "L R" [ L; R ] 1;
  check "N R" [ N; R ] 1;
  check "L N" [ L; N ] 1;
  check "R N L N" [ R; N; L; N ] 1;
  check "N N N" [ N; N; N ] 2

let test_yield_resets () =
  check "N Y N" [ N; Y; N ] 0;
  check "L Y R" [ L; Y; R ] 0;
  check "R N L Y R N L" [ R; N; L; Y; R; N; L ] 0;
  check "yield mid-pattern" [ R; N; Y; N; L ] 0

let test_violation_recovery () =
  (* After a violation the automaton behaves as if a yield was inserted. *)
  check "N N then clean" [ N; N; L; B ] 1;
  check "L R then N ok" [ L; R; B; N; L ] 1

let test_threads_independent () =
  let a = Automaton.create () in
  let step tid s =
    ignore
      (Automaton.step a ~racy (Event.make ~tid ~op:(event_of s) ~loc:Loc.none))
  in
  step 0 N;
  (* thread 0 in Post *)
  step 1 R;
  (* thread 1 unaffected *)
  Alcotest.(check bool) "t0 post" true (Automaton.phase a 0 = Automaton.Post);
  Alcotest.(check bool) "t1 pre" true (Automaton.phase a 1 = Automaton.Pre);
  step 0 N;
  Alcotest.(check int) "only t0 violates" 1 (List.length (Automaton.violations a))

let test_violation_fields () =
  let a = Automaton.create () in
  let loc = Loc.make ~func:3 ~pc:7 ~line:42 in
  ignore (Automaton.step a ~racy (Event.make ~tid:5 ~op:(Event.Write (Event.Global 0)) ~loc:Loc.none));
  match Automaton.step a ~racy (Event.make ~tid:5 ~op:(Event.Write (Event.Global 0)) ~loc) with
  | Some v ->
      Alcotest.(check int) "tid" 5 v.Automaton.tid;
      Alcotest.(check bool) "loc" true (Loc.equal loc v.Automaton.loc);
      Alcotest.(check bool) "mover" true (v.Automaton.mover = Mover.Non)
  | None -> Alcotest.fail "expected violation"

(* Reference: a segment (between yields) is reducible iff it matches
   (R|B)* (N|L)? (L|B)*. *)
let segment_reducible syms =
  let rec post = function
    | [] -> true
    | (L | B) :: rest -> post rest
    | (R | N) :: _ -> false
    | Y :: _ -> assert false
  in
  let rec pre = function
    | [] -> true
    | (R | B) :: rest -> pre rest
    | (N | L) :: rest -> post rest
    | Y :: _ -> assert false
  in
  pre syms

let split_segments syms =
  let rec go acc cur = function
    | [] -> List.rev (List.rev cur :: acc)
    | Y :: rest -> go (List.rev cur :: acc) [] rest
    | s :: rest -> go acc (s :: cur) rest
  in
  go [] [] syms

let gen_syms =
  QCheck2.Gen.(list_size (int_bound 20) (oneofl [ R; L; B; N; Y ]))

let prop_matches_regex =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"automaton accepts exactly (R|B)*(N|L)?(L|B)* per segment"
       ~count:1000 gen_syms (fun syms ->
         let violations = drive 0 syms in
         let all_ok = List.for_all segment_reducible (split_segments syms) in
         (violations = 0) = all_ok))

let suite =
  [
    Alcotest.test_case "reducible patterns" `Quick test_reducible_patterns;
    Alcotest.test_case "irreducible patterns" `Quick test_irreducible_patterns;
    Alcotest.test_case "yield resets" `Quick test_yield_resets;
    Alcotest.test_case "violation recovery" `Quick test_violation_recovery;
    Alcotest.test_case "threads independent" `Quick test_threads_independent;
    Alcotest.test_case "violation fields" `Quick test_violation_fields;
    prop_matches_regex;
  ]
