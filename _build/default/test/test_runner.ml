open Coop_runtime
open Coop_lang
open Coop_workloads

let test_completed () =
  let prog = Compile.source "fn main() { print(1); }" in
  let o = Runner.run ~sched:Sched.sequential ~sink:Coop_trace.Trace.Sink.ignore prog in
  Alcotest.(check bool) "completed" true (o.Runner.termination = Runner.Completed)

let test_step_limit () =
  let prog = Compile.source "var x = 0; fn main() { while (1) { x = x + 1; } }" in
  let o =
    Runner.run ~max_steps:1000 ~sched:Sched.sequential
      ~sink:Coop_trace.Trace.Sink.ignore prog
  in
  Alcotest.(check bool) "step limit" true (o.Runner.termination = Runner.Step_limit);
  Alcotest.(check int) "steps counted" 1000 o.Runner.steps

let test_deadlock_detected () =
  (* Force the interleaving that deadlocks: t1 takes a, t2 takes b, then
     each waits for the other. Pinned decisions: run main until both spawned,
     then alternate. *)
  let prog = Compile.source (Micro.deadlock_prone ()) in
  let found = ref false in
  for seed = 0 to 30 do
    let o =
      Runner.run ~max_steps:10_000 ~sched:(Sched.random ~seed ())
        ~sink:Coop_trace.Trace.Sink.ignore prog
    in
    if o.Runner.termination = Runner.Deadlock then found := true
  done;
  Alcotest.(check bool) "some seed deadlocks" true !found

let test_trace_recording () =
  let prog = Compile.source "var x = 0; fn main() { x = 1; print(x); }" in
  let _, trace = Runner.record ~sched:Sched.sequential prog in
  let has op = Coop_trace.Trace.count (fun e -> e.Coop_trace.Event.op = op) trace in
  Alcotest.(check int) "one write" 1 (has (Coop_trace.Event.Write (Coop_trace.Event.Global 0)));
  Alcotest.(check int) "one read" 1 (has (Coop_trace.Event.Read (Coop_trace.Event.Global 0)));
  Alcotest.(check int) "one out" 1 (has (Coop_trace.Event.Out 1));
  Alcotest.(check int) "enter main" 1 (has (Coop_trace.Event.Enter prog.Bytecode.main))

let test_injected_yields_emit_events () =
  let prog = Compile.source "var x = 0; fn main() { x = 1; }" in
  (* Find the location of the store and inject a yield there. *)
  let store_pc =
    let f = prog.Bytecode.funcs.(prog.Bytecode.main) in
    let rec find i =
      if i >= Array.length f.code then Alcotest.fail "no store"
      else match f.code.(i) with Bytecode.Store_global _ -> i | _ -> find (i + 1)
    in
    find 0
  in
  let loc = Bytecode.loc prog ~func:prog.Bytecode.main ~pc:store_pc in
  let yields = Coop_trace.Loc.Set.singleton loc in
  let _, trace = Runner.record ~yields ~sched:Sched.sequential prog in
  Alcotest.(check int) "yield injected" 1
    (Coop_trace.Trace.count (fun e -> e.Coop_trace.Event.op = Coop_trace.Event.Yield) trace);
  (* The injected yield must come before the write. *)
  let rec index_of op i =
    if (Coop_trace.Trace.get trace i).Coop_trace.Event.op = op then i
    else index_of op (i + 1)
  in
  let yi = index_of Coop_trace.Event.Yield 0 in
  let wi = index_of (Coop_trace.Event.Write (Coop_trace.Event.Global 0)) 0 in
  Alcotest.(check bool) "yield precedes write" true (yi < wi)

let test_behavior_of () =
  let prog = Compile.source "var a = 1; var b = 2; fn main() { print(a + b); }" in
  let o = Runner.run ~sched:Sched.sequential ~sink:Coop_trace.Trace.Sink.ignore prog in
  let b = Runner.behavior_of o in
  Alcotest.(check (list int)) "output" [ 3 ] b.Behavior.output;
  Alcotest.(check (list int)) "globals" [ 1; 2 ] b.Behavior.globals;
  Alcotest.(check bool) "no deadlock" false b.Behavior.deadlocked;
  Alcotest.(check int) "no faults" 0 b.Behavior.fault_count

let test_behavior_compare () =
  let b1 = { Behavior.output = [ 1 ]; globals = []; fault_count = 0; deadlocked = false } in
  let b2 = { b1 with Behavior.output = [ 2 ] } in
  Alcotest.(check bool) "distinct" false (Behavior.equal b1 b2);
  Alcotest.(check bool) "reflexive" true (Behavior.equal b1 b1);
  Alcotest.(check int) "set size" 2
    Behavior.Set.(cardinal (add b1 (add b2 (add b1 empty))))

let suite =
  [
    Alcotest.test_case "completed termination" `Quick test_completed;
    Alcotest.test_case "step limit" `Quick test_step_limit;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detected;
    Alcotest.test_case "trace recording" `Quick test_trace_recording;
    Alcotest.test_case "injected yields" `Quick test_injected_yields_emit_events;
    Alcotest.test_case "behavior projection" `Quick test_behavior_of;
    Alcotest.test_case "behavior comparison" `Quick test_behavior_compare;
  ]
