open Coop_lang
open Coop_runtime
open Coop_core
open Coop_workloads

let trace_of ?(seed = 7) src =
  let prog = Compile.source src in
  let _, trace = Runner.record ~max_steps:500_000 ~sched:(Sched.random ~seed ()) prog in
  trace

let test_opposite_orders_predicted () =
  (* The analysis is predictive: even on a run that happens to complete, the
     a->b / b->a edges form a cycle. Scan seeds until we find a completing
     run and check the prediction there. *)
  let prog = Compile.source (Micro.deadlock_prone ()) in
  let checked = ref false in
  let seed = ref 0 in
  while (not !checked) && !seed < 50 do
    let o, trace =
      Runner.record ~max_steps:100_000 ~sched:(Sched.random ~seed:!seed ()) prog
    in
    if o.Runner.termination = Runner.Completed then begin
      checked := true;
      let r = Deadlock.analyze trace in
      Alcotest.(check bool) "cycle predicted from a completing run" false
        (Deadlock.deadlock_free r)
    end;
    incr seed
  done;
  Alcotest.(check bool) "found a completing run" true !checked

let test_ordered_acquisition_clean () =
  let e = Option.get (Coop_workloads.Registry.find "philo") in
  let trace =
    let prog = Coop_workloads.Registry.program_of ~threads:3 ~size:2 e in
    snd (Runner.record ~sched:(Sched.random ~seed:3 ()) prog)
  in
  let r = Deadlock.analyze trace in
  Alcotest.(check bool) "ordered forks are deadlock-free" true
    (Deadlock.deadlock_free r);
  Alcotest.(check bool) "edges observed" true (r.Deadlock.edges <> [])

let test_single_thread_nesting_not_a_deadlock () =
  (* One thread nesting a then b then releasing is just nesting, even if it
     also nests b then a later: a cycle needs two threads. *)
  let trace =
    trace_of
      "var x = 0; lock a; lock b; fn main() { sync (a) { sync (b) { x = 1; } } sync (b) { sync (a) { x = 2; } } }"
  in
  let r = Deadlock.analyze trace in
  Alcotest.(check bool) "single-thread cycle ignored" true
    (Deadlock.deadlock_free r)

let test_two_thread_cycle_locks_listed () =
  (* Use a run that completed: a deadlocked run may park before either
     thread exhibits its second acquire, leaving no edges at all. *)
  let prog = Compile.source (Micro.deadlock_prone ()) in
  let cycle = ref None in
  let seed = ref 0 in
  while !cycle = None && !seed < 50 do
    let o, trace =
      Runner.record ~max_steps:100_000 ~sched:(Sched.random ~seed:!seed ()) prog
    in
    if o.Runner.termination = Runner.Completed then begin
      match (Deadlock.analyze trace).Deadlock.cycles with
      | c :: _ -> cycle := Some c
      | [] -> ()
    end;
    incr seed
  done;
  match !cycle with
  | Some c -> Alcotest.(check int) "two locks on the cycle" 2 (List.length c)
  | None -> Alcotest.fail "no completing run exhibited the cycle"

let test_edges_deduped () =
  let trace =
    trace_of
      "var x = 0; lock a; lock b; fn main() { var i = 0; while (i < 5) { sync (a) { sync (b) { x = x + 1; } } i = i + 1; } }"
  in
  let r = Deadlock.analyze trace in
  Alcotest.(check int) "one distinct edge" 1 (List.length r.Deadlock.edges)

let test_pp_cycle () =
  let s = Format.asprintf "%a" Deadlock.pp_cycle [ 0; 2 ] in
  Alcotest.(check string) "rendering" "l0 -> l2 -> l0" s

let suite =
  [
    Alcotest.test_case "opposite orders predicted" `Quick test_opposite_orders_predicted;
    Alcotest.test_case "ordered acquisition clean" `Quick test_ordered_acquisition_clean;
    Alcotest.test_case "single-thread nesting ok" `Quick test_single_thread_nesting_not_a_deadlock;
    Alcotest.test_case "cycle locks listed" `Quick test_two_thread_cycle_locks_listed;
    Alcotest.test_case "edges deduped" `Quick test_edges_deduped;
    Alcotest.test_case "cycle rendering" `Quick test_pp_cycle;
  ]
