open Coop_lang

let expr = Parser.expr

let check_expr msg src expected =
  Alcotest.(check bool) msg true (Ast.equal_expr (expr src) expected)

let test_precedence_mul_add () =
  check_expr "mul binds tighter" "1 + 2 * 3"
    (Ast.Binary (Ast.Add, Ast.Int 1, Ast.Binary (Ast.Mul, Ast.Int 2, Ast.Int 3)))

let test_precedence_cmp_bool () =
  check_expr "cmp under &&" "a < b && c > d"
    (Ast.Binary
       ( Ast.And,
         Ast.Binary (Ast.Lt, Ast.Var "a", Ast.Var "b"),
         Ast.Binary (Ast.Gt, Ast.Var "c", Ast.Var "d") ))

let test_precedence_or_and () =
  check_expr "&& binds tighter than ||" "a || b && c"
    (Ast.Binary
       (Ast.Or, Ast.Var "a", Ast.Binary (Ast.And, Ast.Var "b", Ast.Var "c")))

let test_left_assoc () =
  check_expr "sub left assoc" "10 - 3 - 2"
    (Ast.Binary (Ast.Sub, Ast.Binary (Ast.Sub, Ast.Int 10, Ast.Int 3), Ast.Int 2))

let test_parens () =
  check_expr "parens override" "(1 + 2) * 3"
    (Ast.Binary (Ast.Mul, Ast.Binary (Ast.Add, Ast.Int 1, Ast.Int 2), Ast.Int 3))

let test_unary () =
  check_expr "negation chains" "--x" (Ast.Unary (Ast.Neg, Ast.Unary (Ast.Neg, Ast.Var "x")));
  check_expr "not" "!x" (Ast.Unary (Ast.Not, Ast.Var "x"))

let test_index_and_call () =
  check_expr "index" "a[i + 1]"
    (Ast.Index ("a", Ast.Binary (Ast.Add, Ast.Var "i", Ast.Int 1)));
  check_expr "call" "f(1, x)" (Ast.Call ("f", [ Ast.Int 1; Ast.Var "x" ]));
  check_expr "nullary call" "f()" (Ast.Call ("f", []));
  check_expr "spawn expr" "spawn f(x)" (Ast.Spawn ("f", [ Ast.Var "x" ]))

let test_bool_literals () =
  check_expr "true" "true" (Ast.Bool true);
  check_expr "false" "false" (Ast.Bool false)

let parse_main body =
  let p = Parser.program (Printf.sprintf "fn main() { %s }" body) in
  match p.Ast.funcs with
  | [ f ] -> f.Ast.body
  | _ -> Alcotest.fail "expected one function"

let test_if_else_chain () =
  match parse_main "if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }" with
  | [ { Ast.kind = Ast.If (_, _, [ { Ast.kind = Ast.If (_, _, [ _ ]); _ } ]); _ } ] -> ()
  | _ -> Alcotest.fail "else-if chain shape"

let test_sync_lock_array () =
  match parse_main "sync (m[i]) { x = 1; }" with
  | [ { Ast.kind = Ast.Sync ({ Ast.lock = "m"; index = Some (Ast.Var "i") }, _); _ } ] -> ()
  | _ -> Alcotest.fail "sync lock array shape"

let test_spawn_statement () =
  match parse_main "spawn f(1); var t = spawn g();" with
  | [ { Ast.kind = Ast.Expr_stmt (Ast.Spawn ("f", _)); _ };
      { Ast.kind = Ast.Local ("t", Ast.Spawn ("g", [])); _ } ] -> ()
  | _ -> Alcotest.fail "spawn statement shapes"

let test_join_print_assert_yield () =
  match parse_main "join t; print(x); assert(x == 1); yield;" with
  | [ { Ast.kind = Ast.Join_stmt (Ast.Var "t"); _ };
      { Ast.kind = Ast.Print (Ast.Var "x"); _ };
      { Ast.kind = Ast.Assert _; _ };
      { Ast.kind = Ast.Yield; _ } ] -> ()
  | _ -> Alcotest.fail "statement shapes"

let test_return_forms () =
  match parse_main "return; " with
  | [ { Ast.kind = Ast.Return None; _ } ] -> (
      match parse_main "return x + 1;" with
      | [ { Ast.kind = Ast.Return (Some _); _ } ] -> ()
      | _ -> Alcotest.fail "return with value")
  | _ -> Alcotest.fail "bare return"

let test_decls () =
  let p =
    Parser.program
      "var a = 3; var b; array arr[10]; lock m; lock ms[4]; fn main() { }"
  in
  Alcotest.(check bool) "decl shapes" true
    (p.Ast.decls
    = [ Ast.Gvar ("a", 3); Ast.Gvar ("b", 0); Ast.Garray ("arr", 10);
        Ast.Glock ("m", 1); Ast.Glock ("ms", 4) ])

let test_negative_global_init () =
  let p = Parser.program "var a = -5; fn main() { }" in
  Alcotest.(check bool) "negative init" true (p.Ast.decls = [ Ast.Gvar ("a", -5) ])

let test_error_reports_line () =
  (match Parser.program "fn main() {\n  x = ;\n}" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Parser.Error (_, 2) -> ())

let test_error_missing_paren () =
  (match Parser.program "fn main() { if x { } }" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Parser.Error (_, _) -> ())

let test_error_trailing () =
  (match Parser.expr "1 + 2 extra" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Parser.Error (_, _) -> ())

let prop_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"pretty-print/parse round trip" ~count:500
       ~print:Pretty.program Gen.gen_program (fun p ->
         let printed = Pretty.program p in
         match Parser.program printed with
         | p' -> Ast.equal_program p p'
         | exception _ -> false))

let prop_expr_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"expression round trip" ~count:500
       ~print:Pretty.expr (Gen.gen_expr 5) (fun e ->
         match Parser.expr (Pretty.expr e) with
         | e' -> Ast.equal_expr e e'
         | exception _ -> false))

let suite =
  [
    Alcotest.test_case "mul/add precedence" `Quick test_precedence_mul_add;
    Alcotest.test_case "cmp under &&" `Quick test_precedence_cmp_bool;
    Alcotest.test_case "|| vs &&" `Quick test_precedence_or_and;
    Alcotest.test_case "left associativity" `Quick test_left_assoc;
    Alcotest.test_case "parentheses" `Quick test_parens;
    Alcotest.test_case "unary operators" `Quick test_unary;
    Alcotest.test_case "index and calls" `Quick test_index_and_call;
    Alcotest.test_case "bool literals" `Quick test_bool_literals;
    Alcotest.test_case "else-if chain" `Quick test_if_else_chain;
    Alcotest.test_case "sync with lock array" `Quick test_sync_lock_array;
    Alcotest.test_case "spawn statements" `Quick test_spawn_statement;
    Alcotest.test_case "join/print/assert/yield" `Quick test_join_print_assert_yield;
    Alcotest.test_case "return forms" `Quick test_return_forms;
    Alcotest.test_case "global declarations" `Quick test_decls;
    Alcotest.test_case "negative global init" `Quick test_negative_global_init;
    Alcotest.test_case "error line numbers" `Quick test_error_reports_line;
    Alcotest.test_case "missing paren error" `Quick test_error_missing_paren;
    Alcotest.test_case "trailing tokens error" `Quick test_error_trailing;
    prop_roundtrip;
    prop_expr_roundtrip;
  ]
