open Coop_trace
open Coop_race

let loc pc = Loc.make ~func:0 ~pc ~line:pc

let ev ?(pc = 0) tid op = Event.make ~tid ~op ~loc:(loc pc)

let g0 = Event.Global 0

let race_count trace = List.length (Fasttrack.run trace)

let test_ww_race () =
  let t = Trace.of_list [ ev 0 (Event.Write g0); ev 1 (Event.Write g0) ] in
  let races = Fasttrack.run t in
  Alcotest.(check int) "one race" 1 (List.length races);
  match races with
  | [ r ] ->
      Alcotest.(check bool) "kind" true (r.Report.kind = Report.Write_write);
      Alcotest.(check int) "first" 0 r.Report.first_tid;
      Alcotest.(check int) "second" 1 r.Report.second_tid
  | _ -> Alcotest.fail "expected exactly one race"

let test_wr_race () =
  let t = Trace.of_list [ ev 0 (Event.Write g0); ev 1 (Event.Read g0) ] in
  match Fasttrack.run t with
  | [ r ] -> Alcotest.(check bool) "write-read" true (r.Report.kind = Report.Write_read)
  | _ -> Alcotest.fail "expected one race"

let test_rw_race () =
  let t = Trace.of_list [ ev 0 (Event.Read g0); ev 1 (Event.Write g0) ] in
  match Fasttrack.run t with
  | [ r ] -> Alcotest.(check bool) "read-write" true (r.Report.kind = Report.Read_write)
  | _ -> Alcotest.fail "expected one race"

let test_rr_no_race () =
  let t = Trace.of_list [ ev 0 (Event.Read g0); ev 1 (Event.Read g0) ] in
  Alcotest.(check int) "reads never race" 0 (race_count t)

let test_lock_protects () =
  let t =
    Trace.of_list
      [ ev 0 (Event.Acquire 0); ev 0 (Event.Write g0); ev 0 (Event.Release 0);
        ev 1 (Event.Acquire 0); ev 1 (Event.Write g0); ev 1 (Event.Release 0) ]
  in
  Alcotest.(check int) "lock orders accesses" 0 (race_count t)

let test_different_locks_race () =
  let t =
    Trace.of_list
      [ ev 0 (Event.Acquire 0); ev 0 (Event.Write g0); ev 0 (Event.Release 0);
        ev 1 (Event.Acquire 1); ev 1 (Event.Write g0); ev 1 (Event.Release 1) ]
  in
  Alcotest.(check int) "different locks do not order" 1 (race_count t)

let test_fork_orders () =
  let t =
    Trace.of_list
      [ ev 0 (Event.Write g0); ev 0 (Event.Fork 1); ev 1 (Event.Write g0) ]
  in
  Alcotest.(check int) "fork creates HB edge" 0 (race_count t)

let test_join_orders () =
  let t =
    Trace.of_list
      [ ev 0 (Event.Fork 1); ev 1 (Event.Write g0); ev 0 (Event.Join 1);
        ev 0 (Event.Read g0) ]
  in
  Alcotest.(check int) "join creates HB edge" 0 (race_count t)

let test_no_join_races () =
  let t =
    Trace.of_list
      [ ev 0 (Event.Fork 1); ev 1 (Event.Write g0); ev 0 (Event.Read g0) ]
  in
  Alcotest.(check int) "unjoined child races" 1 (race_count t)

let test_same_thread_never_races () =
  let t =
    Trace.of_list
      [ ev 0 (Event.Write g0); ev 0 (Event.Read g0); ev 0 (Event.Write g0) ]
  in
  Alcotest.(check int) "program order" 0 (race_count t)

let test_read_share_promotion () =
  (* Two concurrent reads (promotes to a read vector), then an ordered write
     by a third thread must still detect the race with both readers'
     history. *)
  let t =
    Trace.of_list
      [ ev 0 (Event.Fork 1); ev 0 (Event.Fork 2);
        ev 1 (Event.Read g0); ev 2 (Event.Read g0);
        ev 0 (Event.Write g0) ]
  in
  (* The write races with both unjoined readers; FastTrack reports at least
     one read-write race. *)
  let races = Fasttrack.run t in
  Alcotest.(check bool) "read-share then write races" true
    (List.exists (fun r -> r.Report.kind = Report.Read_write) races)

let test_racy_vars_dedup () =
  let t =
    Trace.of_list
      [ ev 0 (Event.Write g0); ev 1 (Event.Write g0); ev 1 (Event.Write g0) ]
  in
  let vars = Fasttrack.racy_vars_of_trace t in
  Alcotest.(check int) "one racy var" 1 (Event.Var_set.cardinal vars)

let test_release_publish () =
  (* Classic message-passing: write, release; acquire, read. *)
  let t =
    Trace.of_list
      [ ev 0 (Event.Write g0); ev 0 (Event.Acquire 0); ev 0 (Event.Release 0);
        ev 1 (Event.Acquire 0); ev 1 (Event.Read g0) ]
  in
  (* The write is before the release, so the acquiring reader is ordered. *)
  Alcotest.(check int) "publication via lock" 0 (race_count t)

(* --- Naive oracle ------------------------------------------------------- *)

let test_naive_happens_before () =
  let t =
    Trace.of_list
      [ ev 0 (Event.Write g0); ev 0 (Event.Fork 1); ev 1 (Event.Read g0) ]
  in
  Alcotest.(check bool) "program order" true (Naive_hb.happens_before t 0 1);
  Alcotest.(check bool) "fork edge" true (Naive_hb.happens_before t 0 2);
  Alcotest.(check bool) "same thread" true (Naive_hb.happens_before t 1 2)

let test_naive_race_pairs () =
  let t = Trace.of_list [ ev 0 (Event.Write g0); ev 1 (Event.Write g0) ] in
  Alcotest.(check int) "one pair" 1 (List.length (Naive_hb.race_pairs t))

let prop_agreement =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"fasttrack agrees with naive HB oracle" ~count:500
       ~print:Gen.print_trace Gen.gen_trace (fun trace ->
         let ft = Fasttrack.racy_vars_of_trace trace in
         let naive = Naive_hb.racy_vars trace in
         Event.Var_set.equal ft naive))

let suite =
  [
    Alcotest.test_case "write-write race" `Quick test_ww_race;
    Alcotest.test_case "write-read race" `Quick test_wr_race;
    Alcotest.test_case "read-write race" `Quick test_rw_race;
    Alcotest.test_case "read-read no race" `Quick test_rr_no_race;
    Alcotest.test_case "lock protects" `Quick test_lock_protects;
    Alcotest.test_case "different locks race" `Quick test_different_locks_race;
    Alcotest.test_case "fork orders" `Quick test_fork_orders;
    Alcotest.test_case "join orders" `Quick test_join_orders;
    Alcotest.test_case "unjoined child races" `Quick test_no_join_races;
    Alcotest.test_case "same thread never races" `Quick test_same_thread_never_races;
    Alcotest.test_case "read-share promotion" `Quick test_read_share_promotion;
    Alcotest.test_case "racy vars dedupe" `Quick test_racy_vars_dedup;
    Alcotest.test_case "publication via lock" `Quick test_release_publish;
    Alcotest.test_case "naive happens-before" `Quick test_naive_happens_before;
    Alcotest.test_case "naive race pairs" `Quick test_naive_race_pairs;
    prop_agreement;
  ]
