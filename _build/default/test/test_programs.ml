(* The .coop sample programs shipped under examples/programs are part of
   the product surface (the CLI's file mode): they must parse, run
   deterministically without faults, and reach a clean inference fixpoint. *)

open Coop_lang
open Coop_runtime
open Coop_core

let programs_dir = "../examples/programs"

let read path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let sample_files () =
  Sys.readdir programs_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".coop")
  |> List.sort String.compare
  |> List.map (fun f -> Filename.concat programs_dir f)

let test_samples_exist () =
  Alcotest.(check bool) "at least two sample programs" true
    (List.length (sample_files ()) >= 2)

let test_samples_run_clean () =
  List.iter
    (fun path ->
      let prog = Compile.source (read path) in
      List.iter
        (fun sched ->
          let o =
            Runner.run ~max_steps:3_000_000 ~sched
              ~sink:Coop_trace.Trace.Sink.ignore prog
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s completes" path)
            true
            (o.Runner.termination = Runner.Completed);
          Alcotest.(check int)
            (Printf.sprintf "%s fault-free (asserts hold)" path)
            0
            (List.length (Vm.failures o.Runner.final)))
        [ Sched.random ~seed:8 (); Sched.cooperative ();
          Sched.round_robin ~quantum:2 () ])
    (sample_files ())

let test_samples_infer_clean () =
  List.iter
    (fun path ->
      let prog = Compile.source (read path) in
      let inf = Infer.infer prog in
      Alcotest.(check int)
        (Printf.sprintf "%s inference fixpoint" path)
        0 inf.Infer.final_check_violations)
    (sample_files ())

let test_samples_race_free () =
  List.iter
    (fun path ->
      let prog = Compile.source (read path) in
      let _, trace =
        Runner.record ~max_steps:3_000_000 ~sched:(Sched.random ~seed:31 ()) prog
      in
      Alcotest.(check int)
        (Printf.sprintf "%s race-free" path)
        0
        (Coop_trace.Event.Var_set.cardinal
           (Coop_race.Fasttrack.racy_vars_of_trace trace)))
    (sample_files ())

let suite =
  [
    Alcotest.test_case "samples exist" `Quick test_samples_exist;
    Alcotest.test_case "samples run clean" `Slow test_samples_run_clean;
    Alcotest.test_case "samples infer clean" `Slow test_samples_infer_clean;
    Alcotest.test_case "samples race-free" `Slow test_samples_race_free;
  ]
