open Coop_trace
open Coop_core

let g0 = Event.Global 0

let racy = Event.Var_set.singleton g0

let check msg op expected =
  Alcotest.(check bool) msg true (Mover.classify ~racy op = expected)

let test_accesses () =
  check "racy read is non" (Event.Read g0) (Some Mover.Non);
  check "racy write is non" (Event.Write g0) (Some Mover.Non);
  check "race-free read is both" (Event.Read (Event.Global 1)) (Some Mover.Both);
  check "race-free write is both" (Event.Write (Event.Cell (0, 3))) (Some Mover.Both)

let test_sync_ops () =
  check "acquire is right" (Event.Acquire 0) (Some Mover.Right);
  check "release is left" (Event.Release 0) (Some Mover.Left);
  check "fork is right" (Event.Fork 1) (Some Mover.Right);
  check "join is left" (Event.Join 1) (Some Mover.Left)

let test_unclassified () =
  check "yield unclassified" Event.Yield None;
  check "enter unclassified" (Event.Enter 0) None;
  check "exit unclassified" (Event.Exit 0) None;
  check "atomic markers unclassified" Event.Atomic_begin None;
  check "out is both" (Event.Out 3) (Some Mover.Both)

let test_to_string () =
  Alcotest.(check string) "right" "right-mover" (Mover.to_string Mover.Right);
  Alcotest.(check string) "left" "left-mover" (Mover.to_string Mover.Left);
  Alcotest.(check string) "both" "both-mover" (Mover.to_string Mover.Both);
  Alcotest.(check string) "non" "non-mover" (Mover.to_string Mover.Non)

let suite =
  [
    Alcotest.test_case "access classification" `Quick test_accesses;
    Alcotest.test_case "sync ops" `Quick test_sync_ops;
    Alcotest.test_case "unclassified ops" `Quick test_unclassified;
    Alcotest.test_case "names" `Quick test_to_string;
  ]
