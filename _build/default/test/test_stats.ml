open Coop_util

let feq msg a b = Alcotest.(check (float 1e-9)) msg a b

let test_mean () =
  feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  feq "singleton" 7. (Stats.mean [| 7. |]);
  feq "empty" 0. (Stats.mean [||])

let test_stddev () =
  feq "known stddev" 1.2909944487358056 (Stats.stddev [| 1.; 2.; 3.; 4. |]);
  feq "constant" 0. (Stats.stddev [| 5.; 5.; 5. |]);
  feq "short" 0. (Stats.stddev [| 1. |])

let test_median () =
  feq "odd" 3. (Stats.median [| 5.; 3.; 1. |]);
  feq "even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  feq "empty" 0. (Stats.median [||])

let test_median_no_mutation () =
  let xs = [| 3.; 1.; 2. |] in
  ignore (Stats.median xs);
  Alcotest.(check (array (float 0.))) "input untouched" [| 3.; 1.; 2. |] xs

let test_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  feq "p0" 10. (Stats.percentile 0. xs);
  feq "p100" 50. (Stats.percentile 100. xs);
  feq "p50" 30. (Stats.percentile 50. xs);
  feq "p25" 20. (Stats.percentile 25. xs);
  feq "interpolated" 14. (Stats.percentile 10. xs)

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 2. |] in
  feq "min" (-1.) lo;
  feq "max" 7. hi;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.min_max: empty array")
    (fun () -> ignore (Stats.min_max [||]))

let test_geomean () =
  feq "geomean" 2. (Stats.geomean [| 1.; 2.; 4. |]);
  feq "identity" 3. (Stats.geomean [| 3. |]);
  feq "empty" 0. (Stats.geomean [||])

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "median" `Quick test_median;
    Alcotest.test_case "median does not mutate" `Quick test_median_no_mutation;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "min_max" `Quick test_min_max;
    Alcotest.test_case "geomean" `Quick test_geomean;
  ]
