open Coop_runtime
open Coop_lang
open Coop_workloads

let behaviors mode src =
  let prog = Compile.source src in
  Explore.run ~max_states:100_000 mode prog

let test_racy_counter_preemptive () =
  (* 2 threads x 2 unsynchronized increments: final x in {2, 3, 4}. *)
  let r = behaviors Explore.Preemptive (Micro.racy_counter ~threads:2 ~incs:2) in
  Alcotest.(check bool) "complete" true r.Explore.complete;
  Alcotest.(check int) "three behaviours" 3 (Behavior.Set.cardinal r.Explore.behaviors)

let test_racy_counter_cooperative () =
  (* Cooperatively (no yields), each worker runs to completion: x = 4. *)
  let r = behaviors Explore.Cooperative (Micro.racy_counter ~threads:2 ~incs:2) in
  Alcotest.(check bool) "complete" true r.Explore.complete;
  Alcotest.(check int) "single behaviour" 1 (Behavior.Set.cardinal r.Explore.behaviors)

let test_locked_counter_deterministic () =
  let r = behaviors Explore.Preemptive (Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:false) in
  Alcotest.(check int) "locks make it deterministic" 1
    (Behavior.Set.cardinal r.Explore.behaviors)

let test_deadlock_found () =
  let r = behaviors Explore.Preemptive (Micro.deadlock_prone ()) in
  Alcotest.(check bool) "deadlock reachable" true (r.Explore.deadlocks > 0);
  Alcotest.(check int) "both behaviours" 2 (Behavior.Set.cardinal r.Explore.behaviors)

let test_deadlock_invisible_cooperatively () =
  let r = behaviors Explore.Cooperative (Micro.deadlock_prone ()) in
  Alcotest.(check int) "no deadlock without preemption" 0 r.Explore.deadlocks

let test_single_thread_one_behavior () =
  let r = behaviors Explore.Preemptive "fn main() { var i = 0; while (i < 10) { i = i + 1; } print(i); }" in
  Alcotest.(check int) "one behaviour" 1 (Behavior.Set.cardinal r.Explore.behaviors);
  Alcotest.(check bool) "tiny state space" true (r.Explore.states < 50)

let test_budget_marks_incomplete () =
  let r =
    Explore.run ~max_states:5 Explore.Preemptive
      (Compile.source (Micro.racy_counter ~threads:2 ~incs:2))
  in
  Alcotest.(check bool) "incomplete under tiny budget" false r.Explore.complete

let test_infinite_local_loop_incomplete () =
  let r =
    Explore.run ~max_states:100 ~max_segment:500 Explore.Preemptive
      (Compile.source "var x = 0; fn main() { while (1) { x = 0 * x; } }")
  in
  (* The loop body touches a global, so it is visible and the state space is
     finite (x stays 0); but a purely local loop must hit the segment cap. *)
  ignore r;
  let r2 =
    Explore.run ~max_states:100 ~max_segment:500 Explore.Preemptive
      (Compile.source "fn main() { var i = 0; while (1) { i = 1 - i; } }")
  in
  Alcotest.(check bool) "local infinite loop times out" false r2.Explore.complete

let test_yields_restore_equivalence () =
  (* The locked counter without yields: cooperative exploration must still
     find the same single behaviour as preemptive (it is deterministic). *)
  let src = Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:true in
  let pre = behaviors Explore.Preemptive src in
  let coop = behaviors Explore.Cooperative src in
  Alcotest.(check bool) "equal sets" true (Explore.behaviors_equal pre coop)

let test_cooperative_cheaper () =
  let src = Micro.racy_counter ~threads:2 ~incs:2 in
  let pre = behaviors Explore.Preemptive src in
  let coop = behaviors Explore.Cooperative src in
  Alcotest.(check bool) "cooperative explores far fewer states" true
    (coop.Explore.states * 4 < pre.Explore.states)

let test_granularity_equivalence () =
  (* The visible-only reduction must preserve behaviour sets exactly. *)
  List.iter
    (fun src ->
      let prog = Compile.source src in
      let fine =
        Explore.run ~max_states:400_000 ~granularity:Explore.Every_instruction
          Explore.Preemptive prog
      in
      let coarse =
        Explore.run ~max_states:400_000 ~granularity:Explore.Visible_only
          Explore.Preemptive prog
      in
      Alcotest.(check bool) "both complete" true
        (fine.Explore.complete && coarse.Explore.complete);
      Alcotest.(check bool) "same behaviours" true
        (Behavior.Set.equal fine.Explore.behaviors coarse.Explore.behaviors);
      Alcotest.(check bool) "reduction saves states" true
        (coarse.Explore.states <= fine.Explore.states))
    [ Micro.racy_counter ~threads:2 ~incs:1;
      Micro.check_then_act ~threads:2;
      Micro.single_transaction ~threads:2 ]

let test_dpor_matches_dfs () =
  (* DPOR and the stateful DFS must produce identical behaviour sets on
     programs whose executions all terminate. *)
  List.iter
    (fun (name, src) ->
      let prog = Compile.source src in
      let dfs = Explore.run ~max_states:400_000 Explore.Preemptive prog in
      let dpor = Dpor.run ~max_executions:200_000 prog in
      Alcotest.(check bool) (name ^ ": both complete") true
        (dfs.Explore.complete && dpor.Dpor.complete);
      Alcotest.(check bool) (name ^ ": same behaviours") true
        (Behavior.Set.equal dfs.Explore.behaviors dpor.Dpor.behaviors))
    [ ("racy_counter", Micro.racy_counter ~threads:2 ~incs:2);
      ("racy_counter3", Micro.racy_counter ~threads:3 ~incs:1);
      ("locked_counter", Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:false);
      ("check_then_act", Micro.check_then_act ~threads:2);
      ("single_transaction", Micro.single_transaction ~threads:2);
      ("deadlock_prone", Micro.deadlock_prone ()) ]

let test_dpor_finds_deadlock () =
  let r = Dpor.run (Compile.source (Micro.deadlock_prone ())) in
  Alcotest.(check bool) "deadlock behaviour found" true
    (Behavior.Set.exists (fun b -> b.Behavior.deadlocked) r.Dpor.behaviors)

let test_dpor_reduces_executions () =
  (* Independent-heavy program: far fewer executions than per-instruction
     interleavings. single_transaction's workers only conflict at the one
     lock region: 3 threads finish in a few thousand executions where the
     naive per-instruction DFS visits >100k states. *)
  let prog = Compile.source (Micro.single_transaction ~threads:3) in
  let r = Dpor.run prog in
  Alcotest.(check bool) "complete" true r.Dpor.complete;
  Alcotest.(check bool) "few executions" true (r.Dpor.executions < 10_000);
  let fine =
    Explore.run ~max_states:500_000 ~granularity:Explore.Every_instruction
      Explore.Preemptive prog
  in
  Alcotest.(check bool) "beats naive state count" true
    (r.Dpor.executions * 10 < fine.Explore.states)

let test_dpor_budget () =
  let r = Dpor.run ~max_executions:2 (Compile.source (Micro.racy_counter ~threads:2 ~incs:2)) in
  Alcotest.(check bool) "budget marks incomplete" false r.Dpor.complete

let test_dpor_spin_loops_incomplete () =
  (* Spin loops have unfair infinite executions: DPOR reports incomplete
     rather than diverging. *)
  let r =
    Dpor.run ~max_executions:50 ~max_depth:200
      (Compile.source (Micro.producer_consumer ~items:1))
  in
  Alcotest.(check bool) "incomplete" false r.Dpor.complete

let suite =
  [
    Alcotest.test_case "granularity equivalence" `Slow test_granularity_equivalence;
    Alcotest.test_case "dpor matches dfs" `Slow test_dpor_matches_dfs;
    Alcotest.test_case "dpor finds deadlock" `Quick test_dpor_finds_deadlock;
    Alcotest.test_case "dpor reduces executions" `Quick test_dpor_reduces_executions;
    Alcotest.test_case "dpor budget" `Quick test_dpor_budget;
    Alcotest.test_case "dpor spin loops incomplete" `Quick test_dpor_spin_loops_incomplete;
    Alcotest.test_case "racy counter preemptive" `Quick test_racy_counter_preemptive;
    Alcotest.test_case "racy counter cooperative" `Quick test_racy_counter_cooperative;
    Alcotest.test_case "locked counter deterministic" `Quick test_locked_counter_deterministic;
    Alcotest.test_case "deadlock found preemptively" `Quick test_deadlock_found;
    Alcotest.test_case "deadlock invisible cooperatively" `Quick test_deadlock_invisible_cooperatively;
    Alcotest.test_case "single thread" `Quick test_single_thread_one_behavior;
    Alcotest.test_case "budget marks incomplete" `Quick test_budget_marks_incomplete;
    Alcotest.test_case "segment cap" `Quick test_infinite_local_loop_incomplete;
    Alcotest.test_case "yields restore equivalence" `Quick test_yields_restore_equivalence;
    Alcotest.test_case "cooperative exploration is cheaper" `Quick test_cooperative_cheaper;
  ]
