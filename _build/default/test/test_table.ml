open Coop_util

let test_basic_render () =
  let t = Table.create ~headers:[ ("name", Table.Left); ("n", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check string) "header" "name    n" (List.nth lines 0);
  Alcotest.(check string) "rule" "-----  --" (List.nth lines 1);
  Alcotest.(check string) "row 1" "alpha   1" (List.nth lines 2);
  Alcotest.(check string) "row 2" "b      22" (List.nth lines 3)

let test_wide_cell_grows_column () =
  let t = Table.create ~headers:[ ("h", Table.Left) ] in
  Table.add_row t [ "very-long-cell" ];
  let out = Table.render t in
  Alcotest.(check bool) "column widened" true
    (String.length (List.nth (String.split_on_char '\n' out) 0) >= 14)

let test_mismatch_raises () =
  let t = Table.create ~headers:[ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "cell count" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

let test_rule_row () =
  let t = Table.create ~headers:[ ("a", Table.Left) ] in
  Table.add_row t [ "x" ];
  Table.add_rule t;
  Table.add_row t [ "y" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  Alcotest.(check string) "rule between rows" "-" (List.nth lines 3)

let suite =
  [
    Alcotest.test_case "basic render" `Quick test_basic_render;
    Alcotest.test_case "wide cells grow columns" `Quick test_wide_cell_grows_column;
    Alcotest.test_case "row mismatch raises" `Quick test_mismatch_raises;
    Alcotest.test_case "rule rows" `Quick test_rule_row;
  ]
