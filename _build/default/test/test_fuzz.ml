(* Whole-stack fuzzing: random well-formed concurrent programs are run
   through the complete pipeline (compile -> schedulers -> race detectors ->
   cooperability -> inference). All loops are bounded and all array indices
   are masked, so every generated program terminates fault-free under every
   scheduler — which the properties then verify, along with the analysis
   invariants. *)

open QCheck2
open Coop_lang
open Coop_runtime
open Coop_core

(* Expressions over globals g0..g2, locals (params/loop counters in scope),
   and small constants. Division is excluded; indices are masked with
   ((e % 4) + 4) % 4 so they are always in range. *)
let gen_fuzz_expr locals =
  let open Gen in
  let leaf =
    oneof
      [ map (fun i -> Ast.Int i) (int_bound 9);
        oneofl (List.map (fun v -> Ast.Var v) ("g0" :: "g1" :: "g2" :: locals)) ]
  in
  let rec expr n =
    if n = 0 then leaf
    else
      oneof
        [ leaf;
          (let* op = oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Lt; Ast.Eq ] in
           let* a = expr (n - 1) in
           let* b = expr (n - 1) in
           return (Ast.Binary (op, a, b))) ]
  in
  expr 2

let mask_index e =
  Ast.Binary
    (Ast.Mod, Ast.Binary (Ast.Add, Ast.Binary (Ast.Mod, e, Ast.Int 4), Ast.Int 4), Ast.Int 4)

(* Simple statements, optionally wrapped in sync blocks. *)
let gen_simple locals =
  let open Gen in
  oneof
    [ (let* g = oneofl [ "g0"; "g1"; "g2" ] in
       let* e = gen_fuzz_expr locals in
       return (Ast.stmt (Ast.Assign (g, e))));
      (let* i = gen_fuzz_expr locals in
       let* e = gen_fuzz_expr locals in
       return (Ast.stmt (Ast.Store ("arr", mask_index i, e))));
      (let* i = gen_fuzz_expr locals in
       let* g = oneofl [ "g0"; "g1" ] in
       return (Ast.stmt (Ast.Assign (g, Ast.Index ("arr", mask_index i)))));
      return (Ast.stmt Ast.Yield) ]

let gen_item locals counter =
  let open Gen in
  let* body = list_size (int_range 1 3) (gen_simple locals) in
  oneof
    [ return (Ast.stmt (Ast.Sync ({ Ast.lock = "m"; index = None }, body)));
      (let* idx = oneofl [ Ast.Int 0; Ast.Int 1; Ast.Var "id" ] in
       let wrap =
         match idx with
         | Ast.Var _ ->
             { Ast.lock = "ls";
               index = Some (Ast.Binary (Ast.Mod, idx, Ast.Int 2)) }
         | i -> { Ast.lock = "ls"; index = Some i }
       in
       return (Ast.stmt (Ast.Sync (wrap, body))));
      return (Ast.stmt (Ast.Block body));
      (* A bounded loop around the body. *)
      (let* bound = int_range 1 3 in
       let v = Printf.sprintf "i%d" counter in
       return
         (Ast.stmt
            (Ast.Block
               [ Ast.stmt (Ast.Local (v, Ast.Int 0));
                 Ast.stmt
                   (Ast.While
                      ( Ast.Binary (Ast.Lt, Ast.Var v, Ast.Int bound),
                        body
                        @ [ Ast.stmt
                              (Ast.Assign
                                 (v, Ast.Binary (Ast.Add, Ast.Var v, Ast.Int 1)))
                          ] )) ]))) ]

let gen_worker_body =
  let open Gen in
  let* n = int_range 2 5 in
  let rec go k acc =
    if k = 0 then return (List.rev acc)
    else
      let* item = gen_item [ "id" ] k in
      go (k - 1) (item :: acc)
  in
  go n []

let gen_program =
  let open Gen in
  let* body = gen_worker_body in
  let* workers = int_range 2 3 in
  let decls =
    [ Ast.Gvar ("g0", 0); Ast.Gvar ("g1", 1); Ast.Gvar ("g2", 2);
      Ast.Garray ("arr", 4); Ast.Garray ("tids", 4); Ast.Glock ("m", 1);
      Ast.Glock ("ls", 2) ]
  in
  let worker = { Ast.fname = "worker"; params = [ "id" ]; body; fline = 1 } in
  let spawn_join =
    [ Ast.stmt (Ast.Local ("i", Ast.Int 0));
      Ast.stmt
        (Ast.While
           ( Ast.Binary (Ast.Lt, Ast.Var "i", Ast.Int workers),
             [ Ast.stmt
                 (Ast.Store ("tids", Ast.Var "i", Ast.Spawn ("worker", [ Ast.Var "i" ])));
               Ast.stmt (Ast.Assign ("i", Ast.Binary (Ast.Add, Ast.Var "i", Ast.Int 1)))
             ] ));
      Ast.stmt (Ast.Assign ("i", Ast.Int 0));
      Ast.stmt
        (Ast.While
           ( Ast.Binary (Ast.Lt, Ast.Var "i", Ast.Int workers),
             [ Ast.stmt (Ast.Join_stmt (Ast.Index ("tids", Ast.Var "i")));
               Ast.stmt (Ast.Assign ("i", Ast.Binary (Ast.Add, Ast.Var "i", Ast.Int 1)))
             ] ));
      Ast.stmt (Ast.Print (Ast.Var "g0"))
    ]
  in
  let main = { Ast.fname = "main"; params = []; body = spawn_join; fline = 1 } in
  return { Ast.decls; funcs = [ worker; main ] }

let compile p = Compile.program p

let prop name count f =
  QCheck_alcotest.to_alcotest
    (Test.make ~name ~count ~print:Pretty.program gen_program f)

let terminates =
  prop "generated programs terminate fault-free under every scheduler" 60
    (fun p ->
      let prog = compile p in
      List.for_all
        (fun sched ->
          let o =
            Runner.run ~max_steps:300_000 ~sched
              ~sink:Coop_trace.Trace.Sink.ignore prog
          in
          o.Runner.termination = Runner.Completed
          && Vm.failures o.Runner.final = [])
        [ Sched.random ~seed:3 (); Sched.round_robin ~quantum:2 ();
          Sched.cooperative (); Sched.pct ~seed:5 ~depth:3 ~change_span:1000 () ])

let detectors_agree =
  prop "fasttrack = naive HB on real program traces" 60 (fun p ->
      let prog = compile p in
      let _, trace =
        Runner.record ~max_steps:300_000 ~sched:(Sched.random ~seed:11 ()) prog
      in
      Coop_trace.Event.Var_set.equal
        (Coop_race.Fasttrack.racy_vars_of_trace trace)
        (Coop_race.Naive_hb.racy_vars trace))

let lockset_superset =
  prop "lockset racy contains fasttrack racy on real traces" 60 (fun p ->
      let prog = compile p in
      let _, trace =
        Runner.record ~max_steps:300_000 ~sched:(Sched.random ~seed:17 ()) prog
      in
      Coop_trace.Event.Var_set.subset
        (Coop_race.Fasttrack.racy_vars_of_trace trace)
        (Coop_race.Lockset.racy_vars_of_trace trace))

let inference_fixpoint =
  prop "yield inference reaches a clean fixpoint" 25 (fun p ->
      let prog = compile p in
      let portfolio () =
        [ Sched.random ~seed:3 (); Sched.round_robin ~quantum:1 ();
          Sched.random ~seed:91 () ]
      in
      let inf = Infer.infer ~portfolio ~max_steps:300_000 prog in
      inf.Infer.final_check_violations = 0)

let serialization_roundtrip =
  prop "recorded traces serialize round trip" 40 (fun p ->
      let prog = compile p in
      let _, trace =
        Runner.record ~max_steps:300_000 ~sched:(Sched.random ~seed:29 ()) prog
      in
      let trace' =
        Coop_trace.Serialize.of_string (Coop_trace.Serialize.to_string trace)
      in
      Coop_trace.Trace.length trace = Coop_trace.Trace.length trace')

let static_sound =
  (* The sound implication: a statically clean program has no dynamic
     violations under any schedule. (Yield LOCATION sets can legitimately
     differ — e.g. the dynamic analysis proves a lock-array element
     thread-local per handle where the static one shares the whole group,
     shifting the repair point by an instruction — so location containment
     is not the right property.) *)
  prop "statically clean implies dynamically clean" 25 (fun p ->
      let prog = compile p in
      if Coop_static.Check.check prog <> [] then true
      else begin
        List.for_all
          (fun sched ->
            let _, trace = Runner.record ~max_steps:300_000 ~sched prog in
            (Cooperability.check trace).Cooperability.violations = [])
          [ Sched.random ~seed:3 (); Sched.round_robin ~quantum:1 ();
            Sched.random ~seed:77 () ]
      end)

let suite =
  [
    terminates;
    detectors_agree;
    lockset_superset;
    inference_fixpoint;
    serialization_roundtrip;
    static_sound;
  ]
