open Coop_lang
open Coop_static
open Coop_workloads

let compile = Compile.source

(* --- Absval ------------------------------------------------------------- *)

let test_absval_join () =
  Alcotest.(check bool) "const join same" true
    (Absval.equal (Absval.join (Absval.Const 3) (Absval.Const 3)) (Absval.Const 3));
  Alcotest.(check bool) "const join diff" true
    (Absval.equal (Absval.join (Absval.Const 3) (Absval.Const 4)) Absval.Top);
  Alcotest.(check bool) "top absorbs" true
    (Absval.equal (Absval.join Absval.Top (Absval.Const 1)) Absval.Top)

let test_absval_binop () =
  Alcotest.(check bool) "const folding" true
    (Absval.equal (Absval.binop Ast.Add (Absval.Const 2) (Absval.Const 3)) (Absval.Const 5));
  Alcotest.(check bool) "base plus unknown" true
    (Absval.equal (Absval.binop Ast.Add (Absval.Const 7) Absval.Top) (Absval.Base_plus 7));
  Alcotest.(check bool) "division by zero is top" true
    (Absval.equal (Absval.binop Ast.Div (Absval.Const 1) (Absval.Const 0)) Absval.Top);
  Alcotest.(check bool) "mul tops out" true
    (Absval.equal (Absval.binop Ast.Mul Absval.Top (Absval.Const 2)) Absval.Top)

let test_lock_groups () =
  let prog = compile "lock a; lock bs[3]; lock c; fn main() { sync (a) { } sync (bs[1]) { } sync (c) { } }" in
  (* handles: a=0, bs=1..3, c=4; groups by first handle of same prefix *)
  Alcotest.(check bool) "scalar group" true
    (Absval.lock_of_handle prog (Absval.Const 0) = Absval.Group 0);
  Alcotest.(check bool) "array member group" true
    (Absval.lock_of_handle prog (Absval.Const 2) = Absval.Group 1);
  Alcotest.(check bool) "array base group" true
    (Absval.lock_of_handle prog (Absval.Base_plus 1) = Absval.Group 1);
  Alcotest.(check bool) "last scalar" true
    (Absval.lock_of_handle prog (Absval.Const 4) = Absval.Group 4);
  Alcotest.(check bool) "top" true
    (Absval.lock_of_handle prog Absval.Top = Absval.Any_lock)

(* --- Flow ---------------------------------------------------------------- *)

let flow_facts src fname =
  let prog = compile src in
  let rec fidx i =
    if prog.Bytecode.funcs.(i).Bytecode.name = fname then i else fidx (i + 1)
  in
  let f = fidx 0 in
  (prog, f, Flow.analyze prog f)

let test_flow_held_in_sync () =
  let prog, f, infos =
    flow_facts "var x = 0; lock m; fn main() { sync (m) { x = 1; } x = 2; }" "main"
  in
  (* Find the two Store_global pcs; the first must be under the lock. *)
  let stores = ref [] in
  Array.iteri
    (fun pc i -> if i = Bytecode.Store_global 0 then stores := pc :: !stores)
    prog.Bytecode.funcs.(f).Bytecode.code;
  match List.rev !stores with
  | [ inside; outside ] ->
      Alcotest.(check bool) "held inside" false
        (Flow.Iset.is_empty infos.(inside).Flow.held);
      Alcotest.(check bool) "free outside" true
        (Flow.Iset.is_empty infos.(outside).Flow.held)
  | _ -> Alcotest.fail "expected two stores"

let test_flow_lock_through_temp () =
  (* The sync temp-local pattern must not lose the handle. *)
  let prog, f, infos =
    flow_facts "var x = 0; lock ms[4]; fn main() { var i = 2; sync (ms[i]) { x = 1; } }" "main"
  in
  let acq = ref (-1) in
  Array.iteri
    (fun pc i -> if i = Bytecode.Acquire then acq := pc)
    prog.Bytecode.funcs.(f).Bytecode.code;
  match Flow.lock_at prog infos !acq with
  | Some (Absval.Group _) -> ()
  | other ->
      Alcotest.fail
        (Format.asprintf "expected a lock group, got %s"
           (match other with
           | Some Absval.Any_lock -> "Any_lock"
           | None -> "None"
           | _ -> "?"))

let test_flow_spawned_before () =
  let prog, f, infos =
    flow_facts "var x = 0; fn w() { } fn main() { x = 1; spawn w(); x = 2; }" "main"
  in
  let stores = ref [] in
  Array.iteri
    (fun pc i -> if i = Bytecode.Store_global 0 then stores := pc :: !stores)
    prog.Bytecode.funcs.(f).Bytecode.code;
  match List.rev !stores with
  | [ before; after ] ->
      Alcotest.(check bool) "pre-fork" false infos.(before).Flow.spawned_before;
      Alcotest.(check bool) "post-fork" true infos.(after).Flow.spawned_before
  | _ -> Alcotest.fail "expected two stores"

let test_flow_unreachable () =
  let prog, f, infos =
    flow_facts "fn main() { return; print(1); }" "main"
  in
  (* The print after return is dead. *)
  let print_pc = ref (-1) in
  Array.iteri
    (fun pc i -> if i = Bytecode.Print then print_pc := pc)
    prog.Bytecode.funcs.(f).Bytecode.code;
  Alcotest.(check bool) "dead code" false infos.(!print_pc).Flow.reachable

(* --- Races --------------------------------------------------------------- *)

let races_of src =
  let prog = compile src in
  let cache = Hashtbl.create 8 in
  let flow_of f =
    match Hashtbl.find_opt cache f with
    | Some i -> i
    | None ->
        let i = Flow.analyze prog f in
        Hashtbl.add cache f i;
        i
  in
  (prog, Races.analyze prog flow_of)

let test_sequential_program_race_free () =
  let _, r = races_of "var x = 0; fn main() { x = 1; print(x); }" in
  Alcotest.(check int) "no races" 0 (List.length r.Races.racy)

let test_unprotected_counter_racy () =
  let _, r = races_of (Micro.racy_counter ~threads:2 ~incs:2) in
  Alcotest.(check bool) "x is racy" true
    (Races.is_racy_region r (Coop_trace.Event.Global 0))

let test_locked_counter_counter_protected () =
  let _, r = races_of (Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:false) in
  (* x is guarded everywhere except main's post-join print, which the
     while-loop join structure hides from the quiescence heuristic — so x
     stays statically racy. This imprecision is exactly why the paper uses
     a dynamic analysis; the ablation quantifies it. But a straight-line
     spawn/join main is recognized: *)
  ignore r;
  let _, r2 =
    races_of
      "var x = 0; lock m; fn w() { sync (m) { x = x + 1; } } fn main() { var t = spawn w(); join t; print(x); }"
  in
  Alcotest.(check int) "straight-line join quiescence" 0
    (List.length r2.Races.racy)

let test_pre_fork_init_not_racy () =
  let _, r =
    races_of
      "array a[4]; fn w(n) { print(a[n]); } fn main() { var i = 0; while (i < 4) { a[i] = i; i = i + 1; } spawn w(0); spawn w(1); }"
  in
  (* Writes are pre-fork, reads are read-only among workers. *)
  Alcotest.(check int) "init then read-only" 0 (List.length r.Races.racy)

let test_shared_lock_groups () =
  let _, r = races_of (Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:false) in
  Alcotest.(check bool) "m is shared" true (r.Races.shared_groups <> [])

let test_thread_local_lock_group () =
  let _, r =
    races_of
      "var x = 0; lock m; fn w() { x = 0 + 0; } fn main() { sync (m) { x = 1; } spawn w(); }"
  in
  (* Only main acquires m. *)
  Alcotest.(check int) "m not shared" 0 (List.length r.Races.shared_groups)

(* --- Check --------------------------------------------------------------- *)

let test_static_matches_dynamic_on_simple () =
  (* deadlock_prone: straight-line, both analyses agree: zero yields. *)
  let prog = compile (Micro.deadlock_prone ()) in
  let s = Check.infer prog in
  Alcotest.(check int) "no static yields" 0
    (Coop_trace.Loc.Set.cardinal s.Check.yields)

let test_static_over_approximates () =
  (* On every workload the static yield count is at least the dynamic
     one: static racy regions and path joins only add violations. *)
  List.iter
    (fun (e : Registry.entry) ->
      let prog = Registry.program_of e in
      let s = Check.infer prog in
      let d = Coop_core.Infer.infer prog in
      Alcotest.(check bool)
        (Printf.sprintf "%s: static >= dynamic" e.Registry.name)
        true
        (Coop_trace.Loc.Set.cardinal s.Check.yields
        >= Coop_trace.Loc.Set.cardinal d.Coop_core.Infer.yields))
    [ Option.get (Registry.find "montecarlo"); Option.get (Registry.find "philo");
      Option.get (Registry.find "bank") ]

let test_static_fixpoint_clean () =
  List.iter
    (fun (_, src) ->
      let prog = compile src in
      let s = Check.infer prog in
      let residual = Check.check ~yields:s.Check.yields prog in
      Alcotest.(check int) "clean at fixpoint" 0 (List.length residual))
    Micro.all

let test_static_flags_locked_counter_loop () =
  let prog = compile (Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:false) in
  let vs = Check.check prog in
  Alcotest.(check bool) "violations found" true (vs <> [])

let test_static_yield_annotation_respected () =
  let with_ = compile (Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:true) in
  let without = compile (Micro.locked_counter ~threads:2 ~incs:2 ~yield_at_loop:false) in
  Alcotest.(check bool) "yield reduces violations" true
    (List.length (Check.check with_) < List.length (Check.check without))

let suite =
  [
    Alcotest.test_case "absval join" `Quick test_absval_join;
    Alcotest.test_case "absval binop" `Quick test_absval_binop;
    Alcotest.test_case "lock group resolution" `Quick test_lock_groups;
    Alcotest.test_case "flow: held in sync" `Quick test_flow_held_in_sync;
    Alcotest.test_case "flow: lock through temp" `Quick test_flow_lock_through_temp;
    Alcotest.test_case "flow: spawned_before" `Quick test_flow_spawned_before;
    Alcotest.test_case "flow: unreachable code" `Quick test_flow_unreachable;
    Alcotest.test_case "races: sequential clean" `Quick test_sequential_program_race_free;
    Alcotest.test_case "races: unprotected counter" `Quick test_unprotected_counter_racy;
    Alcotest.test_case "races: join quiescence" `Quick test_locked_counter_counter_protected;
    Alcotest.test_case "races: pre-fork init" `Quick test_pre_fork_init_not_racy;
    Alcotest.test_case "races: shared lock groups" `Quick test_shared_lock_groups;
    Alcotest.test_case "races: thread-local lock group" `Quick test_thread_local_lock_group;
    Alcotest.test_case "check: agrees on simple program" `Quick test_static_matches_dynamic_on_simple;
    Alcotest.test_case "check: over-approximates dynamic" `Slow test_static_over_approximates;
    Alcotest.test_case "check: fixpoint clean" `Quick test_static_fixpoint_clean;
    Alcotest.test_case "check: flags locked counter" `Quick test_static_flags_locked_counter_loop;
    Alcotest.test_case "check: yields respected" `Quick test_static_yield_annotation_respected;
  ]
