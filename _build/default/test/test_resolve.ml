open Coop_lang

let resolve src = Resolve.program (Parser.program src)

let expect_error msg src =
  match resolve src with
  | _ -> Alcotest.fail (msg ^ ": expected Resolve.Error")
  | exception Resolve.Error _ -> ()

let test_slots () =
  let env = resolve "var a = 1; var b = 2; array xs[4]; lock m; lock ms[3]; fn main() { }" in
  Alcotest.(check int) "globals" 2 env.Resolve.n_globals;
  Alcotest.(check (option int)) "slot a" (Some 0) (Resolve.global_slot env "a");
  Alcotest.(check (option int)) "slot b" (Some 1) (Resolve.global_slot env "b");
  Alcotest.(check (option int)) "array" (Some 0) (Resolve.array_id env "xs");
  Alcotest.(check int) "lock handles" 4 env.Resolve.n_locks;
  Alcotest.(check (option int)) "main index" (Some env.Resolve.main)
    (Resolve.func_index env "main")

let test_lock_bases () =
  let env = resolve "lock a; lock b[3]; lock c; fn main() { }" in
  Alcotest.(check bool) "bases" true (env.Resolve.lock_bases = [| 0; 1; 4 |]);
  Alcotest.(check int) "total" 5 env.Resolve.n_locks

let test_missing_main () = expect_error "no main" "fn helper() { }"

let test_main_with_params () = expect_error "main arity" "fn main(x) { }"

let test_duplicate_global () = expect_error "dup global" "var a; var a; fn main() { }"

let test_duplicate_function () =
  expect_error "dup fn" "fn f() { } fn f() { } fn main() { }"

let test_duplicate_param () = expect_error "dup param" "fn f(x, x) { } fn main() { }"

let test_unknown_variable () = expect_error "unknown var" "fn main() { x = 1; }"

let test_unknown_function () = expect_error "unknown fn" "fn main() { f(); }"

let test_unknown_array () = expect_error "unknown array" "fn main() { a[0] = 1; }"

let test_unknown_lock () = expect_error "unknown lock" "fn main() { sync (m) { } }"

let test_arity_mismatch () =
  expect_error "arity" "fn f(a, b) { } fn main() { f(1); }"

let test_spawn_arity () =
  expect_error "spawn arity" "fn f(a) { } fn main() { spawn f(); }"

let test_return_in_sync () =
  expect_error "return in sync" "lock m; fn f() { sync (m) { return 1; } } fn main() { }"

let test_return_in_atomic () =
  expect_error "return in atomic" "fn f() { atomic { return; } } fn main() { }"

let test_lock_array_needs_index () =
  expect_error "lock array unindexed" "lock ms[3]; fn main() { sync (ms) { } }"

let test_bad_sizes () =
  expect_error "zero array" "array a[0]; fn main() { }";
  expect_error "zero locks" "lock m[0]; fn main() { }"

let test_local_scoping () =
  (* A local declared in an inner block is not visible after it. *)
  expect_error "block scoping" "fn main() { { var x = 1; } x = 2; }"

let test_param_visible () =
  match resolve "fn f(x) { x = x + 1; } fn main() { f(1); }" with
  | _ -> ()
  | exception Resolve.Error m -> Alcotest.fail ("unexpected: " ^ m)

let test_local_before_use () =
  expect_error "use before declaration" "fn main() { y = x; var x = 1; }"

let test_shadowing_ok () =
  match resolve "var x = 1; fn main() { var x = 2; x = 3; }" with
  | _ -> ()
  | exception Resolve.Error m -> Alcotest.fail ("unexpected: " ^ m)

let suite =
  [
    Alcotest.test_case "slot assignment" `Quick test_slots;
    Alcotest.test_case "lock bases" `Quick test_lock_bases;
    Alcotest.test_case "missing main" `Quick test_missing_main;
    Alcotest.test_case "main with params" `Quick test_main_with_params;
    Alcotest.test_case "duplicate global" `Quick test_duplicate_global;
    Alcotest.test_case "duplicate function" `Quick test_duplicate_function;
    Alcotest.test_case "duplicate parameter" `Quick test_duplicate_param;
    Alcotest.test_case "unknown variable" `Quick test_unknown_variable;
    Alcotest.test_case "unknown function" `Quick test_unknown_function;
    Alcotest.test_case "unknown array" `Quick test_unknown_array;
    Alcotest.test_case "unknown lock" `Quick test_unknown_lock;
    Alcotest.test_case "call arity" `Quick test_arity_mismatch;
    Alcotest.test_case "spawn arity" `Quick test_spawn_arity;
    Alcotest.test_case "return in sync" `Quick test_return_in_sync;
    Alcotest.test_case "return in atomic" `Quick test_return_in_atomic;
    Alcotest.test_case "lock array needs index" `Quick test_lock_array_needs_index;
    Alcotest.test_case "non-positive sizes" `Quick test_bad_sizes;
    Alcotest.test_case "block scoping" `Quick test_local_scoping;
    Alcotest.test_case "parameters visible" `Quick test_param_visible;
    Alcotest.test_case "use before declaration" `Quick test_local_before_use;
    Alcotest.test_case "global shadowing ok" `Quick test_shadowing_ok;
  ]
