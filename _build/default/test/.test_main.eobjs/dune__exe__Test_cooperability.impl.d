test/test_cooperability.ml: Alcotest Automaton Compile Coop_core Coop_lang Coop_runtime Coop_trace Coop_workloads Cooperability Format List Micro Runner Sched String
