test/test_lexer.ml: Alcotest Coop_lang Lexer List Token
