test/test_runner.ml: Alcotest Array Behavior Bytecode Compile Coop_lang Coop_runtime Coop_trace Coop_workloads Micro Runner Sched
