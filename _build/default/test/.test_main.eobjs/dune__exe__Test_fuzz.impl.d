test/test_fuzz.ml: Ast Compile Coop_core Coop_lang Coop_race Coop_runtime Coop_static Coop_trace Cooperability Gen Infer List Pretty Printf QCheck2 QCheck_alcotest Runner Sched Test Vm
