test/test_vm.ml: Alcotest Behavior Bytecode Compile Coop_lang Coop_runtime Coop_trace Coop_workloads List Runner Sched Vm
