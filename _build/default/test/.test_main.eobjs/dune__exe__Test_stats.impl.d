test/test_stats.ml: Alcotest Coop_util Stats
