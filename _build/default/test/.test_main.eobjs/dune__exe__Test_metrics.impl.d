test/test_metrics.ml: Alcotest Bytecode Compile Coop_core Coop_lang Coop_runtime Coop_trace Coop_workloads Infer Metrics Micro Runner Sched
