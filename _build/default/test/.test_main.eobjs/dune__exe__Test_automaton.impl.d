test/test_automaton.ml: Alcotest Automaton Coop_core Coop_trace Event List Loc Mover QCheck2 QCheck_alcotest
