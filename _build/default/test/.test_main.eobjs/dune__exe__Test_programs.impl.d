test/test_programs.ml: Alcotest Array Compile Coop_core Coop_lang Coop_race Coop_runtime Coop_trace Filename Infer List Printf Runner Sched String Sys Vm
