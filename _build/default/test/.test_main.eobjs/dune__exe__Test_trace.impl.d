test/test_trace.ml: Alcotest Coop_trace Event List Loc String Timeline Trace
