test/test_infer.ml: Alcotest Compile Coop_core Coop_lang Coop_runtime Coop_trace Coop_workloads Cooperability Infer List Micro Option Printf Registry Runner Sched
