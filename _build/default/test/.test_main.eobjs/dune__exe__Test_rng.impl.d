test/test_rng.ml: Alcotest Array Coop_util Fun List Rng
