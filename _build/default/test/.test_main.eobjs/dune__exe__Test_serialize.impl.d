test/test_serialize.ml: Alcotest Compile Coop_core Coop_lang Coop_runtime Coop_trace Coop_workloads Event Filename Gen List Loc QCheck2 QCheck_alcotest Runner Sched Serialize Sys Trace
