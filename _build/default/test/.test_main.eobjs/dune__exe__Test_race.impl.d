test/test_race.ml: Alcotest Coop_race Coop_trace Event Fasttrack Gen List Loc Naive_hb QCheck2 QCheck_alcotest Report Trace
