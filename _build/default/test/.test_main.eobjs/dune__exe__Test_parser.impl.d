test/test_parser.ml: Alcotest Ast Coop_lang Gen Parser Pretty Printf QCheck2 QCheck_alcotest
