test/test_lockset.ml: Alcotest Coop_race Coop_trace Event Fasttrack Gen List Loc Lockset QCheck2 QCheck_alcotest Trace
