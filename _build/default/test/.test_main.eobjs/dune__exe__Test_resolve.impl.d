test/test_resolve.ml: Alcotest Coop_lang Parser Resolve
