test/test_monitor.ml: Alcotest Behavior Compile Coop_core Coop_lang Coop_race Coop_runtime Coop_trace Coop_workloads Dpor Equivalence Explore Infer List Micro Runner Sched Vm
