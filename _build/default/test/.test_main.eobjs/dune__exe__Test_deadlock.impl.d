test/test_deadlock.ml: Alcotest Compile Coop_core Coop_lang Coop_runtime Coop_workloads Deadlock Format List Micro Option Runner Sched
