test/test_explore.ml: Alcotest Behavior Compile Coop_lang Coop_runtime Coop_workloads Dpor Explore List Micro
