test/test_workloads.ml: Alcotest Compile Coop_core Coop_lang Coop_race Coop_runtime Coop_trace Coop_workloads Infer List Micro Printexc Printf Registry Runner Sched Vm
