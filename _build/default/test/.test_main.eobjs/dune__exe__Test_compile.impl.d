test/test_compile.ml: Alcotest Array Bytecode Compile Coop_lang List String
