test/test_table.ml: Alcotest Coop_util List String Table
