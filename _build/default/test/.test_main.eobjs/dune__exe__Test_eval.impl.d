test/test_eval.ml: Alcotest Ast Bytecode Compile Coop_lang Coop_runtime Coop_trace Eval List Parser Pretty QCheck2 QCheck_alcotest Runner Sched Vm
