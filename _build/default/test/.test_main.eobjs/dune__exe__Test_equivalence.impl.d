test/test_equivalence.ml: Alcotest Compile Coop_core Coop_lang Coop_runtime Coop_trace Coop_workloads Equivalence Format Infer List Micro String
