test/test_mover.ml: Alcotest Coop_core Coop_trace Event Mover
