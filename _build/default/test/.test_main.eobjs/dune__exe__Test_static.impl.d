test/test_static.ml: Absval Alcotest Array Ast Bytecode Check Compile Coop_core Coop_lang Coop_static Coop_trace Coop_workloads Flow Format Hashtbl List Micro Option Printf Races Registry
