test/gen.ml: Array Ast Coop_lang Coop_trace Coop_util Event Format Gen Hashtbl List Loc Printf QCheck2 Trace
