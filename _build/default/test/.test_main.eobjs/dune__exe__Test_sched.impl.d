test/test_sched.ml: Alcotest Behavior Compile Coop_lang Coop_runtime Coop_trace Coop_workloads Hashtbl List Runner Sched Vm
