test/test_atomicity.ml: Alcotest Atomizer Compile Conflict Coop_atomicity Coop_core Coop_lang Coop_runtime Coop_trace Coop_workloads Cooperability Int List Micro Runner Sched
