test/test_vclock.ml: Alcotest Coop_race Epoch Format Gen QCheck2 QCheck_alcotest Test Vclock
